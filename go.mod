module coflowsched

go 1.22
