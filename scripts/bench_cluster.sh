#!/usr/bin/env bash
# Records the cluster scaling trajectory into BENCH_sim.json (JSON Lines).
#
# Usage: scripts/bench_cluster.sh [label]
#
# Each invocation appends one object: the coflowbench `-experiment cluster
# -json` result — the identical workload replayed through an in-process
# coflowgate fronting 1/2/4/8 coflowd shards, with per-row admit throughput,
# parallel-drain wall time and the merged scheduling objectives
# (online.MergeEngineStats across the shards).
#
# The label tags the snapshot (defaults to the current commit). SHARDS and
# COFLOWS override the sweep shape, e.g. SHARDS=1,4,16 COFLOWS=400.
set -euo pipefail
cd "$(dirname "$0")/.."

label="${1:-$(git rev-parse --short HEAD 2>/dev/null || echo unlabeled)}"
shards="${SHARDS:-1,2,4,8}"
coflows="${COFLOWS:-160}"
out="BENCH_sim.json"

go run ./cmd/coflowbench -experiment cluster -shards "$shards" -coflows "$coflows" -json |
  sed "s/^{/{\"label\":\"$label\",/" >>"$out"

echo "bench_cluster: appended snapshot \"$label\" to $out" >&2
