#!/usr/bin/env bash
# Records the simulator benchmark trajectory into BENCH_sim.json (JSON Lines).
#
# Usage: scripts/bench_sim.sh [label]
#
# Each invocation appends:
#   - one object per `go test -bench` result of the simulator / online-engine
#     hot-path benchmarks (ns/op, B/op, allocs/op), and
#   - the coflowbench `-experiment sim -json` result: incremental vs naive
#     reference wall times on identical instances, with the objective
#     equivalence check built in.
#
# The label tags the snapshot (defaults to the current commit); BENCHTIME
# overrides the go-bench iteration count (default 5x); CPUS sets GOMAXPROCS
# for the bench run (default: the machine's). Every gobench line records the
# GOMAXPROCS it ran under — since the engine pod-partitions its realloc work,
# ns/op is only comparable between snapshots taken at the same width.
set -euo pipefail
cd "$(dirname "$0")/.."

label="${1:-$(git rev-parse --short HEAD 2>/dev/null || echo unlabeled)}"
benchtime="${BENCHTIME:-5x}"
cpus="${CPUS:-${GOMAXPROCS:-$(nproc)}}"
out="BENCH_sim.json"

# Benchmark lines are parsed by unit, not field position: custom metrics
# (the engine-tick pair reports a same-window "pair-overhead-%") print
# between ns/op and B/op, so positional parsing would shift on them.
go test -run=NONE -bench='BenchmarkRun|BenchmarkEngineTick' -benchmem \
  -benchtime="$benchtime" -cpu="$cpus" ./internal/sim/ ./internal/online/ |
  awk -v label="$label" -v cpus="$cpus" '
    /^Benchmark/ {
      name=$1; sub(/-[0-9]+$/, "", name)
      ns=""; bytes=""; allocs=""; overhead=""
      for (i = 3; i < NF; i += 2) {
        if ($(i+1) == "ns/op") ns = $i
        else if ($(i+1) == "B/op") bytes = $i
        else if ($(i+1) == "allocs/op") allocs = $i
        else if ($(i+1) == "pair-overhead-%") overhead = $i
      }
      line = sprintf("{\"experiment\":\"gobench\",\"label\":\"%s\",\"name\":\"%s\",\"ns_per_op\":%s,\"bytes_per_op\":%s,\"allocs_per_op\":%s,\"gomaxprocs\":%s",
                     label, name, ns, bytes, allocs, cpus)
      if (overhead != "") line = line sprintf(",\"pair_overhead_pct\":%s", overhead)
      print line "}"
    }' >>"$out"

go run ./cmd/coflowbench -experiment sim -json |
  sed "s/^{/{\"label\":\"$label\",/" >>"$out"

echo "bench_sim: appended snapshot \"$label\" to $out" >&2
