#!/usr/bin/env bash
# Records the WAL admit-path overhead into BENCH_sim.json (JSON Lines).
#
# Usage: scripts/bench_wal.sh [label]
#
# Two series:
#
#   BenchmarkAdmit (serial)       — one admission at a time. Every wal=on
#     iteration necessarily pays a private fsync, so this ratio measures raw
#     fsync latency, a hardware property. Recorded as a labeled diagnostic,
#     NOT held against the budget.
#   BenchmarkAdmitParallel        — concurrent admissions, the workload the
#     admission path is built for: requests coalesce into scheduler batches
#     and the committer goroutine group-commits them, so the fsync cost is
#     amortized across everything in flight. This is the budget series.
#
# The budget compares mean ns/op of wal=on vs wal=off for the parallel
# series. The pair runs back-to-back COUNT times and the budget takes the
# MEDIAN of the per-run ratios: a saturated concurrent benchmark is noisy and
# the box drifts over minutes, so pairing each ratio in time and discarding
# outlier runs is what makes the number reproducible. Run at GOMAXPROCS=CPUS
# so the committer's fsync overlaps admission work instead of stalling the
# only processor.
#
# The label tags the snapshot (defaults to the current commit). BENCHTIME
# overrides the parallel iteration count (default 5000x), COUNT the runs per
# variant (default 3), CPUS the GOMAXPROCS for the parallel series (default
# 4). STRICT=1 makes a budget violation exit nonzero (the CI trend job runs
# this; group commit makes the ratio a code property, not a disk property).
set -euo pipefail
cd "$(dirname "$0")/.."

label="${1:-$(git rev-parse --short HEAD 2>/dev/null || echo unlabeled)}"
benchtime="${BENCHTIME:-5000x}"
count="${COUNT:-3}"
cpus="${CPUS:-4}"
budget="${BUDGET:-1.05}" # ≤5% admit regression budget
out="BENCH_sim.json"

serial=$(go test -run=NONE -bench='^BenchmarkAdmit$/' -benchtime=500x ./internal/server/)
parallel=""
for _ in $(seq "$count"); do
  run=$(go test -run=NONE -bench='^BenchmarkAdmitParallel$/' -benchtime="$benchtime" \
    -cpu="$cpus" ./internal/server/)
  parallel="$parallel$run"$'\n'
done

printf '%s\n%s\n' "$serial" "$parallel" | awk -v label="$label" -v cpus="$cpus" '
  /^BenchmarkAdmit/ {
    name=$1; sub(/-[0-9]+$/, "", name)
    ns=""; p99=""; apf=""; apb=""
    for (i = 2; i < NF; i++) {
      if ($(i+1) == "ns/op") ns=$i
      if ($(i+1) == "p99-ns/op") p99=$i
      if ($(i+1) == "admits/fsync") apf=$i
      if ($(i+1) == "admits/batch") apb=$i
    }
    line = sprintf("{\"experiment\":\"wal\",\"label\":\"%s\",\"name\":\"%s\",\"ns_per_op\":%s", label, name, ns)
    if (p99 != "") line = line sprintf(",\"p99_ns\":%s", p99)
    if (apb != "") line = line sprintf(",\"admits_per_batch\":%s", apb)
    if (apf != "") line = line sprintf(",\"admits_per_fsync\":%s", apf)
    if (name ~ /Parallel/) line = line sprintf(",\"gomaxprocs\":%s", cpus)
    print line "}"
  }' >>"$out"

# Budget: median of per-run (wal=on / wal=off) ratios, each ratio taken from
# one paired run. Serial ratio rides along as the fsync-latency diagnostic.
summary=$(printf '%s\n%s\n' "$serial" "$parallel" | awk \
  -v label="$label" -v budget="$budget" -v cpus="$cpus" '
  function median(a, n,    i, j, t) {
    for (i = 1; i < n; i++) for (j = i + 1; j <= n; j++)
      if (a[j] < a[i]) { t = a[i]; a[i] = a[j]; a[j] = t }
    return (n % 2) ? a[(n + 1) / 2] : (a[n / 2] + a[n / 2 + 1]) / 2
  }
  /^BenchmarkAdmit/ {
    ns = ""
    for (i = 2; i < NF; i++) if ($(i+1) == "ns/op") ns = $i
    if ($1 ~ /^BenchmarkAdmitParallel\/wal=off/) off = ns + 0
    else if ($1 ~ /^BenchmarkAdmitParallel\/wal=on/ && off > 0) {
      ratios[++nratios] = (ns + 0) / off
      off = 0
    }
    else if ($1 ~ /^BenchmarkAdmit\/wal=off/) soff = ns
    else if ($1 ~ /^BenchmarkAdmit\/wal=on/) son = ns
  }
  END {
    mratio = median(ratios, nratios)
    sratio = (soff != "") ? son / soff : 0
    within = (mratio <= budget) ? "true" : "false"
    printf("{\"experiment\":\"wal-overhead\",\"label\":\"%s\",\"series\":\"parallel\",\"gomaxprocs\":%s,\"runs\":%d,", label, cpus, nratios)
    printf("\"mean_ratio\":%.4f,\"serial_mean_ratio\":%.4f,\"budget\":%s,\"within_budget\":%s}", mratio, sratio, budget, within)
  }')
echo "$summary" >>"$out"

echo "bench_wal: appended snapshot \"$label\" to $out" >&2
echo "bench_wal: $summary" >&2
if [ "${STRICT:-0}" = "1" ] && echo "$summary" | grep -q '"within_budget":false'; then
  echo "bench_wal: WAL admit overhead exceeds the ${budget}x budget" >&2
  exit 1
fi
