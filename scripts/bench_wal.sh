#!/usr/bin/env bash
# Records the WAL admit-path overhead into BENCH_sim.json (JSON Lines).
#
# Usage: scripts/bench_wal.sh [label]
#
# Runs BenchmarkAdmit/wal=off and BenchmarkAdmit/wal=on (the end-to-end HTTP
# admission path; the wal=on variant group-commits an fsync before the 201)
# and appends one object per variant plus a summary object with the p99
# ratio, held against the admit-p99 regression budget below. The budget
# compares mean admit cost by default — fsync latency dominates tail latency
# on spinning/virtualized disks no matter how cheap the code path is — and
# the raw p99s are recorded alongside for trend tracking.
#
# The label tags the snapshot (defaults to the current commit). BENCHTIME
# overrides the iteration count (default 500x). STRICT=1 makes a budget
# violation exit nonzero (CI trend jobs; off by default because absolute
# fsync cost is hardware, not regression).
set -euo pipefail
cd "$(dirname "$0")/.."

label="${1:-$(git rev-parse --short HEAD 2>/dev/null || echo unlabeled)}"
benchtime="${BENCHTIME:-500x}"
budget="${BUDGET:-1.05}" # ≤5% admit regression budget
out="BENCH_sim.json"

results=$(go test -run=NONE -bench='BenchmarkAdmit/' -benchtime="$benchtime" ./internal/server/)

echo "$results" | awk -v label="$label" '
  /^BenchmarkAdmit\// {
    name=$1; sub(/-[0-9]+$/, "", name)
    ns=""; p99=""
    for (i = 2; i < NF; i++) {
      if ($(i+1) == "ns/op") ns=$i
      if ($(i+1) == "p99-ns/op") p99=$i
    }
    printf("{\"experiment\":\"wal\",\"label\":\"%s\",\"name\":\"%s\",\"ns_per_op\":%s,\"p99_ns\":%s}\n",
           label, name, ns, p99)
  }' >>"$out"

read -r mean_off p99_off mean_on p99_on < <(echo "$results" | awk '
  /wal=off/ { for (i = 2; i < NF; i++) { if ($(i+1) == "ns/op") moff=$i; if ($(i+1) == "p99-ns/op") poff=$i } }
  /wal=on/  { for (i = 2; i < NF; i++) { if ($(i+1) == "ns/op") mon=$i;  if ($(i+1) == "p99-ns/op") pon=$i } }
  END { print moff, poff, mon, pon }')

summary=$(awk -v moff="$mean_off" -v mon="$mean_on" -v poff="$p99_off" -v pon="$p99_on" \
  -v label="$label" -v budget="$budget" 'BEGIN {
    mratio = mon / moff; pratio = pon / poff
    within = (mratio <= budget) ? "true" : "false"
    printf("{\"experiment\":\"wal-overhead\",\"label\":\"%s\",\"mean_ratio\":%.4f,\"p99_ratio\":%.4f,\"budget\":%s,\"within_budget\":%s}",
           label, mratio, pratio, budget, within)
  }')
echo "$summary" >>"$out"

echo "bench_wal: appended snapshot \"$label\" to $out" >&2
echo "bench_wal: $summary" >&2
if [ "${STRICT:-0}" = "1" ] && echo "$summary" | grep -q '"within_budget":false'; then
  echo "bench_wal: WAL admit overhead exceeds the ${budget}x budget" >&2
  exit 1
fi
