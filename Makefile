GO ?= go

.PHONY: build test race vet fmt bench bench-sim bench-cluster bench-wal

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

fmt:
	gofmt -l .

# bench smoke-runs every benchmark once, mirroring the CI job that keeps
# benchmarks from rotting.
bench:
	$(GO) test -run=NONE -bench=. -benchtime=1x ./...

# bench-sim appends the simulator hot-path trajectory to BENCH_sim.json.
# Pass LABEL=... to tag the snapshot (defaults to the current commit); see
# the Performance section of EXPERIMENTS.md for the methodology.
bench-sim:
	scripts/bench_sim.sh $(LABEL)

# bench-cluster appends the 1/2/4/8-shard coflowgate scaling trajectory to
# BENCH_sim.json (see the Cluster scaling section of EXPERIMENTS.md).
bench-cluster:
	scripts/bench_cluster.sh $(LABEL)

# bench-wal appends the WAL admit-path overhead (wal=off vs wal=on) to
# BENCH_sim.json: the concurrent series is held against a ≤5% admit budget
# (group-committed fsyncs amortize across in-flight admissions), the serial
# series rides along as a raw fsync-latency diagnostic (see the Durability
# section of EXPERIMENTS.md). STRICT=1 fails on budget violation; CI does.
bench-wal:
	scripts/bench_wal.sh $(LABEL)
