package core

import (
	"fmt"
	"math"
	"math/rand"

	"coflowsched/internal/coflow"
	"coflowsched/internal/graph"
	"coflowsched/internal/sim"
)

// CircuitGivenPaths is the §2.1 scheduler: circuit-based coflows whose flows
// come with fixed paths. It builds the interval-indexed LP (4)–(10), rounds
// by α-points, and returns a feasible bandwidth schedule together with the
// LP lower bound.
type CircuitGivenPaths struct {
	Opts Options
}

// Name identifies the scheduler in experiment output.
func (CircuitGivenPaths) Name() string { return "LP-Circuit-GivenPaths" }

// ScheduleProvable runs the LP and the paper's interval-placement rounding.
// Every flow must carry a pre-assigned path.
func (s CircuitGivenPaths) ScheduleProvable(inst *coflow.Instance) (*Result, error) {
	clp, err := s.buildLP(inst)
	if err != nil {
		return nil, err
	}
	if err := clp.solve(); err != nil {
		return nil, err
	}
	cs, chosen, paths := clp.roundProvable(nil, true)
	return clp.buildResult(cs, chosen, paths), nil
}

// ScheduleASAP runs the LP and then the paper's §4.2 practical mode: flows
// are ordered by LP completion times and started as early as possible by the
// flow-level simulator.
func (s CircuitGivenPaths) ScheduleASAP(inst *coflow.Instance) (*Result, error) {
	clp, err := s.buildLP(inst)
	if err != nil {
		return nil, err
	}
	if err := clp.solve(); err != nil {
		return nil, err
	}
	return scheduleASAP(clp, inst, nil)
}

// Schedule satisfies the common scheduler signature used by the experiment
// harness; it runs the practical mode (as the paper's own experiments do).
func (s CircuitGivenPaths) Schedule(inst *coflow.Instance, _ *rand.Rand) (*coflow.CircuitSchedule, error) {
	res, err := s.ScheduleASAP(inst)
	if err != nil {
		return nil, err
	}
	return res.Schedule, nil
}

func (s CircuitGivenPaths) buildLP(inst *coflow.Instance) (*circuitLP, error) {
	if err := inst.Validate(false); err != nil {
		return nil, err
	}
	if !inst.HasPaths() {
		return nil, fmt.Errorf("core: CircuitGivenPaths requires every flow to carry a path")
	}
	cands := make(map[coflow.FlowRef][]graph.Path)
	for _, ref := range inst.FlowRefs() {
		cands[ref] = []graph.Path{inst.Flow(ref).Path}
	}
	return buildCircuitLP(inst, cands, s.Opts)
}

// CircuitFreePaths is the §2.2 scheduler in its scalable form: circuit-based
// coflows that need both routing and bandwidth assignment. Routing decisions
// are made over a per-flow set of shortest candidate paths (Options.
// CandidatePaths); the LP chooses a fractional routing and schedule, and the
// rounding step picks a single path per flow by Raghavan–Thompson randomized
// rounding. For the exact arc-flow formulation of §2.2 (no candidate
// restriction, O(log|E|/log log|E|) guarantee) see CircuitFreePathsExact.
type CircuitFreePaths struct {
	Opts Options
}

// Name identifies the scheduler; the experiments call this scheme "LP-Based".
func (CircuitFreePaths) Name() string { return "LP-Based" }

// ScheduleProvable runs the LP, randomized path rounding and interval
// placement, and returns the schedule plus LP evidence. rng drives the
// randomized rounding.
func (s CircuitFreePaths) ScheduleProvable(inst *coflow.Instance, rng *rand.Rand) (*Result, error) {
	clp, err := s.buildLP(inst)
	if err != nil {
		return nil, err
	}
	if err := clp.solve(); err != nil {
		return nil, err
	}
	cs, chosen, paths := clp.roundProvable(rng, false)
	return clp.buildResult(cs, chosen, paths), nil
}

// ScheduleASAP runs the LP, picks the thickest path per flow, orders flows by
// LP completion times and starts each as early as possible in the simulator
// (the paper's experimental configuration).
func (s CircuitFreePaths) ScheduleASAP(inst *coflow.Instance, rng *rand.Rand) (*Result, error) {
	clp, err := s.buildLP(inst)
	if err != nil {
		return nil, err
	}
	if err := clp.solve(); err != nil {
		return nil, err
	}
	return scheduleASAP(clp, inst, rng)
}

// Schedule satisfies the common scheduler signature; practical mode.
func (s CircuitFreePaths) Schedule(inst *coflow.Instance, rng *rand.Rand) (*coflow.CircuitSchedule, error) {
	res, err := s.ScheduleASAP(inst, rng)
	if err != nil {
		return nil, err
	}
	return res.Schedule, nil
}

func (s CircuitFreePaths) buildLP(inst *coflow.Instance) (*circuitLP, error) {
	if err := inst.Validate(false); err != nil {
		return nil, err
	}
	opts := s.Opts.withDefaults()
	cands := make(map[coflow.FlowRef][]graph.Path)
	for _, ref := range inst.FlowRefs() {
		f := inst.Flow(ref)
		if f.Path != nil {
			cands[ref] = []graph.Path{f.Path}
			continue
		}
		paths := inst.Network.KShortestPaths(f.Source, f.Dest, opts.CandidatePaths)
		if len(paths) == 0 {
			return nil, fmt.Errorf("core: no path from %d to %d for flow %s", f.Source, f.Dest, ref)
		}
		cands[ref] = paths
	}
	return buildCircuitLP(inst, cands, opts)
}

// scheduleASAP implements the practical mode shared by both circuit
// schedulers: flows are ordered by their LP completion times, each flow picks
// one of its LP-supported paths (load-aware among near-tied masses, so
// symmetric fat-tree paths spread out instead of colliding), and the
// flow-level simulator starts every flow as early as it can.
func scheduleASAP(clp *circuitLP, inst *coflow.Instance, rng *rand.Rand) (*Result, error) {
	order := clp.lpOrder()
	candidates := make(map[coflow.FlowRef][]graph.WeightedPath)
	pathsPerFlow := make(map[coflow.FlowRef]int)
	for _, ref := range clp.refs {
		masses := clp.pathMass(ref)
		var wps []graph.WeightedPath
		positive := 0
		for p, m := range masses {
			if m > 1e-9 {
				positive++
				wps = append(wps, graph.WeightedPath{Path: clp.cands[ref][p], Amount: m})
			}
		}
		if len(wps) == 0 {
			wps = []graph.WeightedPath{{Path: clp.cands[ref][0], Amount: 1}}
			positive = 1
		}
		candidates[ref] = wps
		pathsPerFlow[ref] = positive
	}
	chosen := loadAwareSelect(inst, order, candidates)
	cs, err := sim.Run(inst, sim.Config{Paths: chosen, Order: order, Policy: sim.Priority})
	if err != nil {
		return nil, fmt.Errorf("core: simulating ASAP schedule: %w", err)
	}
	res := clp.buildResult(cs, chosen, pathsPerFlow)
	res.FlowOrder = order
	_ = rng
	return res, nil
}

// loadAwareSelect fixes one path per flow from its LP-supported candidates.
// Flows are processed in priority order; each takes the candidate that
// minimizes the resulting bottleneck load (size-weighted, relative to edge
// capacity), breaking ties toward larger LP mass and then fewer hops. This is
// the integral counterpart of the LP's fractional load balancing: when the LP
// splits a flow across symmetric equal-cost paths, successive flows fan out
// across them instead of piling onto the first.
func loadAwareSelect(inst *coflow.Instance, order []coflow.FlowRef, candidates map[coflow.FlowRef][]graph.WeightedPath) map[coflow.FlowRef]graph.Path {
	load := make([]float64, inst.Network.NumEdges())
	chosen := make(map[coflow.FlowRef]graph.Path, len(order))
	for _, ref := range order {
		f := inst.Flow(ref)
		cands := candidates[ref]
		bestIdx := 0
		bestMax, bestSum, bestMass := math.Inf(1), math.Inf(1), -1.0
		for i, wp := range cands {
			maxLoad, sumLoad := 0.0, 0.0
			for _, e := range wp.Path {
				l := (load[e] + f.Size) / inst.Network.Capacity(e)
				sumLoad += l
				if l > maxLoad {
					maxLoad = l
				}
			}
			better := false
			switch {
			case maxLoad < bestMax-1e-12:
				better = true
			case maxLoad < bestMax+1e-12 && wp.Amount > bestMass+1e-12:
				better = true
			case maxLoad < bestMax+1e-12 && wp.Amount > bestMass-1e-12 && sumLoad < bestSum-1e-12:
				better = true
			}
			if better {
				bestIdx, bestMax, bestSum, bestMass = i, maxLoad, sumLoad, wp.Amount
			}
		}
		p := cands[bestIdx].Path
		chosen[ref] = p
		for _, e := range p {
			load[e] += f.Size
		}
	}
	return chosen
}
