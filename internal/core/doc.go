// Package core implements the paper's contribution: approximation algorithms
// for coflow scheduling over general network topologies that minimize total
// weighted coflow completion time.
//
// All algorithms share the three-step framework of the paper:
//
//  1. Reformulation — coflow completion times are expressed through a dummy
//     flow per coflow that must finish last (depth-1 in-tree precedences);
//     only dummy flows carry the coflow weight.
//  2. Interval-indexed linear program — time is partitioned into geometric
//     intervals τ_ℓ = (1+ε)^(ℓ-1); LP variables describe what fraction of
//     each flow is delivered in each interval, subject to per-interval edge
//     capacity (and, for unrouted flows, flow conservation or candidate-path
//     selection). The LP optimum is a lower bound on the optimal schedule
//     (up to a 1+ε factor from rounding release times).
//  3. Rounding — each flow is assigned to a later interval based on its
//     α-point (the interval where a cumulative α fraction of it is done in
//     the LP), and bandwidth/paths are fixed so that edge capacities hold.
//     Unrouted circuit flows pick a single path by Raghavan–Thompson
//     randomized rounding of the LP's fractional routing.
//
// Schedulers come in two flavours:
//
//   - Provable mode (Schedule): produces a feasible schedule whose objective
//     is within a constant factor (circuit, given paths), within a constant
//     factor over a candidate path set (circuit, free paths, restricted LP),
//     or within O(log |E| / log log |E|) (circuit, free paths, exact
//     arc-flow LP) of the LP lower bound.
//   - Practical mode (ScheduleASAP, the paper's §4.2 tweak): uses the LP only
//     to pick paths and a priority order, then starts every flow as early as
//     possible in the flow-level simulator. This is the "LP-Based" scheme of
//     the paper's experiments.
//
// Packet-based coflows are handled by reducing to unit-time job-shop
// scheduling (given paths) and to per-interval routing plus scheduling on the
// original graph (free paths); see packet_given.go and packet_free.go.
package core
