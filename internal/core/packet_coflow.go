package core

import (
	"fmt"
	"math"
	"math/rand"

	"coflowsched/internal/coflow"
	"coflowsched/internal/graph"
	"coflowsched/internal/packet"
)

// PacketResult carries a packet schedule together with its LP evidence.
type PacketResult struct {
	// Schedule is the feasible packet schedule (unit edge capacities, one
	// packet per edge per step).
	Schedule *coflow.PacketSchedule
	// LPObjective and LowerBound mirror Result: the interval-indexed LP value
	// and the implied lower bound on the optimal total weighted coflow
	// completion time.
	LPObjective float64
	LowerBound  float64
	// LPIterations is the number of simplex pivots used.
	LPIterations int
	// FlowOrder is the LP-derived packet priority order.
	FlowOrder []coflow.FlowRef
}

// Objective returns the schedule's total weighted coflow completion time.
func (r *PacketResult) Objective(inst *coflow.Instance) float64 {
	return r.Schedule.Objective(inst)
}

// ApproximationRatio returns Objective / LowerBound.
func (r *PacketResult) ApproximationRatio(inst *coflow.Instance) float64 {
	if r.LowerBound <= 0 {
		return math.Inf(1)
	}
	return r.Objective(inst) / r.LowerBound
}

// PacketGivenPaths is the §3.1 scheduler: packet-based coflows whose packets
// come with fixed paths. The problem is an instance of unit-time job-shop
// scheduling with a min-sum objective; we solve the interval-indexed LP
// relaxation (the fractional circuit LP restricted to the given paths is a
// valid relaxation of the integral packet problem) and list-schedule packets
// in LP priority order, the Queyranne–Sviridenko-style constant-factor
// recipe.
type PacketGivenPaths struct {
	Opts Options
}

// Name identifies the scheduler.
func (PacketGivenPaths) Name() string { return "LP-Packet-GivenPaths" }

// Schedule computes the packet schedule and LP evidence.
func (s PacketGivenPaths) Schedule(inst *coflow.Instance) (*PacketResult, error) {
	if err := inst.Validate(true); err != nil {
		return nil, err
	}
	if !inst.HasPaths() {
		return nil, fmt.Errorf("core: PacketGivenPaths requires every packet to carry a path")
	}
	cands := make(map[coflow.FlowRef][]graph.Path)
	paths := make(map[coflow.FlowRef]graph.Path)
	for _, ref := range inst.FlowRefs() {
		p := inst.Flow(ref).Path
		cands[ref] = []graph.Path{p}
		paths[ref] = p
	}
	clp, err := buildCircuitLP(inst, cands, s.Opts)
	if err != nil {
		return nil, err
	}
	if err := clp.solve(); err != nil {
		return nil, err
	}
	order := clp.lpOrder()
	ps, err := packet.ListSchedule(inst, paths, order, 0)
	if err != nil {
		return nil, err
	}
	return &PacketResult{
		Schedule:     ps,
		LPObjective:  clp.sol.Objective,
		LowerBound:   clp.sol.Objective / (1 + clp.opts.Epsilon),
		LPIterations: clp.sol.Iterations,
		FlowOrder:    order,
	}, nil
}

// PacketFreePaths is the §3.2 scheduler: packet-based coflows that need both
// routing and scheduling. The interval-indexed LP over candidate paths
// stands in for the time-expanded-graph LP (25)–(32): it bounds, per
// interval, the congestion each packet group may place on any edge and the
// completion interval of every coflow. Packets are then assigned to their
// half-intervals and routed + scheduled group by group with earliest-arrival
// routing over the time-expanded graph (the Srinivasan–Teo step), or — in
// practical ASAP mode — all at once in LP priority order.
type PacketFreePaths struct {
	Opts Options
}

// Name identifies the scheduler.
func (PacketFreePaths) Name() string { return "LP-Packet-FreePaths" }

func (s PacketFreePaths) buildLP(inst *coflow.Instance) (*circuitLP, error) {
	if err := inst.Validate(true); err != nil {
		return nil, err
	}
	opts := s.Opts.withDefaults()
	cands := make(map[coflow.FlowRef][]graph.Path)
	for _, ref := range inst.FlowRefs() {
		f := inst.Flow(ref)
		if f.Path != nil {
			cands[ref] = []graph.Path{f.Path}
			continue
		}
		paths := inst.Network.KShortestPaths(f.Source, f.Dest, opts.CandidatePaths)
		if len(paths) == 0 {
			return nil, fmt.Errorf("core: no path from %d to %d for packet %s", f.Source, f.Dest, ref)
		}
		cands[ref] = paths
	}
	return buildCircuitLP(inst, cands, opts)
}

// ScheduleASAP routes and schedules every packet in LP priority order using
// earliest-arrival routing over the time-expanded graph.
func (s PacketFreePaths) ScheduleASAP(inst *coflow.Instance, _ *rand.Rand) (*PacketResult, error) {
	clp, err := s.buildLP(inst)
	if err != nil {
		return nil, err
	}
	if err := clp.solve(); err != nil {
		return nil, err
	}
	order := clp.lpOrder()
	ps, err := packet.EarliestArrivalSchedule(inst, order, 0)
	if err != nil {
		return nil, err
	}
	return s.result(clp, ps, order), nil
}

// SchedulePhased mirrors the paper's rounding: packets are grouped by their
// half-interval in the LP and the groups are routed and scheduled one after
// another (group ℓ starts only after group ℓ-1 has been fully delivered).
// This is the provable-structure mode; its objective is typically larger
// than ASAP mode but its per-group makespans follow the O(C+D) bound of the
// underlying routing primitive.
func (s PacketFreePaths) SchedulePhased(inst *coflow.Instance, _ *rand.Rand) (*PacketResult, error) {
	clp, err := s.buildLP(inst)
	if err != nil {
		return nil, err
	}
	if err := clp.solve(); err != nil {
		return nil, err
	}
	opts := clp.opts
	// Group packets by half-interval.
	groups := map[int][]coflow.FlowRef{}
	maxInterval := 0
	for _, ref := range clp.refs {
		h := clp.alphaInterval(ref, opts.Alpha)
		groups[h] = append(groups[h], ref)
		if h > maxInterval {
			maxInterval = h
		}
	}
	order := clp.lpOrder()
	rank := make(map[coflow.FlowRef]int, len(order))
	for i, ref := range order {
		rank[ref] = i
	}

	merged := coflow.NewPacketSchedule()
	startAt := 0
	for h := 0; h <= maxInterval; h++ {
		batch := groups[h]
		if len(batch) == 0 {
			continue
		}
		// Within a batch, keep the LP order.
		sortByRank(batch, rank)
		ps, err := packet.EarliestArrivalSchedule(inst, batch, startAt)
		if err != nil {
			return nil, err
		}
		for _, ref := range batch {
			merged.Set(ref, ps.Get(ref))
		}
		if m := int(ps.Makespan()); m > startAt {
			startAt = m
		}
	}
	return s.result(clp, merged, order), nil
}

func (s PacketFreePaths) result(clp *circuitLP, ps *coflow.PacketSchedule, order []coflow.FlowRef) *PacketResult {
	return &PacketResult{
		Schedule:     ps,
		LPObjective:  clp.sol.Objective,
		LowerBound:   clp.sol.Objective / (1 + clp.opts.Epsilon),
		LPIterations: clp.sol.Iterations,
		FlowOrder:    order,
	}
}

// sortByRank orders refs by their position in the LP order.
func sortByRank(refs []coflow.FlowRef, rank map[coflow.FlowRef]int) {
	for i := 1; i < len(refs); i++ {
		for j := i; j > 0 && rank[refs[j]] < rank[refs[j-1]]; j-- {
			refs[j], refs[j-1] = refs[j-1], refs[j]
		}
	}
}
