package core

import (
	"math"
	"math/rand"
	"testing"

	"coflowsched/internal/coflow"
	"coflowsched/internal/graph"
	"coflowsched/internal/workload"
)

// figure1Instance is the paper's Figure 1 instance on the triangle network.
func figure1Instance(t *testing.T, withPaths bool) *coflow.Instance {
	t.Helper()
	g := graph.Triangle()
	x, _ := g.FindNode("x")
	y, _ := g.FindNode("y")
	z, _ := g.FindNode("z")
	inst := &coflow.Instance{
		Network: g,
		Coflows: []coflow.Coflow{
			{Name: "A", Weight: 1, Flows: []coflow.Flow{
				{Source: x, Dest: y, Size: 2},
				{Source: y, Dest: z, Size: 1},
			}},
			{Name: "B", Weight: 1, Flows: []coflow.Flow{{Source: y, Dest: z, Size: 1}}},
			{Name: "C", Weight: 1, Flows: []coflow.Flow{{Source: x, Dest: z, Size: 2}}},
		},
	}
	if withPaths {
		if err := inst.AssignShortestPaths(); err != nil {
			t.Fatal(err)
		}
	}
	if err := inst.Validate(false); err != nil {
		t.Fatal(err)
	}
	return inst
}

// smallFatTreeInstance generates a random instance on a 16-host fat-tree.
func smallFatTreeInstance(t *testing.T, seed int64, coflows, width int) *coflow.Instance {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	inst, err := workload.Generate(graph.FatTree(4, 1), workload.Config{
		NumCoflows: coflows, Width: width, MeanSize: 2, MeanRelease: 1, MeanWeight: 1,
	}, rng)
	if err != nil {
		t.Fatal(err)
	}
	return inst
}

func TestOptionsDefaultsAndFeasibility(t *testing.T) {
	o := Options{}.withDefaults()
	if o.Epsilon != 1 || o.Alpha != 0.5 || o.Displacement != 3 || o.CandidatePaths != 4 {
		t.Errorf("unexpected defaults: %+v", o)
	}
	if !o.feasibilityCondition() {
		t.Errorf("default options must satisfy the rounding feasibility condition")
	}
	if o.approximationFactor() <= 1 {
		t.Errorf("approximation factor should exceed 1")
	}
	bad := Options{Epsilon: 0.1, Alpha: 0.5, Displacement: 1, CandidatePaths: 1}
	if bad.feasibilityCondition() {
		t.Errorf("clearly infeasible constants reported as feasible")
	}
}

func TestCircuitGivenPathsProvableOnFigure1(t *testing.T) {
	inst := figure1Instance(t, true)
	res, err := CircuitGivenPaths{}.ScheduleProvable(inst)
	if err != nil {
		t.Fatalf("ScheduleProvable: %v", err)
	}
	if err := res.Schedule.Validate(inst); err != nil {
		t.Fatalf("provable schedule infeasible: %v", err)
	}
	obj := res.Objective(inst)
	lb := CombinedLowerBound(inst, res)
	if lb <= 0 {
		t.Fatalf("lower bound = %v, want > 0", lb)
	}
	if obj < lb-1e-6 {
		t.Errorf("objective %v below lower bound %v (impossible)", obj, lb)
	}
	factor := Options{}.withDefaults().approximationFactor()
	if obj > factor*lb+1e-6 {
		t.Errorf("objective %v exceeds %v times lower bound %v", obj, factor, lb)
	}
	if res.LPObjective <= 0 || res.LPIterations <= 0 {
		t.Errorf("missing LP evidence: %+v", res)
	}
}

func TestCircuitGivenPathsASAPBeatsProvable(t *testing.T) {
	inst := figure1Instance(t, true)
	prov, err := CircuitGivenPaths{}.ScheduleProvable(inst)
	if err != nil {
		t.Fatal(err)
	}
	asap, err := CircuitGivenPaths{}.ScheduleASAP(inst)
	if err != nil {
		t.Fatal(err)
	}
	if err := asap.Schedule.Validate(inst); err != nil {
		t.Fatalf("ASAP schedule infeasible: %v", err)
	}
	if !(asap.Objective(inst) <= prov.Objective(inst)+1e-9) {
		t.Errorf("practical mode (%v) should not be worse than interval placement (%v)",
			asap.Objective(inst), prov.Objective(inst))
	}
	// On Figure 1 the optimum is 5: B (size 1) uses edge y->z first, A
	// completes at 2, C at 2 — matching the trivial lower bound 2+1+2. The
	// LP-guided ASAP schedule should find it.
	if got := asap.Objective(inst); math.Abs(got-5) > 1e-6 {
		t.Errorf("ASAP objective = %v, want 5 (optimal)", got)
	}
}

func TestCircuitGivenPathsRequiresPaths(t *testing.T) {
	inst := figure1Instance(t, false)
	if _, err := (CircuitGivenPaths{}).ScheduleProvable(inst); err == nil {
		t.Errorf("expected error for missing paths")
	}
}

func TestCircuitGivenPathsRespectsReleaseTimes(t *testing.T) {
	g := graph.Line(2, 1)
	h := g.Hosts()
	inst := &coflow.Instance{
		Network: g,
		Coflows: []coflow.Coflow{
			{Name: "late", Weight: 2, Flows: []coflow.Flow{{Source: h[0], Dest: h[1], Size: 1, Release: 6}}},
			{Name: "early", Weight: 1, Flows: []coflow.Flow{{Source: h[0], Dest: h[1], Size: 2}}},
		},
	}
	if err := inst.AssignShortestPaths(); err != nil {
		t.Fatal(err)
	}
	for _, mode := range []string{"provable", "asap"} {
		var res *Result
		var err error
		if mode == "provable" {
			res, err = CircuitGivenPaths{}.ScheduleProvable(inst)
		} else {
			res, err = CircuitGivenPaths{}.ScheduleASAP(inst)
		}
		if err != nil {
			t.Fatalf("%s: %v", mode, err)
		}
		if err := res.Schedule.Validate(inst); err != nil {
			t.Fatalf("%s: infeasible: %v", mode, err)
		}
		// The late flow cannot complete before 7.
		lateRef := coflow.FlowRef{Coflow: 0, Index: 0}
		late := res.Schedule.Get(lateRef).CompletionTime()
		if late < 7-1e-9 {
			t.Errorf("%s: late flow completes at %v before release+size = 7", mode, late)
		}
	}
}

func TestCircuitFreePathsOnFatTree(t *testing.T) {
	inst := smallFatTreeInstance(t, 1, 3, 4)
	rng := rand.New(rand.NewSource(2))
	res, err := CircuitFreePaths{}.ScheduleASAP(inst, rng)
	if err != nil {
		t.Fatalf("ScheduleASAP: %v", err)
	}
	if err := res.Schedule.Validate(inst); err != nil {
		t.Fatalf("schedule infeasible: %v", err)
	}
	if res.Objective(inst) <= 0 {
		t.Errorf("objective should be positive")
	}
	if len(res.FlowOrder) != inst.NumFlows() {
		t.Errorf("flow order has %d entries, want %d", len(res.FlowOrder), inst.NumFlows())
	}
	if len(res.ChosenPaths) != inst.NumFlows() {
		t.Errorf("chosen paths has %d entries, want %d", len(res.ChosenPaths), inst.NumFlows())
	}
	// The paper's §4.3 observation: on fat-trees the LP concentrates each
	// flow on a single path.
	single := 0
	for _, n := range res.PathsPerFlow {
		if n == 1 {
			single++
		}
	}
	if single < inst.NumFlows()/2 {
		t.Errorf("only %d/%d flows used a single LP path; expected most to", single, inst.NumFlows())
	}
}

func TestCircuitFreePathsProvableFeasibleAndBounded(t *testing.T) {
	inst := smallFatTreeInstance(t, 3, 2, 3)
	rng := rand.New(rand.NewSource(4))
	res, err := CircuitFreePaths{}.ScheduleProvable(inst, rng)
	if err != nil {
		t.Fatalf("ScheduleProvable: %v", err)
	}
	if err := res.Schedule.Validate(inst); err != nil {
		t.Fatalf("provable schedule infeasible: %v", err)
	}
	lb := CombinedLowerBound(inst, res)
	if lb <= 0 {
		t.Fatalf("lower bound should be positive")
	}
	if res.Objective(inst) < lb-1e-6 {
		t.Errorf("objective below lower bound")
	}
}

func TestCircuitFreePathsHonorsPreassignedPaths(t *testing.T) {
	inst := figure1Instance(t, true)
	rng := rand.New(rand.NewSource(1))
	res, err := CircuitFreePaths{}.ScheduleASAP(inst, rng)
	if err != nil {
		t.Fatal(err)
	}
	for _, ref := range inst.FlowRefs() {
		want := inst.Flow(ref).Path
		got := res.ChosenPaths[ref]
		if len(want) != len(got) {
			t.Errorf("flow %s path changed", ref)
		}
	}
}

func TestCircuitExactOnTriangle(t *testing.T) {
	inst := figure1Instance(t, false) // no paths: routing is part of the problem
	rng := rand.New(rand.NewSource(5))
	res, err := CircuitFreePathsExact{}.ScheduleASAP(inst, rng)
	if err != nil {
		t.Fatalf("exact ScheduleASAP: %v", err)
	}
	if err := res.Schedule.Validate(inst); err != nil {
		t.Fatalf("schedule infeasible: %v", err)
	}
	// Optimum is 6 (see the sim tests); the LP-guided schedule should be
	// close; certainly no worse than strict coflow priority (8).
	if got := res.Objective(inst); got > 8+1e-6 {
		t.Errorf("exact LP-based objective = %v, want <= 8", got)
	}
	lb := CombinedLowerBound(inst, res)
	if res.Objective(inst) < lb-1e-6 {
		t.Errorf("objective below lower bound")
	}

	prov, err := CircuitFreePathsExact{}.ScheduleProvable(inst, rng)
	if err != nil {
		t.Fatalf("exact ScheduleProvable: %v", err)
	}
	if err := prov.Schedule.Validate(inst); err != nil {
		t.Fatalf("provable schedule infeasible: %v", err)
	}
}

func TestCircuitExactCanSplitAcrossPaths(t *testing.T) {
	// Two parallel 2-hop routes between s and t, each of capacity 1, and a
	// single flow of size 4: the exact LP can use both routes fractionally,
	// and its lower bound must reflect the combined capacity (completion >= 2
	// rather than 4). The chosen single path then carries the whole flow.
	g := graph.New()
	s := g.AddNode("s", graph.KindHost)
	a := g.AddNode("a", graph.KindHost)
	b := g.AddNode("b", graph.KindHost)
	d := g.AddNode("t", graph.KindHost)
	g.AddEdge(s, a, 1)
	g.AddEdge(a, d, 1)
	g.AddEdge(s, b, 1)
	g.AddEdge(b, d, 1)
	inst := &coflow.Instance{
		Network: g,
		Coflows: []coflow.Coflow{{Name: "big", Weight: 1, Flows: []coflow.Flow{{Source: s, Dest: d, Size: 4}}}},
	}
	rng := rand.New(rand.NewSource(1))
	res, err := CircuitFreePathsExact{}.ScheduleASAP(inst, rng)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Schedule.Validate(inst); err != nil {
		t.Fatal(err)
	}
	// LP lower bound should be at least 1 (=2/(1+eps)); the trivial bound is 2.
	if lb := CombinedLowerBound(inst, res); lb < 2-1e-6 {
		t.Errorf("lower bound = %v, want >= 2", lb)
	}
	// A single path of capacity 1 must take 4 time units.
	if got := res.Objective(inst); math.Abs(got-4) > 1e-6 {
		t.Errorf("objective = %v, want 4 (single path)", got)
	}
	// The decomposition should have found both routes.
	bigRef := coflow.FlowRef{Coflow: 0, Index: 0}
	if res.PathsPerFlow[bigRef] < 2 {
		t.Errorf("expected the LP to split the flow across >= 2 paths, got %d", res.PathsPerFlow[bigRef])
	}
}

func TestResultApproximationRatio(t *testing.T) {
	inst := figure1Instance(t, true)
	res, err := CircuitGivenPaths{}.ScheduleASAP(inst)
	if err != nil {
		t.Fatal(err)
	}
	ratio := res.ApproximationRatio(inst)
	if ratio < 1-1e-9 || math.IsInf(ratio, 1) {
		t.Errorf("approximation ratio = %v, want finite >= 1", ratio)
	}
	res.LowerBound = 0
	if !math.IsInf(res.ApproximationRatio(inst), 1) {
		t.Errorf("zero lower bound should give +Inf ratio")
	}
}

func TestTrivialLowerBound(t *testing.T) {
	inst := figure1Instance(t, true)
	lb := TrivialLowerBound(inst)
	// Coflow A needs at least 2 (A1 size 2 over a unit path), B at least 1,
	// C at least 2: total >= 5.
	if lb < 5-1e-9 {
		t.Errorf("trivial lower bound = %v, want >= 5", lb)
	}
	// Without paths, max-flow between distinct triangle nodes is 2, so the
	// bound halves for the size-2 flows: 1 + 0.5 + 1 = 2.5.
	noPaths := figure1Instance(t, false)
	lb2 := TrivialLowerBound(noPaths)
	if math.Abs(lb2-2.5) > 1e-9 || lb2 > lb+1e-9 {
		t.Errorf("free-path trivial bound = %v, want 2.5 (and <= %v)", lb2, lb)
	}
}
