package core

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"coflowsched/internal/coflow"
	"coflowsched/internal/graph"
	"coflowsched/internal/intervals"
	"coflowsched/internal/lp"
	"coflowsched/internal/sim"
)

// CircuitFreePathsExact is the paper's §2.2 algorithm in its exact form: the
// interval-indexed LP (15)–(23) carries one flow variable per (flow, edge,
// interval), so routing is unrestricted. The rounding step aggregates and
// scales each flow's fractional routing, applies the flow decomposition
// theorem, and picks a single path by Raghavan–Thompson randomized rounding;
// overloaded edges are repaired by stretching the schedule, giving the
// O(log |E| / log log |E|) guarantee.
//
// The LP has Θ(|F| · |E| · L) variables, so this formulation is intended for
// small networks (it is the reference implementation used by tests and the
// Table 1 experiment); CircuitFreePaths is the scalable variant.
type CircuitFreePathsExact struct {
	Opts Options
}

// Name identifies the scheduler.
func (CircuitFreePathsExact) Name() string { return "LP-Based-Exact" }

// arcLP holds the exact formulation's variables.
type arcLP struct {
	inst *coflow.Instance
	opts Options
	grid *intervals.Grid
	refs []coflow.FlowRef

	prob      *lp.Problem
	relIdx    map[coflow.FlowRef]int
	xvar      map[coflow.FlowRef][]lp.Var   // per interval
	yvar      map[coflow.FlowRef][][]lp.Var // per interval, per edge
	coflowVar []lp.Var

	sol *lp.Solution
}

func (s CircuitFreePathsExact) buildLP(inst *coflow.Instance) (*arcLP, error) {
	if err := inst.Validate(false); err != nil {
		return nil, err
	}
	opts := s.Opts.withDefaults()
	horizon := inst.TimeHorizon() * math.Pow(1+opts.Epsilon, float64(opts.Displacement+2))
	grid := intervals.New(opts.Epsilon, horizon)
	L := grid.NumIntervals()
	g := inst.Network
	E := g.NumEdges()

	a := &arcLP{
		inst:   inst,
		opts:   opts,
		grid:   grid,
		refs:   inst.FlowRefs(),
		prob:   lp.NewProblem(lp.Minimize),
		relIdx: make(map[coflow.FlowRef]int),
		xvar:   make(map[coflow.FlowRef][]lp.Var),
		yvar:   make(map[coflow.FlowRef][][]lp.Var),
	}
	a.coflowVar = make([]lp.Var, len(inst.Coflows))
	for i, cf := range inst.Coflows {
		a.coflowVar[i] = a.prob.AddVariable(fmt.Sprintf("C_%d", i), 0, lp.Inf, cf.Weight)
	}

	for _, ref := range a.refs {
		f := inst.Flow(ref)
		rel := grid.RoundUpRelease(f.Release)
		a.relIdx[ref] = rel
		xs := make([]lp.Var, L)
		ys := make([][]lp.Var, L)
		for l := 0; l < L; l++ {
			if l < rel {
				xs[l] = -1
				continue
			}
			xs[l] = a.prob.AddVariable(fmt.Sprintf("x_%s_l%d", ref, l), 0, lp.Inf, 0)
			ys[l] = make([]lp.Var, E)
			for e := 0; e < E; e++ {
				ys[l][e] = a.prob.AddVariable(fmt.Sprintf("y_%s_l%d_e%d", ref, l, e), 0, lp.Inf, 0)
			}
		}
		a.xvar[ref] = xs
		a.yvar[ref] = ys
	}

	// Delivery and completion constraints.
	for _, ref := range a.refs {
		var sumTerms, timeTerms []lp.Term
		for l := a.relIdx[ref]; l < L; l++ {
			v := a.xvar[ref][l]
			sumTerms = append(sumTerms, lp.Term{Var: v, Coef: 1})
			if lower := grid.Lower(l); lower > 0 {
				timeTerms = append(timeTerms, lp.Term{Var: v, Coef: lower})
			}
		}
		a.prob.AddConstraint(fmt.Sprintf("deliver_%s", ref), lp.EQ, 1, sumTerms...)
		timeTerms = append(timeTerms, lp.Term{Var: a.coflowVar[ref.Coflow], Coef: -1})
		a.prob.AddConstraint(fmt.Sprintf("complete_%s", ref), lp.LE, 0, timeTerms...)
	}

	// Flow conservation (18)–(20): per flow, per interval.
	for _, ref := range a.refs {
		f := inst.Flow(ref)
		for l := a.relIdx[ref]; l < L; l++ {
			ys := a.yvar[ref][l]
			// Net flow into the destination equals σ x / len(ℓ).
			var destTerms []lp.Term
			for _, e := range g.In(f.Dest) {
				destTerms = append(destTerms, lp.Term{Var: ys[e], Coef: 1})
			}
			for _, e := range g.Out(f.Dest) {
				destTerms = append(destTerms, lp.Term{Var: ys[e], Coef: -1})
			}
			destTerms = append(destTerms, lp.Term{Var: a.xvar[ref][l], Coef: -f.Size / grid.Length(l)})
			a.prob.AddConstraint(fmt.Sprintf("dest_%s_l%d", ref, l), lp.EQ, 0, destTerms...)
			// Net flow out of the source equals σ x / len(ℓ).
			var srcTerms []lp.Term
			for _, e := range g.Out(f.Source) {
				srcTerms = append(srcTerms, lp.Term{Var: ys[e], Coef: 1})
			}
			for _, e := range g.In(f.Source) {
				srcTerms = append(srcTerms, lp.Term{Var: ys[e], Coef: -1})
			}
			srcTerms = append(srcTerms, lp.Term{Var: a.xvar[ref][l], Coef: -f.Size / grid.Length(l)})
			a.prob.AddConstraint(fmt.Sprintf("src_%s_l%d", ref, l), lp.EQ, 0, srcTerms...)
			// Conservation at every other node.
			for v := 0; v < g.NumNodes(); v++ {
				node := graph.NodeID(v)
				if node == f.Source || node == f.Dest {
					continue
				}
				var terms []lp.Term
				for _, e := range g.Out(node) {
					terms = append(terms, lp.Term{Var: ys[e], Coef: 1})
				}
				for _, e := range g.In(node) {
					terms = append(terms, lp.Term{Var: ys[e], Coef: -1})
				}
				if len(terms) == 0 {
					continue
				}
				a.prob.AddConstraint(fmt.Sprintf("cons_%s_l%d_v%d", ref, l, v), lp.EQ, 0, terms...)
			}
		}
	}

	// Capacity (21): per edge, per interval.
	for l := 0; l < L; l++ {
		for e := 0; e < E; e++ {
			var terms []lp.Term
			for _, ref := range a.refs {
				if l < a.relIdx[ref] {
					continue
				}
				terms = append(terms, lp.Term{Var: a.yvar[ref][l][e], Coef: 1})
			}
			if len(terms) == 0 {
				continue
			}
			a.prob.AddConstraint(fmt.Sprintf("cap_e%d_l%d", e, l), lp.LE, g.Capacity(graph.EdgeID(e)), terms...)
		}
	}
	return a, nil
}

func (a *arcLP) solve() error {
	sol, err := a.prob.Solve(a.opts.LP)
	if err != nil {
		return fmt.Errorf("core: exact LP solve failed: %w", err)
	}
	a.sol = sol
	return nil
}

func (a *arcLP) xvalue(ref coflow.FlowRef, l int) float64 {
	v := a.xvar[ref][l]
	if v < 0 {
		return 0
	}
	x := a.sol.Value(v)
	if x < 0 {
		return 0
	}
	return x
}

// alphaInterval mirrors circuitLP.alphaInterval.
func (a *arcLP) alphaInterval(ref coflow.FlowRef, alpha float64) int {
	cum := 0.0
	for l := 0; l < a.grid.NumIntervals(); l++ {
		cum += a.xvalue(ref, l)
		if cum >= alpha-1e-9 {
			return l
		}
	}
	return a.grid.NumIntervals() - 1
}

func (a *arcLP) flowLPCompletion(ref coflow.FlowRef) float64 {
	s := 0.0
	for l := 0; l < a.grid.NumIntervals(); l++ {
		s += a.grid.Lower(l) * a.xvalue(ref, l)
	}
	return s
}

// aggregatedVolume returns the total volume (bandwidth × interval length)
// routed over each edge for the flow across intervals 0..maxL (inclusive).
func (a *arcLP) aggregatedVolume(ref coflow.FlowRef, maxL int) []float64 {
	E := a.inst.Network.NumEdges()
	vol := make([]float64, E)
	for l := a.relIdx[ref]; l <= maxL && l < a.grid.NumIntervals(); l++ {
		ys := a.yvar[ref][l]
		if ys == nil {
			continue
		}
		for e := 0; e < E; e++ {
			v := a.sol.Value(ys[e])
			if v > 1e-12 {
				vol[e] += v * a.grid.Length(l)
			}
		}
	}
	return vol
}

// decomposePaths applies the flow decomposition theorem to the flow's
// aggregated fractional routing and returns the weighted paths.
func (a *arcLP) decomposePaths(ref coflow.FlowRef, maxL int) []graph.WeightedPath {
	f := a.inst.Flow(ref)
	vol := a.aggregatedVolume(ref, maxL)
	return a.inst.Network.DecomposeFlow(f.Source, f.Dest, vol)
}

// choosePath picks one decomposed path: randomized rounding proportional to
// carried volume, or the thickest path when thickest is true.
func (a *arcLP) choosePath(ref coflow.FlowRef, rng *rand.Rand, thickest bool) (graph.Path, int) {
	paths := a.decomposePaths(ref, a.grid.NumIntervals()-1)
	if len(paths) == 0 {
		// The LP routed nothing detectable (numerical noise); fall back to a
		// shortest path.
		f := a.inst.Flow(ref)
		return a.inst.Network.ShortestPath(f.Source, f.Dest), 1
	}
	if thickest || rng == nil {
		best := 0
		for i := range paths {
			if paths[i].Amount > paths[best].Amount {
				best = i
			}
		}
		return paths[best].Path, len(paths)
	}
	total := graph.TotalAmount(paths)
	r := rng.Float64() * total
	for _, wp := range paths {
		r -= wp.Amount
		if r <= 0 {
			return wp.Path, len(paths)
		}
	}
	return paths[len(paths)-1].Path, len(paths)
}

func (a *arcLP) lpOrder() []coflow.FlowRef {
	type key struct {
		idx int
		c   float64
	}
	keys := make([]key, len(a.inst.Coflows))
	for i := range a.inst.Coflows {
		keys[i] = key{idx: i, c: a.sol.Value(a.coflowVar[i])}
	}
	sort.SliceStable(keys, func(x, y int) bool { return keys[x].c < keys[y].c })
	var order []coflow.FlowRef
	for _, k := range keys {
		cf := a.inst.Coflows[k.idx]
		refs := make([]coflow.FlowRef, len(cf.Flows))
		for j := range cf.Flows {
			refs[j] = coflow.FlowRef{Coflow: k.idx, Index: j}
		}
		sort.SliceStable(refs, func(x, y int) bool {
			return a.flowLPCompletion(refs[x]) < a.flowLPCompletion(refs[y])
		})
		order = append(order, refs...)
	}
	return order
}

func (a *arcLP) buildResult(cs *coflow.CircuitSchedule, chosen map[coflow.FlowRef]graph.Path, paths map[coflow.FlowRef]int) *Result {
	return &Result{
		Schedule:     cs,
		LPObjective:  a.sol.Objective,
		LowerBound:   a.sol.Objective / (1 + a.opts.Epsilon),
		LPIterations: a.sol.Iterations,
		PathsPerFlow: paths,
		FlowOrder:    a.lpOrder(),
		ChosenPaths:  chosen,
	}
}

// ScheduleProvable runs the exact LP, flow decomposition and randomized
// rounding, placing every flow in interval h_α + D; overloads are repaired by
// stretching the schedule.
func (s CircuitFreePathsExact) ScheduleProvable(inst *coflow.Instance, rng *rand.Rand) (*Result, error) {
	a, err := s.buildLP(inst)
	if err != nil {
		return nil, err
	}
	if err := a.solve(); err != nil {
		return nil, err
	}
	cs := coflow.NewCircuitSchedule()
	chosen := make(map[coflow.FlowRef]graph.Path)
	pathsPerFlow := make(map[coflow.FlowRef]int)
	L := a.grid.NumIntervals()
	for _, ref := range a.refs {
		f := inst.Flow(ref)
		path, n := a.choosePath(ref, rng, false)
		if path == nil {
			return nil, fmt.Errorf("core: no path recovered for flow %s", ref)
		}
		chosen[ref] = path
		pathsPerFlow[ref] = n
		h := a.alphaInterval(ref, a.opts.Alpha)
		k := h + a.opts.Displacement
		if k >= L {
			k = L - 1
		}
		start, end := a.grid.Lower(k), a.grid.Upper(k)
		cs.Set(ref, &coflow.FlowSchedule{
			Path:     path,
			Segments: []coflow.BandwidthSegment{{Start: start, End: end, Rate: f.Size / (end - start)}},
		})
	}
	if util := cs.MaxEdgeUtilization(inst); util > 1+1e-9 {
		cs.ScaleTime(util)
	}
	return a.buildResult(cs, chosen, pathsPerFlow), nil
}

// ScheduleASAP runs the exact LP and the practical start-as-soon-as-possible
// mode: thickest decomposed path per flow, LP priority order, greedy
// simulation.
func (s CircuitFreePathsExact) ScheduleASAP(inst *coflow.Instance, rng *rand.Rand) (*Result, error) {
	a, err := s.buildLP(inst)
	if err != nil {
		return nil, err
	}
	if err := a.solve(); err != nil {
		return nil, err
	}
	order := a.lpOrder()
	candidates := make(map[coflow.FlowRef][]graph.WeightedPath)
	pathsPerFlow := make(map[coflow.FlowRef]int)
	for _, ref := range a.refs {
		wps := a.decomposePaths(ref, a.grid.NumIntervals()-1)
		if len(wps) == 0 {
			f := inst.Flow(ref)
			sp := inst.Network.ShortestPath(f.Source, f.Dest)
			if sp == nil {
				return nil, fmt.Errorf("core: no path recovered for flow %s", ref)
			}
			wps = []graph.WeightedPath{{Path: sp, Amount: 1}}
		}
		candidates[ref] = wps
		pathsPerFlow[ref] = len(wps)
	}
	chosen := loadAwareSelect(inst, order, candidates)
	cs, err := sim.Run(inst, sim.Config{Paths: chosen, Order: order, Policy: sim.Priority})
	if err != nil {
		return nil, fmt.Errorf("core: simulating ASAP schedule: %w", err)
	}
	res := a.buildResult(cs, chosen, pathsPerFlow)
	res.FlowOrder = order
	return res, nil
}

// Schedule satisfies the common scheduler signature; practical mode.
func (s CircuitFreePathsExact) Schedule(inst *coflow.Instance, rng *rand.Rand) (*coflow.CircuitSchedule, error) {
	res, err := s.ScheduleASAP(inst, rng)
	if err != nil {
		return nil, err
	}
	return res.Schedule, nil
}
