package core

import (
	"coflowsched/internal/coflow"
)

// TrivialLowerBound returns a simple combinatorial lower bound on the optimal
// total weighted coflow completion time that is independent of the LP: each
// coflow must wait for its slowest flow, and a flow from s to d of size σ
// released at r cannot complete before r + σ / maxflow(s, d) even with the
// entire network to itself.
//
// Combined with the LP bound (max of the two), it gives the certified lower
// bounds used in the Table 1 experiment; the combination remains a valid
// lower bound because both parts are.
func TrivialLowerBound(inst *coflow.Instance) float64 {
	// Cache max-flow values per (source, dest) pair.
	type pair struct{ s, d int }
	cache := map[pair]float64{}
	total := 0.0
	for _, cf := range inst.Coflows {
		cmax := 0.0
		for _, f := range cf.Flows {
			key := pair{int(f.Source), int(f.Dest)}
			mf, ok := cache[key]
			if !ok {
				mf, _ = inst.Network.MaxFlow(f.Source, f.Dest)
				cache[key] = mf
			}
			if mf <= 0 {
				continue
			}
			var c float64
			if f.Path != nil {
				// With a fixed path the bottleneck is the path's own capacity.
				bw := f.Path.MinCapacity(inst.Network)
				if bw <= 0 {
					continue
				}
				c = f.Release + f.Size/bw
			} else {
				c = f.Release + f.Size/mf
			}
			if c > cmax {
				cmax = c
			}
		}
		total += cf.Weight * cmax
	}
	return total
}

// CombinedLowerBound returns the larger of the LP-derived lower bound in res
// and the trivial combinatorial bound — still a valid lower bound on the
// optimum, and the reference used when reporting empirical approximation
// ratios.
func CombinedLowerBound(inst *coflow.Instance, res *Result) float64 {
	lb := TrivialLowerBound(inst)
	if res != nil && res.LowerBound > lb {
		lb = res.LowerBound
	}
	return lb
}
