package core

import (
	"math"

	"coflowsched/internal/lp"
)

// Options tunes the LP-based schedulers. The zero value selects defaults that
// guarantee feasible provable-mode schedules.
type Options struct {
	// Epsilon is the interval-grid parameter ε (> 0). Intervals are
	// (τ_ℓ, τ_{ℓ+1}] with τ_ℓ = (1+ε)^(ℓ-1). Default 1 (powers of two), the
	// value §2.2 of the paper uses. Smaller values tighten the LP lower
	// bound at the cost of more intervals.
	Epsilon float64
	// Alpha is the α-point used by the rounding step (0 < α < 1). Default
	// 0.5 (half-intervals), as in §2.2.
	Alpha float64
	// Displacement is the paper's D: a flow whose α-interval is h runs in
	// interval h+D. Default 3. Feasibility of the provable rounding requires
	// α · ε · (1+ε)^(D-1) >= 1; the defaults satisfy it with slack 2.
	Displacement int
	// CandidatePaths is the number of shortest candidate paths per flow used
	// by the restricted (scalable) free-path LP. Default 4. Ignored when
	// paths are given or by the exact arc-flow formulation.
	CandidatePaths int
	// LP overrides solver options.
	LP *lp.Options
}

func (o Options) withDefaults() Options {
	if o.Epsilon <= 0 {
		o.Epsilon = 1
	}
	if o.Alpha <= 0 || o.Alpha >= 1 {
		o.Alpha = 0.5
	}
	if o.Displacement <= 0 {
		o.Displacement = 3
	}
	if o.CandidatePaths <= 0 {
		o.CandidatePaths = 4
	}
	return o
}

// feasibilityCondition reports whether the provable rounding with these
// parameters is guaranteed to respect edge capacities:
// α · ε · (1+ε)^(D-1) >= 1.
func (o Options) feasibilityCondition() bool {
	return o.Alpha*o.Epsilon*math.Pow(1+o.Epsilon, float64(o.Displacement-1)) >= 1-1e-12
}

// approximationFactor returns the worst-case blow-up of the provable
// rounding relative to the LP lower bound: (1+ε)^(D+2) / (1-α). (The paper's
// optimized accounting reaches 17.6 for the given-paths case; the constants
// here favour a simple, verifiably feasible rounding.)
func (o Options) approximationFactor() float64 {
	return math.Pow(1+o.Epsilon, float64(o.Displacement+2)) / (1 - o.Alpha)
}
