package core

import (
	"math"
	"math/rand"
	"testing"

	"coflowsched/internal/coflow"
	"coflowsched/internal/graph"
	"coflowsched/internal/workload"
)

// packetGridInstance generates a random packet workload on a small grid.
func packetGridInstance(t *testing.T, seed int64, coflows, width int) *coflow.Instance {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	inst, err := workload.Generate(graph.Grid(3, 3, 1), workload.Config{
		NumCoflows: coflows, Width: width, PacketModel: true, MeanRelease: 1,
	}, rng)
	if err != nil {
		t.Fatal(err)
	}
	return inst
}

func TestPacketGivenPathsSchedulesFeasibly(t *testing.T) {
	inst := packetGridInstance(t, 1, 3, 3)
	if err := inst.AssignShortestPaths(); err != nil {
		t.Fatal(err)
	}
	res, err := PacketGivenPaths{}.Schedule(inst)
	if err != nil {
		t.Fatalf("Schedule: %v", err)
	}
	if err := res.Schedule.Validate(inst); err != nil {
		t.Fatalf("schedule invalid: %v", err)
	}
	if res.LPObjective <= 0 || res.LowerBound <= 0 {
		t.Errorf("missing LP evidence: %+v", res)
	}
	if res.Objective(inst) < res.LowerBound-1e-6 {
		t.Errorf("objective %v below LP lower bound %v", res.Objective(inst), res.LowerBound)
	}
	if len(res.FlowOrder) != inst.NumFlows() {
		t.Errorf("flow order incomplete")
	}
	ratio := res.ApproximationRatio(inst)
	if math.IsInf(ratio, 1) || ratio < 1-1e-9 {
		t.Errorf("approximation ratio = %v", ratio)
	}
}

func TestPacketGivenPathsRequiresPathsAndUnitSizes(t *testing.T) {
	inst := packetGridInstance(t, 2, 2, 2)
	if _, err := (PacketGivenPaths{}).Schedule(inst); err == nil {
		t.Error("expected error for missing paths")
	}
	if err := inst.AssignShortestPaths(); err != nil {
		t.Fatal(err)
	}
	inst.Coflows[0].Flows[0].Size = 3
	if _, err := (PacketGivenPaths{}).Schedule(inst); err == nil {
		t.Error("expected error for non-unit packet size")
	}
}

func TestPacketFreePathsASAPAndPhased(t *testing.T) {
	inst := packetGridInstance(t, 3, 3, 3)
	rng := rand.New(rand.NewSource(1))

	asap, err := PacketFreePaths{}.ScheduleASAP(inst, rng)
	if err != nil {
		t.Fatalf("ScheduleASAP: %v", err)
	}
	if err := asap.Schedule.Validate(inst); err != nil {
		t.Fatalf("ASAP schedule invalid: %v", err)
	}

	phased, err := PacketFreePaths{}.SchedulePhased(inst, rng)
	if err != nil {
		t.Fatalf("SchedulePhased: %v", err)
	}
	if err := phased.Schedule.Validate(inst); err != nil {
		t.Fatalf("phased schedule invalid: %v", err)
	}

	// Both respect the LP lower bound; ASAP should be at least as good as the
	// phased (interval-barrier) variant.
	if asap.Objective(inst) < asap.LowerBound-1e-6 {
		t.Errorf("ASAP objective below lower bound")
	}
	if phased.Objective(inst) < phased.LowerBound-1e-6 {
		t.Errorf("phased objective below lower bound")
	}
	if asap.Objective(inst) > phased.Objective(inst)+1e-6 {
		t.Errorf("ASAP (%v) should not be worse than phased (%v)",
			asap.Objective(inst), phased.Objective(inst))
	}
}

func TestPacketFreePathsHonorsPinnedPaths(t *testing.T) {
	inst := packetGridInstance(t, 5, 2, 2)
	if err := inst.AssignShortestPaths(); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	res, err := PacketFreePaths{}.ScheduleASAP(inst, rng)
	if err != nil {
		t.Fatal(err)
	}
	// Validate() enforces that pinned paths are followed.
	if err := res.Schedule.Validate(inst); err != nil {
		t.Fatalf("pinned-path schedule invalid: %v", err)
	}
}

func TestPacketFreePathsLineSerializes(t *testing.T) {
	// Three packets over the same line: the optimum serializes them 3,4,5 and
	// the LP-guided schedule must match that exactly.
	g := graph.Line(4, 1)
	h := g.Hosts()
	inst := &coflow.Instance{Network: g}
	for i := 0; i < 3; i++ {
		inst.Coflows = append(inst.Coflows, coflow.Coflow{
			Name: "p", Weight: 1,
			Flows: []coflow.Flow{{Source: h[0], Dest: h[3], Size: 1}},
		})
	}
	rng := rand.New(rand.NewSource(3))
	res, err := PacketFreePaths{}.ScheduleASAP(inst, rng)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Schedule.Validate(inst); err != nil {
		t.Fatal(err)
	}
	if got := res.Objective(inst); math.Abs(got-12) > 1e-9 {
		t.Errorf("objective = %v, want 12 (3+4+5)", got)
	}
}
