package core

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"coflowsched/internal/coflow"
	"coflowsched/internal/graph"
	"coflowsched/internal/intervals"
	"coflowsched/internal/lp"
)

// Result carries a schedule together with the LP evidence produced while
// computing it.
type Result struct {
	// Schedule is the feasible circuit schedule.
	Schedule *coflow.CircuitSchedule
	// LPObjective is the optimal value of the interval-indexed LP.
	LPObjective float64
	// LowerBound is a certified lower bound on the optimal total weighted
	// coflow completion time: LPObjective / (1+ε) for formulations whose LP
	// relaxes every schedule (given paths and the exact arc-flow LP); for the
	// restricted candidate-path LP it lower-bounds the optimum over those
	// candidate routes.
	LowerBound float64
	// LPIterations is the number of simplex pivots used.
	LPIterations int
	// PathsPerFlow records, for every flow, how many distinct paths carried
	// positive LP mass (the paper's §4.3 observation is that this is 1 on
	// fat-trees).
	PathsPerFlow map[coflow.FlowRef]int
	// FlowOrder is the LP-derived priority order (coflows by LP completion,
	// flows within a coflow by their LP completion), used by practical mode.
	FlowOrder []coflow.FlowRef
	// ChosenPaths are the routes selected for each flow.
	ChosenPaths map[coflow.FlowRef]graph.Path
}

// Objective returns the schedule's total weighted coflow completion time.
func (r *Result) Objective(inst *coflow.Instance) float64 {
	return r.Schedule.Objective(inst)
}

// ApproximationRatio returns Objective / LowerBound (infinite when the lower
// bound is zero).
func (r *Result) ApproximationRatio(inst *coflow.Instance) float64 {
	if r.LowerBound <= 0 {
		return math.Inf(1)
	}
	return r.Objective(inst) / r.LowerBound
}

// circuitLP is the interval-indexed LP over a candidate path set per flow.
// Setting a single candidate per flow recovers the given-paths LP of §2.1;
// several candidates give the restricted (scalable) variant of §2.2.
type circuitLP struct {
	inst  *coflow.Instance
	opts  Options
	grid  *intervals.Grid
	refs  []coflow.FlowRef
	cands map[coflow.FlowRef][]graph.Path
	// relIdx is the earliest interval each flow may run in.
	relIdx map[coflow.FlowRef]int

	prob *lp.Problem
	// xvar[ref][p][ℓ] is the LP variable for the fraction of the flow
	// delivered over candidate p during interval ℓ (only ℓ >= relIdx).
	xvar map[coflow.FlowRef][][]lp.Var
	// coflowVar[i] is the completion-time variable of coflow i's dummy flow.
	coflowVar []lp.Var

	sol *lp.Solution
}

// buildCircuitLP constructs (but does not solve) the LP.
func buildCircuitLP(inst *coflow.Instance, cands map[coflow.FlowRef][]graph.Path, opts Options) (*circuitLP, error) {
	opts = opts.withDefaults()
	horizon := inst.TimeHorizon() * math.Pow(1+opts.Epsilon, float64(opts.Displacement+2))
	grid := intervals.New(opts.Epsilon, horizon)
	L := grid.NumIntervals()

	c := &circuitLP{
		inst:   inst,
		opts:   opts,
		grid:   grid,
		refs:   inst.FlowRefs(),
		cands:  cands,
		relIdx: make(map[coflow.FlowRef]int),
		prob:   lp.NewProblem(lp.Minimize),
		xvar:   make(map[coflow.FlowRef][][]lp.Var),
	}

	// Completion variable per coflow (the dummy flow f_{i0} of the
	// reformulation), carrying the coflow weight in the objective.
	c.coflowVar = make([]lp.Var, len(inst.Coflows))
	for i, cf := range inst.Coflows {
		c.coflowVar[i] = c.prob.AddVariable(fmt.Sprintf("C_%d", i), 0, lp.Inf, cf.Weight)
	}

	// x variables.
	for _, ref := range c.refs {
		f := inst.Flow(ref)
		paths := cands[ref]
		if len(paths) == 0 {
			return nil, fmt.Errorf("core: flow %s has no candidate paths", ref)
		}
		rel := grid.RoundUpRelease(f.Release)
		c.relIdx[ref] = rel
		perPath := make([][]lp.Var, len(paths))
		for p := range paths {
			perPath[p] = make([]lp.Var, L)
			for l := rel; l < L; l++ {
				perPath[p][l] = c.prob.AddVariable(
					fmt.Sprintf("x_%s_p%d_l%d", ref, p, l), 0, lp.Inf, 0)
			}
			for l := 0; l < rel; l++ {
				perPath[p][l] = -1 // not a variable: release constraint (9)/(22)
			}
		}
		c.xvar[ref] = perPath
	}

	// (4)/(15): every flow fully delivered; (5)+(6)/(16)+(17): completion of
	// the coflow dominates Σ τ_ℓ x of each of its flows.
	for _, ref := range c.refs {
		var sumTerms, timeTerms []lp.Term
		for p := range c.cands[ref] {
			for l := c.relIdx[ref]; l < L; l++ {
				v := c.xvar[ref][p][l]
				sumTerms = append(sumTerms, lp.Term{Var: v, Coef: 1})
				if lower := grid.Lower(l); lower > 0 {
					timeTerms = append(timeTerms, lp.Term{Var: v, Coef: lower})
				}
			}
		}
		c.prob.AddConstraint(fmt.Sprintf("deliver_%s", ref), lp.EQ, 1, sumTerms...)
		timeTerms = append(timeTerms, lp.Term{Var: c.coflowVar[ref.Coflow], Coef: -1})
		c.prob.AddConstraint(fmt.Sprintf("complete_%s", ref), lp.LE, 0, timeTerms...)
	}

	// (8)/(21): per-edge, per-interval capacity. Only edges appearing in some
	// candidate path need a constraint. The bandwidth used by x over interval
	// ℓ is σ · x / len(ℓ) (Lemma 1).
	edgeTerms := make(map[graph.EdgeID][][]lp.Term) // edge -> interval -> terms
	for _, ref := range c.refs {
		f := inst.Flow(ref)
		for p, path := range c.cands[ref] {
			for _, e := range path {
				if edgeTerms[e] == nil {
					edgeTerms[e] = make([][]lp.Term, L)
				}
				for l := c.relIdx[ref]; l < L; l++ {
					coef := f.Size / grid.Length(l)
					edgeTerms[e][l] = append(edgeTerms[e][l], lp.Term{Var: c.xvar[ref][p][l], Coef: coef})
				}
			}
		}
	}
	// Add capacity constraints in edge order: constraint order steers simplex
	// pivoting, and ranging over the map directly would make tied LP optima —
	// and thus the rounded schedule — vary from run to run.
	edges := make([]graph.EdgeID, 0, len(edgeTerms))
	for e := range edgeTerms {
		edges = append(edges, e)
	}
	sort.Slice(edges, func(i, j int) bool { return edges[i] < edges[j] })
	for _, e := range edges {
		perInterval := edgeTerms[e]
		capacity := inst.Network.Capacity(e)
		for l, terms := range perInterval {
			if len(terms) == 0 {
				continue
			}
			c.prob.AddConstraint(fmt.Sprintf("cap_e%d_l%d", e, l), lp.LE, capacity, terms...)
		}
	}
	return c, nil
}

// solve optimizes the LP.
func (c *circuitLP) solve() error {
	sol, err := c.prob.Solve(c.opts.LP)
	if err != nil {
		return fmt.Errorf("core: LP solve failed: %w", err)
	}
	c.sol = sol
	return nil
}

// value returns the LP value of x[ref][p][ℓ] (0 for pre-release intervals).
func (c *circuitLP) value(ref coflow.FlowRef, p, l int) float64 {
	v := c.xvar[ref][p][l]
	if v < 0 {
		return 0
	}
	x := c.sol.Value(v)
	if x < 0 {
		return 0
	}
	return x
}

// pathMass returns the total LP mass per candidate path of a flow.
func (c *circuitLP) pathMass(ref coflow.FlowRef) []float64 {
	masses := make([]float64, len(c.cands[ref]))
	for p := range c.cands[ref] {
		for l := 0; l < c.grid.NumIntervals(); l++ {
			masses[p] += c.value(ref, p, l)
		}
	}
	return masses
}

// alphaInterval returns the α-interval h of a flow: the earliest interval by
// whose end a cumulative α fraction of the flow is delivered in the LP.
func (c *circuitLP) alphaInterval(ref coflow.FlowRef, alpha float64) int {
	cum := 0.0
	for l := 0; l < c.grid.NumIntervals(); l++ {
		for p := range c.cands[ref] {
			cum += c.value(ref, p, l)
		}
		if cum >= alpha-1e-9 {
			return l
		}
	}
	return c.grid.NumIntervals() - 1
}

// flowLPCompletion returns Σ_ℓ τ_ℓ x of a flow — its fractional completion
// time in the LP.
func (c *circuitLP) flowLPCompletion(ref coflow.FlowRef) float64 {
	s := 0.0
	for l := 0; l < c.grid.NumIntervals(); l++ {
		for p := range c.cands[ref] {
			s += c.grid.Lower(l) * c.value(ref, p, l)
		}
	}
	return s
}

// lpOrder returns the LP-derived priority order: coflows sorted by their LP
// completion time (ties by index), flows within a coflow by their own LP
// completion time.
func (c *circuitLP) lpOrder() []coflow.FlowRef {
	type coflowKey struct {
		idx int
		c   float64
	}
	keys := make([]coflowKey, len(c.inst.Coflows))
	for i := range c.inst.Coflows {
		keys[i] = coflowKey{idx: i, c: c.sol.Value(c.coflowVar[i])}
	}
	sort.SliceStable(keys, func(a, b int) bool { return keys[a].c < keys[b].c })

	var order []coflow.FlowRef
	for _, k := range keys {
		cf := c.inst.Coflows[k.idx]
		refs := make([]coflow.FlowRef, len(cf.Flows))
		for j := range cf.Flows {
			refs[j] = coflow.FlowRef{Coflow: k.idx, Index: j}
		}
		sort.SliceStable(refs, func(a, b int) bool {
			return c.flowLPCompletion(refs[a]) < c.flowLPCompletion(refs[b])
		})
		order = append(order, refs...)
	}
	return order
}

// choosePath selects one path for a flow. In provable mode the choice is
// Raghavan–Thompson randomized rounding (probability proportional to LP
// mass); in thickest mode the path with the largest mass wins (the paper's
// practical implementation note).
func (c *circuitLP) choosePath(ref coflow.FlowRef, rng *rand.Rand, thickest bool) (graph.Path, int) {
	masses := c.pathMass(ref)
	total := 0.0
	positive := 0
	for _, m := range masses {
		if m > 1e-9 {
			positive++
		}
		total += m
	}
	if positive == 0 {
		return c.cands[ref][0], 1
	}
	if thickest || rng == nil {
		best := 0
		for p, m := range masses {
			if m > masses[best] {
				best = p
			}
		}
		return c.cands[ref][best], positive
	}
	r := rng.Float64() * total
	for p, m := range masses {
		r -= m
		if r <= 0 {
			return c.cands[ref][p], positive
		}
	}
	return c.cands[ref][len(masses)-1], positive
}

// roundProvable builds the interval-placed schedule of the paper's rounding
// step: every flow runs entirely within interval h_α + D of the grid at the
// constant rate needed to deliver its full size, on its chosen path. If the
// randomized path choices overload an edge (possible only in the free-path
// case), the whole schedule is stretched by the overload factor, mirroring
// the final scaling of §2.2.
func (c *circuitLP) roundProvable(rng *rand.Rand, thickest bool) (*coflow.CircuitSchedule, map[coflow.FlowRef]graph.Path, map[coflow.FlowRef]int) {
	cs := coflow.NewCircuitSchedule()
	chosen := make(map[coflow.FlowRef]graph.Path)
	pathsPerFlow := make(map[coflow.FlowRef]int)
	L := c.grid.NumIntervals()
	for _, ref := range c.refs {
		f := c.inst.Flow(ref)
		path, numPos := c.choosePath(ref, rng, thickest)
		chosen[ref] = path
		pathsPerFlow[ref] = numPos
		h := c.alphaInterval(ref, c.opts.Alpha)
		k := h + c.opts.Displacement
		if k >= L {
			k = L - 1
		}
		start, end := c.grid.Lower(k), c.grid.Upper(k)
		rate := f.Size / (end - start)
		cs.Set(ref, &coflow.FlowSchedule{
			Path:     path,
			Segments: []coflow.BandwidthSegment{{Start: start, End: end, Rate: rate}},
		})
	}
	if util := cs.MaxEdgeUtilization(c.inst); util > 1+1e-9 {
		cs.ScaleTime(util)
	}
	return cs, chosen, pathsPerFlow
}

// buildResult assembles a Result from a rounded schedule.
func (c *circuitLP) buildResult(cs *coflow.CircuitSchedule, chosen map[coflow.FlowRef]graph.Path, paths map[coflow.FlowRef]int) *Result {
	return &Result{
		Schedule:     cs,
		LPObjective:  c.sol.Objective,
		LowerBound:   c.sol.Objective / (1 + c.opts.Epsilon),
		LPIterations: c.sol.Iterations,
		PathsPerFlow: paths,
		FlowOrder:    c.lpOrder(),
		ChosenPaths:  chosen,
	}
}
