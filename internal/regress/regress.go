// Package regress is the repository's behavioral regression net: it replays
// every registered workload scenario (internal/workload) through both the
// batch epoch loop (online.Run over sim.Simulator) and the incremental
// engine (online.Engine), rounds the resulting per-policy objectives and
// per-coflow completion times, and diffs them against committed golden files
// under testdata/.
//
// The tier-1 suite only catches crashes and property violations; the goldens
// catch silent drift — a refactor that changes which coflow finishes first
// still "passes tests" everywhere else. Schedulers here are deterministic by
// contract (same instance, policy and seed produce the same schedule), so
// the goldens are exact after rounding, not tolerances.
//
// When an intentional scheduling change moves the numbers, regenerate with:
//
//	go test ./internal/regress -run TestGolden -update
//
// and review the golden diff like any other code change.
package regress

import (
	"fmt"
	"math"

	"coflowsched/internal/coflow"
	"coflowsched/internal/online"
	"coflowsched/internal/stats"
	"coflowsched/internal/workload"
)

// epochLength is the re-decision period used for every golden run. One value
// for all scenarios keeps the fixtures comparable; it matches the default
// the experiment sweeps use.
const epochLength = 2

// PolicyGolden pins one policy's batch-path output on one scenario.
type PolicyGolden struct {
	WeightedCCT      float64 `json:"weighted_cct"`
	WeightedResponse float64 `json:"weighted_response"`
	Makespan         float64 `json:"makespan"`
	// Completions is the per-coflow completion time vector — the sharpest
	// drift detector: aggregate objectives can coincide while the schedule
	// changed.
	Completions []float64 `json:"completions"`
	SlowdownP50 float64   `json:"slowdown_p50"`
	SlowdownP95 float64   `json:"slowdown_p95"`
}

// EngineGolden pins the incremental engine's output on one scenario: the
// same workload admitted coflow by coflow and advanced epoch by epoch, the
// way coflowd consumes it.
type EngineGolden struct {
	WeightedCCT      float64 `json:"weighted_cct"`
	WeightedResponse float64 `json:"weighted_response"`
	Completed        int     `json:"completed"`
	Epochs           int     `json:"epochs"`
}

// ScenarioGolden is one scenario's complete fixture.
type ScenarioGolden struct {
	Scenario string `json:"scenario"`
	Coflows  int    `json:"coflows"`
	Flows    int    `json:"flows"`
	// Policies maps policy name to the batch (online.Run) output.
	Policies map[string]PolicyGolden `json:"policies"`
	// Engine maps policy name to the incremental (online.Engine) output.
	// Expensive policies are exercised on the batch path only.
	Engine map[string]EngineGolden `json:"engine"`
}

// batchPolicies returns the policies pinned on the batch path, freshly
// constructed per call (policies may be stateful across Prepare).
func batchPolicies() []online.Policy {
	return []online.Policy{online.LPEpoch{}, online.SEBFOnline{}, online.FIFOOnline{}}
}

// enginePolicies returns the policies pinned on the incremental-engine path:
// the cheap heuristics only, so the suite stays fast enough to run under
// -race on every push (LPEpoch's per-epoch LP is covered by the batch path).
func enginePolicies() []online.Policy {
	return []online.Policy{online.SEBFOnline{}, online.FIFOOnline{}}
}

// RunScenario computes the golden record for one scenario.
func RunScenario(sc workload.Scenario) (*ScenarioGolden, error) {
	inst, arrivals, err := sc.Build()
	if err != nil {
		return nil, err
	}
	g := &ScenarioGolden{
		Scenario: sc.Name,
		Coflows:  len(inst.Coflows),
		Flows:    inst.NumFlows(),
		Policies: map[string]PolicyGolden{},
		Engine:   map[string]EngineGolden{},
	}
	for _, p := range batchPolicies() {
		res, err := online.Run(inst, p, online.Config{EpochLength: epochLength, Seed: sc.Seed})
		if err != nil {
			return nil, fmt.Errorf("regress: %s/%s batch: %w", sc.Name, p.Name(), err)
		}
		g.Policies[p.Name()] = PolicyGolden{
			WeightedCCT:      round(res.WeightedCCT),
			WeightedResponse: round(res.WeightedResponse),
			Makespan:         round(res.Makespan),
			Completions:      roundAll(res.CoflowCompletion),
			SlowdownP50:      round(stats.PercentileOr(res.Slowdown, 50, 0)),
			SlowdownP95:      round(stats.PercentileOr(res.Slowdown, 95, 0)),
		}
	}
	for _, p := range enginePolicies() {
		eg, err := runEngine(inst, arrivals, p)
		if err != nil {
			return nil, fmt.Errorf("regress: %s/%s engine: %w", sc.Name, p.Name(), err)
		}
		g.Engine[p.Name()] = eg
	}
	return g, nil
}

// runEngine streams the scenario through an incremental engine the way
// coflowd does: admissions at their arrival times, a synchronous decide and
// an advance per epoch, then a drain once every coflow has been admitted.
func runEngine(inst *coflow.Instance, arrivals []float64, policy online.Policy) (EngineGolden, error) {
	eng, err := online.NewEngine(inst.Network, policy, online.Config{EpochLength: epochLength})
	if err != nil {
		return EngineGolden{}, err
	}
	next := 0
	admit := func(upTo float64) error {
		for next < len(inst.Coflows) && arrivals[next] <= upTo {
			src := inst.Coflows[next]
			cf := coflow.Coflow{Name: src.Name, Weight: src.Weight, Flows: make([]coflow.Flow, len(src.Flows))}
			for j, f := range src.Flows {
				// Engine admission takes releases as offsets from admission.
				cf.Flows[j] = coflow.Flow{
					Source: f.Source, Dest: f.Dest, Size: f.Size,
					Release: f.Release - arrivals[next],
				}
			}
			if _, err := eng.Admit(cf, arrivals[next]); err != nil {
				return err
			}
			next++
		}
		return nil
	}
	// Walk epoch boundaries until everything is admitted and finished. The
	// budget mirrors online.Run's runaway guard.
	maxEpochs := int(inst.TimeHorizon()/epochLength)*10 + 1000
	t := 0.0
	for i := 0; next < len(inst.Coflows) || !eng.Done(); i++ {
		if i > maxEpochs {
			return EngineGolden{}, fmt.Errorf("exceeded %d epochs", maxEpochs)
		}
		t += epochLength
		if err := admit(t); err != nil {
			return EngineGolden{}, err
		}
		if err := eng.DecideSync(); err != nil {
			return EngineGolden{}, err
		}
		if err := eng.AdvanceTo(t); err != nil {
			return EngineGolden{}, err
		}
	}
	st := eng.Stats()
	return EngineGolden{
		WeightedCCT:      round(st.WeightedCCT),
		WeightedResponse: round(st.WeightedResponse),
		Completed:        st.Completed,
		Epochs:           st.Epochs,
	}, nil
}

// round quantizes to 9 decimal places: coarse enough to absorb float
// printing differences, fine enough that any real scheduling change moves
// the value.
func round(v float64) float64 { return math.Round(v*1e9) / 1e9 }

func roundAll(vs []float64) []float64 {
	out := make([]float64, len(vs))
	for i, v := range vs {
		out[i] = round(v)
	}
	return out
}
