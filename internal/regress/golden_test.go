package regress

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"coflowsched/internal/online"
	"coflowsched/internal/workload"
)

var update = flag.Bool("update", false, "rewrite the golden files from current scheduler output")

func goldenPath(name string) string {
	return filepath.Join("testdata", name+".golden.json")
}

// marshal renders a golden record in the canonical committed form: indented
// JSON with sorted map keys (encoding/json sorts map keys by construction).
func marshal(t *testing.T, g *ScenarioGolden) []byte {
	t.Helper()
	b, err := json.MarshalIndent(g, "", "  ")
	if err != nil {
		t.Fatalf("marshal golden: %v", err)
	}
	return append(b, '\n')
}

// TestGolden replays every registered scenario through the batch simulator
// and the incremental engine and compares the rounded outputs against the
// committed fixtures. A mismatch means scheduler behavior changed: either
// fix the regression, or — if the change is intended — regenerate with
// `go test ./internal/regress -run TestGolden -update` and commit the diff.
func TestGolden(t *testing.T) {
	scenarios := workload.Scenarios()
	if len(scenarios) == 0 {
		t.Fatalf("no scenarios registered")
	}
	// Every golden file must correspond to a scenario: a renamed scenario
	// must not leave a stale fixture behind that silently pins nothing.
	known := map[string]bool{}
	for _, sc := range scenarios {
		known[sc.Name+".golden.json"] = true
	}
	entries, err := os.ReadDir("testdata")
	if err != nil && !*update {
		t.Fatalf("reading testdata (run with -update to create it): %v", err)
	}
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".golden.json") && !known[e.Name()] {
			t.Errorf("stale golden file testdata/%s has no matching scenario", e.Name())
		}
	}

	for _, sc := range scenarios {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			got, err := RunScenario(sc)
			if err != nil {
				t.Fatalf("RunScenario: %v", err)
			}
			gotBytes := marshal(t, got)
			path := goldenPath(sc.Name)
			if *update {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatalf("mkdir testdata: %v", err)
				}
				if err := os.WriteFile(path, gotBytes, 0o644); err != nil {
					t.Fatalf("writing golden: %v", err)
				}
				t.Logf("updated %s", path)
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden %s (run `go test ./internal/regress -run TestGolden -update` and commit it): %v", path, err)
			}
			if diff := diffLines(string(want), string(gotBytes)); diff != "" {
				t.Errorf("scheduler output drifted from %s:\n%s\nIf this change is intended, regenerate with -update and commit the new golden.", path, diff)
			}
		})
	}
}

// TestGoldenDetectsDrift proves the harness actually fails on behavioral
// change: perturbing one completion time must produce a reported diff.
func TestGoldenDetectsDrift(t *testing.T) {
	sc, ok := workload.LookupScenario("uniform")
	if !ok {
		t.Fatalf("uniform scenario not registered")
	}
	g, err := RunScenario(sc)
	if err != nil {
		t.Fatalf("RunScenario: %v", err)
	}
	before := marshal(t, g)
	name := online.FIFOOnline{}.Name()
	pg := g.Policies[name]
	if len(pg.Completions) == 0 {
		// Policy names are part of the pinned surface; fail loudly if the
		// lookup key rotted.
		t.Fatalf("%s missing from golden policies: %v", name, keys(g.Policies))
	}
	pg.Completions[0] += 0.125
	g.Policies[name] = pg
	after := marshal(t, g)
	if diff := diffLines(string(before), string(after)); diff == "" {
		t.Fatalf("perturbed golden compares equal — the harness cannot detect drift")
	}
}

func keys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

// diffLines returns a compact line diff ("" when equal): the first run of
// differing lines with a little context, enough to see which policy and
// which value moved without pulling in a diff dependency.
func diffLines(want, got string) string {
	if want == got {
		return ""
	}
	wl := strings.Split(want, "\n")
	gl := strings.Split(got, "\n")
	var b strings.Builder
	reported := 0
	for i := 0; i < len(wl) || i < len(gl); i++ {
		var w, g string
		if i < len(wl) {
			w = wl[i]
		}
		if i < len(gl) {
			g = gl[i]
		}
		if w == g {
			continue
		}
		if reported == 0 && i > 0 {
			fmt.Fprintf(&b, "  %4d   %s\n", i, wl[max(0, i-1)])
		}
		fmt.Fprintf(&b, "- %4d   %s\n+ %4d   %s\n", i+1, w, i+1, g)
		reported++
		if reported >= 10 {
			fmt.Fprintf(&b, "  ... (more differences elided)\n")
			break
		}
	}
	return b.String()
}
