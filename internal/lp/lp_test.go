package lp

import (
	"math"
	"strings"
	"testing"
)

const eps = 1e-6

func almostEqual(a, b float64) bool {
	return math.Abs(a-b) <= eps*(1+math.Abs(a)+math.Abs(b))
}

func TestSimpleMaximization(t *testing.T) {
	// max 3x + 5y  s.t.  x <= 4, 2y <= 12, 3x + 2y <= 18  (classic example)
	// optimum x=2, y=6, obj=36.
	p := NewProblem(Maximize)
	x := p.AddVariable("x", 0, Inf, 3)
	y := p.AddVariable("y", 0, Inf, 5)
	p.AddConstraint("c1", LE, 4, Term{x, 1})
	p.AddConstraint("c2", LE, 12, Term{y, 2})
	p.AddConstraint("c3", LE, 18, Term{x, 3}, Term{y, 2})
	sol, err := p.Solve(nil)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if !almostEqual(sol.Objective, 36) {
		t.Errorf("objective = %v, want 36", sol.Objective)
	}
	if !almostEqual(sol.Value(x), 2) || !almostEqual(sol.Value(y), 6) {
		t.Errorf("x=%v y=%v, want 2, 6", sol.Value(x), sol.Value(y))
	}
}

func TestSimpleMinimizationWithGE(t *testing.T) {
	// min 2x + 3y  s.t.  x + y >= 4, x + 2y >= 6, x,y >= 0.
	// optimum at x=2, y=2, obj=10.
	p := NewProblem(Minimize)
	x := p.AddVariable("x", 0, Inf, 2)
	y := p.AddVariable("y", 0, Inf, 3)
	p.AddConstraint("c1", GE, 4, Term{x, 1}, Term{y, 1})
	p.AddConstraint("c2", GE, 6, Term{x, 1}, Term{y, 2})
	sol, err := p.Solve(nil)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if !almostEqual(sol.Objective, 10) {
		t.Errorf("objective = %v, want 10", sol.Objective)
	}
}

func TestEqualityConstraints(t *testing.T) {
	// min x + y s.t. x + y = 5, x - y = 1 -> x=3, y=2, obj=5.
	p := NewProblem(Minimize)
	x := p.AddVariable("x", 0, Inf, 1)
	y := p.AddVariable("y", 0, Inf, 1)
	p.AddConstraint("sum", EQ, 5, Term{x, 1}, Term{y, 1})
	p.AddConstraint("diff", EQ, 1, Term{x, 1}, Term{y, -1})
	sol, err := p.Solve(nil)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if !almostEqual(sol.Value(x), 3) || !almostEqual(sol.Value(y), 2) {
		t.Errorf("x=%v y=%v, want 3, 2", sol.Value(x), sol.Value(y))
	}
	if !almostEqual(sol.Objective, 5) {
		t.Errorf("objective = %v, want 5", sol.Objective)
	}
}

func TestInfeasible(t *testing.T) {
	p := NewProblem(Minimize)
	x := p.AddVariable("x", 0, Inf, 1)
	p.AddConstraint("lo", GE, 5, Term{x, 1})
	p.AddConstraint("hi", LE, 3, Term{x, 1})
	sol, err := p.Solve(nil)
	if err != ErrInfeasible {
		t.Fatalf("err = %v, want ErrInfeasible", err)
	}
	if sol.Status != Infeasible {
		t.Errorf("status = %v, want Infeasible", sol.Status)
	}
}

func TestInfeasibleEquality(t *testing.T) {
	p := NewProblem(Minimize)
	x := p.AddVariable("x", 0, Inf, 0)
	y := p.AddVariable("y", 0, Inf, 0)
	p.AddConstraint("a", EQ, 1, Term{x, 1}, Term{y, 1})
	p.AddConstraint("b", EQ, 3, Term{x, 1}, Term{y, 1})
	_, err := p.Solve(nil)
	if err != ErrInfeasible {
		t.Fatalf("err = %v, want ErrInfeasible", err)
	}
}

func TestUnbounded(t *testing.T) {
	p := NewProblem(Maximize)
	x := p.AddVariable("x", 0, Inf, 1)
	y := p.AddVariable("y", 0, Inf, 0)
	p.AddConstraint("c", GE, 1, Term{x, 1}, Term{y, 1})
	sol, err := p.Solve(nil)
	if err != ErrUnbounded {
		t.Fatalf("err = %v, want ErrUnbounded", err)
	}
	if sol.Status != Unbounded {
		t.Errorf("status = %v, want Unbounded", sol.Status)
	}
}

func TestVariableUpperBounds(t *testing.T) {
	// max x + y with x <= 3 (bound), y <= 2 (bound), x + y <= 4.
	p := NewProblem(Maximize)
	x := p.AddVariable("x", 0, 3, 1)
	y := p.AddVariable("y", 0, 2, 1)
	p.AddConstraint("cap", LE, 4, Term{x, 1}, Term{y, 1})
	sol, err := p.Solve(nil)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if !almostEqual(sol.Objective, 4) {
		t.Errorf("objective = %v, want 4", sol.Objective)
	}
	if sol.Value(x) > 3+eps || sol.Value(y) > 2+eps {
		t.Errorf("bounds violated: x=%v y=%v", sol.Value(x), sol.Value(y))
	}
}

func TestNonzeroLowerBounds(t *testing.T) {
	// min x + y with x >= 2, y >= 3 (bounds), x + y >= 7 -> obj 7.
	p := NewProblem(Minimize)
	x := p.AddVariable("x", 2, Inf, 1)
	y := p.AddVariable("y", 3, Inf, 1)
	p.AddConstraint("c", GE, 7, Term{x, 1}, Term{y, 1})
	sol, err := p.Solve(nil)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if !almostEqual(sol.Objective, 7) {
		t.Errorf("objective = %v, want 7", sol.Objective)
	}
	if sol.Value(x) < 2-eps || sol.Value(y) < 3-eps {
		t.Errorf("lower bounds violated: x=%v y=%v", sol.Value(x), sol.Value(y))
	}
}

func TestFixedVariableViaBounds(t *testing.T) {
	// A variable fixed by identical bounds must take exactly that value.
	p := NewProblem(Minimize)
	x := p.AddVariable("x", 5, 5, 1)
	y := p.AddVariable("y", 0, Inf, 1)
	p.AddConstraint("c", GE, 8, Term{x, 1}, Term{y, 1})
	sol, err := p.Solve(nil)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if !almostEqual(sol.Value(x), 5) {
		t.Errorf("x = %v, want 5", sol.Value(x))
	}
	if !almostEqual(sol.Objective, 8) {
		t.Errorf("objective = %v, want 8", sol.Objective)
	}
}

func TestNegativeRHS(t *testing.T) {
	// min x s.t. -x <= -3  (i.e. x >= 3).
	p := NewProblem(Minimize)
	x := p.AddVariable("x", 0, Inf, 1)
	p.AddConstraint("c", LE, -3, Term{x, -1})
	sol, err := p.Solve(nil)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if !almostEqual(sol.Value(x), 3) {
		t.Errorf("x = %v, want 3", sol.Value(x))
	}
}

func TestDegenerateLP(t *testing.T) {
	// A classic degenerate instance (multiple constraints active at the
	// optimum). The solver must terminate and return the optimum.
	p := NewProblem(Maximize)
	x := p.AddVariable("x", 0, Inf, 10)
	y := p.AddVariable("y", 0, Inf, -57)
	z := p.AddVariable("z", 0, Inf, -9)
	w := p.AddVariable("w", 0, Inf, -24)
	p.AddConstraint("c1", LE, 0, Term{x, 0.5}, Term{y, -5.5}, Term{z, -2.5}, Term{w, 9})
	p.AddConstraint("c2", LE, 0, Term{x, 0.5}, Term{y, -1.5}, Term{z, -0.5}, Term{w, 1})
	p.AddConstraint("c3", LE, 1, Term{x, 1})
	sol, err := p.Solve(nil)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if !almostEqual(sol.Objective, 1) {
		t.Errorf("objective = %v, want 1", sol.Objective)
	}
}

func TestZeroObjective(t *testing.T) {
	// Pure feasibility problem: any feasible point is optimal with obj 0.
	p := NewProblem(Minimize)
	x := p.AddVariable("x", 0, Inf, 0)
	y := p.AddVariable("y", 0, Inf, 0)
	p.AddConstraint("c1", EQ, 4, Term{x, 1}, Term{y, 1})
	sol, err := p.Solve(nil)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if !almostEqual(sol.Objective, 0) {
		t.Errorf("objective = %v, want 0", sol.Objective)
	}
	if !almostEqual(sol.Value(x)+sol.Value(y), 4) {
		t.Errorf("x+y = %v, want 4", sol.Value(x)+sol.Value(y))
	}
}

func TestDuplicateTermsMerged(t *testing.T) {
	p := NewProblem(Maximize)
	x := p.AddVariable("x", 0, Inf, 1)
	// 1x + 2x <= 9  ->  x <= 3.
	p.AddConstraint("c", LE, 9, Term{x, 1}, Term{x, 2})
	sol, err := p.Solve(nil)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if !almostEqual(sol.Value(x), 3) {
		t.Errorf("x = %v, want 3", sol.Value(x))
	}
}

func TestRedundantConstraints(t *testing.T) {
	// Linearly dependent equality rows must not break phase-1 cleanup.
	p := NewProblem(Minimize)
	x := p.AddVariable("x", 0, Inf, 1)
	y := p.AddVariable("y", 0, Inf, 2)
	p.AddConstraint("a", EQ, 4, Term{x, 1}, Term{y, 1})
	p.AddConstraint("b", EQ, 8, Term{x, 2}, Term{y, 2})
	p.AddConstraint("c", EQ, 12, Term{x, 3}, Term{y, 3})
	sol, err := p.Solve(nil)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if !almostEqual(sol.Objective, 4) { // x=4, y=0
		t.Errorf("objective = %v, want 4", sol.Objective)
	}
}

func TestEmptyObjectiveNoConstraints(t *testing.T) {
	p := NewProblem(Minimize)
	x := p.AddVariable("x", 0, Inf, 1)
	sol, err := p.Solve(nil)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if !almostEqual(sol.Value(x), 0) || !almostEqual(sol.Objective, 0) {
		t.Errorf("x=%v obj=%v, want 0, 0", sol.Value(x), sol.Objective)
	}
}

func TestMaximizeWithEqualityAndBounds(t *testing.T) {
	// Transportation-like LP.
	// max 4a + 3b s.t. a + b = 10, a <= 6, b <= 7 -> a=6, b=4, obj=36.
	p := NewProblem(Maximize)
	a := p.AddVariable("a", 0, 6, 4)
	b := p.AddVariable("b", 0, 7, 3)
	p.AddConstraint("total", EQ, 10, Term{a, 1}, Term{b, 1})
	sol, err := p.Solve(nil)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if !almostEqual(sol.Objective, 36) {
		t.Errorf("objective = %v, want 36", sol.Objective)
	}
}

func TestSolutionValueOutOfRange(t *testing.T) {
	p := NewProblem(Minimize)
	x := p.AddVariable("x", 0, Inf, 1)
	sol, err := p.Solve(nil)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if got := sol.Value(Var(99)); got != 0 {
		t.Errorf("Value(out of range) = %v, want 0", got)
	}
	_ = sol.Value(x)
	var nilSol *Solution
	if got := nilSol.Value(x); got != 0 {
		t.Errorf("nil solution Value = %v, want 0", got)
	}
}

func TestProblemString(t *testing.T) {
	p := NewProblem(Minimize)
	x := p.AddVariable("x", 0, 5, 2)
	p.AddConstraint("cap", LE, 3, Term{x, 1})
	s := p.String()
	for _, want := range []string{"min", "2*x", "<= 3", "[cap]"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() missing %q:\n%s", want, s)
		}
	}
}

func TestAddVariablePanics(t *testing.T) {
	cases := []struct {
		name   string
		lb, ub float64
	}{
		{"lb>ub", 3, 1},
		{"nan", math.NaN(), 1},
		{"neginf lb", math.Inf(-1), 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Errorf("expected panic for %s", tc.name)
				}
			}()
			p := NewProblem(Minimize)
			p.AddVariable("bad", tc.lb, tc.ub, 0)
		})
	}
}

func TestAddConstraintUnknownVariablePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("expected panic for unknown variable")
		}
	}()
	p := NewProblem(Minimize)
	p.AddConstraint("bad", LE, 1, Term{Var(7), 1})
}

func TestIterationLimit(t *testing.T) {
	p := NewProblem(Maximize)
	vars := make([]Var, 30)
	for i := range vars {
		vars[i] = p.AddVariable("", 0, Inf, float64(i+1))
	}
	for i := 0; i < 30; i++ {
		terms := make([]Term, 0, len(vars))
		for j, v := range vars {
			terms = append(terms, Term{v, float64((i*j)%7 + 1)})
		}
		p.AddConstraint("", LE, float64(10+i), terms...)
	}
	sol, err := p.Solve(&Options{MaxIterations: 1})
	if err != ErrIterationLimit {
		t.Fatalf("err = %v, want ErrIterationLimit", err)
	}
	if sol.Status != IterationLimit {
		t.Errorf("status = %v, want IterationLimit", sol.Status)
	}
}

func TestLargeDiet(t *testing.T) {
	// Stigler-diet-like random-ish LP with known structure: covering LP
	// min sum x_j s.t. for each of 20 requirements, sum_j a_ij x_j >= r_i.
	// We verify feasibility of the reported solution and optimality against
	// a brute-force-verified dual bound (weak duality check).
	p := NewProblem(Minimize)
	const nFoods = 15
	const nReqs = 20
	vars := make([]Var, nFoods)
	for j := range vars {
		vars[j] = p.AddVariable("", 0, Inf, 1)
	}
	a := make([][]float64, nReqs)
	r := make([]float64, nReqs)
	for i := 0; i < nReqs; i++ {
		a[i] = make([]float64, nFoods)
		terms := make([]Term, 0, nFoods)
		for j := 0; j < nFoods; j++ {
			v := float64((i*7+j*13)%5) + 1 // 1..5, deterministic
			a[i][j] = v
			terms = append(terms, Term{vars[j], v})
		}
		r[i] = float64(i%4+1) * 3
		p.AddConstraint("", GE, r[i], terms...)
	}
	sol, err := p.Solve(nil)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	// Feasibility of returned point.
	for i := 0; i < nReqs; i++ {
		lhs := 0.0
		for j := 0; j < nFoods; j++ {
			lhs += a[i][j] * sol.Value(vars[j])
		}
		if lhs < r[i]-1e-6 {
			t.Errorf("constraint %d violated: %v < %v", i, lhs, r[i])
		}
	}
	// The objective must be at least max_i r_i / max_j a_ij (a trivial lower
	// bound) and at most sum_i r_i (trivial upper bound by scaling).
	if sol.Objective <= 0 {
		t.Errorf("objective = %v, want > 0", sol.Objective)
	}
}
