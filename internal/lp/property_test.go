package lp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// randomFeasibleLP builds a random LP that is feasible by construction:
// minimize c'x subject to Ax <= A*x0 + margin with c >= 0 and x0 >= 0, so x0
// is always feasible and the optimum is finite (objective bounded below by 0).
func randomFeasibleLP(rng *rand.Rand, n, m int) (*Problem, []Var, [][]float64, []float64, []float64) {
	p := NewProblem(Minimize)
	vars := make([]Var, n)
	c := make([]float64, n)
	for j := 0; j < n; j++ {
		c[j] = rng.Float64() * 10
		vars[j] = p.AddVariable("", 0, Inf, c[j])
	}
	x0 := make([]float64, n)
	for j := 0; j < n; j++ {
		x0[j] = rng.Float64() * 5
	}
	a := make([][]float64, m)
	b := make([]float64, m)
	for i := 0; i < m; i++ {
		a[i] = make([]float64, n)
		terms := make([]Term, 0, n)
		lhs := 0.0
		for j := 0; j < n; j++ {
			v := rng.Float64()*4 - 1 // mostly positive, some negative
			a[i][j] = v
			lhs += v * x0[j]
			terms = append(terms, Term{vars[j], v})
		}
		b[i] = lhs + rng.Float64()*2
		p.AddConstraint("", LE, b[i], terms...)
	}
	return p, vars, a, b, c
}

// TestPropertyRandomFeasibleLPsSolveToFeasibleOptima checks, over many random
// feasible LPs, that the solver reports Optimal, that the returned point is
// primal feasible, and that its objective never exceeds the objective of the
// known feasible point (all-zeros is feasible only if b >= 0, so we check
// against the construction point indirectly via monotonicity: the solver's
// objective must be <= c'x0 because x0 is feasible).
func TestPropertyRandomFeasibleLPsSolveToFeasibleOptima(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 60; trial++ {
		n := 2 + rng.Intn(6)
		m := 1 + rng.Intn(8)
		p, vars, a, b, c := randomFeasibleLP(rng, n, m)

		// Recompute x0's objective: x0 is implicit; instead verify the
		// all-feasibility property by re-deriving a feasible point from the
		// constraint construction. Simpler: solve and check feasibility and
		// optimality via weak duality against zero (objective >= 0 since
		// c >= 0, x >= 0).
		sol, err := p.Solve(nil)
		if err != nil {
			t.Fatalf("trial %d: Solve failed: %v\n%s", trial, err, p.String())
		}
		if sol.Objective < -1e-6 {
			t.Errorf("trial %d: objective %v < 0 impossible with c,x >= 0", trial, sol.Objective)
		}
		for i := 0; i < m; i++ {
			lhs := 0.0
			for j := 0; j < n; j++ {
				lhs += a[i][j] * sol.Value(vars[j])
			}
			if lhs > b[i]+1e-6 {
				t.Errorf("trial %d: constraint %d violated: %v > %v", trial, i, lhs, b[i])
			}
		}
		for j := 0; j < n; j++ {
			if sol.Value(vars[j]) < -1e-9 {
				t.Errorf("trial %d: variable %d negative: %v", trial, j, sol.Value(vars[j]))
			}
		}
		_ = c
	}
}

// TestPropertyScalingInvariance verifies that scaling the objective by a
// positive constant scales the optimal value by the same constant and leaves
// the optimal status unchanged.
func TestPropertyScalingInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 30; trial++ {
		n := 2 + rng.Intn(4)
		m := 1 + rng.Intn(5)
		scale := 1 + rng.Float64()*9

		build := func(mult float64) (*Problem, float64) {
			localRng := rand.New(rand.NewSource(int64(trial)))
			p := NewProblem(Minimize)
			vars := make([]Var, n)
			for j := 0; j < n; j++ {
				vars[j] = p.AddVariable("", 0, Inf, (localRng.Float64()*10)*mult)
			}
			for i := 0; i < m; i++ {
				terms := make([]Term, 0, n)
				for j := 0; j < n; j++ {
					terms = append(terms, Term{vars[j], localRng.Float64()*3 + 0.1})
				}
				p.AddConstraint("", GE, localRng.Float64()*10+1, terms...)
			}
			sol, err := p.Solve(nil)
			if err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
			return p, sol.Objective
		}
		_, obj1 := build(1)
		_, objS := build(scale)
		if math.Abs(objS-scale*obj1) > 1e-5*(1+math.Abs(objS)) {
			t.Errorf("trial %d: scaled objective %v != %v * %v", trial, objS, scale, obj1)
		}
	}
}

// TestPropertyWeakDualityTransportation uses testing/quick to generate small
// transportation problems (supply/demand balanced), solves them, and checks
// that the optimal cost is sandwiched between the trivial lower bound
// (total demand * min cost) and upper bound (total demand * max cost).
func TestPropertyWeakDualityTransportation(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nSrc := 2 + rng.Intn(3)
		nDst := 2 + rng.Intn(3)
		supply := make([]float64, nSrc)
		demand := make([]float64, nDst)
		total := 0.0
		for i := range supply {
			supply[i] = 1 + rng.Float64()*9
			total += supply[i]
		}
		rem := total
		for j := 0; j < nDst-1; j++ {
			demand[j] = rem * rng.Float64() / float64(nDst)
			rem -= demand[j]
		}
		demand[nDst-1] = rem

		p := NewProblem(Minimize)
		cost := make([][]float64, nSrc)
		x := make([][]Var, nSrc)
		minC, maxC := math.Inf(1), math.Inf(-1)
		for i := 0; i < nSrc; i++ {
			cost[i] = make([]float64, nDst)
			x[i] = make([]Var, nDst)
			for j := 0; j < nDst; j++ {
				cost[i][j] = 1 + rng.Float64()*4
				minC = math.Min(minC, cost[i][j])
				maxC = math.Max(maxC, cost[i][j])
				x[i][j] = p.AddVariable("", 0, Inf, cost[i][j])
			}
		}
		for i := 0; i < nSrc; i++ {
			terms := make([]Term, nDst)
			for j := 0; j < nDst; j++ {
				terms[j] = Term{x[i][j], 1}
			}
			p.AddConstraint("", LE, supply[i], terms...)
		}
		for j := 0; j < nDst; j++ {
			terms := make([]Term, nSrc)
			for i := 0; i < nSrc; i++ {
				terms[i] = Term{x[i][j], 1}
			}
			p.AddConstraint("", GE, demand[j], terms...)
		}
		sol, err := p.Solve(nil)
		if err != nil {
			return false
		}
		lo := total*minC - 1e-6
		hi := total*maxC + 1e-6
		return sol.Objective >= lo && sol.Objective <= hi
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestPropertyEqualityRowsSatisfied generates random LPs with equality rows
// derived from a known nonnegative point, and verifies the solver returns a
// point satisfying every equality to tolerance.
func TestPropertyEqualityRowsSatisfied(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 40; trial++ {
		n := 3 + rng.Intn(4)
		m := 1 + rng.Intn(3)
		p := NewProblem(Minimize)
		vars := make([]Var, n)
		for j := range vars {
			vars[j] = p.AddVariable("", 0, Inf, rng.Float64())
		}
		x0 := make([]float64, n)
		for j := range x0 {
			x0[j] = rng.Float64() * 3
		}
		a := make([][]float64, m)
		b := make([]float64, m)
		for i := 0; i < m; i++ {
			a[i] = make([]float64, n)
			terms := make([]Term, 0, n)
			lhs := 0.0
			for j := 0; j < n; j++ {
				v := rng.Float64() * 2
				a[i][j] = v
				lhs += v * x0[j]
				terms = append(terms, Term{vars[j], v})
			}
			b[i] = lhs
			p.AddConstraint("", EQ, b[i], terms...)
		}
		sol, err := p.Solve(nil)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for i := 0; i < m; i++ {
			lhs := 0.0
			for j := 0; j < n; j++ {
				lhs += a[i][j] * sol.Value(vars[j])
			}
			if math.Abs(lhs-b[i]) > 1e-5*(1+math.Abs(b[i])) {
				t.Errorf("trial %d: equality %d: |%v - %v| too large", trial, i, lhs, b[i])
			}
		}
	}
}
