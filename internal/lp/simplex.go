package lp

import (
	"errors"
	"fmt"
	"math"
)

// Errors returned by Solve. The returned *Solution carries the matching
// Status so callers can use either mechanism.
var (
	// ErrInfeasible indicates that the constraint system has no solution.
	ErrInfeasible = errors.New("lp: problem is infeasible")
	// ErrUnbounded indicates that the objective is unbounded in the
	// optimization direction.
	ErrUnbounded = errors.New("lp: problem is unbounded")
	// ErrIterationLimit indicates the pivot budget was exhausted.
	ErrIterationLimit = errors.New("lp: iteration limit exceeded")
)

// sparseCol is one column of the standard-form constraint matrix.
type sparseCol struct {
	rows []int
	vals []float64
}

// standardForm is the computational form of a Problem:
//
//	minimize c'x  subject to  Ax = b, x >= 0, b >= 0
//
// where columns 0..nOrig-1 are (lower-bound shifted) original variables,
// followed by slack/surplus columns and finally artificial columns.
type standardForm struct {
	m, n     int
	nOrig    int
	artStart int // first artificial column index; n if none

	cols []sparseCol
	c    []float64 // phase-2 costs (always minimization)
	b    []float64

	shift    []float64 // per original variable: lower bound added back on extraction
	objConst float64
	negate   bool // original problem was Maximize
}

// buildStandardForm converts p into equality standard form with nonnegative
// right-hand sides, adding rows for finite upper bounds, slack/surplus
// columns, and artificial columns where no natural unit column exists.
func buildStandardForm(p *Problem) *standardForm {
	nOrig := len(p.vars)
	// Count rows: one per constraint plus one per finite upper bound.
	ubRows := 0
	for _, v := range p.vars {
		if !math.IsInf(v.ub, 1) {
			ubRows++
		}
	}
	m := len(p.cons) + ubRows

	sf := &standardForm{
		m:      m,
		nOrig:  nOrig,
		shift:  make([]float64, nOrig),
		negate: p.sense == Maximize,
	}

	// Row-major scratch representation built first, then transposed into
	// columns once signs are fixed.
	rowOp := make([]Op, m)
	rowRHS := make([]float64, m)
	type entry struct {
		col int
		val float64
	}
	rowEntries := make([][]entry, m)

	for j, v := range p.vars {
		sf.shift[j] = v.lb
	}

	for i, con := range p.cons {
		rowOp[i] = con.op
		rhs := con.rhs
		for _, t := range con.terms {
			rhs -= t.Coef * sf.shift[t.Var]
			rowEntries[i] = append(rowEntries[i], entry{col: int(t.Var), val: t.Coef})
		}
		rowRHS[i] = rhs
	}
	r := len(p.cons)
	for j, v := range p.vars {
		if math.IsInf(v.ub, 1) {
			continue
		}
		rowOp[r] = LE
		rowRHS[r] = v.ub - v.lb
		rowEntries[r] = append(rowEntries[r], entry{col: j, val: 1})
		r++
	}

	// Objective (always minimized internally).
	objConst := 0.0
	cOrig := make([]float64, nOrig)
	for j, v := range p.vars {
		coef := v.obj
		if sf.negate {
			coef = -coef
		}
		cOrig[j] = coef
		objConst += coef * v.lb
	}
	sf.objConst = objConst

	// Determine slack columns and row sign normalization. After adding a
	// slack (+1 for LE, -1 for GE) we flip rows with negative rhs so that
	// b >= 0; a slack whose post-flip coefficient is +1 can serve as the
	// initial basic variable for its row, otherwise an artificial is added.
	nSlack := 0
	slackRow := make([]int, 0, m)
	slackSign := make([]float64, 0, m)
	for i := 0; i < m; i++ {
		if rowOp[i] == EQ {
			continue
		}
		sign := 1.0
		if rowOp[i] == GE {
			sign = -1.0
		}
		slackRow = append(slackRow, i)
		slackSign = append(slackSign, sign)
		nSlack++
	}

	rowFlip := make([]float64, m)
	for i := 0; i < m; i++ {
		if rowRHS[i] < 0 {
			rowFlip[i] = -1
		} else {
			rowFlip[i] = 1
		}
	}

	// Decide which rows need artificials: a row is covered if it has a
	// slack column whose coefficient after flipping is +1.
	needsArtificial := make([]bool, m)
	for i := 0; i < m; i++ {
		needsArtificial[i] = true
	}
	for k, i := range slackRow {
		if slackSign[k]*rowFlip[i] > 0 {
			needsArtificial[i] = false
		}
	}
	nArt := 0
	for i := 0; i < m; i++ {
		if needsArtificial[i] {
			nArt++
		}
	}

	n := nOrig + nSlack + nArt
	sf.n = n
	sf.artStart = nOrig + nSlack
	sf.cols = make([]sparseCol, n)
	sf.c = make([]float64, n)
	sf.b = make([]float64, m)
	copy(sf.c, cOrig)

	for i := 0; i < m; i++ {
		sf.b[i] = rowRHS[i] * rowFlip[i]
	}
	// Structural columns.
	for i := 0; i < m; i++ {
		for _, e := range rowEntries[i] {
			col := &sf.cols[e.col]
			col.rows = append(col.rows, i)
			col.vals = append(col.vals, e.val*rowFlip[i])
		}
	}
	// Slack columns.
	for k, i := range slackRow {
		j := nOrig + k
		sf.cols[j] = sparseCol{rows: []int{i}, vals: []float64{slackSign[k] * rowFlip[i]}}
	}
	// Artificial columns.
	art := sf.artStart
	for i := 0; i < m; i++ {
		if !needsArtificial[i] {
			continue
		}
		sf.cols[art] = sparseCol{rows: []int{i}, vals: []float64{1}}
		art++
	}
	return sf
}

// simplexState holds the revised-simplex working set: the basis, its dense
// inverse, and the current basic solution.
type simplexState struct {
	sf    *standardForm
	basis []int       // basis[i] = column basic in row i
	inB   []bool      // inB[j] = column j is basic
	binv  [][]float64 // dense basis inverse, m x m
	xB    []float64   // basic variable values
	tol   float64
	iters int
}

func newSimplexState(sf *standardForm, tol float64) *simplexState {
	m := sf.m
	st := &simplexState{
		sf:    sf,
		basis: make([]int, m),
		inB:   make([]bool, sf.n),
		binv:  make([][]float64, m),
		xB:    make([]float64, m),
		tol:   tol,
	}
	for i := range st.binv {
		st.binv[i] = make([]float64, m)
		st.binv[i][i] = 1
	}
	copy(st.xB, sf.b)

	// Initial basis: for each row prefer its slack unit column, else its
	// artificial unit column. Both were constructed as +1 unit columns.
	assigned := make([]bool, m)
	for j := sf.nOrig; j < sf.n; j++ {
		col := sf.cols[j]
		if len(col.rows) != 1 || col.vals[0] != 1 {
			continue
		}
		i := col.rows[0]
		if assigned[i] {
			continue
		}
		// Prefer slack over artificial: slacks come first, so first
		// assignment wins and artificial fills only uncovered rows.
		st.basis[i] = j
		st.inB[j] = true
		assigned[i] = true
	}
	for i := 0; i < m; i++ {
		if !assigned[i] {
			// Cannot happen by construction: every row has either a
			// usable slack or an artificial.
			panic(fmt.Sprintf("lp: row %d has no initial basic column", i))
		}
	}
	return st
}

// multiplyColumn returns w = B^{-1} * A_j for column j.
func (st *simplexState) multiplyColumn(j int) []float64 {
	m := st.sf.m
	w := make([]float64, m)
	col := st.sf.cols[j]
	for k, r := range col.rows {
		v := col.vals[k]
		if v == 0 {
			continue
		}
		for i := 0; i < m; i++ {
			w[i] += st.binv[i][r] * v
		}
	}
	return w
}

// duals returns y' = c_B' B^{-1} for the given cost vector.
func (st *simplexState) duals(cost []float64) []float64 {
	m := st.sf.m
	y := make([]float64, m)
	for i := 0; i < m; i++ {
		cb := cost[st.basis[i]]
		if cb == 0 {
			continue
		}
		row := st.binv[i]
		for k := 0; k < m; k++ {
			y[k] += cb * row[k]
		}
	}
	return y
}

// reducedCost computes c_j - y'A_j.
func (st *simplexState) reducedCost(cost, y []float64, j int) float64 {
	d := cost[j]
	col := st.sf.cols[j]
	for k, r := range col.rows {
		d -= y[r] * col.vals[k]
	}
	return d
}

// pivot performs the basis change: column enter becomes basic in row leave,
// using the precomputed direction w = B^{-1} A_enter and step theta.
func (st *simplexState) pivot(enter, leave int, w []float64, theta float64) {
	m := st.sf.m
	for i := 0; i < m; i++ {
		if i == leave {
			continue
		}
		st.xB[i] -= theta * w[i]
		if st.xB[i] < 0 && st.xB[i] > -st.tol {
			st.xB[i] = 0
		}
	}
	st.xB[leave] = theta

	pivotVal := w[leave]
	rowL := st.binv[leave]
	inv := 1.0 / pivotVal
	for k := 0; k < m; k++ {
		rowL[k] *= inv
	}
	for i := 0; i < m; i++ {
		if i == leave {
			continue
		}
		f := w[i]
		if f == 0 {
			continue
		}
		row := st.binv[i]
		for k := 0; k < m; k++ {
			row[k] -= f * rowL[k]
		}
	}

	st.inB[st.basis[leave]] = false
	st.basis[leave] = enter
	st.inB[enter] = true
}

// refactorize recomputes the basis inverse and basic solution from scratch
// (Gauss-Jordan on the basis columns) to limit accumulated floating point
// error on long runs.
func (st *simplexState) refactorize() error {
	m := st.sf.m
	// Build dense basis matrix augmented with identity.
	a := make([][]float64, m)
	for i := 0; i < m; i++ {
		a[i] = make([]float64, 2*m)
		a[i][m+i] = 1
	}
	for i := 0; i < m; i++ {
		col := st.sf.cols[st.basis[i]]
		for k, r := range col.rows {
			a[r][i] = col.vals[k]
		}
	}
	// Gauss-Jordan with partial pivoting.
	for c := 0; c < m; c++ {
		p := c
		best := math.Abs(a[c][c])
		for r := c + 1; r < m; r++ {
			if v := math.Abs(a[r][c]); v > best {
				best, p = v, r
			}
		}
		if best < 1e-12 {
			return fmt.Errorf("lp: singular basis during refactorization (column %d)", c)
		}
		a[c], a[p] = a[p], a[c]
		inv := 1.0 / a[c][c]
		for k := c; k < 2*m; k++ {
			a[c][k] *= inv
		}
		for r := 0; r < m; r++ {
			if r == c {
				continue
			}
			f := a[r][c]
			if f == 0 {
				continue
			}
			for k := c; k < 2*m; k++ {
				a[r][k] -= f * a[c][k]
			}
		}
	}
	// Note the permutation: after Gauss-Jordan with row swaps applied to the
	// augmented identity, rows of the right block are B^{-1} rows in the
	// order that maps basis column i to row i.
	for i := 0; i < m; i++ {
		copy(st.binv[i], a[i][m:])
	}
	// Recompute basic solution xB = B^{-1} b.
	for i := 0; i < m; i++ {
		s := 0.0
		row := st.binv[i]
		for k := 0; k < m; k++ {
			s += row[k] * st.sf.b[k]
		}
		if s < 0 && s > -1e-7 {
			s = 0
		}
		st.xB[i] = s
	}
	return nil
}

const (
	degenerateSwitch = 64  // consecutive degenerate pivots before Bland's rule
	refactorEvery    = 256 // pivots between refactorizations
)

// runPhase runs the simplex method with the given cost vector, excluding
// columns j >= excludeFrom from entering the basis. It returns the final
// status.
func (st *simplexState) runPhase(cost []float64, excludeFrom, maxIters int) (Status, error) {
	degenerate := 0
	useBland := false
	sincePivotRebuild := 0

	for st.iters < maxIters {
		y := st.duals(cost)

		enter := -1
		bestRC := -st.tol
		if useBland {
			for j := 0; j < excludeFrom; j++ {
				if st.inB[j] {
					continue
				}
				if st.reducedCost(cost, y, j) < -st.tol {
					enter = j
					break
				}
			}
		} else {
			for j := 0; j < excludeFrom; j++ {
				if st.inB[j] {
					continue
				}
				rc := st.reducedCost(cost, y, j)
				if rc < bestRC {
					bestRC = rc
					enter = j
				}
			}
		}
		if enter < 0 {
			return Optimal, nil
		}

		w := st.multiplyColumn(enter)
		// Two-pass ratio test: find the minimum ratio, then among rows whose
		// ratio ties it (within tolerance) pick the one with the largest
		// pivot element; this keeps the basis well conditioned. Under Bland's
		// rule the smallest basic index is used instead to guarantee
		// termination.
		theta := math.Inf(1)
		for i := 0; i < st.sf.m; i++ {
			if w[i] <= st.tol {
				continue
			}
			if ratio := st.xB[i] / w[i]; ratio < theta {
				theta = ratio
			}
		}
		if math.IsInf(theta, 1) {
			return Unbounded, ErrUnbounded
		}
		if theta < 0 {
			theta = 0
		}
		leave := -1
		for i := 0; i < st.sf.m; i++ {
			if w[i] <= st.tol {
				continue
			}
			ratio := st.xB[i] / w[i]
			if ratio > theta+st.tol*(1+math.Abs(theta)) {
				continue
			}
			if leave < 0 {
				leave = i
				continue
			}
			if useBland {
				if st.basis[i] < st.basis[leave] {
					leave = i
				}
			} else if w[i] > w[leave] {
				leave = i
			}
		}
		if leave < 0 {
			return Unbounded, ErrUnbounded
		}

		if theta <= st.tol {
			degenerate++
			if degenerate >= degenerateSwitch {
				useBland = true
			}
		} else {
			degenerate = 0
			useBland = false
		}

		st.pivot(enter, leave, w, theta)
		st.iters++
		sincePivotRebuild++
		if sincePivotRebuild >= refactorEvery {
			if err := st.refactorize(); err != nil {
				return IterationLimit, err
			}
			sincePivotRebuild = 0
		}
	}
	return IterationLimit, ErrIterationLimit
}

// objective returns c_B' x_B for the given cost vector.
func (st *simplexState) objective(cost []float64) float64 {
	s := 0.0
	for i, j := range st.basis {
		s += cost[j] * st.xB[i]
	}
	return s
}

// driveOutArtificials removes artificial variables from the basis after
// phase 1 whenever a structural or slack column can replace them, so that
// phase 2 pivots can never make an artificial positive again. Rows whose
// artificial cannot be replaced are linearly dependent and keep a zero-valued
// basic artificial, which is harmless.
func (st *simplexState) driveOutArtificials() {
	for i := 0; i < st.sf.m; i++ {
		if st.basis[i] < st.sf.artStart {
			continue
		}
		replaced := false
		for j := 0; j < st.sf.artStart && !replaced; j++ {
			if st.inB[j] {
				continue
			}
			w := st.multiplyColumn(j)
			if math.Abs(w[i]) > 1e-7 {
				st.pivot(j, i, w, 0)
				replaced = true
			}
		}
	}
}

// solve runs the two-phase revised simplex and extracts the solution.
func (sf *standardForm) solve(o Options) (*Solution, error) {
	st := newSimplexState(sf, o.Tolerance)

	hasArtificials := false
	for _, j := range st.basis {
		if j >= sf.artStart {
			hasArtificials = true
			break
		}
	}

	if hasArtificials {
		phase1Cost := make([]float64, sf.n)
		for j := sf.artStart; j < sf.n; j++ {
			phase1Cost[j] = 1
		}
		status, err := st.runPhase(phase1Cost, sf.n, o.MaxIterations)
		if status != Optimal {
			return &Solution{Status: status, Iterations: st.iters}, err
		}
		// Allow a slightly looser tolerance for the infeasibility test:
		// phase-1 objective is a sum of m values each rounded at tol.
		if st.objective(phase1Cost) > o.Tolerance*float64(sf.m+1)*100 {
			return &Solution{Status: Infeasible, Iterations: st.iters}, ErrInfeasible
		}
		st.driveOutArtificials()
	}

	status, err := st.runPhase(sf.c, sf.artStart, o.MaxIterations)
	if status != Optimal {
		return &Solution{Status: status, Iterations: st.iters}, err
	}

	values := make([]float64, sf.nOrig)
	copy(values, sf.shift)
	for i, j := range st.basis {
		if j < sf.nOrig {
			values[j] += st.xB[i]
		}
	}
	obj := st.objective(sf.c) + sf.objConst
	if sf.negate {
		obj = -obj
	}
	return &Solution{
		Status:     Optimal,
		Objective:  obj,
		Iterations: st.iters,
		values:     values,
	}, nil
}
