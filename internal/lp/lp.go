// Package lp provides a self-contained linear-programming substrate used by
// the coflow scheduling algorithms.
//
// The package implements a model builder (variables with bounds, linear
// constraints, a linear objective) and a two-phase revised simplex solver
// with an explicit dense basis inverse, Dantzig pricing and a Bland's-rule
// fallback for anti-cycling. It is a pure-Go replacement for the commercial
// LP solver (CPLEX) used in the paper's evaluation: the scheduling
// algorithms only need an optimal vertex of the interval-indexed LPs, which
// this solver provides.
//
// The API is deliberately small:
//
//	p := lp.NewProblem(lp.Minimize)
//	x := p.AddVariable("x", 0, lp.Inf, 2.0)
//	y := p.AddVariable("y", 0, 10, 3.0)
//	p.AddConstraint("c1", lp.GE, 4, lp.Term{Var: x, Coef: 1}, lp.Term{Var: y, Coef: 1})
//	sol, err := p.Solve(nil)
//	_ = sol.Value(x)
//
// Variables carry lower and upper bounds; finite upper bounds are handled by
// the solver (internally as additional rows), so callers never need to add
// bound rows themselves.
package lp

import (
	"fmt"
	"math"
	"strings"
)

// Inf is a convenience alias for +infinity, used for unbounded-above
// variables.
var Inf = math.Inf(1)

// Sense selects minimization or maximization of the objective.
type Sense int

const (
	// Minimize the objective function.
	Minimize Sense = iota
	// Maximize the objective function.
	Maximize
)

// Op is the relational operator of a constraint.
type Op int

const (
	// LE is a "less than or equal" (<=) constraint.
	LE Op = iota
	// GE is a "greater than or equal" (>=) constraint.
	GE
	// EQ is an equality (=) constraint.
	EQ
)

// String returns the usual mathematical symbol for the operator.
func (o Op) String() string {
	switch o {
	case LE:
		return "<="
	case GE:
		return ">="
	case EQ:
		return "="
	}
	return "?"
}

// Var identifies a variable within a Problem. Values are valid only for the
// Problem that created them.
type Var int

// Term is a single linear term Coef * Var.
type Term struct {
	Var  Var
	Coef float64
}

// variable is the internal record for a decision variable.
type variable struct {
	name string
	lb   float64
	ub   float64
	obj  float64
}

// constraint is the internal record for a linear constraint.
type constraint struct {
	name  string
	op    Op
	rhs   float64
	terms []Term
}

// Problem is a linear program under construction. The zero value is not
// usable; create instances with NewProblem.
type Problem struct {
	sense Sense
	vars  []variable
	cons  []constraint
}

// NewProblem returns an empty linear program with the given objective sense.
func NewProblem(sense Sense) *Problem {
	return &Problem{sense: sense}
}

// Sense reports the objective sense of the problem.
func (p *Problem) Sense() Sense { return p.sense }

// NumVariables returns the number of variables added so far.
func (p *Problem) NumVariables() int { return len(p.vars) }

// NumConstraints returns the number of constraints added so far.
func (p *Problem) NumConstraints() int { return len(p.cons) }

// AddVariable adds a decision variable with the given bounds and objective
// coefficient and returns its handle. lb may be any finite value, ub may be
// lp.Inf. AddVariable panics if lb > ub or either bound is NaN, since that
// always indicates a modelling bug.
func (p *Problem) AddVariable(name string, lb, ub, obj float64) Var {
	if math.IsNaN(lb) || math.IsNaN(ub) || math.IsNaN(obj) {
		panic(fmt.Sprintf("lp: NaN in variable %q (lb=%v ub=%v obj=%v)", name, lb, ub, obj))
	}
	if lb > ub {
		panic(fmt.Sprintf("lp: variable %q has lb %v > ub %v", name, lb, ub))
	}
	if math.IsInf(lb, -1) {
		panic(fmt.Sprintf("lp: variable %q has -inf lower bound (not supported)", name))
	}
	p.vars = append(p.vars, variable{name: name, lb: lb, ub: ub, obj: obj})
	return Var(len(p.vars) - 1)
}

// SetObjective overrides the objective coefficient of an existing variable.
func (p *Problem) SetObjective(v Var, coef float64) {
	p.vars[v].obj = coef
}

// VariableName returns the name given to v at creation time.
func (p *Problem) VariableName(v Var) string { return p.vars[v].name }

// AddConstraint adds the constraint sum(terms) op rhs and returns its row
// index. Terms referring to the same variable are merged. Zero-coefficient
// terms are dropped.
func (p *Problem) AddConstraint(name string, op Op, rhs float64, terms ...Term) int {
	if math.IsNaN(rhs) {
		panic(fmt.Sprintf("lp: NaN rhs in constraint %q", name))
	}
	merged := mergeTerms(terms)
	for _, t := range merged {
		if int(t.Var) < 0 || int(t.Var) >= len(p.vars) {
			panic(fmt.Sprintf("lp: constraint %q references unknown variable %d", name, t.Var))
		}
		if math.IsNaN(t.Coef) || math.IsInf(t.Coef, 0) {
			panic(fmt.Sprintf("lp: constraint %q has non-finite coefficient for %s", name, p.vars[t.Var].name))
		}
	}
	p.cons = append(p.cons, constraint{name: name, op: op, rhs: rhs, terms: merged})
	return len(p.cons) - 1
}

// mergeTerms combines duplicate variables and drops zero coefficients while
// preserving first-appearance order.
func mergeTerms(terms []Term) []Term {
	if len(terms) <= 1 {
		out := make([]Term, 0, len(terms))
		for _, t := range terms {
			if t.Coef != 0 {
				out = append(out, t)
			}
		}
		return out
	}
	index := make(map[Var]int, len(terms))
	out := make([]Term, 0, len(terms))
	for _, t := range terms {
		if t.Coef == 0 {
			continue
		}
		if i, ok := index[t.Var]; ok {
			out[i].Coef += t.Coef
			continue
		}
		index[t.Var] = len(out)
		out = append(out, t)
	}
	// A merge may have produced exact zeros; drop them.
	filtered := out[:0]
	for _, t := range out {
		if t.Coef != 0 {
			filtered = append(filtered, t)
		}
	}
	return filtered
}

// Status describes the outcome of a solve.
type Status int

const (
	// Optimal means an optimal solution was found.
	Optimal Status = iota
	// Infeasible means the constraints admit no solution.
	Infeasible
	// Unbounded means the objective can be improved without limit.
	Unbounded
	// IterationLimit means the solver hit its iteration budget before
	// proving optimality.
	IterationLimit
)

// String returns a human-readable status.
func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	case IterationLimit:
		return "iteration-limit"
	}
	return "unknown"
}

// Solution holds the result of solving a Problem.
type Solution struct {
	// Status reports whether the solution is optimal.
	Status Status
	// Objective is the objective value in the caller's sense (already
	// negated back for maximization problems).
	Objective float64
	// Iterations is the total number of simplex pivots performed.
	Iterations int

	values []float64
}

// Value returns the value of variable v in the solution. It returns 0 for
// non-optimal solutions.
func (s *Solution) Value(v Var) float64 {
	if s == nil || int(v) >= len(s.values) {
		return 0
	}
	return s.values[v]
}

// Values returns a copy of all variable values indexed by Var.
func (s *Solution) Values() []float64 {
	out := make([]float64, len(s.values))
	copy(out, s.values)
	return out
}

// Options tunes the simplex solver. The zero value selects sensible
// defaults.
type Options struct {
	// MaxIterations bounds the total number of pivots across both phases.
	// Zero means an automatic limit based on problem size.
	MaxIterations int
	// Tolerance is the feasibility/optimality tolerance. Zero means 1e-9.
	Tolerance float64
}

func (o *Options) withDefaults(m, n int) Options {
	out := Options{}
	if o != nil {
		out = *o
	}
	if out.MaxIterations <= 0 {
		limit := 200 * (m + n)
		if limit < 20000 {
			limit = 20000
		}
		out.MaxIterations = limit
	}
	if out.Tolerance <= 0 {
		out.Tolerance = 1e-9
	}
	return out
}

// Solve optimizes the problem and returns the solution. A nil Options uses
// defaults. Solve returns an error (and a Solution with the corresponding
// Status) when the problem is infeasible, unbounded, or the iteration limit
// is exceeded.
func (p *Problem) Solve(opts *Options) (*Solution, error) {
	sf := buildStandardForm(p)
	o := opts.withDefaults(sf.m, sf.n)
	sol, err := sf.solve(o)
	if err != nil {
		return sol, err
	}
	return sol, nil
}

// String renders the problem in a small LP-format-like text form, useful in
// tests and debugging.
func (p *Problem) String() string {
	var b strings.Builder
	if p.sense == Minimize {
		b.WriteString("min ")
	} else {
		b.WriteString("max ")
	}
	first := true
	for i, v := range p.vars {
		if v.obj == 0 {
			continue
		}
		if !first {
			b.WriteString(" + ")
		}
		fmt.Fprintf(&b, "%g*%s", v.obj, p.varLabel(Var(i)))
		first = false
	}
	if first {
		b.WriteString("0")
	}
	b.WriteString("\n")
	for _, c := range p.cons {
		for j, t := range c.terms {
			if j > 0 {
				b.WriteString(" + ")
			}
			fmt.Fprintf(&b, "%g*%s", t.Coef, p.varLabel(t.Var))
		}
		fmt.Fprintf(&b, " %s %g   [%s]\n", c.op, c.rhs, c.name)
	}
	for i, v := range p.vars {
		fmt.Fprintf(&b, "%g <= %s <= %g\n", v.lb, p.varLabel(Var(i)), v.ub)
	}
	return b.String()
}

func (p *Problem) varLabel(v Var) string {
	name := p.vars[v].name
	if name == "" {
		return fmt.Sprintf("x%d", int(v))
	}
	return name
}
