// Package monitor closes the observability loop PR 6 opened: coflowmon
// scrapes the cluster's /metrics pages into bounded in-memory time-series
// (store.go), evaluates declarative SLO rules with multi-window burn rates
// over them (slo.go), and on a rule's transition to firing captures a
// post-mortem flight-recorder bundle joining time-series, lifecycle traces
// and scheduler epoch records (recorder.go). monitor.go is the daemon glue:
// the scrape loop, target discovery via a gateway's /v1/backends, and the
// HTTP API (/v1/targets, /v1/query, /v1/slo, a dashboard at /, /metrics).
//
// Like the rest of the repo the package is stdlib-only; the scrape parser is
// telemetry.ParseMetrics, the same strict parser the conformance tests run.
package monitor

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"time"
)

// Point is one sample of one series.
type Point struct {
	T time.Time `json:"t"`
	V float64   `json:"v"`
}

// SeriesData is one series as queries and bundles report it: the metric
// name, its full label set (scrape labels plus the monitor-stamped
// instance), and the retained points in chronological order.
type SeriesData struct {
	Name   string            `json:"name"`
	Labels map[string]string `json:"labels,omitempty"`
	Points []Point           `json:"points"`
}

// Selector picks series: the metric name plus label equality constraints
// (a series matches when its label set is a superset of Labels).
type Selector struct {
	Name   string
	Labels map[string]string
}

// series is one bounded ring of points.
type series struct {
	name   string
	labels map[string]string
	pts    []Point
	next   int
	full   bool
}

func (s *series) append(p Point, cap int) {
	if !s.full && len(s.pts) < cap {
		s.pts = append(s.pts, p)
		if len(s.pts) == cap {
			s.full = true
		}
		return
	}
	s.pts[s.next] = p
	s.next = (s.next + 1) % len(s.pts)
}

// ordered returns the ring in chronological order.
func (s *series) ordered() []Point {
	out := make([]Point, 0, len(s.pts))
	if s.full {
		out = append(out, s.pts[s.next:]...)
		out = append(out, s.pts[:s.next]...)
		return out
	}
	return append(out, s.pts...)
}

// matches reports whether the series satisfies the selector's label
// constraints.
func (s *series) matches(sel Selector) bool {
	if s.name != sel.Name {
		return false
	}
	for k, v := range sel.Labels {
		if s.labels[k] != v {
			return false
		}
	}
	return true
}

// DefaultMaxPoints bounds each series ring: at a 1s scrape interval this
// retains ~17 minutes of history per series.
const DefaultMaxPoints = 1024

// Store holds scraped samples as bounded per-series rings, keyed by metric
// name x label set. Safe for concurrent use.
type Store struct {
	mu        sync.Mutex
	maxPoints int
	series    map[string]*series
	order     []string
	samples   uint64
}

// NewStore builds a store retaining at most maxPoints per series (<= 0 means
// DefaultMaxPoints).
func NewStore(maxPoints int) *Store {
	if maxPoints <= 0 {
		maxPoints = DefaultMaxPoints
	}
	return &Store{maxPoints: maxPoints, series: make(map[string]*series)}
}

// seriesKey renders a stable identity for name x labels.
func seriesKey(name string, labels map[string]string) string {
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteString(name)
	for _, k := range keys {
		b.WriteByte('\xff')
		b.WriteString(k)
		b.WriteByte('=')
		b.WriteString(labels[k])
	}
	return b.String()
}

// Append records one sample. Non-finite values are dropped: NaN means "no
// data" on every exposition page this repo produces, and neither NaN nor Inf
// survives JSON encoding in queries or bundles.
func (st *Store) Append(name string, labels map[string]string, t time.Time, v float64) {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return
	}
	key := seriesKey(name, labels)
	st.mu.Lock()
	defer st.mu.Unlock()
	s, ok := st.series[key]
	if !ok {
		copied := make(map[string]string, len(labels))
		for k, val := range labels {
			copied[k] = val
		}
		s = &series{name: name, labels: copied}
		st.series[key] = s
		st.order = append(st.order, key)
	}
	s.append(Point{T: t, V: v}, st.maxPoints)
	st.samples++
}

// Counts reports the store size: distinct series and total samples appended.
func (st *Store) Counts() (seriesCount int, samples uint64) {
	st.mu.Lock()
	defer st.mu.Unlock()
	return len(st.series), st.samples
}

// Query returns every series matching sel, with points restricted to
// [from, to] (zero times mean unbounded). Series appear in first-seen order.
func (st *Store) Query(sel Selector, from, to time.Time) []SeriesData {
	st.mu.Lock()
	defer st.mu.Unlock()
	var out []SeriesData
	for _, key := range st.order {
		s := st.series[key]
		if !s.matches(sel) {
			continue
		}
		var pts []Point
		for _, p := range s.ordered() {
			if !from.IsZero() && p.T.Before(from) {
				continue
			}
			if !to.IsZero() && p.T.After(to) {
				continue
			}
			pts = append(pts, p)
		}
		if pts == nil {
			pts = []Point{}
		}
		out = append(out, SeriesData{Name: s.name, Labels: s.labels, Points: pts})
	}
	return out
}

// Dump snapshots every series' retained window — the flight recorder's
// time-series evidence.
func (st *Store) Dump() []SeriesData {
	st.mu.Lock()
	defer st.mu.Unlock()
	out := make([]SeriesData, 0, len(st.order))
	for _, key := range st.order {
		s := st.series[key]
		out = append(out, SeriesData{Name: s.name, Labels: s.labels, Points: s.ordered()})
	}
	return out
}

// ---- derived views ----

// LastValue is the gauge view: the most recent sample of each matching
// series within [now-window, now], reduced by reduce ("min" or "max") into
// one value. ok is false when no matching series has a point in the window.
func (st *Store) LastValue(sel Selector, now time.Time, window time.Duration, reduce string) (float64, bool) {
	from := now.Add(-window)
	best := math.NaN()
	for _, sd := range st.Query(sel, from, now) {
		if len(sd.Points) == 0 {
			continue
		}
		v := sd.Points[len(sd.Points)-1].V
		switch {
		case math.IsNaN(best):
			best = v
		case reduce == "min" && v < best:
			best = v
		case reduce != "min" && v > best:
			best = v
		}
	}
	return best, !math.IsNaN(best)
}

// WorstValue reduces every point (not just the last) of matching series in
// the window — the view sustained-outage rules want: a gauge that dipped and
// recovered still counts for as long as the dip stays inside the window.
func (st *Store) WorstValue(sel Selector, now time.Time, window time.Duration, reduce string) (float64, bool) {
	from := now.Add(-window)
	best := math.NaN()
	for _, sd := range st.Query(sel, from, now) {
		for _, p := range sd.Points {
			switch {
			case math.IsNaN(best):
				best = p.V
			case reduce == "min" && p.V < best:
				best = p.V
			case reduce != "min" && p.V > best:
				best = p.V
			}
		}
	}
	return best, !math.IsNaN(best)
}

// CounterRate is the counter view: the summed increase per second of every
// matching series over [now-window, now]. Counter resets (a restarted
// daemon) contribute the post-reset value rather than a negative delta,
// mirroring Prometheus rate() semantics. ok is false when no series has two
// points in the window.
func (st *Store) CounterRate(sel Selector, now time.Time, window time.Duration) (float64, bool) {
	from := now.Add(-window)
	total := 0.0
	ok := false
	var spanStart, spanEnd time.Time
	for _, sd := range st.Query(sel, from, now) {
		if len(sd.Points) < 2 {
			continue
		}
		ok = true
		for i := 1; i < len(sd.Points); i++ {
			d := sd.Points[i].V - sd.Points[i-1].V
			if d < 0 { // reset: the counter restarted from zero
				d = sd.Points[i].V
			}
			total += d
		}
		if spanStart.IsZero() || sd.Points[0].T.Before(spanStart) {
			spanStart = sd.Points[0].T
		}
		if last := sd.Points[len(sd.Points)-1].T; last.After(spanEnd) {
			spanEnd = last
		}
	}
	if !ok {
		return 0, false
	}
	span := spanEnd.Sub(spanStart).Seconds()
	if span <= 0 {
		return 0, false
	}
	return total / span, true
}

// bucket is one cumulative histogram bucket's increase over a window.
type bucket struct {
	le    float64
	delta float64
}

// HistogramQuantile estimates quantile q (0 < q < 1) of the observations a
// histogram recorded during [now-window, now], from the deltas of its
// cumulative name_bucket series. Matching series are summed per le bound
// (aggregating across shards/instances), then the quantile is linearly
// interpolated inside the owning bucket, exactly Prometheus's
// histogram_quantile estimator: the true quantile lies within the owning
// bucket, so the estimate is off by at most one bucket width.
//
// sel.Name is the histogram family name (without the _bucket suffix);
// sel.Labels must not constrain le. ok is false when no observations landed
// in the window.
func (st *Store) HistogramQuantile(sel Selector, q float64, now time.Time, window time.Duration) (float64, bool) {
	buckets, total := st.bucketDeltas(sel, now, window)
	if total <= 0 || len(buckets) == 0 {
		return 0, false
	}
	return quantileFromBuckets(buckets, total, q), true
}

// bucketDeltas collects the per-le cumulative-count increases of a histogram
// over the window, sorted by ascending le, plus the total observation count
// (the +Inf bucket's delta).
func (st *Store) bucketDeltas(sel Selector, now time.Time, window time.Duration) ([]bucket, float64) {
	from := now.Add(-window)
	byLE := make(map[float64]float64)
	for _, sd := range st.Query(Selector{Name: sel.Name + "_bucket", Labels: sel.Labels}, from, now) {
		leRaw, ok := sd.Labels["le"]
		if !ok || len(sd.Points) < 2 {
			continue
		}
		le, err := parseLE(leRaw)
		if err != nil {
			continue
		}
		delta := 0.0
		for i := 1; i < len(sd.Points); i++ {
			d := sd.Points[i].V - sd.Points[i-1].V
			if d < 0 {
				d = sd.Points[i].V
			}
			delta += d
		}
		byLE[le] += delta
	}
	buckets := make([]bucket, 0, len(byLE))
	total := 0.0
	for le, delta := range byLE {
		buckets = append(buckets, bucket{le: le, delta: delta})
		if math.IsInf(le, 1) {
			total = delta
		}
	}
	sort.Slice(buckets, func(i, j int) bool { return buckets[i].le < buckets[j].le })
	// Cumulative buckets: each bound's count contains every smaller bound's.
	// Convert to per-bucket counts for interpolation; clamp the tiny negative
	// artifacts an unlucky scrape alignment can produce.
	for i := len(buckets) - 1; i > 0; i-- {
		buckets[i].delta -= buckets[i-1].delta
		if buckets[i].delta < 0 {
			buckets[i].delta = 0
		}
	}
	if total == 0 { // page without an explicit +Inf bucket
		for _, b := range buckets {
			total += b.delta
		}
	}
	return buckets, total
}

// QuantileByLabel groups a histogram family by one label and estimates the
// q-quantile of each group's observations over the window — the per-stage
// breakdown behind /v1/stages (coflowd_admit_stage_seconds by stage,
// coflowd_partition_realloc_seconds by partition). Groups with no
// observations in the window are omitted.
func (st *Store) QuantileByLabel(name, label string, q float64, now time.Time, window time.Duration) map[string]float64 {
	st.mu.Lock()
	values := map[string]bool{}
	for _, key := range st.order {
		s := st.series[key]
		if s.name == name+"_bucket" {
			if v, ok := s.labels[label]; ok {
				values[v] = true
			}
		}
	}
	st.mu.Unlock()
	out := make(map[string]float64, len(values))
	for v := range values {
		sel := Selector{Name: name, Labels: map[string]string{label: v}}
		if est, ok := st.HistogramQuantile(sel, q, now, window); ok {
			out[v] = est
		}
	}
	return out
}

// quantileFromBuckets interpolates the q-quantile from per-bucket counts.
func quantileFromBuckets(buckets []bucket, total, q float64) float64 {
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * total
	cum := 0.0
	for i, b := range buckets {
		cum += b.delta
		if cum < rank || b.delta == 0 {
			continue
		}
		lo := 0.0
		if i > 0 {
			lo = buckets[i-1].le
		}
		hi := b.le
		if math.IsInf(hi, 1) {
			// The observation is beyond the last finite bound; the bound
			// itself is the best (and Prometheus's) answer.
			return lo
		}
		frac := (rank - (cum - b.delta)) / b.delta
		return lo + (hi-lo)*frac
	}
	// rank beyond every bucket (rounding): the largest finite bound.
	for i := len(buckets) - 1; i >= 0; i-- {
		if !math.IsInf(buckets[i].le, 1) {
			return buckets[i].le
		}
	}
	return 0
}

// parseLE decodes a bucket bound label, accepting the +Inf form.
func parseLE(s string) (float64, error) {
	if s == "+Inf" {
		return math.Inf(1), nil
	}
	var v float64
	_, err := fmt.Sscanf(s, "%g", &v)
	return v, err
}
