package monitor

import (
	"testing"
	"time"
)

// gaugeRule is a Below-style availability rule over a synthetic up gauge:
// fast window 3s, slow window 9s, resolve after 6 clean seconds.
func gaugeRule() Rule {
	return Rule{
		Name: "up", Metric: "up", Kind: KindGauge, Objective: 1, Below: true,
		FastWindowSeconds: 3, SlowWindowSeconds: 9, ResolveAfterSeconds: 6,
	}
}

// feed appends one up sample per second over [from, to).
func feed(st *Store, from, to int, v float64) {
	for s := from; s < to; s++ {
		st.Append("up", map[string]string{"instance": "a"}, at(float64(s)), v)
	}
}

func TestRuleLifecyclePendingFiringResolved(t *testing.T) {
	st := NewStore(64)
	ri := &ruleInstance{rule: gaugeRule(), state: StateHealthy, since: at(0)}

	// Healthy traffic: stays healthy.
	feed(st, 0, 5, 1)
	for s := 1; s < 5; s++ {
		if ri.eval(st, at(float64(s))) {
			t.Fatalf("fired on healthy data at t=%d", s)
		}
	}
	if ri.state != StateHealthy {
		t.Fatalf("state = %s, want healthy", ri.state)
	}

	// Outage begins at t=5. The dip hits the fast and slow windows at once
	// (WorstValue sees any in-window point), so with For=0 the rule fires on
	// the first post-outage evaluation.
	feed(st, 5, 12, 0)
	fired := ri.eval(st, at(5))
	if !fired || ri.state != StateFiring {
		t.Fatalf("after outage sample: fired=%v state=%s, want firing", fired, ri.state)
	}
	if ri.firings != 1 || ri.lastFired == nil {
		t.Fatalf("firings=%d lastFired=%v", ri.firings, ri.lastFired)
	}
	if ri.fastBurn == nil || *ri.fastBurn <= 1 {
		t.Fatalf("fast burn = %v, want > 1", ri.fastBurn)
	}

	// Still down: stays firing, does not re-fire.
	for s := 6; s < 12; s++ {
		if ri.eval(st, at(float64(s))) {
			t.Fatalf("re-fired at t=%d while already firing", s)
		}
	}

	// Recovery at t=12. The slow window still holds outage samples until
	// t=21; resolution additionally needs ResolveAfter clean seconds.
	feed(st, 12, 40, 1)
	for s := 12; s < 21; s++ {
		ri.eval(st, at(float64(s)))
		if ri.state != StateFiring {
			t.Fatalf("resolved too early at t=%d (slow window still dirty)", s)
		}
	}
	var resolvedAt int
	for s := 21; s < 40; s++ {
		ri.eval(st, at(float64(s)))
		if ri.state == StateResolved {
			resolvedAt = s
			break
		}
	}
	if resolvedAt == 0 {
		t.Fatalf("never resolved; state=%s", ri.state)
	}
	// Clean since t=21 (first eval with the slow window clear), +6s hold.
	if resolvedAt < 26 {
		t.Errorf("resolved at t=%d, want >= 26 (hysteresis hold)", resolvedAt)
	}
	if ri.lastResolved == nil {
		t.Error("lastResolved not stamped")
	}
}

func TestRulePendingOnFastOnlyViolation(t *testing.T) {
	// A rate rule where a short burst trips the fast window while the slow
	// window dilutes it: the rule goes pending, then returns to healthy when
	// the burst passes — never firing, never writing a bundle. (Gauge rules
	// cannot exercise pending: with nested windows, the slow window's worst
	// value always covers the fast window's.)
	st := NewStore(64)
	r := Rule{
		Name: "errs", Metric: "errs_total", Kind: KindRate, Objective: 10,
		FastWindowSeconds: 2, SlowWindowSeconds: 20, ResolveAfterSeconds: 4,
	}
	ri := &ruleInstance{rule: r, state: StateHealthy, since: at(0)}
	app := func(s int, v float64) { st.Append("errs_total", nil, at(float64(s)), v) }

	// Flat counter for 18s, then a +50 burst in one second.
	for s := 0; s <= 18; s++ {
		app(s, 0)
		ri.eval(st, at(float64(s)))
	}
	app(19, 50)
	if ri.eval(st, at(19)) {
		t.Fatal("fired on a burst the slow window dilutes")
	}
	// Fast rate over [17,19] is 25/s > 10; slow rate over [-1,19] is ~2.6/s.
	if ri.state != StatePending {
		t.Fatalf("state after burst = %s, want pending", ri.state)
	}
	if ri.fastBurn == nil || *ri.fastBurn <= 1 {
		t.Fatalf("fast burn = %v, want > 1", ri.fastBurn)
	}
	if ri.slowBurn == nil || *ri.slowBurn > 1 {
		t.Fatalf("slow burn = %v, want <= 1", ri.slowBurn)
	}
	// Counter goes flat again: fast rate decays, rule returns to healthy.
	for s := 20; s < 30; s++ {
		app(s, 50)
		if ri.eval(st, at(float64(s))) {
			t.Fatalf("fired at t=%d after the burst passed", s)
		}
	}
	if ri.state != StateHealthy {
		t.Errorf("state = %s, want healthy after burst aged out", ri.state)
	}
	if ri.firings != 0 {
		t.Errorf("firings = %d, want 0", ri.firings)
	}
}

func TestRuleForHoldsOffFiring(t *testing.T) {
	st := NewStore(64)
	r := gaugeRule()
	r.ForSeconds = 3
	ri := &ruleInstance{rule: r, state: StateHealthy, since: at(0)}

	feed(st, 0, 3, 1)
	feed(st, 3, 20, 0)
	for s := 3; s < 6; s++ {
		if ri.eval(st, at(float64(s))) {
			t.Fatalf("fired at t=%d, inside the For hold", s)
		}
		if ri.state != StatePending {
			t.Fatalf("state at t=%d = %s, want pending", s, ri.state)
		}
	}
	if !ri.eval(st, at(6)) {
		t.Fatalf("did not fire at t=6 after 3s sustained violation; state=%s", ri.state)
	}
}

func TestRuleNoDataStaysHealthy(t *testing.T) {
	st := NewStore(8)
	ri := &ruleInstance{rule: gaugeRule(), state: StateHealthy, since: at(0)}
	if ri.eval(st, at(1)) || ri.state != StateHealthy {
		t.Fatalf("empty store moved rule to %s", ri.state)
	}
	if ri.fastValue != nil || ri.fastBurn != nil {
		t.Errorf("no-data eval reported values: %v %v", ri.fastValue, ri.fastBurn)
	}
}

func TestDefaultRulesValidate(t *testing.T) {
	rules := DefaultRules(200 * time.Millisecond)
	if len(rules) != 7 {
		t.Fatalf("default rule count = %d, want 7", len(rules))
	}
	names := map[string]bool{}
	for _, r := range rules {
		if err := r.validate(); err != nil {
			t.Errorf("default rule %s invalid: %v", r.Name, err)
		}
		names[r.Name] = true
	}
	for _, want := range []string{
		"admit-p99", "tick-p99", "shard-down", "scrape-failure",
		"fsync-p99", "partition-imbalance", "gc-pause-p99",
	} {
		if !names[want] {
			t.Errorf("default rules lack %s", want)
		}
	}
}

func TestRuleValidateRejects(t *testing.T) {
	bad := []Rule{
		{Name: "", Metric: "m", Kind: KindGauge, Objective: 1, FastWindowSeconds: 1, SlowWindowSeconds: 2},
		{Name: "r", Metric: "m", Kind: "bogus", Objective: 1, FastWindowSeconds: 1, SlowWindowSeconds: 2},
		{Name: "r", Metric: "m", Kind: KindQuantile, Quantile: 1.5, Objective: 1, FastWindowSeconds: 1, SlowWindowSeconds: 2},
		{Name: "r", Metric: "m", Kind: KindGauge, Objective: 0, FastWindowSeconds: 1, SlowWindowSeconds: 2},
		{Name: "r", Metric: "m", Kind: KindGauge, Objective: 1, FastWindowSeconds: 5, SlowWindowSeconds: 2},
	}
	for i, r := range bad {
		if err := r.validate(); err == nil {
			t.Errorf("rule %d validated but should not: %+v", i, r)
		}
	}
}
