package monitor

import (
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"coflowsched/internal/telemetry"
)

// Target is one scrape endpoint: a stable instance name (the label stamped
// onto every stored series) and the base URL of a daemon serving /metrics.
type Target struct {
	Name string `json:"name"`
	URL  string `json:"url"`
}

// Config parameterizes a Monitor.
type Config struct {
	// Targets are statically configured scrape endpoints.
	Targets []Target
	// DiscoverURL, when set, is a coflowgate base URL: the gateway itself is
	// scraped under the instance name "gateway", and its /v1/backends roster
	// is re-read every interval so shards come and go dynamically.
	DiscoverURL string
	// Interval between scrape-and-evaluate cycles. Default 1s.
	Interval time.Duration
	// MaxPoints bounds each stored series ring. Default DefaultMaxPoints.
	MaxPoints int
	// Rules is the SLO set; nil means DefaultRules(Interval).
	Rules []Rule
	// BundleDir is where the flight recorder writes post-mortem bundles on
	// a rule's transition to firing. Empty disables the recorder.
	BundleDir string
	// HTTPTimeout bounds each scrape and evidence fetch. Default 2s.
	HTTPTimeout time.Duration
	// ProfileDuration is how long the on-alert CPU profile samples for.
	// Bundles attach a CPU profile and heap snapshot from every live target
	// via /debug/pprof; 0 means 1s, negative disables profile capture.
	ProfileDuration time.Duration
	// Logger receives structured scrape/rule logs; nil discards.
	Logger *slog.Logger
}

// TargetStatus is one target's most recent scrape outcome, served at
// /v1/targets and embedded in bundles.
type TargetStatus struct {
	Target
	Healthy         bool      `json:"healthy"`
	LastScrape      time.Time `json:"last_scrape"`
	DurationSeconds float64   `json:"duration_seconds"`
	Samples         int       `json:"samples"`
	LastError       string    `json:"last_error,omitempty"`
}

// Monitor scrapes targets into a Store on a fixed interval, evaluates SLO
// rules over the stored series, and hands firing transitions to the flight
// recorder.
type Monitor struct {
	cfg      Config
	store    *Store
	client   *http.Client
	log      *slog.Logger
	recorder *recorder
	metrics  *monMetrics

	mu       sync.Mutex
	rules    []*ruleInstance
	statuses map[string]*TargetStatus
	order    []string // target names in first-seen order

	stop chan struct{}
	done chan struct{}
}

// monMetrics is the monitor's own scrape surface — the watcher is watched
// the same way as everything else.
type monMetrics struct {
	reg          *telemetry.Registry
	scrapes      *telemetry.Counter
	scrapeErrors *telemetry.CounterVec
	scrapeDur    *telemetry.Histogram
	samples      *telemetry.Counter
	series       *telemetry.Gauge
	ruleEvals    *telemetry.Counter
	rulesFiring  *telemetry.Gauge
	bundles      *telemetry.Counter
}

func newMonMetrics() *monMetrics {
	reg := telemetry.NewRegistry()
	m := &monMetrics{
		reg:          reg,
		scrapes:      reg.Counter("coflowmon_scrapes_total", "target scrape attempts"),
		scrapeErrors: reg.CounterVec("coflowmon_scrape_errors_total", "failed scrapes of the labelled target", "instance"),
		scrapeDur:    reg.Histogram("coflowmon_scrape_duration_seconds", "wall time of one target scrape", nil),
		samples:      reg.Counter("coflowmon_samples_total", "samples appended to the time-series store"),
		series:       reg.Gauge("coflowmon_series", "distinct series held in the store"),
		ruleEvals:    reg.Counter("coflowmon_rule_evaluations_total", "SLO rule evaluations"),
		rulesFiring:  reg.Gauge("coflowmon_rules_firing", "rules currently in the firing state"),
		bundles:      reg.Counter("coflowmon_bundles_written_total", "flight-recorder bundles written"),
	}
	reg.Gauge("coflowmon_up", "1 while the monitor runs").Set(1)
	telemetry.RegisterRuntimeCollector(reg)
	return m
}

// New validates the config, primes the rule set and starts the scrape loop.
func New(cfg Config) (*Monitor, error) {
	if cfg.Interval <= 0 {
		cfg.Interval = time.Second
	}
	if cfg.HTTPTimeout <= 0 {
		cfg.HTTPTimeout = 2 * time.Second
	}
	if cfg.ProfileDuration == 0 {
		cfg.ProfileDuration = time.Second
	}
	if cfg.Logger == nil {
		cfg.Logger = telemetry.DiscardLogger()
	}
	if cfg.Rules == nil {
		cfg.Rules = DefaultRules(cfg.Interval)
	}
	if len(cfg.Targets) == 0 && cfg.DiscoverURL == "" {
		return nil, fmt.Errorf("monitor: no targets and no discover URL")
	}
	seen := map[string]bool{}
	for _, t := range cfg.Targets {
		if t.Name == "" || t.URL == "" {
			return nil, fmt.Errorf("monitor: target needs name and url: %+v", t)
		}
		if seen[t.Name] {
			return nil, fmt.Errorf("monitor: duplicate target name %q", t.Name)
		}
		seen[t.Name] = true
	}
	m := &Monitor{
		cfg:      cfg,
		store:    NewStore(cfg.MaxPoints),
		client:   &http.Client{Timeout: cfg.HTTPTimeout},
		log:      cfg.Logger,
		metrics:  newMonMetrics(),
		statuses: make(map[string]*TargetStatus),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	now := time.Now()
	for _, r := range cfg.Rules {
		if err := r.validate(); err != nil {
			return nil, fmt.Errorf("monitor: %w", err)
		}
		m.rules = append(m.rules, &ruleInstance{rule: r, state: StateHealthy, since: now})
	}
	if cfg.BundleDir != "" {
		m.recorder = newRecorder(cfg.BundleDir, m)
	}
	go m.loop()
	return m, nil
}

// Store exposes the underlying time-series store (read-only use: queries and
// the quantile-agreement tests).
func (m *Monitor) Store() *Store { return m.store }

// Metrics exposes the monitor's own registry (tests scrape it directly).
func (m *Monitor) Metrics() *telemetry.Registry { return m.metrics.reg }

// Close stops the scrape loop and waits for it to exit.
func (m *Monitor) Close() {
	select {
	case <-m.stop:
		return // already closed
	default:
	}
	close(m.stop)
	<-m.done
}

func (m *Monitor) loop() {
	defer close(m.done)
	t := time.NewTicker(m.cfg.Interval)
	defer t.Stop()
	for {
		select {
		case <-m.stop:
			return
		case <-t.C:
			m.Tick()
		}
	}
}

// Tick runs one synchronous scrape-and-evaluate cycle. The loop calls it on
// every interval; tests call it directly to step the monitor
// deterministically.
func (m *Monitor) Tick() {
	now := time.Now()
	targets := m.resolveTargets()
	var wg sync.WaitGroup
	results := make([]TargetStatus, len(targets))
	for i, t := range targets {
		wg.Add(1)
		go func(i int, t Target) {
			defer wg.Done()
			results[i] = m.scrapeTarget(t, now)
		}(i, t)
	}
	wg.Wait()

	m.mu.Lock()
	for i := range results {
		st := results[i]
		if _, ok := m.statuses[st.Name]; !ok {
			m.order = append(m.order, st.Name)
		}
		m.statuses[st.Name] = &st
	}
	m.mu.Unlock()

	m.evaluate(now)

	series, samples := m.store.Counts()
	m.metrics.series.Set(float64(series))
	m.metrics.samples.Set(float64(samples))
}

// resolveTargets merges the static target list with the gateway roster.
func (m *Monitor) resolveTargets() []Target {
	targets := append([]Target{}, m.cfg.Targets...)
	if m.cfg.DiscoverURL != "" {
		targets = append(targets, Target{Name: "gateway", URL: m.cfg.DiscoverURL})
		backends, err := m.discover()
		if err != nil {
			m.log.Warn("backend discovery failed", "url", m.cfg.DiscoverURL, "err", err)
		} else {
			targets = append(targets, backends...)
		}
	}
	// De-duplicate by name, first wins (static config beats discovery).
	seen := map[string]bool{}
	out := targets[:0]
	for _, t := range targets {
		if seen[t.Name] {
			continue
		}
		seen[t.Name] = true
		out = append(out, t)
	}
	return out
}

// discover reads the gateway's /v1/backends roster. The response shape is
// decoded locally (name + url are all the monitor needs) rather than by
// importing internal/cluster, which imports this package to embed monitors.
func (m *Monitor) discover() ([]Target, error) {
	resp, err := m.client.Get(strings.TrimSuffix(m.cfg.DiscoverURL, "/") + "/v1/backends")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("status %s", resp.Status)
	}
	var roster []struct {
		Name string `json:"name"`
		URL  string `json:"url"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&roster); err != nil {
		return nil, fmt.Errorf("decode roster: %w", err)
	}
	out := make([]Target, 0, len(roster))
	for _, b := range roster {
		if b.Name == "" || b.URL == "" {
			continue
		}
		out = append(out, Target{Name: b.Name, URL: b.URL})
	}
	return out, nil
}

// scrapeTarget fetches and parses one /metrics page, appending every sample
// (stamped with {instance=<name>}) plus the synthetic up /
// scrape_duration_seconds / scrape_errors_total series.
func (m *Monitor) scrapeTarget(t Target, now time.Time) TargetStatus {
	m.metrics.scrapes.Inc()
	start := time.Now()
	page, err := m.fetchMetrics(t.URL)
	dur := time.Since(start)
	m.metrics.scrapeDur.Observe(dur.Seconds())

	st := TargetStatus{Target: t, LastScrape: now, DurationSeconds: dur.Seconds()}
	instance := map[string]string{"instance": t.Name}
	up := 0.0
	if err != nil {
		st.LastError = err.Error()
		m.metrics.scrapeErrors.With(t.Name).Inc()
		m.store.Append("scrape_errors_total", instance, now, m.metrics.scrapeErrors.With(t.Name).Value())
		m.log.Warn("scrape failed", "instance", t.Name, "url", t.URL, "err", err)
	} else {
		up = 1
		st.Healthy = true
		st.Samples = len(page.Samples)
		for _, s := range page.Samples {
			labels := map[string]string{"instance": t.Name}
			for k, v := range s.Labels {
				labels[k] = v
			}
			m.store.Append(s.Name, labels, now, s.Value)
		}
	}
	m.store.Append("up", instance, now, up)
	m.store.Append("scrape_duration_seconds", instance, now, dur.Seconds())
	return st
}

func (m *Monitor) fetchMetrics(base string) (*telemetry.Metrics, error) {
	resp, err := m.client.Get(strings.TrimSuffix(base, "/") + "/metrics")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("status %s", resp.Status)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	return telemetry.ParseMetrics(string(body))
}

// evaluate steps every rule's state machine and triggers the recorder on
// firing transitions.
func (m *Monitor) evaluate(now time.Time) {
	var fired []RuleStatus
	firing := 0
	m.mu.Lock()
	for _, ri := range m.rules {
		m.metrics.ruleEvals.Inc()
		if ri.eval(m.store, now) {
			fired = append(fired, ri.status())
		}
		if ri.state == StateFiring {
			firing++
		}
	}
	m.mu.Unlock()
	m.metrics.rulesFiring.Set(float64(firing))
	for _, rs := range fired {
		m.log.Error("SLO rule firing", "rule", rs.Rule.Name, "metric", rs.Rule.Metric,
			"fast_burn", deref(rs.FastBurn), "slow_burn", deref(rs.SlowBurn))
		if m.recorder != nil {
			if info, err := m.recorder.capture(rs, now); err != nil {
				m.log.Error("bundle capture failed", "rule", rs.Rule.Name, "err", err)
			} else {
				m.metrics.bundles.Inc()
				m.log.Info("bundle written", "rule", rs.Rule.Name, "path", info.Path)
			}
		}
	}
}

func deref(p *float64) float64 {
	if p == nil {
		return 0
	}
	return *p
}

// RuleStatuses snapshots every rule's state, in configuration order.
func (m *Monitor) RuleStatuses() []RuleStatus {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]RuleStatus, len(m.rules))
	for i, ri := range m.rules {
		out[i] = ri.status()
	}
	return out
}

// TargetStatuses snapshots every known target's last scrape outcome.
func (m *Monitor) TargetStatuses() []TargetStatus {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]TargetStatus, 0, len(m.order))
	for _, name := range m.order {
		out = append(out, *m.statuses[name])
	}
	return out
}

// Bundles lists the flight-recorder bundles written so far (newest last).
func (m *Monitor) Bundles() []BundleInfo {
	if m.recorder == nil {
		return nil
	}
	return m.recorder.list()
}

// sortedLabelKeys is shared by handlers and the dashboard for stable output.
func sortedLabelKeys(labels map[string]string) []string {
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
