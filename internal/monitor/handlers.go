package monitor

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"
)

// Handler mounts the monitor's HTTP API:
//
//	GET /            single-page dashboard
//	GET /v1/targets  last scrape outcome per target
//	GET /v1/query    range queries over stored series (raw / last / rate /
//	                 quantile views)
//	GET /v1/slo      rule states, burn rates and written bundles
//	GET /v1/stages   per-stage admit-pipeline and partition latency breakdown
//	GET /metrics     the monitor's own exposition
//	GET /healthz     liveness
func (m *Monitor) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /{$}", m.handleDashboard)
	mux.HandleFunc("GET /v1/targets", m.handleTargets)
	mux.HandleFunc("GET /v1/query", m.handleQuery)
	mux.HandleFunc("GET /v1/slo", m.handleSLO)
	mux.HandleFunc("GET /v1/stages", m.handleStages)
	mux.Handle("GET /metrics", m.metrics.reg.Handler())
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		respondJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	return mux
}

func respondJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func respondError(w http.ResponseWriter, code int, format string, args ...any) {
	respondJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}

func (m *Monitor) handleTargets(w http.ResponseWriter, r *http.Request) {
	respondJSON(w, http.StatusOK, map[string]any{"targets": m.TargetStatuses()})
}

func (m *Monitor) handleSLO(w http.ResponseWriter, r *http.Request) {
	respondJSON(w, http.StatusOK, map[string]any{
		"rules":   m.RuleStatuses(),
		"bundles": m.Bundles(),
	})
}

// StageBreakdown is one label-group's latency summary in /v1/stages.
type StageBreakdown struct {
	P50 float64 `json:"p50"`
	P99 float64 `json:"p99"`
}

// stagesResponse is GET /v1/stages: the derived hot-path views — admit
// pipeline latency split by stage (coalesce-wait, batch-assembly,
// engine-admit, wal-append, group-commit), per-partition realloc time, and
// the worst recent worker-imbalance ratio. This is the "which stage is
// guilty" page: a fat admit p99 resolves here into the stage that grew.
type stagesResponse struct {
	SinceSeconds float64                   `json:"since_seconds"`
	AdmitStages  map[string]StageBreakdown `json:"admit_stages"`
	Partitions   map[string]StageBreakdown `json:"partition_realloc"`
	Imbalance    *float64                  `json:"partition_imbalance,omitempty"`
}

// handleStages serves GET /v1/stages?since=<duration> (default 5m).
func (m *Monitor) handleStages(w http.ResponseWriter, r *http.Request) {
	since := 5 * time.Minute
	if raw := r.URL.Query().Get("since"); raw != "" {
		d, err := time.ParseDuration(raw)
		if err != nil || d <= 0 {
			respondError(w, http.StatusBadRequest, "bad since %q", raw)
			return
		}
		since = d
	}
	now := time.Now()
	resp := stagesResponse{
		SinceSeconds: since.Seconds(),
		AdmitStages:  m.breakdownByLabel("coflowd_admit_stage_seconds", "stage", now, since),
		Partitions:   m.breakdownByLabel("coflowd_partition_realloc_seconds", "partition", now, since),
	}
	if v, ok := m.store.LastValue(Selector{Name: "coflowd_partition_imbalance_ratio"}, now, since, "max"); ok {
		resp.Imbalance = &v
	}
	respondJSON(w, http.StatusOK, resp)
}

func (m *Monitor) breakdownByLabel(name, label string, now time.Time, since time.Duration) map[string]StageBreakdown {
	p50 := m.store.QuantileByLabel(name, label, 0.5, now, since)
	p99 := m.store.QuantileByLabel(name, label, 0.99, now, since)
	out := make(map[string]StageBreakdown, len(p99))
	for k, v := range p99 {
		out[k] = StageBreakdown{P50: p50[k], P99: v}
	}
	return out
}

// queryResponse is the /v1/query payload: the resolved series for raw views,
// or a single derived value for last/rate/quantile views.
type queryResponse struct {
	Metric string            `json:"metric"`
	Labels map[string]string `json:"labels,omitempty"`
	View   string            `json:"view"`
	Series []SeriesData      `json:"series,omitempty"`
	Value  *float64          `json:"value,omitempty"`
	OK     bool              `json:"ok"`
}

// handleQuery serves range queries. Parameters:
//
//	metric   series name (required; family name for view=quantile)
//	l.<k>=v  label equality constraints, repeatable
//	since    how far back to look (Go duration, default 5m)
//	view     raw (default) | last | rate | quantile
//	q        quantile in (0,1) for view=quantile (default 0.99)
func (m *Monitor) handleQuery(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	metric := q.Get("metric")
	if metric == "" {
		respondError(w, http.StatusBadRequest, "metric parameter required")
		return
	}
	since := 5 * time.Minute
	if raw := q.Get("since"); raw != "" {
		d, err := time.ParseDuration(raw)
		if err != nil || d <= 0 {
			respondError(w, http.StatusBadRequest, "bad since %q", raw)
			return
		}
		since = d
	}
	labels := map[string]string{}
	for key, vals := range q {
		if strings.HasPrefix(key, "l.") && len(vals) > 0 {
			labels[strings.TrimPrefix(key, "l.")] = vals[0]
		}
	}
	sel := Selector{Name: metric, Labels: labels}
	now := time.Now()
	resp := queryResponse{Metric: metric, Labels: labels, View: q.Get("view")}
	if resp.View == "" {
		resp.View = "raw"
	}
	switch resp.View {
	case "raw":
		resp.Series = m.store.Query(sel, now.Add(-since), now)
		resp.OK = len(resp.Series) > 0
	case "last":
		v, ok := m.store.LastValue(sel, now, since, "max")
		resp.OK = ok
		if ok {
			resp.Value = &v
		}
	case "rate":
		v, ok := m.store.CounterRate(sel, now, since)
		resp.OK = ok
		if ok {
			resp.Value = &v
		}
	case "quantile":
		quant := 0.99
		if raw := q.Get("q"); raw != "" {
			p, err := strconv.ParseFloat(raw, 64)
			if err != nil || p <= 0 || p >= 1 {
				respondError(w, http.StatusBadRequest, "bad quantile %q", raw)
				return
			}
			quant = p
		}
		v, ok := m.store.HistogramQuantile(sel, quant, now, since)
		resp.OK = ok
		if ok {
			resp.Value = &v
		}
	default:
		respondError(w, http.StatusBadRequest, "unknown view %q", resp.View)
		return
	}
	respondJSON(w, http.StatusOK, resp)
}
