package monitor

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"coflowsched/internal/telemetry"
)

// fakeShard is a scrape target with a real telemetry registry and canned
// epoch/trace evidence, whose /metrics can be flipped to 503 to simulate an
// outage.
type fakeShard struct {
	ts   *httptest.Server
	down atomic.Bool
	reqs *telemetry.Counter
}

func newFakeShard(t *testing.T, shard string) *fakeShard {
	t.Helper()
	f := &fakeShard{}
	reg := telemetry.NewRegistry(telemetry.Label{Name: "shard", Value: shard})
	reg.Gauge("coflowd_up", "").Set(1)
	f.reqs = reg.Counter("coflowd_http_requests_total", "")
	h := reg.Histogram("coflowd_tick_duration_seconds", "", nil)
	h.Observe(0.002)
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		if f.down.Load() {
			http.Error(w, "dead", http.StatusServiceUnavailable)
			return
		}
		reg.Handler().ServeHTTP(w, r)
	})
	mux.HandleFunc("/v1/epochs", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintf(w, `{"shard":%q,"records":[{"epoch":1,"traces":["t-1"]}]}`, shard)
	})
	mux.HandleFunc("/debug/traces", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintf(w, `{"spans":[{"trace":"t-1","name":"admit","shard":%q}]}`, shard)
	})
	f.ts = httptest.NewServer(mux)
	t.Cleanup(f.ts.Close)
	return f
}

// testRules is a minimal SLO set whose windows comfortably cover a test's
// rapid manual Ticks.
func testRules() []Rule {
	return []Rule{
		{Name: "scrape-failure", Metric: "up", Kind: KindGauge, Objective: 1, Below: true,
			FastWindowSeconds: 60, SlowWindowSeconds: 120, ResolveAfterSeconds: 1},
	}
}

func TestMonitorScrapeFireBundle(t *testing.T) {
	shard := newFakeShard(t, "shard0")
	dir := t.TempDir()
	m, err := New(Config{
		Targets:   []Target{{Name: "shard0", URL: shard.ts.URL}},
		Interval:  time.Hour, // tests step the monitor with Tick()
		Rules:     testRules(),
		BundleDir: dir,
		Logger:    telemetry.LogfLogger(t.Logf),
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(m.Close)

	shard.reqs.Add(5)
	m.Tick()
	shard.reqs.Add(5)
	m.Tick()

	// Healthy: target up, samples stored, rule healthy, no bundles.
	tgts := m.TargetStatuses()
	if len(tgts) != 1 || !tgts[0].Healthy || tgts[0].Samples == 0 {
		t.Fatalf("target status after healthy ticks: %+v", tgts)
	}
	rs := m.RuleStatuses()
	if len(rs) != 1 || rs[0].State != StateHealthy {
		t.Fatalf("rule state = %+v, want healthy", rs)
	}
	if v, ok := m.store.LastValue(Selector{Name: "up", Labels: map[string]string{"instance": "shard0"}}, time.Now(), time.Minute, "min"); !ok || v != 1 {
		t.Fatalf("synthetic up = %v, %v", v, ok)
	}
	if v, ok := m.store.LastValue(Selector{Name: "coflowd_http_requests_total", Labels: map[string]string{"shard": "shard0"}}, time.Now(), time.Minute, "max"); !ok || v != 10 {
		t.Fatalf("scraped counter = %v, %v; want 10", v, ok)
	}

	// Outage: the next tick records up=0, the Below rule fires immediately
	// (both windows see the dip), and the recorder writes a bundle.
	shard.down.Store(true)
	m.Tick()
	rs = m.RuleStatuses()
	if rs[0].State != StateFiring || rs[0].Firings != 1 {
		t.Fatalf("rule after outage = %+v, want firing once", rs[0])
	}
	bundles := m.Bundles()
	if len(bundles) != 1 {
		t.Fatalf("bundles = %+v, want exactly one", bundles)
	}

	// The bundle on disk is a readable post-mortem: rule status, targets,
	// series (with the pre-outage samples), and the evidence joins — the
	// epoch record and trace spans reference the same shard and trace id.
	data, err := os.ReadFile(bundles[0].Path)
	if err != nil {
		t.Fatalf("read bundle: %v", err)
	}
	var b Bundle
	if err := json.Unmarshal(data, &b); err != nil {
		t.Fatalf("bundle does not parse: %v", err)
	}
	if b.Rule.Rule.Name != "scrape-failure" || b.Rule.State != StateFiring {
		t.Errorf("bundle rule = %+v", b.Rule)
	}
	if len(b.Targets) != 1 || b.Targets[0].Healthy {
		t.Errorf("bundle targets = %+v, want the dead shard", b.Targets)
	}
	foundUp := false
	for _, sd := range b.Series {
		if sd.Name == "up" && sd.Labels["instance"] == "shard0" && len(sd.Points) == 3 {
			foundUp = true
		}
	}
	if !foundUp {
		t.Error("bundle series lack the 3-point up{instance=shard0} history")
	}
	var epochs struct {
		Shard   string `json:"shard"`
		Records []struct {
			Traces []string `json:"traces"`
		} `json:"records"`
	}
	if err := json.Unmarshal(b.Epochs["shard0"], &epochs); err != nil || epochs.Shard != "shard0" {
		t.Fatalf("bundle epochs for shard0: %v %+v", err, epochs)
	}
	var traces struct {
		Spans []struct {
			Trace string `json:"trace"`
			Shard string `json:"shard"`
		} `json:"spans"`
	}
	if err := json.Unmarshal(b.Traces["shard0"], &traces); err != nil || len(traces.Spans) == 0 {
		t.Fatalf("bundle traces for shard0: %v %+v", err, traces)
	}
	if epochs.Records[0].Traces[0] != traces.Spans[0].Trace {
		t.Errorf("epoch trace id %q does not join span trace id %q",
			epochs.Records[0].Traces[0], traces.Spans[0].Trace)
	}
	if traces.Spans[0].Shard != epochs.Shard {
		t.Errorf("span shard %q does not join epoch shard %q", traces.Spans[0].Shard, epochs.Shard)
	}

	// Still down: no duplicate bundle while the rule stays firing.
	m.Tick()
	if got := m.Bundles(); len(got) != 1 {
		t.Errorf("bundles after second down tick = %d, want still 1", len(got))
	}
}

func TestMonitorDiscovery(t *testing.T) {
	shard := newFakeShard(t, "shard0")
	gwReg := telemetry.NewRegistry()
	gwReg.Gauge("coflowgate_up", "").Set(1)
	mux := http.NewServeMux()
	mux.Handle("/metrics", gwReg.Handler())
	mux.HandleFunc("/v1/backends", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintf(w, `[{"name":"shard0","url":%q,"healthy":true}]`, shard.ts.URL)
	})
	gw := httptest.NewServer(mux)
	t.Cleanup(gw.Close)

	m, err := New(Config{
		DiscoverURL: gw.URL,
		Interval:    time.Hour,
		Rules:       testRules(),
		Logger:      telemetry.LogfLogger(t.Logf),
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(m.Close)
	m.Tick()

	names := map[string]bool{}
	for _, ts := range m.TargetStatuses() {
		names[ts.Name] = ts.Healthy
	}
	if !names["gateway"] || !names["shard0"] {
		t.Fatalf("discovered targets = %+v, want healthy gateway and shard0", names)
	}
	if v, ok := m.store.LastValue(Selector{Name: "coflowgate_up"}, time.Now(), time.Minute, "max"); !ok || v != 1 {
		t.Errorf("gateway metric not stored: %v %v", v, ok)
	}
}

func TestMonitorHTTPAPI(t *testing.T) {
	shard := newFakeShard(t, "shard0")
	m, err := New(Config{
		Targets:  []Target{{Name: "shard0", URL: shard.ts.URL}},
		Interval: time.Hour,
		Rules:    testRules(),
		Logger:   telemetry.LogfLogger(t.Logf),
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(m.Close)
	m.Tick()
	m.Tick()
	api := httptest.NewServer(m.Handler())
	t.Cleanup(api.Close)

	getJSON := func(path string, into any) int {
		t.Helper()
		resp, err := http.Get(api.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if err := json.NewDecoder(resp.Body).Decode(into); err != nil && resp.StatusCode == http.StatusOK {
			t.Fatalf("GET %s: decode: %v", path, err)
		}
		return resp.StatusCode
	}

	var slo struct {
		Rules   []RuleStatus `json:"rules"`
		Bundles []BundleInfo `json:"bundles"`
	}
	if code := getJSON("/v1/slo", &slo); code != 200 || len(slo.Rules) != 1 {
		t.Fatalf("/v1/slo: code=%d %+v", code, slo)
	}
	var tgts struct {
		Targets []TargetStatus `json:"targets"`
	}
	if code := getJSON("/v1/targets", &tgts); code != 200 || len(tgts.Targets) != 1 {
		t.Fatalf("/v1/targets: code=%d %+v", code, tgts)
	}
	var q queryResponse
	if code := getJSON("/v1/query?metric=up&l.instance=shard0&view=last", &q); code != 200 || !q.OK || q.Value == nil || *q.Value != 1 {
		t.Fatalf("/v1/query last: code=%d %+v", code, q)
	}
	if code := getJSON("/v1/query?metric=coflowd_tick_duration_seconds&view=quantile&q=0.5", &q); code != 200 {
		t.Fatalf("/v1/query quantile: code=%d", code)
	}
	var raw queryResponse
	if code := getJSON("/v1/query?metric=up&view=raw&since=10m", &raw); code != 200 || len(raw.Series) != 1 || len(raw.Series[0].Points) != 2 {
		t.Fatalf("/v1/query raw: code=%d %+v", code, raw)
	}
	for _, bad := range []string{
		"/v1/query",
		"/v1/query?metric=up&view=bogus",
		"/v1/query?metric=up&since=nope",
		"/v1/query?metric=h&view=quantile&q=2",
	} {
		var e map[string]string
		if code := getJSON(bad, &e); code != http.StatusBadRequest {
			t.Errorf("GET %s: code=%d, want 400", bad, code)
		}
	}

	// The dashboard serves and mentions the API it polls.
	resp, err := http.Get(api.URL + "/")
	if err != nil {
		t.Fatalf("GET /: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 || !strings.Contains(string(body), "coflowmon") ||
		!strings.Contains(string(body), "v1/slo") || !strings.Contains(string(body), "v1/targets") {
		t.Errorf("dashboard: code=%d", resp.StatusCode)
	}

	// The monitor's own /metrics parses strictly and carries its families.
	page, err := http.Get(api.URL + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	buf, _ := io.ReadAll(page.Body)
	page.Body.Close()
	parsed, err := telemetry.ParseMetrics(string(buf))
	if err != nil {
		t.Fatalf("monitor /metrics does not parse: %v", err)
	}
	for _, fam := range []string{"coflowmon_up", "coflowmon_scrapes_total", "coflowmon_rule_evaluations_total", "go_goroutines"} {
		if _, ok := parsed.Get(fam); !ok {
			t.Errorf("monitor /metrics lacks %s", fam)
		}
	}
}

func TestParseTargetConfigErrors(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("New with no targets and no discover URL succeeded")
	}
	if _, err := New(Config{Targets: []Target{{Name: "a", URL: "http://x"}, {Name: "a", URL: "http://y"}}}); err == nil {
		t.Error("New with duplicate target names succeeded")
	}
	if _, err := New(Config{Targets: []Target{{Name: "a", URL: "http://x"}}, Rules: []Rule{{Name: "bad"}}}); err == nil {
		t.Error("New with invalid rule succeeded")
	}
}
