package monitor

import (
	"math"
	"testing"
	"time"
)

var t0 = time.Date(2026, 8, 7, 12, 0, 0, 0, time.UTC)

func at(s float64) time.Time { return t0.Add(time.Duration(s * float64(time.Second))) }

func TestStoreRingBounded(t *testing.T) {
	st := NewStore(4)
	for i := 0; i < 10; i++ {
		st.Append("m", nil, at(float64(i)), float64(i))
	}
	got := st.Query(Selector{Name: "m"}, time.Time{}, time.Time{})
	if len(got) != 1 || len(got[0].Points) != 4 {
		t.Fatalf("want one series with 4 points, got %+v", got)
	}
	for i, p := range got[0].Points {
		if want := float64(6 + i); p.V != want {
			t.Errorf("point %d = %v, want %v (oldest evicted, order kept)", i, p.V, want)
		}
	}
}

func TestStoreDropsNonFinite(t *testing.T) {
	st := NewStore(8)
	st.Append("m", nil, at(0), math.NaN())
	st.Append("m", nil, at(1), math.Inf(1))
	st.Append("m", nil, at(2), 3)
	if n, samples := st.Counts(); samples != 1 || n != 1 {
		t.Fatalf("non-finite samples stored: series=%d samples=%d", n, samples)
	}
}

func TestStoreSelectorsAndWindows(t *testing.T) {
	st := NewStore(16)
	st.Append("up", map[string]string{"instance": "a"}, at(0), 1)
	st.Append("up", map[string]string{"instance": "a"}, at(1), 0)
	st.Append("up", map[string]string{"instance": "b"}, at(1), 1)

	both := st.Query(Selector{Name: "up"}, time.Time{}, time.Time{})
	if len(both) != 2 {
		t.Fatalf("unconstrained selector matched %d series, want 2", len(both))
	}
	onlyA := st.Query(Selector{Name: "up", Labels: map[string]string{"instance": "a"}}, time.Time{}, time.Time{})
	if len(onlyA) != 1 || len(onlyA[0].Points) != 2 {
		t.Fatalf("labelled selector: %+v", onlyA)
	}
	windowed := st.Query(Selector{Name: "up"}, at(0.5), at(1.5))
	for _, sd := range windowed {
		for _, p := range sd.Points {
			if p.T.Before(at(0.5)) || p.T.After(at(1.5)) {
				t.Errorf("point %v outside window", p)
			}
		}
	}
}

func TestWorstValueMinSeesTransientDip(t *testing.T) {
	st := NewStore(16)
	// A gauge that dipped to 0 and recovered: LastValue says healthy, but
	// WorstValue(min) keeps the dip visible as long as it is in the window.
	st.Append("g", nil, at(0), 1)
	st.Append("g", nil, at(1), 0)
	st.Append("g", nil, at(2), 1)
	if v, ok := st.LastValue(Selector{Name: "g"}, at(2), 5*time.Second, "min"); !ok || v != 1 {
		t.Errorf("LastValue = %v, %v; want 1", v, ok)
	}
	if v, ok := st.WorstValue(Selector{Name: "g"}, at(2), 5*time.Second, "min"); !ok || v != 0 {
		t.Errorf("WorstValue min = %v, %v; want 0", v, ok)
	}
	// Once the dip ages out of the window the rule sees health again.
	st.Append("g", nil, at(8), 1)
	if v, _ := st.WorstValue(Selector{Name: "g"}, at(10), 5*time.Second, "min"); v != 1 {
		t.Errorf("WorstValue after dip aged out = %v, want 1", v)
	}
}

func TestCounterRate(t *testing.T) {
	st := NewStore(16)
	for i := 0; i <= 10; i++ {
		st.Append("c_total", nil, at(float64(i)), float64(i*5))
	}
	v, ok := st.CounterRate(Selector{Name: "c_total"}, at(10), 10*time.Second)
	if !ok || math.Abs(v-5) > 1e-9 {
		t.Errorf("rate = %v, %v; want 5/s", v, ok)
	}
	// Counter reset: the post-reset value counts, not a negative delta.
	st2 := NewStore(16)
	st2.Append("c_total", nil, at(0), 100)
	st2.Append("c_total", nil, at(1), 110)
	st2.Append("c_total", nil, at(2), 4) // daemon restarted
	v, ok = st2.CounterRate(Selector{Name: "c_total"}, at(2), 10*time.Second)
	if !ok || math.Abs(v-7) > 1e-9 { // (10 + 4) / 2s
		t.Errorf("rate across reset = %v, %v; want 7/s", v, ok)
	}
	if _, ok := st2.CounterRate(Selector{Name: "missing"}, at(2), 10*time.Second); ok {
		t.Error("rate of missing series reported ok")
	}
}

func TestCounterRateSumsAcrossInstances(t *testing.T) {
	st := NewStore(16)
	for i := 0; i <= 4; i++ {
		st.Append("c_total", map[string]string{"instance": "a"}, at(float64(i)), float64(i*2))
		st.Append("c_total", map[string]string{"instance": "b"}, at(float64(i)), float64(i*3))
	}
	v, ok := st.CounterRate(Selector{Name: "c_total"}, at(4), 10*time.Second)
	if !ok || math.Abs(v-5) > 1e-9 {
		t.Errorf("summed rate = %v, %v; want 5/s", v, ok)
	}
}

func TestHistogramQuantileBasics(t *testing.T) {
	st := NewStore(16)
	// Two scrapes of a cumulative histogram: deltas are 10 obs <= 0.1,
	// 10 more in (0.1, 1], none beyond.
	app := func(ts time.Time, le string, v float64) {
		st.Append("h_bucket", map[string]string{"le": le}, ts, v)
	}
	app(at(0), "0.1", 0)
	app(at(0), "1", 0)
	app(at(0), "+Inf", 0)
	app(at(1), "0.1", 10)
	app(at(1), "1", 20)
	app(at(1), "+Inf", 20)

	if v, ok := st.HistogramQuantile(Selector{Name: "h"}, 0.5, at(1), 5*time.Second); !ok || math.Abs(v-0.1) > 1e-9 {
		t.Errorf("p50 = %v, %v; want 0.1 (upper edge of owning bucket)", v, ok)
	}
	v, ok := st.HistogramQuantile(Selector{Name: "h"}, 0.75, at(1), 5*time.Second)
	if !ok || v < 0.1 || v > 1 {
		t.Errorf("p75 = %v, %v; want inside (0.1, 1]", v, ok)
	}
	// All mass beyond the last finite bound: the bound is the answer.
	st2 := NewStore(16)
	st2.Append("h_bucket", map[string]string{"le": "1"}, at(0), 0)
	st2.Append("h_bucket", map[string]string{"le": "+Inf"}, at(0), 0)
	st2.Append("h_bucket", map[string]string{"le": "1"}, at(1), 0)
	st2.Append("h_bucket", map[string]string{"le": "+Inf"}, at(1), 5)
	if v, ok := st2.HistogramQuantile(Selector{Name: "h"}, 0.99, at(1), 5*time.Second); !ok || v != 1 {
		t.Errorf("p99 with overflow-only mass = %v, %v; want 1", v, ok)
	}
	// No observations in the window: no data, not zero.
	if _, ok := st.HistogramQuantile(Selector{Name: "h"}, 0.5, at(100), time.Second); ok {
		t.Error("quantile over empty window reported ok")
	}
}

func TestHistogramQuantileAggregatesInstances(t *testing.T) {
	st := NewStore(16)
	app := func(inst string, ts time.Time, le string, v float64) {
		st.Append("h_bucket", map[string]string{"instance": inst, "le": le}, ts, v)
	}
	// Instance a: all 10 obs fast; instance b: all 10 slow. The p99 of the
	// union must land in b's bucket.
	for _, inst := range []string{"a", "b"} {
		app(inst, at(0), "0.1", 0)
		app(inst, at(0), "1", 0)
		app(inst, at(0), "+Inf", 0)
	}
	app("a", at(1), "0.1", 10)
	app("a", at(1), "1", 10)
	app("a", at(1), "+Inf", 10)
	app("b", at(1), "0.1", 0)
	app("b", at(1), "1", 10)
	app("b", at(1), "+Inf", 10)
	v, ok := st.HistogramQuantile(Selector{Name: "h"}, 0.99, at(1), 5*time.Second)
	if !ok || v <= 0.1 || v > 1 {
		t.Errorf("aggregated p99 = %v, %v; want in (0.1, 1]", v, ok)
	}
}
