package monitor

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"testing"
	"time"

	"coflowsched/internal/stats"
	"coflowsched/internal/telemetry"
)

// TestQuantileAgreesWithPercentile is the estimator-contract test: the
// monitor's bucket-delta quantile, fed the cumulative bucket counts two
// scrapes apart, must agree with stats.Percentile over the same raw
// observation stream to within one bucket width — the inherent resolution of
// a histogram estimator — across a uniform and a heavy-tailed input.
func TestQuantileAgreesWithPercentile(t *testing.T) {
	buckets := telemetry.DefTimeBuckets
	dists := []struct {
		name string
		draw func(rng *rand.Rand) float64
	}{
		// Uniform across the mid buckets.
		{"uniform", func(rng *rand.Rand) float64 { return rng.Float64() * 0.5 }},
		// Pareto(xm=1e-4, alpha=1): most mass in the microsecond buckets,
		// a tail reaching past the largest finite bound.
		{"heavy-tail", func(rng *rand.Rand) float64 { return 1e-4 / rng.Float64() }},
	}
	for _, dist := range dists {
		t.Run(dist.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(7))
			const n = 5000
			xs := make([]float64, n)
			for i := range xs {
				xs[i] = dist.draw(rng)
			}
			st := storeWithHistogram(t, "h", buckets, xs)
			for _, q := range []float64{0.5, 0.9, 0.99} {
				est, ok := st.HistogramQuantile(Selector{Name: "h"}, q, at(1), 5*time.Second)
				if !ok {
					t.Fatalf("q=%v: no data", q)
				}
				truth := stats.Percentile(xs, q*100)
				lo, hi := owningBucket(buckets, truth)
				if math.IsInf(hi, 1) {
					// Truth beyond the last finite bound: the estimator's best
					// (and documented) answer is that bound.
					if est != lo {
						t.Errorf("q=%v: truth %v beyond buckets, est=%v want %v", q, truth, est, lo)
					}
					continue
				}
				if diff := math.Abs(est - truth); diff > hi-lo+1e-12 {
					t.Errorf("q=%v: est=%v truth=%v differ by %v, more than bucket width %v [%v,%v]",
						q, est, truth, diff, hi-lo, lo, hi)
				}
			}
		})
	}
}

// storeWithHistogram appends two scrapes of a cumulative histogram built
// from xs: an all-zero baseline at t=0 and the full counts at t=1 — exactly
// what the monitor sees across a scrape interval.
func storeWithHistogram(t *testing.T, name string, bounds []float64, xs []float64) *Store {
	t.Helper()
	st := NewStore(8)
	counts := make([]int, len(bounds)+1) // cumulative, +Inf last
	for _, x := range xs {
		i := sort.SearchFloat64s(bounds, x)
		for ; i < len(bounds); i++ {
			counts[i]++
		}
		counts[len(bounds)]++
	}
	le := func(i int) string {
		if i == len(bounds) {
			return "+Inf"
		}
		return fmt.Sprintf("%g", bounds[i])
	}
	for i := range counts {
		st.Append(name+"_bucket", map[string]string{"le": le(i)}, at(0), 0)
	}
	for i, c := range counts {
		st.Append(name+"_bucket", map[string]string{"le": le(i)}, at(1), float64(c))
	}
	return st
}

// owningBucket returns the bucket [lo, hi] a value falls in; hi is +Inf past
// the last bound (lo then being that largest finite bound).
func owningBucket(bounds []float64, v float64) (lo, hi float64) {
	i := sort.SearchFloat64s(bounds, v)
	if i == len(bounds) {
		return bounds[len(bounds)-1], math.Inf(1)
	}
	if i == 0 {
		return 0, bounds[0]
	}
	return bounds[i-1], bounds[i]
}
