package monitor

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"
)

// Bundle is a flight-recorder post-mortem: everything the monitor can see at
// the moment a rule fires, in one JSON file. The pieces join: Series carry
// {instance=...} and scraped {shard=...} labels, Traces are each daemon's
// /debug/traces ring (spans join on trace id across gateway and shard), and
// Epochs are each shard's /v1/epochs tail (records join on shard name and
// the trace ids recorded per epoch).
type Bundle struct {
	Rule       RuleStatus                 `json:"rule"`
	CapturedAt time.Time                  `json:"captured_at"`
	Targets    []TargetStatus             `json:"targets"`
	Series     []SeriesData               `json:"series"`
	Epochs     map[string]json.RawMessage `json:"epochs,omitempty"`
	Traces     map[string]json.RawMessage `json:"traces,omitempty"`
}

// BundleInfo is the index entry for one written bundle, served at /v1/slo.
type BundleInfo struct {
	Rule       string    `json:"rule"`
	Path       string    `json:"path"`
	CapturedAt time.Time `json:"captured_at"`
	SizeBytes  int64     `json:"size_bytes"`
}

// evidenceTail bounds the per-target epoch and trace tails captured into a
// bundle; keepBundles bounds the in-memory index (files stay on disk).
const (
	epochTail   = 128
	traceTail   = 256
	keepBundles = 64
)

// recorder captures bundles into a directory on firing transitions.
type recorder struct {
	dir string
	m   *Monitor

	mu      sync.Mutex
	written []BundleInfo
}

func newRecorder(dir string, m *Monitor) *recorder {
	return &recorder{dir: dir, m: m}
}

// capture assembles and writes one bundle for a just-fired rule.
func (rc *recorder) capture(rs RuleStatus, now time.Time) (BundleInfo, error) {
	targets := rc.m.TargetStatuses()
	b := Bundle{
		Rule:       rs,
		CapturedAt: now,
		Targets:    targets,
		Series:     rc.m.Store().Dump(),
		Epochs:     make(map[string]json.RawMessage),
		Traces:     make(map[string]json.RawMessage),
	}
	// Evidence fetches are best-effort: a bundle for a dead-shard alert must
	// still be written even though the dead shard answers nothing.
	for _, t := range targets {
		if raw, err := rc.fetchJSON(fmt.Sprintf("%s/v1/epochs?n=%d", strings.TrimSuffix(t.URL, "/"), epochTail)); err == nil {
			b.Epochs[t.Name] = raw
		}
		if raw, err := rc.fetchJSON(fmt.Sprintf("%s/debug/traces?n=%d", strings.TrimSuffix(t.URL, "/"), traceTail)); err == nil {
			b.Traces[t.Name] = raw
		}
	}
	if err := os.MkdirAll(rc.dir, 0o755); err != nil {
		return BundleInfo{}, err
	}
	name := fmt.Sprintf("bundle-%s-%d.json", sanitizeRuleName(rs.Rule.Name), now.UnixNano())
	path := filepath.Join(rc.dir, name)
	data, err := json.MarshalIndent(&b, "", "  ")
	if err != nil {
		return BundleInfo{}, fmt.Errorf("marshal bundle: %w", err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return BundleInfo{}, err
	}
	info := BundleInfo{Rule: rs.Rule.Name, Path: path, CapturedAt: now, SizeBytes: int64(len(data))}
	rc.mu.Lock()
	rc.written = append(rc.written, info)
	if len(rc.written) > keepBundles {
		rc.written = rc.written[len(rc.written)-keepBundles:]
	}
	rc.mu.Unlock()
	return info, nil
}

func (rc *recorder) fetchJSON(url string) (json.RawMessage, error) {
	resp, err := rc.m.client.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("status %s", resp.Status)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if !json.Valid(body) {
		return nil, fmt.Errorf("response is not JSON")
	}
	return json.RawMessage(body), nil
}

func (rc *recorder) list() []BundleInfo {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	return append([]BundleInfo{}, rc.written...)
}

// sanitizeRuleName keeps bundle file names shell- and filesystem-friendly.
func sanitizeRuleName(s string) string {
	var b strings.Builder
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}
