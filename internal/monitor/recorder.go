package monitor

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"
)

// Bundle is a flight-recorder post-mortem: everything the monitor can see at
// the moment a rule fires, in one JSON file. The pieces join: Series carry
// {instance=...} and scraped {shard=...} labels, Traces are each daemon's
// /debug/traces ring (spans join on trace id across gateway and shard), and
// Epochs are each shard's /v1/epochs tail (records join on shard name and
// the trace ids recorded per epoch).
type Bundle struct {
	Rule       RuleStatus                 `json:"rule"`
	CapturedAt time.Time                  `json:"captured_at"`
	Targets    []TargetStatus             `json:"targets"`
	Series     []SeriesData               `json:"series"`
	Epochs     map[string]json.RawMessage `json:"epochs,omitempty"`
	Traces     map[string]json.RawMessage `json:"traces,omitempty"`
	// Profiles attach a short CPU profile plus a heap snapshot per live
	// target, captured through /debug/pprof while the incident is still in
	// flight — the "what was it doing" the series can't answer.
	Profiles map[string]ProfileCapture `json:"profiles,omitempty"`
}

// ProfileCapture is one target's on-alert pprof evidence. The byte slices
// are raw pprof protos (gzip), base64-encoded by JSON marshalling; decode
// with base64 -d and feed straight to `go tool pprof`. Err records a partial
// failure — a dead target yields an Err, not a missing entry. In an
// in-process cluster every target shares one Go CPU profiler, so concurrent
// CPU captures collide and only one target's succeeds (the rest carry a
// "profiling already in use" Err); real deployments profile per process.
type ProfileCapture struct {
	CPU  []byte `json:"cpu,omitempty"`
	Heap []byte `json:"heap,omitempty"`
	Err  string `json:"err,omitempty"`
}

// BundleInfo is the index entry for one written bundle, served at /v1/slo.
type BundleInfo struct {
	Rule       string    `json:"rule"`
	Path       string    `json:"path"`
	CapturedAt time.Time `json:"captured_at"`
	SizeBytes  int64     `json:"size_bytes"`
}

// evidenceTail bounds the per-target epoch and trace tails captured into a
// bundle; keepBundles bounds the in-memory index (files stay on disk).
const (
	epochTail   = 128
	traceTail   = 256
	keepBundles = 64
)

// recorder captures bundles into a directory on firing transitions.
type recorder struct {
	dir string
	m   *Monitor
	// profClient outlives the monitor's scrape client on purpose: a CPU
	// profile blocks for the full sampling window before the first byte, so
	// its timeout is the evidence timeout plus the sampling duration.
	profClient *http.Client

	mu      sync.Mutex
	written []BundleInfo
}

func newRecorder(dir string, m *Monitor) *recorder {
	return &recorder{
		dir:        dir,
		m:          m,
		profClient: &http.Client{Timeout: m.cfg.HTTPTimeout + m.cfg.ProfileDuration},
	}
}

// capture assembles and writes one bundle for a just-fired rule.
func (rc *recorder) capture(rs RuleStatus, now time.Time) (BundleInfo, error) {
	targets := rc.m.TargetStatuses()
	b := Bundle{
		Rule:       rs,
		CapturedAt: now,
		Targets:    targets,
		Series:     rc.m.Store().Dump(),
		Epochs:     make(map[string]json.RawMessage),
		Traces:     make(map[string]json.RawMessage),
	}
	// Profiles sample concurrently while the cheap evidence fetches run: the
	// CPU profile blocks for its whole sampling window, and serializing it
	// per target would multiply the capture latency by the roster size.
	profDone := rc.captureProfiles(&b, targets)
	// Evidence fetches are best-effort: a bundle for a dead-shard alert must
	// still be written even though the dead shard answers nothing.
	for _, t := range targets {
		if raw, err := rc.fetchJSON(fmt.Sprintf("%s/v1/epochs?n=%d", strings.TrimSuffix(t.URL, "/"), epochTail)); err == nil {
			b.Epochs[t.Name] = raw
		}
		if raw, err := rc.fetchJSON(fmt.Sprintf("%s/debug/traces?n=%d", strings.TrimSuffix(t.URL, "/"), traceTail)); err == nil {
			b.Traces[t.Name] = raw
		}
	}
	profDone()
	if err := os.MkdirAll(rc.dir, 0o755); err != nil {
		return BundleInfo{}, err
	}
	name := fmt.Sprintf("bundle-%s-%d.json", sanitizeRuleName(rs.Rule.Name), now.UnixNano())
	path := filepath.Join(rc.dir, name)
	data, err := json.MarshalIndent(&b, "", "  ")
	if err != nil {
		return BundleInfo{}, fmt.Errorf("marshal bundle: %w", err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return BundleInfo{}, err
	}
	info := BundleInfo{Rule: rs.Rule.Name, Path: path, CapturedAt: now, SizeBytes: int64(len(data))}
	rc.mu.Lock()
	rc.written = append(rc.written, info)
	if len(rc.written) > keepBundles {
		rc.written = rc.written[len(rc.written)-keepBundles:]
	}
	rc.mu.Unlock()
	return info, nil
}

// captureProfiles launches one goroutine per healthy target to pull a CPU
// profile and heap snapshot through /debug/pprof, writing results into
// b.Profiles. It returns a join function; the caller must call it before
// reading or marshalling the bundle. Unhealthy targets are skipped outright —
// the profile client's long timeout would otherwise stall the whole capture
// waiting on a daemon already known to be dead.
func (rc *recorder) captureProfiles(b *Bundle, targets []TargetStatus) func() {
	if rc.m.cfg.ProfileDuration < 0 {
		return func() {}
	}
	// net/http/pprof takes whole seconds only; round the sampling window up
	// so sub-second configs still profile rather than 400.
	secs := int((rc.m.cfg.ProfileDuration + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	b.Profiles = make(map[string]ProfileCapture)
	var (
		wg sync.WaitGroup
		mu sync.Mutex
	)
	for _, t := range targets {
		if !t.Healthy {
			continue
		}
		wg.Add(1)
		go func(t TargetStatus) {
			defer wg.Done()
			base := strings.TrimSuffix(t.URL, "/")
			var pc ProfileCapture
			cpu, cpuErr := rc.fetchRaw(fmt.Sprintf("%s/debug/pprof/profile?seconds=%d", base, secs))
			heap, heapErr := rc.fetchRaw(base + "/debug/pprof/heap")
			pc.CPU, pc.Heap = cpu, heap
			if cpuErr != nil {
				pc.Err = "cpu: " + cpuErr.Error()
			} else if heapErr != nil {
				pc.Err = "heap: " + heapErr.Error()
			}
			mu.Lock()
			b.Profiles[t.Name] = pc
			mu.Unlock()
		}(t)
	}
	return wg.Wait
}

// fetchRaw pulls an opaque body (pprof protos) with the profile client.
func (rc *recorder) fetchRaw(url string) ([]byte, error) {
	resp, err := rc.profClient.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("status %s", resp.Status)
	}
	return io.ReadAll(resp.Body)
}

func (rc *recorder) fetchJSON(url string) (json.RawMessage, error) {
	resp, err := rc.m.client.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("status %s", resp.Status)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if !json.Valid(body) {
		return nil, fmt.Errorf("response is not JSON")
	}
	return json.RawMessage(body), nil
}

func (rc *recorder) list() []BundleInfo {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	return append([]BundleInfo{}, rc.written...)
}

// sanitizeRuleName keeps bundle file names shell- and filesystem-friendly.
func sanitizeRuleName(s string) string {
	var b strings.Builder
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}
