package monitor

import (
	"fmt"
	"math"
	"time"
)

// RuleKind selects which derived view of the store a rule evaluates.
type RuleKind string

const (
	// KindQuantile evaluates a histogram bucket-delta quantile of
	// Rule.Metric (the family name, without _bucket).
	KindQuantile RuleKind = "quantile"
	// KindGauge evaluates the worst gauge value seen inside the window
	// (max for Above rules, min for Below rules).
	KindGauge RuleKind = "gauge"
	// KindRate evaluates the summed counter increase per second.
	KindRate RuleKind = "rate"
)

// Rule is one declarative SLO: a metric selector, an objective, and the
// multi-window burn-rate machinery around it. Windows are float seconds so
// rules serialize cleanly in /v1/slo responses and bundles.
//
// Burn rate is measured/objective for Above rules (latency too high) and
// objective/measured for Below rules (availability too low); a rule
// violates a window when that window's burn exceeds 1. The state machine is
// the usual multi-window shape: the fast window trips quickly (pending),
// firing needs both fast AND slow windows violating — sustained for
// ForSeconds — and resolution needs both windows healthy continuously for
// ResolveAfterSeconds (hysteresis against flapping).
type Rule struct {
	Name   string            `json:"name"`
	Metric string            `json:"metric"`
	Labels map[string]string `json:"labels,omitempty"`
	Kind   RuleKind          `json:"kind"`
	// Quantile is used by KindQuantile rules (e.g. 0.99).
	Quantile float64 `json:"quantile,omitempty"`
	// Objective is the threshold the measured value is held against, in the
	// metric's own unit (seconds for latency quantiles, 1 for up-gauges).
	Objective float64 `json:"objective"`
	// Below inverts the comparison: the rule violates when the measured
	// value falls below the objective (availability-style).
	Below bool `json:"below,omitempty"`

	FastWindowSeconds   float64 `json:"fast_window_seconds"`
	SlowWindowSeconds   float64 `json:"slow_window_seconds"`
	ForSeconds          float64 `json:"for_seconds,omitempty"`
	ResolveAfterSeconds float64 `json:"resolve_after_seconds,omitempty"`
}

func (r Rule) validate() error {
	if r.Name == "" || r.Metric == "" {
		return fmt.Errorf("rule needs name and metric: %+v", r)
	}
	switch r.Kind {
	case KindQuantile:
		if r.Quantile <= 0 || r.Quantile >= 1 {
			return fmt.Errorf("rule %s: quantile %v outside (0,1)", r.Name, r.Quantile)
		}
	case KindGauge, KindRate:
	default:
		return fmt.Errorf("rule %s: unknown kind %q", r.Name, r.Kind)
	}
	if r.Objective <= 0 {
		return fmt.Errorf("rule %s: objective must be positive", r.Name)
	}
	if r.FastWindowSeconds <= 0 || r.SlowWindowSeconds < r.FastWindowSeconds {
		return fmt.Errorf("rule %s: want 0 < fast <= slow window", r.Name)
	}
	return nil
}

// RuleState is one step of the pending->firing->resolved lifecycle.
type RuleState string

const (
	StateHealthy  RuleState = "healthy"
	StatePending  RuleState = "pending"
	StateFiring   RuleState = "firing"
	StateResolved RuleState = "resolved"
)

// RuleStatus is a rule's externally visible evaluation state, served at
// /v1/slo and embedded in flight-recorder bundles. Measured values are
// pointers so "no data yet" serializes as null rather than a fake zero.
type RuleStatus struct {
	Rule  Rule      `json:"rule"`
	State RuleState `json:"state"`
	// FastValue/SlowValue are the measured values over each window;
	// FastBurn/SlowBurn the corresponding burn rates (>1 violates).
	FastValue *float64 `json:"fast_value,omitempty"`
	SlowValue *float64 `json:"slow_value,omitempty"`
	FastBurn  *float64 `json:"fast_burn,omitempty"`
	SlowBurn  *float64 `json:"slow_burn,omitempty"`
	// Firings counts healthy->firing transitions over the monitor's life.
	Firings int `json:"firings"`
	// Since is when the rule entered its current state; LastFired /
	// LastResolved bracket the most recent incident.
	Since        time.Time  `json:"since"`
	LastFired    *time.Time `json:"last_fired,omitempty"`
	LastResolved *time.Time `json:"last_resolved,omitempty"`
	LastEval     time.Time  `json:"last_eval"`
	Evaluations  uint64     `json:"evaluations"`
}

// ruleInstance is a rule plus its evaluation state machine.
type ruleInstance struct {
	rule Rule

	state        RuleState
	since        time.Time
	violatingFor time.Time // when both windows started violating (zero if not)
	healthyFor   time.Time // when both windows went healthy while firing
	firings      int
	lastFired    *time.Time
	lastResolved *time.Time
	lastEval     time.Time
	evals        uint64

	fastValue, slowValue *float64
	fastBurn, slowBurn   *float64
}

// windowEval is one window's measurement against the objective.
type windowEval struct {
	value     float64
	ok        bool
	burn      float64
	violating bool
}

// evalWindow measures the rule over one window ending at now.
func evalWindow(st *Store, r Rule, now time.Time, window time.Duration) windowEval {
	sel := Selector{Name: r.Metric, Labels: r.Labels}
	var v float64
	var ok bool
	switch r.Kind {
	case KindQuantile:
		v, ok = st.HistogramQuantile(sel, r.Quantile, now, window)
	case KindGauge:
		reduce := "max"
		if r.Below {
			reduce = "min"
		}
		v, ok = st.WorstValue(sel, now, window, reduce)
	case KindRate:
		v, ok = st.CounterRate(sel, now, window)
	}
	if !ok {
		return windowEval{}
	}
	var burn float64
	if r.Below {
		// Availability-style: burn grows as the value sinks under the
		// objective. A measured zero (a dead shard's up gauge) burns at a
		// clamped ceiling rather than +Inf.
		if v <= 0 {
			burn = maxBurn
		} else {
			burn = r.Objective / v
		}
	} else {
		burn = v / r.Objective
	}
	if burn > maxBurn {
		burn = maxBurn
	}
	return windowEval{value: v, ok: true, burn: burn, violating: burn > 1}
}

// maxBurn caps reported burn rates so they stay JSON-encodable and readable.
const maxBurn = 1000

// eval advances the rule's state machine with fresh window measurements.
// It returns true when the rule transitioned into firing (the flight
// recorder's trigger).
func (ri *ruleInstance) eval(st *Store, now time.Time) bool {
	r := ri.rule
	fast := evalWindow(st, r, now, time.Duration(r.FastWindowSeconds*float64(time.Second)))
	slow := evalWindow(st, r, now, time.Duration(r.SlowWindowSeconds*float64(time.Second)))

	ri.lastEval = now
	ri.evals++
	ri.fastValue, ri.fastBurn = optFloat(fast)
	ri.slowValue, ri.slowBurn = optFloat(slow)

	bothViolating := fast.ok && slow.ok && fast.violating && slow.violating
	bothHealthy := (!fast.ok || !fast.violating) && (!slow.ok || !slow.violating)

	if bothViolating {
		if ri.violatingFor.IsZero() {
			ri.violatingFor = now
		}
	} else {
		ri.violatingFor = time.Time{}
	}

	fired := false
	switch ri.state {
	case StateHealthy, StateResolved:
		if fast.ok && fast.violating {
			ri.transition(StatePending, now)
		}
		if bothViolating && now.Sub(ri.violatingFor).Seconds() >= r.ForSeconds {
			ri.fire(now)
			fired = true
		}
	case StatePending:
		if bothViolating && now.Sub(ri.violatingFor).Seconds() >= r.ForSeconds {
			ri.fire(now)
			fired = true
		} else if bothHealthy {
			ri.transition(StateHealthy, now)
		}
	case StateFiring:
		if bothHealthy {
			if ri.healthyFor.IsZero() {
				ri.healthyFor = now
			}
			if now.Sub(ri.healthyFor).Seconds() >= r.ResolveAfterSeconds {
				t := now
				ri.lastResolved = &t
				ri.transition(StateResolved, now)
				ri.healthyFor = time.Time{}
			}
		} else {
			ri.healthyFor = time.Time{}
		}
	}
	return fired
}

func (ri *ruleInstance) fire(now time.Time) {
	ri.firings++
	t := now
	ri.lastFired = &t
	ri.transition(StateFiring, now)
	ri.healthyFor = time.Time{}
}

func (ri *ruleInstance) transition(s RuleState, now time.Time) {
	if ri.state != s {
		ri.state = s
		ri.since = now
	}
}

func optFloat(w windowEval) (value, burn *float64) {
	if !w.ok {
		return nil, nil
	}
	v, b := w.value, w.burn
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return nil, nil
	}
	return &v, &b
}

// status snapshots the instance for /v1/slo and bundles.
func (ri *ruleInstance) status() RuleStatus {
	return RuleStatus{
		Rule:         ri.rule,
		State:        ri.state,
		FastValue:    ri.fastValue,
		SlowValue:    ri.slowValue,
		FastBurn:     ri.fastBurn,
		SlowBurn:     ri.slowBurn,
		Firings:      ri.firings,
		Since:        ri.since,
		LastFired:    ri.lastFired,
		LastResolved: ri.lastResolved,
		LastEval:     ri.lastEval,
		Evaluations:  ri.evals,
	}
}

// DefaultRules is the cluster's stock SLO set, with windows scaled from the
// scrape interval: the fast window holds 5 scrapes, the slow window 15, and
// resolution needs 10 clean scrapes. The thresholds match the in-process
// cluster's healthy envelope with comfortable headroom — see EXPERIMENTS.md
// for the calibration runs.
func DefaultRules(interval time.Duration) []Rule {
	fast := (5 * interval).Seconds()
	slow := (15 * interval).Seconds()
	resolve := (10 * interval).Seconds()
	return []Rule{
		{
			Name: "admit-p99", Metric: "coflowgate_admit_seconds",
			Kind: KindQuantile, Quantile: 0.99, Objective: 0.25,
			FastWindowSeconds: fast, SlowWindowSeconds: slow, ResolveAfterSeconds: resolve,
		},
		{
			Name: "tick-p99", Metric: "coflowd_tick_duration_seconds",
			Kind: KindQuantile, Quantile: 0.99, Objective: 0.1,
			FastWindowSeconds: fast, SlowWindowSeconds: slow, ResolveAfterSeconds: resolve,
		},
		{
			Name: "shard-down", Metric: "coflowgate_backend_up",
			Kind: KindGauge, Objective: 1, Below: true,
			FastWindowSeconds: fast, SlowWindowSeconds: slow, ResolveAfterSeconds: resolve,
		},
		{
			Name: "scrape-failure", Metric: "up",
			Kind: KindGauge, Objective: 1, Below: true,
			FastWindowSeconds: fast, SlowWindowSeconds: slow, ResolveAfterSeconds: resolve,
		},
		// Hot-path pipeline rules over the stage-latency instrumentation.
		// fsync-p99 watches only the group-commit stage of the admit
		// pipeline: the superset label match on {stage=...} slices one child
		// out of the coflowd_admit_stage_seconds family.
		{
			Name: "fsync-p99", Metric: "coflowd_admit_stage_seconds",
			Labels: map[string]string{"stage": "group-commit"},
			Kind:   KindQuantile, Quantile: 0.99, Objective: 0.5,
			FastWindowSeconds: fast, SlowWindowSeconds: slow, ResolveAfterSeconds: resolve,
		},
		// The imbalance ratio (max/mean busy worker time) is bounded above by
		// the number of busy partition classes, so an objective of 4 cannot
		// fire on clusters of four or fewer pods — it only ever names real
		// skew on wider fabrics.
		{
			Name: "partition-imbalance", Metric: "coflowd_partition_imbalance_ratio",
			Kind: KindGauge, Objective: 4,
			FastWindowSeconds: fast, SlowWindowSeconds: slow, ResolveAfterSeconds: resolve,
		},
		{
			Name: "gc-pause-p99", Metric: "go_gc_pause_seconds",
			Kind: KindQuantile, Quantile: 0.99, Objective: 0.05,
			FastWindowSeconds: fast, SlowWindowSeconds: slow, ResolveAfterSeconds: resolve,
		},
	}
}
