package monitor

import "net/http"

// handleDashboard serves the single-page cluster health view: rule states
// with burn rates, the target roster, and the bundle index, refreshed by
// polling /v1/slo and /v1/targets. It is deliberately a single inline page —
// no assets, no build step — so `coflowmon` alone is a complete monitoring
// stack for a local cluster.
func (m *Monitor) handleDashboard(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	_, _ = w.Write([]byte(dashboardHTML))
}

const dashboardHTML = `<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>coflowmon</title>
<style>
  body { font-family: ui-monospace, Menlo, Consolas, monospace; margin: 2rem; background: #0b0e14; color: #d6d6d6; }
  h1 { font-size: 1.2rem; } h2 { font-size: 1rem; margin-top: 1.5rem; }
  table { border-collapse: collapse; width: 100%; }
  th, td { text-align: left; padding: 0.3rem 0.8rem; border-bottom: 1px solid #22262e; font-size: 0.85rem; }
  th { color: #8a919e; font-weight: normal; }
  .state { padding: 0.1rem 0.5rem; border-radius: 3px; font-size: 0.8rem; }
  .healthy, .resolved { background: #1b3a25; color: #6fd388; }
  .pending { background: #3a331b; color: #d3c06f; }
  .firing { background: #3a1b1b; color: #d36f6f; }
  .dead { color: #d36f6f; } .muted { color: #8a919e; }
  #err { color: #d36f6f; }
</style>
</head>
<body>
<h1>coflowmon <span id="err" class="muted"></span></h1>
<h2>SLO rules</h2>
<table id="rules"><thead><tr>
  <th>rule</th><th>metric</th><th>state</th><th>fast</th><th>slow</th>
  <th>fast burn</th><th>slow burn</th><th>firings</th><th>since</th>
</tr></thead><tbody></tbody></table>
<h2>Admit pipeline <span id="imbalance" class="muted"></span></h2>
<table id="stages"><thead><tr>
  <th>stage</th><th>p50</th><th>p99</th>
</tr></thead><tbody></tbody></table>
<h2>Targets</h2>
<table id="targets"><thead><tr>
  <th>instance</th><th>url</th><th>up</th><th>samples</th><th>scrape</th><th>error</th>
</tr></thead><tbody></tbody></table>
<h2>Bundles</h2>
<table id="bundles"><thead><tr>
  <th>rule</th><th>path</th><th>captured</th><th>bytes</th>
</tr></thead><tbody></tbody></table>
<script>
const fmt = v => v == null ? "—" : (Math.abs(v) >= 100 ? v.toFixed(0) : v.toPrecision(3));
const cell = t => { const td = document.createElement("td"); td.append(t); return td; };
function fill(id, rows) {
  const tb = document.querySelector("#" + id + " tbody");
  tb.replaceChildren(...rows.map(cols => {
    const tr = document.createElement("tr");
    tr.append(...cols);
    return tr;
  }));
}
function stateCell(s) {
  const span = document.createElement("span");
  span.className = "state " + s; span.textContent = s;
  return cell(span);
}
async function refresh() {
  try {
    const [slo, tgt, stg] = await Promise.all([
      fetch("v1/slo").then(r => r.json()),
      fetch("v1/targets").then(r => r.json()),
      fetch("v1/stages").then(r => r.json()),
    ]);
    fill("rules", slo.rules.map(r => [
      cell(r.rule.name), cell(r.rule.metric), stateCell(r.state),
      cell(fmt(r.fast_value)), cell(fmt(r.slow_value)),
      cell(fmt(r.fast_burn)), cell(fmt(r.slow_burn)),
      cell(String(r.firings)), cell(new Date(r.since).toLocaleTimeString()),
    ]));
    fill("targets", tgt.targets.map(t => {
      const up = cell(t.healthy ? "up" : "down");
      if (!t.healthy) up.className = "dead";
      return [cell(t.name), cell(t.url), up, cell(String(t.samples)),
              cell((t.duration_seconds * 1000).toFixed(1) + "ms"),
              cell(t.last_error || "")];
    }));
    const ms = v => (v * 1000).toFixed(3) + "ms";
    const order = ["coalesce-wait", "batch-assembly", "engine-admit", "wal-append", "group-commit"];
    const stageRows = Object.entries(stg.admit_stages || {})
      .sort((a, b) => order.indexOf(a[0]) - order.indexOf(b[0]))
      .map(([name, q]) => [cell(name), cell(ms(q.p50)), cell(ms(q.p99))]);
    Object.entries(stg.partition_realloc || {})
      .sort((a, b) => Number(a[0]) - Number(b[0]))
      .forEach(([part, q]) => stageRows.push(
        [cell("partition " + part + " realloc"), cell(ms(q.p50)), cell(ms(q.p99))]));
    fill("stages", stageRows);
    document.getElementById("imbalance").textContent =
      stg.partition_imbalance != null ? " — imbalance " + fmt(stg.partition_imbalance) : "";
    fill("bundles", (slo.bundles || []).map(b => [
      cell(b.rule), cell(b.path),
      cell(new Date(b.captured_at).toLocaleTimeString()),
      cell(String(b.size_bytes)),
    ]));
    document.getElementById("err").textContent = "";
  } catch (e) {
    document.getElementById("err").textContent = " — " + e;
  }
}
refresh();
setInterval(refresh, 2000);
</script>
</body>
</html>
`
