package baselines

import (
	"math/rand"
	"testing"

	"coflowsched/internal/coflow"
	"coflowsched/internal/graph"
	"coflowsched/internal/workload"
)

// randomInstance builds a modest random workload on a small fat-tree.
func randomInstance(t *testing.T, seed int64) *coflow.Instance {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	inst, err := workload.Generate(graph.FatTree(4, 1), workload.Config{
		NumCoflows: 4, Width: 6, MeanSize: 3, MeanRelease: 1, MeanWeight: 1,
	}, rng)
	if err != nil {
		t.Fatalf("workload: %v", err)
	}
	return inst
}

// allSchedulers enumerates every baseline for table-driven tests.
func allSchedulers() []interface {
	Name() string
	Schedule(*coflow.Instance, *rand.Rand) (*coflow.CircuitSchedule, error)
} {
	return []interface {
		Name() string
		Schedule(*coflow.Instance, *rand.Rand) (*coflow.CircuitSchedule, error)
	}{
		Baseline{}, ScheduleOnly{}, RouteOnly{}, SEBF{}, FairSharing{},
	}
}

func TestAllBaselinesProduceFeasibleSchedules(t *testing.T) {
	inst := randomInstance(t, 1)
	for _, s := range allSchedulers() {
		t.Run(s.Name(), func(t *testing.T) {
			rng := rand.New(rand.NewSource(2))
			cs, err := s.Schedule(inst, rng)
			if err != nil {
				t.Fatalf("Schedule: %v", err)
			}
			if err := cs.Validate(inst); err != nil {
				t.Fatalf("schedule infeasible: %v", err)
			}
			if cs.Objective(inst) <= 0 {
				t.Errorf("objective = %v, want > 0", cs.Objective(inst))
			}
		})
	}
}

func TestBaselinesWorkWithPreassignedPaths(t *testing.T) {
	inst := randomInstance(t, 3)
	if err := inst.AssignShortestPaths(); err != nil {
		t.Fatal(err)
	}
	for _, s := range allSchedulers() {
		rng := rand.New(rand.NewSource(4))
		cs, err := s.Schedule(inst, rng)
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		if err := cs.Validate(inst); err != nil {
			t.Fatalf("%s: infeasible: %v", s.Name(), err)
		}
		// With pre-assigned paths, schedulers must honor them.
		for _, ref := range inst.FlowRefs() {
			want := inst.Flow(ref).Path
			got := cs.Get(ref).Path
			if len(want) != len(got) {
				t.Fatalf("%s: flow %s path changed despite being pre-assigned", s.Name(), ref)
			}
		}
	}
}

func TestScheduleOnlyOrdersBySize(t *testing.T) {
	// One shared unit link, sizes 5 and 1: Schedule-only must finish the
	// small flow first (completion 1) and the big one at 6.
	g := graph.Line(2, 1)
	h := g.Hosts()
	inst := &coflow.Instance{
		Network: g,
		Coflows: []coflow.Coflow{
			{Name: "big", Weight: 1, Flows: []coflow.Flow{{Source: h[0], Dest: h[1], Size: 5}}},
			{Name: "small", Weight: 1, Flows: []coflow.Flow{{Source: h[0], Dest: h[1], Size: 1}}},
		},
	}
	rng := rand.New(rand.NewSource(1))
	cs, err := ScheduleOnly{}.Schedule(inst, rng)
	if err != nil {
		t.Fatal(err)
	}
	small := cs.Get(coflow.FlowRef{Coflow: 1, Index: 0}).CompletionTime()
	big := cs.Get(coflow.FlowRef{Coflow: 0, Index: 0}).CompletionTime()
	if !(small < big) || small > 1.01 {
		t.Errorf("schedule-only: small at %v, big at %v; want small first", small, big)
	}
}

func TestSEBFPrefersSmallCoflows(t *testing.T) {
	// Coflow "small" has tiny total load; SEBF should complete it before the
	// heavyweight coflow sharing the same bottleneck link.
	g := graph.Line(2, 1)
	h := g.Hosts()
	inst := &coflow.Instance{
		Network: g,
		Coflows: []coflow.Coflow{
			{Name: "heavy", Weight: 1, Flows: []coflow.Flow{
				{Source: h[0], Dest: h[1], Size: 4},
				{Source: h[0], Dest: h[1], Size: 4},
			}},
			{Name: "small", Weight: 1, Flows: []coflow.Flow{{Source: h[0], Dest: h[1], Size: 1}}},
		},
	}
	rng := rand.New(rand.NewSource(1))
	cs, err := SEBF{}.Schedule(inst, rng)
	if err != nil {
		t.Fatal(err)
	}
	smallDone := cs.Get(coflow.FlowRef{Coflow: 1, Index: 0}).CompletionTime()
	if smallDone > 1.01 {
		t.Errorf("SEBF should run the small coflow first; it finished at %v", smallDone)
	}
}

func TestRouteOnlySpreadsLoad(t *testing.T) {
	// Many equal flows between the same cross-pod host pair on a fat-tree:
	// load-balanced routing should use more than one distinct core path,
	// while each single path stays feasible.
	g := graph.FatTree(4, 1)
	hosts := g.Hosts()
	inst := &coflow.Instance{Network: g}
	for i := 0; i < 4; i++ {
		inst.Coflows = append(inst.Coflows, coflow.Coflow{
			Name:   "c",
			Weight: 1,
			Flows:  []coflow.Flow{{Source: hosts[0], Dest: hosts[len(hosts)-1], Size: 2}},
		})
	}
	rng := rand.New(rand.NewSource(1))
	cs, err := RouteOnly{}.Schedule(inst, rng)
	if err != nil {
		t.Fatal(err)
	}
	if err := cs.Validate(inst); err != nil {
		t.Fatal(err)
	}
	distinct := map[string]bool{}
	for _, ref := range inst.FlowRefs() {
		key := ""
		for _, e := range cs.Get(ref).Path {
			key += string(rune(e)) + ","
		}
		distinct[key] = true
	}
	if len(distinct) < 2 {
		t.Errorf("route-only used %d distinct paths, want >= 2", len(distinct))
	}
}

func TestBaselineDeterministicGivenSeed(t *testing.T) {
	inst := randomInstance(t, 5)
	run := func(seed int64) float64 {
		rng := rand.New(rand.NewSource(seed))
		cs, err := Baseline{}.Schedule(inst, rng)
		if err != nil {
			t.Fatal(err)
		}
		return cs.Objective(inst)
	}
	if run(7) != run(7) {
		t.Errorf("same seed should give the same objective")
	}
}

func TestNames(t *testing.T) {
	want := map[string]bool{
		"Baseline": true, "Schedule-only": true, "Route-only": true, "SEBF": true, "Fair-sharing": true,
	}
	for _, s := range allSchedulers() {
		if !want[s.Name()] {
			t.Errorf("unexpected scheduler name %q", s.Name())
		}
	}
}
