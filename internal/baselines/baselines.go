// Package baselines implements the competing heuristics the paper evaluates
// against in §4.3, plus one extension:
//
//   - Baseline: flows are routed and ordered randomly.
//   - ScheduleOnly: flows are routed randomly; ordering is by minimum
//     completion time (flow size divided by the bandwidth of its path).
//   - RouteOnly: flows are routed for load balance and edge utilization;
//     ordering is arbitrary (instance order).
//   - SEBF: an extension baseline in the spirit of Varys' Smallest Effective
//     Bottleneck First, ordering coflows by their bottleneck completion time.
//
// Every heuristic picks a path and a priority order per flow and hands both
// to the flow-level simulator (internal/sim), exactly as in the paper's
// experimental methodology.
package baselines

import (
	"fmt"
	"math/rand"
	"sort"

	"coflowsched/internal/coflow"
	"coflowsched/internal/graph"
	"coflowsched/internal/sim"
)

// candidatePaths is the number of shortest paths considered per flow when
// choosing a route.
const candidatePaths = 4

// Baseline routes and orders flows uniformly at random.
type Baseline struct{}

// Name implements the scheduler naming convention used by the experiment
// harness.
func (Baseline) Name() string { return "Baseline" }

// Schedule picks a random candidate path and a random order for every flow
// and simulates the result.
func (Baseline) Schedule(inst *coflow.Instance, rng *rand.Rand) (*coflow.CircuitSchedule, error) {
	paths, err := randomRoutes(inst, rng)
	if err != nil {
		return nil, err
	}
	order := inst.FlowRefs()
	rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
	return sim.Run(inst, sim.Config{Paths: paths, Order: order, Policy: sim.Priority})
}

// ScheduleOnly routes randomly but orders flows by their minimum completion
// time (size over path bottleneck bandwidth), shortest first.
type ScheduleOnly struct{}

// Name identifies the heuristic.
func (ScheduleOnly) Name() string { return "Schedule-only" }

// Schedule implements the heuristic.
func (ScheduleOnly) Schedule(inst *coflow.Instance, rng *rand.Rand) (*coflow.CircuitSchedule, error) {
	paths, err := randomRoutes(inst, rng)
	if err != nil {
		return nil, err
	}
	order := inst.FlowRefs()
	mct := make(map[coflow.FlowRef]float64, len(order))
	for _, ref := range order {
		f := inst.Flow(ref)
		bw := paths[ref].MinCapacity(inst.Network)
		if bw <= 0 {
			bw = 1
		}
		mct[ref] = f.Size / bw
	}
	sort.SliceStable(order, func(i, j int) bool { return mct[order[i]] < mct[order[j]] })
	return sim.Run(inst, sim.Config{Paths: paths, Order: order, Policy: sim.Priority})
}

// RouteOnly routes flows to balance load across links (greedy minimum
// marginal congestion over a candidate path set) but keeps an arbitrary
// (instance) order.
type RouteOnly struct{}

// Name identifies the heuristic.
func (RouteOnly) Name() string { return "Route-only" }

// Schedule implements the heuristic.
func (RouteOnly) Schedule(inst *coflow.Instance, rng *rand.Rand) (*coflow.CircuitSchedule, error) {
	paths, err := loadBalancedRoutes(inst)
	if err != nil {
		return nil, err
	}
	order := inst.FlowRefs()
	return sim.Run(inst, sim.Config{Paths: paths, Order: order, Policy: sim.Priority})
}

// SEBF orders coflows by smallest effective bottleneck (the load each coflow
// places on its most congested link, divided by coflow weight) and routes
// flows for load balance. It is not part of the paper's comparison but is a
// natural Varys-style reference point for general topologies.
type SEBF struct{}

// Name identifies the heuristic.
func (SEBF) Name() string { return "SEBF" }

// Schedule implements the heuristic.
func (SEBF) Schedule(inst *coflow.Instance, rng *rand.Rand) (*coflow.CircuitSchedule, error) {
	paths, err := loadBalancedRoutes(inst)
	if err != nil {
		return nil, err
	}
	// Effective bottleneck per coflow: load it places on its busiest edge.
	gamma := make([]float64, len(inst.Coflows))
	for i, cf := range inst.Coflows {
		loads := make([]graph.PathLoad, len(cf.Flows))
		for j := range cf.Flows {
			loads[j] = graph.PathLoad{Path: paths[coflow.FlowRef{Coflow: i, Index: j}], Volume: cf.Flows[j].Size}
		}
		gamma[i] = inst.Network.BottleneckTime(loads)
		if cf.Weight > 0 {
			gamma[i] /= cf.Weight
		}
	}
	coflowOrder := make([]int, len(inst.Coflows))
	for i := range coflowOrder {
		coflowOrder[i] = i
	}
	sort.SliceStable(coflowOrder, func(a, b int) bool { return gamma[coflowOrder[a]] < gamma[coflowOrder[b]] })
	var order []coflow.FlowRef
	for _, ci := range coflowOrder {
		for j := range inst.Coflows[ci].Flows {
			order = append(order, coflow.FlowRef{Coflow: ci, Index: j})
		}
	}
	return sim.Run(inst, sim.Config{Paths: paths, Order: order, Policy: sim.Priority})
}

// FairSharing gives every flow its max-min fair share with shortest-path
// routing; it reproduces the "everything shares fairly" strawman of the
// paper's Figure 1 (s1) and serves as an additional reference point.
type FairSharing struct{}

// Name identifies the heuristic.
func (FairSharing) Name() string { return "Fair-sharing" }

// Schedule implements the heuristic.
func (FairSharing) Schedule(inst *coflow.Instance, rng *rand.Rand) (*coflow.CircuitSchedule, error) {
	paths := make(map[coflow.FlowRef]graph.Path)
	for _, ref := range inst.FlowRefs() {
		f := inst.Flow(ref)
		p := f.Path
		if p == nil {
			p = inst.Network.ShortestPath(f.Source, f.Dest)
		}
		if p == nil {
			return nil, fmt.Errorf("baselines: no path for flow %s", ref)
		}
		paths[ref] = p
	}
	return sim.Run(inst, sim.Config{Paths: paths, Policy: sim.FairShare})
}

// randomRoutes picks, for every flow, one of its shortest candidate paths
// uniformly at random (or the flow's pre-assigned path when present —
// "routing" is then a no-op, matching the paths-given problem variant).
func randomRoutes(inst *coflow.Instance, rng *rand.Rand) (map[coflow.FlowRef]graph.Path, error) {
	paths := make(map[coflow.FlowRef]graph.Path)
	for _, ref := range inst.FlowRefs() {
		f := inst.Flow(ref)
		if f.Path != nil {
			paths[ref] = f.Path
			continue
		}
		cands := inst.Network.KShortestPaths(f.Source, f.Dest, candidatePaths)
		if len(cands) == 0 {
			return nil, fmt.Errorf("baselines: no path from %d to %d", f.Source, f.Dest)
		}
		paths[ref] = cands[rng.Intn(len(cands))]
	}
	return paths, nil
}

// loadBalancedRoutes assigns each flow the candidate path that minimizes the
// resulting maximum edge load (size-weighted), processing flows in
// decreasing-size order as is usual for greedy load balancing.
func loadBalancedRoutes(inst *coflow.Instance) (map[coflow.FlowRef]graph.Path, error) {
	refs := inst.FlowRefs()
	sort.SliceStable(refs, func(i, j int) bool {
		return inst.Flow(refs[i]).Size > inst.Flow(refs[j]).Size
	})
	load := make([]float64, inst.Network.NumEdges())
	paths := make(map[coflow.FlowRef]graph.Path)
	for _, ref := range refs {
		f := inst.Flow(ref)
		var cands []graph.Path
		if f.Path != nil {
			cands = []graph.Path{f.Path}
		} else {
			cands = inst.Network.KShortestPaths(f.Source, f.Dest, candidatePaths)
		}
		if len(cands) == 0 {
			return nil, fmt.Errorf("baselines: no path from %d to %d", f.Source, f.Dest)
		}
		bestIdx := 0
		bestMax, bestSum := -1.0, 0.0
		for i, p := range cands {
			maxLoad, sumLoad := 0.0, 0.0
			for _, e := range p {
				l := (load[e] + f.Size) / inst.Network.Capacity(e)
				sumLoad += l
				if l > maxLoad {
					maxLoad = l
				}
			}
			// Minimize the bottleneck utilization; break ties by total load so
			// equal-cost multipaths spread out instead of piling onto the
			// first candidate.
			if bestMax < 0 || maxLoad < bestMax-1e-12 ||
				(maxLoad < bestMax+1e-12 && sumLoad < bestSum-1e-12) {
				bestMax, bestSum = maxLoad, sumLoad
				bestIdx = i
			}
		}
		chosen := cands[bestIdx]
		for _, e := range chosen {
			load[e] += f.Size
		}
		paths[ref] = chosen
	}
	return paths, nil
}
