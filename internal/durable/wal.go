// Package durable is the persistence layer under coflowd and coflowgate: a
// length-prefixed, CRC-checksummed write-ahead log with group-commit fsync
// batching and segment rotation, periodic snapshots written through a
// pluggable BlobStore, and a replay scanner that distinguishes a torn final
// record (the tolerated artifact of a crash mid-write) from mid-log
// corruption (fail loudly, never mis-replay).
//
// Frame format, little-endian:
//
//	uint32 payload length | uint32 CRC-32C (Castagnoli) of payload | payload
//
// The payload is one JSON-encoded Record carrying a sequence number; sequence
// numbers are contiguous across the whole log. Segment files are named
// wal-<first seq>.seg and rotate at SegmentBytes; snapshots record the last
// sequence they cover, and TruncateBefore deletes whole segments the newest
// snapshot has superseded.
//
// Durability contract: Append buffers the frame in memory (it reaches the OS
// page cache, in one batched write, at the next commit/rotation/close);
// Commit(seq) blocks until everything through seq is fsynced. Concurrent committers share
// one fsync (group commit) — that batching is what keeps the admit path's p99
// within budget with durability on. A failed fsync is sticky and fails every
// later Append/Commit: a log that cannot persist must fail loudly, not
// acknowledge writes it may be losing.
package durable

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// ErrCorrupt reports a WAL that cannot be trusted: a CRC mismatch, an invalid
// record, a sequence discontinuity, or a tear anywhere but the final record
// of the final segment. Recovery must stop — replaying past corruption would
// silently rebuild the wrong state.
var ErrCorrupt = errors.New("durable: corrupt wal")

// errLogClosed fails operations on a closed (or abandoned) log.
var errLogClosed = errors.New("durable: log closed")

const (
	// frameHeader is the fixed per-record framing overhead.
	frameHeader = 8
	// MaxRecordBytes bounds a single record payload. Larger than any
	// legitimate record (admission bodies are capped well below this), small
	// enough that a corrupted length field cannot drive a giant allocation.
	MaxRecordBytes = 16 << 20
	// DefaultSegmentBytes is the rotation threshold.
	DefaultSegmentBytes = 8 << 20

	segPrefix = "wal-"
	segSuffix = ".seg"
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Options tunes a Log.
type Options struct {
	// SegmentBytes rotates to a new segment file once the current one reaches
	// this size (default DefaultSegmentBytes).
	SegmentBytes int64
}

func (o Options) withDefaults() Options {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = DefaultSegmentBytes
	}
	return o
}

// segment is one on-disk log file: records [start, next segment's start).
type segment struct {
	start uint64
	path  string
}

func segmentPath(dir string, start uint64) string {
	return filepath.Join(dir, fmt.Sprintf("%s%016d%s", segPrefix, start, segSuffix))
}

// listSegments returns the directory's segments sorted by starting sequence.
func listSegments(dir string) ([]segment, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var segs []segment
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasPrefix(name, segPrefix) || !strings.HasSuffix(name, segSuffix) {
			continue
		}
		numPart := strings.TrimSuffix(strings.TrimPrefix(name, segPrefix), segSuffix)
		start, err := strconv.ParseUint(numPart, 10, 64)
		if err != nil || start == 0 {
			return nil, fmt.Errorf("%w: segment file %q has an unparseable sequence", ErrCorrupt, name)
		}
		segs = append(segs, segment{start: start, path: filepath.Join(dir, name)})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].start < segs[j].start })
	for i := 1; i < len(segs); i++ {
		if segs[i].start == segs[i-1].start {
			return nil, fmt.Errorf("%w: duplicate segment start %d", ErrCorrupt, segs[i].start)
		}
	}
	return segs, nil
}

// AppendFrame encodes one payload as a frame onto buf and returns the
// extended slice. Exported for tests and corpus generation.
func AppendFrame(buf, payload []byte) []byte {
	var hdr [frameHeader]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, crcTable))
	buf = append(buf, hdr[:]...)
	return append(buf, payload...)
}

// DecodeSegment scans one segment's bytes and returns the valid record
// prefix, the byte offset where scanning stopped, and an error when the
// remainder is not a simple torn tail.
//
// Classification — the invariant FuzzWALDecode pins:
//   - clean end (off == len(data)): every byte decoded.
//   - torn tail (err == nil, off < len(data)): the remaining bytes are too
//     short to hold the frame the length header claims — the artifact of a
//     crash mid-write. Tolerated only in the final segment.
//   - corrupt (err wraps ErrCorrupt): oversized length, CRC mismatch, JSON
//     that does not decode, a structurally invalid record, or a sequence that
//     is not the predecessor's +1. Never tolerated.
//
// firstSeq > 0 additionally pins the first record's sequence (segment files
// name the sequence they must start at).
func DecodeSegment(data []byte, firstSeq uint64) ([]*Record, int, error) {
	var recs []*Record
	off := 0
	expect := firstSeq
	for {
		if len(data)-off < frameHeader {
			if off == len(data) {
				return recs, off, nil // clean end
			}
			return recs, off, nil // torn header
		}
		length := binary.LittleEndian.Uint32(data[off : off+4])
		if length == 0 || length > MaxRecordBytes {
			return recs, off, fmt.Errorf("%w: frame at offset %d claims %d payload bytes", ErrCorrupt, off, length)
		}
		if len(data)-off-frameHeader < int(length) {
			return recs, off, nil // torn payload
		}
		payload := data[off+frameHeader : off+frameHeader+int(length)]
		wantCRC := binary.LittleEndian.Uint32(data[off+4 : off+8])
		if crc32.Checksum(payload, crcTable) != wantCRC {
			return recs, off, fmt.Errorf("%w: CRC mismatch at offset %d", ErrCorrupt, off)
		}
		rec := new(Record)
		dec := json.NewDecoder(bytes.NewReader(payload))
		dec.DisallowUnknownFields()
		if err := dec.Decode(rec); err != nil {
			return recs, off, fmt.Errorf("%w: undecodable record at offset %d: %v", ErrCorrupt, off, err)
		}
		if err := rec.validate(); err != nil {
			return recs, off, fmt.Errorf("%w: %v", ErrCorrupt, err)
		}
		if expect != 0 && rec.Seq != expect {
			return recs, off, fmt.Errorf("%w: record at offset %d has seq %d, want %d", ErrCorrupt, off, rec.Seq, expect)
		}
		expect = rec.Seq + 1
		recs = append(recs, rec)
		off += frameHeader + int(length)
	}
}

// Replay streams every record with sequence >= from to fn, in order. A torn
// final record in the final segment is tolerated (the scan stops there);
// anything else inconsistent returns ErrCorrupt. It returns the last sequence
// delivered (0 if none). The log must not be open for appending concurrently.
func Replay(dir string, from uint64, fn func(*Record) error) (uint64, error) {
	segs, err := listSegments(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return 0, nil
		}
		return 0, err
	}
	if len(segs) > 0 && from > 0 && segs[0].start > from {
		return 0, fmt.Errorf("%w: records %d..%d are missing (first segment starts at %d)",
			ErrCorrupt, from, segs[0].start-1, segs[0].start)
	}
	var last uint64
	for i, seg := range segs {
		if i > 0 && seg.start != last+1 && last != 0 {
			return last, fmt.Errorf("%w: segment %s starts at %d, want %d", ErrCorrupt, filepath.Base(seg.path), seg.start, last+1)
		}
		// A whole segment below the floor can be skipped without reading —
		// its record range is [seg.start, next.start).
		if i+1 < len(segs) && segs[i+1].start <= from {
			last = segs[i+1].start - 1
			continue
		}
		data, err := os.ReadFile(seg.path)
		if err != nil {
			return last, err
		}
		recs, off, derr := DecodeSegment(data, seg.start)
		if derr != nil {
			return last, fmt.Errorf("replaying %s: %w", filepath.Base(seg.path), derr)
		}
		if off < len(data) && i != len(segs)-1 {
			return last, fmt.Errorf("%w: torn record inside non-final segment %s", ErrCorrupt, filepath.Base(seg.path))
		}
		for _, rec := range recs {
			last = rec.Seq
			if rec.Seq < from {
				continue
			}
			if err := fn(rec); err != nil {
				return last, err
			}
		}
		if len(recs) == 0 && i != len(segs)-1 {
			return last, fmt.Errorf("%w: empty non-final segment %s", ErrCorrupt, filepath.Base(seg.path))
		}
	}
	return last, nil
}

// Log is an append-only write-ahead log over one directory.
type Log struct {
	dir  string
	opts Options

	mu   sync.Mutex
	cond *sync.Cond // broadcast when synced/syncErr/closed change

	segs    []segment
	f       *os.File
	size    int64  // bytes in the current segment, buffered writes included
	nextSeq uint64 // sequence the next Append assigns

	// buf holds frames appended since the last flush. Append only encodes
	// into this buffer; flushLocked writes it to the segment in ONE syscall,
	// at every point durability or visibility is promised (commit, rotation,
	// close, abandon). Under a group-committed burst of N admissions this
	// turns N write syscalls into one, and the fsync that follows covers the
	// whole buffer.
	buf []byte

	appended uint64 // highest sequence written to the page cache
	synced   uint64 // highest sequence known durable
	syncing  bool   // one group-commit fsync in flight
	syncErr  error  // sticky fatal
	closed   bool

	syncs   uint64 // fsync calls issued (observability)
	appends uint64 // records appended this process
}

// Open opens (or creates) the log in dir, repairing a torn final record by
// truncating it away. Mid-log corruption returns ErrCorrupt — the caller must
// not serve from a log it cannot trust.
func Open(dir string, opts Options) (*Log, error) {
	opts = opts.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	segs, err := listSegments(dir)
	if err != nil {
		return nil, err
	}
	l := &Log{dir: dir, opts: opts, segs: segs}
	l.cond = sync.NewCond(&l.mu)

	if len(segs) == 0 {
		// Fresh log: first record is sequence 1 (0 means "no records", the
		// natural floor for Replay and snapshot bookkeeping).
		return l, l.startSegment(1)
	}
	// Validate every segment and find the tail. Only the final segment may
	// end torn; repair it by truncating at the last valid frame boundary.
	last := segs[0].start - 1
	for i, seg := range segs {
		if seg.start != last+1 {
			return nil, fmt.Errorf("%w: segment %s starts at %d, want %d", ErrCorrupt, filepath.Base(seg.path), seg.start, last+1)
		}
		data, err := os.ReadFile(seg.path)
		if err != nil {
			return nil, err
		}
		recs, off, derr := DecodeSegment(data, seg.start)
		final := i == len(segs)-1
		if derr != nil {
			return nil, fmt.Errorf("opening %s: %w", filepath.Base(seg.path), derr)
		}
		if off < len(data) {
			if !final {
				return nil, fmt.Errorf("%w: torn record inside non-final segment %s", ErrCorrupt, filepath.Base(seg.path))
			}
			if err := os.Truncate(seg.path, int64(off)); err != nil {
				return nil, fmt.Errorf("repairing torn tail of %s: %w", filepath.Base(seg.path), err)
			}
		}
		if len(recs) > 0 {
			last = recs[len(recs)-1].Seq
		} else if !final {
			return nil, fmt.Errorf("%w: empty non-final segment %s", ErrCorrupt, filepath.Base(seg.path))
		}
		if final {
			f, err := os.OpenFile(seg.path, os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				return nil, err
			}
			l.f = f
			l.size = int64(off)
		}
	}
	l.nextSeq = last + 1
	l.appended = last
	l.synced = last // everything on disk at open time is as durable as it gets
	return l, nil
}

// startSegment creates and switches to a fresh segment starting at seq.
// Caller holds mu (or is the constructor).
func (l *Log) startSegment(seq uint64) error {
	path := segmentPath(l.dir, seq)
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return err
	}
	// The directory entry must be durable too: fsyncing record data into a
	// file whose name a power loss can erase durably persists nothing.
	if err := syncDir(l.dir); err != nil {
		f.Close()
		return err
	}
	// Best-effort extent reservation (keeping the logical size, so recovery
	// never scans preallocated zeros): with extents already on disk, the
	// per-commit fdatasync stops paying block-allocation metadata journaling.
	preallocate(f, l.opts.SegmentBytes)
	l.segs = append(l.segs, segment{start: seq, path: path})
	l.f = f
	l.size = 0
	l.nextSeq = seq
	return nil
}

// syncDir fsyncs a directory so entries for files created, renamed or removed
// in it survive a power loss, not just the file contents.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// Append assigns rec the next sequence number and writes its frame into the
// page cache, rotating segments as needed. It does NOT wait for durability —
// pair with Commit(seq) where the caller acknowledges anything.
func (l *Log) Append(rec *Record) (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, errLogClosed
	}
	if l.syncErr != nil {
		return 0, l.syncErr
	}
	rec.Seq = l.nextSeq
	if err := rec.validate(); err != nil {
		return 0, err
	}
	payload, err := json.Marshal(rec)
	if err != nil {
		return 0, err
	}
	if len(payload) > MaxRecordBytes {
		return 0, fmt.Errorf("durable: record of %d bytes exceeds the %d-byte cap", len(payload), MaxRecordBytes)
	}
	frameLen := int64(frameHeader + len(payload))
	if l.size > 0 && l.size+frameLen > l.opts.SegmentBytes {
		if err := l.rotateLocked(); err != nil {
			return 0, err
		}
	}
	// Encode into the write buffer only: the bytes reach the file in one
	// batched write at the next flush point (commit, rotation, close).
	l.buf = AppendFrame(l.buf, payload)
	l.size += frameLen
	l.appended = rec.Seq
	l.appends++
	l.nextSeq++
	return rec.Seq, nil
}

// flushLocked writes every buffered frame to the current segment in one
// syscall. A write failure is sticky, exactly like an append failure was when
// appends wrote through directly. Caller holds mu.
func (l *Log) flushLocked() error {
	if len(l.buf) == 0 {
		return nil
	}
	if _, err := l.f.Write(l.buf); err != nil {
		l.syncErr = fmt.Errorf("durable: append failed: %w", err)
		l.cond.Broadcast()
		return l.syncErr
	}
	l.buf = l.buf[:0]
	return nil
}

// rotateLocked fsyncs and closes the current segment and opens the next one.
// Everything in the closed segment is durable afterwards.
func (l *Log) rotateLocked() error {
	if err := l.flushLocked(); err != nil {
		return err
	}
	if err := l.f.Sync(); err != nil {
		l.syncErr = fmt.Errorf("durable: rotating fsync failed: %w", err)
		l.cond.Broadcast()
		return l.syncErr
	}
	l.syncs++
	if err := l.f.Close(); err != nil {
		return err
	}
	if l.appended > l.synced {
		l.synced = l.appended
		l.cond.Broadcast()
	}
	return l.startSegment(l.nextSeq)
}

// testCommitSyncDelay, when non-nil, runs between Commit releasing the lock
// and issuing its fsync. Tests use it to force the otherwise nanosecond-wide
// interleaving where a rotation closes the file under an in-flight Commit.
var testCommitSyncDelay func()

// Commit blocks until every record through seq is durable, sharing in-flight
// fsyncs with concurrent committers: whichever caller finds no fsync running
// issues one covering everything appended so far, and every waiter whose
// sequence that run covers returns without a syscall of its own.
func (l *Log) Commit(seq uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if seq > l.appended {
		return fmt.Errorf("durable: commit of unappended sequence %d (appended through %d)", seq, l.appended)
	}
	for l.synced < seq {
		if l.syncErr != nil {
			return l.syncErr
		}
		if l.closed {
			return errLogClosed
		}
		if l.syncing {
			l.cond.Wait()
			continue
		}
		// Everything buffered reaches the file before the fsync target is
		// captured, so the sync below covers every append made so far —
		// including records buffered while the previous fsync was in flight.
		if err := l.flushLocked(); err != nil {
			return err
		}
		l.syncing = true
		f, target := l.f, l.appended
		l.mu.Unlock()
		if testCommitSyncDelay != nil {
			testCommitSyncDelay()
		}
		err := fdatasync(f)
		l.mu.Lock()
		l.syncing = false
		l.syncs++
		if err != nil && target <= l.synced {
			// While our fsync was in flight a rotation (or Close) fsynced and
			// closed f underneath us, making everything through target durable
			// before our Sync returned — typically as os.ErrClosed. Not a
			// durability failure, so it must not fail-stop the log.
			err = nil
		}
		if err != nil {
			if l.syncErr == nil {
				l.syncErr = fmt.Errorf("durable: fsync failed: %w", err)
			}
		} else if target > l.synced {
			l.synced = target
		}
		l.cond.Broadcast()
	}
	return nil
}

// Sync makes everything appended so far durable.
func (l *Log) Sync() error {
	l.mu.Lock()
	target := l.appended
	l.mu.Unlock()
	return l.Commit(target)
}

// LastSeq returns the highest sequence appended (durable or not); 0 on an
// empty log.
func (l *Log) LastSeq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.appended
}

// Stats reports append/fsync counters for observability.
func (l *Log) Stats() (appends, syncs uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.appends, l.syncs
}

// SegmentCount returns the number of live segment files.
func (l *Log) SegmentCount() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.segs)
}

// TruncateBefore deletes whole segments every one of whose records has
// sequence < keep — called after a snapshot covering sequences < keep is
// durable. The active segment is never deleted.
func (l *Log) TruncateBefore(keep uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return errLogClosed
	}
	cut := 0
	for cut+1 < len(l.segs) && l.segs[cut+1].start <= keep {
		cut++
	}
	for _, seg := range l.segs[:cut] {
		if err := os.Remove(seg.path); err != nil && !os.IsNotExist(err) {
			return err
		}
	}
	if cut > 0 {
		// Make the removals durable: a crash must not resurrect segments the
		// snapshot bookkeeping considers gone.
		if err := syncDir(l.dir); err != nil {
			return err
		}
	}
	l.segs = append([]segment(nil), l.segs[cut:]...)
	return nil
}

// Err returns the sticky fatal error (nil while the log is healthy). Callers
// gate state changes on it so a fail-stopped log rejects work before any
// in-memory mutation, not after.
func (l *Log) Err() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.syncErr
}

// Close fsyncs and closes the log. Later operations fail. Idempotent.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	var err error
	if l.syncErr == nil {
		if err = l.flushLocked(); err == nil {
			if err = l.f.Sync(); err == nil {
				l.syncs++
				l.synced = l.appended
			}
		}
	}
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	l.cond.Broadcast()
	return err
}

// Abandon closes the log WITHOUT the final fsync — the crash-shaped shutdown
// the recovery harness uses. Unsynced appends survive only as far as the OS
// page cache did.
func (l *Log) Abandon() {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return
	}
	l.closed = true
	// Flush (no fsync): abandoned appends keep today's page-cache fate —
	// they survive a process crash, not a power loss.
	_ = l.flushLocked()
	_ = l.f.Close()
	l.cond.Broadcast()
}
