package durable

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// snapshotPrefix namespaces snapshot objects inside a BlobStore.
const snapshotPrefix = "snap-"

// snapshotEnvelope wraps a snapshot body with the WAL position it covers:
// replay resumes at Seq+1.
type snapshotEnvelope struct {
	Version int             `json:"version"`
	Seq     uint64          `json:"seq"`
	State   json.RawMessage `json:"state"`
}

// snapshotKey names the object for a snapshot covering sequences <= seq. The
// zero-padded decimal keeps List's lexicographic order equal to seq order.
func snapshotKey(seq uint64) string {
	return fmt.Sprintf("%s%016d.json", snapshotPrefix, seq)
}

// snapshotSeq parses a snapshot key back to its sequence (ok=false for
// foreign objects).
func snapshotSeq(key string) (uint64, bool) {
	if !strings.HasPrefix(key, snapshotPrefix) || !strings.HasSuffix(key, ".json") {
		return 0, false
	}
	seq, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(key, snapshotPrefix), ".json"), 10, 64)
	if err != nil {
		return 0, false
	}
	return seq, true
}

// WriteSnapshot persists state as the snapshot covering WAL sequences <= seq
// and returns its key. After it succeeds the caller may TruncateBefore(seq+1).
func WriteSnapshot(ctx context.Context, store BlobStore, seq uint64, state any) (string, error) {
	raw, err := json.Marshal(state)
	if err != nil {
		return "", err
	}
	body, err := json.Marshal(snapshotEnvelope{Version: 1, Seq: seq, State: raw})
	if err != nil {
		return "", err
	}
	key := snapshotKey(seq)
	if err := store.Put(ctx, key, bytes.NewReader(body)); err != nil {
		return "", err
	}
	return key, nil
}

// LatestSnapshot finds the newest snapshot that decodes cleanly, unmarshals
// its state into `into`, and returns the WAL sequence it covers. ok=false
// means no usable snapshot exists (recovery starts from an empty engine and
// the full log). A newest snapshot that is corrupt is skipped in favor of the
// next older one — a half-damaged store degrades to more replay, not to a
// refusal to start; damage is reported through the returned skipped count so
// the caller can log it.
func LatestSnapshot(ctx context.Context, store BlobStore, into any) (seq uint64, ok bool, skipped int, err error) {
	keys, err := store.List(ctx, snapshotPrefix)
	if err != nil {
		return 0, false, 0, err
	}
	for i := len(keys) - 1; i >= 0; i-- {
		sseq, isSnap := snapshotSeq(keys[i])
		if !isSnap {
			continue
		}
		env, derr := readSnapshot(ctx, store, keys[i])
		if derr == nil && env.Seq == sseq {
			if uerr := json.Unmarshal(env.State, into); uerr == nil {
				return env.Seq, true, skipped, nil
			}
		}
		skipped++
	}
	return 0, false, skipped, nil
}

func readSnapshot(ctx context.Context, store BlobStore, key string) (*snapshotEnvelope, error) {
	rc, err := store.Get(ctx, key)
	if err != nil {
		return nil, err
	}
	defer rc.Close()
	body, err := io.ReadAll(io.LimitReader(rc, 1<<30))
	if err != nil {
		return nil, err
	}
	env := new(snapshotEnvelope)
	if err := json.Unmarshal(body, env); err != nil {
		return nil, err
	}
	if env.Version != 1 {
		return nil, fmt.Errorf("durable: unknown snapshot version %d", env.Version)
	}
	return env, nil
}

// PruneSnapshots deletes all but the newest keep snapshots.
func PruneSnapshots(ctx context.Context, store BlobStore, keep int) error {
	if keep < 1 {
		keep = 1
	}
	keys, err := store.List(ctx, snapshotPrefix)
	if err != nil {
		return err
	}
	var snaps []string
	for _, k := range keys {
		if _, isSnap := snapshotSeq(k); isSnap {
			snaps = append(snaps, k)
		}
	}
	if len(snaps) <= keep {
		return nil
	}
	for _, k := range snaps[:len(snaps)-keep] {
		if err := store.Delete(ctx, k); err != nil {
			return err
		}
	}
	return nil
}
