package durable

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

// advanceRec builds a minimal valid record (seq is assigned by Append).
func advanceRec(now float64) *Record {
	return &Record{Type: RecAdvance, Advance: &AdvanceRecord{Now: now}}
}

// collectReplay replays dir from `from` and returns the records seen.
func collectReplay(t *testing.T, dir string, from uint64) []*Record {
	t.Helper()
	var recs []*Record
	last, err := Replay(dir, from, func(r *Record) error {
		recs = append(recs, r)
		return nil
	})
	if err != nil {
		t.Fatalf("replay from %d: %v", from, err)
	}
	if len(recs) > 0 && recs[len(recs)-1].Seq != last {
		t.Fatalf("replay reported last seq %d, delivered through %d", last, recs[len(recs)-1].Seq)
	}
	return recs
}

func TestLogAppendCommitReplay(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	const n = 25
	for i := 0; i < n; i++ {
		seq, err := l.Append(advanceRec(float64(i)))
		if err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
		if seq != uint64(i+1) {
			t.Fatalf("append %d assigned seq %d, want %d", i, seq, i+1)
		}
	}
	if err := l.Commit(n); err != nil {
		t.Fatalf("commit: %v", err)
	}
	if got := l.LastSeq(); got != n {
		t.Fatalf("last seq %d, want %d", got, n)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	recs := collectReplay(t, dir, 1)
	if len(recs) != n {
		t.Fatalf("replayed %d records, want %d", len(recs), n)
	}
	for i, r := range recs {
		if r.Seq != uint64(i+1) || r.Type != RecAdvance || r.Advance == nil {
			t.Fatalf("record %d malformed: %+v", i, r)
		}
		if r.Advance.Now != float64(i) {
			t.Fatalf("record %d carries now %v, want %d", i, r.Advance.Now, i)
		}
	}

	// Replay honors the floor: from seq 10 the first delivered record is 10.
	tail := collectReplay(t, dir, 10)
	if len(tail) != n-9 || tail[0].Seq != 10 {
		t.Fatalf("replay from 10 delivered %d records starting at %d", len(tail), tail[0].Seq)
	}
}

func TestLogGroupCommitConcurrent(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer l.Close()

	const writers, perWriter = 8, 20
	var wg sync.WaitGroup
	errs := make(chan error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				seq, err := l.Append(advanceRec(1))
				if err == nil {
					err = l.Commit(seq)
				}
				if err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("concurrent append/commit: %v", err)
	}
	if got := l.LastSeq(); got != writers*perWriter {
		t.Fatalf("last seq %d, want %d", got, writers*perWriter)
	}
	appends, syncs := l.Stats()
	if appends != writers*perWriter {
		t.Fatalf("append counter %d, want %d", appends, writers*perWriter)
	}
	// Group commit: the whole point is fewer fsyncs than commits. With 8
	// concurrent committers at least some must share a sync; equality would
	// mean batching never happened.
	if syncs >= appends {
		t.Fatalf("%d fsyncs for %d appends: group commit is not batching", syncs, appends)
	}
}

// TestLogCommitDuringRotation forces the interleaving where a Commit's fsync
// is in flight when a concurrent Append rotates (fsyncs + closes) the same
// file. The doomed Sync on the closed file must not become the sticky
// failure: the rotation's own fsync already made the Commit's target durable,
// so a healthy log must keep accepting work.
func TestLogCommitDuringRotation(t *testing.T) {
	dir := t.TempDir()
	// SegmentBytes 1 makes every append after a segment's first rotate.
	l, err := Open(dir, Options{SegmentBytes: 1})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer l.Close()

	seq1, err := l.Append(advanceRec(1))
	if err != nil {
		t.Fatalf("append: %v", err)
	}

	// Hold the committer between releasing the lock and issuing its fsync
	// while an Append rotates the segment out from under it.
	entered := make(chan struct{})
	release := make(chan struct{})
	testCommitSyncDelay = func() {
		close(entered)
		<-release
	}
	defer func() { testCommitSyncDelay = nil }()

	commitErr := make(chan error, 1)
	go func() { commitErr <- l.Commit(seq1) }()
	<-entered
	testCommitSyncDelay = nil // only the in-flight Commit should stall
	if _, err := l.Append(advanceRec(2)); err != nil {
		t.Fatalf("rotating append: %v", err)
	}
	close(release)

	if err := <-commitErr; err != nil {
		t.Fatalf("commit racing rotation: %v", err)
	}
	// The log must still be healthy: the rotation made seq1 durable, so the
	// closed-file Sync was not a durability failure.
	if err := l.Err(); err != nil {
		t.Fatalf("sticky error after benign rotation race: %v", err)
	}
	if _, err := l.Append(advanceRec(3)); err != nil {
		t.Fatalf("append after rotation race: %v", err)
	}
	if err := l.Sync(); err != nil {
		t.Fatalf("sync after rotation race: %v", err)
	}
}

func TestLogRotationAndTruncate(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SegmentBytes: 256})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	const n = 40
	for i := 0; i < n; i++ {
		if _, err := l.Append(advanceRec(float64(i))); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	if err := l.Sync(); err != nil {
		t.Fatalf("sync: %v", err)
	}
	if l.SegmentCount() < 3 {
		t.Fatalf("%d segments after %d appends at 256-byte rotation, want several", l.SegmentCount(), n)
	}

	// Replay across segment boundaries sees every record exactly once.
	if recs := collectReplay(t, dir, 1); len(recs) != n {
		t.Fatalf("replayed %d records across segments, want %d", len(recs), n)
	}

	// A snapshot covering sequences <= 20 lets the prefix go.
	before := l.SegmentCount()
	if err := l.TruncateBefore(21); err != nil {
		t.Fatalf("truncate: %v", err)
	}
	if l.SegmentCount() >= before {
		t.Fatalf("truncate kept all %d segments", l.SegmentCount())
	}
	recs := collectReplay(t, dir, 21)
	if len(recs) == 0 || recs[0].Seq > 21 || recs[len(recs)-1].Seq != n {
		t.Fatalf("replay after truncation delivered %d records", len(recs))
	}
	if err := l.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	// But replaying from before the truncation point must fail loudly: those
	// records are gone, not silently absent.
	if _, err := Replay(dir, 1, func(*Record) error { return nil }); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("replay across truncated prefix: %v, want ErrCorrupt", err)
	}
}

func TestLogReopenContinuesSequence(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	for i := 0; i < 5; i++ {
		if _, err := l.Append(advanceRec(float64(i))); err != nil {
			t.Fatalf("append: %v", err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	seq, err := l2.Append(advanceRec(99))
	if err != nil {
		t.Fatalf("append after reopen: %v", err)
	}
	if seq != 6 {
		t.Fatalf("append after reopen assigned seq %d, want 6", seq)
	}
	if err := l2.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if recs := collectReplay(t, dir, 1); len(recs) != 6 {
		t.Fatalf("replayed %d records after reopen, want 6", len(recs))
	}
}

func TestLogRepairsTornTail(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	for i := 0; i < 3; i++ {
		if _, err := l.Append(advanceRec(float64(i))); err != nil {
			t.Fatalf("append: %v", err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	// Simulate a crash mid-write: a frame header claiming more payload than
	// follows.
	seg := segmentPath(dir, 1)
	f, err := os.OpenFile(seg, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatalf("open segment: %v", err)
	}
	var hdr [frameHeader]byte
	binary.LittleEndian.PutUint32(hdr[0:4], 500)
	if _, err := f.Write(hdr[:]); err != nil {
		t.Fatalf("write torn frame: %v", err)
	}
	f.Close()

	// Replay tolerates the tear (final segment) and still sees the prefix.
	if recs := collectReplay(t, dir, 1); len(recs) != 3 {
		t.Fatalf("replayed %d records over torn tail, want 3", len(recs))
	}

	// Reopen repairs by truncation; the next append lands on seq 4 and the
	// log is clean again.
	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("reopen over torn tail: %v", err)
	}
	seq, err := l2.Append(advanceRec(3))
	if err != nil {
		t.Fatalf("append after repair: %v", err)
	}
	if seq != 4 {
		t.Fatalf("append after repair assigned seq %d, want 4", seq)
	}
	if err := l2.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if recs := collectReplay(t, dir, 1); len(recs) != 4 {
		t.Fatalf("replayed %d records after repair, want 4", len(recs))
	}
}

func TestLogDetectsBitFlip(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	for i := 0; i < 3; i++ {
		if _, err := l.Append(advanceRec(float64(i))); err != nil {
			t.Fatalf("append: %v", err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	seg := segmentPath(dir, 1)
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatalf("read segment: %v", err)
	}
	data[len(data)/2] ^= 0x40
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatalf("write flipped segment: %v", err)
	}

	if _, err := Replay(dir, 1, func(*Record) error { return nil }); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("replay of bit-flipped log: %v, want ErrCorrupt", err)
	}
	if _, err := Open(dir, Options{}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("open of bit-flipped log: %v, want ErrCorrupt", err)
	}
}

func TestLogRejectsTornMiddleSegment(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SegmentBytes: 256})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	for i := 0; i < 40; i++ {
		if _, err := l.Append(advanceRec(float64(i))); err != nil {
			t.Fatalf("append: %v", err)
		}
	}
	if l.SegmentCount() < 2 {
		t.Fatalf("need at least 2 segments, have %d", l.SegmentCount())
	}
	if err := l.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	// Chop bytes off a NON-final segment: that is corruption, not a tear.
	first := segmentPath(dir, 1)
	data, err := os.ReadFile(first)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if err := os.WriteFile(first, data[:len(data)-3], 0o644); err != nil {
		t.Fatalf("write: %v", err)
	}

	if _, err := Replay(dir, 1, func(*Record) error { return nil }); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("replay with torn middle segment: %v, want ErrCorrupt", err)
	}
	if _, err := Open(dir, Options{}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("open with torn middle segment: %v, want ErrCorrupt", err)
	}
}

func TestLogCommitOfUnappendedSequence(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer l.Close()
	if _, err := l.Append(advanceRec(0)); err != nil {
		t.Fatalf("append: %v", err)
	}
	if err := l.Commit(2); err == nil {
		t.Fatal("commit of unappended sequence succeeded")
	}
}

func TestLogClosedAndAbandon(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	seq, err := l.Append(advanceRec(0))
	if err != nil {
		t.Fatalf("append: %v", err)
	}
	if err := l.Commit(seq); err != nil {
		t.Fatalf("commit: %v", err)
	}
	unsynced, err := l.Append(advanceRec(1))
	if err != nil {
		t.Fatalf("append: %v", err)
	}
	l.Abandon()
	if _, err := l.Append(advanceRec(2)); !errors.Is(err, errLogClosed) {
		t.Fatalf("append after abandon: %v, want errLogClosed", err)
	}
	// A sequence that was already durable commits fine even after abandon;
	// one that never reached disk reports the closed log.
	if err := l.Commit(seq); err != nil {
		t.Fatalf("commit of durable seq after abandon: %v", err)
	}
	if err := l.Commit(unsynced); !errors.Is(err, errLogClosed) {
		t.Fatalf("commit of unsynced seq after abandon: %v, want errLogClosed", err)
	}
	// Both records are readable after an abandon: the unsynced one made it to
	// the page cache, which survives a process crash (only a machine crash
	// loses it — that is exactly the at-most-the-tail loss the torn-tail
	// repair covers).
	if recs := collectReplay(t, dir, 1); len(recs) != 2 {
		t.Fatalf("replayed %d records after abandon, want 2", len(recs))
	}
}

func TestLogRecordValidation(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer l.Close()
	// Mistyped: type says admit, payload is advance.
	if _, err := l.Append(&Record{Type: RecAdmit, Advance: &AdvanceRecord{}}); err == nil {
		t.Fatal("append of mistyped record succeeded")
	}
	// Two payloads.
	if _, err := l.Append(&Record{Type: RecAdvance, Advance: &AdvanceRecord{}, Complete: &CompleteRecord{}}); err == nil {
		t.Fatal("append of double-payload record succeeded")
	}
	// A rejected append must not consume a sequence number.
	seq, err := l.Append(advanceRec(0))
	if err != nil {
		t.Fatalf("append: %v", err)
	}
	if seq != 1 {
		t.Fatalf("first valid append got seq %d, want 1", seq)
	}
}

func TestSnapshotRoundTripAndPrune(t *testing.T) {
	ctx := context.Background()
	store, err := NewDirStore(t.TempDir())
	if err != nil {
		t.Fatalf("store: %v", err)
	}
	type state struct {
		N int `json:"n"`
	}
	for i := 1; i <= 5; i++ {
		if _, err := WriteSnapshot(ctx, store, uint64(i*10), state{N: i}); err != nil {
			t.Fatalf("write snapshot %d: %v", i, err)
		}
	}
	var got state
	seq, ok, skipped, err := LatestSnapshot(ctx, store, &got)
	if err != nil || !ok || skipped != 0 {
		t.Fatalf("latest: seq=%d ok=%v skipped=%d err=%v", seq, ok, skipped, err)
	}
	if seq != 50 || got.N != 5 {
		t.Fatalf("latest snapshot seq=%d state=%+v, want 50/{5}", seq, got)
	}

	// Corrupt the newest: recovery degrades to the next older one.
	keys, err := store.List(ctx, "snap-")
	if err != nil {
		t.Fatalf("list: %v", err)
	}
	if err := store.Put(ctx, keys[len(keys)-1], &corruptReader{}); err != nil {
		t.Fatalf("corrupt put: %v", err)
	}
	seq, ok, skipped, err = LatestSnapshot(ctx, store, &got)
	if err != nil || !ok {
		t.Fatalf("latest after corruption: ok=%v err=%v", ok, err)
	}
	if seq != 40 || got.N != 4 || skipped != 1 {
		t.Fatalf("latest after corruption seq=%d state=%+v skipped=%d, want 40/{4}/1", seq, got, skipped)
	}

	if err := PruneSnapshots(ctx, store, 2); err != nil {
		t.Fatalf("prune: %v", err)
	}
	keys, err = store.List(ctx, "snap-")
	if err != nil {
		t.Fatalf("list after prune: %v", err)
	}
	if len(keys) != 2 {
		t.Fatalf("%d snapshots after prune, want 2", len(keys))
	}
}

// corruptReader yields a body that is not a snapshot envelope.
type corruptReader struct{ done bool }

func (c *corruptReader) Read(p []byte) (int, error) {
	if c.done {
		return 0, io.EOF
	}
	c.done = true
	return copy(p, []byte("{not json")), nil
}

func TestDirStoreKeyValidation(t *testing.T) {
	ctx := context.Background()
	root := t.TempDir()
	store, err := NewDirStore(filepath.Join(root, "blobs"))
	if err != nil {
		t.Fatalf("store: %v", err)
	}
	for _, key := range []string{"", "/abs", "../escape", "a/../../b", `win\sep`} {
		if err := store.Put(ctx, key, &corruptReader{}); err == nil {
			t.Errorf("Put accepted invalid key %q", key)
		}
	}
	if err := store.Delete(ctx, "never-existed"); err != nil {
		t.Fatalf("delete of missing key: %v", err)
	}
}

func TestReplayEmptyAndMissingDir(t *testing.T) {
	// A directory that never existed replays as empty, not as an error: a
	// daemon's first boot has no log yet.
	last, err := Replay(filepath.Join(t.TempDir(), "nope"), 1, func(*Record) error {
		return fmt.Errorf("unexpected record")
	})
	if err != nil || last != 0 {
		t.Fatalf("replay of missing dir: last=%d err=%v", last, err)
	}
}
