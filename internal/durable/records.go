package durable

import (
	"encoding/json"
	"fmt"

	"coflowsched/internal/coflow"
)

// RecordType discriminates WAL records. coflowd writes the engine-side types
// (admit / order / advance / complete); coflowgate writes the gw-* types. Both
// daemons share one frame format and one replay scanner, so the fuzz target
// and the corruption rules cover every record the system persists.
type RecordType string

const (
	// RecAdmit logs one coflow admission: the spec exactly as it arrived on
	// the wire (flow releases still offsets) plus the engine clock it was
	// admitted at. Replaying admissions in sequence reproduces the engine's
	// causal routing exactly, because route selection depends only on the
	// monotonically accumulated admitted load.
	RecAdmit RecordType = "admit"
	// RecOrder logs one applied priority decision at the engine clock Now;
	// replay advances to Now and re-applies the refs.
	RecOrder RecordType = "order"
	// RecAdvance logs one clock advance. Decide=true means a synchronous
	// decide ran immediately before the advance (the deterministic-harness
	// op); Decide=false is a plain server tick.
	RecAdvance RecordType = "advance"
	// RecComplete logs a coflow completion. Informational: replay derives
	// completions from re-simulation, but the record makes the log greppable
	// and gives recovery a cross-check.
	RecComplete RecordType = "complete"
	// RecGatewayMeta identifies a gateway WAL: the instance nonce that scopes
	// idempotency keys. Written once, first record of a fresh log.
	RecGatewayMeta RecordType = "gw-meta"
	// RecGatewayAdmit logs a gateway id assignment (id-translation table).
	RecGatewayAdmit RecordType = "gw-admit"
	// RecGatewayPlace logs a placement: gateway id -> backend + local id
	// (placement table). Re-placements append a new record; last one wins.
	RecGatewayPlace RecordType = "gw-place"
	// RecGatewayDone logs an observed completion with the final status body.
	RecGatewayDone RecordType = "gw-done"
)

// Record is the WAL envelope: a sequence number, a type tag, and exactly one
// populated payload field matching the type.
type Record struct {
	Seq  uint64     `json:"seq"`
	Type RecordType `json:"type"`

	Admit    *AdmitRecord    `json:"admit,omitempty"`
	Order    *OrderRecord    `json:"order,omitempty"`
	Advance  *AdvanceRecord  `json:"advance,omitempty"`
	Complete *CompleteRecord `json:"complete,omitempty"`

	GatewayMeta  *GatewayMetaRecord  `json:"gw_meta,omitempty"`
	GatewayAdmit *GatewayAdmitRecord `json:"gw_admit,omitempty"`
	GatewayPlace *GatewayPlaceRecord `json:"gw_place,omitempty"`
	GatewayDone  *GatewayDoneRecord  `json:"gw_done,omitempty"`
}

// AdmitRecord is one engine admission.
type AdmitRecord struct {
	// ID is the engine-assigned coflow id; replay asserts the re-admission
	// lands on the same id (a mismatch means the log is not a prefix of the
	// engine's history).
	ID int `json:"id"`
	// Now is the engine clock at admission.
	Now float64 `json:"now"`
	// Key is the idempotency key (X-Coflow-Id), empty if none was sent.
	Key string `json:"key,omitempty"`
	// Trace is the lifecycle trace id.
	Trace string `json:"trace,omitempty"`
	// Spec is the wire-form coflow (flow releases are offsets from Now).
	Spec coflow.Coflow `json:"spec"`
}

// OrderRecord is one applied priority order.
type OrderRecord struct {
	// Now is the engine clock the order was applied at.
	Now float64 `json:"now"`
	// LatencySecs is the decide wall latency, preserved so replay reproduces
	// the solve-latency reservoir.
	LatencySecs float64 `json:"latency_secs"`
	// Refs is the order exactly as handed to ApplyOrder (pre-filtering);
	// replay re-filters against the rebuilt simulator state identically.
	Refs []coflow.FlowRef `json:"refs"`
}

// AdvanceRecord is one clock advance.
type AdvanceRecord struct {
	Now    float64 `json:"now"`
	Decide bool    `json:"decide,omitempty"`
}

// CompleteRecord is one coflow completion.
type CompleteRecord struct {
	ID   int     `json:"id"`
	Time float64 `json:"time"`
}

// GatewayMetaRecord identifies a gateway log.
type GatewayMetaRecord struct {
	// Instance is a random nonce minted when the log is created; it prefixes
	// idempotency keys so a gateway restarted against a fresh state dir never
	// collides with keys an earlier incarnation already used on the shards.
	Instance string `json:"instance"`
}

// GatewayAdmitRecord is one gateway id assignment.
type GatewayAdmitRecord struct {
	GID   int           `json:"gid"`
	Trace string        `json:"trace,omitempty"`
	Spec  coflow.Coflow `json:"spec"`
}

// GatewayPlaceRecord is one placement (or re-placement) of a gateway coflow.
type GatewayPlaceRecord struct {
	GID     int     `json:"gid"`
	Backend string  `json:"backend"`
	LocalID int     `json:"local_id"`
	Arrival float64 `json:"arrival"`
}

// GatewayDoneRecord is one observed completion. Final carries the cached
// server.CoflowResponse as raw JSON (durable cannot import server).
type GatewayDoneRecord struct {
	GID   int             `json:"gid"`
	Final json.RawMessage `json:"final,omitempty"`
}

// payloadCount returns how many payload fields are populated.
func (r *Record) payloadCount() int {
	n := 0
	for _, set := range []bool{
		r.Admit != nil, r.Order != nil, r.Advance != nil, r.Complete != nil,
		r.GatewayMeta != nil, r.GatewayAdmit != nil, r.GatewayPlace != nil, r.GatewayDone != nil,
	} {
		if set {
			n++
		}
	}
	return n
}

// validate rejects structurally broken records: an envelope must carry exactly
// the payload its type names. Replay treats a violation as corruption — a
// CRC-valid frame holding a half-written or mistyped record must never be
// applied.
func (r *Record) validate() error {
	if r.payloadCount() != 1 {
		return fmt.Errorf("record %d: %d payloads populated, want exactly 1", r.Seq, r.payloadCount())
	}
	ok := false
	switch r.Type {
	case RecAdmit:
		ok = r.Admit != nil
	case RecOrder:
		ok = r.Order != nil
	case RecAdvance:
		ok = r.Advance != nil
	case RecComplete:
		ok = r.Complete != nil
	case RecGatewayMeta:
		ok = r.GatewayMeta != nil
	case RecGatewayAdmit:
		ok = r.GatewayAdmit != nil
	case RecGatewayPlace:
		ok = r.GatewayPlace != nil
	case RecGatewayDone:
		ok = r.GatewayDone != nil
	default:
		return fmt.Errorf("record %d: unknown type %q", r.Seq, r.Type)
	}
	if !ok {
		return fmt.Errorf("record %d: type %q does not match populated payload", r.Seq, r.Type)
	}
	return nil
}
