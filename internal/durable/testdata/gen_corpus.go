//go:build ignore

// gen_corpus regenerates the committed seed corpus for FuzzWALDecode:
//
//	go run internal/durable/testdata/gen_corpus.go
//
// Each seed is a segment image exercising one classification branch of
// DecodeSegment — a valid frame of every record type, torn tails of both
// kinds, a bit flip, a bad length, a sequence gap, and CRC-valid frames whose
// payload is not a valid record. Keeping them committed means CI's short fuzz
// run covers every branch deterministically before the mutator contributes.
package main

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"coflowsched/internal/coflow"
	"coflowsched/internal/durable"
	"coflowsched/internal/graph"
)

func frame(seq uint64, rec *durable.Record) []byte {
	rec.Seq = seq
	payload, err := json.Marshal(rec)
	if err != nil {
		log.Fatal(err)
	}
	return durable.AppendFrame(nil, payload)
}

func main() {
	spec := coflow.Coflow{
		Name:   "seed",
		Weight: 2,
		Flows: []coflow.Flow{
			{Source: 0, Dest: 3, Size: 4, Release: 0.5, Path: graph.Path{0, 7}},
			{Source: 1, Dest: 2, Size: 1},
		},
	}
	var allTypes []byte
	recs := []*durable.Record{
		{Type: durable.RecAdmit, Admit: &durable.AdmitRecord{ID: 0, Now: 1.5, Key: "k-1", Trace: "t-1", Spec: spec}},
		{Type: durable.RecOrder, Order: &durable.OrderRecord{Now: 2, LatencySecs: 0.001, Refs: []coflow.FlowRef{{Coflow: 0, Index: 1}, {Coflow: 0, Index: 0}}}},
		{Type: durable.RecAdvance, Advance: &durable.AdvanceRecord{Now: 3, Decide: true}},
		{Type: durable.RecComplete, Complete: &durable.CompleteRecord{ID: 0, Time: 3.25}},
		{Type: durable.RecGatewayMeta, GatewayMeta: &durable.GatewayMetaRecord{Instance: "inst-1"}},
		{Type: durable.RecGatewayAdmit, GatewayAdmit: &durable.GatewayAdmitRecord{GID: 4, Trace: "t-2", Spec: spec}},
		{Type: durable.RecGatewayPlace, GatewayPlace: &durable.GatewayPlaceRecord{GID: 4, Backend: "shard1", LocalID: 2, Arrival: 5.5}},
		{Type: durable.RecGatewayDone, GatewayDone: &durable.GatewayDoneRecord{GID: 4, Final: json.RawMessage(`{"id":2,"done":true}`)}},
	}
	for i, rec := range recs {
		allTypes = append(allTypes, frame(uint64(i+1), rec)...)
	}

	tornHeader := append(append([]byte(nil), allTypes...), 0xAA, 0xBB, 0xCC)

	tornPayload := append([]byte(nil), allTypes...)
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:4], 4096)
	tornPayload = append(tornPayload, hdr[:]...)
	tornPayload = append(tornPayload, []byte("only a few bytes")...)

	flipped := append([]byte(nil), allTypes...)
	flipped[len(flipped)/3] ^= 0x10

	zeroLen := append([]byte(nil), frame(1, &durable.Record{Type: durable.RecAdvance, Advance: &durable.AdvanceRecord{Now: 1}})...)
	zeroLen = append(zeroLen, make([]byte, 8)...)

	hugeLen := make([]byte, 8)
	binary.LittleEndian.PutUint32(hugeLen[0:4], durable.MaxRecordBytes+1)

	seqGap := frame(1, &durable.Record{Type: durable.RecAdvance, Advance: &durable.AdvanceRecord{Now: 1}})
	seqGap = append(seqGap, frame(5, &durable.Record{Type: durable.RecAdvance, Advance: &durable.AdvanceRecord{Now: 2}})...)

	// CRC-valid frames whose payloads are not valid records: the decoder must
	// treat these as corruption, never as data.
	mistyped, err := json.Marshal(&durable.Record{Seq: 1, Type: durable.RecAdmit, Advance: &durable.AdvanceRecord{Now: 1}})
	if err != nil {
		log.Fatal(err)
	}
	notJSON := durable.AppendFrame(nil, []byte("definitely not json"))
	unknownField := durable.AppendFrame(nil, []byte(`{"seq":1,"type":"advance","advance":{"now":1},"extra":7}`))

	seeds := map[string][]byte{
		"seed-all-record-types": allTypes,
		"seed-torn-header":      tornHeader,
		"seed-torn-payload":     tornPayload,
		"seed-bit-flip":         flipped,
		"seed-zero-length":      zeroLen,
		"seed-huge-length":      hugeLen,
		"seed-seq-gap":          seqGap,
		"seed-mistyped-record":  durable.AppendFrame(nil, mistyped),
		"seed-not-json":         notJSON,
		"seed-unknown-field":    unknownField,
	}

	dir := filepath.Join("internal", "durable", "testdata", "fuzz", "FuzzWALDecode")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		log.Fatal(err)
	}
	for name, data := range seeds {
		body := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", data)
		if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("wrote %d seeds to %s\n", len(seeds), dir)
}
