package durable

import (
	"context"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// BlobStore is where snapshots live. The signature is S3-shaped — keyed
// objects, streamed bodies, prefix listing, context plumbed through — so a
// deployment can ship snapshots to an object store by implementing these four
// methods over its SDK; DirStore is the local-filesystem implementation the
// daemons default to.
//
// Put must be atomic: a reader must never observe a partially written object
// (DirStore gets this from write-to-temp + rename). List returns keys in
// lexicographic order.
type BlobStore interface {
	Put(ctx context.Context, key string, body io.Reader) error
	Get(ctx context.Context, key string) (io.ReadCloser, error)
	List(ctx context.Context, prefix string) ([]string, error)
	Delete(ctx context.Context, key string) error
}

// DirStore is a BlobStore over one local directory. Keys may contain '/'
// separators, which map to subdirectories.
type DirStore struct {
	root string
}

// NewDirStore creates (if needed) and opens a directory-backed store.
func NewDirStore(root string) (*DirStore, error) {
	if err := os.MkdirAll(root, 0o755); err != nil {
		return nil, err
	}
	return &DirStore{root: root}, nil
}

// keyPath validates a key and resolves it under the root. Rejects anything
// that could escape the directory.
func (d *DirStore) keyPath(key string) (string, error) {
	if key == "" || strings.HasPrefix(key, "/") || strings.Contains(key, "\\") {
		return "", fmt.Errorf("durable: invalid blob key %q", key)
	}
	clean := filepath.Clean(filepath.FromSlash(key))
	if clean == "." || clean == ".." || strings.HasPrefix(clean, ".."+string(filepath.Separator)) {
		return "", fmt.Errorf("durable: invalid blob key %q", key)
	}
	return filepath.Join(d.root, clean), nil
}

// Put writes the object atomically: the body streams into a temporary file
// that is fsynced and renamed into place, so a crash mid-write leaves no
// partially visible object and a concurrent Get sees either the old object or
// the new one.
func (d *DirStore) Put(ctx context.Context, key string, body io.Reader) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	path, err := d.keyPath(key)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), ".put-*")
	if err != nil {
		return err
	}
	defer func() {
		if tmp != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	if _, err := io.Copy(tmp, body); err != nil {
		return err
	}
	if err := tmp.Sync(); err != nil {
		return err
	}
	name := tmp.Name()
	if err := tmp.Close(); err != nil {
		return err
	}
	tmp = nil
	if err := os.Rename(name, path); err != nil {
		os.Remove(name)
		return err
	}
	// The rename is only crash-durable once the directory entry is fsynced;
	// without this a power loss can drop a snapshot whose covered WAL prefix
	// was already truncated.
	return syncDir(filepath.Dir(path))
}

// Get opens the object for reading.
func (d *DirStore) Get(ctx context.Context, key string) (io.ReadCloser, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	path, err := d.keyPath(key)
	if err != nil {
		return nil, err
	}
	return os.Open(path)
}

// List returns every key under prefix, sorted. Temporary files from
// in-flight Puts are invisible.
func (d *DirStore) List(ctx context.Context, prefix string) ([]string, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	var keys []string
	err := filepath.WalkDir(d.root, func(path string, entry os.DirEntry, err error) error {
		if err != nil || entry.IsDir() {
			return err
		}
		if strings.HasPrefix(entry.Name(), ".put-") {
			return nil
		}
		rel, err := filepath.Rel(d.root, path)
		if err != nil {
			return err
		}
		key := filepath.ToSlash(rel)
		if strings.HasPrefix(key, prefix) {
			keys = append(keys, key)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(keys)
	return keys, nil
}

// Delete removes the object; deleting a missing key is not an error (matching
// object-store semantics).
func (d *DirStore) Delete(ctx context.Context, key string) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	path, err := d.keyPath(key)
	if err != nil {
		return err
	}
	if err := os.Remove(path); err != nil && !os.IsNotExist(err) {
		return err
	}
	return nil
}
