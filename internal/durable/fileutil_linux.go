//go:build linux

package durable

import (
	"os"
	"syscall"
)

// fdatasync flushes a file's data plus the metadata needed to read it back
// (notably its size), skipping the full inode flush fsync forces — on
// journaling filesystems that is a measurably cheaper commit path for an
// append-only log.
func fdatasync(f *os.File) error {
	return syscall.Fdatasync(int(f.Fd()))
}

// fallocKeepSize is FALLOC_FL_KEEP_SIZE: reserve extents without changing the
// file's logical size.
const fallocKeepSize = 0x01

// preallocate reserves size bytes of extents for the segment up front so the
// per-commit fdatasync does not journal block allocations append by append.
// KEEP_SIZE leaves the logical size alone — recovery must never scan
// preallocated zero bytes, which the frame decoder would reject as corrupt.
// Best-effort: filesystems without fallocate just keep the old behavior.
func preallocate(f *os.File, size int64) {
	_ = syscall.Fallocate(int(f.Fd()), fallocKeepSize, 0, size)
}
