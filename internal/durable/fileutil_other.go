//go:build !linux

package durable

import "os"

// fdatasync falls back to a full fsync where the data-only variant is not
// available.
func fdatasync(f *os.File) error {
	return f.Sync()
}

// preallocate is a no-op off Linux; segments grow append by append.
func preallocate(_ *os.File, _ int64) {}
