package server

import (
	"bytes"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"coflowsched/internal/telemetry"
)

// flakyHandler fails the first n requests with the given status (0 = drop the
// connection) and then delegates to ok.
type flakyHandler struct {
	n      int64
	status int
	seen   atomic.Int64
	ok     http.Handler
}

func (h *flakyHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if h.seen.Add(1) <= h.n {
		if h.status == 0 {
			hj, okCast := w.(http.Hijacker)
			if !okCast {
				panic("test server does not support hijacking")
			}
			conn, _, err := hj.Hijack()
			if err == nil {
				conn.Close()
			}
			return
		}
		w.WriteHeader(h.status)
		fmt.Fprintln(w, `{"error":"transient"}`)
		return
	}
	h.ok.ServeHTTP(w, r)
}

func okJSON(body string) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintln(w, body)
	})
}

// TestClientRetriesTransientStatus: 503s are retried until the backend
// recovers, within the retry budget.
func TestClientRetriesTransientStatus(t *testing.T) {
	h := &flakyHandler{n: 2, status: http.StatusServiceUnavailable, ok: okJSON(`{"status":"ok"}`)}
	ts := httptest.NewServer(h)
	defer ts.Close()

	c := NewClient(ts.URL, WithRetries(2, time.Millisecond))
	if _, err := c.Health(); err != nil {
		t.Fatalf("health after transient failures: %v", err)
	}
	if got := h.seen.Load(); got != 3 {
		t.Errorf("backend saw %d requests, want 3 (2 failures + 1 success)", got)
	}
}

// TestClientRetriesConnectionDrop: a dropped connection (no HTTP response at
// all) is a transport error and is retried.
func TestClientRetriesConnectionDrop(t *testing.T) {
	h := &flakyHandler{n: 1, status: 0, ok: okJSON(`{"status":"ok"}`)}
	ts := httptest.NewServer(h)
	defer ts.Close()

	c := NewClient(ts.URL, WithRetries(3, time.Millisecond))
	if _, err := c.Health(); err != nil {
		t.Fatalf("health after dropped connection: %v", err)
	}
}

// TestClientRetryBudgetExhausted: a persistently failing backend surfaces an
// error naming the attempt count instead of hanging.
func TestClientRetryBudgetExhausted(t *testing.T) {
	h := &flakyHandler{n: 1 << 30, status: http.StatusServiceUnavailable, ok: okJSON(`{}`)}
	ts := httptest.NewServer(h)
	defer ts.Close()

	c := NewClient(ts.URL, WithRetries(2, time.Millisecond))
	_, err := c.Health()
	if err == nil {
		t.Fatal("expected an error from a persistently failing backend")
	}
	if !strings.Contains(err.Error(), "3 attempts") {
		t.Errorf("error %q does not name the attempt count", err)
	}
	if got := h.seen.Load(); got != 3 {
		t.Errorf("backend saw %d requests, want 3", got)
	}
}

// TestClientFailsFastOnValidationErrors: 4xx responses are not transient and
// must not be retried (a malformed coflow never becomes well-formed).
func TestClientFailsFastOnValidationErrors(t *testing.T) {
	h := &flakyHandler{n: 1 << 30, status: http.StatusBadRequest, ok: okJSON(`{}`)}
	ts := httptest.NewServer(h)
	defer ts.Close()

	c := NewClient(ts.URL, WithRetries(3, time.Millisecond))
	if _, err := c.Health(); err == nil {
		t.Fatal("expected an error")
	}
	if got := h.seen.Load(); got != 1 {
		t.Errorf("backend saw %d requests, want 1 (no retries on 4xx)", got)
	}
}

// TestClientTimeout: a hung backend fails the request at the configured
// timeout instead of stalling the caller — the RunLoad hang the option exists
// to prevent.
func TestClientTimeout(t *testing.T) {
	block := make(chan struct{})
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-block
	}))
	// LIFO: the blocked handlers must be released before ts.Close(), which
	// waits for outstanding requests to finish.
	defer ts.Close()
	defer close(block)

	c := NewClient(ts.URL, WithTimeout(30*time.Millisecond), WithRetries(1, time.Millisecond))
	start := time.Now()
	_, err := c.Health()
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("expected a timeout error")
	}
	if elapsed > 2*time.Second {
		t.Errorf("request took %v, want prompt timeout", elapsed)
	}
}

// TestClientRetryInstrumentation: with WithInstrumentation wired, every
// retry bumps the per-endpoint counter and emits a debug log line — the
// visibility the gateway uses to spot a flapping backend before the health
// prober trips.
func TestClientRetryInstrumentation(t *testing.T) {
	h := &flakyHandler{n: 2, status: http.StatusServiceUnavailable, ok: okJSON(`{"status":"ok"}`)}
	ts := httptest.NewServer(h)
	defer ts.Close()

	reg := telemetry.NewRegistry()
	retries := reg.CounterVec("test_client_retries_total", "retries", "endpoint")
	var logBuf bytes.Buffer
	logger := telemetry.NewLogger(&logBuf, slog.LevelDebug, "text", "test", "")

	c := NewClient(ts.URL, WithRetries(3, time.Millisecond), WithInstrumentation(retries, logger))
	if _, err := c.Health(); err != nil {
		t.Fatalf("health after transient failures: %v", err)
	}
	if got := retries.With("health").Value(); got != 2 {
		t.Errorf("retry counter = %v, want 2", got)
	}
	if logs := logBuf.String(); strings.Count(logs, "retrying request") != 2 || !strings.Contains(logs, "endpoint=health") {
		t.Errorf("retry debug logs missing or wrong:\n%s", logs)
	}
}
