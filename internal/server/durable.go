package server

import (
	"context"
	"fmt"
	"path/filepath"
	"time"

	"coflowsched/internal/durable"
	"coflowsched/internal/online"
)

// Durability. With Config.WALDir set, the daemon logs every state-changing
// engine operation — admissions, applied orders, clock advances — to a
// write-ahead log before acknowledging it, snapshots the engine periodically,
// and on boot rebuilds the engine by restoring the newest snapshot and
// re-running the log's suffix through the same engine entry points the live
// daemon uses. Because the engine is deterministic (admission routing depends
// only on the monotonically accumulated load, simulation on the applied
// orders), replay reconstructs the pre-crash engine exactly: admitted coflows
// keep their ids, arrivals, routes and priorities, and in-flight transfers
// resume where the last durable record left them.
//
// Durability boundary: an admission is fsynced (group-committed) before the
// 201 goes out, so an acknowledged coflow survives any crash. Tick-path
// advance/order records are appended without a forced sync — they ride along
// with the next admission's commit or segment rotation — so a crash can roll
// the clock back to the last durable record; replayed ticks then re-derive the
// lost progress deterministically.

// IdemHeader carries an admission's idempotency key. A client that retries a
// POST /v1/coflows with the same key gets the original response back instead
// of a second coflow; keys are WAL-logged and snapshotted, so the dedupe
// window survives a daemon restart. The window is bounded, not eternal: an
// entry lives while its coflow is in flight and for idemGrace afterwards,
// which keeps the map (and every snapshot serializing it) from growing with
// the daemon's lifetime admission count.
const IdemHeader = "X-Coflow-Id"

// idemGrace is how long a completed coflow's idempotency entry stays
// deduplicable. It only needs to outlive a client's retry loop (seconds);
// minutes gives slack for a gateway re-placing work across a shard restart.
const idemGrace = 2 * time.Minute

// idemTomb schedules one completed coflow's dedupe entry for eviction.
type idemTomb struct {
	key     string
	expires time.Time
}

// retireIdem moves the idempotency entries of just-completed coflows onto the
// tomb queue and evicts entries whose grace window has passed. The queue is
// expiry-ordered by construction (appends use a monotonically later clock),
// so the sweep stops at the first live tomb. Scheduler goroutine only.
func (s *Server) retireIdem(done []int) {
	now := time.Now()
	for _, id := range done {
		if key, ok := s.idemByID[id]; ok {
			delete(s.idemByID, id)
			s.idemTombs = append(s.idemTombs, idemTomb{key: key, expires: now.Add(idemGrace)})
		}
	}
	evicted := 0
	for evicted < len(s.idemTombs) && now.After(s.idemTombs[evicted].expires) {
		delete(s.idem, s.idemTombs[evicted].key)
		evicted++
	}
	if evicted > 0 {
		s.idemTombs = append(s.idemTombs[:0], s.idemTombs[evicted:]...)
	}
}

// snapshotKeep bounds retained snapshots: the newest is the restore point,
// the older ones are insurance against a torn or corrupt newest.
const snapshotKeep = 3

// idemEntry is one admission dedupe entry. seq is the WAL sequence of the
// admit record, so a duplicate request arriving while the original fsync is
// still in flight waits for the same durability point before acking.
type idemEntry struct {
	resp AdmitResponse
	seq  uint64
}

// serverPersist is the snapshot body: the engine state plus the server-side
// maps that must survive a restart (idempotency keys, lifecycle trace ids).
type serverPersist struct {
	Engine *online.EngineState      `json:"engine"`
	Idem   map[string]AdmitResponse `json:"idem,omitempty"`
	Traces map[int]string           `json:"traces,omitempty"`
}

// recovery is everything recoverState rebuilds from disk.
type recovery struct {
	eng      *online.Engine
	wal      *durable.Log
	store    durable.BlobStore
	idem     map[string]idemEntry
	traceIDs map[int]string
	// idemByID indexes recovered dedupe entries whose coflows are still in
	// flight; staleIdem lists keys whose coflows already finished — they get a
	// fresh grace window at boot, then evict.
	idemByID  map[int]string
	staleIdem []string
	// active counts admitted-but-incomplete coflows restored, the value of
	// the coflowd_wal_recovered_coflows gauge.
	active   int
	replayed uint64
}

// recoverState rebuilds the engine from cfg.WALDir: newest usable snapshot,
// then the log suffix it does not cover, then the log is opened for
// appending. A log or snapshot that cannot be trusted fails the boot — a
// daemon must not serve from state it cannot vouch for.
func recoverState(cfg Config) (*recovery, error) {
	store := cfg.SnapshotStore
	if store == nil {
		ds, err := durable.NewDirStore(filepath.Join(cfg.WALDir, "snapshots"))
		if err != nil {
			return nil, fmt.Errorf("server: opening snapshot store: %w", err)
		}
		store = ds
	}
	ctx := context.Background()
	var persist serverPersist
	seq, ok, skipped, err := durable.LatestSnapshot(ctx, store, &persist)
	if err != nil {
		return nil, fmt.Errorf("server: reading snapshots: %w", err)
	}
	if skipped > 0 {
		cfg.Logger.Warn("skipped unreadable snapshots", "component", "coflowd", "count", skipped)
	}

	rec := &recovery{
		store:    store,
		idem:     make(map[string]idemEntry),
		traceIDs: make(map[int]string),
	}
	engCfg := online.Config{EpochLength: cfg.EpochLength, CandidatePaths: cfg.CandidatePaths, Partitions: cfg.Partitions}
	if ok {
		rec.eng, err = online.RestoreEngine(cfg.Network, cfg.Policy, engCfg, persist.Engine)
		if err != nil {
			return nil, fmt.Errorf("server: restoring snapshot through seq %d: %w", seq, err)
		}
		for key, resp := range persist.Idem {
			rec.idem[key] = idemEntry{resp: resp}
		}
		for id, trace := range persist.Traces {
			rec.traceIDs[id] = trace
		}
	} else {
		rec.eng, err = online.NewEngine(cfg.Network, cfg.Policy, engCfg)
		if err != nil {
			return nil, err
		}
	}

	last, err := durable.Replay(cfg.WALDir, seq+1, func(r *durable.Record) error {
		return rec.apply(r)
	})
	if err != nil {
		return nil, fmt.Errorf("server: replaying wal: %w", err)
	}
	// Coflows that completed inside the replay have no one to report to;
	// drain the log so the first live tick starts clean.
	for _, id := range rec.eng.TakeCompleted() {
		delete(rec.traceIDs, id)
	}
	activeCoflows, _ := rec.eng.ActiveCounts()
	rec.active = activeCoflows

	// Partition recovered dedupe entries: live coflows keep an index for
	// completion-time retirement, finished ones are marked stale so New can
	// tomb them instead of letting them ride in the map forever.
	rec.idemByID = make(map[int]string)
	for key, e := range rec.idem {
		if st, ok := rec.eng.CoflowStatus(e.resp.ID); ok && !st.Done {
			rec.idemByID[e.resp.ID] = key
		} else {
			rec.staleIdem = append(rec.staleIdem, key)
		}
	}

	rec.wal, err = durable.Open(cfg.WALDir, durable.Options{})
	if err != nil {
		return nil, fmt.Errorf("server: opening wal: %w", err)
	}
	if got := rec.wal.LastSeq(); got < last {
		return nil, fmt.Errorf("%w: log reopened at seq %d after replaying through %d", durable.ErrCorrupt, got, last)
	}
	return rec, nil
}

// apply replays one WAL record into the recovering engine, using exactly the
// entry points the live scheduler uses. Any record the engine refuses marks
// the log corrupt: the log claims a history the engine cannot have produced.
func (rec *recovery) apply(r *durable.Record) error {
	switch r.Type {
	case durable.RecAdmit:
		a := r.Admit
		id, err := rec.eng.Admit(a.Spec, a.Now)
		if err != nil {
			return fmt.Errorf("%w: admit record seq %d does not replay: %v", durable.ErrCorrupt, r.Seq, err)
		}
		if id != a.ID {
			return fmt.Errorf("%w: admit record seq %d replayed as coflow %d, log says %d", durable.ErrCorrupt, r.Seq, id, a.ID)
		}
		if a.Key != "" {
			rec.idem[a.Key] = idemEntry{resp: AdmitResponse{ID: id, Name: a.Spec.Name, Arrival: a.Now, Trace: a.Trace}}
		}
		if a.Trace != "" {
			rec.traceIDs[id] = a.Trace
		}
	case durable.RecOrder:
		o := r.Order
		if err := rec.eng.AdvanceTo(o.Now); err != nil {
			return fmt.Errorf("%w: order record seq %d: advance to %v: %v", durable.ErrCorrupt, r.Seq, o.Now, err)
		}
		latency := time.Duration(o.LatencySecs * float64(time.Second))
		if err := rec.eng.ApplyOrder(o.Refs, latency); err != nil {
			return fmt.Errorf("%w: order record seq %d does not replay: %v", durable.ErrCorrupt, r.Seq, err)
		}
	case durable.RecAdvance:
		adv := r.Advance
		if adv.Decide {
			if err := rec.eng.DecideSync(); err != nil {
				return fmt.Errorf("%w: advance record seq %d: decide: %v", durable.ErrCorrupt, r.Seq, err)
			}
		}
		if err := rec.eng.AdvanceTo(adv.Now); err != nil {
			return fmt.Errorf("%w: advance record seq %d: advance to %v: %v", durable.ErrCorrupt, r.Seq, adv.Now, err)
		}
	case durable.RecComplete:
		// Informational: completions are re-derived by the replayed advances.
	default:
		return fmt.Errorf("%w: record seq %d has type %q, which does not belong in a coflowd log", durable.ErrCorrupt, r.Seq, r.Type)
	}
	rec.replayed++
	return nil
}

// walAppend appends one record on the scheduler goroutine, returning its
// sequence. WAL failure is fail-stop for durability (the sticky error fails
// every later append and commit, so no new admission is acknowledged) but the
// in-memory engine keeps serving reads; the failure is logged once.
func (s *Server) walAppend(r *durable.Record) (uint64, error) {
	seq, err := s.wal.Append(r)
	if err != nil && !s.walFailed {
		s.walFailed = true
		s.logger.Error("wal append failed; daemon is now read-only", "component", "coflowd", "err", err)
	}
	return seq, err
}

// maybeSnapshot captures the engine state on the scheduler goroutine and
// writes it out on a separate goroutine, so a large state never stalls the
// tick loop; at most one snapshot is in flight. After the snapshot is durable
// the log prefix it covers is dropped.
func (s *Server) maybeSnapshot() {
	if s.wal == nil || s.snapshotting {
		return
	}
	// Everything through seq is reflected in the state exported below: both
	// reads happen on the scheduler goroutine with no engine op between them.
	seq := s.wal.LastSeq()
	if seq == 0 {
		return
	}
	persist := serverPersist{Engine: s.eng.ExportState()}
	if len(s.idem) > 0 {
		persist.Idem = make(map[string]AdmitResponse, len(s.idem))
		for key, e := range s.idem {
			persist.Idem[key] = e.resp
		}
	}
	if len(s.traceIDs) > 0 {
		persist.Traces = make(map[int]string, len(s.traceIDs))
		for id, trace := range s.traceIDs {
			persist.Traces[id] = trace
		}
	}
	s.snapshotting = true
	go func() {
		t0 := time.Now()
		ctx := context.Background()
		key, err := durable.WriteSnapshot(ctx, s.store, seq, persist)
		if err == nil {
			err = s.wal.TruncateBefore(seq + 1)
		}
		if err == nil {
			err = durable.PruneSnapshots(ctx, s.store, snapshotKeep)
		}
		if err != nil {
			s.logger.Error("snapshot failed", "component", "coflowd", "seq", seq, "err", err)
		} else {
			s.metrics.snapshots.Inc()
			s.logger.Info("snapshot written", "component", "coflowd",
				"key", key, "seq", seq, "segments", s.wal.SegmentCount(),
				"took", time.Since(t0))
		}
		// Clearing the flag needs the scheduler; after shutdown the flag no
		// longer matters.
		_ = s.do(func() { s.snapshotting = false })
	}()
}

// shutdown stops the scheduler and closes the log. abandon skips the final
// fsync — the crash-shaped variant the recovery harness uses.
func (s *Server) shutdown(abandon bool) {
	s.closeOnce.Do(func() { close(s.quit) })
	<-s.stopped
	if s.committerDone != nil {
		// The scheduler's exit closed commitC; wait for the committer to drain
		// it and release every admission waiter before pulling the log away.
		<-s.committerDone
	}
	if s.wal != nil {
		s.walOnce.Do(func() {
			if abandon {
				s.wal.Abandon()
			} else if err := s.wal.Close(); err != nil {
				s.logger.Error("wal close failed", "component", "coflowd", "err", err)
			}
		})
	}
}

// Kill stops the server the way a crash would: no drain, no final fsync.
// Everything not yet group-committed is abandoned to the page cache. Tests
// use it to exercise the recovery path; production shutdown is Close.
func (s *Server) Kill() { s.shutdown(true) }
