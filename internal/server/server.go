// Package server wraps the incremental online scheduler (online.Engine) in a
// long-running HTTP service, coflowd: coflows are admitted as they arrive
// over POST /v1/coflows, a wall-clock-driven epoch loop re-prioritizes
// residual flows with the configured policy, and JSON endpoints expose
// per-coflow status, the current priority order and aggregate statistics.
//
// Concurrency model: a single scheduler goroutine owns the engine. HTTP
// handlers never touch engine state directly — they submit closures over a
// command channel and wait for the result, so every engine access is
// serialized without locks. Policy decisions are the one deliberate
// exception: each epoch tick captures an immutable residual Snapshot and
// runs Decide on a separate goroutine, keeping the scheduler (and therefore
// every handler) responsive while an expensive LP solve is in flight; the
// resulting order returns through the command channel and is applied one
// epoch late, exactly the staleness trade the batch engine's pipelining
// makes.
//
// Time: the simulation clock advances with the wall clock, scaled by
// Config.TimeScale simulated time units per wall second. Epoch boundaries
// are wall-clock ticks of EpochLength/TimeScale seconds.
package server

import (
	"errors"
	"fmt"
	"log/slog"
	"strconv"
	"sync"
	"time"

	"coflowsched/internal/durable"
	"coflowsched/internal/graph"
	"coflowsched/internal/online"
	"coflowsched/internal/telemetry"
)

// Config parameterizes the daemon.
type Config struct {
	// Network is the simulated topology coflows are scheduled on. Required.
	Network *graph.Graph
	// Policy re-prioritizes residual flows each epoch. Required; must not be
	// a hindsight (Preparer) policy.
	Policy online.Policy
	// EpochLength is the simulated time between policy re-decisions
	// (default 1).
	EpochLength float64
	// TimeScale is the number of simulated time units that elapse per
	// wall-clock second (default 1). Raising it makes the simulated network
	// run faster than real time, which load tests use to drain quickly.
	TimeScale float64
	// CandidatePaths bounds admission-time routing (default 4).
	CandidatePaths int
	// Partitions > 1 runs the engine's simulator core on the pod-partitioned
	// parallel allocator with at most that many classes; 0 or 1 selects the
	// sequential core. Bit-identical either way (see online.Config).
	Partitions int
	// Shard, when non-empty, is this daemon's identity in a multi-backend
	// cluster: every /metrics line gains a {shard="..."} label so metrics
	// scraped from several backends by one gateway stay distinguishable.
	Shard string
	// Logger receives structured operational logs (solver failures, drain
	// progress, admissions at debug level) with component/shard fields
	// attached. When nil, Logf is bridged through a line-formatting handler;
	// when that is nil too, logs are discarded.
	Logger *slog.Logger
	// Logf is the legacy printf-style sink, still honored for compatibility
	// (tests pass t.Logf here). Ignored when Logger is set.
	Logf func(format string, args ...any)
	// TraceCapacity bounds the lifecycle-trace span ring served at
	// /debug/traces (default telemetry.DefaultTraceCapacity).
	TraceCapacity int
	// WALDir, when non-empty, turns on durability: state-changing engine
	// operations are written to a write-ahead log under this directory,
	// admissions are fsynced before they are acknowledged, and a restarted
	// daemon replays the log (from the newest snapshot) to restore every
	// admitted-but-incomplete coflow before serving. See durable.go.
	WALDir string
	// SnapshotInterval is the wall-clock period between engine snapshots,
	// which bound replay time and let the log prefix be truncated. Only
	// meaningful with WALDir set; defaults to 30s there, negative disables
	// snapshotting.
	SnapshotInterval time.Duration
	// SnapshotStore overrides where snapshots are written (for example an
	// object store). Nil defaults to a local directory store under
	// WALDir/snapshots.
	SnapshotStore durable.BlobStore
}

func (c Config) withDefaults() (Config, error) {
	if c.Network == nil {
		return c, errors.New("server: config needs a network")
	}
	if c.Policy == nil {
		return c, errors.New("server: config needs a policy")
	}
	// Zero means "use the default"; explicit negatives are caller bugs.
	if c.EpochLength < 0 {
		return c, fmt.Errorf("server: epoch length must be positive, got %v", c.EpochLength)
	}
	if c.TimeScale < 0 {
		return c, fmt.Errorf("server: time scale must be positive, got %v", c.TimeScale)
	}
	if c.EpochLength == 0 {
		c.EpochLength = 1
	}
	if c.TimeScale == 0 {
		c.TimeScale = 1
	}
	if c.WALDir != "" && c.SnapshotInterval == 0 {
		c.SnapshotInterval = 30 * time.Second
	}
	if c.Logger == nil {
		c.Logger = telemetry.LogfLogger(c.Logf) // nil Logf discards
	}
	if c.Shard != "" {
		c.Logger = c.Logger.With("shard", c.Shard)
	}
	return c, nil
}

// minWallEpoch floors the tick period so extreme TimeScale values cannot
// turn the scheduler loop into a busy spin.
const minWallEpoch = time.Millisecond

// errStopped is returned by handler operations after Close.
var errStopped = errors.New("server: scheduler stopped")

// errDraining rejects admissions once shutdown has begun.
var errDraining = errors.New("server: draining, not accepting new coflows")

// Server is the coflowd service: an engine, the scheduler goroutine that
// owns it, and the HTTP API in handlers.go.
type Server struct {
	cfg     Config
	eng     *online.Engine
	cmds    chan func()
	admitC  chan *admitReq
	quit    chan struct{}
	stopped chan struct{}
	// Durability pipeline (nil without a WAL): the scheduler hands each
	// admission batch that appended log records to commitC, and the committer
	// goroutine serializes the group-commit fsyncs — see committer in admit.go.
	// batchFree recycles batch buffers between the two goroutines.
	commitC       chan []*admitReq
	committerDone chan struct{}
	batchFree     chan []*admitReq
	closeOnce     sync.Once
	start         time.Time
	metrics       *serverMetrics
	tracer        *telemetry.Tracer
	logger        *slog.Logger

	// Durability (nil without Config.WALDir). simBase offsets the wall-clock
	// mapping so a recovered engine's simulation clock continues from where
	// replay left it instead of restarting at zero.
	wal     *durable.Log
	store   durable.BlobStore
	walOnce sync.Once
	simBase float64

	// Owned by the scheduler goroutine.
	solving  bool
	draining bool
	// admitScratch is processAdmits' reusable batch buffer.
	admitScratch []*admitReq
	// idem deduplicates admissions by X-Coflow-Id. It is bounded: idemByID
	// maps live coflow ids back to their keys, and when a coflow completes its
	// entry moves onto idemTombs (expiry-ordered) and is dropped once the
	// grace window passes — see retireIdem. snapshotting serializes async
	// snapshots; walFailed gates the one-time log write-failure log.
	idem         map[string]idemEntry
	idemByID     map[int]string
	idemTombs    []idemTomb
	snapshotting bool
	walFailed    bool
	// tickDurs is a bounded reservoir of recent AdvanceTo wall-clock
	// durations in seconds, the source of the /metrics per-tick timing
	// percentiles.
	tickDurs []float64
	tickNext int
	// traceIDs maps admitted coflow ids to their lifecycle trace ids so the
	// completion span can be emitted when the coflow finishes.
	traceIDs map[int]string
	// epochRing retains the most recent scheduler ticks for /v1/epochs;
	// lastDecide stages the async decision applied since the previous tick
	// so the next record carries its latency and churn.
	epochRing  []EpochRecord
	epochNext  int
	lastDecide struct {
		applied bool
		latency time.Duration
		churn   float64
	}
}

// tickWindow bounds the per-tick timing reservoir: percentiles reflect the
// most recent window, not the daemon's whole lifetime.
const tickWindow = 2048

// recordTick stores one tick's simulation-advance duration in the percentile
// reservoir and the exposition histogram. Scheduler goroutine only.
func (s *Server) recordTick(d time.Duration) {
	s.metrics.tickDuration.Observe(d.Seconds())
	if len(s.tickDurs) < tickWindow {
		s.tickDurs = append(s.tickDurs, d.Seconds())
		return
	}
	s.tickDurs[s.tickNext] = d.Seconds()
	s.tickNext = (s.tickNext + 1) % tickWindow
}

// New builds and starts a server: the scheduler goroutine begins ticking
// immediately. Callers must Close it (or Drain then Close).
func New(cfg Config) (*Server, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	s := &Server{
		cfg:      cfg,
		cmds:     make(chan func()),
		admitC:   make(chan *admitReq, admitQueueDepth),
		quit:     make(chan struct{}),
		stopped:  make(chan struct{}),
		start:    time.Now(),
		metrics:  newServerMetrics(cfg.Shard),
		tracer:   telemetry.NewTracer("coflowd", cfg.Shard, cfg.TraceCapacity),
		logger:   cfg.Logger,
		traceIDs: make(map[int]string),
		idem:     make(map[string]idemEntry),
		idemByID: make(map[int]string),
	}
	if cfg.WALDir == "" {
		s.eng, err = online.NewEngine(cfg.Network, cfg.Policy, online.Config{
			EpochLength:    cfg.EpochLength,
			CandidatePaths: cfg.CandidatePaths,
			Partitions:     cfg.Partitions,
		})
		if err != nil {
			return nil, err
		}
	} else {
		rec, err := recoverState(cfg)
		if err != nil {
			return nil, err
		}
		s.eng = rec.eng
		s.wal = rec.wal
		s.store = rec.store
		s.idem = rec.idem
		s.idemByID = rec.idemByID
		s.traceIDs = rec.traceIDs
		// Recovered keys whose coflows already finished start their grace
		// window at boot so they still dedupe a straggling retry, then go.
		expires := time.Now().Add(idemGrace)
		for _, key := range rec.staleIdem {
			s.idemTombs = append(s.idemTombs, idemTomb{key: key, expires: expires})
		}
		s.simBase = rec.eng.Now()
		s.metrics.walRecovered.Set(float64(rec.active))
		if rec.replayed > 0 || rec.active > 0 {
			s.logger.Info("state recovered", "component", "coflowd",
				"replayed", rec.replayed, "active_coflows", rec.active,
				"sim_now", s.simBase)
		}
	}
	s.metrics.initPartitions(s.eng.Partitions())
	if s.wal != nil {
		s.commitC = make(chan []*admitReq, commitQueueDepth)
		s.committerDone = make(chan struct{})
		s.batchFree = make(chan []*admitReq, commitQueueDepth)
		go s.committer()
	}
	go s.loop()
	return s, nil
}

// Tracer exposes the daemon's lifecycle-span ring (tests join it against a
// gateway's).
func (s *Server) Tracer() *telemetry.Tracer { return s.tracer }

// simNow maps the wall clock onto the simulation clock, offset by the clock
// a recovered engine resumed at.
func (s *Server) simNow() float64 {
	return s.simBase + time.Since(s.start).Seconds()*s.cfg.TimeScale
}

// wallEpoch is the wall-clock tick period of the epoch loop.
func (s *Server) wallEpoch() time.Duration {
	d := time.Duration(s.cfg.EpochLength / s.cfg.TimeScale * float64(time.Second))
	if d < minWallEpoch {
		d = minWallEpoch
	}
	return d
}

// loop is the scheduler goroutine: it serializes handler operations and
// drives the epoch clock.
func (s *Server) loop() {
	defer close(s.stopped)
	// The scheduler is the only sender on commitC, so closing it here is the
	// committer's clean shutdown signal: it drains what is queued, releases
	// every waiter, and exits (shutdown waits on committerDone before closing
	// the log underneath it).
	if s.commitC != nil {
		defer close(s.commitC)
	}
	tick := time.NewTicker(s.wallEpoch())
	defer tick.Stop()
	var snapC <-chan time.Time
	if s.wal != nil && s.cfg.SnapshotInterval > 0 {
		snap := time.NewTicker(s.cfg.SnapshotInterval)
		defer snap.Stop()
		snapC = snap.C
	}
	for {
		select {
		case <-s.quit:
			return
		case op := <-s.cmds:
			op()
		case req := <-s.admitC:
			s.processAdmits(req)
		case <-tick.C:
			s.tick()
		case <-snapC:
			s.maybeSnapshot()
		}
	}
}

// tick advances the engine to the current simulated time, records the epoch
// into the introspection ring, closes out lifecycle traces for coflows that
// completed, and — if no solve is in flight — kicks off the next asynchronous
// policy decision.
func (s *Server) tick() {
	t0 := time.Now()
	err := s.eng.AdvanceTo(s.simNow())
	tickDur := time.Since(t0)
	s.recordTick(tickDur)
	if err != nil {
		s.logger.Error("advance failed", "component", "coflowd", "err", err)
		return
	}
	ts := s.eng.TakeTickStats()
	s.metrics.observeTickStats(ts)
	done := s.eng.TakeCompleted()
	for _, id := range done {
		span := telemetry.Span{Name: "completion", Trace: s.traceIDs[id], Coflow: id}
		if st, ok := s.eng.CoflowStatus(id); ok {
			span.Attrs = map[string]string{
				"cct":      strconv.FormatFloat(st.Response, 'g', -1, 64),
				"slowdown": strconv.FormatFloat(st.Slowdown, 'g', -1, 64),
			}
			span.Duration = st.Response / s.cfg.TimeScale // lifecycle span in wall seconds
		}
		s.tracer.Record(span)
		delete(s.traceIDs, id)
		s.logger.Debug("coflow completed", "component", "coflowd", "coflow", id, "trace", span.Trace)
	}
	s.retireIdem(done)
	activeCoflows, activeFlows := s.eng.ActiveCounts()
	// Log the advance only while there is state worth recovering: an idle
	// daemon's log must not grow with its uptime. No forced sync — tick
	// records ride along with the next admission's group commit.
	if s.wal != nil && (activeCoflows > 0 || len(done) > 0) {
		_, _ = s.walAppend(&durable.Record{Type: durable.RecAdvance,
			Advance: &durable.AdvanceRecord{Now: s.eng.Now()}})
		for _, id := range done {
			if st, ok := s.eng.CoflowStatus(id); ok {
				_, _ = s.walAppend(&durable.Record{Type: durable.RecComplete,
					Complete: &durable.CompleteRecord{ID: id, Time: st.Completion}})
			}
		}
	}
	var reallocSecs float64
	for _, secs := range ts.WorkerSeconds {
		reallocSecs += secs
	}
	rec := EpochRecord{
		Epoch:              s.eng.Epoch(),
		SimNow:             s.eng.Now(),
		Wall:               t0,
		TickSeconds:        tickDur.Seconds(),
		ActiveCoflows:      activeCoflows,
		ActiveFlows:        activeFlows,
		Completed:          len(done),
		Reallocs:           ts.Reallocs,
		DirtySuffixSum:     ts.SuffixSum,
		DirtySuffixMax:     ts.SuffixMax,
		ParallelRounds:     ts.ParallelRounds,
		CrossFlows:         ts.CrossFlows,
		ReallocSeconds:     reallocSecs,
		PartitionImbalance: ts.ImbalanceRatio,
	}
	if s.lastDecide.applied {
		rec.Decided = true
		rec.DecideSeconds = s.lastDecide.latency.Seconds()
		rec.OrderChurn = s.lastDecide.churn
		rec.Preempted = int(s.lastDecide.churn * float64(activeFlows))
		s.lastDecide = struct {
			applied bool
			latency time.Duration
			churn   float64
		}{}
	}
	s.pushEpoch(rec)
	if s.solving || s.draining {
		return
	}
	snap := s.eng.Snapshot()
	if len(snap.Coflows) == 0 {
		return
	}
	s.solving = true
	policy := s.eng.Policy()
	go func() {
		t0 := time.Now()
		order, err := policy.Decide(snap)
		latency := time.Since(t0)
		s.do(func() {
			s.solving = false
			if err != nil {
				s.logger.Error("policy decide failed", "component", "coflowd",
					"policy", policy.Name(), "epoch", snap.Epoch, "err", err)
				return
			}
			if err := s.eng.ApplyOrder(order, latency); err != nil {
				s.logger.Error("apply order failed", "component", "coflowd", "err", err)
				return
			}
			if s.wal != nil {
				_, _ = s.walAppend(&durable.Record{Type: durable.RecOrder, Order: &durable.OrderRecord{
					Now:         s.eng.Now(),
					LatencySecs: latency.Seconds(),
					Refs:        order,
				}})
			}
			churn := s.eng.OrderChurn()
			s.lastDecide.applied = true
			s.lastDecide.latency = latency
			s.lastDecide.churn = churn
			s.tracer.Record(telemetry.Span{
				Name:     "epoch-decision",
				Coflow:   -1,
				Duration: latency.Seconds(),
				Attrs: map[string]string{
					"policy": policy.Name(),
					"epoch":  strconv.Itoa(snap.Epoch),
					"churn":  strconv.FormatFloat(churn, 'g', -1, 64),
				},
			})
			s.logger.Debug("decision applied", "component", "coflowd",
				"policy", policy.Name(), "epoch", snap.Epoch,
				"latency", latency, "churn", churn)
		})
	}()
}

// do runs op on the scheduler goroutine and waits for it to finish. It
// returns errStopped if the server shut down before the operation ran.
func (s *Server) do(op func()) error {
	done := make(chan struct{})
	select {
	case s.cmds <- func() { op(); close(done) }:
	case <-s.stopped:
		return errStopped
	}
	select {
	case <-done:
		return nil
	case <-s.stopped:
		// Shutdown raced the operation. If both channels were ready the
		// select above picks arbitrarily, so check done once more: an op
		// that DID run must not be reported as dropped (a 503 on an
		// admission that actually happened would make clients double-admit
		// on retry).
		select {
		case <-done:
			return nil
		default:
			return errStopped
		}
	}
}

// Drain stops admitting new coflows and runs the engine to completion:
// every in-flight coflow finishes (simulated time advances as far as
// needed, decoupled from the wall clock). It returns the final statistics.
// The HTTP listener should be shut down first so no admissions race the
// drain; late admissions are rejected with 503 regardless.
func (s *Server) Drain() (online.EngineStats, error) {
	var st online.EngineStats
	var derr error
	err := s.do(func() {
		s.draining = true
		s.logger.Info("drain started", "component", "coflowd", "active", s.eng.NumCoflows())
		derr = s.eng.Drain()
		// Close out lifecycle traces for coflows that finished inside the
		// drain (the tick loop never sees them).
		drained := s.eng.TakeCompleted()
		for _, id := range drained {
			s.tracer.Record(telemetry.Span{Name: "completion", Trace: s.traceIDs[id], Coflow: id,
				Attrs: map[string]string{"drained": "true"}})
			delete(s.traceIDs, id)
		}
		s.retireIdem(drained)
		st = s.eng.Stats()
		s.logger.Info("drain finished", "component", "coflowd",
			"completed", st.Completed, "sim_now", st.Now, "err", derr)
	})
	if err != nil {
		return st, err
	}
	return st, derr
}

// Close stops the scheduler goroutine and fsync-closes the WAL. Safe to call
// more than once; after Close every handler responds 503.
func (s *Server) Close() {
	s.shutdown(false)
}

// Stats fetches the engine's aggregate counters through the scheduler
// goroutine.
func (s *Server) Stats() (online.EngineStats, error) {
	var st online.EngineStats
	err := s.do(func() { st = s.eng.Stats() })
	return st, err
}

// metricsSnapshot fetches the engine statistics together with the
// server-side per-tick timing reservoir, in one scheduler round trip.
func (s *Server) metricsSnapshot() (online.EngineStats, []float64, error) {
	var st online.EngineStats
	var ticks []float64
	err := s.do(func() {
		st = s.eng.Stats()
		ticks = append([]float64(nil), s.tickDurs...)
	})
	return st, ticks, err
}

// PolicyName names the configured policy.
func (s *Server) PolicyName() string { return s.cfg.Policy.Name() }

// String identifies the server configuration in logs.
func (s *Server) String() string {
	return fmt.Sprintf("coflowd(policy=%s epoch=%v timescale=%v)",
		s.cfg.Policy.Name(), s.cfg.EpochLength, s.cfg.TimeScale)
}
