package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"coflowsched/internal/graph"
	"coflowsched/internal/online"
)

// testDurableServer starts a daemon with a WAL under dir. Lifecycle is
// manual: restart tests Kill one incarnation and boot another against the
// same directory, so there is no automatic cleanup beyond the final one the
// caller registers.
func testDurableServer(t *testing.T, dir string, timeScale float64) (*Server, *httptest.Server, *Client) {
	t.Helper()
	s, err := New(Config{
		Network:     graph.FatTree(4, 1),
		Policy:      online.SEBFOnline{},
		EpochLength: 2,
		TimeScale:   timeScale,
		WALDir:      dir,
		Logf:        t.Logf,
	})
	if err != nil {
		t.Fatalf("new durable server: %v", err)
	}
	ts := httptest.NewServer(s.Handler())
	return s, ts, NewClient(ts.URL)
}

// TestServerRecoveryOverRestart admits coflows over HTTP, kills the daemon
// without a clean shutdown, and boots a fresh one against the same WAL
// directory: every acknowledged admission must come back with its id, name
// and arrival intact, and the recovered coflows must run to completion
// without being re-admitted.
func TestServerRecoveryOverRestart(t *testing.T) {
	dir := t.TempDir()
	s, ts, c := testDurableServer(t, dir, 200)

	var admitted []AdmitResponse
	for _, spec := range []struct {
		name string
		size float64
	}{{"restart-a", 2}, {"restart-b", 3}, {"restart-c", 5}} {
		resp, err := c.Admit(testCoflow(t, spec.name, spec.size))
		if err != nil {
			t.Fatalf("admit %s: %v", spec.name, err)
		}
		admitted = append(admitted, resp)
	}
	// Let a few epoch ticks land so the log holds advances, not just admits.
	time.Sleep(30 * time.Millisecond)

	ts.Close()
	s.Kill() // crash-shaped: no drain, no final fsync

	s2, ts2, c2 := testDurableServer(t, dir, 200)
	t.Cleanup(func() {
		ts2.Close()
		s2.Close()
	})

	st, err := c2.Stats()
	if err != nil {
		t.Fatalf("stats after restart: %v", err)
	}
	if st.Admitted != len(admitted) {
		t.Fatalf("recovered daemon admitted = %d, want %d", st.Admitted, len(admitted))
	}
	for _, want := range admitted {
		got, err := c2.Coflow(want.ID)
		if err != nil {
			t.Fatalf("coflow %d after restart: %v", want.ID, err)
		}
		if got.Name != want.Name {
			t.Errorf("coflow %d name = %q after restart, admitted as %q", want.ID, got.Name, want.Name)
		}
		if got.Arrival != want.Arrival {
			t.Errorf("coflow %d arrival = %v after restart, admitted at %v", want.ID, got.Arrival, want.Arrival)
		}
	}

	// The recovered coflows must finish on their own as simulated time resumes.
	deadline := time.Now().Add(10 * time.Second)
	for _, want := range admitted {
		for {
			got, err := c2.Coflow(want.ID)
			if err != nil {
				t.Fatalf("poll coflow %d: %v", want.ID, err)
			}
			if got.Done {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("coflow %d still unfinished after restart: %+v", want.ID, got)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
	final, err := c2.Stats()
	if err != nil {
		t.Fatalf("final stats: %v", err)
	}
	if final.Completed != len(admitted) || final.Admitted != len(admitted) {
		t.Errorf("final stats admitted/completed = %d/%d, want %d/%d",
			final.Admitted, final.Completed, len(admitted), len(admitted))
	}
}

// TestAdmitIdempotency checks the X-Coflow-Id dedupe path: a repeated key
// replays the original admission (same id, one engine admission), the key is
// echoed in the response header, and — with a WAL — the dedupe window
// survives a daemon restart.
func TestAdmitIdempotency(t *testing.T) {
	dir := t.TempDir()
	s, ts, c := testDurableServer(t, dir, 50)
	cf := testCoflow(t, "idem", 3)

	first, err := c.AdmitWithKey(cf, "", "key-A")
	if err != nil {
		t.Fatalf("admit: %v", err)
	}
	second, err := c.AdmitWithKey(cf, "", "key-A")
	if err != nil {
		t.Fatalf("duplicate admit: %v", err)
	}
	if second != first {
		t.Fatalf("duplicate admit response %+v, original %+v", second, first)
	}
	st, err := c.Stats()
	if err != nil {
		t.Fatalf("stats: %v", err)
	}
	if st.Admitted != 1 {
		t.Fatalf("admitted = %d after duplicate request, want 1", st.Admitted)
	}

	// The key is echoed on the wire so callers can correlate retries.
	body, _ := json.Marshal(cf)
	req, _ := http.NewRequest(http.MethodPost, c.BaseURL+"/v1/coflows", bytes.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(IdemHeader, "key-A")
	raw, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("raw admit: %v", err)
	}
	raw.Body.Close()
	if raw.StatusCode != http.StatusCreated {
		t.Errorf("duplicate raw admit status = %d, want 201", raw.StatusCode)
	}
	if got := raw.Header.Get(IdemHeader); got != "key-A" {
		t.Errorf("%s echo = %q, want key-A", IdemHeader, got)
	}

	// Keys survive a crash: the retried request after the restart still
	// dedupes against the WAL-recovered entry.
	ts.Close()
	s.Kill()
	s2, ts2, c2 := testDurableServer(t, dir, 50)
	t.Cleanup(func() {
		ts2.Close()
		s2.Close()
	})
	replayed, err := c2.AdmitWithKey(cf, "", "key-A")
	if err != nil {
		t.Fatalf("admit after restart: %v", err)
	}
	if replayed.ID != first.ID || replayed.Arrival != first.Arrival {
		t.Errorf("admit after restart = %+v, original %+v", replayed, first)
	}
	st2, err := c2.Stats()
	if err != nil {
		t.Fatalf("stats after restart: %v", err)
	}
	if st2.Admitted != 1 {
		t.Errorf("admitted = %d after restart retry, want 1", st2.Admitted)
	}
}

// TestAdmitFailedDurabilityNotCached pins the failed-append dedupe hole: an
// admission whose WAL write fails must 503 AND must not cache a dedupe entry,
// because the client auto-retries 503s with the same X-Coflow-Id — a cached
// entry would replay a 201 for an admission that was never durable and would
// silently vanish on restart.
func TestAdmitFailedDurabilityNotCached(t *testing.T) {
	dir := t.TempDir()
	s, ts, c := testDurableServer(t, dir, 50)
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})

	// Fail the log out from under the daemon: every later append errors, so
	// no admission can reach durability.
	s.wal.Abandon()

	cf := testCoflow(t, "not-durable", 2)
	if _, err := c.AdmitWithKey(cf, "", "key-fail"); err == nil {
		t.Fatal("admit with a failed WAL succeeded; want 503")
	}
	// The retry (same key) must fail again, not replay a cached 201.
	_, err := c.AdmitWithKey(cf, "", "key-fail")
	var apiErr *APIError
	if err == nil {
		t.Fatal("retried admit with a failed WAL succeeded; want 503")
	}
	if errors.As(err, &apiErr) && apiErr.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("retried admit status = %d, want 503", apiErr.StatusCode)
	}
	var cached int
	if err := s.do(func() { cached = len(s.idem) }); err != nil {
		t.Fatalf("inspecting idem map: %v", err)
	}
	if cached != 0 {
		t.Fatalf("idem map holds %d entries after failed admissions, want 0", cached)
	}
}

// TestIdemRetirement pins the dedupe map's bound: completion moves an entry
// onto the tomb queue (still deduplicable through the grace window), and an
// expired tomb evicts it.
func TestIdemRetirement(t *testing.T) {
	s := &Server{
		idem:     map[string]idemEntry{"k1": {resp: AdmitResponse{ID: 7}}},
		idemByID: map[int]string{7: "k1"},
	}
	s.retireIdem([]int{7})
	if _, ok := s.idem["k1"]; !ok {
		t.Fatal("entry evicted at completion; must survive the grace window")
	}
	if _, ok := s.idemByID[7]; ok {
		t.Fatal("completed coflow still indexed in idemByID")
	}
	if len(s.idemTombs) != 1 {
		t.Fatalf("tombs = %d after completion, want 1", len(s.idemTombs))
	}
	// Force the grace window to lapse; the next sweep drops the entry.
	s.idemTombs[0].expires = time.Now().Add(-time.Second)
	s.retireIdem(nil)
	if len(s.idem) != 0 || len(s.idemTombs) != 0 {
		t.Fatalf("after expiry idem=%d tombs=%d, want 0/0", len(s.idem), len(s.idemTombs))
	}
}

// TestAdmitIdempotencyWithoutWAL pins that the dedupe window also works on a
// purely in-memory daemon (it just does not survive restarts there).
func TestAdmitIdempotencyWithoutWAL(t *testing.T) {
	s, c := testServer(t, online.SEBFOnline{}, 50)
	first, err := c.AdmitWithKey(testCoflow(t, "mem-idem", 2), "", "key-B")
	if err != nil {
		t.Fatalf("admit: %v", err)
	}
	second, err := c.AdmitWithKey(testCoflow(t, "mem-idem", 2), "", "key-B")
	if err != nil {
		t.Fatalf("duplicate admit: %v", err)
	}
	if second != first {
		t.Fatalf("duplicate response %+v, original %+v", second, first)
	}
	if st, err := s.Stats(); err != nil || st.Admitted != 1 {
		t.Fatalf("admitted = %d (%v), want 1", st.Admitted, err)
	}
}
