package server

import (
	"net/http"
	"strconv"

	"coflowsched/internal/online"
	"coflowsched/internal/telemetry"
)

// Admit-pipeline stage labels of coflowd_admit_stage_seconds, in pipeline
// order. Every child is created at registration so the family (and each
// stage) is present on the very first scrape, observations or not.
const (
	stageCoalesceWait  = "coalesce-wait"  // handler enqueue → scheduler batch receive
	stageBatchAssembly = "batch-assembly" // queue drain + dedupe/filter pass, per batch
	stageEngineAdmit   = "engine-admit"   // engine.AdmitBatch, per batch
	stageWALAppend     = "wal-append"     // log record append, per admission
	stageGroupCommit   = "group-commit"   // committer fsync, per batch
)

// serverMetrics is coflowd's registry surface: every series /metrics serves.
// Request counters and the tick histogram are instrumented live; the engine
// gauges are refreshed at scrape time from one scheduler round trip (see
// handleMetrics). Metric names are part of the scrape contract — the
// conformance test in internal/telemetry pins them.
type serverMetrics struct {
	reg *telemetry.Registry

	up               *telemetry.Gauge
	simNow           *telemetry.Gauge
	epochs           *telemetry.Counter
	decisions        *telemetry.Counter
	admitted         *telemetry.Counter
	completed        *telemetry.Counter
	coflowsActive    *telemetry.Gauge
	flowsActive      *telemetry.Gauge
	weightedCCT      *telemetry.Gauge
	weightedResponse *telemetry.Gauge
	slowdownP50      *telemetry.Gauge
	slowdownP95      *telemetry.Gauge
	slowdownP99      *telemetry.Gauge
	solveP50         *telemetry.Gauge
	solveP95         *telemetry.Gauge
	solveP99         *telemetry.Gauge
	tickP50          *telemetry.Gauge
	tickP95          *telemetry.Gauge
	tickP99          *telemetry.Gauge
	requests         *telemetry.Counter
	requestErrors    *telemetry.Counter
	tickDuration     *telemetry.Histogram
	admitBatches     *telemetry.Counter
	admitBatchSize   *telemetry.Histogram
	traceSpans       *telemetry.Counter
	walRecords       *telemetry.Counter
	walFsyncs        *telemetry.Counter
	walRecovered     *telemetry.Gauge
	snapshots        *telemetry.Counter

	// Admit-pipeline stage latencies. The stage* fields cache the labeled
	// children so the hot path observes without a map lookup.
	admitStage    *telemetry.HistogramVec
	stageWait     *telemetry.Histogram
	stageAssemble *telemetry.Histogram
	stageEngine   *telemetry.Histogram
	stageAppend   *telemetry.Histogram
	stageCommit   *telemetry.Histogram
	walPerFsync   *telemetry.Histogram

	// Partitioned-tick observability, fed from online.TickStats each tick.
	partRealloc     *telemetry.HistogramVec
	partDirtySuffix *telemetry.Histogram
	partCrossFlows  *telemetry.Counter
	partRounds      *telemetry.Counter
	partImbalance   *telemetry.Gauge
}

// newServerMetrics registers coflowd's metric families. A non-empty shard
// identity becomes a constant {shard="..."} label on every series, so a
// gateway scraping N backends can tell their time series apart.
func newServerMetrics(shard string) *serverMetrics {
	var consts []telemetry.Label
	if shard != "" {
		consts = append(consts, telemetry.Label{Name: "shard", Value: shard})
	}
	reg := telemetry.NewRegistry(consts...)
	m := &serverMetrics{
		reg:              reg,
		up:               reg.Gauge("coflowd_up", "1 while the daemon serves"),
		simNow:           reg.Gauge("coflowd_sim_now", "engine clock in simulated time units"),
		epochs:           reg.Counter("coflowd_epochs_total", "engine advances (epoch ticks)"),
		decisions:        reg.Counter("coflowd_decisions_total", "applied policy decisions"),
		admitted:         reg.Counter("coflowd_coflows_admitted_total", "coflows admitted"),
		completed:        reg.Counter("coflowd_coflows_completed_total", "coflows completed"),
		coflowsActive:    reg.Gauge("coflowd_coflows_active", "admitted, unfinished coflows"),
		flowsActive:      reg.Gauge("coflowd_flows_active", "admitted, unfinished flows"),
		weightedCCT:      reg.Gauge("coflowd_weighted_cct", "sum of weight * completion time over completed coflows"),
		weightedResponse: reg.Gauge("coflowd_weighted_response", "sum of weight * response time over completed coflows"),
		slowdownP50:      reg.Gauge("coflowd_slowdown_p50", "median completed-coflow slowdown (recent window)"),
		slowdownP95:      reg.Gauge("coflowd_slowdown_p95", "p95 completed-coflow slowdown (recent window)"),
		slowdownP99:      reg.Gauge("coflowd_slowdown_p99", "p99 completed-coflow slowdown (recent window)"),
		solveP50:         reg.Gauge("coflowd_solve_latency_seconds_p50", "median policy decide latency (recent window)"),
		solveP95:         reg.Gauge("coflowd_solve_latency_seconds_p95", "p95 policy decide latency (recent window)"),
		solveP99:         reg.Gauge("coflowd_solve_latency_seconds_p99", "p99 policy decide latency (recent window)"),
		tickP50:          reg.Gauge("coflowd_tick_seconds_p50", "median scheduler tick duration (recent window)"),
		tickP95:          reg.Gauge("coflowd_tick_seconds_p95", "p95 scheduler tick duration (recent window)"),
		tickP99:          reg.Gauge("coflowd_tick_seconds_p99", "p99 scheduler tick duration (recent window)"),
		requests:         reg.Counter("coflowd_http_requests_total", "HTTP requests served"),
		requestErrors:    reg.Counter("coflowd_http_request_errors_total", "HTTP requests answered with a 4xx/5xx status"),
		tickDuration:     reg.Histogram("coflowd_tick_duration_seconds", "scheduler tick duration distribution", nil),
		admitBatches:     reg.Counter("coflowd_admit_batches_total", "coalesced admission batches processed by the scheduler"),
		admitBatchSize:   reg.Histogram("coflowd_admit_batch_size", "admissions coalesced per scheduler batch", []float64{1, 2, 4, 8, 16, 32, 64, 128, 256}),
		traceSpans:       reg.Counter("coflowd_trace_spans_total", "lifecycle trace spans recorded"),
		walRecords:       reg.Counter("coflowd_wal_records_total", "write-ahead log records appended this process"),
		walFsyncs:        reg.Counter("coflowd_wal_fsyncs_total", "write-ahead log fsync calls (group commit batches)"),
		walRecovered:     reg.Gauge("coflowd_wal_recovered_coflows", "admitted-but-incomplete coflows restored at boot"),
		snapshots:        reg.Counter("coflowd_snapshots_total", "engine snapshots written"),
		admitStage:       reg.HistogramVec("coflowd_admit_stage_seconds", "admit-pipeline stage latency: coalesce-wait, batch-assembly, engine-admit, wal-append, group-commit", nil, "stage"),
		walPerFsync:      reg.Histogram("coflowd_wal_records_per_fsync", "log records made durable per group-commit fsync", []float64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024}),
		partRealloc:      reg.HistogramVec("coflowd_partition_realloc_seconds", "per-partition-class reallocation worker busy time per tick", nil, "partition"),
		partDirtySuffix:  reg.Histogram("coflowd_partition_dirty_suffix", "deepest dirty-suffix reallocation per tick (flows re-allocated)", []float64{1, 4, 16, 64, 256, 1024, 4096, 16384}),
		partCrossFlows:   reg.Counter("coflowd_partition_cross_flows_total", "cross-partition flow rendezvous records built by parallel redo walks"),
		partRounds:       reg.Counter("coflowd_partition_parallel_rounds_total", "tick reallocation walks that fanned out across partition workers"),
		partImbalance:    reg.Gauge("coflowd_partition_imbalance_ratio", "max/mean partition-worker busy time of the last tick (0 = no fan-out)"),
	}
	m.stageWait = m.admitStage.With(stageCoalesceWait)
	m.stageAssemble = m.admitStage.With(stageBatchAssembly)
	m.stageEngine = m.admitStage.With(stageEngineAdmit)
	m.stageAppend = m.admitStage.With(stageWALAppend)
	m.stageCommit = m.admitStage.With(stageGroupCommit)
	telemetry.RegisterRuntimeCollector(reg)
	m.up.Set(1)
	return m
}

// initPartitions pre-creates the per-partition-class realloc children so the
// family appears on the first scrape of a freshly booted daemon, whatever its
// partition count.
func (m *serverMetrics) initPartitions(parts int) {
	if parts < 1 {
		parts = 1
	}
	for c := 0; c < parts; c++ {
		m.partRealloc.With(strconv.Itoa(c))
	}
}

// observeTickStats folds one tick's allocator-work aggregates into the
// partition metric families. Scheduler goroutine only.
func (m *serverMetrics) observeTickStats(ts online.TickStats) {
	for c, secs := range ts.WorkerSeconds {
		if secs > 0 {
			m.partRealloc.With(strconv.Itoa(c)).Observe(secs)
		}
	}
	if ts.SuffixMax > 0 {
		m.partDirtySuffix.Observe(float64(ts.SuffixMax))
	}
	if ts.CrossFlows > 0 {
		m.partCrossFlows.Add(float64(ts.CrossFlows))
	}
	if ts.ParallelRounds > 0 {
		m.partRounds.Add(float64(ts.ParallelRounds))
	}
	m.partImbalance.Set(ts.ImbalanceRatio)
}

// updateFromEngine refreshes the scrape-time mirrors of the engine's
// aggregate state.
func (m *serverMetrics) updateFromEngine(st online.EngineStats, ticks []float64) {
	m.simNow.Set(st.Now)
	m.epochs.Set(float64(st.Epochs))
	m.decisions.Set(float64(st.Decisions))
	m.admitted.Set(float64(st.Admitted))
	m.completed.Set(float64(st.Completed))
	m.coflowsActive.Set(float64(st.Active))
	m.flowsActive.Set(float64(st.ActiveFlows))
	m.weightedCCT.Set(st.WeightedCCT)
	m.weightedResponse.Set(st.WeightedResponse)
	m.slowdownP50.Set(pct(st.Slowdowns, 50))
	m.slowdownP95.Set(pct(st.Slowdowns, 95))
	m.slowdownP99.Set(pct(st.Slowdowns, 99))
	m.solveP50.Set(pct(st.SolveLatencies, 50))
	m.solveP95.Set(pct(st.SolveLatencies, 95))
	m.solveP99.Set(pct(st.SolveLatencies, 99))
	m.tickP50.Set(pct(ticks, 50))
	m.tickP95.Set(pct(ticks, 95))
	m.tickP99.Set(pct(ticks, 99))
}

// StatusRecorder captures the response code written by a handler. Exported
// for the cluster gateway's request accounting, which mirrors this daemon's.
type StatusRecorder struct {
	http.ResponseWriter
	Code int
}

func (r *StatusRecorder) WriteHeader(code int) {
	r.Code = code
	r.ResponseWriter.WriteHeader(code)
}

// countRequests wraps the mux with request/error accounting for /metrics.
func (s *Server) countRequests(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rec := &StatusRecorder{ResponseWriter: w, Code: http.StatusOK}
		next.ServeHTTP(rec, r)
		s.metrics.requests.Inc()
		if rec.Code >= 400 {
			s.metrics.requestErrors.Inc()
		}
	})
}

// handleMetrics serves the Prometheus text exposition from the shared
// telemetry registry: engine gauges are refreshed from one scheduler round
// trip, then the registry renders every family (HELP/TYPE headers, shard
// labels, histogram buckets) through the one code path coflowgate uses too.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	st, ticks, err := s.metricsSnapshot()
	if err != nil {
		RespondError(w, http.StatusServiceUnavailable, err.Error())
		return
	}
	s.metrics.updateFromEngine(st, ticks)
	spans, _ := s.tracer.Totals()
	s.metrics.traceSpans.Set(float64(spans))
	if s.wal != nil {
		appends, syncs := s.wal.Stats()
		s.metrics.walRecords.Set(float64(appends))
		s.metrics.walFsyncs.Set(float64(syncs))
	}
	s.metrics.reg.Handler().ServeHTTP(w, r)
}
