package server

import (
	"fmt"
	"net/http"
	"strings"
	"sync/atomic"
)

// metrics holds the request-level counters the scheduler goroutine never
// sees; they are updated from handler goroutines with atomics.
type metrics struct {
	requests      atomic.Int64
	requestErrors atomic.Int64
}

// StatusRecorder captures the response code written by a handler. Exported
// for the cluster gateway's request accounting, which mirrors this daemon's.
type StatusRecorder struct {
	http.ResponseWriter
	Code int
}

func (r *StatusRecorder) WriteHeader(code int) {
	r.Code = code
	r.ResponseWriter.WriteHeader(code)
}

// countRequests wraps the mux with request/error accounting for /metrics.
func (s *Server) countRequests(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rec := &StatusRecorder{ResponseWriter: w, Code: http.StatusOK}
		next.ServeHTTP(rec, r)
		s.metrics.requests.Add(1)
		if rec.Code >= 400 {
			s.metrics.requestErrors.Add(1)
		}
	})
}

// handleMetrics serves the Prometheus-style text exposition: one
// `coflowd_*` gauge or counter per line. Only stdlib formatting — the repo
// takes no dependencies — but the format is scrapeable.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	st, ticks, err := s.metricsSnapshot()
	if err != nil {
		RespondError(w, http.StatusServiceUnavailable, err.Error())
		return
	}
	var b strings.Builder
	// With a shard identity configured, every series carries it as a label so
	// a gateway scraping N backends can tell their time series apart.
	labels := ""
	if s.cfg.Shard != "" {
		labels = fmt.Sprintf(`{shard=%q}`, s.cfg.Shard)
	}
	line := func(name string, v float64) {
		fmt.Fprintf(&b, "%s%s %g\n", name, labels, v)
	}
	line("coflowd_up", 1)
	line("coflowd_sim_now", st.Now)
	line("coflowd_epochs_total", float64(st.Epochs))
	line("coflowd_decisions_total", float64(st.Decisions))
	line("coflowd_coflows_admitted_total", float64(st.Admitted))
	line("coflowd_coflows_completed_total", float64(st.Completed))
	line("coflowd_coflows_active", float64(st.Active))
	line("coflowd_flows_active", float64(st.ActiveFlows))
	line("coflowd_weighted_cct", st.WeightedCCT)
	line("coflowd_weighted_response", st.WeightedResponse)
	line("coflowd_slowdown_p50", pct(st.Slowdowns, 50))
	line("coflowd_slowdown_p95", pct(st.Slowdowns, 95))
	line("coflowd_slowdown_p99", pct(st.Slowdowns, 99))
	line("coflowd_solve_latency_seconds_p50", pct(st.SolveLatencies, 50))
	line("coflowd_solve_latency_seconds_p95", pct(st.SolveLatencies, 95))
	line("coflowd_solve_latency_seconds_p99", pct(st.SolveLatencies, 99))
	line("coflowd_tick_seconds_p50", pct(ticks, 50))
	line("coflowd_tick_seconds_p95", pct(ticks, 95))
	line("coflowd_tick_seconds_p99", pct(ticks, 99))
	line("coflowd_http_requests_total", float64(s.metrics.requests.Load()))
	line("coflowd_http_request_errors_total", float64(s.metrics.requestErrors.Load()))
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write([]byte(b.String()))
}
