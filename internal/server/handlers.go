package server

import (
	"encoding/json"
	"errors"
	"net/http"
	"net/http/pprof"
	"strconv"
	"time"

	"coflowsched/internal/coflow"
	"coflowsched/internal/online"
	"coflowsched/internal/stats"
	"coflowsched/internal/telemetry"
)

// Wire types. POST /v1/coflows takes a coflow.Coflow JSON object directly
// (the same shape coflow instances serialize with), with per-flow "release"
// fields interpreted as offsets from the admission time; everything below is
// a response.

// AdmitResponse acknowledges POST /v1/coflows.
type AdmitResponse struct {
	ID int `json:"id"`
	// Name echoes the submitted coflow name.
	Name string `json:"name,omitempty"`
	// Arrival is the simulated admission time assigned by the server.
	Arrival float64 `json:"arrival"`
	// Trace is the coflow's lifecycle trace id: the X-Coflow-Trace request
	// header when the caller (a gateway) sent one, otherwise minted here.
	// Spans under this id appear at /debug/traces.
	Trace string `json:"trace,omitempty"`
}

// CoflowResponse is GET /v1/coflows/{id}: live status, CCT once done.
type CoflowResponse struct {
	ID             int     `json:"id"`
	Name           string  `json:"name,omitempty"`
	Weight         float64 `json:"weight"`
	Arrival        float64 `json:"arrival"`
	NumFlows       int     `json:"num_flows"`
	FlowsDone      int     `json:"flows_done"`
	TotalBytes     float64 `json:"total_bytes"`
	RemainingBytes float64 `json:"remaining_bytes"`
	Done           bool    `json:"done"`
	// Completion is the absolute completion time; CCT the response time
	// (completion - arrival); Slowdown the response over the coflow's
	// isolated bottleneck time. Present once Done.
	Completion *float64 `json:"completion,omitempty"`
	CCT        *float64 `json:"cct,omitempty"`
	Slowdown   *float64 `json:"slowdown,omitempty"`
}

// ScheduleEntry identifies one flow in the priority order.
type ScheduleEntry struct {
	Coflow int `json:"coflow"`
	Flow   int `json:"flow"`
}

// ScheduleResponse is GET /v1/schedule: the applied priority order over
// residual flows, highest priority first.
type ScheduleResponse struct {
	Now    float64         `json:"now"`
	Policy string          `json:"policy"`
	Order  []ScheduleEntry `json:"order"`
}

// StatsResponse is GET /v1/stats.
type StatsResponse struct {
	Now              float64 `json:"now"`
	Policy           string  `json:"policy"`
	EpochLength      float64 `json:"epoch_length"`
	Epochs           int     `json:"epochs"`
	Decisions        int     `json:"decisions"`
	Admitted         int     `json:"admitted"`
	Completed        int     `json:"completed"`
	Active           int     `json:"active"`
	ActiveFlows      int     `json:"active_flows"`
	WeightedCCT      float64 `json:"weighted_cct"`
	WeightedResponse float64 `json:"weighted_response"`
	SlowdownP50      float64 `json:"slowdown_p50"`
	SlowdownP95      float64 `json:"slowdown_p95"`
	SlowdownP99      float64 `json:"slowdown_p99"`
	SolveMsP50       float64 `json:"solve_ms_p50"`
	SolveMsP95       float64 `json:"solve_ms_p95"`
	SolveMsP99       float64 `json:"solve_ms_p99"`
	// Shard echoes the daemon's cluster identity (empty standalone).
	Shard string `json:"shard,omitempty"`
	// Slowdowns and SolveLatencies are the raw bounded sample reservoirs
	// behind the percentiles (solve latencies in seconds). Only populated
	// when the request asks for them (GET /v1/stats?samples=1): they are what
	// a cluster gateway needs to merge percentile tails across shards, which
	// summary percentiles alone cannot do.
	Slowdowns      []float64 `json:"slowdowns,omitempty"`
	SolveLatencies []float64 `json:"solve_latencies,omitempty"`
}

// HealthResponse is GET /healthz.
type HealthResponse struct {
	Status   string  `json:"status"`
	Policy   string  `json:"policy"`
	Now      float64 `json:"now"`
	Admitted int     `json:"admitted"`
}

// NetworkResponse is GET /v1/network: what a load generator needs to build
// valid coflows — the topology's host node ids.
type NetworkResponse struct {
	Nodes int   `json:"nodes"`
	Edges int   `json:"edges"`
	Hosts []int `json:"hosts"`
}

// errorResponse is the JSON body of every non-2xx response.
type errorResponse struct {
	Error string `json:"error"`
}

// Handler returns the server's HTTP API with request accounting applied.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/coflows", s.handleAdmit)
	mux.HandleFunc("GET /v1/coflows/{id}", s.handleCoflow)
	mux.HandleFunc("GET /v1/schedule", s.handleSchedule)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("GET /v1/network", s.handleNetwork)
	mux.HandleFunc("GET /v1/epochs", s.handleEpochs)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.Handle("GET /debug/traces", s.tracer.Handler())
	RegisterPprof(mux)
	return s.countRequests(mux)
}

// RegisterPprof mounts the net/http/pprof profiling endpoints on a non-default
// mux. Shared with the cluster gateway so both daemons profile identically.
func RegisterPprof(mux *http.ServeMux) {
	mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
}

// MaxBodyBytes bounds POST bodies; the largest legitimate coflows are a few
// thousand flows, well under this. Shared with the cluster gateway so the
// daemon and the front door enforce the same admission cap.
const MaxBodyBytes = 8 << 20

func (s *Server) handleAdmit(w http.ResponseWriter, r *http.Request) {
	var cf coflow.Coflow
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, MaxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&cf); err != nil {
		RespondError(w, http.StatusBadRequest, "decoding coflow: "+err.Error())
		return
	}
	// The gateway propagates its trace id in the header; a standalone daemon
	// mints one so single-shard deployments still get lifecycle traces.
	trace := r.Header.Get(telemetry.TraceHeader)
	if trace == "" {
		trace = telemetry.NewTraceID()
	}
	// An idempotency key makes the admission exactly-once across retries: a
	// repeated key replays the original response instead of admitting again,
	// and with a WAL the key survives a daemon restart.
	key := r.Header.Get(IdemHeader)
	t0 := time.Now()
	// Admissions go through the coalescing queue, not s.do: everything queued
	// behind one scheduler receive is admitted as a single batch — one channel
	// round-trip and one WAL group commit for all of it (see admit.go).
	req := &admitReq{cf: cf, key: key, trace: trace, enq: t0, done: make(chan struct{})}
	// submitAdmit returns after the batch's records are durable: the committer
	// goroutine group-commits the fsync for the whole batch (and any batches
	// queued behind it) before releasing the waiters, so a slow disk stalls
	// this request, not the epoch loop. A duplicate replays only after the
	// same durability point — its original append is covered by the commit.
	err := s.submitAdmit(req)
	resp, dup := req.resp, req.dup
	admitErr, walErr := req.admitErr, req.walErr
	if err == nil && admitErr == nil && walErr == nil && !dup {
		s.tracer.Record(telemetry.Span{
			Name:     "shard-admit",
			Trace:    trace,
			Coflow:   resp.ID,
			Duration: time.Since(t0).Seconds(),
			Attrs:    map[string]string{"flows": strconv.Itoa(len(cf.Flows))},
		})
		s.recordStageSpans(req)
		s.logger.Debug("coflow admitted", "component", "coflowd",
			"coflow", resp.ID, "name", cf.Name, "flows", len(cf.Flows), "trace", trace)
	}
	if key != "" {
		w.Header().Set(IdemHeader, key)
	}
	switch {
	case err != nil:
		RespondError(w, http.StatusServiceUnavailable, err.Error())
	case errors.Is(admitErr, errDraining):
		RespondError(w, http.StatusServiceUnavailable, admitErr.Error())
	case admitErr != nil:
		RespondError(w, http.StatusBadRequest, admitErr.Error())
	case walErr != nil:
		// The coflow may be admitted in memory but is not durable; the sticky
		// log error keeps the daemon read-only, so a retry cannot double-admit.
		RespondError(w, http.StatusServiceUnavailable, "durability failure: "+walErr.Error())
	default:
		RespondJSON(w, http.StatusCreated, resp)
	}
}

func (s *Server) handleCoflow(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		RespondError(w, http.StatusBadRequest, "invalid coflow id")
		return
	}
	var st online.CoflowStatus
	var found bool
	if err := s.do(func() { st, found = s.eng.CoflowStatus(id) }); err != nil {
		RespondError(w, http.StatusServiceUnavailable, err.Error())
		return
	}
	if !found {
		RespondError(w, http.StatusNotFound, "unknown coflow id")
		return
	}
	resp := CoflowResponse{
		ID:             st.ID,
		Name:           st.Name,
		Weight:         st.Weight,
		Arrival:        st.Arrival,
		NumFlows:       st.NumFlows,
		FlowsDone:      st.FlowsDone,
		TotalBytes:     st.TotalBytes,
		RemainingBytes: st.RemainingBytes,
		Done:           st.Done,
	}
	if st.Done {
		completion, cct, slowdown := st.Completion, st.Response, st.Slowdown
		resp.Completion, resp.CCT, resp.Slowdown = &completion, &cct, &slowdown
	}
	RespondJSON(w, http.StatusOK, resp)
}

func (s *Server) handleSchedule(w http.ResponseWriter, r *http.Request) {
	var resp ScheduleResponse
	if err := s.do(func() {
		resp.Now = s.eng.Now()
		resp.Policy = s.cfg.Policy.Name()
		for _, ref := range s.eng.Order() {
			resp.Order = append(resp.Order, ScheduleEntry{Coflow: ref.Coflow, Flow: ref.Index})
		}
	}); err != nil {
		RespondError(w, http.StatusServiceUnavailable, err.Error())
		return
	}
	if resp.Order == nil {
		resp.Order = []ScheduleEntry{}
	}
	RespondJSON(w, http.StatusOK, resp)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	st, err := s.Stats()
	if err != nil {
		RespondError(w, http.StatusServiceUnavailable, err.Error())
		return
	}
	resp := StatsResponse{
		Now:              st.Now,
		Policy:           s.cfg.Policy.Name(),
		EpochLength:      s.cfg.EpochLength,
		Epochs:           st.Epochs,
		Decisions:        st.Decisions,
		Admitted:         st.Admitted,
		Completed:        st.Completed,
		Active:           st.Active,
		ActiveFlows:      st.ActiveFlows,
		WeightedCCT:      st.WeightedCCT,
		WeightedResponse: st.WeightedResponse,
		SlowdownP50:      pct(st.Slowdowns, 50),
		SlowdownP95:      pct(st.Slowdowns, 95),
		SlowdownP99:      pct(st.Slowdowns, 99),
		SolveMsP50:       pct(st.SolveLatencies, 50) * 1e3,
		SolveMsP95:       pct(st.SolveLatencies, 95) * 1e3,
		SolveMsP99:       pct(st.SolveLatencies, 99) * 1e3,
		Shard:            s.cfg.Shard,
	}
	if r.URL.Query().Get("samples") != "" {
		resp.Slowdowns = st.Slowdowns
		resp.SolveLatencies = st.SolveLatencies
	}
	RespondJSON(w, http.StatusOK, resp)
}

func (s *Server) handleNetwork(w http.ResponseWriter, r *http.Request) {
	g := s.cfg.Network
	resp := NetworkResponse{Nodes: g.NumNodes(), Edges: g.NumEdges()}
	for _, h := range g.Hosts() {
		resp.Hosts = append(resp.Hosts, int(h))
	}
	RespondJSON(w, http.StatusOK, resp)
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	var resp HealthResponse
	if err := s.do(func() {
		resp = HealthResponse{
			Status:   "ok",
			Policy:   s.cfg.Policy.Name(),
			Now:      s.eng.Now(),
			Admitted: s.eng.NumCoflows(),
		}
	}); err != nil {
		RespondError(w, http.StatusServiceUnavailable, err.Error())
		return
	}
	RespondJSON(w, http.StatusOK, resp)
}

// pct keeps NaN out of JSON: encoding/json cannot marshal it.
func pct(xs []float64, p float64) float64 { return stats.PercentileOr(xs, p, 0) }

// RespondJSON writes one JSON response. Exported for the cluster gateway,
// which mirrors this daemon's wire behavior and must not drift from it.
func RespondJSON(w http.ResponseWriter, code int, payload any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(payload)
}

// RespondError writes the JSON error envelope every non-2xx response uses
// (the shape decodeResponse and the gateway parse back out).
func RespondError(w http.ResponseWriter, code int, msg string) {
	RespondJSON(w, code, errorResponse{Error: msg})
}
