package server

import (
	"net/http/httptest"
	"testing"

	"coflowsched/internal/graph"
	"coflowsched/internal/online"
	"coflowsched/internal/workload"
)

// TestClosedLoopReplay is the repo's first end-to-end load-testing scenario:
// a live daemon with an accelerated clock, and the load generator replaying
// a ≥100-coflow Poisson arrival process against it over real HTTP. Every
// request must succeed and every coflow must finish.
func TestClosedLoopReplay(t *testing.T) {
	s, err := New(Config{
		Network:     graph.FatTree(4, 1),
		Policy:      online.SEBFOnline{},
		EpochLength: 2,
		TimeScale:   1000, // keep the simulated network far ahead of the replay
		Logf:        t.Logf,
	})
	if err != nil {
		t.Fatalf("new server: %v", err)
	}
	ts := httptest.NewServer(s.Handler())
	defer func() {
		ts.Close()
		s.Close()
	}()

	const coflows = 120
	report, err := RunLoad(NewClient(ts.URL), LoadConfig{
		Coflows:      coflows,
		Width:        2,
		MeanSize:     3,
		Rate:         400, // wall-clock requests per second
		Concurrency:  8,
		Seed:         42,
		WaitComplete: true,
		Logf:         t.Logf,
	})
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	t.Logf("load report: %s", report)

	if report.Requests != coflows {
		t.Errorf("sent %d requests, want %d", report.Requests, coflows)
	}
	if report.Failures != 0 {
		t.Errorf("%d failed requests (first: %s)", report.Failures, report.FirstError)
	}
	if report.Completed != coflows {
		t.Errorf("completed %d of %d coflows", report.Completed, coflows)
	}
	if report.AchievedRPS <= 0 || report.LatencyP95 <= 0 {
		t.Errorf("degenerate report: %+v", report)
	}

	// The daemon's own accounting must agree with the client's view.
	st, err := s.Stats()
	if err != nil {
		t.Fatalf("stats: %v", err)
	}
	if st.Admitted != coflows || st.Completed != coflows {
		t.Errorf("server saw admitted=%d completed=%d, want %d/%d", st.Admitted, st.Completed, coflows, coflows)
	}
	if st.WeightedCCT <= 0 || st.WeightedResponse <= 0 {
		t.Errorf("server objectives not positive: %+v", st)
	}
	if st.Decisions == 0 {
		t.Errorf("no policy decisions during a %d-coflow replay", coflows)
	}
}

// TestScenarioReplay drives the daemon with a prebuilt registry scenario on a
// compressed clock — the path behind `coflowload -scenario` — including the
// host remapping from the scenario's star topology onto the daemon's
// fat-tree.
func TestScenarioReplay(t *testing.T) {
	sc, ok := workload.LookupScenario("incast")
	if !ok {
		t.Fatalf("incast scenario not registered")
	}
	inst, arrivals, err := sc.Build()
	if err != nil {
		t.Fatalf("building scenario: %v", err)
	}

	s, err := New(Config{
		Network:     graph.FatTree(4, 1),
		Policy:      online.SEBFOnline{},
		EpochLength: 2,
		TimeScale:   2000, // keep the simulated network far ahead of the replay
		Logf:        t.Logf,
	})
	if err != nil {
		t.Fatalf("new server: %v", err)
	}
	ts := httptest.NewServer(s.Handler())
	defer func() {
		ts.Close()
		s.Close()
	}()

	report, err := RunLoad(NewClient(ts.URL), LoadConfig{
		Instance:     inst,
		Arrivals:     arrivals,
		SpeedUp:      50, // ~25 simulated units of arrivals in ~0.5s wall
		Concurrency:  4,
		WaitComplete: true,
		Logf:         t.Logf,
	})
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	t.Logf("scenario replay report: %s", report)
	if report.Requests != len(inst.Coflows) {
		t.Errorf("sent %d requests, want %d", report.Requests, len(inst.Coflows))
	}
	if report.Failures != 0 {
		t.Errorf("%d failed requests (first: %s)", report.Failures, report.FirstError)
	}
	if report.Completed != len(inst.Coflows) {
		t.Errorf("completed %d of %d coflows", report.Completed, len(inst.Coflows))
	}
}
