package server

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"coflowsched/internal/coflow"
	"coflowsched/internal/durable"
	"coflowsched/internal/graph"
	"coflowsched/internal/online"
)

// Crash-injection differential harness. A deterministic script of engine
// operations (admissions and decide+advance epochs) runs once on a reference
// engine that never crashes, and once per kill point with a WAL: the run is
// cut at the kill point, the log abandoned the way a crash would leave it,
// the engine rebuilt through recoverState, and the script's remainder
// resumed on the recovered engine. After draining both, every coflow must
// exist on both sides with the same name, arrival and completion time — the
// engine is deterministic, so recovery that is anything short of exact shows
// up as a completion-time drift here.

// crashOp is one scripted engine operation: an admission (cf != nil) at
// simulated time at, or a decide+advance epoch to time to.
type crashOp struct {
	cf *coflow.Coflow
	at float64
	to float64
}

// crashNet is the topology every harness engine runs on. Built fresh per
// engine — construction is deterministic, so routing decisions agree.
func crashNet() *graph.Graph { return graph.FatTree(4, 1) }

// crashScript builds the deterministic op sequence: 8 epochs of 1.5 time
// units, two randomized admissions before each advance.
func crashScript() []crashOp {
	hosts := crashNet().Hosts()
	rng := rand.New(rand.NewSource(11))
	var ops []crashOp
	now, next := 0.0, 0
	for e := 0; e < 8; e++ {
		for a := 0; a < 2; a++ {
			cf := coflow.Coflow{Name: fmt.Sprintf("crash-%d", next), Weight: 0.5 + rng.Float64()}
			width := 2 + rng.Intn(3)
			for f := 0; f < width; f++ {
				si, di := rng.Intn(len(hosts)), rng.Intn(len(hosts))
				if si == di {
					di = (di + 1) % len(hosts)
				}
				cf.Flows = append(cf.Flows, coflow.Flow{
					Source:  hosts[si],
					Dest:    hosts[di],
					Size:    1 + 4*rng.Float64(),
					Release: rng.Float64(),
				})
			}
			ops = append(ops, crashOp{cf: &cf, at: now + rng.Float64()})
			next++
		}
		now += 1.5
		ops = append(ops, crashOp{to: now})
	}
	return ops
}

// crashEngine builds an engine with the harness configuration (the same one
// crashConfig hands recoverState).
func crashEngine(t *testing.T) *online.Engine {
	t.Helper()
	eng, err := online.NewEngine(crashNet(), online.SEBFOnline{}, online.Config{EpochLength: 2})
	if err != nil {
		t.Fatalf("new engine: %v", err)
	}
	return eng
}

// crashConfig is the server config the harness recovers with.
func crashConfig(t *testing.T, dir string) Config {
	t.Helper()
	cfg, err := Config{
		Network:     crashNet(),
		Policy:      online.SEBFOnline{},
		EpochLength: 2,
		WALDir:      dir,
		Logf:        t.Logf,
	}.withDefaults()
	if err != nil {
		t.Fatalf("config: %v", err)
	}
	return cfg
}

// crashRunner drives a script against one engine, mirroring every operation
// into the WAL exactly the way the live daemon logs it (admissions
// group-committed, epochs logged as decide-advances). wal == nil is the
// reference configuration.
type crashRunner struct {
	t   *testing.T
	eng *online.Engine
	wal *durable.Log
}

func (r *crashRunner) run(op crashOp) {
	r.t.Helper()
	if op.cf != nil {
		now := op.at
		if n := r.eng.Now(); now < n {
			now = n
		}
		id, err := r.eng.Admit(*op.cf, now)
		if err != nil {
			r.t.Fatalf("admit %s: %v", op.cf.Name, err)
		}
		if r.wal != nil {
			seq, err := r.wal.Append(&durable.Record{Type: durable.RecAdmit, Admit: &durable.AdmitRecord{
				ID: id, Now: now, Spec: *op.cf,
			}})
			if err != nil {
				r.t.Fatalf("wal append admit: %v", err)
			}
			if err := r.wal.Commit(seq); err != nil {
				r.t.Fatalf("wal commit admit: %v", err)
			}
		}
		return
	}
	// One epoch: a synchronous decide then the advance, which is exactly what
	// a Decide-flagged advance record replays.
	if err := r.eng.DecideSync(); err != nil {
		r.t.Fatalf("decide: %v", err)
	}
	if op.to > r.eng.Now() {
		if err := r.eng.AdvanceTo(op.to); err != nil {
			r.t.Fatalf("advance to %v: %v", op.to, err)
		}
	}
	if r.wal != nil {
		// Not committed: like the live tick path, epoch records ride the next
		// admission's group commit (or stay in the page cache — a process
		// crash does not lose them).
		if _, err := r.wal.Append(&durable.Record{Type: durable.RecAdvance, Advance: &durable.AdvanceRecord{
			Now: r.eng.Now(), Decide: true,
		}}); err != nil {
			r.t.Fatalf("wal append advance: %v", err)
		}
	}
}

// crashOutcome is one coflow's observable fate.
type crashOutcome struct {
	name       string
	arrival    float64
	completion float64
}

// drainOutcomes runs the engine to completion and collects every coflow's
// outcome by id.
func drainOutcomes(t *testing.T, eng *online.Engine) map[int]crashOutcome {
	t.Helper()
	if err := eng.Drain(); err != nil {
		t.Fatalf("drain: %v", err)
	}
	out := make(map[int]crashOutcome, eng.NumCoflows())
	for id := 0; id < eng.NumCoflows(); id++ {
		st, ok := eng.CoflowStatus(id)
		if !ok {
			t.Fatalf("coflow %d vanished", id)
		}
		if !st.Done {
			t.Fatalf("coflow %d not done after drain: %+v", id, st)
		}
		out[id] = crashOutcome{name: st.Name, arrival: st.Arrival, completion: st.Completion}
	}
	return out
}

// referenceOutcomes runs the whole script on a never-crashed engine.
func referenceOutcomes(t *testing.T, ops []crashOp) map[int]crashOutcome {
	t.Helper()
	r := &crashRunner{t: t, eng: crashEngine(t)}
	for _, op := range ops {
		r.run(op)
	}
	return drainOutcomes(t, r.eng)
}

// assertOutcomesMatch compares a recovered run against the reference within
// the harness tolerance.
func assertOutcomesMatch(t *testing.T, ref, got map[int]crashOutcome) {
	t.Helper()
	const tol = 1e-9
	if len(got) != len(ref) {
		t.Fatalf("recovered run finished %d coflows, reference %d", len(got), len(ref))
	}
	for id, want := range ref {
		have, ok := got[id]
		if !ok {
			t.Errorf("coflow %d missing from recovered run", id)
			continue
		}
		if have.name != want.name {
			t.Errorf("coflow %d name = %q, reference %q", id, have.name, want.name)
		}
		if math.Abs(have.arrival-want.arrival) > tol {
			t.Errorf("coflow %d arrival = %v, reference %v", id, have.arrival, want.arrival)
		}
		if math.Abs(have.completion-want.completion) > tol {
			t.Errorf("coflow %d completion = %v, reference %v (drift %g)",
				id, have.completion, want.completion, math.Abs(have.completion-want.completion))
		}
	}
}

// killPoints picks the op indices the differential test crashes after: both
// boundaries plus a randomized sample in between.
func killPoints(n int) []int {
	rng := rand.New(rand.NewSource(42))
	set := map[int]bool{1: true, n: true}
	for len(set) < 8 {
		set[1+rng.Intn(n)] = true
	}
	out := make([]int, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

// TestCrashRecoveryDifferential is the core crash-injection harness: for each
// kill point k, run ops[:k] with a WAL, abandon the log mid-flight, recover,
// resume ops[k:], and demand the drained outcome is indistinguishable from
// the never-crashed reference.
func TestCrashRecoveryDifferential(t *testing.T) {
	ops := crashScript()
	ref := referenceOutcomes(t, ops)

	for _, k := range killPoints(len(ops)) {
		t.Run(fmt.Sprintf("kill-after-%d", k), func(t *testing.T) {
			dir := t.TempDir()
			wal, err := durable.Open(dir, durable.Options{})
			if err != nil {
				t.Fatalf("open wal: %v", err)
			}
			r := &crashRunner{t: t, eng: crashEngine(t), wal: wal}
			for _, op := range ops[:k] {
				r.run(op)
			}
			wal.Abandon() // crash: no final fsync

			rec, err := recoverState(crashConfig(t, dir))
			if err != nil {
				t.Fatalf("recover after op %d: %v", k, err)
			}
			resumed := &crashRunner{t: t, eng: rec.eng, wal: rec.wal}
			for _, op := range ops[k:] {
				resumed.run(op)
			}
			if err := rec.wal.Close(); err != nil {
				t.Fatalf("close recovered wal: %v", err)
			}
			assertOutcomesMatch(t, ref, drainOutcomes(t, rec.eng))
		})
	}
}

// TestCrashRecoveryWithSnapshots interposes periodic snapshot+truncate cycles
// (the production snapshot protocol, run inline) before the crash, so
// recovery exercises RestoreEngine plus a log suffix rather than a full
// replay.
func TestCrashRecoveryWithSnapshots(t *testing.T) {
	ops := crashScript()
	ref := referenceOutcomes(t, ops)

	dir := t.TempDir()
	store, err := durable.NewDirStore(filepath.Join(dir, "snapshots"))
	if err != nil {
		t.Fatalf("dir store: %v", err)
	}
	wal, err := durable.Open(dir, durable.Options{})
	if err != nil {
		t.Fatalf("open wal: %v", err)
	}
	r := &crashRunner{t: t, eng: crashEngine(t), wal: wal}
	kill := len(ops) - 3
	for i, op := range ops[:kill] {
		r.run(op)
		if (i+1)%5 == 0 {
			seq := wal.LastSeq()
			if _, err := durable.WriteSnapshot(context.Background(), store, seq,
				serverPersist{Engine: r.eng.ExportState()}); err != nil {
				t.Fatalf("snapshot at op %d: %v", i+1, err)
			}
			if err := wal.TruncateBefore(seq + 1); err != nil {
				t.Fatalf("truncate at op %d: %v", i+1, err)
			}
		}
	}
	wal.Abandon()

	rec, err := recoverState(crashConfig(t, dir))
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	resumed := &crashRunner{t: t, eng: rec.eng, wal: rec.wal}
	for _, op := range ops[kill:] {
		resumed.run(op)
	}
	if err := rec.wal.Close(); err != nil {
		t.Fatalf("close recovered wal: %v", err)
	}
	assertOutcomesMatch(t, ref, drainOutcomes(t, rec.eng))
}

// TestRecoveryToleratesTornTail appends a half-written frame to the final
// segment — the footprint of a crash mid-append — and checks recovery shrugs
// it off: the torn bytes are truncated away and the log stays appendable.
func TestRecoveryToleratesTornTail(t *testing.T) {
	ops := crashScript()
	ref := referenceOutcomes(t, ops)

	dir := t.TempDir()
	wal, err := durable.Open(dir, durable.Options{})
	if err != nil {
		t.Fatalf("open wal: %v", err)
	}
	r := &crashRunner{t: t, eng: crashEngine(t), wal: wal}
	for _, op := range ops {
		r.run(op)
	}
	wal.Abandon()

	segs, err := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no segments in %s (%v)", dir, err)
	}
	sort.Strings(segs)
	frame := durable.AppendFrame(nil, []byte(`{"seq":999,"type":"advance","advance":{"now":1}}`))
	f, err := os.OpenFile(segs[len(segs)-1], os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatalf("open segment: %v", err)
	}
	if _, err := f.Write(frame[:len(frame)-5]); err != nil {
		t.Fatalf("write torn tail: %v", err)
	}
	f.Close()

	rec, err := recoverState(crashConfig(t, dir))
	if err != nil {
		t.Fatalf("recover with torn tail: %v", err)
	}
	// The repaired log must accept new appends where the torn record was.
	seq, err := rec.wal.Append(&durable.Record{Type: durable.RecAdvance,
		Advance: &durable.AdvanceRecord{Now: rec.eng.Now()}})
	if err != nil {
		t.Fatalf("append after repair: %v", err)
	}
	if err := rec.wal.Commit(seq); err != nil {
		t.Fatalf("commit after repair: %v", err)
	}
	if err := rec.wal.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	assertOutcomesMatch(t, ref, drainOutcomes(t, rec.eng))
}

// TestRecoveryRefusesBitFlip flips one payload byte mid-log and checks boot
// fails with ErrCorrupt: a daemon must not serve from state it cannot vouch
// for.
func TestRecoveryRefusesBitFlip(t *testing.T) {
	ops := crashScript()
	dir := t.TempDir()
	wal, err := durable.Open(dir, durable.Options{})
	if err != nil {
		t.Fatalf("open wal: %v", err)
	}
	r := &crashRunner{t: t, eng: crashEngine(t), wal: wal}
	for _, op := range ops {
		r.run(op)
	}
	wal.Abandon()

	segs, err := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no segments in %s (%v)", dir, err)
	}
	sort.Strings(segs)
	data, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatalf("read segment: %v", err)
	}
	data[12] ^= 0x40 // inside the first record's payload: CRC must catch it
	if err := os.WriteFile(segs[0], data, 0o644); err != nil {
		t.Fatalf("write corrupted segment: %v", err)
	}

	if _, err := recoverState(crashConfig(t, dir)); !errors.Is(err, durable.ErrCorrupt) {
		t.Fatalf("recover from bit-flipped log: err = %v, want ErrCorrupt", err)
	}
}

// TestRecoveryFallsBackToOlderSnapshot corrupts the newest snapshot and
// checks boot restores the older one and replays the longer log suffix,
// still landing on the reference outcome.
func TestRecoveryFallsBackToOlderSnapshot(t *testing.T) {
	ops := crashScript()
	ref := referenceOutcomes(t, ops)

	dir := t.TempDir()
	snapDir := filepath.Join(dir, "snapshots")
	store, err := durable.NewDirStore(snapDir)
	if err != nil {
		t.Fatalf("dir store: %v", err)
	}
	wal, err := durable.Open(dir, durable.Options{})
	if err != nil {
		t.Fatalf("open wal: %v", err)
	}
	r := &crashRunner{t: t, eng: crashEngine(t), wal: wal}
	snapshot := func() {
		// Deliberately no truncation: the fallback needs the full suffix after
		// the OLDER snapshot to still be on disk.
		if _, err := durable.WriteSnapshot(context.Background(), store, wal.LastSeq(),
			serverPersist{Engine: r.eng.ExportState()}); err != nil {
			t.Fatalf("snapshot: %v", err)
		}
	}
	half := len(ops) / 2
	for _, op := range ops[:half] {
		r.run(op)
	}
	snapshot()
	for _, op := range ops[half:] {
		r.run(op)
	}
	snapshot()
	wal.Abandon()

	snaps, err := filepath.Glob(filepath.Join(snapDir, "snap-*.json"))
	if err != nil || len(snaps) != 2 {
		t.Fatalf("snapshots on disk = %v (%v), want 2", snaps, err)
	}
	sort.Strings(snaps)
	if err := os.WriteFile(snaps[len(snaps)-1], []byte("{torn"), 0o644); err != nil {
		t.Fatalf("corrupt newest snapshot: %v", err)
	}

	rec, err := recoverState(crashConfig(t, dir))
	if err != nil {
		t.Fatalf("recover with corrupt newest snapshot: %v", err)
	}
	if err := rec.wal.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	assertOutcomesMatch(t, ref, drainOutcomes(t, rec.eng))
}
