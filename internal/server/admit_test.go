package server

import (
	"fmt"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"coflowsched/internal/coflow"
	"coflowsched/internal/graph"
	"coflowsched/internal/online"
)

// newAdmitTestServer builds a frozen-clock daemon (no epoch ticks racing the
// test) and its HTTP front end.
func newAdmitTestServer(t *testing.T, walDir string) (*Server, *httptest.Server) {
	t.Helper()
	cfg := Config{
		Network:     graph.FatTree(4, 1),
		Policy:      online.SEBFOnline{},
		EpochLength: 2,
		TimeScale:   1e-9,
		Logf:        t.Logf,
	}
	if walDir != "" {
		cfg.WALDir = walDir
		cfg.SnapshotInterval = -1
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("new server: %v", err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

func admitSpec(i int) coflow.Coflow {
	hosts := graph.FatTree(4, 1).Hosts()
	return coflow.Coflow{
		Name: fmt.Sprintf("batch-%d", i), Weight: 1,
		Flows: []coflow.Flow{
			{Source: hosts[i%8], Dest: hosts[8+i%8], Size: 5},
			{Source: hosts[(i+3)%16], Dest: hosts[(i+9)%16], Size: 3},
		},
	}
}

// blockScheduler parks the scheduler goroutine on a command until the
// returned release function is called, so admissions submitted meanwhile
// pile up in the coalescing queue and must be processed as one batch.
func blockScheduler(t *testing.T, s *Server) (release func()) {
	t.Helper()
	gate := make(chan struct{})
	entered := make(chan struct{})
	go func() {
		_ = s.do(func() {
			close(entered)
			<-gate
		})
	}()
	<-entered
	return func() { close(gate) }
}

// waitQueued spins until n admissions sit in the coalescing queue (the
// scheduler must be blocked, so the count can only grow).
func waitQueued(t *testing.T, s *Server, n int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for len(s.admitC) < n {
		if time.Now().After(deadline) {
			t.Fatalf("only %d of %d admissions queued", len(s.admitC), n)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestAdmitCoalescing queues many concurrent admissions behind a stalled
// scheduler and checks they are all admitted correctly in one (or very few)
// batches: distinct ids, dense id space, correct per-request responses.
func TestAdmitCoalescing(t *testing.T) {
	for _, walled := range []bool{false, true} {
		name := "wal=off"
		dir := ""
		if walled {
			name = "wal=on"
			dir = t.TempDir()
		}
		t.Run(name, func(t *testing.T) {
			s, ts := newAdmitTestServer(t, dir)
			c := NewClient(ts.URL)

			const n = 24
			release := blockScheduler(t, s)
			batchesBefore := s.metrics.admitBatches.Value()
			var wg sync.WaitGroup
			ids := make([]int, n)
			errs := make([]error, n)
			started := make(chan struct{}, n)
			for i := 0; i < n; i++ {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					started <- struct{}{}
					resp, err := c.Admit(admitSpec(i))
					if err != nil {
						errs[i] = err
						return
					}
					ids[i] = resp.ID
				}(i)
			}
			for i := 0; i < n; i++ {
				<-started
			}
			waitQueued(t, s, n)
			release()
			wg.Wait()

			seen := make(map[int]bool, n)
			for i := 0; i < n; i++ {
				if errs[i] != nil {
					t.Fatalf("admit %d: %v", i, errs[i])
				}
				if seen[ids[i]] {
					t.Fatalf("duplicate coflow id %d", ids[i])
				}
				seen[ids[i]] = true
			}
			for id := 0; id < n; id++ {
				if !seen[id] {
					t.Fatalf("id space not dense: %d missing", id)
				}
			}
			st, err := s.Stats()
			if err != nil {
				t.Fatalf("stats: %v", err)
			}
			if st.Admitted != n {
				t.Fatalf("admitted %d coflows, want %d", st.Admitted, n)
			}
			// The queue was fully loaded before release, so the scheduler
			// should have absorbed the bulk in far fewer passes than n. (The
			// race between enqueue and drain keeps this from being exactly 1.)
			batches := s.metrics.admitBatches.Value() - batchesBefore
			if batches == 0 || batches > n/2 {
				t.Errorf("admissions used %v batches for %d requests (coalescing not effective)", batches, n)
			}
		})
	}
}

// TestAdmitCoalescingIdempotency covers the intra-batch duplicate-key path:
// two requests sharing an idempotency key queued into the SAME batch must
// yield one admission, with the duplicate replaying the original response.
func TestAdmitCoalescingIdempotency(t *testing.T) {
	s, ts := newAdmitTestServer(t, t.TempDir())
	c := NewClient(ts.URL)

	const n = 6 // 3 distinct keys, each sent twice
	release := blockScheduler(t, s)
	var wg sync.WaitGroup
	resps := make([]AdmitResponse, n)
	errs := make([]error, n)
	started := make(chan struct{}, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			started <- struct{}{}
			resps[i], errs[i] = c.AdmitWithKey(admitSpec(i%3), "", fmt.Sprintf("key-%d", i%3))
		}(i)
	}
	for i := 0; i < n; i++ {
		<-started
	}
	waitQueued(t, s, n)
	release()
	wg.Wait()

	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("admit %d: %v", i, errs[i])
		}
	}
	for k := 0; k < 3; k++ {
		if resps[k].ID != resps[k+3].ID {
			t.Fatalf("key-%d: duplicate admitted twice (ids %d and %d)", k, resps[k].ID, resps[k+3].ID)
		}
	}
	st, err := s.Stats()
	if err != nil {
		t.Fatalf("stats: %v", err)
	}
	if st.Admitted != 3 {
		t.Fatalf("admitted %d coflows, want 3 (dedupe failed)", st.Admitted)
	}
}
