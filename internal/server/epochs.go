package server

import (
	"net/http"
	"strconv"
	"time"
)

// EpochRecord is one scheduler tick as /v1/epochs reports it: when the tick
// ran, how long the simulation advance took, what was active, and — when a
// policy decision landed during the preceding interval — how long the solve
// took and how much it reshuffled the standing order. The ring of these is
// the introspection surface for explaining a slowdown tail: a stretch of
// high decide latency or saturated active counts shows up here long after
// the aggregate percentiles have averaged it away.
type EpochRecord struct {
	// Epoch is the engine's epoch counter after the tick; SimNow the engine
	// clock it advanced to.
	Epoch  int     `json:"epoch"`
	SimNow float64 `json:"sim_now"`
	// Wall is the tick's wall-clock time; TickSeconds how long the
	// simulation advance took.
	Wall        time.Time `json:"wall"`
	TickSeconds float64   `json:"tick_seconds"`
	// ActiveCoflows/ActiveFlows are the engine's live counts after the tick;
	// Completed counts coflows that finished during it.
	ActiveCoflows int `json:"active_coflows"`
	ActiveFlows   int `json:"active_flows"`
	Completed     int `json:"completed_in_tick"`
	// Decided marks ticks where an asynchronous policy decision was applied
	// since the previous record; DecideSeconds is that solve's wall-clock
	// latency and OrderChurn the fraction of the priority order it changed.
	Decided       bool    `json:"decided"`
	DecideSeconds float64 `json:"decide_seconds,omitempty"`
	OrderChurn    float64 `json:"order_churn,omitempty"`
	// Preempted counts flows that lost their head-of-order position in the
	// applied decision, approximated as churn * active flows.
	Preempted int `json:"preempted,omitempty"`
	// Allocator-work aggregates for the tick's advance (online.TickStats):
	// reallocation passes, their dirty-suffix depth, how the partitioned redo
	// fanned out, and the busy-time imbalance across partition workers
	// (max/mean; 0 = no fan-out ran this tick).
	Reallocs           int     `json:"reallocs,omitempty"`
	DirtySuffixSum     int     `json:"dirty_suffix_sum,omitempty"`
	DirtySuffixMax     int     `json:"dirty_suffix_max,omitempty"`
	ParallelRounds     int     `json:"parallel_rounds,omitempty"`
	CrossFlows         int     `json:"cross_partition_flows,omitempty"`
	ReallocSeconds     float64 `json:"realloc_seconds,omitempty"`
	PartitionImbalance float64 `json:"partition_imbalance,omitempty"`
}

// epochRingCap bounds the retained epoch records; /v1/epochs reports the
// most recent window, like every other long-running surface here.
const epochRingCap = 512

// pushEpoch appends one record to the ring. Scheduler goroutine only.
func (s *Server) pushEpoch(rec EpochRecord) {
	if len(s.epochRing) < epochRingCap {
		s.epochRing = append(s.epochRing, rec)
		return
	}
	s.epochRing[s.epochNext] = rec
	s.epochNext = (s.epochNext + 1) % epochRingCap
}

// epochsSnapshot copies the ring in chronological order via the scheduler
// goroutine, limited to the most recent n records when n > 0.
func (s *Server) epochsSnapshot(n int) ([]EpochRecord, error) {
	var out []EpochRecord
	err := s.do(func() {
		out = make([]EpochRecord, 0, len(s.epochRing))
		out = append(out, s.epochRing[s.epochNext:]...)
		out = append(out, s.epochRing[:s.epochNext]...)
	})
	if err != nil {
		return nil, err
	}
	if n > 0 && len(out) > n {
		out = out[len(out)-n:]
	}
	return out, nil
}

// EpochsResponse is GET /v1/epochs: the scheduler's recent-epoch ring plus
// the configuration needed to read it.
type EpochsResponse struct {
	Policy      string        `json:"policy"`
	EpochLength float64       `json:"epoch_length"`
	Shard       string        `json:"shard,omitempty"`
	Records     []EpochRecord `json:"records"`
}

// handleEpochs serves GET /v1/epochs?n=<count>.
func (s *Server) handleEpochs(w http.ResponseWriter, r *http.Request) {
	n := 0
	if raw := r.URL.Query().Get("n"); raw != "" {
		v, err := strconv.Atoi(raw)
		if err != nil || v < 0 {
			RespondError(w, http.StatusBadRequest, "invalid n")
			return
		}
		n = v
	}
	recs, err := s.epochsSnapshot(n)
	if err != nil {
		RespondError(w, http.StatusServiceUnavailable, err.Error())
		return
	}
	if recs == nil {
		recs = []EpochRecord{}
	}
	RespondJSON(w, http.StatusOK, EpochsResponse{
		Policy:      s.cfg.Policy.Name(),
		EpochLength: s.cfg.EpochLength,
		Shard:       s.cfg.Shard,
		Records:     recs,
	})
}
