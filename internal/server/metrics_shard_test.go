package server

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"coflowsched/internal/graph"
	"coflowsched/internal/online"
	"coflowsched/internal/telemetry"
)

// TestMetricsShardLabel: with a shard identity configured, every /metrics
// series carries the {shard="..."} label; without one, the classic unlabelled
// names are preserved (asserted by TestMetricsEndpoint elsewhere).
func TestMetricsShardLabel(t *testing.T) {
	s, err := New(Config{
		Network:     graph.Star(4, 1),
		Policy:      online.SEBFOnline{},
		EpochLength: 1,
		TimeScale:   100,
		Shard:       "shard-a",
		Logf:        t.Logf,
	})
	if err != nil {
		t.Fatalf("new server: %v", err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatalf("get metrics: %v", err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read metrics: %v", err)
	}
	text := string(body)
	if !strings.Contains(text, `coflowd_up{shard="shard-a"} 1`) {
		t.Errorf("metrics missing labelled up line:\n%s", text)
	}
	parsed, err := telemetry.ParseMetrics(text)
	if err != nil {
		t.Fatalf("parse metrics: %v", err)
	}
	for _, sm := range parsed.Samples {
		if sm.Labels["shard"] != "shard-a" {
			t.Errorf("series %s%v lacks the shard label", sm.Name, sm.Labels)
		}
	}

	// The shard identity also rides the stats response.
	st, err := NewClient(ts.URL).Stats()
	if err != nil {
		t.Fatalf("stats: %v", err)
	}
	if st.Shard != "shard-a" {
		t.Errorf("stats shard = %q, want shard-a", st.Shard)
	}
}

// TestStatsSamples: the ?samples=1 view exposes the raw reservoirs; the plain
// view omits them (they are gateway plumbing, not human-facing).
func TestStatsSamples(t *testing.T) {
	_, c := testServer(t, online.SEBFOnline{}, 500)
	if _, err := c.Admit(testCoflow(t, "s", 1)); err != nil {
		t.Fatalf("admit: %v", err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		st, err := c.StatsSamples()
		if err != nil {
			t.Fatalf("stats samples: %v", err)
		}
		if st.Completed == 1 {
			if len(st.Slowdowns) != 1 {
				t.Fatalf("samples view has %d slowdown samples, want 1", len(st.Slowdowns))
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("coflow did not complete in time")
		}
		time.Sleep(10 * time.Millisecond)
	}
	plain, err := c.Stats()
	if err != nil {
		t.Fatalf("stats: %v", err)
	}
	if len(plain.Slowdowns) != 0 || len(plain.SolveLatencies) != 0 {
		t.Errorf("plain stats leaked raw samples: %d/%d", len(plain.Slowdowns), len(plain.SolveLatencies))
	}
}
