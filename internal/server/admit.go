package server

import (
	"runtime"
	"time"

	"coflowsched/internal/coflow"
	"coflowsched/internal/durable"
	"coflowsched/internal/online"
	"coflowsched/internal/telemetry"
)

// Admission coalescing. Handlers do not run admissions through the generic
// command channel (s.do) — they enqueue an admitReq on a buffered channel and
// the scheduler drains everything queued behind one receive into a single
// batch: one channel round-trip, one engine.AdmitBatch call and one WAL
// group commit for N concurrent requests, instead of N of each. Batches that
// appended log records are handed whole to the committer goroutine, which
// serializes the fsyncs and releases every member after its records are
// durable; the scheduler itself never waits on a disk.
//
// Semantics are identical to processing the requests one at a time in queue
// order: AdmitBatch is equivalent to sequential Admit calls, idempotency-key
// dedupe runs against the same map, and a duplicate key WITHIN one batch is
// deferred to a sequential pass after the batch so it observes the original
// admission's outcome exactly as it would have under serial processing.

// admitQueueDepth bounds queued-but-unprocessed admissions; submitters block
// (with shutdown checks) when it is full.
const admitQueueDepth = 1024

// maxAdmitBatch caps how many queued admissions one scheduler pass absorbs,
// bounding the time the epoch tick can be delayed behind a burst.
const maxAdmitBatch = 256

// admitReq is one queued admission. The scheduler goroutine fills the result
// fields; done is closed (by the committer once the records are durable, or
// by the scheduler when there is nothing to commit) to release the handler.
type admitReq struct {
	cf    coflow.Coflow
	key   string
	trace string
	enq   time.Time // handler enqueue instant, start of coalesce-wait

	resp     AdmitResponse
	seq      uint64
	dup      bool
	admitErr error
	walErr   error
	done     chan struct{}

	// Per-stage pipeline latencies (seconds), filled by the scheduler and
	// committer as the request moves through; the handler reads them after
	// done closes (the close is the happens-before edge) and turns them into
	// /debug/traces spans. Batch-shared stages (engine-admit, group-commit)
	// carry the whole batch's duration on every member.
	waitSecs   float64
	admitSecs  float64
	appendSecs float64
	commitSecs float64
}

// submitAdmit queues the request for the scheduler's next admission batch and
// waits for the batch to process it. Returns errStopped if the server shut
// down before the request was processed.
func (s *Server) submitAdmit(req *admitReq) error {
	select {
	case s.admitC <- req:
	case <-s.stopped:
		return errStopped
	}
	select {
	case <-req.done:
		return nil
	case <-s.stopped:
		// Shutdown raced the batch; like Server.do, a request that WAS
		// processed must not be reported as dropped.
		select {
		case <-req.done:
			return nil
		default:
			return errStopped
		}
	}
}

// processAdmits runs on the scheduler goroutine with one received request in
// hand; it drains the admission queue into a batch and processes it.
func (s *Server) processAdmits(first *admitReq) {
	batch := append(s.admitScratch[:0], first)
	// One cooperative yield before draining the queue. The channel send that
	// woke this goroutine preempts the other ready handler goroutines (the
	// runtime's run-next slot), so under low GOMAXPROCS the queue would
	// otherwise hold exactly one request every time and coalescing would
	// never engage. Yielding lets every runnable handler enqueue first,
	// turning concurrent arrivals into one real batch — one AdmitBatch call
	// and one group commit — at the cost of one scheduler pass per batch.
	runtime.Gosched()
fill:
	for len(batch) < maxAdmitBatch {
		select {
		case r := <-s.admitC:
			batch = append(batch, r)
		default:
			break fill
		}
	}
	t0 := time.Now()
	for _, req := range batch {
		req.waitSecs = t0.Sub(req.enq).Seconds()
		s.metrics.stageWait.Observe(req.waitSecs)
	}
	now := s.simNow()
	// Filter pass: resolve dedupe hits and rejections, defer intra-batch
	// key conflicts, and collect the rest for the batched admission.
	var admits []*admitReq
	var specs []coflow.Coflow
	var deferred []*admitReq
	var claimed map[string]bool
	for _, req := range batch {
		if req.key != "" {
			if prev, ok := s.idem[req.key]; ok {
				req.resp, req.seq, req.dup = prev.resp, prev.seq, true
				continue
			}
			if claimed[req.key] {
				deferred = append(deferred, req)
				continue
			}
			if claimed == nil {
				claimed = make(map[string]bool)
			}
			claimed[req.key] = true
		}
		if s.draining {
			req.admitErr = errDraining
			continue
		}
		// A fail-stopped log rejects the admission before the engine mutates:
		// retries against a daemon that cannot persist must not pile
		// never-durable coflows into memory.
		if s.wal != nil {
			if err := s.wal.Err(); err != nil {
				req.walErr = err
				continue
			}
		}
		admits = append(admits, req)
		specs = append(specs, req.cf)
	}
	s.metrics.stageAssemble.Observe(time.Since(t0).Seconds())
	if len(admits) > 0 {
		ta := time.Now()
		results := s.eng.AdmitBatch(specs, now)
		admitSecs := time.Since(ta).Seconds()
		s.metrics.stageEngine.Observe(admitSecs)
		for i, res := range results {
			admits[i].admitSecs = admitSecs
			s.finishAdmit(admits[i], res, now)
		}
	}
	// Deferred duplicates observe the batch's idempotency entries, exactly
	// as they would have under serial processing.
	for _, req := range deferred {
		s.admitOne(req)
	}
	s.metrics.admitBatches.Inc()
	s.metrics.admitBatchSize.Observe(float64(len(batch)))
	if s.wal != nil {
		for _, req := range batch {
			if req.seq > 0 {
				// At least one record to make durable: hand the whole batch to
				// the committer goroutine and move on. The scheduler keeps
				// appending later batches while the committer's fsync is in
				// flight, and those appends fold into the next group commit.
				s.commitC <- batch
				s.admitScratch = s.takeBatchBuf()
				return
			}
		}
	}
	for i, req := range batch {
		close(req.done)
		batch[i] = nil // keep the scratch backing from pinning requests
	}
	s.admitScratch = batch[:0]
}

// commitQueueDepth bounds batches queued at the committer. The scheduler
// blocks when it is full, which is pure backpressure: the committer is always
// draining, one fsync at a time.
const commitQueueDepth = 64

// committer is the durability goroutine: it serializes Log.Commit calls for
// admission batches so the scheduler never waits on a disk. While one fsync
// is in flight the scheduler keeps processing batches and appending their
// records; the log's group commit syncs through everything appended when the
// next Commit lands, so queued batches collapse into one fsync and the
// admits-per-fsync ratio rises with concurrency instead of pinning at 1.
// Exits when the scheduler closes commitC at shutdown, after releasing every
// queued waiter.
func (s *Server) committer() {
	defer close(s.committerDone)
	// coveredAppends/coveredSyncs track the log's cumulative counters as of
	// the last fsync this goroutine observed, so each new fsync's
	// records-per-fsync is the appends it newly made durable. Commits that
	// found everything already synced add no fsync and no observation.
	coveredAppends, coveredSyncs := s.wal.Stats()
	for batch := range s.commitC {
		var maxSeq uint64
		for _, req := range batch {
			if req.seq > maxSeq {
				maxSeq = req.seq
			}
		}
		tc := time.Now()
		err := s.wal.Commit(maxSeq)
		commitSecs := time.Since(tc).Seconds()
		s.metrics.stageCommit.Observe(commitSecs)
		if appends, syncs := s.wal.Stats(); syncs > coveredSyncs {
			s.metrics.walPerFsync.Observe(float64(appends - coveredAppends))
			coveredAppends, coveredSyncs = appends, syncs
		}
		for i, req := range batch {
			if req.seq > 0 {
				req.commitSecs = commitSecs
			}
			// A commit failure is a durability failure for every member whose
			// record it covered, duplicates included: their original append's
			// persistence can no longer be promised.
			if err != nil && req.seq > 0 && req.walErr == nil {
				req.walErr = err
			}
			close(req.done)
			batch[i] = nil
		}
		s.putBatchBuf(batch[:0])
	}
}

// takeBatchBuf recycles a batch buffer the committer has finished with, or
// starts a fresh one. Scheduler goroutine only.
func (s *Server) takeBatchBuf() []*admitReq {
	select {
	case b := <-s.batchFree:
		return b
	default:
		return nil
	}
}

// putBatchBuf returns a drained batch buffer to the free list (dropping it if
// the list is full). Committer goroutine only.
func (s *Server) putBatchBuf(b []*admitReq) {
	select {
	case s.batchFree <- b:
	default:
	}
}

// admitOne is the sequential admission path, used for requests deferred out
// of a batch. Scheduler goroutine only.
func (s *Server) admitOne(req *admitReq) {
	if req.key != "" {
		if prev, ok := s.idem[req.key]; ok {
			req.resp, req.seq, req.dup = prev.resp, prev.seq, true
			return
		}
	}
	if s.draining {
		req.admitErr = errDraining
		return
	}
	if s.wal != nil {
		if err := s.wal.Err(); err != nil {
			req.walErr = err
			return
		}
	}
	now := s.simNow()
	id, err := s.eng.Admit(req.cf, now)
	s.finishAdmit(req, online.AdmitResult{ID: id, Err: err}, now)
}

// finishAdmit records one admission outcome: trace registration, the WAL
// append, and the idempotency cache entry. Scheduler goroutine only.
func (s *Server) finishAdmit(req *admitReq, res online.AdmitResult, now float64) {
	if res.Err != nil {
		req.admitErr = res.Err
		return
	}
	s.traceIDs[res.ID] = req.trace
	req.resp = AdmitResponse{ID: res.ID, Name: req.cf.Name, Arrival: now, Trace: req.trace}
	if s.wal != nil {
		ta := time.Now()
		req.seq, req.walErr = s.walAppend(&durable.Record{Type: durable.RecAdmit, Admit: &durable.AdmitRecord{
			ID: res.ID, Now: now, Key: req.key, Trace: req.trace, Spec: req.cf,
		}})
		req.appendSecs = time.Since(ta).Seconds()
		s.metrics.stageAppend.Observe(req.appendSecs)
	}
	// Cache the dedupe entry only for admissions that reached the log: a
	// failed append 503s, and the retry must NOT replay a 201 for an
	// admission that was never durable. (Snapshot-restored entries carry
	// seq 0 and are safe — the snapshot itself covers them.)
	if req.key != "" && req.walErr == nil {
		s.idem[req.key] = idemEntry{resp: req.resp, seq: req.seq}
		s.idemByID[req.resp.ID] = req.key
	}
}

// recordStageSpans emits one successful admission's pipeline spans —
// coalesce-wait → engine-admit → wal-append → group-commit — under the same
// trace id as its shard-admit span, so /debug/traces joins the hot path with
// the gateway's admit/batch-flush/placement spans. The WAL spans are skipped
// when the daemon runs without a log. Called from the handler after done
// closes, never on the scheduler goroutine.
func (s *Server) recordStageSpans(req *admitReq) {
	stages := [...]struct {
		name string
		secs float64
	}{
		{stageCoalesceWait, req.waitSecs},
		{stageEngineAdmit, req.admitSecs},
		{stageWALAppend, req.appendSecs},
		{stageGroupCommit, req.commitSecs},
	}
	for _, st := range stages {
		if st.secs == 0 && (st.name == stageWALAppend || st.name == stageGroupCommit) {
			continue
		}
		s.tracer.Record(telemetry.Span{
			Name:     st.name,
			Trace:    req.trace,
			Coflow:   req.resp.ID,
			Duration: st.secs,
		})
	}
}
