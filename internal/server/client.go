package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"math/rand"
	"net/http"
	"strings"
	"sync"
	"time"

	"coflowsched/internal/coflow"
	"coflowsched/internal/graph"
	"coflowsched/internal/stats"
	"coflowsched/internal/telemetry"
	"coflowsched/internal/workload"
)

// Client is a small typed client for the coflowd HTTP API, shared by
// cmd/coflowload, the cluster gateway and the closed-loop tests.
//
// Every request carries the HTTPClient's timeout (so a hung backend fails the
// request instead of stalling the caller forever) and transient failures —
// transport errors and 429/502/503/504 responses — are retried up to Retries
// times with exponentially growing, jittered backoff. Admissions are
// exactly-once under this policy: every Admit carries an idempotency key in
// the X-Coflow-Id header (auto-generated unless the caller supplies one via
// AdmitWithKey), so a retried request whose original response was lost
// replays the first admission instead of creating a second coflow — even
// across a daemon restart when the daemon runs with a WAL.
type Client struct {
	// BaseURL is the daemon's root, e.g. "http://localhost:8080".
	BaseURL string
	// HTTPClient defaults to a client with a 10s timeout.
	HTTPClient *http.Client
	// Retries is the number of additional attempts after a transient failure
	// (default 2; 0 disables retrying).
	Retries int
	// RetryBase is the backoff before the first retry; each further retry
	// doubles it, and every wait is jittered to half-to-full of its nominal
	// value so synchronized clients do not stampede a recovering backend.
	// Default 50ms.
	RetryBase time.Duration
	// RetryCounter, when non-nil, counts retried attempts labeled by API
	// endpoint ("admit", "stats", ...). The gateway wires its registry's
	// coflowgate_client_retries_total vec here so backend flakiness is
	// visible at /metrics before it becomes an ejection.
	RetryCounter *telemetry.CounterVec
	// Logger, when non-nil, receives a debug line per retried attempt.
	Logger *slog.Logger
}

// ClientOption customizes NewClient.
type ClientOption func(*Client)

// WithTimeout sets the per-request timeout (covering connect, request and
// response body).
func WithTimeout(d time.Duration) ClientOption {
	return func(c *Client) { c.HTTPClient.Timeout = d }
}

// WithRetries sets the transient-failure retry budget and the base backoff.
// n is the number of retries after the initial attempt; base <= 0 keeps the
// default backoff.
func WithRetries(n int, base time.Duration) ClientOption {
	return func(c *Client) {
		c.Retries = n
		if base > 0 {
			c.RetryBase = base
		}
	}
}

// WithInstrumentation attaches retry accounting: each retried attempt bumps
// retries with the endpoint label and logs one debug line on logger. Either
// argument may be nil.
func WithInstrumentation(retries *telemetry.CounterVec, logger *slog.Logger) ClientOption {
	return func(c *Client) {
		c.RetryCounter = retries
		c.Logger = logger
	}
}

// NewClient builds a client for the given base URL.
func NewClient(base string, opts ...ClientOption) *Client {
	c := &Client{
		BaseURL:    strings.TrimRight(base, "/"),
		HTTPClient: &http.Client{Timeout: 10 * time.Second},
		Retries:    2,
		RetryBase:  50 * time.Millisecond,
	}
	for _, opt := range opts {
		opt(c)
	}
	return c
}

// retryableStatus reports whether a response code signals a transient
// condition worth retrying: overload (429), or a gateway/availability failure
// (502/503/504). Everything else — notably 4xx validation errors — fails fast.
func retryableStatus(code int) bool {
	switch code {
	case http.StatusTooManyRequests, http.StatusBadGateway,
		http.StatusServiceUnavailable, http.StatusGatewayTimeout:
		return true
	}
	return false
}

// doJSON performs one API call with the retry policy applied. endpoint is the
// short API name retry accounting is labeled with; header entries (trace
// propagation) are re-sent on every attempt, as is the body.
func (c *Client) doJSON(method, path, endpoint string, header map[string]string, body []byte, out any) error {
	attempts := c.Retries + 1
	if attempts < 1 {
		attempts = 1
	}
	var lastErr error
	for attempt := 0; attempt < attempts; attempt++ {
		if attempt > 0 {
			c.countRetry(endpoint, attempt, lastErr)
			// Exponential backoff with half-to-full jitter.
			nominal := c.RetryBase << (attempt - 1)
			if nominal <= 0 {
				nominal = 50 * time.Millisecond
			}
			time.Sleep(nominal/2 + time.Duration(rand.Int63n(int64(nominal/2)+1)))
		}
		var rd io.Reader
		if body != nil {
			rd = bytes.NewReader(body)
		}
		req, err := http.NewRequest(method, c.BaseURL+path, rd)
		if err != nil {
			return err
		}
		if body != nil {
			req.Header.Set("Content-Type", "application/json")
		}
		for k, v := range header {
			req.Header.Set(k, v)
		}
		resp, err := c.HTTPClient.Do(req)
		if err != nil {
			lastErr = err // transport failure (refused, reset, timeout): retry
			continue
		}
		code := resp.StatusCode
		err = decodeResponse(resp, out)
		if err != nil && retryableStatus(code) {
			lastErr = err
			continue
		}
		return err
	}
	return fmt.Errorf("server: %d attempts failed: %w", attempts, lastErr)
}

// countRetry records one retried attempt in the configured instrumentation.
func (c *Client) countRetry(endpoint string, attempt int, cause error) {
	if c.RetryCounter != nil {
		c.RetryCounter.With(endpoint).Inc()
	}
	if c.Logger != nil {
		c.Logger.Debug("retrying request", "component", "client",
			"endpoint", endpoint, "base_url", c.BaseURL, "attempt", attempt, "cause", cause)
	}
}

func (c *Client) get(path, endpoint string, out any) error {
	return c.doJSON(http.MethodGet, path, endpoint, nil, nil, out)
}

// Admit posts one coflow; flow Release fields are offsets from admission.
// A fresh idempotency key is generated per call and re-sent on every retry,
// so a lost response cannot double-admit: the retried request gets the
// original admission back.
func (c *Client) Admit(cf coflow.Coflow) (AdmitResponse, error) {
	return c.AdmitWithKey(cf, "", telemetry.NewTraceID())
}

// AdmitTraced posts one coflow carrying a lifecycle trace id in the
// X-Coflow-Trace header, so the admitting daemon's spans join the caller's.
// An empty trace behaves like Admit (the daemon mints its own id). Like
// Admit, each call carries a fresh auto-generated idempotency key.
func (c *Client) AdmitTraced(cf coflow.Coflow, trace string) (AdmitResponse, error) {
	return c.AdmitWithKey(cf, trace, telemetry.NewTraceID())
}

// AdmitWithKey posts one coflow with an explicit idempotency key (X-Coflow-Id
// header) and optional trace id. Callers that own retry loops spanning
// process restarts — the cluster gateway re-placing an orphaned coflow, say —
// pass a stable key so every attempt lands on the same admission. An empty
// key sends no idempotency header at all (at-least-once admission).
func (c *Client) AdmitWithKey(cf coflow.Coflow, trace, key string) (AdmitResponse, error) {
	body, err := json.Marshal(cf)
	if err != nil {
		return AdmitResponse{}, err
	}
	header := map[string]string{}
	if trace != "" {
		header[telemetry.TraceHeader] = trace
	}
	if key != "" {
		header[IdemHeader] = key
	}
	var out AdmitResponse
	return out, c.doJSON(http.MethodPost, "/v1/coflows", "admit", header, body, &out)
}

// Coflow fetches one coflow's status.
func (c *Client) Coflow(id int) (CoflowResponse, error) {
	var out CoflowResponse
	return out, c.get(fmt.Sprintf("/v1/coflows/%d", id), "coflow", &out)
}

// Schedule fetches the current residual priority order.
func (c *Client) Schedule() (ScheduleResponse, error) {
	var out ScheduleResponse
	return out, c.get("/v1/schedule", "schedule", &out)
}

// Stats fetches the aggregate statistics.
func (c *Client) Stats() (StatsResponse, error) {
	var out StatsResponse
	return out, c.get("/v1/stats", "stats", &out)
}

// StatsSamples fetches the aggregate statistics together with the raw
// percentile sample reservoirs — what the cluster gateway scatter-gathers to
// compute merged tails.
func (c *Client) StatsSamples() (StatsResponse, error) {
	var out StatsResponse
	return out, c.get("/v1/stats?samples=1", "stats", &out)
}

// Health fetches the health summary.
func (c *Client) Health() (HealthResponse, error) {
	var out HealthResponse
	return out, c.get("/healthz", "health", &out)
}

// Network fetches the topology summary the generator builds coflows from.
func (c *Client) Network() (NetworkResponse, error) {
	var out NetworkResponse
	return out, c.get("/v1/network", "network", &out)
}

// Epochs fetches the daemon's recent-epoch introspection ring; n > 0 limits
// to the most recent n records.
func (c *Client) Epochs(n int) (EpochsResponse, error) {
	path := "/v1/epochs"
	if n > 0 {
		path = fmt.Sprintf("/v1/epochs?n=%d", n)
	}
	var out EpochsResponse
	return out, c.get(path, "epochs", &out)
}

// APIError is a non-2xx response decoded into an error. Callers that need to
// distinguish validation failures (4xx: retrying or re-routing cannot help)
// from availability failures (5xx: another backend might succeed) unwrap it
// with errors.As; the cluster gateway's placement fallback does exactly that.
type APIError struct {
	// StatusCode is the HTTP status; Status its text form.
	StatusCode int
	Status     string
	// Message is the server's JSON error message (or raw body).
	Message string
}

func (e *APIError) Error() string {
	return fmt.Sprintf("server: %s: %s", e.Status, e.Message)
}

func decodeResponse(resp *http.Response, out any) error {
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, MaxBodyBytes))
	if err != nil {
		return err
	}
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		apiErr := &APIError{StatusCode: resp.StatusCode, Status: resp.Status}
		var e errorResponse
		if json.Unmarshal(body, &e) == nil && e.Error != "" {
			apiErr.Message = e.Error
		} else {
			apiErr.Message = strings.TrimSpace(string(body))
		}
		return apiErr
	}
	return json.Unmarshal(body, out)
}

// LoadConfig parameterizes a load-generation run: a Poisson replay of
// workload.GenerateArrivals against a live daemon, in wall-clock time — or,
// when Instance is set, a replay of a prebuilt workload (a scenario or a
// parsed trace) on a scaled wall clock.
type LoadConfig struct {
	// Instance, when non-nil, is a prebuilt workload to replay instead of
	// generating one. Arrivals must be index-aligned with Instance.Coflows
	// and non-decreasing (what workload scenarios and traces produce);
	// endpoints are remapped onto the daemon's hosts by host index. The
	// Coflows/Width/MeanSize/MeanWeight/Rate knobs are ignored in this mode.
	Instance *coflow.Instance
	Arrivals []float64
	// SpeedUp compresses the replay clock: a coflow arriving at simulated
	// time t is sent at wall-clock t/SpeedUp seconds (default 1). Pair with
	// the daemon's -timescale to keep the simulated network ahead of the
	// replay. Used only with Instance.
	SpeedUp float64
	// Coflows is the number of coflows to admit (default 100).
	Coflows int
	// Width is the number of flows per coflow (default 3).
	Width int
	// MeanSize and MeanWeight shape the coflows (defaults 4 and 1).
	MeanSize   float64
	MeanWeight float64
	// Rate is the mean coflow arrival rate in requests per wall-clock
	// second (default 50). Inter-arrival gaps are exponential — the same
	// Poisson process the simulator studies, replayed in real time.
	Rate float64
	// Concurrency is the number of concurrent admitters (default 4). If
	// arrivals outpace them the replay degrades gracefully from open-loop
	// to closed-loop.
	Concurrency int
	// Seed makes the replay reproducible.
	Seed int64
	// WaitComplete polls after the replay until every admitted coflow
	// finishes (or WaitTimeout, default 60s, elapses).
	WaitComplete bool
	WaitTimeout  time.Duration
	// Logf, when non-nil, receives progress lines.
	Logf func(format string, args ...any)
}

func (cfg LoadConfig) withDefaults() LoadConfig {
	if cfg.SpeedUp <= 0 {
		cfg.SpeedUp = 1
	}
	if cfg.Coflows <= 0 {
		cfg.Coflows = 100
	}
	if cfg.Width <= 0 {
		cfg.Width = 3
	}
	if cfg.MeanSize <= 0 {
		cfg.MeanSize = 4
	}
	if cfg.MeanWeight <= 0 {
		cfg.MeanWeight = 1
	}
	if cfg.Rate <= 0 {
		cfg.Rate = 50
	}
	if cfg.Concurrency <= 0 {
		cfg.Concurrency = 4
	}
	if cfg.WaitTimeout <= 0 {
		cfg.WaitTimeout = 60 * time.Second
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	return cfg
}

// LoadReport summarizes a replay: request outcome counts, achieved
// throughput, and admit-request latency percentiles. The JSON shape is
// coflowload's -json output — machine-readable for scripted comparisons
// (durations in seconds).
type LoadReport struct {
	Requests    int           `json:"requests"`
	Failures    int           `json:"failures"`
	Duration    time.Duration `json:"-"`
	AchievedRPS float64       `json:"achieved_rps"`
	// LatencyP50/P95/P99 are admit request latencies.
	LatencyP50 time.Duration `json:"-"`
	LatencyP95 time.Duration `json:"-"`
	LatencyP99 time.Duration `json:"-"`
	// Completed counts coflows confirmed finished (only populated with
	// WaitComplete).
	Completed int `json:"completed,omitempty"`
	// FirstError carries the first failure's message, for diagnostics.
	FirstError string `json:"first_error,omitempty"`
	// DurationSeconds and the latency seconds mirror the Duration fields in
	// JSON-friendly units; populated by MarshalJSON.
	DurationSeconds float64 `json:"duration_seconds"`
	LatencyP50Secs  float64 `json:"admit_latency_p50_seconds"`
	LatencyP95Secs  float64 `json:"admit_latency_p95_seconds"`
	LatencyP99Secs  float64 `json:"admit_latency_p99_seconds"`
}

// MarshalJSON renders the report with durations in seconds.
func (r *LoadReport) MarshalJSON() ([]byte, error) {
	type alias LoadReport // strip the method to avoid recursion
	a := alias(*r)
	a.DurationSeconds = r.Duration.Seconds()
	a.LatencyP50Secs = r.LatencyP50.Seconds()
	a.LatencyP95Secs = r.LatencyP95.Seconds()
	a.LatencyP99Secs = r.LatencyP99.Seconds()
	return json.Marshal(a)
}

// String renders the report for terminals.
func (r *LoadReport) String() string {
	s := fmt.Sprintf("requests=%d failures=%d duration=%.2fs achieved_rps=%.1f latency p50/p95/p99 = %.2f/%.2f/%.2f ms",
		r.Requests, r.Failures, r.Duration.Seconds(), r.AchievedRPS,
		float64(r.LatencyP50.Microseconds())/1e3,
		float64(r.LatencyP95.Microseconds())/1e3,
		float64(r.LatencyP99.Microseconds())/1e3)
	if r.Completed > 0 {
		s += fmt.Sprintf(" completed=%d", r.Completed)
	}
	if r.FirstError != "" {
		s += "\nfirst error: " + r.FirstError
	}
	return s
}

// RunLoad replays a coflow arrival process against a live daemon.
//
// By default the workload comes from workload.GenerateArrivals on a star
// stand-in topology with the daemon's host count; generated endpoints are
// remapped onto the daemon's actual host ids, and the generated arrival
// times become the wall-clock send schedule. Flow release offsets are zero:
// every flow of a coflow is released on admission, matching the generator's
// default.
//
// With cfg.Instance set, the prebuilt workload (a scenario or parsed trace)
// is replayed instead: endpoints are remapped onto the daemon's hosts by
// host index (mod the daemon's host count), arrivals are compressed by
// SpeedUp into the wall-clock send schedule, and each flow keeps its release
// offset from the coflow's arrival in simulated time.
func RunLoad(c *Client, cfg LoadConfig) (*LoadReport, error) {
	cfg = cfg.withDefaults()
	net, err := c.Network()
	if err != nil {
		return nil, fmt.Errorf("loadgen: fetching topology: %w", err)
	}
	if len(net.Hosts) < 2 {
		return nil, fmt.Errorf("loadgen: daemon topology has %d hosts, need at least 2", len(net.Hosts))
	}
	wire, sendAt, err := buildWire(cfg, net)
	if err != nil {
		return nil, err
	}

	// Replay: a dispatcher paces the arrival schedule, workers admit.
	type result struct {
		id      int
		latency float64 // seconds
		err     error
	}
	jobs := make(chan int)
	results := make(chan result)
	var wg sync.WaitGroup
	for w := 0; w < cfg.Concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				t0 := time.Now()
				resp, err := c.Admit(wire[i])
				results <- result{id: resp.ID, latency: time.Since(t0).Seconds(), err: err}
			}
		}()
	}
	start := time.Now()
	go func() {
		for i := range wire {
			due := start.Add(time.Duration(sendAt[i] * float64(time.Second)))
			if d := time.Until(due); d > 0 {
				time.Sleep(d)
			}
			jobs <- i
		}
		close(jobs)
		wg.Wait()
		close(results)
	}()

	report := &LoadReport{}
	var latencies []float64
	var ids []int
	for res := range results {
		report.Requests++
		if res.err != nil {
			report.Failures++
			if report.FirstError == "" {
				report.FirstError = res.err.Error()
			}
			continue
		}
		latencies = append(latencies, res.latency)
		ids = append(ids, res.id)
	}
	report.Duration = time.Since(start)
	if report.Duration > 0 {
		report.AchievedRPS = float64(report.Requests) / report.Duration.Seconds()
	}
	if len(latencies) > 0 {
		report.LatencyP50 = time.Duration(stats.Percentile(latencies, 50) * float64(time.Second))
		report.LatencyP95 = time.Duration(stats.Percentile(latencies, 95) * float64(time.Second))
		report.LatencyP99 = time.Duration(stats.Percentile(latencies, 99) * float64(time.Second))
	}
	cfg.Logf("loadgen: admitted %d coflows in %.2fs (%.1f rps, %d failures)",
		report.Requests-report.Failures, report.Duration.Seconds(), report.AchievedRPS, report.Failures)

	if cfg.WaitComplete {
		completed, err := waitComplete(c, ids, cfg.WaitTimeout, cfg.Logf)
		report.Completed = completed
		if err != nil {
			return report, err
		}
	}
	return report, nil
}

// buildWire turns the configured workload into wire coflows plus their
// wall-clock send schedule (seconds from replay start), remapped onto the
// daemon's hosts.
func buildWire(cfg LoadConfig, net NetworkResponse) ([]coflow.Coflow, []float64, error) {
	if cfg.Instance != nil {
		return replayWire(cfg, net)
	}
	// Draw the workload on a stand-in star with the same host count; only
	// the endpoint identities differ, and those are remapped below.
	standIn := graph.Star(len(net.Hosts), 1)
	localHosts := standIn.Hosts()
	hostIndex := make(map[graph.NodeID]int, len(localHosts))
	for i, h := range localHosts {
		hostIndex[h] = i
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	inst, arrivals, err := workload.GenerateArrivals(standIn, workload.ArrivalConfig{
		Config: workload.Config{
			NumCoflows: cfg.Coflows,
			Width:      cfg.Width,
			MeanSize:   cfg.MeanSize,
			MeanWeight: cfg.MeanWeight,
		},
		Rate: cfg.Rate,
	}, rng)
	if err != nil {
		return nil, nil, fmt.Errorf("loadgen: generating workload: %w", err)
	}
	wire := make([]coflow.Coflow, len(inst.Coflows))
	for i, cf := range inst.Coflows {
		w := coflow.Coflow{Name: fmt.Sprintf("load-%d", i), Weight: cf.Weight, Flows: make([]coflow.Flow, len(cf.Flows))}
		for j, f := range cf.Flows {
			w.Flows[j] = coflow.Flow{
				Source: graph.NodeID(net.Hosts[hostIndex[f.Source]]),
				Dest:   graph.NodeID(net.Hosts[hostIndex[f.Dest]]),
				Size:   f.Size,
			}
		}
		wire[i] = w
	}
	return wire, arrivals, nil
}

// replayWire maps a prebuilt instance onto the daemon's topology. The
// instance's hosts are indexed in their own topology's host order and mapped
// onto the daemon's hosts modulo the daemon's host count; a pair that
// collapses onto one daemon host (possible when the daemon has fewer hosts
// than the instance) shifts its destination to the next host so the flow
// stays a network transfer.
func replayWire(cfg LoadConfig, net NetworkResponse) ([]coflow.Coflow, []float64, error) {
	inst := cfg.Instance
	if len(inst.Coflows) == 0 {
		return nil, nil, fmt.Errorf("loadgen: replay instance has no coflows")
	}
	if len(cfg.Arrivals) != len(inst.Coflows) {
		return nil, nil, fmt.Errorf("loadgen: %d arrivals for %d coflows", len(cfg.Arrivals), len(inst.Coflows))
	}
	srcHosts := inst.Network.Hosts()
	hostIndex := make(map[graph.NodeID]int, len(srcHosts))
	for i, h := range srcHosts {
		hostIndex[h] = i
	}
	n := len(net.Hosts)
	wire := make([]coflow.Coflow, len(inst.Coflows))
	sendAt := make([]float64, len(inst.Coflows))
	// Rebase the schedule on the first arrival so the replay starts sending
	// immediately even for traces whose clock starts late.
	base := cfg.Arrivals[0]
	for i, cf := range inst.Coflows {
		arrival := cfg.Arrivals[i]
		if i > 0 && arrival < cfg.Arrivals[i-1] {
			return nil, nil, fmt.Errorf("loadgen: arrivals decrease at coflow %d", i)
		}
		name := cf.Name
		if name == "" {
			name = fmt.Sprintf("replay-%d", i)
		}
		w := coflow.Coflow{Name: name, Weight: cf.Weight, Flows: make([]coflow.Flow, len(cf.Flows))}
		for j, f := range cf.Flows {
			si, ok := hostIndex[f.Source]
			di, dok := hostIndex[f.Dest]
			if !ok || !dok {
				return nil, nil, fmt.Errorf("loadgen: coflow %d flow %d endpoints are not hosts of the instance topology", i, j)
			}
			src, dst := si%n, di%n
			if src == dst {
				dst = (dst + 1) % n
			}
			release := f.Release - arrival
			if release < 0 {
				release = 0
			}
			w.Flows[j] = coflow.Flow{
				Source:  graph.NodeID(net.Hosts[src]),
				Dest:    graph.NodeID(net.Hosts[dst]),
				Size:    f.Size,
				Release: release,
			}
		}
		wire[i] = w
		sendAt[i] = (arrival - base) / cfg.SpeedUp
	}
	return wire, sendAt, nil
}

// waitComplete polls the per-coflow status endpoint until every id reports
// done or the timeout elapses. Individual poll errors are treated as
// transient — the id stays pending and is retried until the deadline, so a
// single dropped connection does not fail a replay whose coflows all
// complete — but the last one is surfaced if the deadline expires.
func waitComplete(c *Client, ids []int, timeout time.Duration, logf func(string, ...any)) (int, error) {
	deadline := time.Now().Add(timeout)
	pending := append([]int(nil), ids...)
	done := 0
	var lastErr error
	for len(pending) > 0 {
		if time.Now().After(deadline) {
			err := fmt.Errorf("loadgen: %d of %d coflows still unfinished after %v", len(pending), len(ids), timeout)
			if lastErr != nil {
				err = fmt.Errorf("%w (last poll error: %v)", err, lastErr)
			}
			return done, err
		}
		next := pending[:0]
		for _, id := range pending {
			st, err := c.Coflow(id)
			if err != nil {
				lastErr = err
				logf("loadgen: polling coflow %d: %v (will retry)", id, err)
				next = append(next, id)
				continue
			}
			if st.Done {
				done++
			} else {
				next = append(next, id)
			}
		}
		pending = next
		if len(pending) > 0 {
			logf("loadgen: waiting for %d coflows to finish", len(pending))
			time.Sleep(50 * time.Millisecond)
		}
	}
	return done, nil
}
