package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"coflowsched/internal/coflow"
	"coflowsched/internal/graph"
	"coflowsched/internal/online"
)

// newTestServer starts a daemon on an httptest listener. Callers get both so
// they can hit the API raw (the typed Client hides status codes).
func newTestServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(Config{
		Network:     graph.Star(4, 1),
		Policy:      online.SEBFOnline{},
		EpochLength: 1,
		TimeScale:   100,
		Logf:        t.Logf,
	})
	if err != nil {
		t.Fatalf("new server: %v", err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

// decodeError asserts a JSON error body and returns its message.
func decodeError(t *testing.T, resp *http.Response) string {
	t.Helper()
	defer resp.Body.Close()
	var e struct {
		Error string `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
		t.Fatalf("error response is not the JSON error shape: %v", err)
	}
	if e.Error == "" {
		t.Fatalf("error response has an empty message")
	}
	return e.Error
}

// TestAdmitErrorPaths covers the malformed-request surface of
// POST /v1/coflows: every rejection must be a 400 with a JSON error body and
// must not count as an admission.
func TestAdmitErrorPaths(t *testing.T) {
	s, ts := newTestServer(t)
	post := func(body string) *http.Response {
		resp, err := http.Post(ts.URL+"/v1/coflows", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatalf("post: %v", err)
		}
		return resp
	}
	cases := map[string]string{
		"malformed JSON":    `{"name": "broken"`,
		"unknown field":     `{"name":"x","weight":1,"unknown_field":true,"flows":[{"source":0,"dest":1,"size":1}]}`,
		"no flows":          `{"name":"x","weight":1,"flows":[]}`,
		"negative size":     `{"name":"x","weight":1,"flows":[{"source":0,"dest":1,"size":-2}]}`,
		"same endpoints":    `{"name":"x","weight":1,"flows":[{"source":1,"dest":1,"size":1}]}`,
		"outside network":   `{"name":"x","weight":1,"flows":[{"source":0,"dest":99,"size":1}]}`,
		"negative weight":   `{"name":"x","weight":-1,"flows":[{"source":0,"dest":1,"size":1}]}`,
		"not JSON":          `hello`,
		"JSON wrong type":   `[1,2,3]`,
		"infinite via text": `{"name":"x","weight":1,"flows":[{"source":0,"dest":1,"size":1e999}]}`,
	}
	for name, body := range cases {
		resp := post(body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", name, resp.StatusCode)
		}
		decodeError(t, resp)
	}
	st, err := s.Stats()
	if err != nil {
		t.Fatalf("stats: %v", err)
	}
	if st.Admitted != 0 {
		t.Errorf("rejected requests were admitted: %d", st.Admitted)
	}
}

// TestCoflowLookupErrorPaths covers GET /v1/coflows/{id} misses.
func TestCoflowLookupErrorPaths(t *testing.T) {
	_, ts := newTestServer(t)
	get := func(path string) *http.Response {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatalf("get: %v", err)
		}
		return resp
	}
	if resp := get("/v1/coflows/12345"); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown id: status %d, want 404", resp.StatusCode)
	} else {
		msg := decodeError(t, resp)
		if !strings.Contains(msg, "unknown coflow") {
			t.Errorf("unknown id message %q", msg)
		}
	}
	if resp := get("/v1/coflows/-7"); resp.StatusCode != http.StatusNotFound {
		t.Errorf("negative id: status %d, want 404", resp.StatusCode)
	} else {
		resp.Body.Close()
	}
	if resp := get("/v1/coflows/abc"); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("non-numeric id: status %d, want 400", resp.StatusCode)
	} else {
		decodeError(t, resp)
	}
}

// TestAdmitAfterDrain covers the shutdown path: once Drain has begun, new
// admissions are 503s with a draining message, while reads keep working.
func TestAdmitAfterDrain(t *testing.T) {
	s, ts := newTestServer(t)
	c := NewClient(ts.URL)

	// One real coflow so the drain has work to finish (hosts of the star are
	// nodes 1..4; node 0 is the switch).
	admitted, err := c.Admit(coflow.Coflow{
		Name: "t", Weight: 1,
		Flows: []coflow.Flow{{Source: 1, Dest: 2, Size: 2}},
	})
	if err != nil {
		t.Fatalf("admit before drain: %v", err)
	}
	if _, err := s.Drain(); err != nil {
		t.Fatalf("drain: %v", err)
	}

	resp, err := http.Post(ts.URL+"/v1/coflows", "application/json",
		strings.NewReader(`{"name":"late","weight":1,"flows":[{"source":0,"dest":1,"size":1}]}`))
	if err != nil {
		t.Fatalf("post after drain: %v", err)
	}
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("admit after drain: status %d, want 503", resp.StatusCode)
	}
	msg := decodeError(t, resp)
	if !strings.Contains(msg, "draining") {
		t.Errorf("admit-after-drain message %q does not mention draining", msg)
	}

	// Reads still work after drain: the admitted coflow must report done.
	st, err := c.Coflow(admitted.ID)
	if err != nil {
		t.Fatalf("coflow status after drain: %v", err)
	}
	if !st.Done {
		t.Errorf("drained coflow not done: %+v", st)
	}
	stats, err := c.Stats()
	if err != nil {
		t.Fatalf("stats after drain: %v", err)
	}
	if stats.Admitted != 1 || stats.Completed != 1 {
		t.Errorf("post-drain stats admitted=%d completed=%d, want 1/1", stats.Admitted, stats.Completed)
	}
}
