package server

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"coflowsched/internal/coflow"
	"coflowsched/internal/graph"
	"coflowsched/internal/online"
)

// testServer starts a daemon on a 16-server fat-tree with an accelerated
// clock and returns a client against it. Cleanup stops everything.
func testServer(t *testing.T, policy online.Policy, timeScale float64) (*Server, *Client) {
	t.Helper()
	s, err := New(Config{
		Network:     graph.FatTree(4, 1),
		Policy:      policy,
		EpochLength: 2,
		TimeScale:   timeScale,
		Logf:        t.Logf,
	})
	if err != nil {
		t.Fatalf("new server: %v", err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, NewClient(ts.URL)
}

// testCoflow builds a small valid coflow between two hosts.
func testCoflow(t *testing.T, name string, size float64) coflow.Coflow {
	t.Helper()
	hosts := graph.FatTree(4, 1).Hosts()
	return coflow.Coflow{
		Name:   name,
		Weight: 1,
		Flows: []coflow.Flow{
			{Source: hosts[0], Dest: hosts[5], Size: size},
			{Source: hosts[2], Dest: hosts[9], Size: size},
		},
	}
}

func TestAdmitAndStatus(t *testing.T) {
	_, c := testServer(t, online.SEBFOnline{}, 100)

	resp, err := c.Admit(testCoflow(t, "job-0", 3))
	if err != nil {
		t.Fatalf("admit: %v", err)
	}
	if resp.ID != 0 || resp.Name != "job-0" {
		t.Fatalf("admit response %+v", resp)
	}
	st, err := c.Coflow(resp.ID)
	if err != nil {
		t.Fatalf("status: %v", err)
	}
	if st.NumFlows != 2 || st.TotalBytes != 6 || st.Weight != 1 {
		t.Fatalf("status %+v", st)
	}
	if st.Arrival != resp.Arrival {
		t.Errorf("arrival mismatch: status %v, admit %v", st.Arrival, resp.Arrival)
	}

	// Unknown and malformed ids.
	if _, err := c.Coflow(99); err == nil || !strings.Contains(err.Error(), "404") {
		t.Errorf("unknown id error = %v, want 404", err)
	}
	httpResp, err := http.Get(c.BaseURL + "/v1/coflows/abc")
	if err != nil {
		t.Fatalf("get: %v", err)
	}
	httpResp.Body.Close()
	if httpResp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed id status = %d, want 400", httpResp.StatusCode)
	}

	// Invalid coflows are rejected with 400.
	for name, bad := range map[string]coflow.Coflow{
		"no flows":  {Weight: 1},
		"zero size": {Weight: 1, Flows: []coflow.Flow{{Source: 0, Dest: 1, Size: 0}}},
		"self loop": {Weight: 1, Flows: []coflow.Flow{{Source: 4, Dest: 4, Size: 1}}},
	} {
		if _, err := c.Admit(bad); err == nil || !strings.Contains(err.Error(), "400") {
			t.Errorf("%s: error = %v, want 400", name, err)
		}
	}
	// Unknown fields are rejected too (catches schema typos in clients).
	r, err := http.Post(c.BaseURL+"/v1/coflows", "application/json",
		strings.NewReader(`{"weight":1,"flowz":[]}`))
	if err != nil {
		t.Fatalf("post: %v", err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown field status = %d, want 400", r.StatusCode)
	}
}

func TestHealthNetworkStatsMetrics(t *testing.T) {
	_, c := testServer(t, online.SEBFOnline{}, 100)

	h, err := c.Health()
	if err != nil || h.Status != "ok" {
		t.Fatalf("health = %+v, %v", h, err)
	}
	if h.Policy != "SEBFOnline" {
		t.Errorf("health policy %q", h.Policy)
	}

	n, err := c.Network()
	if err != nil {
		t.Fatalf("network: %v", err)
	}
	if len(n.Hosts) != 16 {
		t.Errorf("fat-tree k=4 hosts = %d, want 16", len(n.Hosts))
	}

	if _, err := c.Admit(testCoflow(t, "m", 2)); err != nil {
		t.Fatalf("admit: %v", err)
	}
	st, err := c.Stats()
	if err != nil {
		t.Fatalf("stats: %v", err)
	}
	if st.Admitted != 1 || st.Policy != "SEBFOnline" || st.EpochLength != 2 {
		t.Errorf("stats %+v", st)
	}

	sch, err := c.Schedule()
	if err != nil {
		t.Fatalf("schedule: %v", err)
	}
	if sch.Policy != "SEBFOnline" {
		t.Errorf("schedule policy %q", sch.Policy)
	}

	resp, err := http.Get(c.BaseURL + "/metrics")
	if err != nil {
		t.Fatalf("metrics: %v", err)
	}
	defer resp.Body.Close()
	buf := make([]byte, 16<<10)
	k, _ := resp.Body.Read(buf)
	body := string(buf[:k])
	for _, want := range []string{
		"coflowd_up 1",
		"coflowd_coflows_admitted_total 1",
		"coflowd_http_requests_total",
		"coflowd_solve_latency_seconds_p95",
		"coflowd_tick_seconds_p95",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics output missing %q:\n%s", want, body)
		}
	}
}

// TestDecisionsHappen checks the asynchronous epoch loop actually applies
// policy decisions while the server runs.
func TestDecisionsHappen(t *testing.T) {
	_, c := testServer(t, online.SEBFOnline{}, 100)
	if _, err := c.Admit(testCoflow(t, "d", 50)); err != nil {
		t.Fatalf("admit: %v", err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		st, err := c.Stats()
		if err != nil {
			t.Fatalf("stats: %v", err)
		}
		if st.Decisions > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no policy decision applied within 10s: %+v", st)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestDrain admits work, drains, and checks the final stats and that late
// admissions are rejected with 503.
func TestDrain(t *testing.T) {
	s, c := testServer(t, online.SEBFOnline{}, 100)
	for i := 0; i < 3; i++ {
		if _, err := c.Admit(testCoflow(t, "drain", 4)); err != nil {
			t.Fatalf("admit %d: %v", i, err)
		}
	}
	st, err := s.Drain()
	if err != nil {
		t.Fatalf("drain: %v", err)
	}
	if st.Completed != 3 || st.Active != 0 {
		t.Fatalf("post-drain stats %+v", st)
	}
	if st.WeightedCCT <= 0 {
		t.Errorf("post-drain weighted CCT %v", st.WeightedCCT)
	}
	if _, err := c.Admit(testCoflow(t, "late", 1)); err == nil || !strings.Contains(err.Error(), "503") {
		t.Errorf("late admission error = %v, want 503", err)
	}
	// Queries still work after drain.
	if cst, err := c.Coflow(0); err != nil || !cst.Done || cst.CCT == nil || *cst.CCT <= 0 {
		t.Errorf("post-drain status = %+v, %v", cst, err)
	}
}

// TestConcurrentAdmitsAndQueries hammers the API from many goroutines; run
// under -race this validates the channel-serialized ownership of the engine.
func TestConcurrentAdmitsAndQueries(t *testing.T) {
	_, c := testServer(t, online.SEBFOnline{}, 200)
	const workers = 8
	const perWorker = 10
	var wg sync.WaitGroup
	errs := make(chan error, workers*perWorker*2)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				if _, err := c.Admit(testCoflow(t, "c", 1+float64(w))); err != nil {
					errs <- err
				}
				switch i % 3 {
				case 0:
					if _, err := c.Stats(); err != nil {
						errs <- err
					}
				case 1:
					if _, err := c.Schedule(); err != nil {
						errs <- err
					}
				case 2:
					if _, err := c.Health(); err != nil {
						errs <- err
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Errorf("concurrent request: %v", err)
	}
	st, err := c.Stats()
	if err != nil {
		t.Fatalf("stats: %v", err)
	}
	if st.Admitted != workers*perWorker {
		t.Fatalf("admitted %d, want %d", st.Admitted, workers*perWorker)
	}
}

// TestLPEpochPolicyServes exercises the expensive pipelined policy end to
// end on a small stream: admissions stay responsive while LPs solve, and the
// drain completes every coflow.
func TestLPEpochPolicyServes(t *testing.T) {
	s, c := testServer(t, online.LPEpoch{}, 100)
	for i := 0; i < 3; i++ {
		if _, err := c.Admit(testCoflow(t, "lp", 2)); err != nil {
			t.Fatalf("admit %d: %v", i, err)
		}
	}
	st, err := s.Drain()
	if err != nil {
		t.Fatalf("drain: %v", err)
	}
	if st.Completed != 3 {
		t.Fatalf("completed %d of 3: %+v", st.Completed, st)
	}
}
