package server

import (
	"net/http/httptest"
	"sort"
	"testing"
	"time"

	"coflowsched/internal/coflow"
	"coflowsched/internal/graph"
	"coflowsched/internal/online"
)

// BenchmarkAdmit measures the end-to-end HTTP admission path with and
// without a write-ahead log. The wal=on variant pays the append plus a
// group-committed fsync before the 201 is acknowledged — the exact durability
// boundary — so the delta between the two sub-benchmarks is the admit-path
// overhead of durability. Alongside ns/op each variant reports its observed
// p99 latency (p99-ns/op), the number scripts/bench_wal.sh records to
// BENCH_sim.json and holds against the admit-p99 regression budget.
func BenchmarkAdmit(b *testing.B) {
	for _, walled := range []bool{false, true} {
		name := "wal=off"
		if walled {
			name = "wal=on"
		}
		b.Run(name, func(b *testing.B) {
			cfg := Config{
				Network:     graph.FatTree(4, 1),
				Policy:      online.SEBFOnline{},
				EpochLength: 2,
				// Effectively frozen clock: the benchmark isolates admission
				// cost, with no epoch ticks racing the measured requests.
				TimeScale: 1e-9,
			}
			if walled {
				cfg.WALDir = b.TempDir()
				cfg.SnapshotInterval = -1 // no snapshot I/O in the measured window
			}
			s, err := New(cfg)
			if err != nil {
				b.Fatalf("new server: %v", err)
			}
			ts := httptest.NewServer(s.Handler())
			defer func() {
				ts.Close()
				s.Close()
			}()
			c := NewClient(ts.URL)
			hosts := graph.FatTree(4, 1).Hosts()
			cf := coflow.Coflow{
				Name: "bench", Weight: 1,
				Flows: []coflow.Flow{
					{Source: hosts[0], Dest: hosts[5], Size: 10},
					{Source: hosts[2], Dest: hosts[9], Size: 10},
				},
			}

			lat := make([]time.Duration, 0, b.N)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				t0 := time.Now()
				if _, err := c.Admit(cf); err != nil {
					b.Fatalf("admit %d: %v", i, err)
				}
				lat = append(lat, time.Since(t0))
			}
			b.StopTimer()
			sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
			idx := len(lat) * 99 / 100
			if idx >= len(lat) {
				idx = len(lat) - 1
			}
			b.ReportMetric(float64(lat[idx].Nanoseconds()), "p99-ns/op")
		})
	}
}

// BenchmarkAdmitParallel is the durability budget's workload: concurrent
// admissions, the shape the admission path is built for. The serial
// BenchmarkAdmit issues one admission at a time, so every wal=on iteration
// necessarily pays a private fsync and the wal/no-wal ratio measures raw
// fsync latency rather than the admit path — that is the number that blew
// the wal-overhead budget before admissions were coalesced. Here concurrent
// requests coalesce into scheduler batches that share one channel round-trip
// and one group commit, so the wal=on/wal=off ratio reflects the amortized
// durability cost an actual multi-client daemon pays. scripts/bench_wal.sh
// records this variant's ratio against the admit-overhead budget and keeps
// the serial variant as a labeled diagnostic series.
func BenchmarkAdmitParallel(b *testing.B) {
	for _, walled := range []bool{false, true} {
		name := "wal=off"
		if walled {
			name = "wal=on"
		}
		b.Run(name, func(b *testing.B) {
			cfg := Config{
				Network:     graph.FatTree(4, 1),
				Policy:      online.SEBFOnline{},
				EpochLength: 2,
				TimeScale:   1e-9,
			}
			if walled {
				cfg.WALDir = b.TempDir()
				cfg.SnapshotInterval = -1
			}
			s, err := New(cfg)
			if err != nil {
				b.Fatalf("new server: %v", err)
			}
			ts := httptest.NewServer(s.Handler())
			defer func() {
				ts.Close()
				s.Close()
			}()
			hosts := graph.FatTree(4, 1).Hosts()
			cf := coflow.Coflow{
				Name: "bench", Weight: 1,
				Flows: []coflow.Flow{
					{Source: hosts[0], Dest: hosts[5], Size: 10},
					{Source: hosts[2], Dest: hosts[9], Size: 10},
				},
			}
			// Many more submitters than GOMAXPROCS: admissions block on I/O
			// (HTTP + fsync), not CPU, so extra in-flight requests deepen the
			// coalescing batches — and the group-commit folds — the way a
			// crowd of concurrent clients would.
			b.SetParallelism(32)
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				c := NewClient(ts.URL)
				for pb.Next() {
					if _, err := c.Admit(cf); err != nil {
						b.Errorf("admit: %v", err)
						return
					}
				}
			})
			b.StopTimer()
			if batches := s.metrics.admitBatches.Value(); batches > 0 {
				b.ReportMetric(float64(b.N)/batches, "admits/batch")
			}
			if s.wal != nil {
				if _, syncs := s.wal.Stats(); syncs > 0 {
					b.ReportMetric(float64(b.N)/float64(syncs), "admits/fsync")
				}
			}
		})
	}
}
