package server

import (
	"net/http/httptest"
	"sort"
	"testing"
	"time"

	"coflowsched/internal/coflow"
	"coflowsched/internal/graph"
	"coflowsched/internal/online"
)

// BenchmarkAdmit measures the end-to-end HTTP admission path with and
// without a write-ahead log. The wal=on variant pays the append plus a
// group-committed fsync before the 201 is acknowledged — the exact durability
// boundary — so the delta between the two sub-benchmarks is the admit-path
// overhead of durability. Alongside ns/op each variant reports its observed
// p99 latency (p99-ns/op), the number scripts/bench_wal.sh records to
// BENCH_sim.json and holds against the admit-p99 regression budget.
func BenchmarkAdmit(b *testing.B) {
	for _, walled := range []bool{false, true} {
		name := "wal=off"
		if walled {
			name = "wal=on"
		}
		b.Run(name, func(b *testing.B) {
			cfg := Config{
				Network:     graph.FatTree(4, 1),
				Policy:      online.SEBFOnline{},
				EpochLength: 2,
				// Effectively frozen clock: the benchmark isolates admission
				// cost, with no epoch ticks racing the measured requests.
				TimeScale: 1e-9,
			}
			if walled {
				cfg.WALDir = b.TempDir()
				cfg.SnapshotInterval = -1 // no snapshot I/O in the measured window
			}
			s, err := New(cfg)
			if err != nil {
				b.Fatalf("new server: %v", err)
			}
			ts := httptest.NewServer(s.Handler())
			defer func() {
				ts.Close()
				s.Close()
			}()
			c := NewClient(ts.URL)
			hosts := graph.FatTree(4, 1).Hosts()
			cf := coflow.Coflow{
				Name: "bench", Weight: 1,
				Flows: []coflow.Flow{
					{Source: hosts[0], Dest: hosts[5], Size: 10},
					{Source: hosts[2], Dest: hosts[9], Size: 10},
				},
			}

			lat := make([]time.Duration, 0, b.N)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				t0 := time.Now()
				if _, err := c.Admit(cf); err != nil {
					b.Fatalf("admit %d: %v", i, err)
				}
				lat = append(lat, time.Since(t0))
			}
			b.StopTimer()
			sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
			idx := len(lat) * 99 / 100
			if idx >= len(lat) {
				idx = len(lat) - 1
			}
			b.ReportMetric(float64(lat[idx].Nanoseconds()), "p99-ns/op")
		})
	}
}
