package telemetry

import (
	"math"
	"strings"
	"testing"
)

// TestParseMetricsScrapeDuty covers the shapes a scraper meets in the wild:
// escaped label values, special float values, awkward characters inside
// quotes, and bucket lines arriving in any order.
func TestParseMetricsScrapeDuty(t *testing.T) {
	cases := []struct {
		name  string
		text  string
		check func(t *testing.T, m *Metrics)
	}{
		{
			name: "escaped label values",
			text: `m_total{a="q\"uote",b="back\\slash",c="new\nline"} 1` + "\n",
			check: func(t *testing.T, m *Metrics) {
				s := m.Samples[0]
				if s.Labels["a"] != `q"uote` || s.Labels["b"] != `back\slash` || s.Labels["c"] != "new\nline" {
					t.Errorf("escapes decoded wrong: %#v", s.Labels)
				}
			},
		},
		{
			name: "label value containing closing brace and comma and equals",
			text: `m_total{expr="a{b=1,c=2}",other="x"} 3` + "\n",
			check: func(t *testing.T, m *Metrics) {
				s := m.Samples[0]
				if s.Labels["expr"] != "a{b=1,c=2}" || s.Labels["other"] != "x" || s.Value != 3 {
					t.Errorf("brace-bearing value parsed wrong: %#v", s)
				}
			},
		},
		{
			name: "special float values",
			text: "m_bucket{le=\"+Inf\"} 4\nm_min -Inf\nm_gap NaN\nm_pos +Inf\n",
			check: func(t *testing.T, m *Metrics) {
				if v := m.Samples[1].Value; !math.IsInf(v, -1) {
					t.Errorf("-Inf parsed as %v", v)
				}
				if v := m.Samples[2].Value; !math.IsNaN(v) {
					t.Errorf("NaN parsed as %v", v)
				}
				if v := m.Samples[3].Value; !math.IsInf(v, 1) {
					t.Errorf("+Inf parsed as %v", v)
				}
			},
		},
		{
			name: "out of order bucket lines",
			text: "h_bucket{le=\"1\"} 7\nh_bucket{le=\"+Inf\"} 9\nh_bucket{le=\"0.5\"} 3\nh_sum 12.5\nh_count 9\n",
			check: func(t *testing.T, m *Metrics) {
				// The parser records every bucket regardless of order; the
				// consumer (the monitor's quantile view) sorts by le.
				les := map[string]float64{}
				for _, s := range m.Samples {
					if s.Name == "h_bucket" {
						les[s.Labels["le"]] = s.Value
					}
				}
				if len(les) != 3 || les["0.5"] != 3 || les["1"] != 7 {
					t.Errorf("buckets lost in shuffle: %v", les)
				}
			},
		},
		{
			name: "scientific notation and whitespace",
			text: "  m_total{a=\"b\"}   1.5e-3  \nm2 2e+06\n",
			check: func(t *testing.T, m *Metrics) {
				if m.Samples[0].Value != 1.5e-3 || m.Samples[1].Value != 2e6 {
					t.Errorf("float forms parsed wrong: %v %v", m.Samples[0].Value, m.Samples[1].Value)
				}
			},
		},
		{
			name: "empty label block",
			text: "m_total{} 1\n",
			check: func(t *testing.T, m *Metrics) {
				if len(m.Samples[0].Labels) != 0 || m.Samples[0].Value != 1 {
					t.Errorf("empty block parsed wrong: %#v", m.Samples[0])
				}
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m, err := ParseMetrics(tc.text)
			if err != nil {
				t.Fatalf("ParseMetrics: %v", err)
			}
			tc.check(t, m)
		})
	}
}

func TestParseMetricsRejectsMalformedLabels(t *testing.T) {
	bad := []string{
		`m{a="unterminated} 1`,
		`m{a="dangling\} 1`,
		`m{a="bad\escape"} 1`,
		`m{a=unquoted} 1`,
		`m{a="x",a="y"} 1`,
		`m{=""} 1`,
		`m{a="v"`,
		`m{a="v"} `,
		`m{a="v"} 1 1234567890`,
	}
	for _, text := range bad {
		if _, err := ParseMetrics(text + "\n"); err == nil {
			t.Errorf("ParseMetrics(%q) succeeded, want error", text)
		}
	}
}

// realisticScrape renders a registry shaped like a real coflowd page —
// labeled series, histogram buckets, shard constant labels — and is the fuzz
// corpus seed closest to production input.
func realisticScrape() string {
	r := NewRegistry(Label{Name: "shard", Value: "shard0"})
	r.Gauge("coflowd_up", "1 while the daemon serves").Set(1)
	r.Counter("coflowd_epochs_total", "engine advances").Add(41)
	v := r.CounterVec("coflowd_rpc_total", "per endpoint", "endpoint")
	v.With("admit").Add(7)
	v.With(`we"ird\pa}th`).Add(1)
	h := r.Histogram("coflowd_tick_duration_seconds", "tick durations", nil)
	for _, x := range []float64{1e-5, 2e-4, 0.3, 7} {
		h.Observe(x)
	}
	return r.Expose()
}

// FuzzParseMetrics hammers the scrape parser with arbitrary text: it must
// never panic, and any page it accepts must survive a render-and-reparse
// round trip with the same series.
func FuzzParseMetrics(f *testing.F) {
	f.Add(realisticScrape())
	f.Add("# HELP a b\n# TYPE a counter\na 1\n")
	f.Add(`m_total{expr="a{b=1,c=2}",q="a\"b\\c\nd"} +Inf` + "\n")
	f.Add("h_bucket{le=\"+Inf\"} 9\nh_bucket{le=\"0.5\"} 3\nh_sum NaN\nh_count 9\n")
	f.Add("m 1 2\nm{a=}")
	f.Fuzz(func(t *testing.T, text string) {
		m, err := ParseMetrics(text)
		if err != nil {
			return
		}
		// Round trip: re-render every accepted sample and reparse. Values can
		// be NaN (self-unequal), so compare names and labels only.
		var b strings.Builder
		for _, s := range m.Samples {
			var labels []Label
			for k, v := range s.Labels {
				labels = append(labels, Label{Name: k, Value: v})
			}
			b.WriteString(s.Name + renderLabels(labels) + " " + formatValue(s.Value) + "\n")
		}
		m2, err := ParseMetrics(b.String())
		if err != nil {
			t.Fatalf("reparse of accepted page failed: %v\npage:\n%s", err, b.String())
		}
		if len(m2.Samples) != len(m.Samples) {
			t.Fatalf("round trip changed sample count %d -> %d", len(m.Samples), len(m2.Samples))
		}
		for i, s := range m.Samples {
			s2 := m2.Samples[i]
			if s.Name != s2.Name || len(s.Labels) != len(s2.Labels) {
				t.Fatalf("round trip changed sample %d: %#v -> %#v", i, s, s2)
			}
			for k, v := range s.Labels {
				if s2.Labels[k] != v {
					t.Fatalf("round trip changed label %q: %q -> %q", k, v, s2.Labels[k])
				}
			}
		}
	})
}
