package telemetry

import (
	"fmt"
	"strconv"
	"strings"
)

// Sample is one parsed exposition series: a metric name, its label set and
// the sample value.
type Sample struct {
	Name   string
	Labels map[string]string
	Value  float64
}

// Metrics is a parsed exposition page.
type Metrics struct {
	Samples []Sample
	// Types maps metric names to their declared # TYPE (counter, gauge,
	// histogram) when one was present.
	Types map[string]string
}

// Get returns the first sample with the given name (and, if labels given as
// alternating key/value pairs, matching those labels).
func (m *Metrics) Get(name string, kv ...string) (Sample, bool) {
	if len(kv)%2 != 0 {
		panic("telemetry: Get wants alternating label key/value pairs")
	}
outer:
	for _, s := range m.Samples {
		if s.Name != name {
			continue
		}
		for i := 0; i < len(kv); i += 2 {
			if s.Labels[kv[i]] != kv[i+1] {
				continue outer
			}
		}
		return s, true
	}
	return Sample{}, false
}

// Names returns the set of distinct sample names on the page.
func (m *Metrics) Names() map[string]bool {
	out := make(map[string]bool, len(m.Samples))
	for _, s := range m.Samples {
		out[s.Name] = true
	}
	return out
}

// ParseMetrics parses a Prometheus text-format (version 0.0.4) exposition
// page: `name{label="value",...} value` sample lines plus # HELP / # TYPE
// comments. It is deliberately minimal — no timestamps, no exemplars — but
// strict about what it does cover: any line it cannot parse is an error, so
// a test feeding it a daemon's /metrics output proves the whole page
// conforms.
func ParseMetrics(text string) (*Metrics, error) {
	m := &Metrics{Types: make(map[string]string)}
	for ln, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			if len(fields) >= 4 && fields[1] == "TYPE" {
				if !validName(fields[2]) {
					return nil, fmt.Errorf("line %d: invalid metric name %q in TYPE comment", ln+1, fields[2])
				}
				switch fields[3] {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					return nil, fmt.Errorf("line %d: unknown metric type %q", ln+1, fields[3])
				}
				m.Types[fields[2]] = fields[3]
			}
			continue
		}
		s, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", ln+1, err)
		}
		m.Samples = append(m.Samples, s)
	}
	return m, nil
}

func parseSample(line string) (Sample, error) {
	s := Sample{Labels: map[string]string{}}
	rest := line
	// Name runs to the first '{' or space.
	end := strings.IndexAny(rest, "{ \t")
	if end < 0 {
		return s, fmt.Errorf("sample %q has no value", line)
	}
	s.Name = rest[:end]
	if !validName(s.Name) {
		return s, fmt.Errorf("invalid metric name %q", s.Name)
	}
	rest = rest[end:]
	if rest[0] == '{' {
		// The label block must be scanned quote-aware: a label value may
		// legally contain '}', ',' or '=', so searching for the closing brace
		// textually would split the block in the wrong place.
		n, err := parseLabelBlock(rest, s.Labels)
		if err != nil {
			return s, err
		}
		rest = rest[n:]
	}
	rest = strings.TrimSpace(rest)
	if rest == "" {
		return s, fmt.Errorf("sample %q has no value", line)
	}
	// A trailing timestamp would appear as a second field; reject it — the
	// repo's daemons never emit one.
	if strings.ContainsAny(rest, " \t") {
		return s, fmt.Errorf("unexpected trailing fields in %q", line)
	}
	v, err := parseValue(rest)
	if err != nil {
		return s, fmt.Errorf("bad value in %q: %w", line, err)
	}
	s.Value = v
	return s, nil
}

// parseValue accepts what the exposition format emits: decimal floats plus
// the literal +Inf/-Inf/NaN forms (strconv also accepts spelling variants
// like "inf"; samples are produced by machines, so leniency there is safe).
func parseValue(raw string) (float64, error) {
	return strconv.ParseFloat(raw, 64)
}

// parseLabelBlock parses a `{name="value",...}` block starting at
// rest[0]=='{' into dst, returning the number of input bytes consumed.
func parseLabelBlock(rest string, dst map[string]string) (int, error) {
	i := 1 // past '{'
	for {
		// Skip separators and whitespace before a name or the closing brace.
		for i < len(rest) && (rest[i] == ',' || rest[i] == ' ' || rest[i] == '\t') {
			i++
		}
		if i >= len(rest) {
			return 0, fmt.Errorf("unterminated label block")
		}
		if rest[i] == '}' {
			return i + 1, nil
		}
		eq := strings.IndexByte(rest[i:], '=')
		if eq < 0 {
			return 0, fmt.Errorf("label %q has no value", rest[i:])
		}
		name := strings.TrimSpace(rest[i : i+eq])
		if !validName(name) {
			return 0, fmt.Errorf("invalid label name %q", name)
		}
		i += eq + 1
		for i < len(rest) && (rest[i] == ' ' || rest[i] == '\t') {
			i++
		}
		if i >= len(rest) || rest[i] != '"' {
			return 0, fmt.Errorf("label %q value is not quoted", name)
		}
		value, n, err := unquoteLabelValue(rest[i:])
		if err != nil {
			return 0, fmt.Errorf("label %q: %w", name, err)
		}
		if _, dup := dst[name]; dup {
			return 0, fmt.Errorf("label %q repeated", name)
		}
		dst[name] = value
		i += n
	}
}

// unquoteLabelValue decodes one quoted label value starting at rest[0]=='"',
// returning the value and the number of input bytes consumed.
func unquoteLabelValue(rest string) (string, int, error) {
	var b strings.Builder
	for i := 1; i < len(rest); i++ {
		switch rest[i] {
		case '\\':
			if i+1 >= len(rest) {
				return "", 0, fmt.Errorf("dangling escape")
			}
			i++
			switch rest[i] {
			case '\\':
				b.WriteByte('\\')
			case '"':
				b.WriteByte('"')
			case 'n':
				b.WriteByte('\n')
			default:
				return "", 0, fmt.Errorf("unknown escape \\%c", rest[i])
			}
		case '"':
			return b.String(), i + 1, nil
		default:
			b.WriteByte(rest[i])
		}
	}
	return "", 0, fmt.Errorf("unterminated quoted value")
}
