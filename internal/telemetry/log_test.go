package telemetry

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log/slog"
	"strings"
	"testing"
)

func TestNewLoggerTextAndJSON(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(&buf, slog.LevelInfo, "text", "coflowd", "shard2")
	l.Info("draining", "active", 3)
	out := buf.String()
	for _, want := range []string{"component=coflowd", "shard=shard2", "draining", "active=3"} {
		if !strings.Contains(out, want) {
			t.Errorf("text log %q missing %q", out, want)
		}
	}

	buf.Reset()
	l = NewLogger(&buf, slog.LevelInfo, "json", "coflowgate", "")
	l.Warn("backend ejected", "backend", "s1")
	var rec map[string]any
	if err := json.Unmarshal(buf.Bytes(), &rec); err != nil {
		t.Fatalf("json log is not JSON: %v (%q)", err, buf.String())
	}
	if rec["component"] != "coflowgate" || rec["backend"] != "s1" || rec["msg"] != "backend ejected" {
		t.Errorf("json record = %v", rec)
	}
	if _, hasShard := rec["shard"]; hasShard {
		t.Error("empty shard must not be attached")
	}
}

func TestNewLoggerLevelFilter(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(&buf, slog.LevelWarn, "text", "c", "")
	l.Info("quiet")
	if buf.Len() != 0 {
		t.Errorf("info leaked through warn level: %q", buf.String())
	}
	l.Error("loud")
	if buf.Len() == 0 {
		t.Error("error suppressed at warn level")
	}
}

func TestParseLevel(t *testing.T) {
	cases := map[string]slog.Level{
		"debug": slog.LevelDebug, "info": slog.LevelInfo, "WARN": slog.LevelWarn,
		"warning": slog.LevelWarn, "error": slog.LevelError, "bogus": slog.LevelInfo,
	}
	for in, want := range cases {
		if got := ParseLevel(in); got != want {
			t.Errorf("ParseLevel(%q) = %v, want %v", in, got, want)
		}
	}
}

func TestLogfLoggerBridgesAttrs(t *testing.T) {
	var lines []string
	l := LogfLogger(func(format string, args ...any) {
		lines = append(lines, fmt.Sprintf(format, args...))
	})
	l = l.With("backend", "s3")
	l.Info("ejected", "failures", 2)
	l.Debug("probe failed") // printf sinks drop debug chatter
	if len(lines) != 1 {
		t.Fatalf("got %d lines, want 1 (debug filtered): %v", len(lines), lines)
	}
	for _, want := range []string{"ejected", "backend=s3", "failures=2"} {
		if !strings.Contains(lines[0], want) {
			t.Errorf("bridged line %q missing %q", lines[0], want)
		}
	}
}

func TestDiscardLogger(t *testing.T) {
	// Must simply not panic or allocate surprises.
	l := DiscardLogger()
	l.Info("dropped", "k", "v")
	l.With("a", 1).WithGroup("g").Error("also dropped")
}
