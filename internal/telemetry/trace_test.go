package telemetry

import (
	"encoding/json"
	"net/http/httptest"
	"testing"
	"time"
)

func TestTracerRecordAndJoin(t *testing.T) {
	gw := NewTracer("coflowgate", "", 16)
	sh := NewTracer("coflowd", "shard0", 16)
	id := NewTraceID()
	if len(id) == 0 {
		t.Fatal("empty trace id")
	}
	gw.Record(Span{Trace: id, Name: "admit", Coflow: 0, Duration: 0.001})
	gw.Record(Span{Trace: NewTraceID(), Name: "admit", Coflow: 1})
	sh.Record(Span{Trace: id, Name: "shard-admit", Coflow: 5})

	g := gw.ByTrace(id)
	s := sh.ByTrace(id)
	if len(g) != 1 || len(s) != 1 {
		t.Fatalf("ByTrace: gateway %d spans, shard %d spans, want 1+1", len(g), len(s))
	}
	if g[0].Component != "coflowgate" || s[0].Component != "coflowd" || s[0].Shard != "shard0" {
		t.Errorf("tracer identity not stamped: %+v %+v", g[0], s[0])
	}
	if g[0].Wall.IsZero() {
		t.Error("wall clock not stamped")
	}
}

func TestTracerRingBounds(t *testing.T) {
	tr := NewTracer("x", "", 4)
	for i := 0; i < 10; i++ {
		tr.Record(Span{Name: "s", Coflow: i, Wall: time.Unix(int64(i), 0)})
	}
	spans := tr.Snapshot()
	if len(spans) != 4 {
		t.Fatalf("ring holds %d spans, want 4", len(spans))
	}
	for i, s := range spans {
		if s.Coflow != 6+i {
			t.Errorf("span %d is coflow %d, want %d (oldest evicted, order kept)", i, s.Coflow, 6+i)
		}
	}
	d := tr.Dump("", 0)
	if d.Total != 10 || d.Dropped != 6 {
		t.Errorf("total/dropped = %d/%d, want 10/6", d.Total, d.Dropped)
	}
}

func TestTraceHandler(t *testing.T) {
	tr := NewTracer("coflowd", "s1", 8)
	id := NewTraceID()
	tr.Record(Span{Trace: id, Name: "shard-admit", Coflow: 3})
	tr.Record(Span{Name: "epoch-decision", Coflow: -1})

	rec := httptest.NewRecorder()
	tr.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces", nil))
	var dump TraceDump
	if err := json.Unmarshal(rec.Body.Bytes(), &dump); err != nil {
		t.Fatalf("payload is not JSON: %v", err)
	}
	if dump.Component != "coflowd" || dump.Shard != "s1" || len(dump.Spans) != 2 {
		t.Fatalf("dump = %+v", dump)
	}

	rec = httptest.NewRecorder()
	tr.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces?trace="+id, nil))
	if err := json.Unmarshal(rec.Body.Bytes(), &dump); err != nil {
		t.Fatal(err)
	}
	if len(dump.Spans) != 1 || dump.Spans[0].Trace != id {
		t.Fatalf("filtered dump = %+v, want just trace %s", dump.Spans, id)
	}
}

func TestNilTracerIsSafe(t *testing.T) {
	var tr *Tracer
	tr.Record(Span{Name: "x"}) // must not panic
	if got := tr.Snapshot(); got != nil {
		t.Errorf("nil tracer snapshot = %v", got)
	}
}

func TestTraceIDsDistinct(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 100; i++ {
		id := NewTraceID()
		if seen[id] {
			t.Fatalf("duplicate trace id %s", id)
		}
		seen[id] = true
	}
}
