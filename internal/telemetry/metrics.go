// Package telemetry is the repo's observability layer: a labeled metrics
// registry with Prometheus text exposition (metrics.go), per-coflow lifecycle
// tracing into bounded span rings (trace.go), structured-logging constructors
// over log/slog (log.go), and a minimal Prometheus text-format parser
// (promparse.go) that keeps the exposition honest in tests.
//
// The package depends only on the standard library — the repo takes no
// external dependencies — and is a leaf: both daemons (coflowd via
// internal/server, coflowgate via internal/cluster) serve /metrics and
// /debug/traces from this one code path instead of hand-built string
// concatenation.
package telemetry

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one name=value pair attached to a metric series.
type Label struct {
	Name  string
	Value string
}

// Registry holds a daemon's metric families and renders them in Prometheus
// text exposition format (version 0.0.4). Families expose series in
// registration order; a registry-wide set of constant labels (e.g.
// {shard="shard3"}) is stamped onto every series, which is how a gateway
// scraping N backends keeps their time series apart.
//
// All metric operations are safe for concurrent use. Registering the same
// name twice panics: duplicate registration is a programming error the first
// scrape would otherwise silently mask.
type Registry struct {
	mu          sync.Mutex
	constLabels []Label
	families    []*family
	byName      map[string]*family
	// onScrape hooks run (in registration order) at the start of every
	// WriteText, letting scrape-time values (engine gauges, roster state) be
	// refreshed exactly when they are observed.
	onScrape []func()
}

// NewRegistry builds a registry whose every series carries the given
// constant labels.
func NewRegistry(constLabels ...Label) *Registry {
	return &Registry{constLabels: constLabels, byName: make(map[string]*family)}
}

type metricType string

const (
	typeCounter   metricType = "counter"
	typeGauge     metricType = "gauge"
	typeHistogram metricType = "histogram"
)

// family is one named metric with zero or more labeled children.
type family struct {
	name       string
	help       string
	typ        metricType
	labelNames []string
	buckets    []float64 // histograms only

	mu       sync.Mutex
	children map[string]metricValue
	order    []string
}

type metricValue interface {
	write(w io.Writer, name string, labels string)
}

// validName matches the Prometheus metric/label name charset.
func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		alpha := (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || r == '_' || r == ':'
		if !alpha && (i == 0 || r < '0' || r > '9') {
			return false
		}
	}
	return true
}

func (r *Registry) register(name, help string, typ metricType, labelNames []string, buckets []float64) *family {
	if !validName(name) {
		panic(fmt.Sprintf("telemetry: invalid metric name %q", name))
	}
	for _, l := range labelNames {
		if !validName(l) || l == "le" {
			panic(fmt.Sprintf("telemetry: invalid label name %q on %q", l, name))
		}
	}
	f := &family{
		name: name, help: help, typ: typ,
		labelNames: labelNames, buckets: buckets,
		children: make(map[string]metricValue),
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.byName[name]; dup {
		panic(fmt.Sprintf("telemetry: metric %q registered twice", name))
	}
	r.byName[name] = f
	r.families = append(r.families, f)
	return f
}

// OnScrape registers a hook run at the start of every exposition, before any
// series is rendered. Use it to refresh gauges whose truth lives elsewhere
// (engine statistics, backend rosters) exactly at scrape time.
func (r *Registry) OnScrape(f func()) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.onScrape = append(r.onScrape, f)
}

// child fetches or creates the labeled child for the given label values.
func (f *family) child(values []string, make func() metricValue) metricValue {
	if len(values) != len(f.labelNames) {
		panic(fmt.Sprintf("telemetry: metric %q wants %d label values, got %d", f.name, len(f.labelNames), len(values)))
	}
	key := strings.Join(values, "\x00")
	f.mu.Lock()
	defer f.mu.Unlock()
	if m, ok := f.children[key]; ok {
		return m
	}
	m := make()
	f.children[key] = m
	f.order = append(f.order, key)
	return m
}

// ---- Counter ----

// Counter is a monotonically increasing value. Set exists for scrape-time
// mirrors of counters accumulated elsewhere (the engine's epoch and
// completion totals): the underlying source is monotonic, the registry copy
// just tracks it.
type Counter struct{ bits atomic.Uint64 }

// Inc adds 1.
func (c *Counter) Inc() { c.Add(1) }

// Add adds v (must be >= 0; negative deltas are ignored).
func (c *Counter) Add(v float64) {
	if v < 0 || math.IsNaN(v) {
		return
	}
	for {
		old := c.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if c.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Set overwrites the counter with a scrape-time value from a monotonic
// source.
func (c *Counter) Set(v float64) { c.bits.Store(math.Float64bits(v)) }

// Value reads the counter.
func (c *Counter) Value() float64 { return math.Float64frombits(c.bits.Load()) }

func (c *Counter) write(w io.Writer, name, labels string) {
	fmt.Fprintf(w, "%s%s %s\n", name, labels, formatValue(c.Value()))
}

// Counter registers an unlabeled counter.
func (r *Registry) Counter(name, help string) *Counter {
	f := r.register(name, help, typeCounter, nil, nil)
	return f.child(nil, func() metricValue { return &Counter{} }).(*Counter)
}

// CounterVec is a counter family keyed by label values.
type CounterVec struct{ f *family }

// CounterVec registers a labeled counter family.
func (r *Registry) CounterVec(name, help string, labelNames ...string) *CounterVec {
	return &CounterVec{f: r.register(name, help, typeCounter, labelNames, nil)}
}

// With returns the child counter for the given label values (created on
// first use).
func (v *CounterVec) With(values ...string) *Counter {
	return v.f.child(values, func() metricValue { return &Counter{} }).(*Counter)
}

// ---- Gauge ----

// Gauge is a value that can go up and down.
type Gauge struct{ bits atomic.Uint64 }

// Set overwrites the gauge.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adjusts the gauge by v.
func (g *Gauge) Add(v float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value reads the gauge.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

func (g *Gauge) write(w io.Writer, name, labels string) {
	fmt.Fprintf(w, "%s%s %s\n", name, labels, formatValue(g.Value()))
}

// Gauge registers an unlabeled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	f := r.register(name, help, typeGauge, nil, nil)
	return f.child(nil, func() metricValue { return &Gauge{} }).(*Gauge)
}

// GaugeVec is a gauge family keyed by label values.
type GaugeVec struct{ f *family }

// GaugeVec registers a labeled gauge family.
func (r *Registry) GaugeVec(name, help string, labelNames ...string) *GaugeVec {
	return &GaugeVec{f: r.register(name, help, typeGauge, labelNames, nil)}
}

// With returns the child gauge for the given label values.
func (v *GaugeVec) With(values ...string) *Gauge {
	return v.f.child(values, func() metricValue { return &Gauge{} }).(*Gauge)
}

// ---- Histogram ----

// DefTimeBuckets are the default latency buckets in seconds, spanning the
// microsecond ticks of an idle shard to multi-second LP solves.
var DefTimeBuckets = []float64{1e-5, 5e-5, 1e-4, 5e-4, 1e-3, 5e-3, 0.01, 0.05, 0.1, 0.5, 1, 5}

// Histogram counts observations into explicit cumulative buckets, exposed as
// name_bucket{le="..."} series plus name_sum and name_count.
type Histogram struct {
	mu      sync.Mutex
	buckets []float64 // upper bounds, ascending
	counts  []uint64  // one per bucket, non-cumulative internally
	count   uint64
	sum     float64
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.count++
	h.sum += v
	i := sort.SearchFloat64s(h.buckets, v)
	if i < len(h.counts) {
		h.counts[i]++
	}
}

// Count reads the total observation count.
func (h *Histogram) Count() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

func (h *Histogram) write(w io.Writer, name, labels string) {
	h.mu.Lock()
	counts := append([]uint64(nil), h.counts...)
	count, sum := h.count, h.sum
	h.mu.Unlock()
	cum := uint64(0)
	for i, ub := range h.buckets {
		cum += counts[i]
		fmt.Fprintf(w, "%s_bucket%s %d\n", name, mergeLabels(labels, "le", formatValue(ub)), cum)
	}
	fmt.Fprintf(w, "%s_bucket%s %d\n", name, mergeLabels(labels, "le", "+Inf"), count)
	fmt.Fprintf(w, "%s_sum%s %s\n", name, labels, formatValue(sum))
	fmt.Fprintf(w, "%s_count%s %d\n", name, labels, count)
}

// Histogram registers an unlabeled histogram over the given ascending bucket
// upper bounds (nil means DefTimeBuckets).
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	if buckets == nil {
		buckets = DefTimeBuckets
	}
	if !sort.Float64sAreSorted(buckets) {
		panic(fmt.Sprintf("telemetry: histogram %q buckets are not ascending", name))
	}
	f := r.register(name, help, typeHistogram, nil, buckets)
	return f.child(nil, func() metricValue {
		return &Histogram{buckets: buckets, counts: make([]uint64, len(buckets))}
	}).(*Histogram)
}

// setDist overwrites the histogram with an externally accumulated
// distribution: non-cumulative per-bucket counts (one per configured bucket;
// observations above the last bound live only in count), total count and sum.
// Scrape-time mirrors of runtime-managed histograms use this instead of
// replaying observations one by one.
func (h *Histogram) setDist(counts []uint64, count uint64, sum float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	copy(h.counts, counts)
	for i := len(counts); i < len(h.counts); i++ {
		h.counts[i] = 0
	}
	h.count = count
	h.sum = sum
}

// HistogramVec is a histogram family keyed by label values. All children
// share the family's bucket bounds.
type HistogramVec struct {
	f       *family
	buckets []float64
}

// HistogramVec registers a labeled histogram family over the given ascending
// bucket upper bounds (nil means DefTimeBuckets).
func (r *Registry) HistogramVec(name, help string, buckets []float64, labelNames ...string) *HistogramVec {
	if buckets == nil {
		buckets = DefTimeBuckets
	}
	if !sort.Float64sAreSorted(buckets) {
		panic(fmt.Sprintf("telemetry: histogram %q buckets are not ascending", name))
	}
	return &HistogramVec{f: r.register(name, help, typeHistogram, labelNames, buckets), buckets: buckets}
}

// With returns the child histogram for the given label values (created on
// first use).
func (v *HistogramVec) With(values ...string) *Histogram {
	return v.f.child(values, func() metricValue {
		return &Histogram{buckets: v.buckets, counts: make([]uint64, len(v.buckets))}
	}).(*Histogram)
}

// ---- exposition ----

// formatValue renders a sample value the way Prometheus expects.
func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv64(v)
}

func strconv64(v float64) string { return strings.TrimSpace(fmt.Sprintf("%g", v)) }

// escapeLabelValue applies the exposition format's label-value escaping.
func escapeLabelValue(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return s
}

// renderLabels builds the `{a="b",c="d"}` block (empty string when there are
// no labels).
func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `%s="%s"`, l.Name, escapeLabelValue(l.Value))
	}
	b.WriteByte('}')
	return b.String()
}

// mergeLabels appends one more pair to an already-rendered label block (used
// for histogram le labels).
func mergeLabels(rendered, name, value string) string {
	pair := fmt.Sprintf(`%s="%s"`, name, escapeLabelValue(value))
	if rendered == "" {
		return "{" + pair + "}"
	}
	return rendered[:len(rendered)-1] + "," + pair + "}"
}

// WriteText renders the full exposition: scrape hooks first, then every family
// in registration order with # HELP / # TYPE headers and its children in
// creation order.
func (r *Registry) WriteText(w io.Writer) {
	r.mu.Lock()
	hooks := append([]func(){}, r.onScrape...)
	fams := append([]*family{}, r.families...)
	consts := r.constLabels
	r.mu.Unlock()
	for _, f := range hooks {
		f()
	}
	for _, f := range fams {
		f.mu.Lock()
		keys := append([]string{}, f.order...)
		children := make([]metricValue, len(keys))
		for i, k := range keys {
			children[i] = f.children[k]
		}
		f.mu.Unlock()
		if len(children) == 0 {
			continue
		}
		if f.help != "" {
			fmt.Fprintf(w, "# HELP %s %s\n", f.name, strings.ReplaceAll(f.help, "\n", " "))
		}
		fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.typ)
		for i, key := range keys {
			labels := append([]Label{}, consts...)
			if key != "" || len(f.labelNames) > 0 {
				values := strings.Split(key, "\x00")
				for j, ln := range f.labelNames {
					labels = append(labels, Label{Name: ln, Value: values[j]})
				}
			}
			children[i].write(w, f.name, renderLabels(labels))
		}
	}
}

// Expose renders the exposition to a string.
func (r *Registry) Expose() string {
	var b strings.Builder
	r.WriteText(&b)
	return b.String()
}

// Handler serves the exposition over HTTP with the standard text content
// type.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		w.WriteHeader(http.StatusOK)
		r.WriteText(w)
	})
}
