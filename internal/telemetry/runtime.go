package telemetry

import (
	"runtime"
)

// RegisterRuntimeCollector adds Go process-health series to a registry:
// goroutine count, heap bytes, cumulative GC pause seconds, GC cycle count
// and GOMAXPROCS. Values are read from the runtime at scrape time through an
// OnScrape hook, so an idle daemon costs nothing between scrapes.
//
// Both daemons (coflowd, coflowgate) and coflowmon itself register this, so
// every /metrics page a monitor scrapes carries the same process-health
// families out of the box. The names follow the conventional go_* prefix;
// the registry's constant labels (e.g. {shard="..."}) apply as usual.
func RegisterRuntimeCollector(r *Registry) {
	goroutines := r.Gauge("go_goroutines", "goroutines that currently exist")
	heapBytes := r.Gauge("go_heap_bytes", "heap bytes allocated and still in use")
	gcPause := r.Counter("go_gc_pause_seconds_total", "cumulative stop-the-world GC pause time")
	gcCycles := r.Counter("go_gc_cycles_total", "completed GC cycles")
	maxProcs := r.Gauge("go_gomaxprocs", "GOMAXPROCS setting")
	r.OnScrape(func() {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		goroutines.Set(float64(runtime.NumGoroutine()))
		heapBytes.Set(float64(ms.HeapAlloc))
		gcPause.Set(float64(ms.PauseTotalNs) / 1e9)
		gcCycles.Set(float64(ms.NumGC))
		maxProcs.Set(float64(runtime.GOMAXPROCS(0)))
	})
}
