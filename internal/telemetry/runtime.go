package telemetry

import (
	"math"
	"runtime"
	rtmetrics "runtime/metrics"
	"sort"
)

// runtimeHistBuckets bound the mirrored runtime latency histograms (GC pause,
// scheduler latency): sub-microsecond pauses up to a second. The runtime's
// own bucket boundaries are much finer; each runtime bucket is folded into
// the first bound at or above its upper edge, so the mirror never
// under-reports a latency bucket.
var runtimeHistBuckets = []float64{1e-7, 1e-6, 1e-5, 1e-4, 1e-3, 0.01, 0.1, 1}

// RegisterRuntimeCollector adds Go process-health series to a registry:
// goroutine count, heap bytes, cumulative GC pause seconds, GC cycle count,
// GOMAXPROCS, plus runtime/metrics distributions of individual GC pauses and
// goroutine scheduling latencies. Values are read from the runtime at scrape
// time through an OnScrape hook, so an idle daemon costs nothing between
// scrapes.
//
// Both daemons (coflowd, coflowgate) and coflowmon itself register this, so
// every /metrics page a monitor scrapes carries the same process-health
// families out of the box. The names follow the conventional go_* prefix;
// the registry's constant labels (e.g. {shard="..."}) apply as usual.
func RegisterRuntimeCollector(r *Registry) {
	goroutines := r.Gauge("go_goroutines", "goroutines that currently exist")
	heapBytes := r.Gauge("go_heap_bytes", "heap bytes allocated and still in use")
	gcPause := r.Counter("go_gc_pause_seconds_total", "cumulative stop-the-world GC pause time")
	gcCycles := r.Counter("go_gc_cycles_total", "completed GC cycles")
	maxProcs := r.Gauge("go_gomaxprocs", "GOMAXPROCS setting")
	gcPauses := r.Histogram("go_gc_pause_seconds", "distribution of individual stop-the-world GC pause durations", runtimeHistBuckets)
	schedLat := r.Histogram("go_sched_latency_seconds", "distribution of time goroutines spend runnable before running", runtimeHistBuckets)
	samples := []rtmetrics.Sample{
		{Name: "/gc/pauses:seconds"},
		{Name: "/sched/latencies:seconds"},
	}
	r.OnScrape(func() {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		goroutines.Set(float64(runtime.NumGoroutine()))
		heapBytes.Set(float64(ms.HeapAlloc))
		gcPause.Set(float64(ms.PauseTotalNs) / 1e9)
		gcCycles.Set(float64(ms.NumGC))
		maxProcs.Set(float64(runtime.GOMAXPROCS(0)))
		rtmetrics.Read(samples)
		mirrorRuntimeHist(gcPauses, samples[0].Value)
		mirrorRuntimeHist(schedLat, samples[1].Value)
	})
}

// mirrorRuntimeHist folds a runtime/metrics Float64Histogram into a
// fixed-bucket telemetry histogram. The runtime accumulates since process
// start, so the mirror overwrites rather than observes. The runtime tracks
// no sum; it is approximated from bucket midpoints (unbounded edge buckets
// collapse to their finite bound).
func mirrorRuntimeHist(h *Histogram, v rtmetrics.Value) {
	if v.Kind() != rtmetrics.KindFloat64Histogram {
		return
	}
	rh := v.Float64Histogram()
	counts := make([]uint64, len(runtimeHistBuckets))
	var total uint64
	var sum float64
	for i, c := range rh.Counts {
		if c == 0 || i+1 >= len(rh.Buckets) {
			continue
		}
		lo, hi := rh.Buckets[i], rh.Buckets[i+1]
		mid := (lo + hi) / 2
		switch {
		case math.IsInf(lo, -1):
			mid = hi
		case math.IsInf(hi, 1):
			mid = lo
		}
		total += c
		sum += float64(c) * mid
		if j := sort.SearchFloat64s(runtimeHistBuckets, hi); j < len(counts) {
			counts[j] += c
		}
	}
	h.setDist(counts, total, sum)
}
