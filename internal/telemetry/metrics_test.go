package telemetry

import (
	"sync"
	"testing"
)

func TestCounterGaugeExposition(t *testing.T) {
	r := NewRegistry(Label{Name: "shard", Value: "s0"})
	c := r.Counter("test_requests_total", "requests served")
	g := r.Gauge("test_active", "active things")
	c.Add(3)
	c.Inc()
	g.Set(7.5)
	g.Add(-0.5)

	m, err := ParseMetrics(r.Expose())
	if err != nil {
		t.Fatalf("own exposition does not parse: %v", err)
	}
	if s, ok := m.Get("test_requests_total", "shard", "s0"); !ok || s.Value != 4 {
		t.Errorf("test_requests_total{shard=s0} = %+v, want 4", s)
	}
	if s, ok := m.Get("test_active", "shard", "s0"); !ok || s.Value != 7 {
		t.Errorf("test_active = %+v, want 7", s)
	}
	if m.Types["test_requests_total"] != "counter" || m.Types["test_active"] != "gauge" {
		t.Errorf("types = %v, want counter+gauge", m.Types)
	}
}

func TestCounterIgnoresNegativeAdd(t *testing.T) {
	var c Counter
	c.Add(2)
	c.Add(-5)
	if got := c.Value(); got != 2 {
		t.Errorf("counter after negative add = %v, want 2", got)
	}
}

func TestVecChildrenAndLabelEscaping(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("test_retries_total", "client retries", "endpoint")
	v.With("admit").Add(2)
	v.With("admit").Inc()
	v.With(`we"ird\name`).Inc()

	m, err := ParseMetrics(r.Expose())
	if err != nil {
		t.Fatalf("exposition with escaped labels does not parse: %v", err)
	}
	if s, ok := m.Get("test_retries_total", "endpoint", "admit"); !ok || s.Value != 3 {
		t.Errorf("retries{endpoint=admit} = %+v, want 3 (same child across With calls)", s)
	}
	if _, ok := m.Get("test_retries_total", "endpoint", `we"ird\name`); !ok {
		t.Errorf("escaped label value did not round-trip: %s", r.Expose())
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_latency_seconds", "latency", []float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.05, 0.05, 0.5, 5} {
		h.Observe(v)
	}
	m, err := ParseMetrics(r.Expose())
	if err != nil {
		t.Fatalf("histogram exposition does not parse: %v", err)
	}
	want := map[string]float64{"0.01": 1, "0.1": 3, "1": 4, "+Inf": 5}
	for le, n := range want {
		s, ok := m.Get("test_latency_seconds_bucket", "le", le)
		if !ok || s.Value != n {
			t.Errorf("bucket le=%s = %+v, want %g", le, s, n)
		}
	}
	if s, ok := m.Get("test_latency_seconds_count"); !ok || s.Value != 5 {
		t.Errorf("count = %+v, want 5", s)
	}
	if s, ok := m.Get("test_latency_seconds_sum"); !ok || s.Value < 5.6 || s.Value > 5.61 {
		t.Errorf("sum = %+v, want 5.605", s)
	}
}

func TestOnScrapeHookRuns(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("test_scrape_time", "set at scrape")
	r.OnScrape(func() { g.Set(42) })
	m, err := ParseMetrics(r.Expose())
	if err != nil {
		t.Fatal(err)
	}
	if s, _ := m.Get("test_scrape_time"); s.Value != 42 {
		t.Errorf("scrape hook did not run: %v", s.Value)
	}
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("test_dup_total", "")
	defer func() {
		if recover() == nil {
			t.Error("duplicate registration did not panic")
		}
	}()
	r.Counter("test_dup_total", "")
}

func TestConcurrentMetricOps(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_conc_total", "")
	h := r.Histogram("test_conc_seconds", "", nil)
	v := r.GaugeVec("test_conc_gauge", "", "k")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
				h.Observe(0.001)
				v.With("a").Add(1)
			}
		}(w)
	}
	wg.Wait()
	if got := c.Value(); got != 8000 {
		t.Errorf("concurrent counter = %v, want 8000", got)
	}
	if got := h.Count(); got != 8000 {
		t.Errorf("concurrent histogram count = %v, want 8000", got)
	}
	if got := v.With("a").Value(); got != 8000 {
		t.Errorf("concurrent gauge = %v, want 8000", got)
	}
}

func TestParseMetricsRejectsGarbage(t *testing.T) {
	bad := []string{
		"no_value",
		`name{unterminated="x" 1`,
		`name{bad-label="x"} 1`,
		"name 1 2 3",
		"1name 2",
		"# TYPE name sideways",
	}
	for _, text := range bad {
		if _, err := ParseMetrics(text); err == nil {
			t.Errorf("ParseMetrics(%q) succeeded, want error", text)
		}
	}
	if m, err := ParseMetrics("ok_total 1\n\n# HELP ok_total fine\n# TYPE ok_total counter\nok_total{a=\"b\"} 2.5\n"); err != nil {
		t.Errorf("valid page rejected: %v", err)
	} else if len(m.Samples) != 2 {
		t.Errorf("parsed %d samples, want 2", len(m.Samples))
	}
}

func TestExpositionSeriesAllUnique(t *testing.T) {
	r := NewRegistry(Label{Name: "shard", Value: "x"})
	r.Counter("test_a_total", "").Inc()
	v := r.GaugeVec("test_b", "", "k")
	v.With("1").Set(1)
	v.With("2").Set(2)
	r.Histogram("test_c_seconds", "", []float64{1}).Observe(0.5)
	m, err := ParseMetrics(r.Expose())
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, s := range m.Samples {
		key := s.Name
		for _, k := range []string{"shard", "k", "le"} {
			key += "|" + s.Labels[k]
		}
		if seen[key] {
			t.Errorf("duplicate series %q", key)
		}
		seen[key] = true
		if s.Labels["shard"] != "x" {
			t.Errorf("series %q missing const label shard", s.Name)
		}
	}
}
