package telemetry

import (
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"net/http"
	"strconv"
	"sync"
	"time"
)

// TraceHeader carries a coflow's trace id from the gateway to the shard that
// admits it, so spans recorded by the two daemons join into one lifecycle.
const TraceHeader = "X-Coflow-Trace"

// NewTraceID mints a fresh 16-hex-char trace id (64 random bits — collisions
// across a trace ring's lifetime are negligible).
func NewTraceID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing is unheard of; fall back to a time-derived id
		// rather than panicking inside an admit path.
		return strconv.FormatInt(time.Now().UnixNano(), 16)
	}
	return hex.EncodeToString(b[:])
}

// Span is one recorded step of a coflow's lifecycle (or a daemon-level event
// like an epoch decision, which carries no trace id). Spans are small, flat
// and JSON-stable: /debug/traces consumers join gateway and shard rings on
// the Trace field.
type Span struct {
	// Trace joins this span to a coflow lifecycle; empty for daemon-level
	// spans (epoch decisions).
	Trace string `json:"trace,omitempty"`
	// Name is the lifecycle step: admit, batch-flush, placement, shard-admit,
	// epoch-decision, completion.
	Name string `json:"name"`
	// Component and Shard identify the recording daemon (filled by the
	// tracer).
	Component string `json:"component"`
	Shard     string `json:"shard,omitempty"`
	// Coflow is the recording daemon's coflow id (-1 when not applicable;
	// note gateway and shard ids differ — Trace is the join key).
	Coflow int `json:"coflow"`
	// Wall is the span's wall-clock end time; Duration its length in
	// seconds.
	Wall     time.Time `json:"wall"`
	Duration float64   `json:"duration_seconds"`
	// Attrs carries step-specific detail (backend name, batch size, CCT...).
	Attrs map[string]string `json:"attrs,omitempty"`
}

// Tracer records spans into a bounded ring: a long-running daemon keeps the
// most recent Capacity spans and counts what it dropped. Safe for concurrent
// use.
type Tracer struct {
	component string
	shard     string

	mu      sync.Mutex
	buf     []Span
	next    int
	cap     int
	total   uint64
	dropped uint64
}

// DefaultTraceCapacity bounds a daemon's span ring by default.
const DefaultTraceCapacity = 4096

// NewTracer builds a tracer for one daemon. capacity <= 0 means
// DefaultTraceCapacity.
func NewTracer(component, shard string, capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTraceCapacity
	}
	return &Tracer{component: component, shard: shard, cap: capacity}
}

// Record stores one span, stamping the tracer's identity and the wall clock
// if the span carries none.
func (t *Tracer) Record(s Span) {
	if t == nil {
		return
	}
	s.Component = t.component
	if s.Shard == "" {
		s.Shard = t.shard
	}
	if s.Wall.IsZero() {
		s.Wall = time.Now()
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.total++
	if len(t.buf) < t.cap {
		t.buf = append(t.buf, s)
		return
	}
	t.dropped++
	t.buf[t.next] = s
	t.next = (t.next + 1) % t.cap
}

// Snapshot returns the retained spans in recording order.
func (t *Tracer) Snapshot() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Span, 0, len(t.buf))
	out = append(out, t.buf[t.next:]...)
	out = append(out, t.buf[:t.next]...)
	return out
}

// ByTrace returns the retained spans carrying the given trace id, in
// recording order.
func (t *Tracer) ByTrace(id string) []Span {
	var out []Span
	for _, s := range t.Snapshot() {
		if s.Trace == id {
			out = append(out, s)
		}
	}
	return out
}

// Totals reports the span counts without copying the ring.
func (t *Tracer) Totals() (total, dropped uint64) {
	if t == nil {
		return 0, 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total, t.dropped
}

// TraceDump is the JSON payload of /debug/traces.
type TraceDump struct {
	Component string `json:"component"`
	Shard     string `json:"shard,omitempty"`
	// Total counts spans ever recorded; Dropped those evicted from the ring.
	Total   uint64 `json:"total"`
	Dropped uint64 `json:"dropped"`
	Spans   []Span `json:"spans"`
}

// Dump snapshots the ring as a TraceDump, optionally filtered to one trace
// id and/or limited to the most recent n spans.
func (t *Tracer) Dump(traceID string, n int) TraceDump {
	t.mu.Lock()
	total, dropped := t.total, t.dropped
	t.mu.Unlock()
	spans := t.Snapshot()
	if traceID != "" {
		filtered := spans[:0]
		for _, s := range spans {
			if s.Trace == traceID {
				filtered = append(filtered, s)
			}
		}
		spans = filtered
	}
	if n > 0 && len(spans) > n {
		spans = spans[len(spans)-n:]
	}
	if spans == nil {
		spans = []Span{}
	}
	return TraceDump{Component: t.component, Shard: t.shard, Total: total, Dropped: dropped, Spans: spans}
}

// Handler serves GET /debug/traces: the span ring as JSON, with optional
// ?trace=<id> filtering and ?n=<count> limiting.
func (t *Tracer) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n := 0
		if raw := r.URL.Query().Get("n"); raw != "" {
			if v, err := strconv.Atoi(raw); err == nil && v > 0 {
				n = v
			}
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		_ = json.NewEncoder(w).Encode(t.Dump(r.URL.Query().Get("trace"), n))
	})
}
