// Package telemetry_test holds the scrape-contract conformance tests: every
// series coflowd and coflowgate expose must parse under the strict text-format
// parser, and the family names — dashboards and scrape configs key on them —
// must stay exactly this set. telemetry is a stdlib-only leaf, so importing
// server and cluster here creates no cycle.
package telemetry_test

import (
	"io"
	"net/http"
	"net/http/httptest"
	"sort"
	"testing"

	"coflowsched/internal/cluster"
	"coflowsched/internal/graph"
	"coflowsched/internal/online"
	"coflowsched/internal/server"
	"coflowsched/internal/telemetry"
)

// coflowdFamilies is the stable /metrics name set of a coflowd daemon.
var coflowdFamilies = []string{
	"coflowd_up",
	"coflowd_sim_now",
	"coflowd_epochs_total",
	"coflowd_decisions_total",
	"coflowd_coflows_admitted_total",
	"coflowd_coflows_completed_total",
	"coflowd_coflows_active",
	"coflowd_flows_active",
	"coflowd_weighted_cct",
	"coflowd_weighted_response",
	"coflowd_slowdown_p50",
	"coflowd_slowdown_p95",
	"coflowd_slowdown_p99",
	"coflowd_solve_latency_seconds_p50",
	"coflowd_solve_latency_seconds_p95",
	"coflowd_solve_latency_seconds_p99",
	"coflowd_tick_seconds_p50",
	"coflowd_tick_seconds_p95",
	"coflowd_tick_seconds_p99",
	"coflowd_http_requests_total",
	"coflowd_http_request_errors_total",
	"coflowd_tick_duration_seconds",
	"coflowd_admit_batches_total",
	"coflowd_admit_batch_size",
	"coflowd_trace_spans_total",
	"coflowd_wal_records_total",
	"coflowd_wal_fsyncs_total",
	"coflowd_wal_recovered_coflows",
	"coflowd_snapshots_total",
	"coflowd_admit_stage_seconds",
	"coflowd_wal_records_per_fsync",
	"coflowd_partition_realloc_seconds",
	"coflowd_partition_dirty_suffix",
	"coflowd_partition_cross_flows_total",
	"coflowd_partition_parallel_rounds_total",
	"coflowd_partition_imbalance_ratio",
}

// runtimeFamilies is the process-health set RegisterRuntimeCollector adds to
// every daemon registry.
var runtimeFamilies = []string{
	"go_goroutines",
	"go_heap_bytes",
	"go_gc_pause_seconds_total",
	"go_gc_cycles_total",
	"go_gomaxprocs",
	"go_gc_pause_seconds",
	"go_sched_latency_seconds",
}

// coflowgateFamilies is the stable /metrics name set of a gateway (the
// per-backend and per-endpoint vecs appear once a backend or retry exists).
var coflowgateFamilies = []string{
	"coflowgate_up",
	"coflowgate_coflows_total",
	"coflowgate_completed_total",
	"coflowgate_readmits_total",
	"coflowgate_backends",
	"coflowgate_backends_healthy",
	"coflowgate_http_requests_total",
	"coflowgate_http_request_errors_total",
	"coflowgate_backend_up",
	"coflowgate_backend_outstanding",
	"coflowgate_backend_ejections_total",
	"coflowgate_admit_seconds",
	"coflowgate_trace_spans_total",
	"coflowgate_wal_records_total",
	"coflowgate_wal_fsyncs_total",
	"coflowgate_wal_recovered_coflows",
	"coflowgate_snapshots_total",
}

// scrape fetches and strictly parses one /metrics endpoint.
func scrape(t *testing.T, url string) *telemetry.Metrics {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatalf("get metrics: %v", err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read metrics: %v", err)
	}
	m, err := telemetry.ParseMetrics(string(body))
	if err != nil {
		t.Fatalf("metrics from %s do not parse: %v\n%s", url, err, body)
	}
	return m
}

// baseName strips the histogram sample suffixes so parsed sample names map
// back to registered family names.
func baseName(name string) string {
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		if len(name) > len(suffix) && name[len(name)-len(suffix):] == suffix {
			return name[:len(name)-len(suffix)]
		}
	}
	return name
}

// assertFamilies checks the scraped families are exactly the expected set.
func assertFamilies(t *testing.T, m *telemetry.Metrics, want []string, who string) {
	t.Helper()
	got := map[string]bool{}
	for _, s := range m.Samples {
		got[baseName(s.Name)] = true
	}
	wantSet := map[string]bool{}
	for _, n := range want {
		wantSet[n] = true
		if !got[n] {
			t.Errorf("%s /metrics lacks family %s", who, n)
		}
	}
	var extra []string
	for n := range got {
		if !wantSet[n] {
			extra = append(extra, n)
		}
	}
	sort.Strings(extra)
	for _, n := range extra {
		t.Errorf("%s /metrics grew an unpinned family %s — if intentional, add it here", who, n)
	}
}

// TestCoflowdMetricsConformance pins the standalone daemon's scrape contract.
func TestCoflowdMetricsConformance(t *testing.T) {
	s, err := server.New(server.Config{
		Network: graph.Star(4, 1),
		Policy:  online.SEBFOnline{},
		Logf:    t.Logf,
	})
	if err != nil {
		t.Fatalf("new server: %v", err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	m := scrape(t, ts.URL)
	assertFamilies(t, m, append(append([]string{}, coflowdFamilies...), runtimeFamilies...), "coflowd")
	// The pipeline-stage and partition vecs are the only intentional label
	// dimensions besides histogram buckets; anything else is contract drift.
	for _, s := range m.Samples {
		for key := range s.Labels {
			if key != "le" && key != "stage" && key != "partition" {
				t.Errorf("unlabelled daemon grew label %q on %s: %v", key, s.Name, s.Labels)
			}
		}
	}
	// Every pipeline stage child must be scrapeable from boot — dashboards
	// select on {stage=...} before the first admission arrives.
	for _, stage := range []string{"coalesce-wait", "batch-assembly", "engine-admit", "wal-append", "group-commit"} {
		if _, ok := m.Get("coflowd_admit_stage_seconds_count", "stage", stage); !ok {
			t.Errorf("coflowd_admit_stage_seconds lacks boot-time child for stage %q", stage)
		}
	}
	if typ := m.Types["coflowd_admit_stage_seconds"]; typ != "histogram" {
		t.Errorf("coflowd_admit_stage_seconds type = %q, want histogram", typ)
	}
}

// TestCoflowgateMetricsConformance pins the gateway's scrape contract,
// including the per-backend labelled series.
func TestCoflowgateMetricsConformance(t *testing.T) {
	l, err := cluster.NewLocal(cluster.LocalConfig{
		Shards: 2,
		Policy: online.SEBFOnline{},
		Logf:   t.Logf,
	})
	if err != nil {
		t.Fatalf("new local cluster: %v", err)
	}
	t.Cleanup(l.Close)
	m := scrape(t, l.URL())
	assertFamilies(t, m, append(append([]string{}, coflowgateFamilies...), runtimeFamilies...), "coflowgate")
	for _, shard := range []string{"shard0", "shard1"} {
		if s, ok := m.Get("coflowgate_backend_up", "shard", shard); !ok || s.Value != 1 {
			t.Errorf("coflowgate_backend_up{shard=%q} = %+v, %v", shard, s, ok)
		}
	}
	if typ := m.Types["coflowgate_admit_seconds"]; typ != "histogram" {
		t.Errorf("coflowgate_admit_seconds type = %q, want histogram", typ)
	}
}
