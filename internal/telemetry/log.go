package telemetry

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"strings"
)

// NewLogger builds the daemon-standard structured logger: text or JSON
// records to w at the given level, with component (and shard, when
// non-empty) attached to every record. The format strings accepted are
// "text" and "json"; anything else falls back to text.
func NewLogger(w io.Writer, level slog.Level, format, component, shard string) *slog.Logger {
	opts := &slog.HandlerOptions{Level: level}
	var h slog.Handler
	if strings.EqualFold(format, "json") {
		h = slog.NewJSONHandler(w, opts)
	} else {
		h = slog.NewTextHandler(w, opts)
	}
	l := slog.New(h)
	if component != "" {
		l = l.With("component", component)
	}
	if shard != "" {
		l = l.With("shard", shard)
	}
	return l
}

// ParseLevel maps the CLI-flag level names onto slog levels (defaulting to
// info on unknown input).
func ParseLevel(s string) slog.Level {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "debug":
		return slog.LevelDebug
	case "warn", "warning":
		return slog.LevelWarn
	case "error":
		return slog.LevelError
	default:
		return slog.LevelInfo
	}
}

// DiscardLogger returns a logger that drops everything — the default for
// library configs whose caller wired no logging.
func DiscardLogger() *slog.Logger {
	return slog.New(discardHandler{})
}

type discardHandler struct{}

func (discardHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (discardHandler) Handle(context.Context, slog.Record) error { return nil }
func (discardHandler) WithAttrs([]slog.Attr) slog.Handler        { return discardHandler{} }
func (discardHandler) WithGroup(string) slog.Handler             { return discardHandler{} }

// LogfLogger adapts a printf-style sink into a structured logger: records
// render as "msg key=value ...". It bridges the pre-slog Logf config fields
// (still honored for compatibility — tests pass t.Logf there) into the
// structured call sites.
func LogfLogger(logf func(format string, args ...any)) *slog.Logger {
	if logf == nil {
		return DiscardLogger()
	}
	return slog.New(&logfHandler{logf: logf})
}

type logfHandler struct {
	logf  func(format string, args ...any)
	attrs []slog.Attr
}

func (h *logfHandler) Enabled(_ context.Context, level slog.Level) bool {
	// Printf sinks have no level filtering of their own; keep debug chatter
	// (per-retry, per-probe lines) out of them.
	return level >= slog.LevelInfo
}

func (h *logfHandler) Handle(_ context.Context, r slog.Record) error {
	var b strings.Builder
	b.WriteString(r.Message)
	appendAttr := func(a slog.Attr) bool {
		fmt.Fprintf(&b, " %s=%v", a.Key, a.Value.Any())
		return true
	}
	for _, a := range h.attrs {
		appendAttr(a)
	}
	r.Attrs(appendAttr)
	h.logf("%s", b.String())
	return nil
}

func (h *logfHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	return &logfHandler{logf: h.logf, attrs: append(append([]slog.Attr{}, h.attrs...), attrs...)}
}

func (h *logfHandler) WithGroup(string) slog.Handler { return h }
