package sim

import (
	"math/rand"
	"testing"

	"coflowsched/internal/coflow"
)

func asFlow(rank, cf, idx int) *flowState {
	return &flowState{ref: coflow.FlowRef{Coflow: cf, Index: idx}, rank: rank}
}

// collectKeys walks the level-0 chain and verifies every level is sorted.
func collectKeys(t *testing.T, a *activeSet) []activeKey {
	t.Helper()
	var keys []activeKey
	for n := a.First(); n != nil; n = n.next[0] {
		keys = append(keys, n.key)
	}
	for lvl := 0; lvl < activeMaxLevel; lvl++ {
		prev := a.head
		for n := a.head.next[lvl]; n != nil; n = n.next[lvl] {
			if prev != a.head && !keyLess(prev.key, n.key) {
				t.Fatalf("level %d out of order: %v before %v", lvl, prev.key, n.key)
			}
			prev = n
		}
	}
	if len(keys) != a.Len() {
		t.Fatalf("walked %d nodes, Len() = %d", len(keys), a.Len())
	}
	return keys
}

// TestActiveSetOrderedOps drives random inserts and deletes and checks the
// skip list stays sorted with exactly the live membership.
func TestActiveSetOrderedOps(t *testing.T) {
	a := newActiveSet()
	rng := rand.New(rand.NewSource(3))
	var live []*flowState
	for op := 0; op < 2000; op++ {
		if len(live) == 0 || rng.Intn(3) > 0 {
			st := asFlow(rng.Intn(10), op, rng.Intn(4))
			a.Insert(st)
			live = append(live, st)
		} else {
			i := rng.Intn(len(live))
			a.Delete(live[i])
			live[i] = live[len(live)-1]
			live = live[:len(live)-1]
		}
	}
	keys := collectKeys(t, a)
	if len(keys) != len(live) {
		t.Fatalf("set has %d members, want %d", len(keys), len(live))
	}
	for i := 1; i < len(keys); i++ {
		if !keyLess(keys[i-1], keys[i]) {
			t.Fatalf("keys out of order at %d: %v, %v", i, keys[i-1], keys[i])
		}
	}
}

// TestActiveSetSeek checks Seek returns the first node at or after a key.
func TestActiveSetSeek(t *testing.T) {
	a := newActiveSet()
	for _, r := range []int{2, 4, 6, 8} {
		a.Insert(asFlow(r, r, 0))
	}
	if n := a.Seek(activeKey{rank: 5}); n == nil || n.key.rank != 6 {
		t.Fatalf("Seek(5) = %+v, want rank 6", n)
	}
	if n := a.Seek(activeKey{rank: 4}); n == nil || n.key.rank != 4 {
		t.Fatalf("Seek(4) = %+v, want rank 4 (inclusive)", n)
	}
	if n := a.Seek(activeKey{rank: 9}); n != nil {
		t.Fatalf("Seek(9) = %+v, want nil", n)
	}
	if n := a.Seek(activeKey{rank: -1}); n == nil || n.key.rank != 2 {
		t.Fatalf("Seek(-1) = %+v, want first node", n)
	}
}

// TestActiveSetRebuild changes every rank and checks Rebuild restores
// order while reusing the nodes.
func TestActiveSetRebuild(t *testing.T) {
	a := newActiveSet()
	var flows []*flowState
	for i := 0; i < 50; i++ {
		st := asFlow(i, i, 0)
		a.Insert(st)
		flows = append(flows, st)
	}
	before := map[*flowState]*activeNode{}
	for _, st := range flows {
		before[st] = st.node
	}
	// Reverse the priority order.
	for i, st := range flows {
		st.rank = len(flows) - i
	}
	a.Rebuild()
	keys := collectKeys(t, a)
	if len(keys) != len(flows) {
		t.Fatalf("rebuild lost nodes: %d of %d", len(keys), len(flows))
	}
	for i := 1; i < len(keys); i++ {
		if !keyLess(keys[i-1], keys[i]) {
			t.Fatalf("rebuilt keys out of order: %v, %v", keys[i-1], keys[i])
		}
	}
	if first := a.First(); first.st != flows[len(flows)-1] {
		t.Errorf("highest priority after reversal is %v, want %v", first.st.ref, flows[len(flows)-1].ref)
	}
	for _, st := range flows {
		if st.node != before[st] {
			t.Fatalf("rebuild allocated a fresh node for %v", st.ref)
		}
	}
}

// TestCompHeapLazyDeletion checks stale entries (superseded rate changes)
// are skipped and compacted.
func TestCompHeapLazyDeletion(t *testing.T) {
	var h compHeap
	a, b := asFlow(0, 0, 0), asFlow(0, 1, 0)
	a.heapSeq, b.heapSeq = 1, 1
	h.Push(compEntry{t: 5, st: a, seq: 1})
	h.Push(compEntry{t: 3, st: b, seq: 1})
	// a's rate changes: old entry goes stale, new projection is earlier.
	a.heapSeq = 2
	h.Push(compEntry{t: 2, st: a, seq: 2})
	pop := func() compEntry {
		for h.Len() > 0 {
			e := h.Peek()
			if e.st.done || e.seq != e.st.heapSeq {
				h.Pop()
				continue
			}
			return h.Pop()
		}
		t.Fatalf("heap empty")
		return compEntry{}
	}
	if e := pop(); e.st != a || e.t != 2 {
		t.Fatalf("first valid pop = %+v, want a@2", e)
	}
	if e := pop(); e.st != b || e.t != 3 {
		t.Fatalf("second valid pop = %+v, want b@3", e)
	}
	// Compaction drops everything stale.
	for i := 0; i < 100; i++ {
		h.Push(compEntry{t: float64(i), st: a, seq: -1})
	}
	h.Push(compEntry{t: 7, st: a, seq: a.heapSeq})
	h.compact()
	if h.Len() != 1 || h.Peek().t != 7 {
		t.Fatalf("compact kept %d entries (top %+v), want the single live one", h.Len(), h.Peek())
	}
}
