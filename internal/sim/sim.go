// Package sim implements the flow-level event-driven simulator described in
// §4.1 of the paper. Packet-level simulation is too slow for coflow
// experiments, so — like Varys, RAPIER and the paper itself — we simulate at
// the granularity of flows: each flow is an event at its release time, the
// simulator repeatedly assigns bandwidth to the active flows according to a
// policy, and a second event occurs when a flow completes and releases its
// reserved bandwidth.
//
// Two bandwidth-assignment policies are provided:
//
//   - Priority: flows are served greedily in a caller-supplied order; each
//     flow in turn grabs the bottleneck residual capacity along its path.
//     This is the mechanism behind the LP-Based scheduler's practical mode
//     and the Schedule-only / Baseline heuristics.
//   - FairShare: max-min fair sharing across all active flows (progressive
//     filling), modelling the "every flow gets its fair share" comparator of
//     Figure 1 (s1).
//
// Two entry points expose the simulator:
//
//   - Run simulates an instance to completion in one call (the offline mode
//     used by the paper's experiments).
//   - Simulator is the resumable stepping API used by the online scheduler
//     (internal/online): New builds the simulator, RunUntil advances it to a
//     time boundary, SetOrder re-prioritizes the remaining work between
//     steps, and Residuals reports per-flow transmitted/remaining volumes.
//
// The event loop is incremental. The greedy priority allocation is
// prefix-stable — a flow's rate depends only on flows ranked before it — so
// when a flow completes or is released, only the "dirty suffix" of the
// priority order from the first changed position onward is re-allocated;
// everything before it keeps its rate, its projected completion time (kept
// in a lazy-deletion min-heap) and its untouched lazily-materialized
// residual volume. The active set is a rank-ordered skip list maintained in
// O(log F) per release/completion instead of being rebuilt and re-sorted
// from the state map at every event, bandwidth segments are recorded only
// when a flow's rate actually changes (coalesced at append time), and all
// per-event scratch is reused, so steady-state events allocate (amortized)
// nothing. reference.go retains the naive allocator this design replaced;
// differential tests assert the two produce identical completion times.
package sim

import (
	"fmt"
	"math"
	"slices"

	"coflowsched/internal/coflow"
	"coflowsched/internal/graph"
)

// Policy selects how bandwidth is divided among active flows.
type Policy int

const (
	// Priority serves active flows greedily in the order given by
	// Config.Order.
	Priority Policy = iota
	// FairShare performs max-min fair sharing among all active flows.
	FairShare
)

// Config parameterizes a simulation run.
type Config struct {
	// Paths gives the route of every flow. Flows absent from the map fall
	// back to the instance's pre-assigned path.
	Paths map[coflow.FlowRef]graph.Path
	// Order is the priority order used by the Priority policy. Run requires
	// it to contain every flow exactly once; New accepts a partial order
	// (flows absent from it rank last, in reference order) so an online
	// caller can prioritize only the flows that have arrived.
	Order []coflow.FlowRef
	// Policy selects the bandwidth-assignment policy.
	Policy Policy
	// Partition optionally enables partition-parallel reallocation under the
	// Priority policy: the dirty-suffix redo runs one worker per partition
	// class, with a deterministic rendezvous for flows whose path crosses
	// classes (see parallel.go). Results are bit-identical to the sequential
	// walk for any partition. Must cover every edge of the instance network;
	// nil (or a single-class partition) keeps the redo sequential. FairShare
	// is a global computation and ignores it.
	Partition *graph.EdgePartition
}

// completionTol treats a flow as finished once its remaining volume drops
// below this fraction of its size (guards against FP drift in long runs).
const completionTol = 1e-9

// timeTol absorbs floating-point noise when comparing event times.
const timeTol = 1e-15

// minRate clamps vanishing greedy allocations to zero, exactly like the
// reference allocator.
const minRate = 1e-12

// rebaseEvery bounds floating-point drift in the incrementally maintained
// per-edge residuals: every rebaseEvery-th reallocation recomputes them from
// the raw capacities (a full re-allocation), so undo/redo rounding noise
// cannot accumulate over long runs. Amortized cost is O(F/rebaseEvery) per
// event.
const rebaseEvery = 256

// flowState is the simulator's working record for one flow.
//
// Transmission state is lazy: remaining is the residual volume as of lastT,
// and while the flow's rate is unchanged nothing is touched — views project
// forward virtually with remaining - rate·(now-lastT), and the open
// bandwidth segment [lastT, ·) at the current rate is closed only when the
// rate changes or the flow completes.
type flowState struct {
	ref     coflow.FlowRef
	path    graph.Path
	release float64
	size    float64
	rank    int // position in the priority order

	remaining float64 // residual volume as of lastT
	lastT     float64 // time remaining/segments were last materialized
	rate      float64 // current allocated rate
	segments  []coflow.BandwidthSegment

	done       bool
	completion float64 // time the flow finished (meaningful once done)

	heapSeq int         // invalidates stale completion-heap entries
	node    *activeNode // active-set membership (nil while pending or done)

	orderSeq uint64 // SetOrder stamp: membership in the current order

	// Partition placement, computed once at registration when the simulator
	// runs partitioned (see parallel.go). part is the class owning every edge
	// of the path, or -1 for a cross-class flow, in which case parts lists
	// the distinct classes touched, ascending. pendingRate carries a parallel
	// worker's computed rate to the ordered apply walk.
	part        int32
	parts       []int32
	pendingRate float64
}

// admittedRank is the priority rank of flows added mid-run (Simulator.AddFlow)
// before the next SetOrder: below every flow the current order lists, which
// models newly arrived work waiting at the lowest priority until the next
// re-ordering. math.MaxInt32 exceeds any real order length.
const admittedRank = math.MaxInt32

// FlowStatus is the residual state of one flow, as reported by
// Simulator.Residuals.
type FlowStatus struct {
	Ref       coflow.FlowRef
	Path      graph.Path
	Release   float64
	Size      float64
	Remaining float64
	Done      bool
	// Completion is the simulation time the flow finished (0 until Done).
	Completion float64
}

// CompletionEvent records one flow finishing, in event order.
type CompletionEvent struct {
	Ref  coflow.FlowRef
	Time float64
}

// Simulator is the resumable form of the flow-level simulator. Unlike Run it
// advances in steps: RunUntil(t) simulates up to time t and stops, after
// which the caller may inspect Residuals and install a new priority order
// with SetOrder before resuming. The online scheduler uses exactly this
// loop: one RunUntil per epoch, one SetOrder per policy decision.
type Simulator struct {
	inst   *coflow.Instance
	policy Policy
	states map[coflow.FlowRef]*flowState

	pending releaseHeap // flows awaiting their release time
	active  *activeSet  // released, unfinished flows in priority order
	comp    compHeap    // projected completions (lazy deletion)

	now    float64
	guard  int
	budget int

	numDone  int  // completed flows still registered; Done() is O(1)
	posRates int  // active flows with a positive rate
	dirtyAll bool // SetOrder invalidated every rate

	caps     []float64 // edge capacities (rebase source)
	residual []float64 // per-edge residual capacity under current rates
	eventSeq int       // reallocation counter, drives periodic rebasing
	orderGen uint64    // SetOrder stamp generation

	ep  *graph.EdgePartition // non-nil: partition-parallel redo enabled
	par *parRealloc          // parallel-redo scratch, built on first use

	tickStats  TickStats // allocator-work aggregates, drained by TakeTickStats
	workerSecs []float64 // per-class worker busy seconds, reset on drain

	completions []CompletionEvent // log drained by TakeCompletions

	// Per-event scratch, reused so steady-state events allocate nothing.
	batchDone     []*flowState
	batchReleased []*flowState

	// Fair-share scratch (see allocFairShare).
	fsFlows  []*flowState
	fsRates  []float64
	fsFixed  []bool
	fsOnEdge [][]int32
	fsUsed   []graph.EdgeID
}

// New builds a resumable simulator for the instance. The configured order may
// be partial: flows missing from it are served after every listed flow, tied
// by flow reference, which models newly arrived work waiting at the lowest
// priority until the next re-ordering.
func New(inst *coflow.Instance, cfg Config) (*Simulator, error) {
	refs := inst.FlowRefs()
	g := inst.Network
	s := &Simulator{
		inst:     inst,
		policy:   cfg.Policy,
		states:   make(map[coflow.FlowRef]*flowState, len(refs)),
		active:   newActiveSet(),
		budget:   stepBudget(len(refs)),
		caps:     make([]float64, g.NumEdges()),
		residual: make([]float64, g.NumEdges()),
	}
	for i := range s.caps {
		s.caps[i] = g.Capacity(graph.EdgeID(i))
	}
	copy(s.residual, s.caps)
	if ep := cfg.Partition; ep != nil && ep.Parts() > 1 {
		if ep.NumEdges() != g.NumEdges() {
			return nil, fmt.Errorf("sim: partition covers %d edges, network has %d", ep.NumEdges(), g.NumEdges())
		}
		s.ep = ep
	}
	for _, r := range refs {
		f := inst.Flow(r)
		path := f.Path
		if p, ok := cfg.Paths[r]; ok {
			path = p
		}
		if path == nil {
			return nil, fmt.Errorf("sim: flow %s has no path", r)
		}
		if err := path.Validate(inst.Network, f.Source, f.Dest); err != nil {
			return nil, fmt.Errorf("sim: flow %s: %v", r, err)
		}
		st := &flowState{
			ref:       r,
			path:      path,
			release:   f.Release,
			remaining: f.Size,
			size:      f.Size,
			lastT:     f.Release,
		}
		s.classify(st)
		s.states[r] = st
		s.pending.Push(st)
	}
	if err := s.SetOrder(cfg.Order); err != nil {
		return nil, err
	}
	if s.pending.Len() > 0 {
		s.now = s.pending.PeekTime()
	}
	return s, nil
}

// stepBudget is the per-step event allowance: generous enough for any
// legitimate simulation, small enough to catch starvation loops.
func stepBudget(numFlows int) int { return 100*numFlows + 1000 }

// Now returns the current simulation time.
func (s *Simulator) Now() float64 { return s.now }

// Done reports whether every flow has completed. O(1): completions are
// counted as they happen instead of re-scanning the state map.
func (s *Simulator) Done() bool { return s.numDone == len(s.states) }

// SetOrder installs a new priority order, effective from the next RunUntil.
// The order may be partial (missing flows rank last, in reference order) but
// must not contain duplicates or unknown flows. It is ignored under the
// FairShare policy.
func (s *Simulator) SetOrder(order []coflow.FlowRef) error {
	return s.setOrder(order, false)
}

// SetOrderFiltered is SetOrder for orders that may mention flows the
// simulator no longer knows (completed and forgotten) or does not know yet:
// unknown references are skipped instead of rejected, so an online caller
// can install a policy's order directly without prefiltering it against the
// live flow set. Duplicates among the known flows are still an error.
func (s *Simulator) SetOrderFiltered(order []coflow.FlowRef) error {
	return s.setOrder(order, true)
}

func (s *Simulator) setOrder(order []coflow.FlowRef, dropUnknown bool) error {
	// Stamp-based validation: detects duplicates and unknown flows in one
	// pass without allocating a rank map, and mutates nothing until the
	// order is known to be valid.
	s.orderGen++
	gen := s.orderGen
	for _, r := range order {
		st, ok := s.states[r]
		if !ok {
			if dropUnknown {
				continue
			}
			return fmt.Errorf("sim: priority order names unknown flow %s", r)
		}
		if st.orderSeq == gen {
			return fmt.Errorf("sim: flow %s appears twice in the priority order", r)
		}
		st.orderSeq = gen
	}
	for i, r := range order {
		if st, ok := s.states[r]; ok {
			st.rank = i
		}
	}
	for _, st := range s.states {
		if st.orderSeq != gen {
			st.rank = len(order) // after every listed flow; ties by ref
		}
	}
	return s.finishSetOrder()
}

// SetOrderHandles is SetOrderFiltered for a caller that already holds a
// handle to every flow it wants ranked: the order installs without a map
// probe per reference. Invalid handles are skipped; duplicates among the
// valid ones are still an error. The unlisted remainder is found by walking
// the active list and the pending heap instead of iterating the state map —
// completed flows never rejoin either structure, so their stale ranks are
// unreachable. The online engine's decide path is the customer: its handle
// table already knows which refs are live.
func (s *Simulator) SetOrderHandles(order []Handle) error {
	s.orderGen++
	gen := s.orderGen
	for _, h := range order {
		st := h.st
		if st == nil {
			continue
		}
		if st.orderSeq == gen {
			return fmt.Errorf("sim: flow %s appears twice in the priority order", st.ref)
		}
		st.orderSeq = gen
	}
	for i, h := range order {
		if st := h.st; st != nil {
			st.rank = i
		}
	}
	n := len(order)
	for node := s.active.First(); node != nil; node = node.next[0] {
		if node.st.orderSeq != gen {
			node.st.rank = n
		}
	}
	for _, st := range s.pending.fs {
		if st.orderSeq != gen {
			st.rank = n
		}
	}
	return s.finishSetOrder()
}

// finishSetOrder runs the shared tail of every order installation: decide
// whether the new ranks actually reordered the active list, and either
// refresh keys in place or pay the rebuild.
func (s *Simulator) finishSetOrder() error {
	// Rates depend only on the relative order of the active flows, not the
	// rank values. If the new ranks leave the active list sorted — the common
	// case for an online policy re-applying a stable order every epoch — the
	// keys are refreshed in place and every rate, completion projection and
	// open segment stays valid. Only a genuine re-ordering pays the rebuild
	// and the full reallocation.
	sorted := true
	prev := activeKey{rank: -1, coflow: -1, index: -1}
	for n := s.active.First(); n != nil; n = n.next[0] {
		k := activeKey{rank: n.st.rank, coflow: n.st.ref.Coflow, index: n.st.ref.Index}
		if !keyLess(prev, k) {
			sorted = false
			break
		}
		prev = k
	}
	if sorted {
		for n := s.active.First(); n != nil; n = n.next[0] {
			n.key = activeKey{rank: n.st.rank, coflow: n.st.ref.Coflow, index: n.st.ref.Index}
		}
		return nil
	}
	s.active.Rebuild() // keys changed with the ranks
	s.dirtyAll = true  // every rate is suspect until the next reallocation
	return nil
}

// AddFlow registers a new flow with a running simulator, modelling online
// admission: the flow joins the instance state and becomes active at its
// release time. The reference must be unused, the release must not lie in
// the simulator's past, and the path (the explicit argument, falling back to
// f.Path) must connect the flow's endpoints. Until the next SetOrder the new
// flow ranks below every existing flow — newly admitted work waits at the
// lowest priority until the next re-ordering, exactly like flows omitted
// from a partial order.
func (s *Simulator) AddFlow(ref coflow.FlowRef, f coflow.Flow, path graph.Path) error {
	if _, exists := s.states[ref]; exists {
		return fmt.Errorf("sim: flow %s is already registered", ref)
	}
	if f.Size <= 0 || math.IsNaN(f.Size) || math.IsInf(f.Size, 0) {
		return fmt.Errorf("sim: flow %s has invalid size %v", ref, f.Size)
	}
	if f.Release < s.now-timeTol {
		return fmt.Errorf("sim: flow %s released at %v, in the past of the simulation clock %v", ref, f.Release, s.now)
	}
	if path == nil {
		path = f.Path
	}
	if path == nil {
		return fmt.Errorf("sim: flow %s has no path", ref)
	}
	if err := path.Validate(s.inst.Network, f.Source, f.Dest); err != nil {
		return fmt.Errorf("sim: flow %s: %v", ref, err)
	}
	st := &flowState{
		ref:       ref,
		path:      path,
		release:   f.Release,
		remaining: f.Size,
		size:      f.Size,
		lastT:     f.Release,
		rank:      admittedRank,
	}
	s.classify(st)
	s.states[ref] = st
	s.pending.Push(st)
	return nil
}

// Remove deregisters a flow that was added but has not yet been released
// into the active set — the window between AddFlow and the RunUntil that
// passes its release time. The online engine uses it to roll back the
// already-registered flows of a coflow whose admission fails midway, leaving
// the simulator byte-identical to the state before the attempt.
func (s *Simulator) Remove(ref coflow.FlowRef) error {
	st, ok := s.states[ref]
	if !ok {
		return fmt.Errorf("sim: cannot remove unknown flow %s", ref)
	}
	if st.done || st.node != nil {
		return fmt.Errorf("sim: cannot remove flow %s after release", ref)
	}
	if !s.pending.Remove(st) {
		return fmt.Errorf("sim: flow %s absent from the release queue", ref)
	}
	delete(s.states, ref)
	return nil
}

// Forget removes a finished flow's state from the simulator, bounding the
// cost of a long-running simulation: every per-event and per-step scan
// (active-flow selection, Done, Residuals) iterates only the flows still
// registered. Only done flows may be forgotten, and their transcript
// segments are discarded with them — callers that still need Schedule()
// for the flow must capture it first. The online serving engine forgets a
// coflow's flows once the coflow's completion has been recorded.
func (s *Simulator) Forget(ref coflow.FlowRef) error {
	st, ok := s.states[ref]
	if !ok {
		return fmt.Errorf("sim: cannot forget unknown flow %s", ref)
	}
	if !st.done {
		return fmt.Errorf("sim: cannot forget unfinished flow %s", ref)
	}
	delete(s.states, ref)
	s.numDone--
	return nil
}

// TakeCompletions returns the flows that completed since the previous call
// (or since construction) and resets the log. The incremental online engine
// folds these into its per-coflow registry in O(completions) per tick
// instead of re-scanning every active flow.
func (s *Simulator) TakeCompletions() []CompletionEvent {
	out := s.completions
	s.completions = nil
	return out
}

// projectedRemaining is the flow's residual volume at time now, accounting
// for lazily unmaterialized transmission at the current rate.
func (st *flowState) projectedRemaining(now float64) float64 {
	rem := st.remaining
	if !st.done && st.rate > 0 && now > st.lastT {
		rem -= st.rate * (now - st.lastT)
		if rem < 0 {
			rem = 0
		}
	}
	return rem
}

func (s *Simulator) status(st *flowState) FlowStatus {
	return FlowStatus{
		Ref:        st.ref,
		Path:       st.path,
		Release:    st.release,
		Size:       st.size,
		Remaining:  st.projectedRemaining(s.now),
		Done:       st.done,
		Completion: st.completion,
	}
}

// Status reports the residual state of a single flow, or false if the
// reference is unknown. Unlike Residuals it is O(1), suitable for per-flow
// status queries between steps.
func (s *Simulator) Status(ref coflow.FlowRef) (FlowStatus, bool) {
	st, ok := s.states[ref]
	if !ok {
		return FlowStatus{}, false
	}
	return s.status(st), true
}

// Handle is a direct reference to one flow's simulator state, skipping the
// per-query map lookup of Status. Handles are engine-side plumbing for the
// per-tick snapshot path, which queries every active flow every epoch. A
// handle stays usable until the flow is forgotten; using it afterwards reads
// stale (but never freed or recycled) state, so holders must drop handles
// when they Forget the flow. The zero Handle is invalid.
type Handle struct{ st *flowState }

// Valid reports whether the handle refers to a flow.
func (h Handle) Valid() bool { return h.st != nil }

// Handle returns an O(1) status accessor for the flow, or false if the
// reference is unknown.
func (s *Simulator) Handle(ref coflow.FlowRef) (Handle, bool) {
	st, ok := s.states[ref]
	if !ok {
		return Handle{}, false
	}
	return Handle{st: st}, true
}

// HandleStatus is Status through a handle: no map lookup. The handle must
// come from this simulator. Safe for concurrent callers while the simulator
// is quiescent (between RunUntil/SetOrder/AddFlow calls) — it only reads.
func (s *Simulator) HandleStatus(h Handle) FlowStatus { return s.status(h.st) }

// Residuals reports the per-flow residual state, sorted by flow reference.
func (s *Simulator) Residuals() []FlowStatus {
	out := make([]FlowStatus, 0, len(s.states))
	for _, st := range s.states {
		out = append(out, s.status(st))
	}
	sortStatuses(out)
	return out
}

// RunUntil advances the simulation to time `until` (or to completion,
// whichever is earlier) under the current order. Passing +Inf runs to
// completion. It is legal to call RunUntil repeatedly with increasing
// boundaries; each call refreshes the event budget.
func (s *Simulator) RunUntil(until float64) error {
	s.budget += stepBudget(len(s.states))
	for {
		if s.Done() {
			return nil
		}
		if s.now >= until-timeTol {
			return nil
		}
		s.guard++
		if s.guard > s.budget {
			return fmt.Errorf("sim: event budget exhausted (likely a starving flow)")
		}
		if s.dirtyAll {
			s.reallocAll(s.now)
			s.dirtyAll = false
		}

		if s.active.Len() == 0 {
			// Idle until the next release or the step boundary.
			if s.pending.Len() == 0 {
				// Nothing pending and not done — impossible (every unfinished
				// flow is active or awaiting release), but don't spin.
				if !math.IsInf(until, 1) {
					s.now = until
				}
				return nil
			}
			t := s.pending.PeekTime()
			if t > until {
				if !math.IsInf(until, 1) {
					s.now = until
				}
				return nil
			}
			s.now = t
			s.processEvent(t)
			continue
		}

		// Find the next event: earliest projected completion, the next
		// release, or the step boundary — whichever is first.
		next := until
		if s.pending.Len() > 0 {
			if t := s.pending.PeekTime(); t < next {
				next = t
			}
		}
		if t, ok := s.nextCompletion(); ok && t < next {
			next = t
		}
		if s.posRates == 0 && s.pending.Len() == 0 {
			// No active flow can make progress and no release is pending, so
			// the state is frozen forever; cannot happen with the greedy
			// allocators on positive-capacity networks (the top-priority flow
			// always gets the bottleneck capacity), but detect it explicitly
			// rather than spinning to the step boundary.
			return fmt.Errorf("sim: no progress possible at time %v", s.now)
		}
		s.now = next
		s.processEvent(next)
	}
}

// nextCompletion peeks the earliest still-valid projected completion,
// discarding stale entries (flows whose rate changed since the push).
func (s *Simulator) nextCompletion() (float64, bool) {
	for s.comp.Len() > 0 {
		top := s.comp.Peek()
		if top.st.done || top.seq != top.st.heapSeq {
			s.comp.Pop()
			continue
		}
		return top.t, true
	}
	return 0, false
}

// processEvent applies every event due at time `next`: completions within
// tolerance, releases, and the reallocation of the dirty suffix they induce.
func (s *Simulator) processEvent(next float64) {
	s.batchDone = s.batchDone[:0]
	s.batchReleased = s.batchReleased[:0]

	// Completions: a flow finishes at this event if its residual volume at
	// `next` is within the completion tolerance — the same
	// remaining - rate·dt ≤ tol·size check the reference allocator applies
	// per event, evaluated here as rate·(projection - next) ≤ tol·size.
	for s.comp.Len() > 0 {
		top := s.comp.Peek()
		st := top.st
		if st.done || top.seq != st.heapSeq {
			s.comp.Pop()
			continue
		}
		if st.rate*(top.t-next) > completionTol*st.size {
			// The heap is ordered by projected time, not by residual volume,
			// so in principle a lower-rate flow deeper in the heap could pass
			// the tolerance test this entry fails. The reference allocator
			// would complete such a flow at `next` (its full per-event sweep
			// sees every residual); we let it finish at its own projection
			// instead. That requires a flow's residual to land inside the
			// 1e-9 tolerance band exactly at an unrelated event — a
			// measure-zero coincidence for continuous workloads, and the
			// flow is within tolerance of done either way. Scanning past
			// this entry would cost O(F) per event, the very thing the heap
			// removes.
			break
		}
		s.comp.Pop()
		s.complete(st, next)
		s.batchDone = append(s.batchDone, st)
	}
	// Releases at (or within tolerance of) the event time activate together.
	for s.pending.Len() > 0 && s.pending.PeekTime() <= next+timeTol {
		s.batchReleased = append(s.batchReleased, s.pending.Pop())
	}
	if len(s.batchDone) == 0 && len(s.batchReleased) == 0 {
		return // pure boundary stop
	}
	if s.policy == FairShare {
		for _, st := range s.batchDone {
			s.retire(st)
		}
		for _, st := range s.batchReleased {
			s.active.Insert(st)
		}
		s.allocFairShare(next)
	} else {
		s.reallocSuffix(next)
	}
	s.maybeCompact()
}

// complete finalizes a flow at time `at`: closes its open bandwidth segment,
// zeroes its residual and logs the completion. The flow's rate is left in
// place — the priority reallocation's undo sweep still needs to credit it
// back to the residuals; retire() clears it.
func (s *Simulator) complete(st *flowState, at float64) {
	if st.rate > 0 && at > st.lastT {
		st.segments = appendSegment(st.segments, st.lastT, at, st.rate)
	}
	st.remaining = 0
	st.lastT = at
	st.done = true
	st.completion = at
	st.heapSeq++
	s.numDone++
	s.completions = append(s.completions, CompletionEvent{Ref: st.ref, Time: at})
}

// retire removes a completed flow from the active set and releases its rate
// bookkeeping.
func (s *Simulator) retire(st *flowState) {
	s.active.Delete(st)
	if st.rate > 0 {
		s.posRates--
	}
	st.rate = 0
}

// setRate re-points a flow's allocation at time now: materializes the volume
// transmitted at the old rate, closes the open bandwidth segment, and (for a
// positive new rate) projects the flow's completion onto the event heap.
func (s *Simulator) setRate(st *flowState, r, now float64) {
	if st.rate > 0 {
		if now > st.lastT {
			st.remaining -= st.rate * (now - st.lastT)
			if st.remaining < 0 {
				st.remaining = 0
			}
			st.segments = appendSegment(st.segments, st.lastT, now, st.rate)
		}
		s.posRates--
	}
	st.lastT = now
	st.rate = r
	st.heapSeq++
	if r > 0 {
		s.posRates++
		s.comp.Push(compEntry{t: now + st.remaining/r, st: st, seq: st.heapSeq})
	}
}

// reallocSuffix re-runs the greedy priority allocation for the dirty suffix:
// every flow ranked at or after the first completed/released flow of the
// event batch. Flows before that position keep their rates — the greedy
// allocation is prefix-stable — along with their heap projections and
// unmaterialized residuals, so the per-event cost is proportional to the
// dirty suffix, not the whole active set.
func (s *Simulator) reallocSuffix(now float64) {
	s.eventSeq++
	if s.eventSeq%rebaseEvery == 0 {
		// Periodic full rebase: recompute every residual from the raw
		// capacities so incremental undo/redo rounding cannot accumulate.
		for _, st := range s.batchDone {
			s.retire(st)
		}
		for _, st := range s.batchReleased {
			s.active.Insert(st)
		}
		s.reallocAll(now)
		return
	}
	from := activeKey{rank: math.MaxInt, coflow: math.MaxInt, index: math.MaxInt}
	for _, st := range s.batchDone {
		if k := st.node.key; keyLess(k, from) {
			from = k
		}
	}
	for _, st := range s.batchReleased {
		k := activeKey{rank: st.rank, coflow: st.ref.Coflow, index: st.ref.Index}
		if keyLess(k, from) {
			from = k
		}
	}
	// Undo: credit the suffix's current rates (including the just-completed
	// flows', still in the list) back to the residuals.
	suffix := 0
	for n := s.active.Seek(from); n != nil; n = n.next[0] {
		suffix++
		if st := n.st; st.rate > 0 {
			for _, e := range st.path {
				s.residual[e] += st.rate
			}
		}
	}
	for _, st := range s.batchDone {
		s.retire(st)
	}
	for _, st := range s.batchReleased {
		s.active.Insert(st)
	}
	// Redo: greedy re-allocation of the suffix against the restored
	// residuals, touching only flows whose rate actually changed.
	s.redo(s.active.Seek(from), suffix-len(s.batchDone)+len(s.batchReleased), now)
}

// redo re-runs the greedy allocation from the given active node onward:
// partition-parallel when the simulator is partitioned and the suffix is
// long enough to amortize the fan-out, sequential otherwise. Both walks
// produce bit-identical state (see parallel.go for the argument).
func (s *Simulator) redo(start *activeNode, suffixLen int, now float64) {
	s.tickStats.Reallocs++
	s.tickStats.SuffixSum += suffixLen
	if suffixLen > s.tickStats.SuffixMax {
		s.tickStats.SuffixMax = suffixLen
	}
	if s.ep != nil && suffixLen >= parallelMinSuffix {
		s.redoParallel(start, now)
		return
	}
	for n := start; n != nil; n = n.next[0] {
		s.allocGreedy(n.st, now)
	}
}

// allocGreedy gives one flow the bottleneck residual capacity of its path
// and charges it to the residuals, updating the flow's rate if it changed.
func (s *Simulator) allocGreedy(st *flowState, now float64) {
	r := math.Inf(1)
	for _, e := range st.path {
		if s.residual[e] < r {
			r = s.residual[e]
		}
	}
	if r < minRate || math.IsInf(r, 1) {
		r = 0
	}
	if r != st.rate {
		s.setRate(st, r, now)
	}
	if r > 0 {
		for _, e := range st.path {
			s.residual[e] -= r
		}
	}
}

// reallocAll recomputes every active flow's rate from fresh residuals (full
// greedy pass for Priority, progressive filling for FairShare). Used after
// SetOrder and for periodic drift rebasing.
func (s *Simulator) reallocAll(now float64) {
	if s.policy == FairShare {
		s.allocFairShare(now)
		return
	}
	copy(s.residual, s.caps)
	s.redo(s.active.First(), s.active.Len(), now)
}

// allocFairShare computes a max-min fair allocation by progressive filling:
// repeatedly find the most congested edge, split its residual capacity
// equally among the unfixed flows crossing it, and freeze them. All scratch
// (edge→flows adjacency, rate and fixed vectors) is arena-style state reused
// across events — no per-event map rebuild.
func (s *Simulator) allocFairShare(now float64) {
	if s.fsOnEdge == nil {
		s.fsOnEdge = make([][]int32, len(s.caps))
	}
	// Sparse reset of the previous event's adjacency.
	for _, e := range s.fsUsed {
		s.fsOnEdge[e] = s.fsOnEdge[e][:0]
	}
	s.fsUsed = s.fsUsed[:0]
	s.fsFlows = s.fsFlows[:0]
	for n := s.active.First(); n != nil; n = n.next[0] {
		s.fsFlows = append(s.fsFlows, n.st)
	}
	active := s.fsFlows
	if cap(s.fsRates) < len(active) {
		s.fsRates = make([]float64, len(active))
		s.fsFixed = make([]bool, len(active))
	}
	rates := s.fsRates[:len(active)]
	fixed := s.fsFixed[:len(active)]
	for i := range rates {
		rates[i] = 0
		fixed[i] = false
	}
	copy(s.residual, s.caps)
	for i, st := range active {
		for _, e := range st.path {
			if len(s.fsOnEdge[e]) == 0 {
				s.fsUsed = append(s.fsUsed, e)
			}
			s.fsOnEdge[e] = append(s.fsOnEdge[e], int32(i))
		}
	}

	// Each filling round scans only the edges some active flow uses, in id
	// order so ties resolve deterministically (the same order the reference
	// allocator visits).
	slices.Sort(s.fsUsed)

	remaining := len(active)
	for remaining > 0 {
		// Find the edge with the smallest fair share among unfixed flows.
		bestEdge := graph.EdgeID(-1)
		bestShare := math.Inf(1)
		for _, e := range s.fsUsed {
			unfixed := 0
			for _, i := range s.fsOnEdge[e] {
				if !fixed[i] {
					unfixed++
				}
			}
			if unfixed == 0 {
				continue
			}
			share := s.residual[e] / float64(unfixed)
			if share < bestShare {
				bestShare = share
				bestEdge = e
			}
		}
		if bestEdge < 0 {
			// Remaining flows use no edges (cannot happen: src != dst) —
			// freeze them at zero to terminate.
			break
		}
		if bestShare < 0 {
			bestShare = 0
		}
		for _, i := range s.fsOnEdge[bestEdge] {
			if fixed[i] {
				continue
			}
			rates[i] = bestShare
			fixed[i] = true
			remaining--
			for _, e := range active[i].path {
				s.residual[e] -= bestShare
				if s.residual[e] < 0 {
					s.residual[e] = 0
				}
			}
		}
	}
	for i, st := range active {
		if rates[i] != st.rate {
			s.setRate(st, rates[i], now)
		}
	}
}

// maybeCompact drops stale completion-heap entries once they outnumber the
// live flows 4:1, keeping the heap O(active) instead of O(total pushes).
func (s *Simulator) maybeCompact() {
	if s.comp.Len() < 64 || s.comp.Len() < 4*s.active.Len() {
		return
	}
	s.comp.compact()
}

// Schedule assembles the circuit schedule accumulated so far. The returned
// schedule is an independent snapshot: calling RunUntil afterwards does not
// mutate it, so mid-run captures stay valid for later comparison. Open
// segments (flows transmitting at the current time) are closed virtually at
// Now without disturbing the lazy simulator state.
func (s *Simulator) Schedule() *coflow.CircuitSchedule {
	cs := coflow.NewCircuitSchedule()
	for r, st := range s.states {
		segs := make([]coflow.BandwidthSegment, len(st.segments), len(st.segments)+1)
		copy(segs, st.segments)
		if !st.done && st.rate > 0 && s.now > st.lastT {
			segs = appendSegment(segs, st.lastT, s.now, st.rate)
		}
		fs := &coflow.FlowSchedule{Path: st.path, Segments: segs}
		mergeSegments(fs)
		cs.Set(r, fs)
	}
	return cs
}

// appendSegment records one constant-rate interval, coalescing with the
// previous segment when it continues at the same rate — schedules stay
// proportional to the number of distinct rate assignments, not events.
func appendSegment(segs []coflow.BandwidthSegment, start, end, rate float64) []coflow.BandwidthSegment {
	if n := len(segs); n > 0 {
		last := &segs[n-1]
		if math.Abs(last.End-start) < 1e-12 && math.Abs(last.Rate-rate) < 1e-12 {
			last.End = end
			return segs
		}
	}
	return append(segs, coflow.BandwidthSegment{Start: start, End: end, Rate: rate})
}

// Run simulates the instance to completion under the given configuration and
// returns the resulting circuit schedule (which callers can Validate and
// score). Unlike New, Run requires a complete priority order when the
// Priority policy is selected, matching the offline setting where every flow
// is known up front.
func Run(inst *coflow.Instance, cfg Config) (*coflow.CircuitSchedule, error) {
	if cfg.Policy == Priority {
		if len(cfg.Order) != inst.NumFlows() {
			return nil, fmt.Errorf("sim: priority order has %d flows, instance has %d", len(cfg.Order), inst.NumFlows())
		}
	}
	s, err := New(inst, cfg)
	if err != nil {
		return nil, err
	}
	if err := s.RunUntil(math.Inf(1)); err != nil {
		return nil, err
	}
	return s.Schedule(), nil
}
