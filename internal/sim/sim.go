// Package sim implements the flow-level event-driven simulator described in
// §4.1 of the paper. Packet-level simulation is too slow for coflow
// experiments, so — like Varys, RAPIER and the paper itself — we simulate at
// the granularity of flows: each flow is an event at its release time, the
// simulator repeatedly assigns bandwidth to the active flows according to a
// policy, and a second event occurs when a flow completes and releases its
// reserved bandwidth.
//
// Two bandwidth-assignment policies are provided:
//
//   - Priority: flows are served greedily in a caller-supplied order; each
//     flow in turn grabs the bottleneck residual capacity along its path.
//     This is the mechanism behind the LP-Based scheduler's practical mode
//     and the Schedule-only / Baseline heuristics.
//   - FairShare: max-min fair sharing across all active flows (progressive
//     filling), modelling the "every flow gets its fair share" comparator of
//     Figure 1 (s1).
//
// Two entry points expose the simulator:
//
//   - Run simulates an instance to completion in one call (the offline mode
//     used by the paper's experiments).
//   - Simulator is the resumable stepping API used by the online scheduler
//     (internal/online): New builds the simulator, RunUntil advances it to a
//     time boundary, SetOrder re-prioritizes the remaining work between
//     steps, and Residuals reports per-flow transmitted/remaining volumes.
package sim

import (
	"fmt"
	"math"
	"sort"

	"coflowsched/internal/coflow"
	"coflowsched/internal/graph"
)

// Policy selects how bandwidth is divided among active flows.
type Policy int

const (
	// Priority serves active flows greedily in the order given by
	// Config.Order.
	Priority Policy = iota
	// FairShare performs max-min fair sharing among all active flows.
	FairShare
)

// Config parameterizes a simulation run.
type Config struct {
	// Paths gives the route of every flow. Flows absent from the map fall
	// back to the instance's pre-assigned path.
	Paths map[coflow.FlowRef]graph.Path
	// Order is the priority order used by the Priority policy. Run requires
	// it to contain every flow exactly once; New accepts a partial order
	// (flows absent from it rank last, in reference order) so an online
	// caller can prioritize only the flows that have arrived.
	Order []coflow.FlowRef
	// Policy selects the bandwidth-assignment policy.
	Policy Policy
}

// completionTol treats a flow as finished once its remaining volume drops
// below this fraction of its size (guards against FP drift in long runs).
const completionTol = 1e-9

// timeTol absorbs floating-point noise when comparing event times.
const timeTol = 1e-15

// flowState is the simulator's working record for one flow.
type flowState struct {
	ref        coflow.FlowRef
	path       graph.Path
	release    float64
	remaining  float64
	size       float64
	rank       int // position in the priority order
	schedule   *coflow.FlowSchedule
	done       bool
	completion float64 // time the flow finished (meaningful once done)
}

// admittedRank is the priority rank of flows added mid-run (Simulator.AddFlow)
// before the next SetOrder: below every flow the current order lists, which
// models newly arrived work waiting at the lowest priority until the next
// re-ordering. math.MaxInt32 exceeds any real order length.
const admittedRank = math.MaxInt32

// eventHeap is a hand-rolled binary min-heap of pending event times. Keeping
// it typed (no container/heap) avoids boxing every float64 through `any` on
// the simulator's hottest queue.
type eventHeap struct{ ts []float64 }

func (h *eventHeap) Len() int      { return len(h.ts) }
func (h *eventHeap) Peek() float64 { return h.ts[0] }

func (h *eventHeap) Push(t float64) {
	h.ts = append(h.ts, t)
	i := len(h.ts) - 1
	for i > 0 {
		p := (i - 1) / 2
		if h.ts[p] <= h.ts[i] {
			break
		}
		h.ts[p], h.ts[i] = h.ts[i], h.ts[p]
		i = p
	}
}

func (h *eventHeap) Pop() float64 {
	top := h.ts[0]
	n := len(h.ts) - 1
	h.ts[0] = h.ts[n]
	h.ts = h.ts[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < n && h.ts[l] < h.ts[small] {
			small = l
		}
		if r < n && h.ts[r] < h.ts[small] {
			small = r
		}
		if small == i {
			break
		}
		h.ts[i], h.ts[small] = h.ts[small], h.ts[i]
		i = small
	}
	return top
}

// FlowStatus is the residual state of one flow, as reported by
// Simulator.Residuals.
type FlowStatus struct {
	Ref       coflow.FlowRef
	Path      graph.Path
	Release   float64
	Size      float64
	Remaining float64
	Done      bool
	// Completion is the simulation time the flow finished (0 until Done).
	Completion float64
}

// Simulator is the resumable form of the flow-level simulator. Unlike Run it
// advances in steps: RunUntil(t) simulates up to time t and stops, after
// which the caller may inspect Residuals and install a new priority order
// with SetOrder before resuming. The online scheduler uses exactly this
// loop: one RunUntil per epoch, one SetOrder per policy decision.
type Simulator struct {
	inst   *coflow.Instance
	policy Policy
	states map[coflow.FlowRef]*flowState
	eq     eventHeap
	now    float64
	guard  int
	budget int
}

// New builds a resumable simulator for the instance. The configured order may
// be partial: flows missing from it are served after every listed flow, tied
// by flow reference, which models newly arrived work waiting at the lowest
// priority until the next re-ordering.
func New(inst *coflow.Instance, cfg Config) (*Simulator, error) {
	refs := inst.FlowRefs()
	s := &Simulator{
		inst:   inst,
		policy: cfg.Policy,
		states: make(map[coflow.FlowRef]*flowState, len(refs)),
		budget: stepBudget(len(refs)),
	}
	for _, r := range refs {
		f := inst.Flow(r)
		path := f.Path
		if p, ok := cfg.Paths[r]; ok {
			path = p
		}
		if path == nil {
			return nil, fmt.Errorf("sim: flow %s has no path", r)
		}
		if err := path.Validate(inst.Network, f.Source, f.Dest); err != nil {
			return nil, fmt.Errorf("sim: flow %s: %v", r, err)
		}
		s.states[r] = &flowState{
			ref:       r,
			path:      path,
			release:   f.Release,
			remaining: f.Size,
			size:      f.Size,
			schedule:  &coflow.FlowSchedule{Path: path},
		}
	}
	if err := s.SetOrder(cfg.Order); err != nil {
		return nil, err
	}

	// Seed the event queue with distinct release times.
	seen := map[float64]bool{}
	for _, st := range s.states {
		if !seen[st.release] {
			seen[st.release] = true
			s.eq.Push(st.release)
		}
	}
	if s.eq.Len() > 0 {
		s.now = s.eq.Peek()
	}
	return s, nil
}

// stepBudget is the per-step event allowance: generous enough for any
// legitimate simulation, small enough to catch starvation loops.
func stepBudget(numFlows int) int { return 100*numFlows + 1000 }

// Now returns the current simulation time.
func (s *Simulator) Now() float64 { return s.now }

// Done reports whether every flow has completed.
func (s *Simulator) Done() bool { return allDone(s.states) }

// SetOrder installs a new priority order, effective from the next RunUntil.
// The order may be partial (missing flows rank last, in reference order) but
// must not contain duplicates or unknown flows. It is ignored under the
// FairShare policy.
func (s *Simulator) SetOrder(order []coflow.FlowRef) error {
	rank := make(map[coflow.FlowRef]int, len(order))
	for i, r := range order {
		if _, dup := rank[r]; dup {
			return fmt.Errorf("sim: flow %s appears twice in the priority order", r)
		}
		if _, ok := s.states[r]; !ok {
			return fmt.Errorf("sim: priority order names unknown flow %s", r)
		}
		rank[r] = i
	}
	for r, st := range s.states {
		if rk, ok := rank[r]; ok {
			st.rank = rk
		} else {
			st.rank = len(order) // after every listed flow; ties by ref
		}
	}
	return nil
}

// AddFlow registers a new flow with a running simulator, modelling online
// admission: the flow joins the instance state and becomes active at its
// release time. The reference must be unused, the release must not lie in
// the simulator's past, and the path (the explicit argument, falling back to
// f.Path) must connect the flow's endpoints. Until the next SetOrder the new
// flow ranks below every existing flow — newly admitted work waits at the
// lowest priority until the next re-ordering, exactly like flows omitted
// from a partial order.
func (s *Simulator) AddFlow(ref coflow.FlowRef, f coflow.Flow, path graph.Path) error {
	if _, exists := s.states[ref]; exists {
		return fmt.Errorf("sim: flow %s is already registered", ref)
	}
	if f.Size <= 0 || math.IsNaN(f.Size) || math.IsInf(f.Size, 0) {
		return fmt.Errorf("sim: flow %s has invalid size %v", ref, f.Size)
	}
	if f.Release < s.now-timeTol {
		return fmt.Errorf("sim: flow %s released at %v, in the past of the simulation clock %v", ref, f.Release, s.now)
	}
	if path == nil {
		path = f.Path
	}
	if path == nil {
		return fmt.Errorf("sim: flow %s has no path", ref)
	}
	if err := path.Validate(s.inst.Network, f.Source, f.Dest); err != nil {
		return fmt.Errorf("sim: flow %s: %v", ref, err)
	}
	s.states[ref] = &flowState{
		ref:       ref,
		path:      path,
		release:   f.Release,
		remaining: f.Size,
		size:      f.Size,
		rank:      admittedRank,
		schedule:  &coflow.FlowSchedule{Path: path},
	}
	s.eq.Push(f.Release)
	return nil
}

// Forget removes a finished flow's state from the simulator, bounding the
// cost of a long-running simulation: every per-event and per-step scan
// (active-flow selection, Done, Residuals) iterates only the flows still
// registered. Only done flows may be forgotten, and their transcript
// segments are discarded with them — callers that still need Schedule()
// for the flow must capture it first. The online serving engine forgets a
// coflow's flows once the coflow's completion has been recorded.
func (s *Simulator) Forget(ref coflow.FlowRef) error {
	st, ok := s.states[ref]
	if !ok {
		return fmt.Errorf("sim: cannot forget unknown flow %s", ref)
	}
	if !st.done {
		return fmt.Errorf("sim: cannot forget unfinished flow %s", ref)
	}
	delete(s.states, ref)
	return nil
}

// Status reports the residual state of a single flow, or false if the
// reference is unknown. Unlike Residuals it is O(1), suitable for per-flow
// status queries between steps.
func (s *Simulator) Status(ref coflow.FlowRef) (FlowStatus, bool) {
	st, ok := s.states[ref]
	if !ok {
		return FlowStatus{}, false
	}
	return FlowStatus{
		Ref:        st.ref,
		Path:       st.path,
		Release:    st.release,
		Size:       st.size,
		Remaining:  st.remaining,
		Done:       st.done,
		Completion: st.completion,
	}, true
}

// Residuals reports the per-flow residual state, sorted by flow reference.
func (s *Simulator) Residuals() []FlowStatus {
	out := make([]FlowStatus, 0, len(s.states))
	for _, st := range s.states {
		out = append(out, FlowStatus{
			Ref:        st.ref,
			Path:       st.path,
			Release:    st.release,
			Size:       st.size,
			Remaining:  st.remaining,
			Done:       st.done,
			Completion: st.completion,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Ref.Coflow != out[j].Ref.Coflow {
			return out[i].Ref.Coflow < out[j].Ref.Coflow
		}
		return out[i].Ref.Index < out[j].Ref.Index
	})
	return out
}

// RunUntil advances the simulation to time `until` (or to completion,
// whichever is earlier) under the current order. Passing +Inf runs to
// completion. It is legal to call RunUntil repeatedly with increasing
// boundaries; each call refreshes the event budget.
func (s *Simulator) RunUntil(until float64) error {
	s.budget += stepBudget(len(s.states))
	for {
		if s.Done() {
			return nil
		}
		if s.now >= until-timeTol {
			return nil
		}
		s.guard++
		if s.guard > s.budget {
			return fmt.Errorf("sim: event budget exhausted (likely a starving flow)")
		}

		active := activeFlows(s.states, s.now)
		if len(active) == 0 {
			// Idle until the next release or the step boundary.
			if s.eq.Len() == 0 {
				// Nothing pending and not done — impossible (every unfinished
				// flow has a seeded release event), but don't spin.
				s.now = until
				return nil
			}
			t := s.eq.Peek()
			if t > until {
				if !math.IsInf(until, 1) {
					s.now = until
				}
				return nil
			}
			s.now = s.eq.Pop()
			continue
		}

		rates := allocate(s.inst.Network, active, s.policy)

		// Find the next event: earliest completion under current rates, the
		// next release, or the step boundary — whichever is first.
		next := until
		if s.eq.Len() > 0 && s.eq.Peek() < next {
			next = s.eq.Peek()
		}
		anyRate := false
		for i, st := range active {
			if rates[i] > 0 {
				anyRate = true
				if t := s.now + st.remaining/rates[i]; t < next {
					next = t
				}
			}
		}
		if !anyRate && s.eq.Len() == 0 {
			// No active flow can make progress and no release is pending, so
			// the state is frozen forever; cannot happen with the greedy
			// allocators on positive-capacity networks (the top-priority flow
			// always gets the bottleneck capacity), but detect it explicitly
			// rather than spinning to the step boundary.
			return fmt.Errorf("sim: no progress possible at time %v", s.now)
		}
		// Advance time, recording a segment per flow that transmitted.
		dt := next - s.now
		if dt > 0 {
			for i, st := range active {
				if rates[i] <= 0 {
					continue
				}
				st.schedule.Segments = append(st.schedule.Segments, coflow.BandwidthSegment{
					Start: s.now, End: next, Rate: rates[i],
				})
				st.remaining -= rates[i] * dt
				if st.remaining <= completionTol*st.size {
					st.remaining = 0
					st.done = true
					st.completion = next
				}
			}
		}
		// Drop the release events we just passed (if 'next' consumed any).
		for s.eq.Len() > 0 && s.eq.Peek() <= next+timeTol {
			s.eq.Pop()
		}
		s.now = next
	}
}

// Schedule assembles the circuit schedule accumulated so far. The returned
// schedule is an independent snapshot: calling RunUntil afterwards does not
// mutate it, so mid-run captures stay valid for later comparison.
func (s *Simulator) Schedule() *coflow.CircuitSchedule {
	cs := coflow.NewCircuitSchedule()
	for r, st := range s.states {
		fs := &coflow.FlowSchedule{
			Path:     st.path,
			Segments: append([]coflow.BandwidthSegment(nil), st.schedule.Segments...),
		}
		mergeSegments(fs)
		cs.Set(r, fs)
	}
	return cs
}

// Run simulates the instance to completion under the given configuration and
// returns the resulting circuit schedule (which callers can Validate and
// score). Unlike New, Run requires a complete priority order when the
// Priority policy is selected, matching the offline setting where every flow
// is known up front.
func Run(inst *coflow.Instance, cfg Config) (*coflow.CircuitSchedule, error) {
	if cfg.Policy == Priority {
		if len(cfg.Order) != inst.NumFlows() {
			return nil, fmt.Errorf("sim: priority order has %d flows, instance has %d", len(cfg.Order), inst.NumFlows())
		}
	}
	s, err := New(inst, cfg)
	if err != nil {
		return nil, err
	}
	if err := s.RunUntil(math.Inf(1)); err != nil {
		return nil, err
	}
	return s.Schedule(), nil
}

// activeFlows returns released, unfinished flows sorted by priority rank
// (then by reference for determinism).
func activeFlows(states map[coflow.FlowRef]*flowState, now float64) []*flowState {
	var active []*flowState
	for _, st := range states {
		if !st.done && st.release <= now+timeTol {
			active = append(active, st)
		}
	}
	sort.Slice(active, func(i, j int) bool {
		if active[i].rank != active[j].rank {
			return active[i].rank < active[j].rank
		}
		if active[i].ref.Coflow != active[j].ref.Coflow {
			return active[i].ref.Coflow < active[j].ref.Coflow
		}
		return active[i].ref.Index < active[j].ref.Index
	})
	return active
}

func allDone(states map[coflow.FlowRef]*flowState) bool {
	for _, st := range states {
		if !st.done {
			return false
		}
	}
	return true
}

// allocate computes the instantaneous rate of each active flow.
func allocate(g *graph.Graph, active []*flowState, policy Policy) []float64 {
	switch policy {
	case FairShare:
		return allocateFairShare(g, active)
	default:
		return allocatePriority(g, active)
	}
}

// allocatePriority serves flows in order, each grabbing the bottleneck
// residual capacity of its path.
func allocatePriority(g *graph.Graph, active []*flowState) []float64 {
	residual := make([]float64, g.NumEdges())
	for i := range residual {
		residual[i] = g.Capacity(graph.EdgeID(i))
	}
	rates := make([]float64, len(active))
	for i, st := range active {
		r := math.Inf(1)
		for _, e := range st.path {
			if residual[e] < r {
				r = residual[e]
			}
		}
		if r < 1e-12 || math.IsInf(r, 1) {
			r = 0
		}
		rates[i] = r
		for _, e := range st.path {
			residual[e] -= r
		}
	}
	return rates
}

// allocateFairShare computes a max-min fair allocation by progressive
// filling: repeatedly find the most congested edge, split its residual
// capacity equally among the unfixed flows crossing it, and freeze them.
func allocateFairShare(g *graph.Graph, active []*flowState) []float64 {
	residual := make([]float64, g.NumEdges())
	for i := range residual {
		residual[i] = g.Capacity(graph.EdgeID(i))
	}
	rates := make([]float64, len(active))
	fixed := make([]bool, len(active))
	remaining := len(active)

	// flowsOnEdge[e] lists indices of active flows whose path uses e. Edges
	// are visited in id order so ties resolve deterministically.
	flowsOnEdge := make(map[graph.EdgeID][]int)
	var usedEdges []graph.EdgeID
	for i, st := range active {
		for _, e := range st.path {
			if _, ok := flowsOnEdge[e]; !ok {
				usedEdges = append(usedEdges, e)
			}
			flowsOnEdge[e] = append(flowsOnEdge[e], i)
		}
	}
	sort.Slice(usedEdges, func(i, j int) bool { return usedEdges[i] < usedEdges[j] })

	for remaining > 0 {
		// Find the edge with the smallest fair share among unfixed flows.
		bestEdge := graph.EdgeID(-1)
		bestShare := math.Inf(1)
		for _, e := range usedEdges {
			flows := flowsOnEdge[e]
			unfixed := 0
			for _, i := range flows {
				if !fixed[i] {
					unfixed++
				}
			}
			if unfixed == 0 {
				continue
			}
			share := residual[e] / float64(unfixed)
			if share < bestShare {
				bestShare = share
				bestEdge = e
			}
		}
		if bestEdge < 0 {
			// Remaining flows use no edges (cannot happen: src != dst) —
			// freeze them at zero to terminate.
			break
		}
		if bestShare < 0 {
			bestShare = 0
		}
		for _, i := range flowsOnEdge[bestEdge] {
			if fixed[i] {
				continue
			}
			rates[i] = bestShare
			fixed[i] = true
			remaining--
			for _, e := range active[i].path {
				residual[e] -= bestShare
				if residual[e] < 0 {
					residual[e] = 0
				}
			}
		}
	}
	return rates
}

// mergeSegments coalesces adjacent segments with identical rates to keep
// schedules small.
func mergeSegments(fs *coflow.FlowSchedule) {
	if len(fs.Segments) <= 1 {
		return
	}
	sort.Slice(fs.Segments, func(i, j int) bool { return fs.Segments[i].Start < fs.Segments[j].Start })
	merged := fs.Segments[:1]
	for _, s := range fs.Segments[1:] {
		last := &merged[len(merged)-1]
		if math.Abs(last.End-s.Start) < 1e-12 && math.Abs(last.Rate-s.Rate) < 1e-12 {
			last.End = s.End
			continue
		}
		merged = append(merged, s)
	}
	fs.Segments = merged
}
