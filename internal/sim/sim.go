// Package sim implements the flow-level event-driven simulator described in
// §4.1 of the paper. Packet-level simulation is too slow for coflow
// experiments, so — like Varys, RAPIER and the paper itself — we simulate at
// the granularity of flows: each flow is an event at its release time, the
// simulator repeatedly assigns bandwidth to the active flows according to a
// policy, and a second event occurs when a flow completes and releases its
// reserved bandwidth.
//
// Two bandwidth-assignment policies are provided:
//
//   - Priority: flows are served greedily in a caller-supplied order; each
//     flow in turn grabs the bottleneck residual capacity along its path.
//     This is the mechanism behind the LP-Based scheduler's practical mode
//     and the Schedule-only / Baseline heuristics.
//   - FairShare: max-min fair sharing across all active flows (progressive
//     filling), modelling the "every flow gets its fair share" comparator of
//     Figure 1 (s1).
package sim

import (
	"container/heap"
	"fmt"
	"math"
	"sort"

	"coflowsched/internal/coflow"
	"coflowsched/internal/graph"
)

// Policy selects how bandwidth is divided among active flows.
type Policy int

const (
	// Priority serves active flows greedily in the order given by
	// Config.Order.
	Priority Policy = iota
	// FairShare performs max-min fair sharing among all active flows.
	FairShare
)

// Config parameterizes a simulation run.
type Config struct {
	// Paths gives the route of every flow. Flows absent from the map fall
	// back to the instance's pre-assigned path.
	Paths map[coflow.FlowRef]graph.Path
	// Order is the priority order used by the Priority policy; it must
	// contain every flow exactly once. Ignored by FairShare.
	Order []coflow.FlowRef
	// Policy selects the bandwidth-assignment policy.
	Policy Policy
}

// completionTol treats a flow as finished once its remaining volume drops
// below this fraction of its size (guards against FP drift in long runs).
const completionTol = 1e-9

// flowState is the simulator's working record for one flow.
type flowState struct {
	ref       coflow.FlowRef
	path      graph.Path
	release   float64
	remaining float64
	size      float64
	rank      int // position in the priority order
	schedule  *coflow.FlowSchedule
	done      bool
}

// eventQueue orders pending event times.
type eventQueue []float64

func (q eventQueue) Len() int            { return len(q) }
func (q eventQueue) Less(i, j int) bool  { return q[i] < q[j] }
func (q eventQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x interface{}) { *q = append(*q, x.(float64)) }
func (q *eventQueue) Pop() interface{} {
	old := *q
	n := len(old)
	v := old[n-1]
	*q = old[:n-1]
	return v
}

// Run simulates the instance under the given configuration and returns the
// resulting circuit schedule (which callers can Validate and score).
func Run(inst *coflow.Instance, cfg Config) (*coflow.CircuitSchedule, error) {
	refs := inst.FlowRefs()
	states := make(map[coflow.FlowRef]*flowState, len(refs))

	rank := make(map[coflow.FlowRef]int, len(refs))
	if cfg.Policy == Priority {
		if len(cfg.Order) != len(refs) {
			return nil, fmt.Errorf("sim: priority order has %d flows, instance has %d", len(cfg.Order), len(refs))
		}
		for i, r := range cfg.Order {
			if _, dup := rank[r]; dup {
				return nil, fmt.Errorf("sim: flow %s appears twice in the priority order", r)
			}
			rank[r] = i
		}
	}

	for _, r := range refs {
		f := inst.Flow(r)
		path := f.Path
		if p, ok := cfg.Paths[r]; ok {
			path = p
		}
		if path == nil {
			return nil, fmt.Errorf("sim: flow %s has no path", r)
		}
		if err := path.Validate(inst.Network, f.Source, f.Dest); err != nil {
			return nil, fmt.Errorf("sim: flow %s: %v", r, err)
		}
		rk, ok := rank[r]
		if !ok {
			if cfg.Policy == Priority {
				return nil, fmt.Errorf("sim: flow %s missing from priority order", r)
			}
			rk = 0
		}
		states[r] = &flowState{
			ref:       r,
			path:      path,
			release:   f.Release,
			remaining: f.Size,
			size:      f.Size,
			rank:      rk,
			schedule:  &coflow.FlowSchedule{Path: path},
		}
	}

	// Seed the event queue with distinct release times.
	eq := &eventQueue{}
	seen := map[float64]bool{}
	for _, st := range states {
		if !seen[st.release] {
			seen[st.release] = true
			heap.Push(eq, st.release)
		}
	}
	if eq.Len() == 0 {
		return coflow.NewCircuitSchedule(), nil
	}

	now := heap.Pop(eq).(float64)
	guard := 0
	maxEvents := 10*len(refs) + 100

	for {
		guard++
		if guard > maxEvents*10 {
			return nil, fmt.Errorf("sim: event budget exhausted (likely a starving flow)")
		}
		active := activeFlows(states, now)
		if len(active) == 0 {
			if eq.Len() == 0 {
				break
			}
			now = heap.Pop(eq).(float64)
			continue
		}

		rates := allocate(inst.Network, active, cfg.Policy)

		// Find the next event: earliest completion under current rates or the
		// next release, whichever is first.
		next := math.Inf(1)
		if eq.Len() > 0 {
			next = (*eq)[0]
		}
		for i, st := range active {
			if rates[i] > 0 {
				t := now + st.remaining/rates[i]
				if t < next {
					next = t
				}
			}
		}
		if math.IsInf(next, 1) {
			// No active flow can make progress and nothing else is pending;
			// cannot happen with the greedy allocators (the top-priority flow
			// always gets the bottleneck capacity), but guard anyway.
			return nil, fmt.Errorf("sim: no progress possible at time %v", now)
		}
		// Advance time, recording a segment per flow that transmitted.
		dt := next - now
		if dt > 0 {
			for i, st := range active {
				if rates[i] <= 0 {
					continue
				}
				st.schedule.Segments = append(st.schedule.Segments, coflow.BandwidthSegment{
					Start: now, End: next, Rate: rates[i],
				})
				st.remaining -= rates[i] * dt
				if st.remaining <= completionTol*st.size {
					st.remaining = 0
					st.done = true
				}
			}
		}
		// Drop the release event we just consumed (if that's what 'next' was).
		for eq.Len() > 0 && (*eq)[0] <= next+1e-15 {
			heap.Pop(eq)
		}
		now = next

		if allDone(states) && eq.Len() == 0 {
			break
		}
	}

	cs := coflow.NewCircuitSchedule()
	for r, st := range states {
		mergeSegments(st.schedule)
		cs.Set(r, st.schedule)
	}
	return cs, nil
}

// activeFlows returns released, unfinished flows sorted by priority rank
// (then by reference for determinism).
func activeFlows(states map[coflow.FlowRef]*flowState, now float64) []*flowState {
	var active []*flowState
	for _, st := range states {
		if !st.done && st.release <= now+1e-15 {
			active = append(active, st)
		}
	}
	sort.Slice(active, func(i, j int) bool {
		if active[i].rank != active[j].rank {
			return active[i].rank < active[j].rank
		}
		if active[i].ref.Coflow != active[j].ref.Coflow {
			return active[i].ref.Coflow < active[j].ref.Coflow
		}
		return active[i].ref.Index < active[j].ref.Index
	})
	return active
}

func allDone(states map[coflow.FlowRef]*flowState) bool {
	for _, st := range states {
		if !st.done {
			return false
		}
	}
	return true
}

// allocate computes the instantaneous rate of each active flow.
func allocate(g *graph.Graph, active []*flowState, policy Policy) []float64 {
	switch policy {
	case FairShare:
		return allocateFairShare(g, active)
	default:
		return allocatePriority(g, active)
	}
}

// allocatePriority serves flows in order, each grabbing the bottleneck
// residual capacity of its path.
func allocatePriority(g *graph.Graph, active []*flowState) []float64 {
	residual := make([]float64, g.NumEdges())
	for i := range residual {
		residual[i] = g.Capacity(graph.EdgeID(i))
	}
	rates := make([]float64, len(active))
	for i, st := range active {
		r := math.Inf(1)
		for _, e := range st.path {
			if residual[e] < r {
				r = residual[e]
			}
		}
		if r < 1e-12 || math.IsInf(r, 1) {
			r = 0
		}
		rates[i] = r
		for _, e := range st.path {
			residual[e] -= r
		}
	}
	return rates
}

// allocateFairShare computes a max-min fair allocation by progressive
// filling: repeatedly find the most congested edge, split its residual
// capacity equally among the unfixed flows crossing it, and freeze them.
func allocateFairShare(g *graph.Graph, active []*flowState) []float64 {
	residual := make([]float64, g.NumEdges())
	for i := range residual {
		residual[i] = g.Capacity(graph.EdgeID(i))
	}
	rates := make([]float64, len(active))
	fixed := make([]bool, len(active))
	remaining := len(active)

	// flowsOnEdge[e] lists indices of active flows whose path uses e. Edges
	// are visited in id order so ties resolve deterministically.
	flowsOnEdge := make(map[graph.EdgeID][]int)
	var usedEdges []graph.EdgeID
	for i, st := range active {
		for _, e := range st.path {
			if _, ok := flowsOnEdge[e]; !ok {
				usedEdges = append(usedEdges, e)
			}
			flowsOnEdge[e] = append(flowsOnEdge[e], i)
		}
	}
	sort.Slice(usedEdges, func(i, j int) bool { return usedEdges[i] < usedEdges[j] })

	for remaining > 0 {
		// Find the edge with the smallest fair share among unfixed flows.
		bestEdge := graph.EdgeID(-1)
		bestShare := math.Inf(1)
		for _, e := range usedEdges {
			flows := flowsOnEdge[e]
			unfixed := 0
			for _, i := range flows {
				if !fixed[i] {
					unfixed++
				}
			}
			if unfixed == 0 {
				continue
			}
			share := residual[e] / float64(unfixed)
			if share < bestShare {
				bestShare = share
				bestEdge = e
			}
		}
		if bestEdge < 0 {
			// Remaining flows use no edges (cannot happen: src != dst) —
			// freeze them at zero to terminate.
			break
		}
		if bestShare < 0 {
			bestShare = 0
		}
		for _, i := range flowsOnEdge[bestEdge] {
			if fixed[i] {
				continue
			}
			rates[i] = bestShare
			fixed[i] = true
			remaining--
			for _, e := range active[i].path {
				residual[e] -= bestShare
				if residual[e] < 0 {
					residual[e] = 0
				}
			}
		}
	}
	return rates
}

// mergeSegments coalesces adjacent segments with identical rates to keep
// schedules small.
func mergeSegments(fs *coflow.FlowSchedule) {
	if len(fs.Segments) <= 1 {
		return
	}
	sort.Slice(fs.Segments, func(i, j int) bool { return fs.Segments[i].Start < fs.Segments[j].Start })
	merged := fs.Segments[:1]
	for _, s := range fs.Segments[1:] {
		last := &merged[len(merged)-1]
		if math.Abs(last.End-s.Start) < 1e-12 && math.Abs(last.Rate-s.Rate) < 1e-12 {
			last.End = s.End
			continue
		}
		merged = append(merged, s)
	}
	fs.Segments = merged
}
