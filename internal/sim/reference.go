package sim

// This file retains the naive allocator the incremental event loop in sim.go
// replaced. It recomputes everything from scratch at every event — full
// active-set scan and sort, fresh residual capacities, one bandwidth segment
// per flow per event — which makes it slow (O(F log F) per event) but easy
// to audit. It serves two purposes:
//
//   - the oracle for the differential tests in differential_test.go, which
//     assert the incremental allocator produces identical completion times
//     (to 1e-9) and transmitted volumes across randomized workloads,
//     including mid-run AddFlow/SetOrder/Forget;
//   - the "before" side of the recorded benchmark trajectory
//     (experiments.SimSuite, BENCH_sim.json), so the speedup claim stays
//     reproducible against the exact allocator it was measured over.
//
// Semantics must never drift from Simulator's. Fix bugs in both or neither.

import (
	"fmt"
	"math"
	"sort"

	"coflowsched/internal/coflow"
	"coflowsched/internal/graph"
)

// refFlow is the reference simulator's working record for one flow.
type refFlow struct {
	ref        coflow.FlowRef
	path       graph.Path
	release    float64
	remaining  float64
	size       float64
	rank       int
	schedule   *coflow.FlowSchedule
	done       bool
	completion float64
}

// refEventHeap is a binary min-heap of pending event times. Unlike the
// incremental simulator's release heap it stores bare times, so duplicate
// pushes are possible; Pop drains equal-time duplicates so no event time is
// ever processed twice.
type refEventHeap struct{ ts []float64 }

func (h *refEventHeap) Len() int      { return len(h.ts) }
func (h *refEventHeap) Peek() float64 { return h.ts[0] }

func (h *refEventHeap) Push(t float64) {
	h.ts = append(h.ts, t)
	i := len(h.ts) - 1
	for i > 0 {
		p := (i - 1) / 2
		if h.ts[p] <= h.ts[i] {
			break
		}
		h.ts[p], h.ts[i] = h.ts[i], h.ts[p]
		i = p
	}
}

// Pop removes and returns the earliest time, dropping any duplicates of it:
// equal-time pushes (two flows released together, or the same time pushed by
// both New and AddFlow) collapse into a single event.
func (h *refEventHeap) Pop() float64 {
	top := h.popOne()
	for h.Len() > 0 && h.ts[0] == top {
		h.popOne()
	}
	return top
}

func (h *refEventHeap) popOne() float64 {
	top := h.ts[0]
	n := len(h.ts) - 1
	h.ts[0] = h.ts[n]
	h.ts = h.ts[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < n && h.ts[l] < h.ts[small] {
			small = l
		}
		if r < n && h.ts[r] < h.ts[small] {
			small = r
		}
		if small == i {
			break
		}
		h.ts[i], h.ts[small] = h.ts[small], h.ts[i]
		i = small
	}
	return top
}

// Reference is the naive counterpart of Simulator: same API, same semantics,
// O(F log F) work per event. Use it only as a test oracle or benchmark
// baseline.
type Reference struct {
	inst   *coflow.Instance
	policy Policy
	states map[coflow.FlowRef]*refFlow
	eq     refEventHeap
	now    float64
	guard  int
	budget int
}

// NewReference builds a resumable naive simulator. See New for the contract.
func NewReference(inst *coflow.Instance, cfg Config) (*Reference, error) {
	refs := inst.FlowRefs()
	s := &Reference{
		inst:   inst,
		policy: cfg.Policy,
		states: make(map[coflow.FlowRef]*refFlow, len(refs)),
		budget: stepBudget(len(refs)),
	}
	for _, r := range refs {
		f := inst.Flow(r)
		path := f.Path
		if p, ok := cfg.Paths[r]; ok {
			path = p
		}
		if path == nil {
			return nil, fmt.Errorf("sim: flow %s has no path", r)
		}
		if err := path.Validate(inst.Network, f.Source, f.Dest); err != nil {
			return nil, fmt.Errorf("sim: flow %s: %v", r, err)
		}
		s.states[r] = &refFlow{
			ref:       r,
			path:      path,
			release:   f.Release,
			remaining: f.Size,
			size:      f.Size,
			schedule:  &coflow.FlowSchedule{Path: path},
		}
	}
	if err := s.SetOrder(cfg.Order); err != nil {
		return nil, err
	}
	for _, st := range s.states {
		s.eq.Push(st.release)
	}
	if s.eq.Len() > 0 {
		s.now = s.eq.Peek()
	}
	return s, nil
}

// Now returns the current simulation time.
func (s *Reference) Now() float64 { return s.now }

// Done reports whether every flow has completed.
func (s *Reference) Done() bool {
	for _, st := range s.states {
		if !st.done {
			return false
		}
	}
	return true
}

// SetOrder installs a new priority order. See Simulator.SetOrder.
func (s *Reference) SetOrder(order []coflow.FlowRef) error {
	rank := make(map[coflow.FlowRef]int, len(order))
	for i, r := range order {
		if _, dup := rank[r]; dup {
			return fmt.Errorf("sim: flow %s appears twice in the priority order", r)
		}
		if _, ok := s.states[r]; !ok {
			return fmt.Errorf("sim: priority order names unknown flow %s", r)
		}
		rank[r] = i
	}
	for r, st := range s.states {
		if rk, ok := rank[r]; ok {
			st.rank = rk
		} else {
			st.rank = len(order)
		}
	}
	return nil
}

// AddFlow registers a new flow mid-run. See Simulator.AddFlow.
func (s *Reference) AddFlow(ref coflow.FlowRef, f coflow.Flow, path graph.Path) error {
	if _, exists := s.states[ref]; exists {
		return fmt.Errorf("sim: flow %s is already registered", ref)
	}
	if f.Size <= 0 || math.IsNaN(f.Size) || math.IsInf(f.Size, 0) {
		return fmt.Errorf("sim: flow %s has invalid size %v", ref, f.Size)
	}
	if f.Release < s.now-timeTol {
		return fmt.Errorf("sim: flow %s released at %v, in the past of the simulation clock %v", ref, f.Release, s.now)
	}
	if path == nil {
		path = f.Path
	}
	if path == nil {
		return fmt.Errorf("sim: flow %s has no path", ref)
	}
	if err := path.Validate(s.inst.Network, f.Source, f.Dest); err != nil {
		return fmt.Errorf("sim: flow %s: %v", ref, err)
	}
	s.states[ref] = &refFlow{
		ref:       ref,
		path:      path,
		release:   f.Release,
		remaining: f.Size,
		size:      f.Size,
		rank:      admittedRank,
		schedule:  &coflow.FlowSchedule{Path: path},
	}
	s.eq.Push(f.Release)
	return nil
}

// Forget removes a finished flow's state. See Simulator.Forget.
func (s *Reference) Forget(ref coflow.FlowRef) error {
	st, ok := s.states[ref]
	if !ok {
		return fmt.Errorf("sim: cannot forget unknown flow %s", ref)
	}
	if !st.done {
		return fmt.Errorf("sim: cannot forget unfinished flow %s", ref)
	}
	delete(s.states, ref)
	return nil
}

// Status reports the residual state of a single flow.
func (s *Reference) Status(ref coflow.FlowRef) (FlowStatus, bool) {
	st, ok := s.states[ref]
	if !ok {
		return FlowStatus{}, false
	}
	return FlowStatus{
		Ref:        st.ref,
		Path:       st.path,
		Release:    st.release,
		Size:       st.size,
		Remaining:  st.remaining,
		Done:       st.done,
		Completion: st.completion,
	}, true
}

// Residuals reports the per-flow residual state, sorted by flow reference.
func (s *Reference) Residuals() []FlowStatus {
	out := make([]FlowStatus, 0, len(s.states))
	for _, st := range s.states {
		fs, _ := s.Status(st.ref)
		out = append(out, fs)
	}
	sortStatuses(out)
	return out
}

// RunUntil advances the simulation to time `until`. See Simulator.RunUntil.
func (s *Reference) RunUntil(until float64) error {
	s.budget += stepBudget(len(s.states))
	for {
		if s.Done() {
			return nil
		}
		if s.now >= until-timeTol {
			return nil
		}
		s.guard++
		if s.guard > s.budget {
			return fmt.Errorf("sim: event budget exhausted (likely a starving flow)")
		}

		active := refActiveFlows(s.states, s.now)
		if len(active) == 0 {
			if s.eq.Len() == 0 {
				s.now = until
				return nil
			}
			t := s.eq.Peek()
			if t > until {
				if !math.IsInf(until, 1) {
					s.now = until
				}
				return nil
			}
			s.now = s.eq.Pop()
			continue
		}

		rates := refAllocate(s.inst.Network, active, s.policy)

		next := until
		if s.eq.Len() > 0 && s.eq.Peek() < next {
			next = s.eq.Peek()
		}
		anyRate := false
		for i, st := range active {
			if rates[i] > 0 {
				anyRate = true
				if t := s.now + st.remaining/rates[i]; t < next {
					next = t
				}
			}
		}
		if !anyRate && s.eq.Len() == 0 {
			return fmt.Errorf("sim: no progress possible at time %v", s.now)
		}
		dt := next - s.now
		if dt > 0 {
			for i, st := range active {
				if rates[i] <= 0 {
					continue
				}
				st.schedule.Segments = append(st.schedule.Segments, coflow.BandwidthSegment{
					Start: s.now, End: next, Rate: rates[i],
				})
				st.remaining -= rates[i] * dt
				if st.remaining <= completionTol*st.size {
					st.remaining = 0
					st.done = true
					st.completion = next
				}
			}
		}
		for s.eq.Len() > 0 && s.eq.Peek() <= next+timeTol {
			s.eq.Pop()
		}
		s.now = next
	}
}

// Schedule assembles the circuit schedule accumulated so far.
func (s *Reference) Schedule() *coflow.CircuitSchedule {
	cs := coflow.NewCircuitSchedule()
	for r, st := range s.states {
		fs := &coflow.FlowSchedule{
			Path:     st.path,
			Segments: append([]coflow.BandwidthSegment(nil), st.schedule.Segments...),
		}
		mergeSegments(fs)
		cs.Set(r, fs)
	}
	return cs
}

// RunReference simulates the instance to completion with the naive
// allocator. It is the oracle counterpart of Run.
func RunReference(inst *coflow.Instance, cfg Config) (*coflow.CircuitSchedule, error) {
	if cfg.Policy == Priority {
		if len(cfg.Order) != inst.NumFlows() {
			return nil, fmt.Errorf("sim: priority order has %d flows, instance has %d", len(cfg.Order), inst.NumFlows())
		}
	}
	s, err := NewReference(inst, cfg)
	if err != nil {
		return nil, err
	}
	if err := s.RunUntil(math.Inf(1)); err != nil {
		return nil, err
	}
	return s.Schedule(), nil
}

// refActiveFlows returns released, unfinished flows sorted by priority rank
// (then by reference for determinism).
func refActiveFlows(states map[coflow.FlowRef]*refFlow, now float64) []*refFlow {
	var active []*refFlow
	for _, st := range states {
		if !st.done && st.release <= now+timeTol {
			active = append(active, st)
		}
	}
	sort.Slice(active, func(i, j int) bool {
		if active[i].rank != active[j].rank {
			return active[i].rank < active[j].rank
		}
		if active[i].ref.Coflow != active[j].ref.Coflow {
			return active[i].ref.Coflow < active[j].ref.Coflow
		}
		return active[i].ref.Index < active[j].ref.Index
	})
	return active
}

// refAllocate computes the instantaneous rate of each active flow.
func refAllocate(g *graph.Graph, active []*refFlow, policy Policy) []float64 {
	switch policy {
	case FairShare:
		return refAllocateFairShare(g, active)
	default:
		return refAllocatePriority(g, active)
	}
}

// refAllocatePriority serves flows in order, each grabbing the bottleneck
// residual capacity of its path.
func refAllocatePriority(g *graph.Graph, active []*refFlow) []float64 {
	residual := make([]float64, g.NumEdges())
	for i := range residual {
		residual[i] = g.Capacity(graph.EdgeID(i))
	}
	rates := make([]float64, len(active))
	for i, st := range active {
		r := math.Inf(1)
		for _, e := range st.path {
			if residual[e] < r {
				r = residual[e]
			}
		}
		if r < minRate || math.IsInf(r, 1) {
			r = 0
		}
		rates[i] = r
		for _, e := range st.path {
			residual[e] -= r
		}
	}
	return rates
}

// refAllocateFairShare computes a max-min fair allocation by progressive
// filling, rebuilding its edge→flows map at every call.
func refAllocateFairShare(g *graph.Graph, active []*refFlow) []float64 {
	residual := make([]float64, g.NumEdges())
	for i := range residual {
		residual[i] = g.Capacity(graph.EdgeID(i))
	}
	rates := make([]float64, len(active))
	fixed := make([]bool, len(active))
	remaining := len(active)

	flowsOnEdge := make(map[graph.EdgeID][]int)
	var usedEdges []graph.EdgeID
	for i, st := range active {
		for _, e := range st.path {
			if _, ok := flowsOnEdge[e]; !ok {
				usedEdges = append(usedEdges, e)
			}
			flowsOnEdge[e] = append(flowsOnEdge[e], i)
		}
	}
	sort.Slice(usedEdges, func(i, j int) bool { return usedEdges[i] < usedEdges[j] })

	for remaining > 0 {
		bestEdge := graph.EdgeID(-1)
		bestShare := math.Inf(1)
		for _, e := range usedEdges {
			flows := flowsOnEdge[e]
			unfixed := 0
			for _, i := range flows {
				if !fixed[i] {
					unfixed++
				}
			}
			if unfixed == 0 {
				continue
			}
			share := residual[e] / float64(unfixed)
			if share < bestShare {
				bestShare = share
				bestEdge = e
			}
		}
		if bestEdge < 0 {
			break
		}
		if bestShare < 0 {
			bestShare = 0
		}
		for _, i := range flowsOnEdge[bestEdge] {
			if fixed[i] {
				continue
			}
			rates[i] = bestShare
			fixed[i] = true
			remaining--
			for _, e := range active[i].path {
				residual[e] -= bestShare
				if residual[e] < 0 {
					residual[e] = 0
				}
			}
		}
	}
	return rates
}

// sortStatuses orders flow statuses by reference, the order Residuals
// promises.
func sortStatuses(out []FlowStatus) {
	sort.Slice(out, func(i, j int) bool {
		if out[i].Ref.Coflow != out[j].Ref.Coflow {
			return out[i].Ref.Coflow < out[j].Ref.Coflow
		}
		return out[i].Ref.Index < out[j].Ref.Index
	})
}

// mergeSegments coalesces adjacent segments with identical rates to keep
// schedules small.
func mergeSegments(fs *coflow.FlowSchedule) {
	if len(fs.Segments) <= 1 {
		return
	}
	sort.Slice(fs.Segments, func(i, j int) bool { return fs.Segments[i].Start < fs.Segments[j].Start })
	merged := fs.Segments[:1]
	for _, s := range fs.Segments[1:] {
		last := &merged[len(merged)-1]
		if math.Abs(last.End-s.Start) < 1e-12 && math.Abs(last.Rate-s.Rate) < 1e-12 {
			last.End = s.End
			continue
		}
		merged = append(merged, s)
	}
	fs.Segments = merged
}
