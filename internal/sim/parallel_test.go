package sim

import (
	"math"
	"math/rand"
	"testing"

	"coflowsched/internal/coflow"
	"coflowsched/internal/graph"
	"coflowsched/internal/workload"
)

// forceParallel lowers the fan-out threshold so even the small differential
// workloads exercise the partitioned redo path, restoring it on cleanup.
func forceParallel(t *testing.T) {
	t.Helper()
	old := parallelMinSuffix
	parallelMinSuffix = 1
	t.Cleanup(func() { parallelMinSuffix = old })
}

// partitionsFor builds the partition configurations for the sweep: nil for
// the sequential baseline, then the pod partition coalesced to each target
// class count (a line topology has one natural class, so every coalesced
// form degenerates to the sequential walk — which the sweep must also leave
// bit-identical).
func partitionsFor(g *graph.Graph, want int) *graph.EdgePartition {
	if want <= 1 {
		return nil
	}
	return g.PodPartition().Coalesce(want)
}

// TestParallelPartitionSweep is the tentpole's safety net: for partition
// counts 1/2/4/8 × {Priority, FairShare} × {fat-tree, line}, completion
// times must match the naive reference to 1e-9 AND be bit-identical to the
// unpartitioned incremental run regardless of partition count.
func TestParallelPartitionSweep(t *testing.T) {
	forceParallel(t)
	rounds := parallelRounds
	t.Cleanup(func() {
		if parallelRounds == rounds {
			t.Errorf("sweep never exercised the parallel redo path")
		}
	})
	for name, g := range diffTopologies() {
		for _, policy := range []Policy{Priority, FairShare} {
			pname := "priority"
			if policy == FairShare {
				pname = "fairshare"
			}
			t.Run(name+"/"+pname, func(t *testing.T) {
				for seed := int64(1); seed <= 4; seed++ {
					inst := diffInstance(t, g, seed*31, 8, 4)
					cfg := Config{Policy: policy}
					if policy == Priority {
						order := inst.FlowRefs()
						rng := rand.New(rand.NewSource(seed * 17))
						rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
						cfg.Order = order
					}
					base, err := Run(inst, cfg)
					if err != nil {
						t.Fatalf("seed %d: sequential run: %v", seed, err)
					}
					want, err := RunReference(inst, cfg)
					if err != nil {
						t.Fatalf("seed %d: reference run: %v", seed, err)
					}
					assertSchedulesMatch(t, inst.FlowRefs(), base, want)
					for _, parts := range []int{2, 4, 8} {
						pcfg := cfg
						pcfg.Partition = partitionsFor(g, parts)
						got, err := Run(inst, pcfg)
						if err != nil {
							t.Fatalf("seed %d parts %d: parallel run: %v", seed, parts, err)
						}
						for _, ref := range inst.FlowRefs() {
							gf, bf := got.Get(ref), base.Get(ref)
							if gf.CompletionTime() != bf.CompletionTime() {
								t.Errorf("seed %d parts %d flow %s: completion %v != sequential %v (not bit-identical)",
									seed, parts, ref, gf.CompletionTime(), bf.CompletionTime())
							}
							if gf.Delivered() != bf.Delivered() {
								t.Errorf("seed %d parts %d flow %s: delivered %v != sequential %v",
									seed, parts, ref, gf.Delivered(), bf.Delivered())
							}
						}
						assertSchedulesMatch(t, inst.FlowRefs(), got, want)
					}
				}
			})
		}
	}
}

// TestParallelSteppedChurn drives a partitioned simulator through the online
// engine's call pattern — AddFlow mid-run, SetOrder every epoch, Forget on
// completion — in lockstep with an unpartitioned twin, asserting exact state
// agreement at every boundary. This is where cross-partition rendezvous and
// suffix reallocation interleave hardest.
func TestParallelSteppedChurn(t *testing.T) {
	forceParallel(t)
	g := graph.FatTree(4, 1)
	part := g.PodPartition()
	for seed := int64(1); seed <= 3; seed++ {
		rng := rand.New(rand.NewSource(seed * 41))
		inst, _, err := workload.GenerateArrivals(g, workload.ArrivalConfig{
			Config: workload.Config{NumCoflows: 10, Width: 4, MeanSize: 4},
			Rate:   1.5,
		}, rng)
		if err != nil {
			t.Fatalf("generate: %v", err)
		}
		if err := inst.AssignShortestPaths(); err != nil {
			t.Fatalf("paths: %v", err)
		}
		refs := inst.FlowRefs()
		empty := func() *coflow.Instance { return &coflow.Instance{Network: g} }
		seq, err := New(empty(), Config{Policy: Priority})
		if err != nil {
			t.Fatalf("new sequential: %v", err)
		}
		par, err := New(empty(), Config{Policy: Priority, Partition: part})
		if err != nil {
			t.Fatalf("new parallel: %v", err)
		}
		stream := append([]coflow.FlowRef(nil), refs...)
		for i := 1; i < len(stream); i++ {
			for j := i; j > 0 && inst.Flow(stream[j]).Release < inst.Flow(stream[j-1]).Release; j-- {
				stream[j], stream[j-1] = stream[j-1], stream[j]
			}
		}
		next := 0
		var live []coflow.FlowRef
		const epoch = 1.5
		for now := 0.0; ; now += epoch {
			if now > 500*inst.TimeHorizon() {
				t.Fatalf("seed %d: churn did not finish", seed)
			}
			for next < len(stream) && inst.Flow(stream[next]).Release <= now+epoch {
				r := stream[next]
				f := *inst.Flow(r)
				if err := seq.AddFlow(r, f, nil); err != nil {
					t.Fatalf("sequential AddFlow %s: %v", r, err)
				}
				if err := par.AddFlow(r, f, nil); err != nil {
					t.Fatalf("parallel AddFlow %s: %v", r, err)
				}
				live = append(live, r)
				next++
			}
			order := append([]coflow.FlowRef(nil), live...)
			rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
			if err := seq.SetOrder(order); err != nil {
				t.Fatalf("sequential SetOrder: %v", err)
			}
			if err := par.SetOrder(order); err != nil {
				t.Fatalf("parallel SetOrder: %v", err)
			}
			if err := seq.RunUntil(now + epoch); err != nil {
				t.Fatalf("sequential RunUntil: %v", err)
			}
			if err := par.RunUntil(now + epoch); err != nil {
				t.Fatalf("parallel RunUntil: %v", err)
			}
			gotRes, wantRes := par.Residuals(), seq.Residuals()
			if len(gotRes) != len(wantRes) {
				t.Fatalf("seed %d t=%v: %d residuals vs %d", seed, now, len(gotRes), len(wantRes))
			}
			for i := range wantRes {
				if gotRes[i].Remaining != wantRes[i].Remaining {
					t.Errorf("seed %d t=%v flow %s: remaining %v != sequential %v (not bit-identical)",
						seed, now, wantRes[i].Ref, gotRes[i].Remaining, wantRes[i].Remaining)
				}
				if gotRes[i].Completion != wantRes[i].Completion {
					t.Errorf("seed %d t=%v flow %s: completion %v != sequential %v",
						seed, now, wantRes[i].Ref, gotRes[i].Completion, wantRes[i].Completion)
				}
			}
			stillLive := live[:0]
			for _, r := range live {
				fs, ok := seq.Status(r)
				if !ok {
					continue
				}
				if fs.Done {
					if err := seq.Forget(r); err != nil {
						t.Fatalf("sequential Forget %s: %v", r, err)
					}
					if err := par.Forget(r); err != nil {
						t.Fatalf("parallel Forget %s: %v", r, err)
					}
					continue
				}
				stillLive = append(stillLive, r)
			}
			live = stillLive
			if next == len(stream) && seq.Done() && par.Done() {
				break
			}
		}
	}
}

// TestRemovePendingFlow checks the admission-rollback primitive: adding and
// removing a pending flow leaves the simulator's observable state unchanged,
// and removal of released/unknown flows is rejected.
func TestRemovePendingFlow(t *testing.T) {
	g := graph.Line(4, 1)
	inst := diffInstance(t, g, 7, 4, 3)
	s, err := New(inst, Config{Order: inst.FlowRefs(), Policy: Priority})
	if err != nil {
		t.Fatalf("new: %v", err)
	}
	// Advance until at least one flow has been released.
	for tEnd := 1.0; ; tEnd *= 2 {
		if err := s.RunUntil(tEnd); err != nil {
			t.Fatalf("run: %v", err)
		}
		released := false
		for _, st := range s.states {
			if st.node != nil || st.done {
				released = true
				break
			}
		}
		if released {
			break
		}
		if tEnd > 1e6 {
			t.Fatalf("no flow ever released")
		}
	}
	before := s.Residuals()
	ref := coflow.FlowRef{Coflow: 900, Index: 0}
	f := coflow.Flow{Source: 0, Dest: 3, Size: 5, Release: s.Now() + 1}
	path := g.ShortestPath(0, 3)
	if err := s.AddFlow(ref, f, path); err != nil {
		t.Fatalf("add: %v", err)
	}
	if err := s.Remove(ref); err != nil {
		t.Fatalf("remove: %v", err)
	}
	if _, ok := s.Status(ref); ok {
		t.Fatalf("removed flow still registered")
	}
	after := s.Residuals()
	if len(after) != len(before) {
		t.Fatalf("residual count changed: %d != %d", len(after), len(before))
	}
	for i := range before {
		b, a := before[i], after[i]
		if b.Ref != a.Ref || b.Remaining != a.Remaining || b.Done != a.Done || b.Completion != a.Completion {
			t.Fatalf("flow %s state changed across add+remove", b.Ref)
		}
	}
	if err := s.Remove(ref); err == nil {
		t.Fatalf("removing unknown flow succeeded")
	}
	// A released (active or done) flow must be rejected.
	released := coflow.FlowRef{Coflow: -1}
	for r, st := range s.states {
		if st.node != nil || st.done {
			released = r
			break
		}
	}
	if released.Coflow == -1 {
		t.Fatalf("no released flow to probe")
	}
	if err := s.Remove(released); err == nil {
		t.Fatalf("removing released flow succeeded")
	}
	// The simulator still runs to completion afterwards.
	if err := s.RunUntil(math.Inf(1)); err != nil {
		t.Fatalf("run to completion: %v", err)
	}
	if !s.Done() {
		t.Fatalf("simulation did not finish")
	}
}
