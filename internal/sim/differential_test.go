package sim

import (
	"math"
	"math/rand"
	"testing"

	"coflowsched/internal/coflow"
	"coflowsched/internal/graph"
	"coflowsched/internal/workload"
)

// The tests in this file are the contract of the incremental rewrite: on
// randomized instances — fat-tree and line topologies, Priority and
// FairShare policies, batch runs and stepped runs with mid-run
// AddFlow/SetOrder/Forget — the incremental simulator must produce exactly
// the completion times (to 1e-9) and transmitted volumes of the retained
// naive reference allocator in reference.go.

const diffTol = 1e-9

// diffTopologies returns the two network shapes the differential suite
// sweeps: a multi-path fat-tree and a chain where every flow contends.
func diffTopologies() map[string]*graph.Graph {
	return map[string]*graph.Graph{
		"fattree": graph.FatTree(4, 1),
		"line":    graph.Line(6, 1),
	}
}

// diffInstance draws a random instance on g with staggered releases.
func diffInstance(t *testing.T, g *graph.Graph, seed int64, coflows, width int) *coflow.Instance {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	inst, err := workload.GenerateWithPaths(g, workload.Config{
		NumCoflows: coflows, Width: width, MeanSize: 4, MeanRelease: 5,
	}, rng)
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	return inst
}

// assertSchedulesMatch compares per-flow completion times and delivered
// volumes between the incremental and reference schedules.
func assertSchedulesMatch(t *testing.T, refs []coflow.FlowRef, got, want *coflow.CircuitSchedule) {
	t.Helper()
	for _, ref := range refs {
		g, w := got.Get(ref), want.Get(ref)
		if g == nil || w == nil {
			t.Fatalf("flow %s missing from a schedule (incremental %v, reference %v)", ref, g != nil, w != nil)
		}
		if gc, wc := g.CompletionTime(), w.CompletionTime(); math.Abs(gc-wc) > diffTol {
			t.Errorf("flow %s: incremental completion %v, reference %v (Δ=%g)", ref, gc, wc, gc-wc)
		}
		if gd, wd := g.Delivered(), w.Delivered(); math.Abs(gd-wd) > diffTol*math.Max(1, wd) {
			t.Errorf("flow %s: incremental delivered %v, reference %v", ref, gd, wd)
		}
	}
}

// TestDifferentialBatchRun sweeps randomized batch runs across topologies,
// policies and sizes.
func TestDifferentialBatchRun(t *testing.T) {
	for name, g := range diffTopologies() {
		for _, policy := range []Policy{Priority, FairShare} {
			pname := "priority"
			if policy == FairShare {
				pname = "fairshare"
			}
			t.Run(name+"/"+pname, func(t *testing.T) {
				for seed := int64(1); seed <= 6; seed++ {
					inst := diffInstance(t, g, seed, 6, 4)
					cfg := Config{Policy: policy}
					if policy == Priority {
						// A random (not reference-sorted) priority order.
						order := inst.FlowRefs()
						rng := rand.New(rand.NewSource(seed * 101))
						rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
						cfg.Order = order
					}
					got, err := Run(inst, cfg)
					if err != nil {
						t.Fatalf("seed %d: incremental run: %v", seed, err)
					}
					want, err := RunReference(inst, cfg)
					if err != nil {
						t.Fatalf("seed %d: reference run: %v", seed, err)
					}
					assertSchedulesMatch(t, inst.FlowRefs(), got, want)
					if err := got.Validate(inst); err != nil {
						t.Errorf("seed %d: incremental schedule infeasible: %v", seed, err)
					}
				}
			})
		}
	}
}

// TestDifferentialSteppedReorder drives both simulators through identical
// randomized epoch loops: random step lengths, a random permutation
// installed via SetOrder at every boundary.
func TestDifferentialSteppedReorder(t *testing.T) {
	for name, g := range diffTopologies() {
		t.Run(name, func(t *testing.T) {
			for seed := int64(1); seed <= 4; seed++ {
				inst := diffInstance(t, g, seed+50, 5, 4)
				refs := inst.FlowRefs()
				inc, err := New(inst, Config{Order: refs, Policy: Priority})
				if err != nil {
					t.Fatalf("new incremental: %v", err)
				}
				ref, err := NewReference(inst, Config{Order: refs, Policy: Priority})
				if err != nil {
					t.Fatalf("new reference: %v", err)
				}
				rng := rand.New(rand.NewSource(seed * 7))
				horizon := inst.TimeHorizon()
				now := 0.0
				for steps := 0; !inc.Done() || !ref.Done(); steps++ {
					if steps > 1000 {
						t.Fatalf("seed %d: runaway stepped simulation", seed)
					}
					order := append([]coflow.FlowRef(nil), refs...)
					rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
					if err := inc.SetOrder(order); err != nil {
						t.Fatalf("incremental SetOrder: %v", err)
					}
					if err := ref.SetOrder(order); err != nil {
						t.Fatalf("reference SetOrder: %v", err)
					}
					now += rng.Float64() * horizon / 7
					if err := inc.RunUntil(now); err != nil {
						t.Fatalf("incremental RunUntil: %v", err)
					}
					if err := ref.RunUntil(now); err != nil {
						t.Fatalf("reference RunUntil: %v", err)
					}
					if inc.Done() != ref.Done() {
						t.Fatalf("seed %d t=%v: done mismatch: incremental %v, reference %v",
							seed, now, inc.Done(), ref.Done())
					}
					// Residual volumes must agree at every boundary, not just
					// at the end.
					gotRes, wantRes := inc.Residuals(), ref.Residuals()
					for i := range wantRes {
						if math.Abs(gotRes[i].Remaining-wantRes[i].Remaining) > diffTol*math.Max(1, wantRes[i].Size) {
							t.Errorf("seed %d t=%v flow %s: remaining %v vs reference %v",
								seed, now, wantRes[i].Ref, gotRes[i].Remaining, wantRes[i].Remaining)
						}
					}
				}
				assertSchedulesMatch(t, refs, inc.Schedule(), ref.Schedule())
			}
		})
	}
}

// TestDifferentialOnlineChurn exercises the full online lifecycle against
// the oracle: flows admitted mid-run (AddFlow), periodic re-prioritization
// over the still-live flows (SetOrder), and pruning of finished flows
// (Forget) — the exact call pattern of the serving engine.
func TestDifferentialOnlineChurn(t *testing.T) {
	for name, g := range diffTopologies() {
		t.Run(name, func(t *testing.T) {
			for seed := int64(1); seed <= 4; seed++ {
				rng := rand.New(rand.NewSource(seed * 13))
				inst, _, err := workload.GenerateArrivals(g, workload.ArrivalConfig{
					Config: workload.Config{NumCoflows: 8, Width: 3, MeanSize: 4},
					Rate:   1.5,
				}, rng)
				if err != nil {
					t.Fatalf("generate: %v", err)
				}
				if err := inst.AssignShortestPaths(); err != nil {
					t.Fatalf("paths: %v", err)
				}
				refs := inst.FlowRefs()

				empty := &coflow.Instance{Network: g}
				inc, err := New(empty, Config{Policy: Priority})
				if err != nil {
					t.Fatalf("new incremental: %v", err)
				}
				oracle, err := NewReference(&coflow.Instance{Network: g}, Config{Policy: Priority})
				if err != nil {
					t.Fatalf("new reference: %v", err)
				}

				// Admission order: by release, the causal stream.
				stream := append([]coflow.FlowRef(nil), refs...)
				for i := 1; i < len(stream); i++ {
					for j := i; j > 0 && inst.Flow(stream[j]).Release < inst.Flow(stream[j-1]).Release; j-- {
						stream[j], stream[j-1] = stream[j-1], stream[j]
					}
				}
				completions := map[coflow.FlowRef]float64{}
				record := func(s interface{ Residuals() []FlowStatus }, into map[coflow.FlowRef]float64) {
					for _, fs := range s.Residuals() {
						if fs.Done {
							if _, seen := into[fs.Ref]; !seen {
								into[fs.Ref] = fs.Completion
							}
						}
					}
				}
				wantCompletions := map[coflow.FlowRef]float64{}

				next := 0
				var live []coflow.FlowRef
				const epoch = 2.0
				for now := 0.0; ; now += epoch {
					if now > 200*inst.TimeHorizon() {
						t.Fatalf("seed %d: online churn did not finish", seed)
					}
					// Admit everything released inside this epoch.
					for next < len(stream) && inst.Flow(stream[next]).Release <= now+epoch {
						r := stream[next]
						f := *inst.Flow(r)
						if err := inc.AddFlow(r, f, nil); err != nil {
							t.Fatalf("incremental AddFlow %s: %v", r, err)
						}
						if err := oracle.AddFlow(r, f, nil); err != nil {
							t.Fatalf("reference AddFlow %s: %v", r, err)
						}
						live = append(live, r)
						next++
					}
					// Re-prioritize the live flows, shuffled — both sides see
					// the identical partial order.
					order := append([]coflow.FlowRef(nil), live...)
					rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
					if err := inc.SetOrder(order); err != nil {
						t.Fatalf("incremental SetOrder: %v", err)
					}
					if err := oracle.SetOrder(order); err != nil {
						t.Fatalf("reference SetOrder: %v", err)
					}
					if err := inc.RunUntil(now + epoch); err != nil {
						t.Fatalf("incremental RunUntil: %v", err)
					}
					if err := oracle.RunUntil(now + epoch); err != nil {
						t.Fatalf("reference RunUntil: %v", err)
					}
					record(inc, completions)
					record(oracle, wantCompletions)
					// Prune finished flows from both, like the engine does.
					stillLive := live[:0]
					for _, r := range live {
						fs, ok := inc.Status(r)
						if !ok {
							continue
						}
						if fs.Done {
							if err := inc.Forget(r); err != nil {
								t.Fatalf("incremental Forget %s: %v", r, err)
							}
							if err := oracle.Forget(r); err != nil {
								t.Fatalf("reference Forget %s: %v", r, err)
							}
							continue
						}
						stillLive = append(stillLive, r)
					}
					live = stillLive
					if next == len(stream) && inc.Done() && oracle.Done() {
						break
					}
				}

				if len(completions) != len(refs) || len(wantCompletions) != len(refs) {
					t.Fatalf("seed %d: recorded %d/%d completions (reference %d)",
						seed, len(completions), len(refs), len(wantCompletions))
				}
				total := 0.0
				for _, r := range refs {
					got, want := completions[r], wantCompletions[r]
					if math.Abs(got-want) > diffTol {
						t.Errorf("seed %d flow %s: incremental completion %v, reference %v (Δ=%g)",
							seed, r, got, want, got-want)
					}
					total += inst.Flow(r).Size
				}
				_ = total
			}
		})
	}
}

// TestDifferentialTotalVolume checks conservation on a batch run: total
// delivered volume equals total instance volume for both allocators.
func TestDifferentialTotalVolume(t *testing.T) {
	g := graph.FatTree(4, 1)
	inst := diffInstance(t, g, 99, 8, 5)
	order := inst.FlowRefs()
	got, err := Run(inst, Config{Order: order, Policy: Priority})
	if err != nil {
		t.Fatalf("incremental: %v", err)
	}
	want, err := RunReference(inst, Config{Order: order, Policy: Priority})
	if err != nil {
		t.Fatalf("reference: %v", err)
	}
	sum := func(cs *coflow.CircuitSchedule) float64 {
		s := 0.0
		for _, ref := range inst.FlowRefs() {
			s += cs.Get(ref).Delivered()
		}
		return s
	}
	size := 0.0
	for _, ref := range inst.FlowRefs() {
		size += inst.Flow(ref).Size
	}
	if gs := sum(got); math.Abs(gs-size) > 1e-6*size {
		t.Errorf("incremental delivered %v of %v", gs, size)
	}
	if ws := sum(want); math.Abs(ws-size) > 1e-6*size {
		t.Errorf("reference delivered %v of %v", ws, size)
	}
	if gs, ws := sum(got), sum(want); math.Abs(gs-ws) > 1e-6*size {
		t.Errorf("delivered volumes diverge: incremental %v, reference %v", gs, ws)
	}
}
