package sim

// TickStats aggregates the allocator work done between two TakeTickStats
// calls: how many dirty-suffix reallocation passes ran, how deep they were,
// how often the partitioned redo actually fanned out, how many cross-class
// flows the fan-outs had to rendezvous on, and how long each partition
// class's worker was busy. The online engine drains it once per tick and the
// daemon rolls it into /v1/epochs and the coflowd_partition_* metric
// families.
//
// Accumulation costs three integer adds per reallocation pass plus two
// wall-clock reads per parallel worker per fan-out round — nothing on the
// per-event hot path reads the clock.
type TickStats struct {
	// Reallocs counts reallocation passes (dirty-suffix redos plus full
	// rebases) under the Priority policy.
	Reallocs int
	// SuffixSum and SuffixMax aggregate the redo suffix lengths (flows
	// re-allocated per pass).
	SuffixSum int
	SuffixMax int
	// ParallelRounds counts redo walks that fanned out (≥2 busy classes).
	ParallelRounds int
	// CrossFlows counts the cross-class rendezvous records built by
	// partitioned redo walks.
	CrossFlows int
	// WorkerSeconds is the per-class worker busy time across fan-out rounds,
	// indexed by partition class. Nil when the simulator is unpartitioned or
	// no round fanned out.
	WorkerSeconds []float64
}

// TakeTickStats returns the work aggregates accumulated since the last call
// and resets them. Call between RunUntil steps, never concurrently with one.
func (s *Simulator) TakeTickStats() TickStats {
	ts := s.tickStats
	if s.workerSecs != nil {
		busy := false
		for _, v := range s.workerSecs {
			if v > 0 {
				busy = true
				break
			}
		}
		if busy {
			ts.WorkerSeconds = append([]float64(nil), s.workerSecs...)
			for i := range s.workerSecs {
				s.workerSecs[i] = 0
			}
		}
	}
	s.tickStats = TickStats{}
	return ts
}
