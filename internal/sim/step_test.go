package sim

import (
	"math"
	"math/rand"
	"testing"

	"coflowsched/internal/coflow"
	"coflowsched/internal/graph"
	"coflowsched/internal/workload"
)

// stepInstance builds a small random fat-tree instance with staggered
// releases, shortest paths assigned.
func stepInstance(t *testing.T, seed int64) *coflow.Instance {
	t.Helper()
	g := graph.FatTree(4, 1)
	rng := rand.New(rand.NewSource(seed))
	inst, err := workload.GenerateWithPaths(g, workload.Config{
		NumCoflows: 4, Width: 3, MeanSize: 4, MeanRelease: 3,
	}, rng)
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	return inst
}

// TestRunUntilEquivalence checks that advancing the simulator in many small
// steps produces exactly the schedule a single Run call produces, as long as
// the order is not changed between steps.
func TestRunUntilEquivalence(t *testing.T) {
	inst := stepInstance(t, 7)
	order := inst.FlowRefs()

	want, err := Run(inst, Config{Order: order, Policy: Priority})
	if err != nil {
		t.Fatalf("offline run: %v", err)
	}

	s, err := New(inst, Config{Order: order, Policy: Priority})
	if err != nil {
		t.Fatalf("new simulator: %v", err)
	}
	horizon := inst.TimeHorizon()
	step := horizon / 37 // deliberately not aligned with any event
	for until := step; !s.Done(); until += step {
		if err := s.RunUntil(until); err != nil {
			t.Fatalf("run until %v: %v", until, err)
		}
		if until > 10*horizon {
			t.Fatalf("simulation did not finish within 10x the horizon")
		}
	}
	got := s.Schedule()

	for _, ref := range inst.FlowRefs() {
		w, g := want.Get(ref).CompletionTime(), got.Get(ref).CompletionTime()
		if math.Abs(w-g) > 1e-9 {
			t.Errorf("flow %s: stepped completion %v, offline %v", ref, g, w)
		}
	}
	if w, g := want.Objective(inst), got.Objective(inst); math.Abs(w-g) > 1e-6 {
		t.Errorf("objective: stepped %v, offline %v", g, w)
	}
	if err := got.Validate(inst); err != nil {
		t.Errorf("stepped schedule infeasible: %v", err)
	}
}

// TestRunUntilBoundary checks that RunUntil stops exactly at the boundary and
// neither loses nor double-counts volume across it.
func TestRunUntilBoundary(t *testing.T) {
	inst := stepInstance(t, 11)
	order := inst.FlowRefs()
	s, err := New(inst, Config{Order: order, Policy: Priority})
	if err != nil {
		t.Fatalf("new simulator: %v", err)
	}
	boundary := inst.TimeHorizon() / 3
	if err := s.RunUntil(boundary); err != nil {
		t.Fatalf("run until: %v", err)
	}
	if s.Now() > boundary+1e-12 {
		t.Fatalf("simulator overshot boundary: now=%v boundary=%v", s.Now(), boundary)
	}
	for _, fs := range s.Residuals() {
		if fs.Remaining < -1e-9 || fs.Remaining > fs.Size+1e-9 {
			t.Errorf("flow %s: remaining %v outside [0, %v]", fs.Ref, fs.Remaining, fs.Size)
		}
	}
	if err := s.RunUntil(math.Inf(1)); err != nil {
		t.Fatalf("run to completion: %v", err)
	}
	if !s.Done() {
		t.Fatalf("simulator not done after RunUntil(+Inf)")
	}
	// Conservation: every flow delivered exactly its size.
	cs := s.Schedule()
	for _, ref := range inst.FlowRefs() {
		delivered := cs.Get(ref).Delivered()
		size := inst.Flow(ref).Size
		if math.Abs(delivered-size) > 1e-6*size {
			t.Errorf("flow %s delivered %v of %v", ref, delivered, size)
		}
	}
}

// TestSetOrderBetweenSteps re-prioritizes mid-run and checks the result is
// still a feasible, volume-conserving schedule.
func TestSetOrderBetweenSteps(t *testing.T) {
	inst := stepInstance(t, 13)
	refs := inst.FlowRefs()
	s, err := New(inst, Config{Order: refs, Policy: Priority})
	if err != nil {
		t.Fatalf("new simulator: %v", err)
	}
	horizon := inst.TimeHorizon()
	step := horizon / 8
	flip := false
	for until := step; !s.Done(); until += step {
		// Alternate between forward and reversed order each step.
		order := append([]coflow.FlowRef(nil), refs...)
		if flip {
			for i, j := 0, len(order)-1; i < j; i, j = i+1, j-1 {
				order[i], order[j] = order[j], order[i]
			}
		}
		flip = !flip
		if err := s.SetOrder(order); err != nil {
			t.Fatalf("set order: %v", err)
		}
		if err := s.RunUntil(until); err != nil {
			t.Fatalf("run until %v: %v", until, err)
		}
		if until > 20*horizon {
			t.Fatalf("simulation did not finish")
		}
	}
	cs := s.Schedule()
	if err := cs.Validate(inst); err != nil {
		t.Fatalf("schedule with mid-run re-ordering infeasible: %v", err)
	}
}

// TestPartialOrder checks that New accepts a partial priority order and ranks
// unlisted flows last.
func TestPartialOrder(t *testing.T) {
	inst := stepInstance(t, 17)
	refs := inst.FlowRefs()
	partial := refs[:len(refs)/2]
	s, err := New(inst, Config{Order: partial, Policy: Priority})
	if err != nil {
		t.Fatalf("new simulator with partial order: %v", err)
	}
	if err := s.RunUntil(math.Inf(1)); err != nil {
		t.Fatalf("run: %v", err)
	}
	if err := s.Schedule().Validate(inst); err != nil {
		t.Fatalf("schedule from partial order infeasible: %v", err)
	}

	// Run still insists on a complete order.
	if _, err := Run(inst, Config{Order: partial, Policy: Priority}); err == nil {
		t.Fatalf("Run accepted a partial priority order")
	}
	// Duplicates are rejected.
	bad := append([]coflow.FlowRef(nil), refs...)
	bad[1] = bad[0]
	if _, err := New(inst, Config{Order: bad, Policy: Priority}); err == nil {
		t.Fatalf("New accepted a duplicated priority order")
	}
}

// TestReleaseHeap exercises the typed release min-heap directly: ordering by
// (time, reference) and batch-draining of equal release times, which is how
// the event loop guarantees no event time is processed twice even though
// many flows may share it.
func TestReleaseHeap(t *testing.T) {
	var h releaseHeap
	mk := func(t float64, cf, idx int) *flowState {
		return &flowState{ref: coflow.FlowRef{Coflow: cf, Index: idx}, release: t}
	}
	in := []*flowState{mk(5, 0, 0), mk(1, 2, 0), mk(1, 0, 1), mk(1, 0, 0), mk(9, 1, 0), mk(0.25, 3, 3), mk(1, 1, 2)}
	for _, st := range in {
		h.Push(st)
	}
	var got []*flowState
	prev := math.Inf(-1)
	for h.Len() > 0 {
		if h.Peek().release != h.PeekTime() {
			t.Fatalf("peek mismatch")
		}
		st := h.Pop()
		if st.release < prev {
			t.Fatalf("heap popped %v after %v", st.release, prev)
		}
		prev = st.release
		got = append(got, st)
	}
	if len(got) != len(in) {
		t.Fatalf("popped %d entries, pushed %d", len(got), len(in))
	}
	// The four equal-time entries must come out contiguously in reference
	// order, ready to drain as one event batch.
	wantRefs := []coflow.FlowRef{{Coflow: 0, Index: 0}, {Coflow: 0, Index: 1}, {Coflow: 1, Index: 2}, {Coflow: 2, Index: 0}}
	for i, want := range wantRefs {
		if got[1+i].ref != want {
			t.Errorf("equal-time pop %d = %v, want %v", i, got[1+i].ref, want)
		}
	}
}

// TestReferenceEventHeapDedup checks the reference simulator's event heap
// drops duplicate-time pushes on Pop — the fix for the old design where New
// deduped release times through a fragile map[float64]bool and AddFlow could
// still enqueue duplicates.
func TestReferenceEventHeapDedup(t *testing.T) {
	var h refEventHeap
	for _, v := range []float64{3, 1, 3, 1, 1, 2, 3, 0.5} {
		h.Push(v)
	}
	var got []float64
	for h.Len() > 0 {
		got = append(got, h.Pop())
	}
	want := []float64{0.5, 1, 2, 3}
	if len(got) != len(want) {
		t.Fatalf("popped %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("popped %v, want %v", got, want)
		}
	}
}

// TestDuplicateReleaseTimesSimulate checks end-to-end that many flows
// sharing one release time (plus an AddFlow duplicating an existing event
// time) simulate correctly: one event batch, every flow served.
func TestDuplicateReleaseTimesSimulate(t *testing.T) {
	g := graph.Star(5, 1)
	h := g.Hosts()
	inst := &coflow.Instance{Network: g}
	for i := 1; i < len(h); i++ {
		inst.Coflows = append(inst.Coflows, coflow.Coflow{
			Name: "dup", Weight: 1,
			Flows: []coflow.Flow{{Source: h[i], Dest: h[0], Size: 2, Release: 3}},
		})
	}
	if err := inst.AssignShortestPaths(); err != nil {
		t.Fatal(err)
	}
	s, err := New(inst, Config{Order: inst.FlowRefs(), Policy: Priority})
	if err != nil {
		t.Fatalf("new: %v", err)
	}
	// Admit one more flow at the exact same release time mid-setup.
	add := coflow.Flow{Source: h[0], Dest: h[1], Size: 1, Release: 3}
	ref := coflow.FlowRef{Coflow: len(inst.Coflows), Index: 0}
	if err := s.AddFlow(ref, add, g.ShortestPath(h[0], h[1])); err != nil {
		t.Fatalf("add: %v", err)
	}
	if err := s.RunUntil(math.Inf(1)); err != nil {
		t.Fatalf("run: %v", err)
	}
	// Shared link into h0 serializes the four size-2 flows: 5, 7, 9, 11.
	// The added flow runs on the disjoint h0->h1 direction: 3 + 1.
	wantTimes := []float64{5, 7, 9, 11}
	for i, want := range wantTimes {
		fs, ok := s.Status(coflow.FlowRef{Coflow: i, Index: 0})
		if !ok || !fs.Done {
			t.Fatalf("flow %d not done", i)
		}
		if math.Abs(fs.Completion-want) > 1e-9 {
			t.Errorf("flow %d completed at %v, want %v", i, fs.Completion, want)
		}
	}
	if fs, _ := s.Status(ref); math.Abs(fs.Completion-4) > 1e-9 {
		t.Errorf("added flow completed at %v, want 4", fs.Completion)
	}
}
