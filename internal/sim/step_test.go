package sim

import (
	"math"
	"math/rand"
	"testing"

	"coflowsched/internal/coflow"
	"coflowsched/internal/graph"
	"coflowsched/internal/workload"
)

// stepInstance builds a small random fat-tree instance with staggered
// releases, shortest paths assigned.
func stepInstance(t *testing.T, seed int64) *coflow.Instance {
	t.Helper()
	g := graph.FatTree(4, 1)
	rng := rand.New(rand.NewSource(seed))
	inst, err := workload.GenerateWithPaths(g, workload.Config{
		NumCoflows: 4, Width: 3, MeanSize: 4, MeanRelease: 3,
	}, rng)
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	return inst
}

// TestRunUntilEquivalence checks that advancing the simulator in many small
// steps produces exactly the schedule a single Run call produces, as long as
// the order is not changed between steps.
func TestRunUntilEquivalence(t *testing.T) {
	inst := stepInstance(t, 7)
	order := inst.FlowRefs()

	want, err := Run(inst, Config{Order: order, Policy: Priority})
	if err != nil {
		t.Fatalf("offline run: %v", err)
	}

	s, err := New(inst, Config{Order: order, Policy: Priority})
	if err != nil {
		t.Fatalf("new simulator: %v", err)
	}
	horizon := inst.TimeHorizon()
	step := horizon / 37 // deliberately not aligned with any event
	for until := step; !s.Done(); until += step {
		if err := s.RunUntil(until); err != nil {
			t.Fatalf("run until %v: %v", until, err)
		}
		if until > 10*horizon {
			t.Fatalf("simulation did not finish within 10x the horizon")
		}
	}
	got := s.Schedule()

	for _, ref := range inst.FlowRefs() {
		w, g := want.Get(ref).CompletionTime(), got.Get(ref).CompletionTime()
		if math.Abs(w-g) > 1e-9 {
			t.Errorf("flow %s: stepped completion %v, offline %v", ref, g, w)
		}
	}
	if w, g := want.Objective(inst), got.Objective(inst); math.Abs(w-g) > 1e-6 {
		t.Errorf("objective: stepped %v, offline %v", g, w)
	}
	if err := got.Validate(inst); err != nil {
		t.Errorf("stepped schedule infeasible: %v", err)
	}
}

// TestRunUntilBoundary checks that RunUntil stops exactly at the boundary and
// neither loses nor double-counts volume across it.
func TestRunUntilBoundary(t *testing.T) {
	inst := stepInstance(t, 11)
	order := inst.FlowRefs()
	s, err := New(inst, Config{Order: order, Policy: Priority})
	if err != nil {
		t.Fatalf("new simulator: %v", err)
	}
	boundary := inst.TimeHorizon() / 3
	if err := s.RunUntil(boundary); err != nil {
		t.Fatalf("run until: %v", err)
	}
	if s.Now() > boundary+1e-12 {
		t.Fatalf("simulator overshot boundary: now=%v boundary=%v", s.Now(), boundary)
	}
	for _, fs := range s.Residuals() {
		if fs.Remaining < -1e-9 || fs.Remaining > fs.Size+1e-9 {
			t.Errorf("flow %s: remaining %v outside [0, %v]", fs.Ref, fs.Remaining, fs.Size)
		}
	}
	if err := s.RunUntil(math.Inf(1)); err != nil {
		t.Fatalf("run to completion: %v", err)
	}
	if !s.Done() {
		t.Fatalf("simulator not done after RunUntil(+Inf)")
	}
	// Conservation: every flow delivered exactly its size.
	cs := s.Schedule()
	for _, ref := range inst.FlowRefs() {
		delivered := cs.Get(ref).Delivered()
		size := inst.Flow(ref).Size
		if math.Abs(delivered-size) > 1e-6*size {
			t.Errorf("flow %s delivered %v of %v", ref, delivered, size)
		}
	}
}

// TestSetOrderBetweenSteps re-prioritizes mid-run and checks the result is
// still a feasible, volume-conserving schedule.
func TestSetOrderBetweenSteps(t *testing.T) {
	inst := stepInstance(t, 13)
	refs := inst.FlowRefs()
	s, err := New(inst, Config{Order: refs, Policy: Priority})
	if err != nil {
		t.Fatalf("new simulator: %v", err)
	}
	horizon := inst.TimeHorizon()
	step := horizon / 8
	flip := false
	for until := step; !s.Done(); until += step {
		// Alternate between forward and reversed order each step.
		order := append([]coflow.FlowRef(nil), refs...)
		if flip {
			for i, j := 0, len(order)-1; i < j; i, j = i+1, j-1 {
				order[i], order[j] = order[j], order[i]
			}
		}
		flip = !flip
		if err := s.SetOrder(order); err != nil {
			t.Fatalf("set order: %v", err)
		}
		if err := s.RunUntil(until); err != nil {
			t.Fatalf("run until %v: %v", until, err)
		}
		if until > 20*horizon {
			t.Fatalf("simulation did not finish")
		}
	}
	cs := s.Schedule()
	if err := cs.Validate(inst); err != nil {
		t.Fatalf("schedule with mid-run re-ordering infeasible: %v", err)
	}
}

// TestPartialOrder checks that New accepts a partial priority order and ranks
// unlisted flows last.
func TestPartialOrder(t *testing.T) {
	inst := stepInstance(t, 17)
	refs := inst.FlowRefs()
	partial := refs[:len(refs)/2]
	s, err := New(inst, Config{Order: partial, Policy: Priority})
	if err != nil {
		t.Fatalf("new simulator with partial order: %v", err)
	}
	if err := s.RunUntil(math.Inf(1)); err != nil {
		t.Fatalf("run: %v", err)
	}
	if err := s.Schedule().Validate(inst); err != nil {
		t.Fatalf("schedule from partial order infeasible: %v", err)
	}

	// Run still insists on a complete order.
	if _, err := Run(inst, Config{Order: partial, Policy: Priority}); err == nil {
		t.Fatalf("Run accepted a partial priority order")
	}
	// Duplicates are rejected.
	bad := append([]coflow.FlowRef(nil), refs...)
	bad[1] = bad[0]
	if _, err := New(inst, Config{Order: bad, Policy: Priority}); err == nil {
		t.Fatalf("New accepted a duplicated priority order")
	}
}

// TestEventHeap exercises the typed min-heap directly.
func TestEventHeap(t *testing.T) {
	var h eventHeap
	in := []float64{5, 1, 4, 1.5, 9, 0.25, 7}
	for _, v := range in {
		h.Push(v)
	}
	prev := math.Inf(-1)
	for h.Len() > 0 {
		if p := h.Peek(); p != h.ts[0] {
			t.Fatalf("peek mismatch")
		}
		v := h.Pop()
		if v < prev {
			t.Fatalf("heap popped %v after %v", v, prev)
		}
		prev = v
	}
}
