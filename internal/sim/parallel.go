package sim

// Partition-parallel dirty-suffix reallocation.
//
// The greedy priority allocator's per-edge arithmetic decomposes cleanly
// along a partition of the edge set (internal/graph.EdgePartition — for
// fat-trees, one class per pod): every edge belongs to exactly one class, so
// one worker per class can replay its class's residual operations with no
// synchronization at all for flows whose path stays inside the class. The
// result is bit-identical to the sequential walk because
//
//   - per-edge operation order is preserved: a class's worker processes its
//     queue in active-set order, and all reads/writes of an edge's residual
//     happen on the one worker owning its class;
//   - a cross-class flow's rate is min over its path's residuals, and min is
//     exact and order-independent in floating point, so folding per-class
//     partial minima reproduces the sequential value bit for bit;
//   - a worker reaching a cross-class flow blocks until every other touching
//     class has contributed its partial minimum and the full rate is
//     resolved, then subtracts the rate from its own class's edges before
//     moving on — so even around cross flows, each edge sees the exact
//     sequential read/write sequence;
//   - rate *application* (setRate: residual materialization, segment close,
//     completion-heap push) is deferred to a sequential walk of the suffix
//     in active order after the workers join, so heap contents and segment
//     logs are constructed in the sequential order too.
//
// Deadlock-freedom: queues are built from one ordered walk of the suffix, so
// any two workers see shared cross flows in the same relative order. A
// worker blocked at cross flow f waits only for workers that have not yet
// reached f; every such worker sits at a strictly earlier queue position,
// and the earliest pending cross flow in the system always has all its
// contributors unblocked ahead of it, so some worker always progresses.
//
// FairShare is a global progressive-filling computation with no suffix
// structure and stays sequential regardless of partitioning.

import (
	"math"
	"sync"
	"time"
)

// parallelMinSuffix is the suffix length below which the fan-out overhead
// (queue build, goroutine launch, join) outweighs the parallel win and the
// sequential walk is used. A variable, not a constant, so tests can force
// the parallel path onto small workloads.
var parallelMinSuffix = 64

// parallelRounds counts redo walks that actually fanned out (≥2 busy
// classes). Only the coordinator increments it; tests read it to prove the
// parallel path was exercised rather than silently skipped.
var parallelRounds int

// parItem is one entry of a class worker's queue. cs is nil for flows owned
// entirely by the worker's class.
type parItem struct {
	st *flowState
	cs *crossFlow
}

// crossFlow is the rendezvous record for one cross-class flow: touching
// workers fold their class-local minima into partial, and the last one to
// arrive resolves the final rate and releases the rest.
type crossFlow struct {
	mu      sync.Mutex
	partial float64
	waiting int32 // contributions still outstanding
	rate    float64
	done    chan struct{} // buffered; resolver posts one token per waiter
}

// parRealloc is the reusable parallel-redo scratch: per-class queues and a
// free list of crossFlow records (their channels drain completely each
// round, so records recycle without reallocation).
type parRealloc struct {
	queues [][]parItem
	cross  []*crossFlow
	used   int
	wg     sync.WaitGroup
}

// classify assigns the flow's partition placement: the owning class when
// every path edge lives in one class, else -1 plus the sorted list of
// touched classes. No-op cost when the simulator is unpartitioned.
func (s *Simulator) classify(st *flowState) {
	if s.ep == nil || len(st.path) == 0 {
		st.part = 0
		return
	}
	first := int32(s.ep.EdgePart(st.path[0]))
	cross := false
	for _, e := range st.path[1:] {
		if int32(s.ep.EdgePart(e)) != first {
			cross = true
			break
		}
	}
	if !cross {
		st.part = first
		return
	}
	st.part = -1
	st.parts = st.parts[:0]
	for _, e := range st.path {
		c := int32(s.ep.EdgePart(e))
		seen := false
		for _, x := range st.parts {
			if x == c {
				seen = true
				break
			}
		}
		if !seen {
			st.parts = append(st.parts, c)
		}
	}
	// Paths are a handful of edges, so insertion keeps this O(len(path)²)
	// scan cheaper than sorting machinery; order the classes ascending.
	for i := 1; i < len(st.parts); i++ {
		for j := i; j > 0 && st.parts[j] < st.parts[j-1]; j-- {
			st.parts[j], st.parts[j-1] = st.parts[j-1], st.parts[j]
		}
	}
}

// takeCross checks a crossFlow record out of the free list, growing it on
// demand. Channels are sized for the worst case (every class waiting).
func (p *parRealloc) takeCross(nparts int, touched int) *crossFlow {
	var cf *crossFlow
	if p.used < len(p.cross) {
		cf = p.cross[p.used]
	} else {
		cf = &crossFlow{done: make(chan struct{}, nparts)}
		p.cross = append(p.cross, cf)
	}
	p.used++
	cf.partial = math.Inf(1)
	cf.waiting = int32(touched)
	cf.rate = 0
	return cf
}

// redoParallel is the partitioned form of the redo walk: build per-class
// queues from one ordered pass over the suffix, run one worker per busy
// class, then apply the computed rates in active order.
func (s *Simulator) redoParallel(start *activeNode, now float64) {
	p := s.par
	if p == nil {
		p = &parRealloc{queues: make([][]parItem, s.ep.Parts())}
		s.par = p
	}
	for i := range p.queues {
		p.queues[i] = p.queues[i][:0]
	}
	p.used = 0
	for n := start; n != nil; n = n.next[0] {
		st := n.st
		if st.part >= 0 {
			p.queues[st.part] = append(p.queues[st.part], parItem{st: st})
			continue
		}
		cf := p.takeCross(s.ep.Parts(), len(st.parts))
		for _, c := range st.parts {
			p.queues[c] = append(p.queues[c], parItem{st: st, cs: cf})
		}
	}
	s.tickStats.CrossFlows += p.used
	busy := 0
	for c := range p.queues {
		if len(p.queues[c]) > 0 {
			busy++
		}
	}
	if busy <= 1 {
		// One busy class: the sequential walk is the same computation
		// without the handoff.
		for n := start; n != nil; n = n.next[0] {
			s.allocGreedy(n.st, now)
		}
		return
	}
	parallelRounds++
	s.tickStats.ParallelRounds++
	if s.workerSecs == nil {
		s.workerSecs = make([]float64, s.ep.Parts())
	}
	p.wg.Add(busy)
	for c := range p.queues {
		if len(p.queues[c]) > 0 {
			// Each worker owns its class's workerSecs slot; the deferred Done
			// runs after the slot write, so the coordinator's Wait (and any
			// later round's worker for the same class) observes it.
			go func(c int32, queue []parItem) {
				defer p.wg.Done()
				t0 := time.Now()
				s.classWorker(c, queue)
				s.workerSecs[c] += time.Since(t0).Seconds()
			}(int32(c), p.queues[c])
		}
	}
	p.wg.Wait()
	// Ordered apply: the exact setRate call sequence of the sequential walk,
	// so completion-heap pushes, segment closures and posRates bookkeeping
	// are reconstructed in sequential order.
	for n := start; n != nil; n = n.next[0] {
		st := n.st
		if st.pendingRate != st.rate {
			s.setRate(st, st.pendingRate, now)
		}
	}
}

// classWorker replays one class's share of the redo walk. It touches only
// residuals of edges its class owns; flowState writes are confined to the
// single owner (intra flows) or the resolving worker (cross flows), and the
// coordinator reads them only after the WaitGroup join.
func (s *Simulator) classWorker(c int32, queue []parItem) {
	ep := s.ep
	for _, it := range queue {
		st := it.st
		if it.cs == nil {
			// Intra-class flow: the sequential allocGreedy computation, with
			// the rate parked for the ordered apply walk.
			r := math.Inf(1)
			for _, e := range st.path {
				if s.residual[e] < r {
					r = s.residual[e]
				}
			}
			if r < minRate || math.IsInf(r, 1) {
				r = 0
			}
			st.pendingRate = r
			if r > 0 {
				for _, e := range st.path {
					s.residual[e] -= r
				}
			}
			continue
		}
		// Cross-class flow: contribute this class's partial minimum, resolve
		// or wait for the full rate, then charge this class's edges.
		cf := it.cs
		local := math.Inf(1)
		for _, e := range st.path {
			if int32(ep.EdgePart(e)) == c && s.residual[e] < local {
				local = s.residual[e]
			}
		}
		cf.mu.Lock()
		if local < cf.partial {
			cf.partial = local
		}
		cf.waiting--
		if cf.waiting == 0 {
			r := cf.partial
			if r < minRate || math.IsInf(r, 1) {
				r = 0
			}
			cf.rate = r
			st.pendingRate = r
			cf.mu.Unlock()
			for i := 0; i < len(st.parts)-1; i++ {
				cf.done <- struct{}{}
			}
		} else {
			cf.mu.Unlock()
			<-cf.done
		}
		if r := cf.rate; r > 0 {
			for _, e := range st.path {
				if int32(ep.EdgePart(e)) == c {
					s.residual[e] -= r
				}
			}
		}
	}
}
