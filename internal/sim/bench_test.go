package sim

import (
	"math"
	"math/rand"
	"testing"

	"coflowsched/internal/coflow"
	"coflowsched/internal/graph"
	"coflowsched/internal/workload"
)

// benchWorkload draws a reproducible contended workload on a 16-server
// fat-tree: `coflows` coflows of `width` flows each, releases staggered so the
// active set churns throughout the run instead of peaking once.
func benchWorkload(b *testing.B, coflows, width int) *coflow.Instance {
	b.Helper()
	rng := rand.New(rand.NewSource(42))
	inst, err := workload.GenerateWithPaths(graph.FatTree(4, 1), workload.Config{
		NumCoflows: coflows, Width: width, MeanSize: 4, MeanRelease: 25,
	}, rng)
	if err != nil {
		b.Fatal(err)
	}
	return inst
}

func benchmarkRun(b *testing.B, coflows, width int, policy Policy) {
	inst := benchWorkload(b, coflows, width)
	cfg := Config{Policy: policy}
	if policy == Priority {
		cfg.Order = inst.FlowRefs()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(inst, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRunPriority2000Flows is the acceptance benchmark for the
// incremental allocator: a 2000-flow priority-policy Run on a contended
// fat-tree (the §4.1 hot path at scale).
func BenchmarkRunPriority2000Flows(b *testing.B) { benchmarkRun(b, 250, 8, Priority) }

// BenchmarkRunPriority500Flows is the same workload at a quarter scale, for
// reading the cost curve.
func BenchmarkRunPriority500Flows(b *testing.B) { benchmarkRun(b, 125, 4, Priority) }

// BenchmarkRunFairShare500Flows exercises the progressive-filling allocator,
// which recomputes every rate per event but must not allocate per event.
func BenchmarkRunFairShare500Flows(b *testing.B) { benchmarkRun(b, 125, 4, FairShare) }

// BenchmarkRunUntilStepped measures the resumable stepping path the online
// scheduler drives: RunUntil in 64 epoch-sized steps with a re-ordering
// between steps, on a 500-flow workload.
func BenchmarkRunUntilStepped(b *testing.B) {
	inst := benchWorkload(b, 125, 4)
	refs := inst.FlowRefs()
	rev := make([]coflow.FlowRef, len(refs))
	for i, r := range refs {
		rev[len(refs)-1-i] = r
	}
	horizon := inst.TimeHorizon()
	step := horizon / 64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := New(inst, Config{Order: refs, Policy: Priority})
		if err != nil {
			b.Fatal(err)
		}
		flip := false
		for until := step; !s.Done(); until += step {
			order := refs
			if flip {
				order = rev
			}
			flip = !flip
			if err := s.SetOrder(order); err != nil {
				b.Fatal(err)
			}
			if err := s.RunUntil(until); err != nil {
				b.Fatal(err)
			}
		}
		if err := s.RunUntil(math.Inf(1)); err != nil {
			b.Fatal(err)
		}
	}
}
