package sim

// This file holds the simulator's incremental event-scheduling structures:
//
//   - activeSet: a deterministic skip list over the released, unfinished
//     flows, ordered by priority rank. Insert/Delete are O(log F) and the
//     greedy allocator walks the "dirty suffix" of the order through level-0
//     links, so maintaining the active set never rebuilds or re-sorts the
//     whole flow population the way the naive allocator does.
//   - releaseHeap: a typed min-heap of flows awaiting their release time,
//     one entry per flow. Equal release times are popped as one batch by the
//     event loop, which removes the old float-keyed dedup (a map[float64]bool
//     in New) and the duplicate-time event pushes of the previous design.
//   - compHeap: a lazy-deletion min-heap of projected flow completion times.
//     A flow's projection stays valid while its rate is unchanged (remaining
//     shrinks exactly as the clock advances), so only flows whose rate
//     actually changed push new entries; stale entries are skipped on pop and
//     compacted when they outnumber live flows.

import "slices"

// activeKey orders active flows by priority rank, ties broken by flow
// reference for determinism.
type activeKey struct {
	rank   int
	coflow int
	index  int
}

func keyLess(a, b activeKey) bool {
	if a.rank != b.rank {
		return a.rank < b.rank
	}
	if a.coflow != b.coflow {
		return a.coflow < b.coflow
	}
	return a.index < b.index
}

// activeMaxLevel bounds the skip list height; 2^20 flows is far beyond any
// simulated instance.
const activeMaxLevel = 20

type activeNode struct {
	st   *flowState
	key  activeKey
	next []*activeNode
}

// activeSet is a deterministic skip list: levels are drawn from a seeded
// xorshift generator, so two simulators fed the same inputs build identical
// structures (and therefore identical iteration costs).
type activeSet struct {
	head    *activeNode
	n       int
	rng     uint64
	scratch []*activeNode // Rebuild's node buffer, reused across re-orderings
}

func newActiveSet() *activeSet {
	return &activeSet{
		head: &activeNode{next: make([]*activeNode, activeMaxLevel)},
		rng:  0x9E3779B97F4A7C15,
	}
}

func (a *activeSet) Len() int { return a.n }

// First returns the highest-priority active flow's node (nil when empty).
func (a *activeSet) First() *activeNode { return a.head.next[0] }

// randLevel draws a geometric level with p = 1/4 from the deterministic
// generator.
func (a *activeSet) randLevel() int {
	a.rng ^= a.rng << 13
	a.rng ^= a.rng >> 7
	a.rng ^= a.rng << 17
	lvl := 1
	for v := a.rng; lvl < activeMaxLevel && v&3 == 0; v >>= 2 {
		lvl++
	}
	return lvl
}

// Seek returns the first node whose key is >= k, or nil.
func (a *activeSet) Seek(k activeKey) *activeNode {
	x := a.head
	for i := activeMaxLevel - 1; i >= 0; i-- {
		for x.next[i] != nil && keyLess(x.next[i].key, k) {
			x = x.next[i]
		}
	}
	return x.next[0]
}

// Insert adds the flow under its current rank and records the node on the
// flow state. The flow must not already be in the set.
func (a *activeSet) Insert(st *flowState) {
	n := &activeNode{
		st:   st,
		key:  activeKey{rank: st.rank, coflow: st.ref.Coflow, index: st.ref.Index},
		next: make([]*activeNode, a.randLevel()),
	}
	a.insertNode(n)
	st.node = n
}

// insertNode links an already-built node at its key position.
func (a *activeSet) insertNode(n *activeNode) {
	var update [activeMaxLevel]*activeNode
	x := a.head
	for i := activeMaxLevel - 1; i >= 0; i-- {
		for x.next[i] != nil && keyLess(x.next[i].key, n.key) {
			x = x.next[i]
		}
		update[i] = x
	}
	for i := range n.next {
		n.next[i] = update[i].next[i]
		update[i].next[i] = n
	}
	a.n++
}

// Delete unlinks the flow's node. The flow must be in the set.
func (a *activeSet) Delete(st *flowState) {
	k := st.node.key
	x := a.head
	for i := activeMaxLevel - 1; i >= 0; i-- {
		for x.next[i] != nil && keyLess(x.next[i].key, k) {
			x = x.next[i]
		}
		if x.next[i] == st.node {
			x.next[i] = st.node.next[i]
		}
	}
	st.node = nil
	a.n--
}

// Rebuild re-sorts the set after the flows' ranks changed (SetOrder):
// collect the member nodes, refresh their keys, sort, and re-link every
// level with a tail-append sweep — no per-node skip-list search. Nodes (and
// their tower slices) are reused, so a re-ordering's only allocation is the
// sort's. O(F log F) comparisons, paid once per re-ordering rather than
// once per event.
func (a *activeSet) Rebuild() {
	a.scratch = a.scratch[:0]
	for n := a.head.next[0]; n != nil; n = n.next[0] {
		a.scratch = append(a.scratch, n)
	}
	for _, n := range a.scratch {
		n.key = activeKey{rank: n.st.rank, coflow: n.st.ref.Coflow, index: n.st.ref.Index}
	}
	slices.SortFunc(a.scratch, func(x, y *activeNode) int {
		if keyLess(x.key, y.key) {
			return -1
		}
		return 1 // keys are unique per flow, so equality cannot occur
	})
	var tails [activeMaxLevel]*activeNode
	for i := range a.head.next {
		tails[i] = a.head
		a.head.next[i] = nil
	}
	for _, n := range a.scratch {
		for i := range n.next {
			n.next[i] = nil
			tails[i].next[i] = n
			tails[i] = n
		}
	}
}

// releaseHeap is a typed min-heap of flows awaiting release, ordered by
// (release time, flow reference). One entry per flow: equal release times
// coexist and are drained as a batch by the event loop, so no event time is
// ever processed twice.
type releaseHeap struct{ fs []*flowState }

func releaseLess(a, b *flowState) bool {
	if a.release != b.release {
		return a.release < b.release
	}
	if a.ref.Coflow != b.ref.Coflow {
		return a.ref.Coflow < b.ref.Coflow
	}
	return a.ref.Index < b.ref.Index
}

func (h *releaseHeap) Len() int          { return len(h.fs) }
func (h *releaseHeap) Peek() *flowState  { return h.fs[0] }
func (h *releaseHeap) PeekTime() float64 { return h.fs[0].release }

func (h *releaseHeap) Push(st *flowState) {
	h.fs = append(h.fs, st)
	i := len(h.fs) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !releaseLess(h.fs[i], h.fs[p]) {
			break
		}
		h.fs[p], h.fs[i] = h.fs[i], h.fs[p]
		i = p
	}
}

func (h *releaseHeap) Pop() *flowState {
	top := h.fs[0]
	n := len(h.fs) - 1
	h.fs[0] = h.fs[n]
	h.fs[n] = nil
	h.fs = h.fs[:n]
	h.siftDown(0)
	return top
}

// Remove deletes one specific entry, restoring the heap property around the
// hole. O(n) search: it serves only Simulator.Remove's admission-rollback
// path, where the heap holds the handful of not-yet-released flows.
func (h *releaseHeap) Remove(st *flowState) bool {
	for i, f := range h.fs {
		if f != st {
			continue
		}
		n := len(h.fs) - 1
		h.fs[i] = h.fs[n]
		h.fs[n] = nil
		h.fs = h.fs[:n]
		if i < n {
			h.siftDown(i)
			h.siftUp(i)
		}
		return true
	}
	return false
}

func (h *releaseHeap) siftUp(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if !releaseLess(h.fs[i], h.fs[p]) {
			return
		}
		h.fs[p], h.fs[i] = h.fs[i], h.fs[p]
		i = p
	}
}

func (h *releaseHeap) siftDown(i int) {
	n := len(h.fs)
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < n && releaseLess(h.fs[l], h.fs[small]) {
			small = l
		}
		if r < n && releaseLess(h.fs[r], h.fs[small]) {
			small = r
		}
		if small == i {
			return
		}
		h.fs[i], h.fs[small] = h.fs[small], h.fs[i]
		i = small
	}
}

// compEntry is one projected completion: flow st finishes at time t if its
// rate is unchanged since the entry was pushed (seq matches st.heapSeq).
type compEntry struct {
	t   float64
	st  *flowState
	seq int
}

func compLess(a, b compEntry) bool {
	if a.t != b.t {
		return a.t < b.t
	}
	if a.st.ref.Coflow != b.st.ref.Coflow {
		return a.st.ref.Coflow < b.st.ref.Coflow
	}
	return a.st.ref.Index < b.st.ref.Index
}

// compHeap is a lazy-deletion min-heap of projected completions.
type compHeap struct{ es []compEntry }

func (h *compHeap) Len() int        { return len(h.es) }
func (h *compHeap) Peek() compEntry { return h.es[0] }

func (h *compHeap) Push(e compEntry) {
	h.es = append(h.es, e)
	i := len(h.es) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !compLess(h.es[i], h.es[p]) {
			break
		}
		h.es[p], h.es[i] = h.es[i], h.es[p]
		i = p
	}
}

func (h *compHeap) Pop() compEntry {
	top := h.es[0]
	n := len(h.es) - 1
	h.es[0] = h.es[n]
	h.es[n] = compEntry{}
	h.es = h.es[:n]
	h.siftDown(0)
	return top
}

func (h *compHeap) siftDown(i int) {
	n := len(h.es)
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < n && compLess(h.es[l], h.es[small]) {
			small = l
		}
		if r < n && compLess(h.es[r], h.es[small]) {
			small = r
		}
		if small == i {
			return
		}
		h.es[i], h.es[small] = h.es[small], h.es[i]
		i = small
	}
}

// compact drops stale entries in place and restores the heap property.
func (h *compHeap) compact() {
	kept := h.es[:0]
	for _, e := range h.es {
		if !e.st.done && e.seq == e.st.heapSeq {
			kept = append(kept, e)
		}
	}
	for i := len(kept); i < len(h.es); i++ {
		h.es[i] = compEntry{}
	}
	h.es = kept
	for i := len(h.es)/2 - 1; i >= 0; i-- {
		h.siftDown(i)
	}
}
