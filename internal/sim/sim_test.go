package sim

import (
	"math"
	"testing"

	"coflowsched/internal/coflow"
	"coflowsched/internal/graph"
)

// figure1Instance reproduces the paper's Figure 1 instance (coflow A with
// flows of size 2 and 1, coflows B and C with one flow each) on the triangle
// network, with shortest (direct) paths assigned.
func figure1Instance(t *testing.T) *coflow.Instance {
	t.Helper()
	g := graph.Triangle()
	x, _ := g.FindNode("x")
	y, _ := g.FindNode("y")
	z, _ := g.FindNode("z")
	inst := &coflow.Instance{
		Network: g,
		Coflows: []coflow.Coflow{
			{Name: "A", Weight: 1, Flows: []coflow.Flow{
				{Source: x, Dest: y, Size: 2},
				{Source: y, Dest: z, Size: 1},
			}},
			{Name: "B", Weight: 1, Flows: []coflow.Flow{{Source: y, Dest: z, Size: 1}}},
			{Name: "C", Weight: 1, Flows: []coflow.Flow{{Source: x, Dest: z, Size: 2}}},
		},
	}
	if err := inst.Validate(false); err != nil {
		t.Fatalf("invalid instance: %v", err)
	}
	if err := inst.AssignShortestPaths(); err != nil {
		t.Fatalf("paths: %v", err)
	}
	return inst
}

func defaultOrder(inst *coflow.Instance) []coflow.FlowRef { return inst.FlowRefs() }

func TestRunPriorityProducesValidSchedule(t *testing.T) {
	inst := figure1Instance(t)
	cs, err := Run(inst, Config{Order: defaultOrder(inst), Policy: Priority})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if err := cs.Validate(inst); err != nil {
		t.Fatalf("schedule invalid: %v", err)
	}
	// With coflow-order priorities A1,A2,B,C: A finishes at 2 (A1 at 2, A2 at
	// 1), B waits for A2's edge and finishes at 2, C shares no edge and runs
	// immediately, finishing at 2. Objective = 2 + 2 + 2 = 6.
	if got := cs.Objective(inst); math.Abs(got-6) > 1e-6 {
		t.Errorf("objective = %v, want 6", got)
	}
}

func TestRunFairShareMatchesFigure1S1(t *testing.T) {
	inst := figure1Instance(t)
	cs, err := Run(inst, Config{Policy: FairShare})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if err := cs.Validate(inst); err != nil {
		t.Fatalf("schedule invalid: %v", err)
	}
	// Max-min fair sharing on the triangle: A2 and B share edge y->z at rate
	// 1/2 each; A1 and C have their edges to themselves... but fair share is
	// global per edge, so A1 and C run at rate 1 and finish at 2; A2 and B
	// finish at 2 as well. Objective = 2+2+2 = 6. The paper's (s1) instead
	// fixes every rate to 1/2 which is not max-min fair; we only require the
	// schedule to be feasible and no better than optimal (6 is optimal here).
	if got := cs.Objective(inst); got < 6-1e-6 {
		t.Errorf("objective = %v below optimal 6", got)
	}
}

func TestRunRespectsReleaseTimes(t *testing.T) {
	g := graph.Line(2, 1)
	h := g.Hosts()
	inst := &coflow.Instance{
		Network: g,
		Coflows: []coflow.Coflow{
			{Name: "late", Weight: 1, Flows: []coflow.Flow{{Source: h[0], Dest: h[1], Size: 1, Release: 5}}},
		},
	}
	_ = inst.AssignShortestPaths()
	cs, err := Run(inst, Config{Order: defaultOrder(inst), Policy: Priority})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if err := cs.Validate(inst); err != nil {
		t.Fatalf("invalid: %v", err)
	}
	if got := cs.Objective(inst); math.Abs(got-6) > 1e-9 {
		t.Errorf("completion = %v, want 6 (release 5 + size 1)", got)
	}
}

func TestRunPriorityOrderMatters(t *testing.T) {
	// Two coflows share one unit link; sizes 4 and 1, unit weights.
	// Serving the small one first gives 1 + 5 = 6; big first gives 4 + 5 = 9.
	g := graph.Line(2, 1)
	h := g.Hosts()
	inst := &coflow.Instance{
		Network: g,
		Coflows: []coflow.Coflow{
			{Name: "big", Weight: 1, Flows: []coflow.Flow{{Source: h[0], Dest: h[1], Size: 4}}},
			{Name: "small", Weight: 1, Flows: []coflow.Flow{{Source: h[0], Dest: h[1], Size: 1}}},
		},
	}
	_ = inst.AssignShortestPaths()
	bigFirst := []coflow.FlowRef{{Coflow: 0, Index: 0}, {Coflow: 1, Index: 0}}
	smallFirst := []coflow.FlowRef{{Coflow: 1, Index: 0}, {Coflow: 0, Index: 0}}

	csBig, err := Run(inst, Config{Order: bigFirst, Policy: Priority})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	csSmall, err := Run(inst, Config{Order: smallFirst, Policy: Priority})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if err := csBig.Validate(inst); err != nil {
		t.Fatalf("big-first invalid: %v", err)
	}
	if err := csSmall.Validate(inst); err != nil {
		t.Fatalf("small-first invalid: %v", err)
	}
	if got := csBig.Objective(inst); math.Abs(got-9) > 1e-6 {
		t.Errorf("big-first objective = %v, want 9", got)
	}
	if got := csSmall.Objective(inst); math.Abs(got-6) > 1e-6 {
		t.Errorf("small-first objective = %v, want 6", got)
	}
}

func TestRunCustomPathsOverride(t *testing.T) {
	// Force a flow onto a two-hop route even though a direct edge exists.
	g := graph.Triangle()
	x, _ := g.FindNode("x")
	y, _ := g.FindNode("y")
	z, _ := g.FindNode("z")
	inst := &coflow.Instance{
		Network: g,
		Coflows: []coflow.Coflow{{Name: "A", Weight: 1, Flows: []coflow.Flow{{Source: x, Dest: z, Size: 1}}}},
	}
	_ = inst.AssignShortestPaths()
	var xy, yz graph.EdgeID = -1, -1
	for _, e := range g.Out(x) {
		if g.Edge(e).To == y {
			xy = e
		}
	}
	for _, e := range g.Out(y) {
		if g.Edge(e).To == z {
			yz = e
		}
	}
	ref := coflow.FlowRef{Coflow: 0, Index: 0}
	cs, err := Run(inst, Config{
		Order:  []coflow.FlowRef{ref},
		Paths:  map[coflow.FlowRef]graph.Path{ref: {xy, yz}},
		Policy: Priority,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if err := cs.Validate(inst); err != nil {
		t.Fatalf("invalid: %v", err)
	}
	if len(cs.Get(ref).Path) != 2 {
		t.Errorf("override path not used")
	}
}

func TestRunErrors(t *testing.T) {
	inst := figure1Instance(t)
	t.Run("short order", func(t *testing.T) {
		if _, err := Run(inst, Config{Order: inst.FlowRefs()[:1], Policy: Priority}); err == nil {
			t.Error("expected error")
		}
	})
	t.Run("duplicate in order", func(t *testing.T) {
		refs := inst.FlowRefs()
		refs[1] = refs[0]
		if _, err := Run(inst, Config{Order: refs, Policy: Priority}); err == nil {
			t.Error("expected error")
		}
	})
	t.Run("missing path", func(t *testing.T) {
		bad := figure1Instance(t)
		bad.Coflows[0].Flows[0].Path = nil
		if _, err := Run(bad, Config{Order: bad.FlowRefs(), Policy: Priority}); err == nil {
			t.Error("expected error")
		}
	})
	t.Run("bad override path", func(t *testing.T) {
		refs := inst.FlowRefs()
		paths := map[coflow.FlowRef]graph.Path{refs[0]: {graph.EdgeID(5)}}
		if _, err := Run(inst, Config{Order: refs, Paths: paths, Policy: Priority}); err == nil {
			t.Error("expected error")
		}
	})
}

func TestRunManyFlowsContention(t *testing.T) {
	// A star network where every host sends to host 0 through the switch:
	// the shared link into h0 serializes everything under priority order.
	g := graph.Star(5, 1)
	h := g.Hosts()
	inst := &coflow.Instance{Network: g}
	for i := 1; i < len(h); i++ {
		inst.Coflows = append(inst.Coflows, coflow.Coflow{
			Name:   "c",
			Weight: 1,
			Flows:  []coflow.Flow{{Source: h[i], Dest: h[0], Size: 1}},
		})
	}
	if err := inst.AssignShortestPaths(); err != nil {
		t.Fatal(err)
	}
	cs, err := Run(inst, Config{Order: inst.FlowRefs(), Policy: Priority})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if err := cs.Validate(inst); err != nil {
		t.Fatalf("invalid: %v", err)
	}
	// Serialized completions 1,2,3,4: objective 10, makespan 4.
	if got := cs.Objective(inst); math.Abs(got-10) > 1e-6 {
		t.Errorf("objective = %v, want 10", got)
	}
	if got := cs.Makespan(); math.Abs(got-4) > 1e-6 {
		t.Errorf("makespan = %v, want 4", got)
	}
	// Fair sharing the bottleneck link gives everyone rate 1/4 initially; all
	// finish later than serialized average but makespan stays 4.
	fair, err := Run(inst, Config{Policy: FairShare})
	if err != nil {
		t.Fatalf("Run fair: %v", err)
	}
	if err := fair.Validate(inst); err != nil {
		t.Fatalf("fair invalid: %v", err)
	}
	if got := fair.Makespan(); math.Abs(got-4) > 1e-6 {
		t.Errorf("fair makespan = %v, want 4", got)
	}
	if !(fair.Objective(inst) >= cs.Objective(inst)-1e-6) {
		t.Errorf("fair sharing (%v) should not beat shortest-first priority (%v) here",
			fair.Objective(inst), cs.Objective(inst))
	}
}
