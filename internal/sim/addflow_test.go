package sim

import (
	"math"
	"testing"

	"coflowsched/internal/coflow"
	"coflowsched/internal/graph"
)

// TestAddFlowFromEmpty builds a simulator over an instance with no flows and
// admits every flow through AddFlow, as the online serving engine does. After
// a full-order SetOrder the run must match a batch Run over the complete
// instance exactly.
func TestAddFlowFromEmpty(t *testing.T) {
	inst := stepInstance(t, 19)
	refs := inst.FlowRefs()

	want, err := Run(inst, Config{Order: refs, Policy: Priority})
	if err != nil {
		t.Fatalf("offline run: %v", err)
	}

	s, err := New(&coflow.Instance{Network: inst.Network}, Config{Policy: Priority})
	if err != nil {
		t.Fatalf("new empty simulator: %v", err)
	}
	if !s.Done() {
		t.Fatalf("empty simulator reports not done")
	}
	for _, ref := range refs {
		if err := s.AddFlow(ref, *inst.Flow(ref), nil); err != nil {
			t.Fatalf("add flow %s: %v", ref, err)
		}
	}
	if err := s.SetOrder(refs); err != nil {
		t.Fatalf("set order: %v", err)
	}
	if err := s.RunUntil(math.Inf(1)); err != nil {
		t.Fatalf("run: %v", err)
	}
	got := s.Schedule()
	for _, ref := range refs {
		w, g := want.Get(ref).CompletionTime(), got.Get(ref).CompletionTime()
		if math.Abs(w-g) > 1e-9 {
			t.Errorf("flow %s: admitted completion %v, batch %v", ref, g, w)
		}
	}
	if err := got.Validate(inst); err != nil {
		t.Errorf("admitted schedule infeasible: %v", err)
	}
}

// TestAddFlowMidRun admits a flow while the simulation is already under way
// and checks conservation, completion reporting, and the rejection cases.
func TestAddFlowMidRun(t *testing.T) {
	g := graph.Line(3, 1)
	base := &coflow.Instance{
		Network: g,
		Coflows: []coflow.Coflow{
			{Name: "a", Weight: 1, Flows: []coflow.Flow{{Source: 0, Dest: 1, Size: 4}}},
		},
	}
	if err := base.AssignShortestPaths(); err != nil {
		t.Fatalf("paths: %v", err)
	}
	s, err := New(base, Config{Order: base.FlowRefs(), Policy: Priority})
	if err != nil {
		t.Fatalf("new: %v", err)
	}
	if err := s.RunUntil(2); err != nil {
		t.Fatalf("run until 2: %v", err)
	}

	// Admission in the simulator's past must be rejected.
	late := coflow.Flow{Source: 1, Dest: 2, Size: 1, Release: 1}
	if err := s.AddFlow(coflow.FlowRef{Coflow: 1, Index: 0}, late, g.ShortestPath(1, 2)); err == nil {
		t.Fatalf("AddFlow accepted a release in the past")
	}
	// Duplicate references must be rejected.
	dup := coflow.Flow{Source: 0, Dest: 1, Size: 1, Release: 3}
	if err := s.AddFlow(coflow.FlowRef{Coflow: 0, Index: 0}, dup, g.ShortestPath(0, 1)); err == nil {
		t.Fatalf("AddFlow accepted a duplicate flow reference")
	}
	// Pathless flows must be rejected.
	nopath := coflow.Flow{Source: 1, Dest: 2, Size: 1, Release: 3}
	if err := s.AddFlow(coflow.FlowRef{Coflow: 1, Index: 0}, nopath, nil); err == nil {
		t.Fatalf("AddFlow accepted a flow with no path")
	}

	// A valid mid-run admission: released strictly in the future.
	add := coflow.Flow{Source: 1, Dest: 2, Size: 3, Release: 5}
	ref := coflow.FlowRef{Coflow: 1, Index: 0}
	if err := s.AddFlow(ref, add, g.ShortestPath(1, 2)); err != nil {
		t.Fatalf("add flow: %v", err)
	}
	if s.Done() {
		t.Fatalf("simulator done with an unfinished admitted flow")
	}
	if err := s.RunUntil(math.Inf(1)); err != nil {
		t.Fatalf("run to completion: %v", err)
	}
	for _, fs := range s.Residuals() {
		if !fs.Done {
			t.Errorf("flow %s not done after RunUntil(+Inf)", fs.Ref)
		}
		if fs.Completion <= 0 {
			t.Errorf("flow %s reports completion %v", fs.Ref, fs.Completion)
		}
	}
	// The admitted flow starts at its release on an idle link: 5 + 3/1.
	cs := s.Schedule()
	if c := cs.Get(ref).CompletionTime(); math.Abs(c-8) > 1e-9 {
		t.Errorf("admitted flow completed at %v, want 8", c)
	}
	if d := cs.Get(ref).Delivered(); math.Abs(d-add.Size) > 1e-9 {
		t.Errorf("admitted flow delivered %v of %v", d, add.Size)
	}
}

// TestForget checks pruning of finished flows: rejected while unfinished,
// removed from every view once done, with the rest of the run unaffected.
func TestForget(t *testing.T) {
	g := graph.Line(3, 1)
	inst := &coflow.Instance{
		Network: g,
		Coflows: []coflow.Coflow{
			{Name: "a", Weight: 1, Flows: []coflow.Flow{
				{Source: 0, Dest: 1, Size: 2},
				{Source: 1, Dest: 2, Size: 6},
			}},
		},
	}
	if err := inst.AssignShortestPaths(); err != nil {
		t.Fatalf("paths: %v", err)
	}
	refs := inst.FlowRefs()
	s, err := New(inst, Config{Order: refs, Policy: Priority})
	if err != nil {
		t.Fatalf("new: %v", err)
	}
	if err := s.Forget(refs[0]); err == nil {
		t.Fatalf("Forget accepted an unfinished flow")
	}
	if err := s.Forget(coflow.FlowRef{Coflow: 9, Index: 9}); err == nil {
		t.Fatalf("Forget accepted an unknown flow")
	}
	// Run until the small flow (disjoint links, finishes at t=2) is done.
	if err := s.RunUntil(3); err != nil {
		t.Fatalf("run: %v", err)
	}
	if fs, ok := s.Status(refs[0]); !ok || !fs.Done {
		t.Fatalf("flow %s not done at t=3: %+v", refs[0], fs)
	}
	if err := s.Forget(refs[0]); err != nil {
		t.Fatalf("forget: %v", err)
	}
	if _, ok := s.Status(refs[0]); ok {
		t.Errorf("forgotten flow still visible in Status")
	}
	if len(s.Residuals()) != 1 {
		t.Errorf("Residuals reports %d flows, want 1", len(s.Residuals()))
	}
	if err := s.RunUntil(math.Inf(1)); err != nil {
		t.Fatalf("run to completion: %v", err)
	}
	if !s.Done() {
		t.Fatalf("not done after completion with a forgotten flow")
	}
	if fs, _ := s.Status(refs[1]); math.Abs(fs.Completion-6) > 1e-9 {
		t.Errorf("surviving flow completed at %v, want 6", fs.Completion)
	}
}

// TestResidualsCompletionMatchesSchedule cross-checks the cheap per-flow
// completion times surfaced by Residuals against the authoritative schedule
// reconstruction.
func TestResidualsCompletionMatchesSchedule(t *testing.T) {
	inst := stepInstance(t, 23)
	s, err := New(inst, Config{Order: inst.FlowRefs(), Policy: Priority})
	if err != nil {
		t.Fatalf("new: %v", err)
	}
	if err := s.RunUntil(math.Inf(1)); err != nil {
		t.Fatalf("run: %v", err)
	}
	completion := s.Schedule().CompletionTimes()
	for _, fs := range s.Residuals() {
		if want := completion[fs.Ref]; math.Abs(fs.Completion-want) > 1e-9 {
			t.Errorf("flow %s: Residuals completion %v, schedule %v", fs.Ref, fs.Completion, want)
		}
	}
}
