// Package online implements an event-driven online coflow scheduler on top
// of the offline building blocks: coflows arrive over time (see
// workload.GenerateArrivals), time is divided into fixed-length epochs, and
// at each epoch boundary a pluggable Policy re-prioritizes the residual
// (partially transmitted) flows of the coflows that have arrived so far. The
// resumable simulator (sim.Simulator) then advances to the next boundary
// under that priority order.
//
// Policies never see the future: the Engine hands them a Snapshot containing
// only arrived, unfinished coflows and their residual volumes. The one
// deliberate exception is Oracle, the hindsight comparator, which is given
// the full instance up front and serves as a lower-bound reference for the
// price of online operation.
//
// Expensive policies (LPEpoch) are pipelined: the LP for epoch k+1 is solved
// on a worker-pool goroutine from the snapshot taken at the start of epoch
// k, overlapping the simulation of epoch k. The applied order therefore lags
// one epoch behind the residual state it was computed from — exactly the
// trade a real scheduler makes when its solver is slower than its epoch.
package online

import (
	"math/rand"

	"coflowsched/internal/coflow"
	"coflowsched/internal/graph"
)

// ResidualFlow is the policy-visible state of one flow: identity, route and
// how much volume is still to transmit.
type ResidualFlow struct {
	Ref    coflow.FlowRef
	Source graph.NodeID
	Dest   graph.NodeID
	// Path is the route fixed at admission; online policies re-prioritize
	// but do not re-route in-flight circuits.
	Path graph.Path
	// Release is the flow's absolute release time.
	Release float64
	// Size is the flow's full volume; Remaining is what is left of it.
	Size      float64
	Remaining float64
}

// ResidualCoflow groups the residual flows of one arrived, unfinished
// coflow.
type ResidualCoflow struct {
	// Index is the coflow's index in the original instance.
	Index   int
	Name    string
	Weight  float64
	Arrival float64
	// Flows lists the coflow's unfinished flows (finished ones are elided).
	Flows []ResidualFlow
}

// Snapshot is everything a policy may look at when deciding the next epoch's
// priorities: the clock, the network, and the residual state of arrived
// coflows. It is an immutable copy — policies run concurrently with the
// simulation under pipelining, so they must not share state with the engine.
type Snapshot struct {
	// Now is the simulation time the snapshot was taken at.
	Now float64
	// Epoch is the index of the epoch about to be decided.
	Epoch int
	// Network is the (immutable) topology.
	Network *graph.Graph
	// Coflows lists arrived coflows with at least one unfinished flow,
	// in arrival order.
	Coflows []ResidualCoflow

	// Decide-time scratch, reused when the engine recycles one Snapshot
	// value across epochs (the synchronous decide path rebuilds snapScratch
	// in place every tick). Reuse is safe because at most one Decide ever
	// runs against a snapshot and the engine copies the returned order
	// before the snapshot is rebuilt.
	orderArena []coflow.FlowRef
	idxArena   []int
	keyArena   []float64
}

// NumFlows returns the number of residual flows across all coflows.
func (s *Snapshot) NumFlows() int {
	n := 0
	for _, cf := range s.Coflows {
		n += len(cf.Flows)
	}
	return n
}

// ints returns the snapshot's reusable []int scratch, resized to n.
func (s *Snapshot) ints(n int) []int {
	if cap(s.idxArena) < n {
		s.idxArena = make([]int, n)
	}
	s.idxArena = s.idxArena[:n]
	return s.idxArena
}

// floats returns the snapshot's reusable []float64 scratch, resized to n.
func (s *Snapshot) floats(n int) []float64 {
	if cap(s.keyArena) < n {
		s.keyArena = make([]float64, n)
	}
	s.keyArena = s.keyArena[:n]
	return s.keyArena
}

// Policy decides the priority order for an epoch. Implementations must be
// deterministic given the snapshot (and their construction-time inputs):
// the engine's determinism guarantee — same seed and config, same schedule —
// rests on it.
type Policy interface {
	Name() string
	// Decide returns a priority order over residual flows. The order may be
	// partial; flows it omits are served last. Decide must not retain the
	// snapshot after returning.
	Decide(snap *Snapshot) ([]coflow.FlowRef, error)
}

// AsyncPolicy marks a policy whose Decide is expensive enough to pipeline.
// When Async reports true the engine runs Decide for epoch k+1 on a worker
// goroutine against the snapshot taken at the start of epoch k, overlapping
// it with epoch k's simulation; the resulting order is applied one epoch
// late. Cheap heuristics should not implement this (or return false): their
// decisions are applied synchronously on fresh state.
type AsyncPolicy interface {
	Policy
	Async() bool
}

// Preparer is implemented by policies that need to see the full hindsight
// instance before the run starts (Oracle). The engine calls Prepare once,
// before the first epoch, with the complete instance, the admission-time
// routing it will simulate with, and a seeded rng.
type Preparer interface {
	Prepare(inst *coflow.Instance, paths map[coflow.FlowRef]graph.Path, rng *rand.Rand) error
}
