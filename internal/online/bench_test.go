package online

import (
	"math/rand"
	"testing"

	"coflowsched/internal/graph"
	"coflowsched/internal/workload"
)

func benchRun(b *testing.B, p Policy) {
	g := graph.FatTree(4, 1)
	inst, _, err := workload.GenerateArrivals(g, workload.ArrivalConfig{
		Config: workload.Config{NumCoflows: 8, Width: 3, MeanSize: 4},
		Rate:   2.0,
	}, rand.New(rand.NewSource(1)))
	if err != nil {
		b.Fatalf("generate: %v", err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(inst, p, Config{EpochLength: 2, Workers: 2}); err != nil {
			b.Fatalf("%s: %v", p.Name(), err)
		}
	}
}

func BenchmarkOnlineFIFO(b *testing.B)    { benchRun(b, FIFOOnline{}) }
func BenchmarkOnlineSEBF(b *testing.B)    { benchRun(b, SEBFOnline{}) }
func BenchmarkOnlineLPEpoch(b *testing.B) { benchRun(b, LPEpoch{}) }
