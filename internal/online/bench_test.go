package online

import (
	"math/rand"
	"sort"
	"testing"
	"time"

	"coflowsched/internal/coflow"
	"coflowsched/internal/graph"
	"coflowsched/internal/telemetry"
	"coflowsched/internal/workload"
)

func benchRun(b *testing.B, p Policy) {
	g := graph.FatTree(4, 1)
	inst, _, err := workload.GenerateArrivals(g, workload.ArrivalConfig{
		Config: workload.Config{NumCoflows: 8, Width: 3, MeanSize: 4},
		Rate:   2.0,
	}, rand.New(rand.NewSource(1)))
	if err != nil {
		b.Fatalf("generate: %v", err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(inst, p, Config{EpochLength: 2, Workers: 2}); err != nil {
			b.Fatalf("%s: %v", p.Name(), err)
		}
	}
}

func BenchmarkOnlineFIFO(b *testing.B)    { benchRun(b, FIFOOnline{}) }
func BenchmarkOnlineSEBF(b *testing.B)    { benchRun(b, SEBFOnline{}) }
func BenchmarkOnlineLPEpoch(b *testing.B) { benchRun(b, LPEpoch{}) }

// tickWorkload is the shared input for the engine-tick benchmark pair:
// BenchmarkEngineTick and BenchmarkEngineTickTelemetry MUST drive byte-for-
// byte identical engine work so their delta isolates the instrumentation
// cost. Both build it from the same seed and both replay it through
// runTickStream; only the telemetry hooks differ.
type tickWorkload struct {
	g        *graph.Graph
	wire     []coflow.Coflow
	arrTimes []float64
}

// tickTelemetry is the per-tick instrumentation coflowd layers on the engine:
// a tick-duration histogram observation, a lifecycle span per admission and
// completion (trace-id bookkeeping included), the epoch introspection reads
// (OrderChurn, ActiveCounts, Epoch, TakeCompleted) and the per-tick
// allocator-stats drain (TakeTickStats). nil disables all of it.
type tickTelemetry struct {
	tickDur   *telemetry.Histogram
	admitted  *telemetry.Counter
	completed *telemetry.Counter
	tracer    *telemetry.Tracer
}

func newTickWorkload(b *testing.B) tickWorkload {
	g := graph.FatTree(4, 1)
	rng := rand.New(rand.NewSource(7))
	inst, arrivals, err := workload.GenerateArrivals(g, workload.ArrivalConfig{
		Config: workload.Config{NumCoflows: 150, Width: 4, MeanSize: 4, MeanWeight: 1},
		Rate:   2.0,
	}, rng)
	if err != nil {
		b.Fatalf("generate: %v", err)
	}
	order := make([]int, len(arrivals))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(x, y int) bool { return arrivals[order[x]] < arrivals[order[y]] })
	// Pre-strip the wire-shaped coflows outside the timed loop.
	wire := make([]coflow.Coflow, len(order))
	arrTimes := make([]float64, len(order))
	for i, id := range order {
		cf := inst.Coflows[id]
		out := coflow.Coflow{Name: cf.Name, Weight: cf.Weight, Flows: make([]coflow.Flow, len(cf.Flows))}
		copy(out.Flows, cf.Flows)
		for j := range out.Flows {
			out.Flows[j].Release -= arrivals[id]
			out.Flows[j].Path = nil
		}
		wire[i] = out
		arrTimes[i] = arrivals[id]
	}
	return tickWorkload{g: g, wire: wire, arrTimes: arrTimes}
}

func newTickTelemetry() *tickTelemetry {
	reg := telemetry.NewRegistry()
	return &tickTelemetry{
		tickDur:   reg.Histogram("bench_tick_duration_seconds", "per-tick wall latency", telemetry.DefTimeBuckets),
		admitted:  reg.Counter("bench_coflows_admitted_total", "admissions"),
		completed: reg.Counter("bench_coflows_completed_total", "completions"),
		tracer:    telemetry.NewTracer("bench", "", 4096),
	}
}

// runTickStream replays the whole arrival stream through a fresh engine,
// epoch by epoch (decide + advance, the coflowd scheduler loop).
func runTickStream(b *testing.B, w tickWorkload, tel *tickTelemetry) {
	const epoch = 1.0
	eng, err := NewEngine(w.g, SEBFOnline{}, Config{EpochLength: epoch})
	if err != nil {
		b.Fatal(err)
	}
	var traceIDs map[int]string
	if tel != nil {
		traceIDs = make(map[int]string)
	}
	next := 0
	for now := 0.0; !eng.Done() || next < len(w.wire); now += epoch {
		var t0 time.Time
		if tel != nil {
			t0 = time.Now()
		}
		for next < len(w.wire) && w.arrTimes[next] <= now+epoch {
			id, err := eng.Admit(w.wire[next], w.arrTimes[next])
			if err != nil {
				b.Fatal(err)
			}
			if tel != nil {
				trace := telemetry.NewTraceID()
				traceIDs[id] = trace
				tel.tracer.Record(telemetry.Span{Trace: trace, Name: "shard-admit", Coflow: id, Wall: t0})
				tel.admitted.Inc()
			}
			next++
		}
		if err := eng.DecideSync(); err != nil {
			b.Fatal(err)
		}
		if err := eng.AdvanceTo(now + epoch); err != nil {
			b.Fatal(err)
		}
		if tel != nil {
			for _, id := range eng.TakeCompleted() {
				tel.tracer.Record(telemetry.Span{Trace: traceIDs[id], Name: "completion", Coflow: id, Wall: t0})
				delete(traceIDs, id)
				tel.completed.Inc()
			}
			_ = eng.OrderChurn()
			_, _ = eng.ActiveCounts()
			_ = eng.Epoch()
			_ = eng.TakeTickStats()
			tel.tickDur.Observe(time.Since(t0).Seconds())
		}
	}
}

// benchTickPair is the shared harness behind the engine-tick pair. Both
// benchmarks execute BOTH variants every iteration — bare and instrumented —
// and time only their own, so warm caches (notably the k-shortest-paths
// memo on the shared Graph) and CPU state are identical for the two names no
// matter which one the `go test -bench` run invokes first. A full untimed
// pass of each variant precedes the timer for the same reason: without it
// whichever benchmark ran second inherited a warm path cache and measured
// faster than its twin, inverting the overhead sign (the pr9 anomaly).
//
// Because each benchmark times both variants inside the same iterations, it
// also reports the pair's delta as `pair-overhead-%`. That number is the one
// to trust for the ≤ 2% instrumentation budget: the two named benchmarks run
// minutes apart under -benchtime, so machine-load drift between their windows
// can dwarf the real overhead in the ns/op comparison, while the same-window
// delta cancels it.
func benchTickPair(b *testing.B, timed string) {
	w := newTickWorkload(b)
	tel := newTickTelemetry()
	runTickStream(b, w, nil)
	runTickStream(b, w, tel)
	b.ReportAllocs()
	b.ResetTimer()
	var bareNs, telNs time.Duration
	for i := 0; i < b.N; i++ {
		if timed == "bare" {
			t0 := time.Now()
			runTickStream(b, w, nil)
			bareNs += time.Since(t0)
			b.StopTimer()
			t0 = time.Now()
			runTickStream(b, w, tel)
			telNs += time.Since(t0)
			b.StartTimer()
		} else {
			b.StopTimer()
			t0 := time.Now()
			runTickStream(b, w, nil)
			bareNs += time.Since(t0)
			b.StartTimer()
			t0 = time.Now()
			runTickStream(b, w, tel)
			telNs += time.Since(t0)
		}
	}
	if bareNs > 0 {
		b.ReportMetric(100*(float64(telNs)-float64(bareNs))/float64(bareNs), "pair-overhead-%")
	}
}

// BenchmarkEngineTick is the acceptance benchmark for the incremental tick
// path: a long-running engine admitting a Poisson stream of coflows and
// advancing epoch by epoch, measured over the whole stream's lifetime.
func BenchmarkEngineTick(b *testing.B) { benchTickPair(b, "bare") }

// BenchmarkEngineTickTelemetry is BenchmarkEngineTick plus the per-tick
// telemetry work coflowd layers on top of the engine (see tickTelemetry).
// The instrumentation budget is the pair's same-window `pair-overhead-%`
// metric — bench_sim.sh records both benchmarks (with the extra metric) in
// BENCH_sim.json, and the budget is <= 2%.
func BenchmarkEngineTickTelemetry(b *testing.B) { benchTickPair(b, "telemetry") }
