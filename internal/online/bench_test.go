package online

import (
	"math/rand"
	"sort"
	"testing"
	"time"

	"coflowsched/internal/coflow"
	"coflowsched/internal/graph"
	"coflowsched/internal/telemetry"
	"coflowsched/internal/workload"
)

func benchRun(b *testing.B, p Policy) {
	g := graph.FatTree(4, 1)
	inst, _, err := workload.GenerateArrivals(g, workload.ArrivalConfig{
		Config: workload.Config{NumCoflows: 8, Width: 3, MeanSize: 4},
		Rate:   2.0,
	}, rand.New(rand.NewSource(1)))
	if err != nil {
		b.Fatalf("generate: %v", err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(inst, p, Config{EpochLength: 2, Workers: 2}); err != nil {
			b.Fatalf("%s: %v", p.Name(), err)
		}
	}
}

func BenchmarkOnlineFIFO(b *testing.B)    { benchRun(b, FIFOOnline{}) }
func BenchmarkOnlineSEBF(b *testing.B)    { benchRun(b, SEBFOnline{}) }
func BenchmarkOnlineLPEpoch(b *testing.B) { benchRun(b, LPEpoch{}) }

// BenchmarkEngineTick is the acceptance benchmark for the incremental tick
// path: a long-running engine admitting a Poisson stream of coflows and
// advancing epoch by epoch (decide + advance, the coflowd scheduler loop),
// measured over the whole stream's lifetime.
func BenchmarkEngineTick(b *testing.B) {
	g := graph.FatTree(4, 1)
	rng := rand.New(rand.NewSource(7))
	inst, arrivals, err := workload.GenerateArrivals(g, workload.ArrivalConfig{
		Config: workload.Config{NumCoflows: 150, Width: 4, MeanSize: 4, MeanWeight: 1},
		Rate:   2.0,
	}, rng)
	if err != nil {
		b.Fatalf("generate: %v", err)
	}
	order := make([]int, len(arrivals))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(x, y int) bool { return arrivals[order[x]] < arrivals[order[y]] })
	// Pre-strip the wire-shaped coflows outside the timed loop.
	wire := make([]coflow.Coflow, len(order))
	for i, id := range order {
		cf := inst.Coflows[id]
		out := coflow.Coflow{Name: cf.Name, Weight: cf.Weight, Flows: make([]coflow.Flow, len(cf.Flows))}
		copy(out.Flows, cf.Flows)
		for j := range out.Flows {
			out.Flows[j].Release -= arrivals[id]
			out.Flows[j].Path = nil
		}
		wire[i] = out
	}
	const epoch = 1.0
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng, err := NewEngine(g, SEBFOnline{}, Config{EpochLength: epoch})
		if err != nil {
			b.Fatal(err)
		}
		next := 0
		for now := 0.0; !eng.Done() || next < len(order); now += epoch {
			for next < len(order) && arrivals[order[next]] <= now+epoch {
				if _, err := eng.Admit(wire[next], arrivals[order[next]]); err != nil {
					b.Fatal(err)
				}
				next++
			}
			if err := eng.DecideSync(); err != nil {
				b.Fatal(err)
			}
			if err := eng.AdvanceTo(now + epoch); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkEngineTickTelemetry is BenchmarkEngineTick plus the per-tick
// telemetry work coflowd layers on top of the engine: a tick-duration
// histogram observation, a lifecycle span per admission and completion
// (trace-id bookkeeping included), and the epoch introspection reads
// (OrderChurn, ActiveCounts, Epoch, TakeCompleted). The instrumentation
// budget is its delta over BenchmarkEngineTick — bench_sim.sh records both
// in BENCH_sim.json, and the ISSUE pins the overhead at <= 2%.
func BenchmarkEngineTickTelemetry(b *testing.B) {
	g := graph.FatTree(4, 1)
	rng := rand.New(rand.NewSource(7))
	inst, arrivals, err := workload.GenerateArrivals(g, workload.ArrivalConfig{
		Config: workload.Config{NumCoflows: 150, Width: 4, MeanSize: 4, MeanWeight: 1},
		Rate:   2.0,
	}, rng)
	if err != nil {
		b.Fatalf("generate: %v", err)
	}
	order := make([]int, len(arrivals))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(x, y int) bool { return arrivals[order[x]] < arrivals[order[y]] })
	wire := make([]coflow.Coflow, len(order))
	for i, id := range order {
		cf := inst.Coflows[id]
		out := coflow.Coflow{Name: cf.Name, Weight: cf.Weight, Flows: make([]coflow.Flow, len(cf.Flows))}
		copy(out.Flows, cf.Flows)
		for j := range out.Flows {
			out.Flows[j].Release -= arrivals[id]
			out.Flows[j].Path = nil
		}
		wire[i] = out
	}
	const epoch = 1.0
	reg := telemetry.NewRegistry()
	tickDur := reg.Histogram("bench_tick_duration_seconds", "per-tick wall latency", telemetry.DefTimeBuckets)
	admitted := reg.Counter("bench_coflows_admitted_total", "admissions")
	completed := reg.Counter("bench_coflows_completed_total", "completions")
	tracer := telemetry.NewTracer("bench", "", 4096)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng, err := NewEngine(g, SEBFOnline{}, Config{EpochLength: epoch})
		if err != nil {
			b.Fatal(err)
		}
		traceIDs := make(map[int]string)
		next := 0
		for now := 0.0; !eng.Done() || next < len(order); now += epoch {
			t0 := time.Now()
			for next < len(order) && arrivals[order[next]] <= now+epoch {
				id, err := eng.Admit(wire[next], arrivals[order[next]])
				if err != nil {
					b.Fatal(err)
				}
				trace := telemetry.NewTraceID()
				traceIDs[id] = trace
				tracer.Record(telemetry.Span{Trace: trace, Name: "shard-admit", Coflow: id, Wall: t0})
				admitted.Inc()
				next++
			}
			if err := eng.DecideSync(); err != nil {
				b.Fatal(err)
			}
			if err := eng.AdvanceTo(now + epoch); err != nil {
				b.Fatal(err)
			}
			for _, id := range eng.TakeCompleted() {
				tracer.Record(telemetry.Span{Trace: traceIDs[id], Name: "completion", Coflow: id, Wall: t0})
				delete(traceIDs, id)
				completed.Inc()
			}
			_ = eng.OrderChurn()
			_, _ = eng.ActiveCounts()
			_ = eng.Epoch()
			tickDur.Observe(time.Since(t0).Seconds())
		}
	}
}
