package online

import (
	"math"
	"math/rand"
	"testing"

	"coflowsched/internal/stats"
)

// TestMergeEngineStatsCounters: counters and objectives sum across shards,
// Now takes the furthest clock.
func TestMergeEngineStatsCounters(t *testing.T) {
	a := EngineStats{
		Now: 10, Epochs: 5, Decisions: 4, Admitted: 7, Completed: 6,
		Active: 1, ActiveFlows: 3, WeightedCCT: 100, WeightedResponse: 40,
		Slowdowns: []float64{1, 2}, SolveLatencies: []float64{0.01},
	}
	b := EngineStats{
		Now: 8, Epochs: 2, Decisions: 2, Admitted: 3, Completed: 3,
		Active: 0, ActiveFlows: 0, WeightedCCT: 30, WeightedResponse: 12,
		Slowdowns: []float64{3}, SolveLatencies: []float64{0.02, 0.03},
	}
	m := MergeEngineStats(a, b)
	if m.Now != 10 {
		t.Errorf("Now = %v, want 10", m.Now)
	}
	if m.Epochs != 7 || m.Decisions != 6 || m.Admitted != 10 || m.Completed != 9 {
		t.Errorf("counters = %+v", m)
	}
	if m.Active != 1 || m.ActiveFlows != 3 {
		t.Errorf("active = %d/%d, want 1/3", m.Active, m.ActiveFlows)
	}
	if m.WeightedCCT != 130 || m.WeightedResponse != 52 {
		t.Errorf("objectives = %v/%v, want 130/52", m.WeightedCCT, m.WeightedResponse)
	}
	if len(m.Slowdowns) != 3 || len(m.SolveLatencies) != 3 {
		t.Errorf("reservoirs %d/%d samples, want 3/3", len(m.Slowdowns), len(m.SolveLatencies))
	}
	if got := stats.Percentile(m.Slowdowns, 100); got != 3 {
		t.Errorf("merged max slowdown = %v, want 3", got)
	}
}

// TestMergeEngineStatsEdgeCases: the merge of nothing is the zero value, a
// single shard passes through unchanged.
func TestMergeEngineStatsEdgeCases(t *testing.T) {
	z := MergeEngineStats()
	if z.Admitted != 0 || z.Now != 0 || len(z.Slowdowns) != 0 {
		t.Errorf("empty merge = %+v, want zero", z)
	}

	one := EngineStats{
		Now: 5, Epochs: 3, Admitted: 4, Completed: 4,
		WeightedCCT: 20, WeightedResponse: 9,
		Slowdowns: []float64{1.5, 2.5, 3.5}, SolveLatencies: []float64{0.1},
	}
	m := MergeEngineStats(one)
	if m.Now != one.Now || m.Admitted != one.Admitted || m.WeightedCCT != one.WeightedCCT {
		t.Errorf("single-shard merge = %+v, want %+v", m, one)
	}
	for _, p := range []float64{0, 50, 100} {
		if got, want := stats.Percentile(m.Slowdowns, p), stats.Percentile(one.Slowdowns, p); got != want {
			t.Errorf("p%v = %v, want %v", p, got, want)
		}
	}

	// Empty shards contribute nothing but do not poison the merge.
	m = MergeEngineStats(EngineStats{}, one, EngineStats{})
	if m.Admitted != 4 || len(m.Slowdowns) != 3 {
		t.Errorf("merge with empty shards = %+v", m)
	}
}

// TestMergeEngineStatsReservoirTolerance: with overflowing reservoirs, merged
// percentiles track a single pooled computation within tolerance — the
// property that makes gateway-reported tails trustworthy.
func TestMergeEngineStatsReservoirTolerance(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	shardCounts := []int{statsWindow, statsWindow / 2, statsWindow * 2}
	shards := make([]EngineStats, len(shardCounts))
	var pooled []float64
	for i, n := range shardCounts {
		samples := make([]float64, 0, n)
		for j := 0; j < n; j++ {
			v := 1 + math.Exp(rng.NormFloat64())*float64(i+1)
			samples = append(samples, v)
			pooled = append(pooled, v)
		}
		// A real shard reports at most statsWindow samples; emulate the ring.
		if len(samples) > statsWindow {
			samples = samples[len(samples)-statsWindow:]
			pooled = pooled[:len(pooled)-n]
			pooled = append(pooled, samples...)
		}
		shards[i] = EngineStats{Slowdowns: samples}
	}
	m := MergeEngineStats(shards...)
	if len(m.Slowdowns) > statsWindow {
		t.Fatalf("merged reservoir %d samples, window %d", len(m.Slowdowns), statsWindow)
	}
	spread := stats.Percentile(pooled, 99) - stats.Percentile(pooled, 1)
	for _, p := range []float64{50, 90, 95, 99} {
		got, want := stats.Percentile(m.Slowdowns, p), stats.Percentile(pooled, p)
		if math.Abs(got-want) > 0.1*spread {
			t.Errorf("p%v = %v, pooled %v (spread %v)", p, got, want, spread)
		}
	}
}
