package online

import (
	"encoding/json"
	"math"
	"sort"
	"testing"

	"coflowsched/internal/coflow"
)

// persistHarness drives one engine through the standard admit/decide/advance
// discipline over a generated workload, mirroring the batch loop.
type persistHarness struct {
	eng      *Engine
	inst     *coflow.Instance
	arrivals []float64
	order    []int // coflow ids in arrival order
	next     int
}

func newPersistHarness(t *testing.T, inst *coflow.Instance, arrivals []float64, policy Policy) *persistHarness {
	t.Helper()
	eng, err := NewEngine(inst.Network, policy, Config{EpochLength: 1.5})
	if err != nil {
		t.Fatalf("new engine: %v", err)
	}
	order := make([]int, len(arrivals))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return arrivals[order[a]] < arrivals[order[b]] })
	return &persistHarness{eng: eng, inst: inst, arrivals: arrivals, order: order}
}

// run admits arrivals as their time passes and runs `epochs` decide/advance
// boundaries of length 1.5 from the engine's current clock.
func (h *persistHarness) run(t *testing.T, epochs int) {
	t.Helper()
	for i := 0; i < epochs; i++ {
		to := h.eng.Now() + 1.5
		for h.next < len(h.order) && h.arrivals[h.order[h.next]] <= to+1e-15 {
			id := h.order[h.next]
			got, err := h.eng.Admit(relativeCoflow(h.inst.Coflows[id], h.arrivals[id]), h.arrivals[id])
			if err != nil {
				t.Fatalf("admit coflow %d: %v", id, err)
			}
			if got != id {
				t.Fatalf("admit returned id %d, want %d", got, id)
			}
			h.next++
		}
		if err := h.eng.DecideSync(); err != nil {
			t.Fatalf("decide: %v", err)
		}
		if err := h.eng.AdvanceTo(to); err != nil {
			t.Fatalf("advance to %v: %v", to, err)
		}
	}
}

// TestExportRestoreRoundTrip checks the persistence invariant end to end: an
// engine exported mid-run, serialized through JSON (the snapshot wire format),
// restored, and driven to completion produces exactly the completions the
// uninterrupted engine does.
func TestExportRestoreRoundTrip(t *testing.T) {
	for _, tc := range []struct {
		name   string
		policy Policy
	}{
		{"fifo", FIFOOnline{}},
		{"sebf", SEBFOnline{}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			inst, arrivals := engineWorkload(t, 11, 8)
			ref := newPersistHarness(t, inst, arrivals, tc.policy)
			cut := newPersistHarness(t, inst, arrivals, tc.policy)

			// Drive both identically for a few epochs, then cut one over.
			ref.run(t, 4)
			cut.run(t, 4)

			st := cut.eng.ExportState()
			raw, err := json.Marshal(st)
			if err != nil {
				t.Fatalf("marshal state: %v", err)
			}
			decoded := new(EngineState)
			if err := json.Unmarshal(raw, decoded); err != nil {
				t.Fatalf("unmarshal state: %v", err)
			}
			restored, err := RestoreEngine(inst.Network, tc.policy, Config{EpochLength: 1.5}, decoded)
			if err != nil {
				t.Fatalf("restore: %v", err)
			}
			if restored.Now() != cut.eng.Now() {
				t.Fatalf("restored clock %v, want %v", restored.Now(), cut.eng.Now())
			}

			// The restored engine replaces the original; the stream continues.
			cut.eng = restored
			ref.run(t, 30)
			cut.run(t, 30)
			if err := ref.eng.Drain(); err != nil {
				t.Fatalf("drain reference: %v", err)
			}
			if err := cut.eng.Drain(); err != nil {
				t.Fatalf("drain restored: %v", err)
			}

			for id := 0; id < len(inst.Coflows); id++ {
				want, ok1 := ref.eng.CoflowStatus(id)
				got, ok2 := cut.eng.CoflowStatus(id)
				if !ok1 || !ok2 {
					t.Fatalf("coflow %d missing: ref=%v restored=%v", id, ok1, ok2)
				}
				if !want.Done || !got.Done {
					t.Fatalf("coflow %d not drained: ref=%v restored=%v", id, want.Done, got.Done)
				}
				if math.Abs(want.Completion-got.Completion) > 1e-9 {
					t.Errorf("coflow %d completion %v, want %v (diff %g)",
						id, got.Completion, want.Completion, got.Completion-want.Completion)
				}
				if got.NumFlows != want.NumFlows || got.FlowsDone != want.FlowsDone {
					t.Errorf("coflow %d flows %d/%d, want %d/%d",
						id, got.FlowsDone, got.NumFlows, want.FlowsDone, want.NumFlows)
				}
			}
			ws, rs := ref.eng.Stats(), cut.eng.Stats()
			if rs.Completed != ws.Completed || rs.Admitted != ws.Admitted {
				t.Errorf("restored stats %d/%d completed/admitted, want %d/%d",
					rs.Completed, rs.Admitted, ws.Completed, ws.Admitted)
			}
			if math.Abs(rs.WeightedCCT-ws.WeightedCCT) > 1e-6 {
				t.Errorf("restored weighted CCT %v, want %v", rs.WeightedCCT, ws.WeightedCCT)
			}
		})
	}
}

// TestRestoreRejectsDamage exercises the restore-side validation: a state
// that is internally inconsistent must be refused, never half-loaded.
func TestRestoreRejectsDamage(t *testing.T) {
	inst, arrivals := engineWorkload(t, 12, 5)
	h := newPersistHarness(t, inst, arrivals, FIFOOnline{})
	h.run(t, 4)
	base := h.eng.ExportState()

	mutate := func(fn func(*EngineState)) *EngineState {
		raw, err := json.Marshal(base)
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		st := new(EngineState)
		if err := json.Unmarshal(raw, st); err != nil {
			t.Fatalf("unmarshal: %v", err)
		}
		fn(st)
		return st
	}

	cases := map[string]*EngineState{
		"nil state":      nil,
		"load mismatch":  mutate(func(st *EngineState) { st.Load = st.Load[:len(st.Load)-1] }),
		"negative clock": mutate(func(st *EngineState) { st.Now = -1 }),
	}
	if len(base.Coflows) > 0 {
		cases["flow count mismatch"] = mutate(func(st *EngineState) { st.Coflows[0].FlowsLeft++ })
		cases["zero flows"] = mutate(func(st *EngineState) { st.Coflows[0].NumFlows = 0 })
	}
	activeID := -1
	for id := range base.Coflows {
		if len(base.Coflows[id].Flows) > 0 {
			activeID = id
			break
		}
	}
	if activeID < 0 {
		t.Fatal("workload left no active coflow at the cut point")
	}
	cases["zero residual"] = mutate(func(st *EngineState) { st.Coflows[activeID].Flows[0].Remaining = 0 })
	cases["bad flow index"] = mutate(func(st *EngineState) { st.Coflows[activeID].Flows[0].Index = -1 })
	cases["bad path"] = mutate(func(st *EngineState) { st.Coflows[activeID].Flows[0].Path = nil })

	names := make([]string, 0, len(cases))
	for name := range cases {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if _, err := RestoreEngine(inst.Network, FIFOOnline{}, Config{EpochLength: 1.5}, cases[name]); err == nil {
			t.Errorf("restore accepted state with %s", name)
		}
	}

	// And the unmutated state still restores.
	if _, err := RestoreEngine(inst.Network, FIFOOnline{}, Config{EpochLength: 1.5}, base); err != nil {
		t.Fatalf("restore of untouched state: %v", err)
	}
}
