package online

// TickStats is the simulator core's allocator-work aggregate for one advance
// window (see sim.TickStats) plus the derived partition-imbalance ratio the
// daemon exports as coflowd_partition_imbalance_ratio.
type TickStats struct {
	// Reallocs, SuffixSum and SuffixMax describe the dirty-suffix
	// reallocation passes of the window.
	Reallocs  int
	SuffixSum int
	SuffixMax int
	// ParallelRounds and CrossFlows describe the partitioned redo fan-outs.
	ParallelRounds int
	CrossFlows     int
	// WorkerSeconds is per-partition-class worker busy time (nil when no
	// round fanned out).
	WorkerSeconds []float64
	// ImbalanceRatio is max/mean busy-worker seconds: 1 means the classes
	// finished together, the class count is the worst case (one straggler
	// did everything), 0 means no fan-out ran this window.
	ImbalanceRatio float64
}

// TakeTickStats drains the allocator-work aggregates accumulated since the
// last call. Like every Engine method it belongs to the owning scheduler
// goroutine; call it after AdvanceTo so the window lines up with the tick.
func (e *Engine) TakeTickStats() TickStats {
	st := e.sim.TakeTickStats()
	ts := TickStats{
		Reallocs:       st.Reallocs,
		SuffixSum:      st.SuffixSum,
		SuffixMax:      st.SuffixMax,
		ParallelRounds: st.ParallelRounds,
		CrossFlows:     st.CrossFlows,
		WorkerSeconds:  st.WorkerSeconds,
	}
	var max, sum float64
	busy := 0
	for _, v := range st.WorkerSeconds {
		if v <= 0 {
			continue
		}
		busy++
		sum += v
		if v > max {
			max = v
		}
	}
	if busy > 0 && sum > 0 {
		ts.ImbalanceRatio = max / (sum / float64(busy))
	}
	return ts
}
