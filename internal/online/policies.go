package online

import (
	"fmt"
	"math/rand"
	"slices"
	"sort"

	"coflowsched/internal/coflow"
	"coflowsched/internal/core"
	"coflowsched/internal/graph"
)

// residualTol ignores flows whose remaining volume is below this absolute
// threshold when building policy inputs.
const residualTol = 1e-9

// FIFOOnline serves coflows strictly in arrival order (earliest arrival
// first, flows within a coflow in index order). It is the no-reordering
// baseline every smarter policy must beat.
type FIFOOnline struct{}

// Name identifies the policy.
func (FIFOOnline) Name() string { return "FIFOOnline" }

// Decide implements Policy.
func (FIFOOnline) Decide(snap *Snapshot) ([]coflow.FlowRef, error) {
	idx := snap.ints(len(snap.Coflows))
	for i := range idx {
		idx[i] = i
	}
	slices.SortStableFunc(idx, func(a, b int) int {
		ca, cb := &snap.Coflows[a], &snap.Coflows[b]
		switch {
		case ca.Arrival < cb.Arrival:
			return -1
		case ca.Arrival > cb.Arrival:
			return 1
		case ca.Index < cb.Index:
			return -1
		case ca.Index > cb.Index:
			return 1
		}
		return 0
	})
	return flattenIndexed(snap, idx), nil
}

// SEBFOnline is Varys' Smallest Effective Bottleneck First recomputed on
// residual volumes: at each epoch, coflows are ordered by the load their
// remaining bytes place on their most congested link, divided by weight.
// Partially transmitted coflows therefore shrink and rise in priority, which
// is the core of Varys-style online scheduling.
type SEBFOnline struct{}

// Name identifies the policy.
func (SEBFOnline) Name() string { return "SEBFOnline" }

// Decide implements Policy.
func (SEBFOnline) Decide(snap *Snapshot) ([]coflow.FlowRef, error) {
	idx := snap.ints(len(snap.Coflows))
	gammas := snap.floats(len(snap.Coflows)) // keyed by coflow position, not rank
	var loads []graph.PathLoad               // one scratch shared by every coflow's scoring
	for i := range snap.Coflows {
		cf := &snap.Coflows[i]
		loads = loads[:0]
		for j := range cf.Flows {
			loads = append(loads, graph.PathLoad{Path: cf.Flows[j].Path, Volume: cf.Flows[j].Remaining})
		}
		gamma := snap.Network.BottleneckTime(loads)
		if cf.Weight > 0 {
			gamma /= cf.Weight
		}
		idx[i], gammas[i] = i, gamma
	}
	slices.SortStableFunc(idx, func(a, b int) int {
		switch {
		case gammas[a] < gammas[b]:
			return -1
		case gammas[a] > gammas[b]:
			return 1
		}
		return snap.Coflows[a].Index - snap.Coflows[b].Index
	})
	return flattenIndexed(snap, idx), nil
}

// LPEpoch re-solves the paper's interval-indexed LP (internal/core) on the
// residual instance at every epoch: arrived coflows with their remaining
// volumes, release times shifted so "now" is time zero, and the
// admission-time paths fixed. The LP's completion-time order becomes the
// epoch's priority order. LPEpoch is asynchronous: the engine overlaps each
// solve with the previous epoch's simulation (see AsyncPolicy).
type LPEpoch struct {
	// Opts tunes the underlying LP (epsilon, alpha, ...). Zero value =
	// core defaults.
	Opts core.Options
	// Sync disables pipelining, making every decision synchronous on fresh
	// state (useful for isolating the staleness cost in experiments).
	Sync bool
	// Strict propagates LP solver failures instead of falling back. By
	// default a failed solve (the pure-Go simplex can hit numerically
	// degenerate residual instances) degrades to the SEBF residual order
	// for that epoch — a scheduler must survive a solver hiccup.
	Strict bool
}

// Name identifies the policy.
func (p LPEpoch) Name() string {
	if p.Sync {
		return "LPEpoch(sync)"
	}
	return "LPEpoch"
}

// Async implements AsyncPolicy: LP solves are pipelined unless Sync is set.
func (p LPEpoch) Async() bool { return !p.Sync }

// Decide implements Policy.
func (p LPEpoch) Decide(snap *Snapshot) ([]coflow.FlowRef, error) {
	rinst, backrefs := residualInstance(snap)
	if rinst == nil {
		return nil, nil
	}
	res, err := (core.CircuitGivenPaths{Opts: p.Opts}).ScheduleProvable(rinst)
	if err != nil {
		if p.Strict {
			return nil, fmt.Errorf("online: epoch %d LP: %w", snap.Epoch, err)
		}
		return SEBFOnline{}.Decide(snap)
	}
	order := make([]coflow.FlowRef, 0, len(res.FlowOrder))
	for _, r := range res.FlowOrder {
		order = append(order, backrefs[r])
	}
	return order, nil
}

// residualInstance converts a snapshot into a standalone coflow instance:
// remaining volumes as sizes, releases shifted by -Now (clamped at 0), and
// admission paths pre-assigned. backrefs maps the residual instance's flow
// references back to the original instance's. Returns nil when the snapshot
// holds no residual volume.
func residualInstance(snap *Snapshot) (*coflow.Instance, map[coflow.FlowRef]coflow.FlowRef) {
	rinst := &coflow.Instance{Network: snap.Network}
	backrefs := make(map[coflow.FlowRef]coflow.FlowRef)
	for _, cf := range snap.Coflows {
		rcf := coflow.Coflow{Name: cf.Name, Weight: cf.Weight}
		for _, f := range cf.Flows {
			if f.Remaining <= residualTol {
				continue
			}
			release := f.Release - snap.Now
			if release < 0 {
				release = 0
			}
			backrefs[coflow.FlowRef{Coflow: len(rinst.Coflows), Index: len(rcf.Flows)}] = f.Ref
			rcf.Flows = append(rcf.Flows, coflow.Flow{
				Source:  f.Source,
				Dest:    f.Dest,
				Size:    f.Remaining,
				Release: release,
				Path:    f.Path,
			})
		}
		if len(rcf.Flows) > 0 {
			rinst.Coflows = append(rinst.Coflows, rcf)
		}
	}
	if len(rinst.Coflows) == 0 {
		return nil, nil
	}
	return rinst, backrefs
}

// OfflineScheduler is the offline interface Oracle wraps; it is structurally
// identical to experiments.Scheduler (defined here to avoid an import
// cycle — internal/experiments imports this package for OnlineSweep).
type OfflineScheduler interface {
	Name() string
	Schedule(inst *coflow.Instance, rng *rand.Rand) (*coflow.CircuitSchedule, error)
}

// Oracle is the hindsight comparator: it runs an offline scheduler on the
// complete instance — including coflows that have not arrived yet — and
// replays the resulting completion-time order through the online engine. It
// bounds from below what any online policy (using the same admission
// routing) could achieve, quantifying the price of not knowing the future.
type Oracle struct {
	Scheduler OfflineScheduler
	order     []coflow.FlowRef
}

// NewOracle wraps an offline scheduler as the hindsight policy.
func NewOracle(s OfflineScheduler) *Oracle { return &Oracle{Scheduler: s} }

// Name identifies the policy.
func (o *Oracle) Name() string { return "Oracle(" + o.Scheduler.Name() + ")" }

// Prepare implements Preparer: solve the full instance offline once and
// derive a fixed priority order from the offline completion times.
func (o *Oracle) Prepare(inst *coflow.Instance, paths map[coflow.FlowRef]graph.Path, rng *rand.Rand) error {
	cs, err := o.Scheduler.Schedule(inst.Clone(), rng)
	if err != nil {
		return fmt.Errorf("online: oracle offline solve: %w", err)
	}
	completion := cs.CompletionTimes()
	order := inst.FlowRefs()
	sort.SliceStable(order, func(i, j int) bool {
		return completion[order[i]] < completion[order[j]]
	})
	o.order = order
	return nil
}

// Decide implements Policy: the hindsight order, restricted to flows visible
// in the snapshot (the simulator ranks unlisted flows last anyway, but the
// restriction keeps the decision well-scoped).
func (o *Oracle) Decide(snap *Snapshot) ([]coflow.FlowRef, error) {
	visible := make(map[coflow.FlowRef]bool, snap.NumFlows())
	for _, cf := range snap.Coflows {
		for _, f := range cf.Flows {
			visible[f.Ref] = true
		}
	}
	order := make([]coflow.FlowRef, 0, len(visible))
	for _, r := range o.order {
		if visible[r] {
			order = append(order, r)
		}
	}
	return order, nil
}

// flattenIndexed expands a coflow permutation (indices into snap.Coflows)
// into a flow priority order (flows within a coflow in index order), backed
// by the snapshot's reusable order arena.
func flattenIndexed(snap *Snapshot, idx []int) []coflow.FlowRef {
	order := snap.orderArena[:0]
	for _, i := range idx {
		for _, f := range snap.Coflows[i].Flows {
			order = append(order, f.Ref)
		}
	}
	snap.orderArena = order
	return order
}
