package online

import "coflowsched/internal/stats"

// MergeEngineStats folds the statistics of several independent engines (the
// shards of a cluster, each owning its own fabric) into one aggregate view,
// the quantity internal/cluster's gateway serves from /v1/stats.
//
// Counters and objectives are sums: coflows live on exactly one shard, so
// admitted/completed counts and the weighted CCT/response objectives add.
// Now is the furthest shard clock — shards start at different wall times, so
// their clocks are not directly comparable and the max is only an upper
// envelope. The percentile reservoirs merge via stats.MergeSamples, keeping
// the result bounded to the same window a single engine reports so gateway
// stats cost the same as shard stats regardless of shard count.
func MergeEngineStats(shards ...EngineStats) EngineStats {
	var out EngineStats
	slowdowns := make([][]float64, 0, len(shards))
	solves := make([][]float64, 0, len(shards))
	for _, s := range shards {
		if s.Now > out.Now {
			out.Now = s.Now
		}
		out.Epochs += s.Epochs
		out.Decisions += s.Decisions
		out.Admitted += s.Admitted
		out.Completed += s.Completed
		out.Active += s.Active
		out.ActiveFlows += s.ActiveFlows
		out.WeightedCCT += s.WeightedCCT
		out.WeightedResponse += s.WeightedResponse
		slowdowns = append(slowdowns, s.Slowdowns)
		solves = append(solves, s.SolveLatencies)
	}
	out.Slowdowns = stats.MergeSamples(statsWindow, slowdowns...)
	out.SolveLatencies = stats.MergeSamples(statsWindow, solves...)
	return out
}
