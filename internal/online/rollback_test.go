package online

import (
	"math"
	"reflect"
	"testing"

	"coflowsched/internal/coflow"
	"coflowsched/internal/graph"
)

// engineCapture freezes every externally observable surface of an engine:
// the persistence export, the aggregate stats, the policy snapshot, the
// applied order and the raw routing-load vector. A failed admission must
// leave all of them byte-identical.
type engineCapture struct {
	state *EngineState
	stats EngineStats
	snap  *Snapshot
	order []coflow.FlowRef
	load  []float64
}

func captureEngine(e *Engine) engineCapture {
	return engineCapture{
		state: e.ExportState(),
		stats: e.Stats(),
		snap:  e.Snapshot(),
		order: e.Order(),
		load:  append([]float64(nil), e.load...),
	}
}

func assertCaptureEqual(t *testing.T, label string, before, after engineCapture) {
	t.Helper()
	if !reflect.DeepEqual(before.state, after.state) {
		t.Errorf("%s: ExportState changed across failed admission", label)
	}
	if !reflect.DeepEqual(before.stats, after.stats) {
		t.Errorf("%s: Stats changed across failed admission:\nbefore %+v\nafter  %+v", label, before.stats, after.stats)
	}
	if !reflect.DeepEqual(before.snap, after.snap) {
		t.Errorf("%s: Snapshot changed across failed admission", label)
	}
	if !reflect.DeepEqual(before.order, after.order) {
		t.Errorf("%s: Order changed across failed admission", label)
	}
	for i := range before.load {
		if before.load[i] != after.load[i] {
			t.Errorf("%s: routing load for edge %d changed: %v != %v (not byte-identical)",
				label, i, after.load[i], before.load[i])
		}
	}
}

// TestAdmitRollbackExact drives both mid-admission failure paths — routing
// failure (no path for a later flow) and simulator registration failure
// (flow reference already taken) — after the engine has real in-flight
// state, and checks the rollback is exact: every observable surface is
// byte-identical to the pre-admission capture, and the engine's subsequent
// behavior matches a control engine that never saw the failed admissions.
func TestAdmitRollbackExact(t *testing.T) {
	g := graph.FatTree(4, 1)
	isolated := g.AddNode("isolated", graph.KindHost) // reachable by nothing
	hosts := g.Hosts()
	if len(hosts) < 5 {
		t.Fatalf("fat-tree has only %d hosts", len(hosts))
	}
	newEngine := func() *Engine {
		e, err := NewEngine(g, SEBFOnline{}, Config{EpochLength: 0.5})
		if err != nil {
			t.Fatalf("new engine: %v", err)
		}
		return e
	}
	goodCoflow := func(seed int) coflow.Coflow {
		return coflow.Coflow{
			Name:   "good",
			Weight: 1 + float64(seed),
			Flows: []coflow.Flow{
				{Source: hosts[seed%4], Dest: hosts[(seed+1)%4], Size: 3 + float64(seed)},
				{Source: hosts[(seed+2)%4], Dest: hosts[(seed+3)%4], Size: 2},
			},
		}
	}
	advance := func(e *Engine, to float64) {
		if err := e.DecideSync(); err != nil {
			t.Fatalf("decide: %v", err)
		}
		if err := e.AdvanceTo(to); err != nil {
			t.Fatalf("advance: %v", err)
		}
	}

	e, control := newEngine(), newEngine()
	for _, eng := range []*Engine{e, control} {
		if _, err := eng.Admit(goodCoflow(0), 0); err != nil {
			t.Fatalf("seed admission: %v", err)
		}
		advance(eng, 0.5)
	}

	// Failure path 1: the second flow has no route, so pickPath fails after
	// flow 0 was already routed and charged to the load vector.
	before := captureEngine(e)
	unroutable := coflow.Coflow{
		Weight: 1,
		Flows: []coflow.Flow{
			{Source: hosts[0], Dest: hosts[1], Size: 2},
			{Source: hosts[2], Dest: isolated, Size: 2},
		},
	}
	if _, err := e.Admit(unroutable, e.Now()); err == nil {
		t.Fatalf("admission of unroutable coflow succeeded")
	}
	assertCaptureEqual(t, "unroutable", before, captureEngine(e))

	// Failure path 2: the second flow's reference is already registered in
	// the simulator, so AddFlow fails after flow 0 was registered — the
	// rollback must remove flow 0 from the simulator again.
	squat := coflow.FlowRef{Coflow: e.NumCoflows(), Index: 1}
	squatPath := g.ShortestPath(hosts[0], hosts[1])
	if len(squatPath) == 0 {
		t.Fatalf("no path between hosts")
	}
	if err := e.sim.AddFlow(squat, coflow.Flow{Source: hosts[0], Dest: hosts[1], Size: 1, Release: e.Now() + 10}, squatPath); err != nil {
		t.Fatalf("squatting flow ref: %v", err)
	}
	before = captureEngine(e)
	if _, err := e.Admit(goodCoflow(1), e.Now()); err == nil {
		t.Fatalf("admission over squatted flow ref succeeded")
	}
	assertCaptureEqual(t, "squatted", before, captureEngine(e))
	if err := e.sim.Remove(squat); err != nil {
		t.Fatalf("removing squatted flow: %v", err)
	}

	// After both failures the engine must behave exactly like the control
	// engine that never saw them: same ids, same routing, same trajectory.
	for seed := 1; seed <= 3; seed++ {
		now := e.Now()
		id, err := e.Admit(goodCoflow(seed), now)
		if err != nil {
			t.Fatalf("post-failure admission %d: %v", seed, err)
		}
		cid, err := control.Admit(goodCoflow(seed), now)
		if err != nil {
			t.Fatalf("control admission %d: %v", seed, err)
		}
		if id != cid {
			t.Fatalf("post-failure admission got id %d, control got %d", id, cid)
		}
		advance(e, now+0.5)
		advance(control, now+0.5)
	}
	for !e.Done() || !control.Done() {
		now := e.Now()
		advance(e, now+0.5)
		advance(control, now+0.5)
		if now > 1e6 {
			t.Fatalf("engines did not drain")
		}
	}
	est, cst := e.ExportState(), control.ExportState()
	est.SolveLatencies, cst.SolveLatencies = nil, nil // wall-clock, not deterministic
	if !reflect.DeepEqual(est, cst) {
		t.Fatalf("engine state diverged from control after rolled-back admissions")
	}
	es, cs := e.Stats(), control.Stats()
	if es.WeightedCCT != cs.WeightedCCT || es.WeightedResponse != cs.WeightedResponse ||
		es.Completed != cs.Completed || math.Abs(es.Now-cs.Now) != 0 {
		t.Fatalf("aggregates diverged from control: %+v vs %+v", es, cs)
	}
}
