package online

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"time"

	"coflowsched/internal/baselines"
	"coflowsched/internal/coflow"
	"coflowsched/internal/graph"
	"coflowsched/internal/workload"
)

// engineWorkload draws a reproducible Poisson arrival stream on a 16-server
// fat-tree. Coflows carry no pre-assigned paths, so the engine's causal
// router picks them, as in production.
func engineWorkload(t *testing.T, seed int64, coflows int) (*coflow.Instance, []float64) {
	t.Helper()
	g := graph.FatTree(4, 1)
	rng := rand.New(rand.NewSource(seed))
	inst, arrivals, err := workload.GenerateArrivals(g, workload.ArrivalConfig{
		Config: workload.Config{NumCoflows: coflows, Width: 3, MeanSize: 4, MeanWeight: 1},
		Rate:   2.0,
	}, rng)
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	return inst, arrivals
}

// relativeCoflow strips absolute release times back to offsets from the
// coflow's arrival, producing the wire-shaped coflow a client would POST.
func relativeCoflow(cf coflow.Coflow, arrival float64) coflow.Coflow {
	out := coflow.Coflow{Name: cf.Name, Weight: cf.Weight, Flows: make([]coflow.Flow, len(cf.Flows))}
	copy(out.Flows, cf.Flows)
	for j := range out.Flows {
		out.Flows[j].Release -= arrival
		out.Flows[j].Path = nil
	}
	return out
}

// TestEngineMatchesBatchRun drives the incremental engine through the same
// epoch discipline as the batch loop — admit each coflow at its arrival,
// decide synchronously at every boundary, advance one epoch — and checks the
// resulting schedule scores identically to Run on the full instance.
func TestEngineMatchesBatchRun(t *testing.T) {
	const epoch = 1.5
	inst, arrivals := engineWorkload(t, 5, 6)
	policy := FIFOOnline{}

	want, err := Run(inst, policy, Config{EpochLength: epoch, Seed: 1})
	if err != nil {
		t.Fatalf("batch run: %v", err)
	}

	eng, err := NewEngine(inst.Network, policy, Config{EpochLength: epoch})
	if err != nil {
		t.Fatalf("new engine: %v", err)
	}
	// The batch loop aligns epoch 0 to the first arrival; mirror that.
	order := make([]int, len(arrivals))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return arrivals[order[a]] < arrivals[order[b]] })
	next := 0
	admit := func(upTo float64) {
		for next < len(order) && arrivals[order[next]] <= upTo+1e-15 {
			id := order[next]
			got, err := eng.Admit(relativeCoflow(inst.Coflows[id], arrivals[id]), arrivals[id])
			if err != nil {
				t.Fatalf("admit coflow %d: %v", id, err)
			}
			if got != id {
				t.Fatalf("admit returned id %d, want %d (arrival-ordered admission)", got, id)
			}
			next++
		}
	}
	start := arrivals[order[0]]
	admit(start)
	if err := eng.AdvanceTo(start); err != nil {
		t.Fatalf("advance to start: %v", err)
	}
	for now := start; !eng.Done(); now += epoch {
		if err := eng.DecideSync(); err != nil {
			t.Fatalf("decide at %v: %v", now, err)
		}
		admit(now + epoch) // arrivals inside the epoch land mid-simulation
		if err := eng.AdvanceTo(now + epoch); err != nil {
			t.Fatalf("advance to %v: %v", now+epoch, err)
		}
		if now > 100*inst.TimeHorizon() {
			t.Fatalf("engine did not finish")
		}
	}

	st := eng.Stats()
	if st.Completed != len(inst.Coflows) {
		t.Fatalf("completed %d of %d coflows", st.Completed, len(inst.Coflows))
	}
	if math.Abs(st.WeightedCCT-want.WeightedCCT) > 1e-6*want.WeightedCCT {
		t.Errorf("weighted CCT: engine %v, batch %v", st.WeightedCCT, want.WeightedCCT)
	}
	if math.Abs(st.WeightedResponse-want.WeightedResponse) > 1e-6*want.WeightedResponse {
		t.Errorf("weighted response: engine %v, batch %v", st.WeightedResponse, want.WeightedResponse)
	}
	for i := range inst.Coflows {
		cs, ok := eng.CoflowStatus(i)
		if !ok || !cs.Done {
			t.Fatalf("coflow %d not reported done", i)
		}
		if math.Abs(cs.Completion-want.CoflowCompletion[i]) > 1e-9 {
			t.Errorf("coflow %d completion: engine %v, batch %v", i, cs.Completion, want.CoflowCompletion[i])
		}
	}
}

// TestRing pins the bounded-reservoir behavior the engine's percentile
// inputs rely on: grows to statsWindow, then overwrites oldest-first.
func TestRing(t *testing.T) {
	var r ring
	for i := 0; i < statsWindow+10; i++ {
		r.add(float64(i))
	}
	vals := r.snapshot()
	if len(vals) != statsWindow {
		t.Fatalf("reservoir holds %d values, want %d", len(vals), statsWindow)
	}
	min := vals[0]
	for _, v := range vals {
		if v < min {
			min = v
		}
	}
	if min != 10 {
		t.Errorf("oldest surviving value %v, want 10 (oldest-first eviction)", min)
	}
}

// TestEngineAdmitValidation exercises the rejection paths.
func TestEngineAdmitValidation(t *testing.T) {
	g := graph.FatTree(4, 1)
	hosts := g.Hosts()
	eng, err := NewEngine(g, SEBFOnline{}, Config{EpochLength: 1})
	if err != nil {
		t.Fatalf("new engine: %v", err)
	}
	ok := coflow.Coflow{Weight: 1, Flows: []coflow.Flow{{Source: hosts[0], Dest: hosts[1], Size: 2}}}

	cases := []struct {
		name string
		cf   coflow.Coflow
		at   float64
	}{
		{"no flows", coflow.Coflow{Weight: 1}, 0},
		{"negative weight", coflow.Coflow{Weight: -1, Flows: ok.Flows}, 0},
		{"NaN weight", coflow.Coflow{Weight: math.NaN(), Flows: ok.Flows}, 0},
		{"zero size", coflow.Coflow{Weight: 1, Flows: []coflow.Flow{{Source: hosts[0], Dest: hosts[1], Size: 0}}}, 0},
		{"bad endpoint", coflow.Coflow{Weight: 1, Flows: []coflow.Flow{{Source: -1, Dest: hosts[1], Size: 1}}}, 0},
		{"self loop", coflow.Coflow{Weight: 1, Flows: []coflow.Flow{{Source: hosts[0], Dest: hosts[0], Size: 1}}}, 0},
		{"NaN release", coflow.Coflow{Weight: 1, Flows: []coflow.Flow{{Source: hosts[0], Dest: hosts[1], Size: 1, Release: math.NaN()}}}, 0},
		{"NaN admission time", ok, math.NaN()},
	}
	for _, c := range cases {
		if _, err := eng.Admit(c.cf, c.at); err == nil {
			t.Errorf("%s: admission accepted", c.name)
		}
	}
	if st := eng.Stats(); st.Admitted != 0 {
		t.Fatalf("rejected admissions leaked state: %+v", st)
	}

	// Valid admission, then one in the past.
	if _, err := eng.Admit(ok, 0); err != nil {
		t.Fatalf("valid admission rejected: %v", err)
	}
	if err := eng.DecideSync(); err != nil {
		t.Fatalf("decide: %v", err)
	}
	if err := eng.AdvanceTo(5); err != nil {
		t.Fatalf("advance: %v", err)
	}
	if _, err := eng.Admit(ok, 3); err == nil {
		t.Errorf("admission in the past accepted")
	}
}

// TestApplyStaleOrder reproduces the async serving race: a decision solved
// from a snapshot taken before a coflow completed still names that coflow's
// (since pruned) flows. Applying it must succeed and rank the surviving
// flows, not reject the whole decision.
func TestApplyStaleOrder(t *testing.T) {
	g := graph.FatTree(4, 1)
	hosts := g.Hosts()
	eng, err := NewEngine(g, FIFOOnline{}, Config{EpochLength: 1})
	if err != nil {
		t.Fatalf("new engine: %v", err)
	}
	small := coflow.Coflow{Name: "small", Weight: 1, Flows: []coflow.Flow{{Source: hosts[0], Dest: hosts[1], Size: 1}}}
	big := coflow.Coflow{Name: "big", Weight: 1, Flows: []coflow.Flow{{Source: hosts[2], Dest: hosts[3], Size: 50}}}
	if _, err := eng.Admit(small, 0); err != nil {
		t.Fatalf("admit small: %v", err)
	}
	if _, err := eng.Admit(big, 0); err != nil {
		t.Fatalf("admit big: %v", err)
	}
	// Snapshot-then-decide while both coflows are live (the in-flight solve).
	snap := eng.Snapshot()
	stale, err := eng.Policy().Decide(snap)
	if err != nil {
		t.Fatalf("decide: %v", err)
	}
	if len(stale) != 2 {
		t.Fatalf("stale order has %d flows, want 2", len(stale))
	}
	// The small coflow completes (disjoint paths) and is pruned mid-solve.
	if err := eng.AdvanceTo(5); err != nil {
		t.Fatalf("advance: %v", err)
	}
	if st, _ := eng.CoflowStatus(0); !st.Done {
		t.Fatalf("small coflow not done at t=5: %+v", st)
	}
	// Applying the stale decision must not fail, and must keep the live flow.
	if err := eng.ApplyOrder(stale, time.Millisecond); err != nil {
		t.Fatalf("applying stale order: %v", err)
	}
	if st := eng.Stats(); st.Decisions != 1 {
		t.Errorf("decisions = %d, want 1", st.Decisions)
	}
	order := eng.Order()
	if len(order) != 1 || order[0].Coflow != 1 {
		t.Errorf("residual order %v, want the big coflow's flow only", order)
	}
	if err := eng.Drain(); err != nil {
		t.Fatalf("drain: %v", err)
	}
}

// TestEngineOracleRejected checks the Preparer guard.
func TestEngineOracleRejected(t *testing.T) {
	if _, err := NewEngine(graph.FatTree(4, 1), NewOracle(baselines.SEBF{}), Config{EpochLength: 1}); err == nil {
		t.Fatalf("engine accepted a hindsight policy")
	}
}

// TestEngineDrain admits a burst mid-run and drains to completion, checking
// stats, per-coflow status and the residual schedule view along the way.
func TestEngineDrain(t *testing.T) {
	inst, arrivals := engineWorkload(t, 9, 5)
	eng, err := NewEngine(inst.Network, SEBFOnline{}, Config{EpochLength: 2})
	if err != nil {
		t.Fatalf("new engine: %v", err)
	}
	last := 0.0
	for i, cf := range inst.Coflows {
		if _, err := eng.Admit(relativeCoflow(cf, arrivals[i]), arrivals[i]); err != nil {
			t.Fatalf("admit %d: %v", i, err)
		}
		if arrivals[i] > last {
			last = arrivals[i]
		}
	}
	// Advance past the last arrival so every coflow is visible to the policy.
	if err := eng.AdvanceTo(last); err != nil {
		t.Fatalf("advance: %v", err)
	}
	if err := eng.DecideSync(); err != nil {
		t.Fatalf("decide: %v", err)
	}
	if got := len(eng.Order()); got == 0 {
		t.Fatalf("no priority order after a decision over %d coflows", eng.NumCoflows())
	}
	snap := eng.Snapshot()
	if len(snap.Coflows) == 0 {
		t.Fatalf("snapshot empty with admitted work")
	}
	if err := eng.Drain(); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if !eng.Done() {
		t.Fatalf("engine not done after drain")
	}
	st := eng.Stats()
	if st.Completed != len(inst.Coflows) || st.Active != 0 || st.ActiveFlows != 0 {
		t.Fatalf("post-drain stats inconsistent: %+v", st)
	}
	if st.WeightedCCT <= 0 || st.WeightedResponse <= 0 {
		t.Fatalf("post-drain objectives not positive: %+v", st)
	}
	if len(st.Slowdowns) != len(inst.Coflows) {
		t.Fatalf("got %d slowdowns for %d coflows", len(st.Slowdowns), len(inst.Coflows))
	}
	for i, s := range st.Slowdowns {
		if s < 1-1e-9 {
			t.Errorf("slowdown %d = %v below 1 (faster than isolated bottleneck?)", i, s)
		}
	}
	if len(eng.Order()) != 0 {
		t.Errorf("residual order not empty after drain")
	}
	if _, ok := eng.CoflowStatus(len(inst.Coflows)); ok {
		t.Errorf("status for unknown coflow id")
	}
}

// TestOrderChurn pins the churn metric the /v1/epochs introspection surface
// reports: fraction of refs in the larger order whose rank changed.
func TestOrderChurn(t *testing.T) {
	r := func(c int) coflow.FlowRef { return coflow.FlowRef{Coflow: c} }
	cases := []struct {
		name     string
		old, new []coflow.FlowRef
		want     float64
	}{
		{"both empty", nil, nil, 0},
		{"reconfirmed", []coflow.FlowRef{r(0), r(1)}, []coflow.FlowRef{r(0), r(1)}, 0},
		{"swap", []coflow.FlowRef{r(0), r(1)}, []coflow.FlowRef{r(1), r(0)}, 1},
		{"from empty", nil, []coflow.FlowRef{r(0), r(1)}, 1},
		{"all dropped", []coflow.FlowRef{r(0), r(1)}, nil, 1},
		{"tail shift", []coflow.FlowRef{r(0), r(1), r(2), r(3)}, []coflow.FlowRef{r(0), r(1), r(3), r(2)}, 0.5},
		{"head drop", []coflow.FlowRef{r(0), r(1), r(2), r(3)}, []coflow.FlowRef{r(1), r(2), r(3)}, 1},
	}
	for _, tc := range cases {
		if got := orderChurn(tc.old, tc.new); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("%s: orderChurn = %v, want %v", tc.name, got, tc.want)
		}
	}
}

// TestEngineIntrospection covers the accessors the daemon's epoch ring is
// built from: Epoch, ActiveCounts, OrderChurn and TakeCompleted across a
// short admit/decide/advance lifetime.
func TestEngineIntrospection(t *testing.T) {
	inst, arrivals := engineWorkload(t, 11, 3)
	eng, err := NewEngine(inst.Network, SEBFOnline{}, Config{EpochLength: 1})
	if err != nil {
		t.Fatalf("new engine: %v", err)
	}

	if e := eng.Epoch(); e != 0 {
		t.Errorf("fresh engine Epoch = %d, want 0", e)
	}
	if c, f := eng.ActiveCounts(); c != 0 || f != 0 {
		t.Errorf("fresh engine ActiveCounts = %d, %d, want 0, 0", c, f)
	}
	if done := eng.TakeCompleted(); done != nil {
		t.Errorf("fresh engine TakeCompleted = %v, want nil", done)
	}
	if ch := eng.OrderChurn(); ch != 0 {
		t.Errorf("fresh engine OrderChurn = %v, want 0", ch)
	}

	wantFlows := 0
	for i := range inst.Coflows {
		if _, err := eng.Admit(relativeCoflow(inst.Coflows[i], arrivals[i]), 0); err != nil {
			t.Fatalf("admit %d: %v", i, err)
		}
		wantFlows += len(inst.Coflows[i].Flows)
	}
	if c, f := eng.ActiveCounts(); c != len(inst.Coflows) || f != wantFlows {
		t.Errorf("ActiveCounts after admits = %d, %d, want %d, %d", c, f, len(inst.Coflows), wantFlows)
	}

	// The first decision replaces the empty standing order wholesale.
	if err := eng.DecideSync(); err != nil {
		t.Fatalf("decide: %v", err)
	}
	if ch := eng.OrderChurn(); ch != 1 {
		t.Errorf("OrderChurn after first decision = %v, want 1", ch)
	}

	// Run to completion, one epoch at a time; every coflow id must be
	// surfaced by TakeCompleted exactly once.
	seen := map[int]int{}
	now := 0.0
	for i := 0; !eng.Done() && i < 10000; i++ {
		now += 1
		if err := eng.AdvanceTo(now); err != nil {
			t.Fatalf("advance: %v", err)
		}
		if e := eng.Epoch(); e != i+1 {
			t.Errorf("Epoch after %d advances = %d", i+1, e)
		}
		for _, id := range eng.TakeCompleted() {
			seen[id]++
		}
	}
	if !eng.Done() {
		t.Fatal("engine never drained")
	}
	for i := range inst.Coflows {
		if seen[i] != 1 {
			t.Errorf("coflow %d surfaced %d times by TakeCompleted, want 1", i, seen[i])
		}
	}
	if c, f := eng.ActiveCounts(); c != 0 || f != 0 {
		t.Errorf("drained ActiveCounts = %d, %d, want 0, 0", c, f)
	}
	if done := eng.TakeCompleted(); done != nil {
		t.Errorf("second TakeCompleted = %v, want nil (log resets)", done)
	}
}
