package online

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"coflowsched/internal/baselines"
	"coflowsched/internal/coflow"
	"coflowsched/internal/graph"
	"coflowsched/internal/workload"
)

// onlineInstance draws a reproducible online workload on a k=4 fat-tree.
func onlineInstance(t *testing.T, seed int64, rate float64, numCoflows int) *coflow.Instance {
	t.Helper()
	g := graph.FatTree(4, 1)
	inst, _, err := workload.GenerateArrivals(g, workload.ArrivalConfig{
		Config: workload.Config{NumCoflows: numCoflows, Width: 3, MeanSize: 4, MeanWeight: 1},
		Rate:   rate,
	}, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	return inst
}

func policies() []Policy {
	return []Policy{
		FIFOOnline{},
		SEBFOnline{},
		LPEpoch{},
		NewOracle(baselines.SEBF{}),
	}
}

// TestPoliciesProduceFeasibleSchedules runs every policy end to end and
// validates the transcript against the original instance.
func TestPoliciesProduceFeasibleSchedules(t *testing.T) {
	inst := onlineInstance(t, 3, 1.0, 6)
	for _, p := range policies() {
		res, err := Run(inst, p, Config{EpochLength: 2, Seed: 5})
		if err != nil {
			t.Fatalf("%s: %v", p.Name(), err)
		}
		if err := res.Schedule.Validate(inst); err != nil {
			t.Errorf("%s produced an infeasible schedule: %v", p.Name(), err)
		}
		if res.WeightedCCT <= 0 {
			t.Errorf("%s: weighted CCT %v not positive", p.Name(), res.WeightedCCT)
		}
		for i, sl := range res.Slowdown {
			if sl < 1-1e-6 {
				t.Errorf("%s: coflow %d slowdown %v < 1 (faster than its isolated bottleneck)", p.Name(), i, sl)
			}
		}
	}
}

// TestDeterminism: same seed and config imply an identical weighted CCT, for
// every policy — including the pipelined LP, whose applied decisions depend
// only on epoch indices, never on solver wall-clock speed.
func TestDeterminism(t *testing.T) {
	for _, p := range policies() {
		var first float64
		for run := 0; run < 3; run++ {
			inst := onlineInstance(t, 11, 1.5, 6)
			res, err := Run(inst, p, Config{EpochLength: 1.5, Seed: 9, Workers: 2})
			if err != nil {
				t.Fatalf("%s run %d: %v", p.Name(), run, err)
			}
			if run == 0 {
				first = res.WeightedCCT
			} else if res.WeightedCCT != first {
				t.Errorf("%s: run %d weighted CCT %v != first run %v", p.Name(), run, res.WeightedCCT, first)
			}
		}
	}
}

// TestConservation: across however many epoch boundaries and preemptions,
// every flow's transmitted volume equals its size at completion.
func TestConservation(t *testing.T) {
	inst := onlineInstance(t, 17, 2.0, 8)
	for _, p := range policies() {
		res, err := Run(inst, p, Config{EpochLength: 0.75, Seed: 1})
		if err != nil {
			t.Fatalf("%s: %v", p.Name(), err)
		}
		for _, ref := range inst.FlowRefs() {
			size := inst.Flow(ref).Size
			delivered := res.Schedule.Get(ref).Delivered()
			if math.Abs(delivered-size) > 1e-6*size {
				t.Errorf("%s: flow %s delivered %v of %v across epochs", p.Name(), ref, delivered, size)
			}
		}
	}
}

// slowAsyncPolicy wraps FIFOOnline with an artificial solve delay, to make
// the solve/simulate overlap unambiguous on any machine.
type slowAsyncPolicy struct {
	delay time.Duration
}

func (slowAsyncPolicy) Name() string { return "SlowAsync" }
func (slowAsyncPolicy) Async() bool  { return true }
func (p slowAsyncPolicy) Decide(snap *Snapshot) ([]coflow.FlowRef, error) {
	time.Sleep(p.delay)
	return FIFOOnline{}.Decide(snap)
}

// TestPipelineOverlap: with an async policy, the solve submitted at epoch k
// runs on the worker pool while epoch k simulates, and the order applied in
// epoch k+1 comes from the snapshot at epoch k (one-epoch staleness).
func TestPipelineOverlap(t *testing.T) {
	inst := onlineInstance(t, 23, 1.0, 6)
	res, err := Run(inst, slowAsyncPolicy{delay: 10 * time.Millisecond}, Config{EpochLength: 2, Workers: 2})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if res.TotalSolveOverlap() <= 0 {
		t.Errorf("no solve ran concurrently with simulation (total overlap %v)", res.TotalSolveOverlap())
	}
	// Staleness accounting: after the cold start, applied decisions come
	// from the previous epoch's snapshot.
	lagged := 0
	for _, e := range res.Epochs {
		if e.SnapshotEpoch >= 0 && e.SnapshotEpoch == e.Epoch-1 {
			lagged++
		}
	}
	if lagged == 0 {
		t.Errorf("no epoch applied a pipelined (previous-snapshot) decision; epochs: %+v", res.Epochs)
	}
	if err := res.Schedule.Validate(inst); err != nil {
		t.Errorf("pipelined schedule infeasible: %v", err)
	}
}

// TestLPEpochPipelines: the real LP policy reports pipelined decisions and
// solve latencies.
func TestLPEpochPipelines(t *testing.T) {
	inst := onlineInstance(t, 29, 1.5, 5)
	res, err := Run(inst, LPEpoch{}, Config{EpochLength: 2, Workers: 2})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	lats := res.SolveLatencies()
	if len(lats) == 0 {
		t.Fatalf("LP run recorded no solve latencies")
	}
	lagged := false
	for _, e := range res.Epochs {
		if e.SnapshotEpoch >= 0 && e.SnapshotEpoch < e.Epoch {
			lagged = true
		}
	}
	if !lagged {
		t.Errorf("LPEpoch never applied a pipelined decision (all epochs synchronous)")
	}
	if err := res.Schedule.Validate(inst); err != nil {
		t.Errorf("LP schedule infeasible: %v", err)
	}
}

// TestSnapshotCausality: a policy must never see a coflow before it arrives.
type snoopPolicy struct {
	t       *testing.T
	arrival []float64
}

func (snoopPolicy) Name() string { return "Snoop" }
func (p snoopPolicy) Decide(snap *Snapshot) ([]coflow.FlowRef, error) {
	for _, cf := range snap.Coflows {
		if p.arrival[cf.Index] > snap.Now+1e-12 {
			p.t.Errorf("policy saw coflow %d (arrival %v) at time %v", cf.Index, p.arrival[cf.Index], snap.Now)
		}
		for _, f := range cf.Flows {
			if f.Remaining < -1e-9 || f.Remaining > f.Size+1e-9 {
				p.t.Errorf("coflow %d flow %s: remaining %v outside [0,%v]", cf.Index, f.Ref, f.Remaining, f.Size)
			}
		}
	}
	return FIFOOnline{}.Decide(snap)
}

func TestSnapshotCausality(t *testing.T) {
	g := graph.FatTree(4, 1)
	inst, arrivals, err := workload.GenerateArrivals(g, workload.ArrivalConfig{
		Config: workload.Config{NumCoflows: 8, Width: 2, MeanSize: 4},
		Rate:   1.0,
	}, rand.New(rand.NewSource(31)))
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	if _, err := Run(inst, snoopPolicy{t: t, arrival: arrivals}, Config{EpochLength: 1}); err != nil {
		t.Fatalf("run: %v", err)
	}
}

// TestResidualInstance checks the LP policy's snapshot-to-instance
// conversion: sizes are residuals, releases are shifted, refs map back.
func TestResidualInstance(t *testing.T) {
	g := graph.FatTree(4, 1)
	hosts := g.Hosts()
	path := g.ShortestPath(hosts[0], hosts[1])
	snap := &Snapshot{
		Now:     10,
		Network: g,
		Coflows: []ResidualCoflow{
			{Index: 2, Name: "a", Weight: 2, Arrival: 4, Flows: []ResidualFlow{
				{Ref: coflow.FlowRef{Coflow: 2, Index: 0}, Source: hosts[0], Dest: hosts[1], Path: path, Release: 4, Size: 8, Remaining: 3},
				{Ref: coflow.FlowRef{Coflow: 2, Index: 1}, Source: hosts[0], Dest: hosts[1], Path: path, Release: 12, Size: 5, Remaining: 5},
				{Ref: coflow.FlowRef{Coflow: 2, Index: 2}, Source: hosts[0], Dest: hosts[1], Path: path, Release: 4, Size: 2, Remaining: 0},
			}},
		},
	}
	rinst, backrefs := residualInstance(snap)
	if rinst == nil {
		t.Fatalf("residual instance is nil")
	}
	if len(rinst.Coflows) != 1 || len(rinst.Coflows[0].Flows) != 2 {
		t.Fatalf("residual instance has wrong shape: %+v", rinst.Coflows)
	}
	f0 := rinst.Coflows[0].Flows[0]
	if f0.Size != 3 || f0.Release != 0 {
		t.Errorf("flow 0: size %v release %v, want 3 and 0", f0.Size, f0.Release)
	}
	f1 := rinst.Coflows[0].Flows[1]
	if f1.Size != 5 || f1.Release != 2 {
		t.Errorf("flow 1: size %v release %v, want 5 and 2", f1.Size, f1.Release)
	}
	if got := backrefs[coflow.FlowRef{Coflow: 0, Index: 0}]; got != (coflow.FlowRef{Coflow: 2, Index: 0}) {
		t.Errorf("backref of flow 0: %v", got)
	}
	if got := backrefs[coflow.FlowRef{Coflow: 0, Index: 1}]; got != (coflow.FlowRef{Coflow: 2, Index: 1}) {
		t.Errorf("backref of flow 1: %v", got)
	}
}

// TestSEBFAndLPBeatFIFO: at moderate load, reordering policies beat strict
// arrival order on weighted CCT (averaged over a few instances).
func TestSEBFAndLPBeatFIFO(t *testing.T) {
	cfg := Config{EpochLength: 2, Seed: 1}
	var fifo, sebf, lp float64
	for seed := int64(0); seed < 3; seed++ {
		inst := onlineInstance(t, 100+seed, 2.0, 8)
		for _, pr := range []struct {
			p   Policy
			sum *float64
		}{{FIFOOnline{}, &fifo}, {SEBFOnline{}, &sebf}, {LPEpoch{}, &lp}} {
			res, err := Run(inst, pr.p, cfg)
			if err != nil {
				t.Fatalf("%s: %v", pr.p.Name(), err)
			}
			*pr.sum += res.WeightedCCT
		}
	}
	if sebf >= fifo {
		t.Errorf("SEBFOnline (%v) not better than FIFOOnline (%v)", sebf, fifo)
	}
	if lp >= fifo {
		t.Errorf("LPEpoch (%v) not better than FIFOOnline (%v)", lp, fifo)
	}
}

// TestLPEpochSurvivesSolverFailure pins the workload that made the pure-Go
// simplex fail ("singular basis") on a residual instance mid-stream: the
// default LPEpoch must degrade to the SEBF order for that epoch and finish,
// not abort the run.
func TestLPEpochSurvivesSolverFailure(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second LP solves")
	}
	inst := onlineInstance(t, 1, 2.0, 14)
	res, err := Run(inst, LPEpoch{}, Config{EpochLength: 2, Seed: 1, Workers: 2})
	if err != nil {
		t.Fatalf("LPEpoch aborted on solver failure: %v", err)
	}
	if err := res.Schedule.Validate(inst); err != nil {
		t.Errorf("schedule infeasible: %v", err)
	}
}
