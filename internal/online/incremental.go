package online

import (
	"fmt"
	"math"
	"time"

	"coflowsched/internal/coflow"
	"coflowsched/internal/graph"
	"coflowsched/internal/sim"
)

// Engine is the incremental form of Run, built for long-running servers:
// instead of streaming a fixed instance through the epoch loop, coflows are
// admitted one at a time (Admit), the clock is advanced explicitly
// (AdvanceTo), and priority decisions are installed by the caller
// (ApplyOrder), so an expensive Decide can run outside the goroutine that
// owns the engine. The engine itself is NOT safe for concurrent use — a
// single goroutine must own it and serialize access, which is exactly what
// internal/server's scheduler goroutine does.
//
// The residual snapshot the caller hands to Policy.Decide comes from
// Snapshot, which — like the batch loop — only exposes admitted, unfinished
// coflows, so policies remain causally blind to the future.
//
// Long-running cost: per-tick work (AdvanceTo, Snapshot) is proportional to
// the flows of ACTIVE coflows only — completed coflows are pruned from the
// simulator (sim.Forget) as soon as their completion is recorded, and the
// slowdown/solve-latency samples live in bounded reservoirs of the most
// recent statsWindow values. What does grow with total admissions is the
// per-coflow registry (arrival, completion, byte totals — a few words per
// coflow) that backs the status endpoint.
type Engine struct {
	cfg    Config
	policy Policy
	inst   *coflow.Instance
	sim    *sim.Simulator

	// arrivals and gammas are indexed by coflow id (= index in inst.Coflows).
	// gamma is the coflow's isolated bottleneck time under its admission
	// routing, the slowdown denominator.
	arrivals []float64
	gammas   []float64
	// flowsLeft counts unfinished flows per coflow (as of the last advance);
	// completion holds the max flow completion seen so far (the coflow CCT
	// once flowsLeft hits 0); totalBytes the coflow's admitted volume.
	flowsLeft  []int
	completion []float64
	totalBytes []float64
	// active lists admitted, uncompleted coflow ids in admission order; it
	// is the only set the per-tick scans iterate.
	active []int

	// load accumulates admitted volume per edge for causal path selection.
	load []float64
	// pathCache memoizes the K-shortest candidate paths per endpoint pair:
	// the network is immutable, so a long-running daemon computes each pair's
	// candidates at most once instead of re-running Yen's algorithm on every
	// admission.
	pathCache map[pathKey][]graph.Path
	now       float64
	epoch     int
	order     []coflow.FlowRef
	// lastChurn is the order-churn fraction of the most recent ApplyOrder.
	lastChurn float64
	// recentDone logs coflow ids completed since the last TakeCompleted call
	// — the hook lifecycle tracing uses to emit completion spans without
	// rescanning engine state.
	recentDone []int

	// Aggregates surfaced by Stats.
	completedCoflows int
	doneFlows        int
	totalFlows       int
	decisions        int
	weightedCCT      float64
	weightedResponse float64
	slowdowns        ring
	solveLatencies   ring
}

// statsWindow bounds the percentile sample reservoirs: a long-running
// daemon reports tails over the most recent window rather than accumulating
// every sample forever.
const statsWindow = 4096

// ring is a bounded sample reservoir holding the most recent statsWindow
// values (insertion order is irrelevant to percentiles).
type ring struct {
	vals []float64
	next int
}

func (r *ring) add(v float64) {
	if len(r.vals) < statsWindow {
		r.vals = append(r.vals, v)
		return
	}
	r.vals[r.next] = v
	r.next = (r.next + 1) % statsWindow
}

func (r *ring) snapshot() []float64 { return append([]float64(nil), r.vals...) }

// EngineStats is the aggregate view surfaced by Engine.Stats, the source of
// the server's /v1/stats and /metrics endpoints.
type EngineStats struct {
	// Now is the engine clock (simulated time last advanced to).
	Now float64
	// Epochs counts AdvanceTo calls, Decisions counts applied orders.
	Epochs    int
	Decisions int
	// Admitted, Completed and Active count coflows.
	Admitted  int
	Completed int
	Active    int
	// ActiveFlows counts admitted, unfinished flows.
	ActiveFlows int
	// WeightedCCT and WeightedResponse aggregate over completed coflows.
	WeightedCCT      float64
	WeightedResponse float64
	// Slowdowns holds one entry per completed coflow (response over the
	// coflow's isolated bottleneck time), bounded to the most recent
	// statsWindow completions.
	Slowdowns []float64
	// SolveLatencies holds the wall-clock duration, in seconds, of applied
	// policy decisions, bounded to the most recent statsWindow.
	SolveLatencies []float64
}

// CoflowStatus is the per-coflow view surfaced by Engine.CoflowStatus, the
// source of the server's GET /v1/coflows/{id}.
type CoflowStatus struct {
	ID      int
	Name    string
	Weight  float64
	Arrival float64
	// NumFlows and FlowsDone count the coflow's flows; TotalBytes and
	// RemainingBytes its volume.
	NumFlows       int
	FlowsDone      int
	TotalBytes     float64
	RemainingBytes float64
	Done           bool
	// Completion, Response and Slowdown are meaningful once Done.
	Completion float64
	Response   float64
	Slowdown   float64
}

// NewEngine builds an empty incremental engine over the given network. The
// policy must be snapshot-driven (Preparer policies like Oracle need the full
// future up front, which an incremental engine cannot provide).
func NewEngine(g *graph.Graph, policy Policy, cfg Config) (*Engine, error) {
	cfg = cfg.withDefaults()
	if cfg.EpochLength <= 0 {
		return nil, fmt.Errorf("online: epoch length must be positive, got %v", cfg.EpochLength)
	}
	if g == nil {
		return nil, fmt.Errorf("online: engine requires a network")
	}
	if _, ok := policy.(Preparer); ok {
		return nil, fmt.Errorf("online: policy %s needs the full instance up front and cannot run incrementally", policy.Name())
	}
	inst := &coflow.Instance{Network: g}
	s, err := sim.New(inst, sim.Config{Policy: sim.Priority})
	if err != nil {
		return nil, err
	}
	return &Engine{
		cfg:       cfg,
		policy:    policy,
		inst:      inst,
		sim:       s,
		load:      make([]float64, g.NumEdges()),
		pathCache: make(map[pathKey][]graph.Path),
	}, nil
}

// pathKey identifies an endpoint pair in the candidate-path cache.
type pathKey struct{ src, dst graph.NodeID }

// candidatePaths returns the admission router's candidate set for one flow:
// its pre-assigned path if any, otherwise the K shortest paths between its
// endpoints, memoized per pair.
func (e *Engine) candidatePaths(f *coflow.Flow) []graph.Path {
	if f.Path != nil {
		return []graph.Path{f.Path}
	}
	key := pathKey{src: f.Source, dst: f.Dest}
	if cands, ok := e.pathCache[key]; ok {
		return cands
	}
	cands := e.inst.Network.KShortestPaths(f.Source, f.Dest, e.cfg.CandidatePaths)
	e.pathCache[key] = cands
	return cands
}

// Policy returns the engine's policy. Decide may be called on it from any
// goroutine (policies are stateless once constructed); the resulting order
// must come back through ApplyOrder on the owning goroutine.
func (e *Engine) Policy() Policy { return e.policy }

// Now returns the engine clock.
func (e *Engine) Now() float64 { return e.now }

// EpochLength returns the configured epoch length.
func (e *Engine) EpochLength() float64 { return e.cfg.EpochLength }

// NumCoflows returns the number of admitted coflows.
func (e *Engine) NumCoflows() int { return len(e.inst.Coflows) }

// Done reports whether every admitted flow has completed.
func (e *Engine) Done() bool { return e.sim.Done() }

// Admit validates and admits one coflow at time now, returning its id. The
// coflow's flow Release fields are treated as offsets from the admission
// time (negative offsets are clamped to zero); each flow is routed causally
// onto the least-loaded of its candidate paths, exactly like the batch
// admitter. Admission must not precede the engine clock.
func (e *Engine) Admit(cf coflow.Coflow, now float64) (int, error) {
	if math.IsNaN(now) || math.IsInf(now, 0) {
		return 0, fmt.Errorf("online: invalid admission time %v", now)
	}
	if now < e.now-1e-12 {
		return 0, fmt.Errorf("online: admission at %v precedes the engine clock %v", now, e.now)
	}
	if now < e.now {
		now = e.now // absorb sub-tolerance clock skew
	}
	if cf.Weight < 0 || math.IsNaN(cf.Weight) {
		return 0, fmt.Errorf("online: invalid coflow weight %v", cf.Weight)
	}
	if len(cf.Flows) == 0 {
		return 0, fmt.Errorf("online: coflow has no flows")
	}
	n := e.inst.Network.NumNodes()
	for j, f := range cf.Flows {
		if int(f.Source) < 0 || int(f.Source) >= n || int(f.Dest) < 0 || int(f.Dest) >= n {
			return 0, fmt.Errorf("online: flow %d has endpoints outside the network", j)
		}
		if f.Source == f.Dest {
			return 0, fmt.Errorf("online: flow %d has identical source and destination", j)
		}
		if f.Size <= 0 || math.IsNaN(f.Size) || math.IsInf(f.Size, 0) {
			return 0, fmt.Errorf("online: flow %d has invalid size %v", j, f.Size)
		}
		if math.IsNaN(f.Release) || math.IsInf(f.Release, 0) {
			return 0, fmt.Errorf("online: flow %d has invalid release offset %v", j, f.Release)
		}
		if f.Path != nil {
			if err := f.Path.Validate(e.inst.Network, f.Source, f.Dest); err != nil {
				return 0, fmt.Errorf("online: flow %d pre-assigned path invalid: %v", j, err)
			}
		}
	}

	// Route and register. Work on a copy so a mid-coflow failure leaves no
	// partial admission behind in the routing load (sim registration failures
	// after routing cannot happen: the reference is fresh and the path was
	// just validated — but guard anyway and roll back).
	id := len(e.inst.Coflows)
	admitted := coflow.Coflow{Name: cf.Name, Weight: cf.Weight, Flows: make([]coflow.Flow, len(cf.Flows))}
	loadBefore := append([]float64(nil), e.load...)
	gammaLoads := make([]graph.PathLoad, len(cf.Flows))
	for j, f := range cf.Flows {
		offset := f.Release
		if offset < 0 {
			offset = 0
		}
		path, err := pickPath(e.inst.Network, e.load, &f, e.candidatePaths(&f))
		if err != nil {
			e.load = loadBefore
			return 0, fmt.Errorf("online: flow %d: %w", j, err)
		}
		admitted.Flows[j] = coflow.Flow{
			Source:  f.Source,
			Dest:    f.Dest,
			Size:    f.Size,
			Release: now + offset,
			Path:    path,
		}
		gammaLoads[j] = graph.PathLoad{Path: path, Volume: f.Size}
	}
	for j := range admitted.Flows {
		ref := coflow.FlowRef{Coflow: id, Index: j}
		if err := e.sim.AddFlow(ref, admitted.Flows[j], admitted.Flows[j].Path); err != nil {
			if j > 0 {
				// Flows cannot be unregistered from the simulator, so a
				// failure after the first registration would leave a partial
				// coflow behind. Unreachable with the pre-validated inputs
				// above (fresh references, validated paths, future releases).
				panic(fmt.Sprintf("online: partial admission of coflow %d: %v", id, err))
			}
			e.load = loadBefore
			return 0, err
		}
	}

	bytes := 0.0
	for _, f := range admitted.Flows {
		bytes += f.Size
	}
	e.inst.Coflows = append(e.inst.Coflows, admitted)
	e.arrivals = append(e.arrivals, now)
	e.gammas = append(e.gammas, e.inst.Network.BottleneckTime(gammaLoads))
	e.flowsLeft = append(e.flowsLeft, len(admitted.Flows))
	e.completion = append(e.completion, 0)
	e.totalBytes = append(e.totalBytes, bytes)
	e.active = append(e.active, id)
	e.totalFlows += len(admitted.Flows)
	return id, nil
}

// Snapshot captures the policy-visible residual state at the engine clock,
// without stopping or perturbing the simulation: admitted coflows that have
// arrived and still have unfinished flows, exactly what the batch loop
// shows its policies. The snapshot is an independent copy, safe to hand to
// a Decide running on another goroutine. Cost is proportional to active
// flows, not total admissions.
func (e *Engine) Snapshot() *Snapshot {
	snap := &Snapshot{Now: e.now, Epoch: e.epoch, Network: e.inst.Network}
	for _, id := range e.active {
		if e.arrivals[id] > e.now+1e-15 {
			continue // future admission: invisible to the policy
		}
		cf := &e.inst.Coflows[id]
		rcf := ResidualCoflow{Index: id, Name: cf.Name, Weight: cf.Weight, Arrival: e.arrivals[id]}
		for j, f := range cf.Flows {
			ref := coflow.FlowRef{Coflow: id, Index: j}
			fs, ok := e.sim.Status(ref)
			if !ok || fs.Done {
				continue
			}
			rcf.Flows = append(rcf.Flows, ResidualFlow{
				Ref:       ref,
				Source:    f.Source,
				Dest:      f.Dest,
				Path:      fs.Path,
				Release:   f.Release,
				Size:      fs.Size,
				Remaining: fs.Remaining,
			})
		}
		if len(rcf.Flows) > 0 {
			snap.Coflows = append(snap.Coflows, rcf)
		}
	}
	return snap
}

// ApplyOrder installs a priority order (normally the result of running the
// engine's policy on a Snapshot) and records the wall-clock latency of the
// decision that produced it. Orders computed asynchronously are one epoch
// stale: coflows that completed during the solve have been pruned from the
// simulator, so their refs are silently dropped — the decision's ranking of
// the still-live flows remains worth applying.
func (e *Engine) ApplyOrder(order []coflow.FlowRef, solveLatency time.Duration) error {
	live := order[:0:0]
	for _, r := range order {
		if _, ok := e.sim.Status(r); ok {
			live = append(live, r)
		}
	}
	if err := e.sim.SetOrder(live); err != nil {
		return err
	}
	e.lastChurn = orderChurn(e.order, live)
	e.order = append(e.order[:0], live...)
	e.decisions++
	e.solveLatencies.add(solveLatency.Seconds())
	return nil
}

// orderChurn measures how much a new priority order disagrees with the one
// it replaces: the fraction of refs in the larger order whose rank changed
// (including refs present in only one of the two). 0 means the decision
// re-confirmed the standing order; 1 means nothing kept its place.
func orderChurn(old, new []coflow.FlowRef) float64 {
	denom := len(old)
	if len(new) > denom {
		denom = len(new)
	}
	if denom == 0 {
		return 0
	}
	oldRank := make(map[coflow.FlowRef]int, len(old))
	for i, r := range old {
		oldRank[r] = i
	}
	changed := len(old) - len(new) // refs dropped entirely, when old is longer
	if changed < 0 {
		changed = 0
	}
	for i, r := range new {
		if rank, ok := oldRank[r]; !ok || rank != i {
			changed++
		}
	}
	return float64(changed) / float64(denom)
}

// OrderChurn reports the churn fraction of the most recently applied order
// (see orderChurn). Scheduler-introspection surface for /v1/epochs.
func (e *Engine) OrderChurn() float64 { return e.lastChurn }

// Epoch returns the engine's epoch counter (AdvanceTo calls so far).
func (e *Engine) Epoch() int { return e.epoch }

// ActiveCounts reports the active coflow and flow counts without copying the
// stats reservoirs — cheap enough to call every tick.
func (e *Engine) ActiveCounts() (coflows, flows int) {
	return len(e.inst.Coflows) - e.completedCoflows, e.totalFlows - e.doneFlows
}

// TakeCompleted returns the ids of coflows whose completion was recorded
// since the last call, in completion order, and resets the log. The server
// consumes this every tick to close out lifecycle traces; callers that never
// call it pay one int of growth per completed coflow.
func (e *Engine) TakeCompleted() []int {
	if len(e.recentDone) == 0 {
		return nil
	}
	out := e.recentDone
	e.recentDone = nil
	return out
}

// Order returns the currently applied priority order, restricted to flows
// that are still unfinished (the view GET /v1/schedule serves).
func (e *Engine) Order() []coflow.FlowRef {
	out := make([]coflow.FlowRef, 0, len(e.order))
	for _, r := range e.order {
		if fs, ok := e.sim.Status(r); ok && !fs.Done {
			out = append(out, r)
		}
	}
	return out
}

// AdvanceTo advances the simulation to the given time under the currently
// applied order and folds newly completed coflows into the aggregates. Times
// at or before the engine clock are a no-op.
func (e *Engine) AdvanceTo(to float64) error {
	if math.IsNaN(to) {
		return fmt.Errorf("online: invalid advance target %v", to)
	}
	if to <= e.now {
		return nil
	}
	if err := e.sim.RunUntil(to); err != nil {
		return err
	}
	e.now = to
	e.epoch++
	e.collectCompletions()
	return nil
}

// collectCompletions drains the simulator's completion log after an advance,
// closes out coflows whose last flow completed, and prunes their flow state
// from the simulator so neither the engine nor the simulator ever iterates
// finished work again. Cost is O(completions since the last advance) — the
// incremental tick path — instead of a re-scan of every active flow.
func (e *Engine) collectCompletions() {
	events := e.sim.TakeCompletions()
	if len(events) == 0 {
		return
	}
	closed := false
	for _, ev := range events {
		id := ev.Ref.Coflow
		if ev.Time > e.completion[id] {
			e.completion[id] = ev.Time
		}
		e.flowsLeft[id]--
		e.doneFlows++
		if e.flowsLeft[id] > 0 {
			continue
		}
		cf := &e.inst.Coflows[id]
		e.completedCoflows++
		response := e.completion[id] - e.arrivals[id]
		e.weightedCCT += cf.Weight * e.completion[id]
		e.weightedResponse += cf.Weight * response
		if e.gammas[id] > 0 {
			e.slowdowns.add(response / e.gammas[id])
		}
		for j := range cf.Flows {
			// Forget only errors on unknown/unfinished flows; every flow of
			// a completed coflow is done by construction.
			_ = e.sim.Forget(coflow.FlowRef{Coflow: id, Index: j})
		}
		e.recentDone = append(e.recentDone, id)
		closed = true
	}
	if closed {
		stillActive := e.active[:0]
		for _, id := range e.active {
			if e.flowsLeft[id] > 0 {
				stillActive = append(stillActive, id)
			}
		}
		e.active = stillActive
	}
}

// CoflowStatus reports the current state of one admitted coflow.
func (e *Engine) CoflowStatus(id int) (CoflowStatus, bool) {
	if id < 0 || id >= len(e.inst.Coflows) {
		return CoflowStatus{}, false
	}
	cf := e.inst.Coflows[id]
	st := CoflowStatus{
		ID:         id,
		Name:       cf.Name,
		Weight:     cf.Weight,
		Arrival:    e.arrivals[id],
		NumFlows:   len(cf.Flows),
		TotalBytes: e.totalBytes[id],
	}
	if e.flowsLeft[id] == 0 {
		// Completed and pruned from the simulator; answer from the registry.
		st.FlowsDone = st.NumFlows
		st.Done = true
		st.Completion = e.completion[id]
		st.Response = st.Completion - st.Arrival
		if e.gammas[id] > 0 {
			st.Slowdown = st.Response / e.gammas[id]
		}
		return st, true
	}
	// Count done flows from the registry, not the simulator: a restored
	// engine re-registers only the live flows of an active coflow, so its
	// simulator never sees the flows that finished before the snapshot.
	st.FlowsDone = st.NumFlows - e.flowsLeft[id]
	for j := range cf.Flows {
		fs, ok := e.sim.Status(coflow.FlowRef{Coflow: id, Index: j})
		if !ok || fs.Done {
			continue
		}
		st.RemainingBytes += fs.Remaining
	}
	return st, true
}

// Stats reports the engine's aggregate counters. The slices are copies.
func (e *Engine) Stats() EngineStats {
	return EngineStats{
		Now:              e.now,
		Epochs:           e.epoch,
		Decisions:        e.decisions,
		Admitted:         len(e.inst.Coflows),
		Completed:        e.completedCoflows,
		Active:           len(e.inst.Coflows) - e.completedCoflows,
		ActiveFlows:      e.totalFlows - e.doneFlows,
		WeightedCCT:      e.weightedCCT,
		WeightedResponse: e.weightedResponse,
		Slowdowns:        e.slowdowns.snapshot(),
		SolveLatencies:   e.solveLatencies.snapshot(),
	}
}

// DecideSync takes a snapshot, runs the policy synchronously and applies the
// resulting order. Idle snapshots (no residual coflows) apply nothing.
func (e *Engine) DecideSync() error {
	snap := e.Snapshot()
	if len(snap.Coflows) == 0 {
		return nil
	}
	t0 := time.Now()
	order, err := e.policy.Decide(snap)
	if err != nil {
		return err
	}
	return e.ApplyOrder(order, time.Since(t0))
}

// Drain runs decide/advance epochs until every admitted flow completes,
// advancing simulated time as far as needed. It is the graceful-shutdown
// path: no new work is admitted by the caller, and the transcript ends with
// every in-flight coflow finished. The epoch budget guards against a policy
// that starves some flow forever.
func (e *Engine) Drain() error {
	if e.Done() {
		return nil
	}
	// Residual volume over the slowest link bounds the remaining busy time;
	// idle gaps before future releases add at most the latest release.
	minCap := e.inst.Network.MinCapacity()
	if minCap <= 0 {
		minCap = 1
	}
	remaining := 0.0
	latestRelease := e.now
	for _, fs := range e.sim.Residuals() {
		remaining += fs.Remaining
		if fs.Release > latestRelease {
			latestRelease = fs.Release
		}
	}
	horizon := (latestRelease - e.now) + remaining/minCap
	maxEpochs := int(horizon/e.cfg.EpochLength)*10 + 1000
	for i := 0; !e.Done(); i++ {
		if i > maxEpochs {
			return fmt.Errorf("online: drain exceeded %d epochs (starving flow?)", maxEpochs)
		}
		if err := e.DecideSync(); err != nil {
			return err
		}
		if err := e.AdvanceTo(e.now + e.cfg.EpochLength); err != nil {
			return err
		}
	}
	return nil
}
