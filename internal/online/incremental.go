package online

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"time"

	"coflowsched/internal/coflow"
	"coflowsched/internal/graph"
	"coflowsched/internal/sim"
)

// Engine is the incremental form of Run, built for long-running servers:
// instead of streaming a fixed instance through the epoch loop, coflows are
// admitted one at a time (Admit), the clock is advanced explicitly
// (AdvanceTo), and priority decisions are installed by the caller
// (ApplyOrder), so an expensive Decide can run outside the goroutine that
// owns the engine. The engine itself is NOT safe for concurrent use — a
// single goroutine must own it and serialize access, which is exactly what
// internal/server's scheduler goroutine does.
//
// The residual snapshot the caller hands to Policy.Decide comes from
// Snapshot, which — like the batch loop — only exposes admitted, unfinished
// coflows, so policies remain causally blind to the future.
//
// Long-running cost: per-tick work (AdvanceTo, Snapshot) is proportional to
// the flows of ACTIVE coflows only — completed coflows are pruned from the
// simulator (sim.Forget) as soon as their completion is recorded, and the
// slowdown/solve-latency samples live in bounded reservoirs of the most
// recent statsWindow values. What does grow with total admissions is the
// per-coflow registry (arrival, completion, byte totals — a few words per
// coflow) that backs the status endpoint.
type Engine struct {
	cfg    Config
	policy Policy
	inst   *coflow.Instance
	sim    *sim.Simulator

	// arrivals and gammas are indexed by coflow id (= index in inst.Coflows).
	// gamma is the coflow's isolated bottleneck time under its admission
	// routing, the slowdown denominator.
	arrivals []float64
	gammas   []float64
	// flowsLeft counts unfinished flows per coflow (as of the last advance);
	// completion holds the max flow completion seen so far (the coflow CCT
	// once flowsLeft hits 0); totalBytes the coflow's admitted volume.
	flowsLeft  []int
	completion []float64
	totalBytes []float64
	// active lists admitted, uncompleted coflow ids in admission order; it
	// is the only set the per-tick scans iterate.
	active []int

	// load accumulates admitted volume per edge for causal path selection.
	load []float64
	// handles holds one simulator handle per flow, indexed [coflow][flow
	// index], so the per-tick snapshot path reads flow state without a map
	// lookup per flow. Entries are nil once the coflow completes (its flows
	// are forgotten) and for never-registered flows of restored coflows.
	handles [][]sim.Handle
	now     float64
	epoch   int
	order   []coflow.FlowRef
	// orderScratch and orderHandles are ApplyOrder's reusable buffers.
	// snapScratch is DecideSync's reusable snapshot arena — legal because
	// Decide must not retain the snapshot after returning.
	orderScratch []coflow.FlowRef
	orderHandles []sim.Handle
	snapScratch  Snapshot
	// churnPos mirrors the handles table: per flow slot, the flow's position
	// in the old order of the current churn() call, packed as gen<<32|pos.
	// The generation stamp self-invalidates stale entries, so computing
	// churn costs two slice indexings per reference instead of a rebuilt map.
	churnPos [][]uint64
	churnGen uint64
	// parts is the simulator partition class count (1 = sequential core).
	parts int
	// lastChurn is the order-churn fraction of the most recent ApplyOrder.
	lastChurn float64
	// recentDone logs coflow ids completed since the last TakeCompleted call
	// — the hook lifecycle tracing uses to emit completion spans without
	// rescanning engine state.
	recentDone []int

	// Aggregates surfaced by Stats.
	completedCoflows int
	doneFlows        int
	totalFlows       int
	decisions        int
	weightedCCT      float64
	weightedResponse float64
	slowdowns        ring
	solveLatencies   ring
}

// statsWindow bounds the percentile sample reservoirs: a long-running
// daemon reports tails over the most recent window rather than accumulating
// every sample forever.
const statsWindow = 4096

// ring is a bounded sample reservoir holding the most recent statsWindow
// values (insertion order is irrelevant to percentiles).
type ring struct {
	vals []float64
	next int
}

func (r *ring) add(v float64) {
	if len(r.vals) < statsWindow {
		r.vals = append(r.vals, v)
		return
	}
	r.vals[r.next] = v
	r.next = (r.next + 1) % statsWindow
}

func (r *ring) snapshot() []float64 { return append([]float64(nil), r.vals...) }

// EngineStats is the aggregate view surfaced by Engine.Stats, the source of
// the server's /v1/stats and /metrics endpoints.
type EngineStats struct {
	// Now is the engine clock (simulated time last advanced to).
	Now float64
	// Epochs counts AdvanceTo calls, Decisions counts applied orders.
	Epochs    int
	Decisions int
	// Admitted, Completed and Active count coflows.
	Admitted  int
	Completed int
	Active    int
	// ActiveFlows counts admitted, unfinished flows.
	ActiveFlows int
	// WeightedCCT and WeightedResponse aggregate over completed coflows.
	WeightedCCT      float64
	WeightedResponse float64
	// Slowdowns holds one entry per completed coflow (response over the
	// coflow's isolated bottleneck time), bounded to the most recent
	// statsWindow completions.
	Slowdowns []float64
	// SolveLatencies holds the wall-clock duration, in seconds, of applied
	// policy decisions, bounded to the most recent statsWindow.
	SolveLatencies []float64
}

// CoflowStatus is the per-coflow view surfaced by Engine.CoflowStatus, the
// source of the server's GET /v1/coflows/{id}.
type CoflowStatus struct {
	ID      int
	Name    string
	Weight  float64
	Arrival float64
	// NumFlows and FlowsDone count the coflow's flows; TotalBytes and
	// RemainingBytes its volume.
	NumFlows       int
	FlowsDone      int
	TotalBytes     float64
	RemainingBytes float64
	Done           bool
	// Completion, Response and Slowdown are meaningful once Done.
	Completion float64
	Response   float64
	Slowdown   float64
}

// NewEngine builds an empty incremental engine over the given network. The
// policy must be snapshot-driven (Preparer policies like Oracle need the full
// future up front, which an incremental engine cannot provide).
func NewEngine(g *graph.Graph, policy Policy, cfg Config) (*Engine, error) {
	cfg = cfg.withDefaults()
	if cfg.EpochLength <= 0 {
		return nil, fmt.Errorf("online: epoch length must be positive, got %v", cfg.EpochLength)
	}
	if g == nil {
		return nil, fmt.Errorf("online: engine requires a network")
	}
	if _, ok := policy.(Preparer); ok {
		return nil, fmt.Errorf("online: policy %s needs the full instance up front and cannot run incrementally", policy.Name())
	}
	inst := &coflow.Instance{Network: g}
	var part *graph.EdgePartition
	parts := 1
	if cfg.Partitions > 1 {
		part = g.PodPartition().Coalesce(cfg.Partitions)
		parts = part.Parts()
	}
	s, err := sim.New(inst, sim.Config{Policy: sim.Priority, Partition: part})
	if err != nil {
		return nil, err
	}
	return &Engine{
		cfg:    cfg,
		policy: policy,
		inst:   inst,
		sim:    s,
		load:   make([]float64, g.NumEdges()),
		parts:  parts,
	}, nil
}

// Partitions reports the simulator's partition class count (1 when the
// sequential core is in use).
func (e *Engine) Partitions() int { return e.parts }

// candidatePaths returns the admission router's candidate set for one flow:
// its pre-assigned path if any, otherwise the K shortest paths between its
// endpoints, memoized on the (immutable) network itself — so every engine,
// benchmark and recovery replay sharing a topology computes each pair at
// most once. The memo is a pure function of the topology, which is what
// keeps Admit's rollback exact: there is no engine-side routing cache to
// unwind when an admission fails midway.
func (e *Engine) candidatePaths(f *coflow.Flow) []graph.Path {
	if f.Path != nil {
		return []graph.Path{f.Path}
	}
	return e.inst.Network.KShortestPathsCached(f.Source, f.Dest, e.cfg.CandidatePaths)
}

// Policy returns the engine's policy. Decide may be called on it from any
// goroutine (policies are stateless once constructed); the resulting order
// must come back through ApplyOrder on the owning goroutine.
func (e *Engine) Policy() Policy { return e.policy }

// Now returns the engine clock.
func (e *Engine) Now() float64 { return e.now }

// EpochLength returns the configured epoch length.
func (e *Engine) EpochLength() float64 { return e.cfg.EpochLength }

// NumCoflows returns the number of admitted coflows.
func (e *Engine) NumCoflows() int { return len(e.inst.Coflows) }

// Done reports whether every admitted flow has completed.
func (e *Engine) Done() bool { return e.sim.Done() }

// Admit validates and admits one coflow at time now, returning its id. The
// coflow's flow Release fields are treated as offsets from the admission
// time (negative offsets are clamped to zero); each flow is routed causally
// onto the least-loaded of its candidate paths, exactly like the batch
// admitter. Admission must not precede the engine clock.
func (e *Engine) Admit(cf coflow.Coflow, now float64) (int, error) {
	if math.IsNaN(now) || math.IsInf(now, 0) {
		return 0, fmt.Errorf("online: invalid admission time %v", now)
	}
	if now < e.now-1e-12 {
		return 0, fmt.Errorf("online: admission at %v precedes the engine clock %v", now, e.now)
	}
	if now < e.now {
		now = e.now // absorb sub-tolerance clock skew
	}
	if cf.Weight < 0 || math.IsNaN(cf.Weight) {
		return 0, fmt.Errorf("online: invalid coflow weight %v", cf.Weight)
	}
	if len(cf.Flows) == 0 {
		return 0, fmt.Errorf("online: coflow has no flows")
	}
	n := e.inst.Network.NumNodes()
	for j, f := range cf.Flows {
		if int(f.Source) < 0 || int(f.Source) >= n || int(f.Dest) < 0 || int(f.Dest) >= n {
			return 0, fmt.Errorf("online: flow %d has endpoints outside the network", j)
		}
		if f.Source == f.Dest {
			return 0, fmt.Errorf("online: flow %d has identical source and destination", j)
		}
		if f.Size <= 0 || math.IsNaN(f.Size) || math.IsInf(f.Size, 0) {
			return 0, fmt.Errorf("online: flow %d has invalid size %v", j, f.Size)
		}
		if math.IsNaN(f.Release) || math.IsInf(f.Release, 0) {
			return 0, fmt.Errorf("online: flow %d has invalid release offset %v", j, f.Release)
		}
		if f.Path != nil {
			if err := f.Path.Validate(e.inst.Network, f.Source, f.Dest); err != nil {
				return 0, fmt.Errorf("online: flow %d pre-assigned path invalid: %v", j, err)
			}
		}
	}

	// Route and register. Work on a copy so a mid-coflow failure leaves no
	// partial admission behind in the routing load (sim registration failures
	// after routing cannot happen: the reference is fresh and the path was
	// just validated — but guard anyway and roll back).
	id := len(e.inst.Coflows)
	admitted := coflow.Coflow{Name: cf.Name, Weight: cf.Weight, Flows: make([]coflow.Flow, len(cf.Flows))}
	loadBefore := append([]float64(nil), e.load...)
	gammaLoads := make([]graph.PathLoad, len(cf.Flows))
	for j, f := range cf.Flows {
		offset := f.Release
		if offset < 0 {
			offset = 0
		}
		path, err := pickPath(e.inst.Network, e.load, &f, e.candidatePaths(&f))
		if err != nil {
			e.load = loadBefore
			return 0, fmt.Errorf("online: flow %d: %w", j, err)
		}
		admitted.Flows[j] = coflow.Flow{
			Source:  f.Source,
			Dest:    f.Dest,
			Size:    f.Size,
			Release: now + offset,
			Path:    path,
		}
		gammaLoads[j] = graph.PathLoad{Path: path, Volume: f.Size}
	}
	for j := range admitted.Flows {
		ref := coflow.FlowRef{Coflow: id, Index: j}
		if err := e.sim.AddFlow(ref, admitted.Flows[j], admitted.Flows[j].Path); err != nil {
			// Roll back the flows already registered — they are all still
			// pending (nothing advances the simulator mid-admission), so
			// removal restores the simulator exactly. Removal of a flow we
			// just added can only fail on an engine invariant violation.
			for k := j - 1; k >= 0; k-- {
				if rerr := e.sim.Remove(coflow.FlowRef{Coflow: id, Index: k}); rerr != nil {
					panic(fmt.Sprintf("online: rollback of coflow %d flow %d: %v", id, k, rerr))
				}
			}
			e.load = loadBefore
			return 0, fmt.Errorf("online: flow %d: %w", j, err)
		}
	}
	hs := make([]sim.Handle, len(admitted.Flows))
	for j := range admitted.Flows {
		h, ok := e.sim.Handle(coflow.FlowRef{Coflow: id, Index: j})
		if !ok {
			panic(fmt.Sprintf("online: admitted flow %d/%d has no simulator state", id, j))
		}
		hs[j] = h
	}

	bytes := 0.0
	for _, f := range admitted.Flows {
		bytes += f.Size
	}
	e.inst.Coflows = append(e.inst.Coflows, admitted)
	e.arrivals = append(e.arrivals, now)
	e.gammas = append(e.gammas, e.inst.Network.BottleneckTime(gammaLoads))
	e.flowsLeft = append(e.flowsLeft, len(admitted.Flows))
	e.completion = append(e.completion, 0)
	e.totalBytes = append(e.totalBytes, bytes)
	e.active = append(e.active, id)
	e.handles = append(e.handles, hs)
	e.churnPos = append(e.churnPos, make([]uint64, len(admitted.Flows)))
	e.totalFlows += len(admitted.Flows)
	return id, nil
}

// AdmitResult is one outcome of AdmitBatch: the assigned coflow id on
// success, or the admission error.
type AdmitResult struct {
	ID  int
	Err error
}

// AdmitBatch admits a queue of coflows at one admission time, returning one
// result per spec in order. Admissions are independent — a failed spec rolls
// back only itself (see Admit) and does not disturb its neighbors — so a
// batch is exactly equivalent to the same Admit calls in sequence. The
// server's admission coalescing uses this to amortize its scheduler
// round-trip and WAL group commit across every request queued behind one
// channel receive.
func (e *Engine) AdmitBatch(cfs []coflow.Coflow, now float64) []AdmitResult {
	out := make([]AdmitResult, len(cfs))
	for i := range cfs {
		out[i].ID, out[i].Err = e.Admit(cfs[i], now)
	}
	return out
}

// snapshotCoflow builds the residual view of one admitted coflow into rcf,
// reusing rcf's Flows backing array. It reads flow state through the handle
// table — no map lookup per flow — and reports whether the coflow has any
// unfinished flows (false leaves rcf's header fields unset but its backing
// intact for reuse). Safe to call from several goroutines for DISTINCT
// coflows while the engine is otherwise quiescent: it only reads engine
// registries and per-flow simulator state.
func (e *Engine) snapshotCoflow(id int, rcf *ResidualCoflow) bool {
	cf := &e.inst.Coflows[id]
	hs := e.handles[id]
	flows := rcf.Flows[:0]
	for j := range cf.Flows {
		if hs == nil || !hs[j].Valid() {
			continue // never registered (restored-coflow gap) or pruned
		}
		fs := e.sim.HandleStatus(hs[j])
		if fs.Done {
			continue
		}
		f := &cf.Flows[j]
		flows = append(flows, ResidualFlow{
			Ref:       coflow.FlowRef{Coflow: id, Index: j},
			Source:    f.Source,
			Dest:      f.Dest,
			Path:      fs.Path,
			Release:   f.Release,
			Size:      fs.Size,
			Remaining: fs.Remaining,
		})
	}
	rcf.Flows = flows
	if len(flows) == 0 {
		return false
	}
	rcf.Index = id
	rcf.Name = cf.Name
	rcf.Weight = cf.Weight
	rcf.Arrival = e.arrivals[id]
	return true
}

// snapshotParallelMin is the active-coflow count below which Snapshot's
// chunked fan-out costs more than it saves.
const snapshotParallelMin = 64

// Snapshot captures the policy-visible residual state at the engine clock,
// without stopping or perturbing the simulation: admitted coflows that have
// arrived and still have unfinished flows, exactly what the batch loop
// shows its policies. The snapshot is an independent copy, safe to hand to
// a Decide running on another goroutine. Cost is proportional to active
// flows, not total admissions; large snapshots are assembled by parallel
// chunk workers writing disjoint indexed slots, then compacted in admission
// order, so the output is identical to the sequential assembly.
func (e *Engine) Snapshot() *Snapshot {
	snap := &Snapshot{Now: e.now, Epoch: e.epoch, Network: e.inst.Network}
	ids := make([]int, 0, len(e.active))
	for _, id := range e.active {
		if e.arrivals[id] > e.now+1e-15 {
			continue // future admission: invisible to the policy
		}
		ids = append(ids, id)
	}
	out := make([]ResidualCoflow, len(ids))
	keep := make([]bool, len(ids))
	build := func(lo, hi int) {
		for i := lo; i < hi; i++ {
			keep[i] = e.snapshotCoflow(ids[i], &out[i])
		}
	}
	if w := snapshotWorkers(len(ids)); w > 1 {
		var wg sync.WaitGroup
		chunk := (len(ids) + w - 1) / w
		for lo := 0; lo < len(ids); lo += chunk {
			hi := lo + chunk
			if hi > len(ids) {
				hi = len(ids)
			}
			wg.Add(1)
			go func(lo, hi int) {
				defer wg.Done()
				build(lo, hi)
			}(lo, hi)
		}
		wg.Wait()
	} else {
		build(0, len(ids))
	}
	for i := range out {
		if keep[i] {
			snap.Coflows = append(snap.Coflows, out[i])
		}
	}
	return snap
}

// snapshotWorkers sizes Snapshot's fan-out: 1 (sequential) unless the active
// set is large enough to amortize goroutine launch and the process actually
// has spare CPUs.
func snapshotWorkers(n int) int {
	if n < snapshotParallelMin {
		return 1
	}
	w := runtime.GOMAXPROCS(0)
	if w > 4 {
		w = 4 // diminishing returns; snapshot assembly is memory-bound
	}
	if w < 1 {
		w = 1
	}
	return w
}

// snapshotInto rebuilds the snapshot in place, reusing snap's Coflows slice
// and each slot's Flows backing. This is DecideSync's allocation-free path;
// it is legal because the Policy contract forbids Decide from retaining the
// snapshot after returning.
func (e *Engine) snapshotInto(snap *Snapshot) {
	snap.Now, snap.Epoch, snap.Network = e.now, e.epoch, e.inst.Network
	coflows := snap.Coflows[:0]
	for _, id := range e.active {
		if e.arrivals[id] > e.now+1e-15 {
			continue
		}
		n := len(coflows)
		if n < cap(coflows) {
			coflows = coflows[:n+1]
		} else {
			coflows = append(coflows, ResidualCoflow{})
		}
		if !e.snapshotCoflow(id, &coflows[n]) {
			// Truncate but keep the slot (and its Flows backing) in the
			// spare capacity for the next rebuild.
			coflows = coflows[:n]
		}
	}
	snap.Coflows = coflows
}

// ApplyOrder installs a priority order (normally the result of running the
// engine's policy on a Snapshot) and records the wall-clock latency of the
// decision that produced it. Orders computed asynchronously are one epoch
// stale: coflows that completed during the solve have been pruned from the
// simulator, so their refs are silently dropped — the decision's ranking of
// the still-live flows remains worth applying.
func (e *Engine) ApplyOrder(order []coflow.FlowRef, solveLatency time.Duration) error {
	live := e.orderScratch[:0]
	liveH := e.orderHandles[:0]
	for _, r := range order {
		if h, ok := e.handleFor(r); ok {
			live = append(live, r)
			liveH = append(liveH, h)
		}
	}
	e.orderScratch, e.orderHandles = live, liveH
	if err := e.sim.SetOrderHandles(liveH); err != nil {
		return err
	}
	e.lastChurn = e.churn(e.order, live)
	e.order = append(e.order[:0], live...)
	e.decisions++
	e.solveLatencies.add(solveLatency.Seconds())
	return nil
}

// churnRow resolves a flow reference to its churnPos row, nil once the
// coflow's flows have been forgotten (or for out-of-range references).
func (e *Engine) churnRow(r coflow.FlowRef) []uint64 {
	if r.Coflow < 0 || r.Coflow >= len(e.churnPos) {
		return nil
	}
	row := e.churnPos[r.Coflow]
	if row == nil || r.Index < 0 || r.Index >= len(row) {
		return nil
	}
	return row
}

// handleFor resolves a flow reference through the handle table — no map
// lookup — returning ok only while the simulator still tracks the flow.
func (e *Engine) handleFor(r coflow.FlowRef) (sim.Handle, bool) {
	if r.Coflow < 0 || r.Coflow >= len(e.handles) {
		return sim.Handle{}, false
	}
	hs := e.handles[r.Coflow]
	if hs == nil || r.Index < 0 || r.Index >= len(hs) || !hs[r.Index].Valid() {
		return sim.Handle{}, false
	}
	return hs[r.Index], true
}

// flowKnown reports whether the simulator still tracks the flow, answered
// from the handle table so the per-decision order filter costs no map
// lookups.
func (e *Engine) flowKnown(r coflow.FlowRef) bool {
	_, ok := e.handleFor(r)
	return ok
}

// churn computes the order-churn fraction through the churnPos table: record
// each old position under a fresh generation stamp, then count new entries
// whose recorded position is missing or moved. References whose coflow has
// been pruned simply never record a position — exactly the map-miss they
// used to be.
func (e *Engine) churn(old, new []coflow.FlowRef) float64 {
	denom := len(old)
	if len(new) > denom {
		denom = len(new)
	}
	if denom == 0 {
		return 0
	}
	e.churnGen++
	gen := e.churnGen & 0xffffffff
	for i, r := range old {
		if row := e.churnRow(r); row != nil {
			row[r.Index] = gen<<32 | uint64(uint32(i))
		}
	}
	changed := len(old) - len(new)
	if changed < 0 {
		changed = 0
	}
	for i, r := range new {
		row := e.churnRow(r)
		if row == nil || row[r.Index]>>32 != gen || uint32(row[r.Index]) != uint32(i) {
			changed++
		}
	}
	return float64(changed) / float64(denom)
}

// orderChurn measures how much a new priority order disagrees with the one
// it replaces: the fraction of refs in the larger order whose rank changed
// (including refs present in only one of the two). 0 means the decision
// re-confirmed the standing order; 1 means nothing kept its place.
func orderChurn(old, new []coflow.FlowRef) float64 {
	denom := len(old)
	if len(new) > denom {
		denom = len(new)
	}
	if denom == 0 {
		return 0
	}
	oldRank := make(map[coflow.FlowRef]int, len(old))
	for i, r := range old {
		oldRank[r] = i
	}
	changed := len(old) - len(new) // refs dropped entirely, when old is longer
	if changed < 0 {
		changed = 0
	}
	for i, r := range new {
		if rank, ok := oldRank[r]; !ok || rank != i {
			changed++
		}
	}
	return float64(changed) / float64(denom)
}

// OrderChurn reports the churn fraction of the most recently applied order
// (see orderChurn). Scheduler-introspection surface for /v1/epochs.
func (e *Engine) OrderChurn() float64 { return e.lastChurn }

// Epoch returns the engine's epoch counter (AdvanceTo calls so far).
func (e *Engine) Epoch() int { return e.epoch }

// ActiveCounts reports the active coflow and flow counts without copying the
// stats reservoirs — cheap enough to call every tick.
func (e *Engine) ActiveCounts() (coflows, flows int) {
	return len(e.inst.Coflows) - e.completedCoflows, e.totalFlows - e.doneFlows
}

// TakeCompleted returns the ids of coflows whose completion was recorded
// since the last call, in completion order, and resets the log. The server
// consumes this every tick to close out lifecycle traces; callers that never
// call it pay one int of growth per completed coflow.
func (e *Engine) TakeCompleted() []int {
	if len(e.recentDone) == 0 {
		return nil
	}
	out := e.recentDone
	e.recentDone = nil
	return out
}

// Order returns the currently applied priority order, restricted to flows
// that are still unfinished (the view GET /v1/schedule serves).
func (e *Engine) Order() []coflow.FlowRef {
	out := make([]coflow.FlowRef, 0, len(e.order))
	for _, r := range e.order {
		if fs, ok := e.sim.Status(r); ok && !fs.Done {
			out = append(out, r)
		}
	}
	return out
}

// AdvanceTo advances the simulation to the given time under the currently
// applied order and folds newly completed coflows into the aggregates. Times
// at or before the engine clock are a no-op.
func (e *Engine) AdvanceTo(to float64) error {
	if math.IsNaN(to) {
		return fmt.Errorf("online: invalid advance target %v", to)
	}
	if to <= e.now {
		return nil
	}
	if err := e.sim.RunUntil(to); err != nil {
		return err
	}
	e.now = to
	e.epoch++
	e.collectCompletions()
	return nil
}

// collectCompletions drains the simulator's completion log after an advance,
// closes out coflows whose last flow completed, and prunes their flow state
// from the simulator so neither the engine nor the simulator ever iterates
// finished work again. Cost is O(completions since the last advance) — the
// incremental tick path — instead of a re-scan of every active flow.
func (e *Engine) collectCompletions() {
	events := e.sim.TakeCompletions()
	if len(events) == 0 {
		return
	}
	closed := false
	for _, ev := range events {
		id := ev.Ref.Coflow
		if ev.Time > e.completion[id] {
			e.completion[id] = ev.Time
		}
		e.flowsLeft[id]--
		e.doneFlows++
		if e.flowsLeft[id] > 0 {
			continue
		}
		cf := &e.inst.Coflows[id]
		e.completedCoflows++
		response := e.completion[id] - e.arrivals[id]
		e.weightedCCT += cf.Weight * e.completion[id]
		e.weightedResponse += cf.Weight * response
		if e.gammas[id] > 0 {
			e.slowdowns.add(response / e.gammas[id])
		}
		for j := range cf.Flows {
			// Forget only errors on unknown/unfinished flows; every flow of
			// a completed coflow is done by construction.
			_ = e.sim.Forget(coflow.FlowRef{Coflow: id, Index: j})
		}
		e.handles[id] = nil // handles dangle once the flows are forgotten
		e.churnPos[id] = nil
		e.recentDone = append(e.recentDone, id)
		closed = true
	}
	if closed {
		stillActive := e.active[:0]
		for _, id := range e.active {
			if e.flowsLeft[id] > 0 {
				stillActive = append(stillActive, id)
			}
		}
		e.active = stillActive
	}
}

// CoflowStatus reports the current state of one admitted coflow.
func (e *Engine) CoflowStatus(id int) (CoflowStatus, bool) {
	if id < 0 || id >= len(e.inst.Coflows) {
		return CoflowStatus{}, false
	}
	cf := e.inst.Coflows[id]
	st := CoflowStatus{
		ID:         id,
		Name:       cf.Name,
		Weight:     cf.Weight,
		Arrival:    e.arrivals[id],
		NumFlows:   len(cf.Flows),
		TotalBytes: e.totalBytes[id],
	}
	if e.flowsLeft[id] == 0 {
		// Completed and pruned from the simulator; answer from the registry.
		st.FlowsDone = st.NumFlows
		st.Done = true
		st.Completion = e.completion[id]
		st.Response = st.Completion - st.Arrival
		if e.gammas[id] > 0 {
			st.Slowdown = st.Response / e.gammas[id]
		}
		return st, true
	}
	// Count done flows from the registry, not the simulator: a restored
	// engine re-registers only the live flows of an active coflow, so its
	// simulator never sees the flows that finished before the snapshot.
	st.FlowsDone = st.NumFlows - e.flowsLeft[id]
	hs := e.handles[id]
	for j := range cf.Flows {
		if hs == nil || !hs[j].Valid() {
			continue
		}
		fs := e.sim.HandleStatus(hs[j])
		if fs.Done {
			continue
		}
		st.RemainingBytes += fs.Remaining
	}
	return st, true
}

// Stats reports the engine's aggregate counters. The slices are copies.
func (e *Engine) Stats() EngineStats {
	return EngineStats{
		Now:              e.now,
		Epochs:           e.epoch,
		Decisions:        e.decisions,
		Admitted:         len(e.inst.Coflows),
		Completed:        e.completedCoflows,
		Active:           len(e.inst.Coflows) - e.completedCoflows,
		ActiveFlows:      e.totalFlows - e.doneFlows,
		WeightedCCT:      e.weightedCCT,
		WeightedResponse: e.weightedResponse,
		Slowdowns:        e.slowdowns.snapshot(),
		SolveLatencies:   e.solveLatencies.snapshot(),
	}
}

// DecideSync takes a snapshot, runs the policy synchronously and applies the
// resulting order. Idle snapshots (no residual coflows) apply nothing. The
// snapshot arena is reused across calls (snapshotInto), which the Policy
// contract makes safe: Decide must not retain the snapshot after returning.
func (e *Engine) DecideSync() error {
	snap := &e.snapScratch
	e.snapshotInto(snap)
	if len(snap.Coflows) == 0 {
		return nil
	}
	t0 := time.Now()
	order, err := e.policy.Decide(snap)
	if err != nil {
		return err
	}
	return e.ApplyOrder(order, time.Since(t0))
}

// Drain runs decide/advance epochs until every admitted flow completes,
// advancing simulated time as far as needed. It is the graceful-shutdown
// path: no new work is admitted by the caller, and the transcript ends with
// every in-flight coflow finished. The epoch budget guards against a policy
// that starves some flow forever.
func (e *Engine) Drain() error {
	if e.Done() {
		return nil
	}
	// Residual volume over the slowest link bounds the remaining busy time;
	// idle gaps before future releases add at most the latest release.
	minCap := e.inst.Network.MinCapacity()
	if minCap <= 0 {
		minCap = 1
	}
	remaining := 0.0
	latestRelease := e.now
	for _, fs := range e.sim.Residuals() {
		remaining += fs.Remaining
		if fs.Release > latestRelease {
			latestRelease = fs.Release
		}
	}
	horizon := (latestRelease - e.now) + remaining/minCap
	maxEpochs := int(horizon/e.cfg.EpochLength)*10 + 1000
	for i := 0; !e.Done(); i++ {
		if i > maxEpochs {
			return fmt.Errorf("online: drain exceeded %d epochs (starving flow?)", maxEpochs)
		}
		if err := e.DecideSync(); err != nil {
			return err
		}
		if err := e.AdvanceTo(e.now + e.cfg.EpochLength); err != nil {
			return err
		}
	}
	return nil
}
