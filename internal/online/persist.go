package online

import (
	"fmt"
	"math"

	"coflowsched/internal/coflow"
	"coflowsched/internal/graph"
	"coflowsched/internal/sim"
)

// This file is the engine's persistence surface: ExportState captures
// everything a restarted daemon needs to resume scheduling its
// admitted-but-incomplete coflows, and RestoreEngine rebuilds a live engine
// from it. The design invariant is exact resumption: a restored engine makes
// the same routing and ordering decisions as the original would have, because
//
//   - admission routing reads only the cumulative admitted load (Load), which
//     is persisted verbatim (it is never decremented, so replayed admissions
//     route identically);
//   - every shipped policy ranks residual flows by remaining volume, path and
//     arrival — none reads a flow's original size — so re-registering each
//     live flow with Size = Remaining preserves decisions exactly;
//   - slowdown denominators (Gamma) are persisted, not recomputed, since the
//     restored simulator no longer knows the original volumes.
//
// One deliberate asymmetry: flows that were admitted after the original
// engine's last applied order carry an "admitted, unranked" rank there, while
// a restored engine folds them into the same trailing rank class as any other
// unlisted flow. Both classes sort after every listed flow and tie-break by
// flow reference, so schedules agree whenever decisions cover all active
// flows (every synchronous decide does); only a mid-solve crash interleaving
// both classes can transiently differ until the next decision lands.
type EngineState struct {
	Now   float64 `json:"now"`
	Epoch int     `json:"epoch"`

	Decisions        int       `json:"decisions"`
	CompletedCoflows int       `json:"completed_coflows"`
	DoneFlows        int       `json:"done_flows"`
	TotalFlows       int       `json:"total_flows"`
	WeightedCCT      float64   `json:"weighted_cct"`
	WeightedResponse float64   `json:"weighted_response"`
	LastChurn        float64   `json:"last_churn"`
	Slowdowns        []float64 `json:"slowdowns,omitempty"`
	SolveLatencies   []float64 `json:"solve_latencies,omitempty"`

	// Load is the cumulative admitted volume per edge (indexed by edge id).
	Load []float64 `json:"load"`
	// Order is the applied priority order, restricted to live flows.
	Order []coflow.FlowRef `json:"order,omitempty"`
	// Coflows is the per-coflow registry, indexed by coflow id.
	Coflows []CoflowPersist `json:"coflows"`
}

// CoflowPersist is one admitted coflow's registry entry. Completed coflows
// keep only their aggregates (name, completion, totals); active coflows also
// carry their live flows' residuals.
type CoflowPersist struct {
	Name       string  `json:"name,omitempty"`
	Weight     float64 `json:"weight"`
	Arrival    float64 `json:"arrival"`
	Gamma      float64 `json:"gamma"`
	TotalBytes float64 `json:"total_bytes"`
	Completion float64 `json:"completion"`
	NumFlows   int     `json:"num_flows"`
	FlowsLeft  int     `json:"flows_left"`
	// Flows holds the unfinished flows (FlowsLeft entries); finished flows of
	// an active coflow are represented only through the counters.
	Flows []FlowPersist `json:"flows,omitempty"`
}

// FlowPersist is one live flow's residual state.
type FlowPersist struct {
	// Index is the flow's position within its coflow.
	Index  int          `json:"index"`
	Source graph.NodeID `json:"source"`
	Dest   graph.NodeID `json:"dest"`
	// Size is the originally admitted volume (kept for registry fidelity;
	// scheduling after restore runs on Remaining).
	Size float64 `json:"size"`
	// Release is the absolute release time assigned at admission.
	Release float64 `json:"release"`
	// Remaining is the residual volume at export time.
	Remaining float64    `json:"remaining"`
	Path      graph.Path `json:"path"`
}

// residualFloor keeps a persisted residual strictly positive: the simulator's
// completion-tolerance corner can leave a flow projecting to exactly zero one
// event before it is marked done, and AddFlow rejects zero-volume flows. The
// floor is far inside the completion tolerance band, so the restored flow
// finishes at the restore clock within the 1e-9 equivalence the differential
// harness asserts.
const residualFloor = 1e-12

// ExportState captures the engine's durable state. Must be called on the
// goroutine that owns the engine. The returned state shares nothing with the
// engine.
func (e *Engine) ExportState() *EngineState {
	st := &EngineState{
		Now:              e.now,
		Epoch:            e.epoch,
		Decisions:        e.decisions,
		CompletedCoflows: e.completedCoflows,
		DoneFlows:        e.doneFlows,
		TotalFlows:       e.totalFlows,
		WeightedCCT:      e.weightedCCT,
		WeightedResponse: e.weightedResponse,
		LastChurn:        e.lastChurn,
		Slowdowns:        e.slowdowns.snapshot(),
		SolveLatencies:   e.solveLatencies.snapshot(),
		Load:             append([]float64(nil), e.load...),
		Order:            append([]coflow.FlowRef(nil), e.order...),
	}
	st.Coflows = make([]CoflowPersist, len(e.inst.Coflows))
	for id := range e.inst.Coflows {
		cf := &e.inst.Coflows[id]
		cp := CoflowPersist{
			Name:       cf.Name,
			Weight:     cf.Weight,
			Arrival:    e.arrivals[id],
			Gamma:      e.gammas[id],
			TotalBytes: e.totalBytes[id],
			Completion: e.completion[id],
			NumFlows:   len(cf.Flows),
			FlowsLeft:  e.flowsLeft[id],
		}
		if e.flowsLeft[id] > 0 {
			for j := range cf.Flows {
				f := &cf.Flows[j]
				fs, ok := e.sim.Status(coflow.FlowRef{Coflow: id, Index: j})
				if !ok || fs.Done {
					continue
				}
				rem := fs.Remaining
				if floor := residualFloor * f.Size; rem < floor {
					rem = floor
				}
				cp.Flows = append(cp.Flows, FlowPersist{
					Index:     j,
					Source:    f.Source,
					Dest:      f.Dest,
					Size:      f.Size,
					Release:   f.Release,
					Remaining: rem,
					Path:      fs.Path,
				})
			}
		}
		st.Coflows[id] = cp
	}
	return st
}

// RestoreEngine rebuilds a live engine from an exported state over the same
// network, policy and configuration the original ran with. Live flows are
// re-registered with their residual volume as their size, released no earlier
// than the restored clock (the new simulator's timeline starts empty, and a
// release in its past would re-transfer volume the original already moved).
// The persisted order is re-applied without counting as a decision.
func RestoreEngine(g *graph.Graph, policy Policy, cfg Config, st *EngineState) (*Engine, error) {
	e, err := NewEngine(g, policy, cfg)
	if err != nil {
		return nil, err
	}
	if st == nil {
		return nil, fmt.Errorf("online: restore needs a state")
	}
	if len(st.Load) != g.NumEdges() {
		return nil, fmt.Errorf("online: restored load has %d edges, network has %d (topology changed?)", len(st.Load), g.NumEdges())
	}
	if math.IsNaN(st.Now) || math.IsInf(st.Now, 0) || st.Now < 0 {
		return nil, fmt.Errorf("online: restored clock %v is invalid", st.Now)
	}
	for id := range st.Coflows {
		cp := &st.Coflows[id]
		if cp.NumFlows <= 0 {
			return nil, fmt.Errorf("online: restored coflow %d has %d flows", id, cp.NumFlows)
		}
		if cp.FlowsLeft < 0 || cp.FlowsLeft > cp.NumFlows {
			return nil, fmt.Errorf("online: restored coflow %d has %d of %d flows left", id, cp.FlowsLeft, cp.NumFlows)
		}
		if cp.FlowsLeft != len(cp.Flows) {
			return nil, fmt.Errorf("online: restored coflow %d lists %d live flows but counts %d left", id, len(cp.Flows), cp.FlowsLeft)
		}
		admitted := coflow.Coflow{Name: cp.Name, Weight: cp.Weight, Flows: make([]coflow.Flow, cp.NumFlows)}
		for k := range cp.Flows {
			fp := &cp.Flows[k]
			if fp.Index < 0 || fp.Index >= cp.NumFlows {
				return nil, fmt.Errorf("online: restored coflow %d flow index %d out of range", id, fp.Index)
			}
			if fp.Remaining <= 0 || math.IsNaN(fp.Remaining) || math.IsInf(fp.Remaining, 0) {
				return nil, fmt.Errorf("online: restored coflow %d flow %d has residual %v", id, fp.Index, fp.Remaining)
			}
			if err := fp.Path.Validate(g, fp.Source, fp.Dest); err != nil {
				return nil, fmt.Errorf("online: restored coflow %d flow %d path: %w", id, fp.Index, err)
			}
			admitted.Flows[fp.Index] = coflow.Flow{
				Source:  fp.Source,
				Dest:    fp.Dest,
				Size:    fp.Size,
				Release: fp.Release,
				Path:    fp.Path,
			}
		}
		e.inst.Coflows = append(e.inst.Coflows, admitted)
		e.arrivals = append(e.arrivals, cp.Arrival)
		e.gammas = append(e.gammas, cp.Gamma)
		e.flowsLeft = append(e.flowsLeft, cp.FlowsLeft)
		e.completion = append(e.completion, cp.Completion)
		e.totalBytes = append(e.totalBytes, cp.TotalBytes)
		if cp.FlowsLeft > 0 {
			e.active = append(e.active, id)
		}
		var hs []sim.Handle
		if cp.FlowsLeft > 0 {
			hs = make([]sim.Handle, cp.NumFlows)
		}
		for k := range cp.Flows {
			fp := &cp.Flows[k]
			release := fp.Release
			if release < st.Now {
				release = st.Now
			}
			ref := coflow.FlowRef{Coflow: id, Index: fp.Index}
			reg := coflow.Flow{
				Source:  fp.Source,
				Dest:    fp.Dest,
				Size:    fp.Remaining,
				Release: release,
				Path:    fp.Path,
			}
			if err := e.sim.AddFlow(ref, reg, fp.Path); err != nil {
				return nil, fmt.Errorf("online: re-registering coflow %d flow %d: %w", id, fp.Index, err)
			}
			h, ok := e.sim.Handle(ref)
			if !ok {
				return nil, fmt.Errorf("online: re-registered coflow %d flow %d has no simulator state", id, fp.Index)
			}
			hs[fp.Index] = h
		}
		// Completed coflows get a nil handle row; flows of an active coflow
		// that finished before the snapshot keep zero (invalid) handles.
		e.handles = append(e.handles, hs)
		var cpos []uint64
		if cp.FlowsLeft > 0 {
			cpos = make([]uint64, cp.NumFlows)
		}
		e.churnPos = append(e.churnPos, cpos)
	}
	e.load = append(e.load[:0], st.Load...)
	e.now = st.Now
	e.epoch = st.Epoch
	e.decisions = st.Decisions
	e.completedCoflows = st.CompletedCoflows
	e.doneFlows = st.DoneFlows
	e.totalFlows = st.TotalFlows
	e.weightedCCT = st.WeightedCCT
	e.weightedResponse = st.WeightedResponse
	e.lastChurn = st.LastChurn
	for _, v := range boundWindow(st.Slowdowns) {
		e.slowdowns.add(v)
	}
	for _, v := range boundWindow(st.SolveLatencies) {
		e.solveLatencies.add(v)
	}
	if len(st.Order) > 0 {
		live := make([]coflow.FlowRef, 0, len(st.Order))
		for _, r := range st.Order {
			if _, ok := e.sim.Status(r); ok {
				live = append(live, r)
			}
		}
		if err := e.sim.SetOrder(live); err != nil {
			return nil, fmt.Errorf("online: re-applying restored order: %w", err)
		}
		e.order = live
	}
	return e, nil
}

// boundWindow truncates a restored reservoir to the engine's window (oldest
// dropped first).
func boundWindow(vals []float64) []float64 {
	if len(vals) > statsWindow {
		return vals[len(vals)-statsWindow:]
	}
	return vals
}
