package online

import (
	"sync/atomic"
	"testing"
	"time"

	"coflowsched/internal/coflow"
)

// barrierPolicy's Decide blocks until `need` Decide calls are running
// simultaneously, proving the pool really executes jobs concurrently.
type barrierPolicy struct {
	need    int32
	running *int32
	release chan struct{}
}

func (barrierPolicy) Name() string { return "Barrier" }
func (p barrierPolicy) Decide(*Snapshot) ([]coflow.FlowRef, error) {
	if atomic.AddInt32(p.running, 1) == p.need {
		close(p.release)
	}
	<-p.release
	return nil, nil
}

func TestPoolRunsJobsConcurrently(t *testing.T) {
	p := NewPool(2)
	defer p.Close()
	var running int32
	policy := barrierPolicy{need: 2, running: &running, release: make(chan struct{})}
	a := p.submit(policy, &Snapshot{Epoch: 0})
	b := p.submit(policy, &Snapshot{Epoch: 1})
	for i, ch := range []<-chan decision{a, b} {
		select {
		case d := <-ch:
			if d.err != nil {
				t.Fatalf("job %d: %v", i, d.err)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("job %d deadlocked: pool did not run 2 jobs concurrently", i)
		}
	}
}

func TestPoolRecordsTimingsAndEpoch(t *testing.T) {
	p := NewPool(1)
	defer p.Close()
	d := <-p.submit(slowAsyncPolicy{delay: 5 * time.Millisecond}, &Snapshot{Epoch: 7})
	if d.err != nil {
		t.Fatalf("decide: %v", d.err)
	}
	if d.snapEpoch != 7 {
		t.Errorf("snapEpoch = %d, want 7", d.snapEpoch)
	}
	if d.end.Sub(d.start) < 5*time.Millisecond {
		t.Errorf("recorded solve duration %v shorter than the sleep", d.end.Sub(d.start))
	}
	if p.Close(); true { // double close is safe
		p.Close()
	}
}
