package online

import (
	"sync"
	"time"

	"coflowsched/internal/coflow"
)

// decision is the outcome of one asynchronous Decide call, with the
// wall-clock bounds of the solve for latency accounting and the overlap
// test.
type decision struct {
	order []coflow.FlowRef
	err   error
	// snapEpoch is the epoch of the snapshot the decision was computed from.
	snapEpoch int
	// submitted..end is the solve's in-flight window (enqueue to finish);
	// start..end is the execution alone.
	submitted time.Time
	start     time.Time
	end       time.Time
	// replayed marks a cold-start decision being reused for the following
	// epoch: its latency was already accounted for when it ran
	// synchronously, so the replay must not count it again.
	replayed bool
}

// Pool is a fixed-size worker pool for asynchronous policy solves. Each Run
// keeps at most one solve in flight, so a private pool only ever uses one
// worker; the point of a shared Pool (Config.Pool) is to bound total solver
// parallelism when many runs coexist in one process, as OnlineSweep does.
type Pool struct {
	jobs chan func()
	wg   sync.WaitGroup
	once sync.Once
}

// NewPool starts n workers (minimum 1). Callers owning a Pool must Close it.
func NewPool(n int) *Pool {
	if n < 1 {
		n = 1
	}
	p := &Pool{jobs: make(chan func())}
	p.wg.Add(n)
	for i := 0; i < n; i++ {
		go func() {
			defer p.wg.Done()
			for job := range p.jobs {
				job()
			}
		}()
	}
	return p
}

// submit schedules a Decide call against snap and returns a channel that
// will receive exactly one decision.
func (p *Pool) submit(policy Policy, snap *Snapshot) <-chan decision {
	out := make(chan decision, 1)
	submitted := time.Now()
	p.jobs <- func() {
		d := decision{snapEpoch: snap.Epoch, submitted: submitted, start: time.Now()}
		d.order, d.err = policy.Decide(snap)
		d.end = time.Now()
		out <- d
	}
	return out
}

// resolved wraps an already-computed decision as a pending channel, letting
// the engine reuse a synchronous cold-start solve as the next epoch's
// pipelined decision instead of re-solving the same snapshot.
func resolved(d decision) <-chan decision {
	d.replayed = true
	out := make(chan decision, 1)
	out <- d
	return out
}

// Close shuts the pool down after all submitted jobs finish. Safe to call
// more than once.
func (p *Pool) Close() {
	p.once.Do(func() { close(p.jobs) })
	p.wg.Wait()
}
