package online

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"coflowsched/internal/coflow"
	"coflowsched/internal/graph"
	"coflowsched/internal/sim"
	"coflowsched/internal/workload"
)

// Config parameterizes an online run.
type Config struct {
	// EpochLength is the time between policy re-decisions. Required > 0.
	EpochLength float64
	// Workers sizes the private solver pool created when Pool is nil. A
	// single run keeps at most one solve in flight, so values above 1 only
	// matter for a shared Pool.
	Workers int
	// Pool, when non-nil, is a shared solver pool bounding total solve
	// parallelism across concurrent runs in this process (see OnlineSweep).
	// The caller owns it and must Close it; Run will not.
	Pool *Pool
	// Seed drives any randomness a policy needs (e.g. the Oracle's offline
	// scheduler). The epoch loop itself is deterministic.
	Seed int64
	// CandidatePaths bounds the admission-time routing's candidate set
	// (default 4, matching the offline schedulers).
	CandidatePaths int
	// Partitions > 1 runs the incremental engine's simulator core on the
	// pod-partitioned parallel allocator, coalescing the network's natural
	// pod partition to at most this many classes. 0 or 1 selects the
	// sequential core. Results are bit-identical either way; this is purely
	// a wall-clock knob. Only NewEngine honors it — the batch Run path
	// always uses the sequential core.
	Partitions int
}

func (c Config) withDefaults() Config {
	if c.Workers < 1 {
		c.Workers = 1
	}
	if c.CandidatePaths < 1 {
		c.CandidatePaths = 4
	}
	return c
}

// EpochStat records one epoch of the run: the simulated span, how much work
// was visible, and the latency of the policy decision applied during it.
type EpochStat struct {
	// Epoch is the epoch index; the simulated span is [Start, End).
	Epoch int
	Start float64
	End   float64
	// ActiveFlows counts residual flows visible at the epoch boundary.
	ActiveFlows int
	// SnapshotEpoch is the epoch whose snapshot produced the order applied
	// in this epoch. Equal to Epoch for synchronous policies; Epoch-1 under
	// pipelining (the one-epoch staleness bought by overlapping solves).
	// -1 when no decision was applied (idle epoch or carried-over order).
	SnapshotEpoch int
	// SolveLatency is the wall-clock duration of the applied Decide call.
	SolveLatency time.Duration
	// SolveOverlap is how much of the applied solve's in-flight window
	// (submission to completion on the worker pool) ran concurrently with
	// the simulation of the epoch it was submitted in (zero for synchronous
	// decisions). Positive values demonstrate the solve/simulate pipeline.
	SolveOverlap time.Duration
}

// Result is the outcome of an online run.
type Result struct {
	Policy string
	// Schedule is the full transcript, feasible for the original instance.
	Schedule *coflow.CircuitSchedule
	// WeightedCCT is the total weighted coflow completion time (absolute
	// clock, comparable with the offline objective).
	WeightedCCT float64
	// WeightedResponse is the total weighted response time,
	// sum w_i (C_i - arrival_i) — the online-native objective.
	WeightedResponse float64
	// Makespan is the completion time of the last flow.
	Makespan float64
	// CoflowArrival, CoflowCompletion and Slowdown are indexed by coflow.
	// Slowdown is response time over the coflow's isolated bottleneck time
	// (its Varys "length" Γ with the admission routing).
	CoflowArrival    []float64
	CoflowCompletion []float64
	Slowdown         []float64
	// Epochs is the per-epoch log.
	Epochs []EpochStat
}

// SolveLatencies returns the per-epoch solve latencies in seconds, for
// percentile reporting. Each Decide call contributes exactly once: epochs
// that replayed a cold-start decision carry no latency of their own.
func (r *Result) SolveLatencies() []float64 {
	var out []float64
	for _, e := range r.Epochs {
		if e.SnapshotEpoch >= 0 && e.SolveLatency > 0 {
			out = append(out, e.SolveLatency.Seconds())
		}
	}
	return out
}

// TotalSolveOverlap sums the solve time that ran concurrently with
// simulation across the run.
func (r *Result) TotalSolveOverlap() time.Duration {
	var d time.Duration
	for _, e := range r.Epochs {
		d += e.SolveOverlap
	}
	return d
}

// wallSpan records the wall-clock interval of one epoch's simulation.
type wallSpan struct{ start, end time.Time }

// Run streams the instance through the epoch loop under the given policy.
// The instance must contain at least one coflow; release times are the
// arrival process (see workload.GenerateArrivals). Determinism: two Runs
// with the same instance, policy, config and seed produce identical
// schedules — solve pipelining changes wall-clock timings only, because the
// decision applied in epoch k is always the one computed from the snapshot
// at epoch k-1, regardless of how fast the solver ran.
func Run(inst *coflow.Instance, policy Policy, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	if cfg.EpochLength <= 0 {
		return nil, fmt.Errorf("online: epoch length must be positive, got %v", cfg.EpochLength)
	}
	if err := inst.Validate(false); err != nil {
		return nil, err
	}

	paths, err := routeArrivals(inst, cfg.CandidatePaths)
	if err != nil {
		return nil, err
	}
	arrivals := workload.Arrivals(inst)

	if p, ok := policy.(Preparer); ok {
		rng := rand.New(rand.NewSource(cfg.Seed + 1))
		if err := p.Prepare(inst, paths, rng); err != nil {
			return nil, err
		}
	}

	simulator, err := sim.New(inst, sim.Config{Paths: paths, Policy: sim.Priority})
	if err != nil {
		return nil, err
	}

	async := false
	if ap, ok := policy.(AsyncPolicy); ok {
		async = ap.Async()
	}
	var workers *Pool
	var pending <-chan decision
	if async {
		workers = cfg.Pool
		owned := workers == nil
		if owned {
			workers = NewPool(cfg.Workers)
		}
		defer func() {
			if pending != nil {
				<-pending // drain the in-flight solve before tearing down
			}
			if owned {
				workers.Close()
			}
		}()
	}

	// Epochs are aligned to the first arrival; earlier time is empty.
	now := arrivals[0]
	for _, a := range arrivals {
		if a < now {
			now = a
		}
	}
	maxEpochs := int(inst.TimeHorizon()/cfg.EpochLength)*10 + 1000
	simSpans := map[int]wallSpan{}
	var stats []EpochStat

	for epoch := 0; !simulator.Done(); epoch++ {
		if epoch > maxEpochs {
			return nil, fmt.Errorf("online: exceeded %d epochs (epoch length %v too small for horizon?)", maxEpochs, cfg.EpochLength)
		}
		snap := snapshot(inst, arrivals, simulator, now, epoch)
		st := EpochStat{Epoch: epoch, Start: now, End: now + cfg.EpochLength,
			ActiveFlows: snap.NumFlows(), SnapshotEpoch: -1}

		var applied []coflow.FlowRef
		haveDecision := false
		switch {
		case async && pending != nil:
			d := <-pending
			pending = nil
			if d.err != nil {
				return nil, d.err
			}
			applied, haveDecision = d.order, true
			st.SnapshotEpoch = d.snapEpoch
			if !d.replayed {
				// A replayed cold-start solve was already accounted for in
				// the epoch it ran; counting it again would skew latency
				// percentiles.
				st.SolveLatency = d.end.Sub(d.start)
			}
			if span, ok := simSpans[d.snapEpoch]; ok {
				st.SolveOverlap = overlap(d.submitted, d.end, span.start, span.end)
			}
			// Pipeline: kick off the next solve before simulating this
			// epoch, so the two run concurrently on the worker pool.
			if len(snap.Coflows) > 0 {
				pending = workers.submit(policy, snap)
			}
		case async && len(snap.Coflows) > 0:
			// Cold start (first non-empty epoch, or the pipeline drained
			// during an idle stretch): solve synchronously, and reuse the
			// result as the next epoch's pipelined decision — Decide is
			// deterministic, so re-solving the same snapshot would only
			// burn a duplicate solve.
			t0 := time.Now()
			order, err := policy.Decide(snap)
			end := time.Now()
			if err != nil {
				return nil, err
			}
			applied, haveDecision = order, true
			st.SnapshotEpoch = epoch
			st.SolveLatency = end.Sub(t0)
			pending = resolved(decision{
				order: order, snapEpoch: epoch, submitted: t0, start: t0, end: end,
			})
		case len(snap.Coflows) > 0:
			// Synchronous decision on fresh state (cheap policies).
			t0 := time.Now()
			order, err := policy.Decide(snap)
			if err != nil {
				return nil, err
			}
			applied, haveDecision = order, true
			st.SnapshotEpoch = epoch
			st.SolveLatency = time.Since(t0)
		}
		if haveDecision {
			if err := simulator.SetOrder(applied); err != nil {
				return nil, fmt.Errorf("online: %s epoch %d: %w", policy.Name(), epoch, err)
			}
		}

		span := wallSpan{start: time.Now()}
		err := simulator.RunUntil(now + cfg.EpochLength)
		span.end = time.Now()
		if err != nil {
			return nil, err
		}
		simSpans[epoch] = span
		stats = append(stats, st)
		now += cfg.EpochLength
	}

	return buildResult(inst, policy, paths, arrivals, simulator, stats)
}

// snapshot captures the policy-visible residual state at time now.
func snapshot(inst *coflow.Instance, arrivals []float64, s *sim.Simulator, now float64, epoch int) *Snapshot {
	residuals := s.Residuals()
	byRef := make(map[coflow.FlowRef]sim.FlowStatus, len(residuals))
	for _, fs := range residuals {
		byRef[fs.Ref] = fs
	}
	snap := &Snapshot{Now: now, Epoch: epoch, Network: inst.Network}
	for i, cf := range inst.Coflows {
		if arrivals[i] > now+1e-15 {
			continue // not arrived: invisible to the policy
		}
		rcf := ResidualCoflow{Index: i, Name: cf.Name, Weight: cf.Weight, Arrival: arrivals[i]}
		for j, f := range cf.Flows {
			ref := coflow.FlowRef{Coflow: i, Index: j}
			fs := byRef[ref]
			if fs.Done {
				continue
			}
			rcf.Flows = append(rcf.Flows, ResidualFlow{
				Ref:       ref,
				Source:    f.Source,
				Dest:      f.Dest,
				Path:      fs.Path,
				Release:   f.Release,
				Size:      fs.Size,
				Remaining: fs.Remaining,
			})
		}
		if len(rcf.Flows) > 0 {
			snap.Coflows = append(snap.Coflows, rcf)
		}
	}
	return snap
}

// buildResult scores the completed run.
func buildResult(inst *coflow.Instance, policy Policy, paths map[coflow.FlowRef]graph.Path,
	arrivals []float64, s *sim.Simulator, stats []EpochStat) (*Result, error) {

	cs := s.Schedule()
	completion := inst.CoflowCompletionTimes(cs.CompletionTimes())
	res := &Result{
		Policy:           policy.Name(),
		Schedule:         cs,
		WeightedCCT:      cs.Objective(inst),
		Makespan:         cs.Makespan(),
		CoflowArrival:    arrivals,
		CoflowCompletion: completion,
		Slowdown:         make([]float64, len(inst.Coflows)),
		Epochs:           stats,
	}
	for i, cf := range inst.Coflows {
		res.WeightedResponse += cf.Weight * (completion[i] - arrivals[i])
		gamma := coflowLength(inst, i, paths)
		if gamma > 0 {
			res.Slowdown[i] = (completion[i] - arrivals[i]) / gamma
		}
	}
	return res, nil
}

// coflowLength is the coflow's isolated bottleneck time Γ under the
// admission routing: a coflow running alone on the network cannot finish
// faster.
func coflowLength(inst *coflow.Instance, i int, paths map[coflow.FlowRef]graph.Path) float64 {
	loads := make([]graph.PathLoad, len(inst.Coflows[i].Flows))
	for j, f := range inst.Coflows[i].Flows {
		loads[j] = graph.PathLoad{Path: paths[coflow.FlowRef{Coflow: i, Index: j}], Volume: f.Size}
	}
	return inst.Network.BottleneckTime(loads)
}

// routeArrivals fixes one path per flow at admission time: flows are
// processed in release order (what an online admitter sees) and each takes
// the candidate path minimizing the resulting size-weighted bottleneck load.
// Pre-assigned paths are respected. Unlike the offline load balancer in
// internal/baselines, the greedy order is causal — no future knowledge.
func routeArrivals(inst *coflow.Instance, candidatePaths int) (map[coflow.FlowRef]graph.Path, error) {
	refs := inst.FlowRefs()
	sort.SliceStable(refs, func(a, b int) bool {
		fa, fb := inst.Flow(refs[a]), inst.Flow(refs[b])
		if fa.Release != fb.Release {
			return fa.Release < fb.Release
		}
		if refs[a].Coflow != refs[b].Coflow {
			return refs[a].Coflow < refs[b].Coflow
		}
		return refs[a].Index < refs[b].Index
	})
	load := make([]float64, inst.Network.NumEdges())
	paths := make(map[coflow.FlowRef]graph.Path, len(refs))
	for _, ref := range refs {
		chosen, err := routeFlow(inst.Network, load, inst.Flow(ref), candidatePaths)
		if err != nil {
			return nil, fmt.Errorf("online: flow %s: %w", ref, err)
		}
		paths[ref] = chosen
	}
	return paths, nil
}

// routeFlow picks the candidate path for one flow minimizing the resulting
// size-weighted bottleneck load given the volume admitted so far, then
// charges the flow's volume to the chosen path in load. Pre-assigned paths
// are respected. Shared by the batch admitter above and the incremental
// Engine, which both see flows causally, in admission order.
func routeFlow(g *graph.Graph, load []float64, f *coflow.Flow, candidatePaths int) (graph.Path, error) {
	var cands []graph.Path
	if f.Path != nil {
		cands = []graph.Path{f.Path}
	} else {
		cands = g.KShortestPaths(f.Source, f.Dest, candidatePaths)
	}
	return pickPath(g, load, f, cands)
}

// pickPath is routeFlow's selection step over an explicit candidate set (the
// incremental Engine supplies memoized candidates).
func pickPath(g *graph.Graph, load []float64, f *coflow.Flow, cands []graph.Path) (graph.Path, error) {
	if len(cands) == 0 {
		return nil, fmt.Errorf("no path from %d to %d", f.Source, f.Dest)
	}
	bestIdx := 0
	bestMax, bestSum := -1.0, 0.0
	for i, p := range cands {
		maxLoad, sumLoad := 0.0, 0.0
		for _, e := range p {
			l := (load[e] + f.Size) / g.Capacity(e)
			sumLoad += l
			if l > maxLoad {
				maxLoad = l
			}
		}
		if bestMax < 0 || maxLoad < bestMax-1e-12 ||
			(maxLoad < bestMax+1e-12 && sumLoad < bestSum-1e-12) {
			bestMax, bestSum = maxLoad, sumLoad
			bestIdx = i
		}
	}
	chosen := cands[bestIdx]
	for _, e := range chosen {
		load[e] += f.Size
	}
	return chosen, nil
}

// overlap returns the length of the intersection of [a0,a1] and [b0,b1].
func overlap(a0, a1, b0, b1 time.Time) time.Duration {
	start := a0
	if b0.After(start) {
		start = b0
	}
	end := a1
	if b1.Before(end) {
		end = b1
	}
	if end.Before(start) {
		return 0
	}
	return end.Sub(start)
}
