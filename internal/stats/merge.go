package stats

import (
	"math"
	"sort"
)

// MergeSamples merges several bounded sample reservoirs into one reservoir of
// at most limit samples, preserving the pooled distribution: percentiles of
// the merged output approximate percentiles of the concatenation of every
// group, with each group contributing proportionally to its size.
//
// When the pooled sample count fits within limit the groups are simply
// concatenated (the merge is then exact). Otherwise each group is reduced to
// its share of the budget by taking evenly spaced order statistics (with
// linear interpolation, the same estimator Percentile uses), so a group's
// quantile structure survives the downsampling. The result is deterministic.
//
// A limit <= 0 means unbounded (plain concatenation). The inputs are not
// modified.
func MergeSamples(limit int, groups ...[]float64) []float64 {
	total := 0
	for _, g := range groups {
		total += len(g)
	}
	if total == 0 {
		return nil
	}
	if limit <= 0 || total <= limit {
		out := make([]float64, 0, total)
		for _, g := range groups {
			out = append(out, g...)
		}
		return out
	}
	out := make([]float64, 0, limit)
	remCap, remTotal := limit, total
	for _, g := range groups {
		if len(g) == 0 {
			continue
		}
		// Sequential proportional allocation: rounding error flows into the
		// remaining groups instead of accumulating, and every non-empty group
		// keeps at least one sample while budget remains.
		k := int(math.Round(float64(remCap) * float64(len(g)) / float64(remTotal)))
		if k < 1 {
			k = 1
		}
		if k > remCap {
			k = remCap
		}
		remTotal -= len(g)
		remCap -= k
		if k == 0 {
			continue
		}
		s := append([]float64(nil), g...)
		sort.Float64s(s)
		for i := 0; i < k; i++ {
			// Mid-quantile positions (i+0.5)/k spread the k picks across the
			// group's whole range without over-weighting the extremes.
			pos := (float64(i) + 0.5) / float64(k) * float64(len(s)-1)
			lo := int(math.Floor(pos))
			hi := int(math.Ceil(pos))
			if lo == hi {
				out = append(out, s[lo])
			} else {
				frac := pos - float64(lo)
				out = append(out, s[lo]*(1-frac)+s[hi]*frac)
			}
		}
	}
	return out
}
