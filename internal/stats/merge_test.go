package stats

import (
	"math"
	"math/rand"
	"testing"
)

// TestMergeSamplesExactWhenUnderLimit: groups that fit the budget concatenate,
// so merged percentiles equal pooled percentiles exactly.
func TestMergeSamplesExactWhenUnderLimit(t *testing.T) {
	cases := []struct {
		name   string
		limit  int
		groups [][]float64
	}{
		{"two small groups", 100, [][]float64{{3, 1, 2}, {10, 20}}},
		{"single group", 10, [][]float64{{5, 4, 3, 2, 1}}},
		{"unbounded", 0, [][]float64{{1, 2}, {3, 4}, {5, 6}}},
		{"empty groups interleaved", 100, [][]float64{nil, {1, 2, 3}, {}, {4}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var pooled []float64
			for _, g := range tc.groups {
				pooled = append(pooled, g...)
			}
			merged := MergeSamples(tc.limit, tc.groups...)
			if len(merged) != len(pooled) {
				t.Fatalf("merged %d samples, want %d", len(merged), len(pooled))
			}
			for _, p := range []float64{0, 25, 50, 90, 99, 100} {
				got, want := Percentile(merged, p), Percentile(pooled, p)
				if got != want {
					t.Errorf("p%v = %v, want %v", p, got, want)
				}
			}
		})
	}
}

// TestMergeSamplesEmpty: no samples anywhere merges to nothing (the NaN
// percentile contract of empty reservoirs is preserved, not masked).
func TestMergeSamplesEmpty(t *testing.T) {
	if got := MergeSamples(10); got != nil {
		t.Fatalf("MergeSamples() = %v, want nil", got)
	}
	if got := MergeSamples(10, nil, []float64{}, nil); got != nil {
		t.Fatalf("MergeSamples(empty groups) = %v, want nil", got)
	}
	if !math.IsNaN(Percentile(MergeSamples(10, nil), 50)) {
		t.Fatal("percentile of an empty merge should stay NaN")
	}
}

// TestMergeSamplesBounded: the output respects the limit and its percentiles
// track the pooled computation within a tolerance even after downsampling.
func TestMergeSamplesBounded(t *testing.T) {
	cases := []struct {
		name  string
		limit int
		sizes []int // per-group sample counts, drawn from distinct ranges
	}{
		{"two equal shards", 64, []int{500, 500}},
		{"skewed shards", 64, []int{900, 100}},
		{"eight shards", 128, []int{200, 200, 200, 200, 200, 200, 200, 200}},
		{"one empty shard", 64, []int{400, 0, 400}},
		{"tiny budget", 8, []int{100, 100}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(7))
			groups := make([][]float64, len(tc.sizes))
			var pooled []float64
			for i, n := range tc.sizes {
				for j := 0; j < n; j++ {
					// Lognormal-ish positive samples, the shape of slowdowns.
					v := math.Exp(rng.NormFloat64()*0.5) * float64(i+1)
					groups[i] = append(groups[i], v)
					pooled = append(pooled, v)
				}
			}
			merged := MergeSamples(tc.limit, groups...)
			if len(merged) > tc.limit {
				t.Fatalf("merged %d samples, limit %d", len(merged), tc.limit)
			}
			if len(merged) == 0 {
				t.Fatal("merged no samples")
			}
			// Tolerance scales with the pooled spread: the merge estimates
			// quantiles from a bounded reservoir, it is not exact.
			spread := Percentile(pooled, 99) - Percentile(pooled, 1)
			tol := 0.15 * spread
			if tc.limit < 16 {
				tol = 0.35 * spread // a handful of samples is a coarse sketch
			}
			for _, p := range []float64{10, 50, 90, 95} {
				got, want := Percentile(merged, p), Percentile(pooled, p)
				if math.Abs(got-want) > tol {
					t.Errorf("p%v = %v, pooled %v (tolerance %v)", p, got, want, tol)
				}
			}
		})
	}
}

// TestMergeSamplesDeterministic: identical inputs produce identical outputs,
// the property the golden harness and bench trajectories rely on.
func TestMergeSamplesDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := make([]float64, 300)
	b := make([]float64, 200)
	for i := range a {
		a[i] = rng.Float64() * 10
	}
	for i := range b {
		b[i] = rng.Float64() * 100
	}
	x := MergeSamples(50, a, b)
	y := MergeSamples(50, a, b)
	if len(x) != len(y) {
		t.Fatalf("lengths differ: %d vs %d", len(x), len(y))
	}
	for i := range x {
		if x[i] != y[i] {
			t.Fatalf("sample %d differs: %v vs %v", i, x[i], y[i])
		}
	}
}
