package stats

import (
	"math"
	"strings"
	"testing"
)

func TestMeanStdMedian(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if Mean(xs) != 5 {
		t.Errorf("Mean = %v, want 5", Mean(xs))
	}
	if math.Abs(StdDev(xs)-2.138089935) > 1e-6 {
		t.Errorf("StdDev = %v", StdDev(xs))
	}
	if math.Abs(StdErr(xs)-StdDev(xs)/math.Sqrt(8)) > 1e-12 {
		t.Errorf("StdErr = %v", StdErr(xs))
	}
	if Median(xs) != 4.5 {
		t.Errorf("Median = %v, want 4.5", Median(xs))
	}
	if Median([]float64{3, 1, 2}) != 2 {
		t.Errorf("odd Median wrong")
	}
	if Mean(nil) != 0 || StdDev(nil) != 0 || StdErr(nil) != 0 {
		t.Errorf("empty-slice aggregates should return 0")
	}
	if StdDev([]float64{5}) != 0 {
		t.Errorf("single-sample StdDev should be 0")
	}
}

func TestRatioAndImprovement(t *testing.T) {
	if Ratio(6, 3) != 2 || Ratio(1, 0) != 0 {
		t.Errorf("Ratio wrong")
	}
	// If competitor takes 122 and we take 100, improvement is 22%.
	if math.Abs(ImprovementPercent(100, 122)-22) > 1e-9 {
		t.Errorf("ImprovementPercent = %v, want 22", ImprovementPercent(100, 122))
	}
	if ImprovementPercent(0, 5) != 0 {
		t.Errorf("zero denominator should give 0")
	}
}

func TestTableRendering(t *testing.T) {
	tab := NewTable("Figure 3", "width", []string{"4", "8"})
	if err := tab.AddSeries("LP-Based", []float64{10, 20}); err != nil {
		t.Fatal(err)
	}
	if err := tab.AddSeries("Baseline", []float64{20, 50}); err != nil {
		t.Fatal(err)
	}
	if err := tab.AddSeries("oops", []float64{1}); err == nil {
		t.Error("expected length-mismatch error")
	}
	s := tab.String()
	for _, want := range []string{"Figure 3", "width", "LP-Based", "Baseline", "10.00", "50.00"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() missing %q:\n%s", want, s)
		}
	}
	csv := tab.CSV()
	if !strings.HasPrefix(csv, "width,LP-Based,Baseline\n") {
		t.Errorf("CSV header wrong: %q", csv)
	}
	if !strings.Contains(csv, "4,10,20") {
		t.Errorf("CSV rows wrong: %q", csv)
	}
}

func TestNormalizeTo(t *testing.T) {
	tab := NewTable("Fig", "x", []string{"a", "b"})
	_ = tab.AddSeries("LP-Based", []float64{10, 20})
	_ = tab.AddSeries("Baseline", []float64{20, 50})
	norm, err := tab.NormalizeTo("Baseline")
	if err != nil {
		t.Fatal(err)
	}
	if norm.SeriesSet[0].Values[0] != 0.5 || norm.SeriesSet[1].Values[1] != 1 {
		t.Errorf("normalized values wrong: %+v", norm.SeriesSet)
	}
	if _, err := tab.NormalizeTo("nope"); err == nil {
		t.Error("expected missing-reference error")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{5, 1, 3, 2, 4}
	cases := []struct{ p, want float64 }{
		{0, 1}, {100, 5}, {50, 3}, {25, 2}, {75, 4}, {90, 4.6},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if got := Percentile([]float64{7}, 99); got != 7 {
		t.Errorf("Percentile(single, 99) = %v, want 7", got)
	}
}

// TestPercentileMedianEmpty pins the empty-input contract: order statistics
// of an empty sample do not exist, so the result is NaN rather than a silent
// 0 that could be mistaken for a measured value.
func TestPercentileMedianEmpty(t *testing.T) {
	cases := []struct {
		name string
		got  float64
	}{
		{"Percentile(nil, 50)", Percentile(nil, 50)},
		{"Percentile(nil, 0)", Percentile(nil, 0)},
		{"Percentile(nil, 100)", Percentile(nil, 100)},
		{"Percentile(empty, 95)", Percentile([]float64{}, 95)},
		{"Median(nil)", Median(nil)},
		{"Median(empty)", Median([]float64{})},
	}
	for _, c := range cases {
		if !math.IsNaN(c.got) {
			t.Errorf("%s = %v, want NaN", c.name, c.got)
		}
	}
	if got := PercentileOr(nil, 95, 0); got != 0 {
		t.Errorf("PercentileOr(nil) = %v, want fallback 0", got)
	}
	if got := PercentileOr([]float64{4}, 95, 0); got != 4 {
		t.Errorf("PercentileOr(single) = %v, want 4", got)
	}
	// Non-empty inputs keep returning real numbers.
	for _, c := range []struct {
		name string
		got  float64
		want float64
	}{
		{"Percentile(single, 50)", Percentile([]float64{3}, 50), 3},
		{"Median(pair)", Median([]float64{1, 3}), 2},
	} {
		if math.Abs(c.got-c.want) > 1e-12 {
			t.Errorf("%s = %v, want %v", c.name, c.got, c.want)
		}
	}
}
