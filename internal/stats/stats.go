// Package stats provides the small statistical and tabulation helpers used
// by the experiment harness: means, standard deviations/errors, ratios,
// percentage improvements and fixed-width text tables matching the series
// reported in the paper's figures.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Mean returns the arithmetic mean of xs (0 for an empty slice).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// StdDev returns the sample standard deviation of xs (0 for fewer than two
// samples).
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)-1))
}

// StdErr returns the standard error of the mean.
func StdErr(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	return StdDev(xs) / math.Sqrt(float64(len(xs)))
}

// Median returns the median of xs, or NaN for an empty slice — an empty
// sample has no median, and a silent 0 would read as a real (and
// suspiciously good) latency or slowdown.
func Median(xs []float64) float64 { return Percentile(xs, 50) }

// Percentile returns the p-th percentile (0 <= p <= 100) of xs using linear
// interpolation between order statistics. Used for the online scheduler's
// slowdown and solve-latency tails. An empty slice has no order statistics:
// the result is NaN, which callers must not mistake for a measurement (and
// which encoding/json refuses to serialize, so it cannot silently leak into
// machine-readable output).
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if p <= 0 {
		return s[0]
	}
	if p >= 100 {
		return s[len(s)-1]
	}
	pos := p / 100 * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo]
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// PercentileOr returns Percentile(xs, p), or fallback when xs is empty.
// Reporting paths use it to keep the empty-input NaN out of JSON (which
// cannot encode it) and CSV.
func PercentileOr(xs []float64, p, fallback float64) float64 {
	if len(xs) == 0 {
		return fallback
	}
	return Percentile(xs, p)
}

// Ratio returns a/b, or 0 when b is 0.
func Ratio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

// ImprovementPercent returns how much better (smaller) "ours" is than
// "theirs", expressed the way the paper reports it: (theirs/ours - 1) * 100.
// A value of 22 means the competing scheme's completion time is 22% larger.
func ImprovementPercent(ours, theirs float64) float64 {
	if ours == 0 {
		return 0
	}
	return (theirs/ours - 1) * 100
}

// Series is a named sequence of values, one per x-axis point of a figure.
type Series struct {
	Name   string
	Values []float64
}

// Table is a simple column-oriented table used to print figure data: one row
// per x-axis label and one column per series.
type Table struct {
	Title     string
	XLabel    string
	XValues   []string
	SeriesSet []Series
}

// NewTable creates a table with the given title and x-axis labels.
func NewTable(title, xlabel string, xvalues []string) *Table {
	return &Table{Title: title, XLabel: xlabel, XValues: xvalues}
}

// AddSeries appends a series; its length must match the x-axis.
func (t *Table) AddSeries(name string, values []float64) error {
	if len(values) != len(t.XValues) {
		return fmt.Errorf("stats: series %q has %d values, table has %d rows", name, len(values), len(t.XValues))
	}
	t.SeriesSet = append(t.SeriesSet, Series{Name: name, Values: values})
	return nil
}

// String renders the table as fixed-width text.
func (t *Table) String() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	// Header.
	fmt.Fprintf(&b, "%-18s", t.XLabel)
	for _, s := range t.SeriesSet {
		fmt.Fprintf(&b, "%16s", s.Name)
	}
	b.WriteString("\n")
	for i, x := range t.XValues {
		fmt.Fprintf(&b, "%-18s", x)
		for _, s := range t.SeriesSet {
			fmt.Fprintf(&b, "%16.2f", s.Values[i])
		}
		b.WriteString("\n")
	}
	return b.String()
}

// CSV renders the table as comma-separated values with a header row.
func (t *Table) CSV() string {
	var b strings.Builder
	b.WriteString(t.XLabel)
	for _, s := range t.SeriesSet {
		b.WriteString("," + s.Name)
	}
	b.WriteString("\n")
	for i, x := range t.XValues {
		b.WriteString(x)
		for _, s := range t.SeriesSet {
			fmt.Fprintf(&b, ",%.6g", s.Values[i])
		}
		b.WriteString("\n")
	}
	return b.String()
}

// NormalizeTo returns a copy of the table in which every series is divided,
// row by row, by the series with the given name (the paper's "ratio with
// respect to baseline" panels). It returns an error if the reference series
// is missing.
func (t *Table) NormalizeTo(reference string) (*Table, error) {
	var ref *Series
	for i := range t.SeriesSet {
		if t.SeriesSet[i].Name == reference {
			ref = &t.SeriesSet[i]
			break
		}
	}
	if ref == nil {
		return nil, fmt.Errorf("stats: reference series %q not found", reference)
	}
	out := NewTable(t.Title+" (ratio vs "+reference+")", t.XLabel, t.XValues)
	for _, s := range t.SeriesSet {
		vals := make([]float64, len(s.Values))
		for i := range s.Values {
			vals[i] = Ratio(s.Values[i], ref.Values[i])
		}
		if err := out.AddSeries(s.Name, vals); err != nil {
			return nil, err
		}
	}
	return out, nil
}
