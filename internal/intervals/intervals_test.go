package intervals

import (
	"math"
	"testing"
	"testing/quick"
)

func TestGridBounds(t *testing.T) {
	g := New(1, 20) // powers of two
	want := []float64{0, 1, 2, 4, 8, 16, 32}
	got := g.Bounds()
	if len(got) != len(want) {
		t.Fatalf("bounds = %v, want %v", got, want)
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Errorf("bounds[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	if g.NumIntervals() != 6 {
		t.Errorf("NumIntervals = %d, want 6", g.NumIntervals())
	}
	if g.Horizon() != 32 {
		t.Errorf("Horizon = %v, want 32", g.Horizon())
	}
	if g.Eps() != 1 {
		t.Errorf("Eps = %v, want 1", g.Eps())
	}
	if g.Lower(2) != 2 || g.Upper(2) != 4 || g.Length(2) != 2 {
		t.Errorf("interval 2 = (%v, %v], len %v", g.Lower(2), g.Upper(2), g.Length(2))
	}
}

func TestGridSmallHorizon(t *testing.T) {
	g := New(0.5, 0)
	if g.NumIntervals() != 1 || g.Horizon() != 1 {
		t.Errorf("zero-horizon grid: %d intervals, horizon %v", g.NumIntervals(), g.Horizon())
	}
}

func TestIndexOf(t *testing.T) {
	g := New(1, 20)
	cases := []struct {
		t    float64
		want int
	}{
		{0, 0}, {0.5, 0}, {1, 0},
		{1.5, 1}, {2, 1},
		{3, 2}, {4, 2},
		{5, 3}, {8, 3},
		{16, 4}, {17, 5}, {32, 5},
		{1000, 5}, // beyond horizon clamps to last
	}
	for _, c := range cases {
		if got := g.IndexOf(c.t); got != c.want {
			t.Errorf("IndexOf(%v) = %d, want %d", c.t, got, c.want)
		}
	}
}

func TestRoundUpRelease(t *testing.T) {
	g := New(1, 20)
	cases := []struct {
		r    float64
		want int
	}{
		{0, 0},
		{1, 1},   // release strictly inside (0,1]? r=1 is the upper end -> next interval
		{0.5, 1}, // inside interval 0 -> next
		{2, 2},
		{3, 3}, // inside (2,4] -> interval 3 which starts at 4
		{4, 3},
		{100, 5}, // clamps to last interval
	}
	for _, c := range cases {
		if got := g.RoundUpRelease(c.r); got != c.want {
			t.Errorf("RoundUpRelease(%v) = %d, want %d", c.r, got, c.want)
		}
	}
	// Release exactly at an interval lower bound may run in that interval.
	if got := g.RoundUpRelease(8); got != 4 {
		t.Errorf("RoundUpRelease(8) = %d, want 4", got)
	}
}

func TestNewPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"zero eps":    func() { New(0, 10) },
		"neg eps":     func() { New(-1, 10) },
		"neg horizon": func() { New(1, -1) },
	} {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		})
	}
}

func TestPropertyIndexOfConsistent(t *testing.T) {
	// For any t in (0, horizon], the returned interval must contain t, and
	// RoundUpRelease must return an interval whose lower bound is >= t (or
	// the last interval).
	f := func(rawT, rawEps float64) bool {
		eps := 0.1 + math.Mod(math.Abs(rawEps), 2.0)
		horizon := 50.0
		tt := math.Mod(math.Abs(rawT), horizon)
		g := New(eps, horizon)
		idx := g.IndexOf(tt)
		if idx < 0 || idx >= g.NumIntervals() {
			return false
		}
		if !(tt <= g.Upper(idx)+1e-12) {
			return false
		}
		if tt > 1e-12 && idx > 0 && !(tt > g.Lower(idx)-1e-12) {
			return false
		}
		ru := g.RoundUpRelease(tt)
		if ru < g.NumIntervals()-1 && g.Lower(ru) < tt-1e-9 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
