// Package intervals implements the geometric time-interval grid used by the
// interval-indexed linear programs of the paper.
//
// The time line is divided into segments [0, 1], (1, 1+ε], (1+ε, (1+ε)^2],
// ..., (τ_ℓ, τ_{ℓ+1}] where τ_0 = 0 and τ_ℓ = (1+ε)^{ℓ-1} for ℓ >= 1. The
// grid is parameterized by ε > 0 and covers a caller-supplied time horizon.
package intervals

import (
	"fmt"
	"math"
)

// Grid is a geometric partition of the time line.
type Grid struct {
	eps    float64
	bounds []float64 // bounds[ℓ] = τ_ℓ; len = L+2 so interval ℓ is (bounds[ℓ], bounds[ℓ+1]]
}

// New builds a grid with parameter eps covering at least [0, horizon]. The
// last interval's upper end is >= horizon. New panics if eps <= 0 or horizon
// < 0.
func New(eps, horizon float64) *Grid {
	if eps <= 0 || math.IsNaN(eps) {
		panic(fmt.Sprintf("intervals: eps must be positive, got %v", eps))
	}
	if horizon < 0 || math.IsNaN(horizon) {
		panic(fmt.Sprintf("intervals: horizon must be nonnegative, got %v", horizon))
	}
	bounds := []float64{0, 1}
	for bounds[len(bounds)-1] < horizon {
		next := bounds[len(bounds)-1] * (1 + eps)
		bounds = append(bounds, next)
	}
	return &Grid{eps: eps, bounds: bounds}
}

// Eps returns the grid parameter ε.
func (g *Grid) Eps() float64 { return g.eps }

// NumIntervals returns the number of intervals L+1 (indices 0..L).
func (g *Grid) NumIntervals() int { return len(g.bounds) - 1 }

// Lower returns τ_ℓ, the open lower end of interval ℓ.
func (g *Grid) Lower(l int) float64 { return g.bounds[l] }

// Upper returns τ_{ℓ+1}, the closed upper end of interval ℓ.
func (g *Grid) Upper(l int) float64 { return g.bounds[l+1] }

// Length returns the length of interval ℓ.
func (g *Grid) Length(l int) float64 { return g.bounds[l+1] - g.bounds[l] }

// Horizon returns the upper end of the last interval.
func (g *Grid) Horizon() float64 { return g.bounds[len(g.bounds)-1] }

// IndexOf returns the index of the interval containing time t (that is, the
// ℓ with τ_ℓ < t <= τ_{ℓ+1}; t = 0 maps to interval 0). Times beyond the
// horizon map to the last interval.
func (g *Grid) IndexOf(t float64) int {
	if t <= g.bounds[1] {
		return 0
	}
	lo, hi := 1, g.NumIntervals()-1
	for lo < hi {
		mid := (lo + hi) / 2
		if t <= g.bounds[mid+1] {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// RoundUpRelease returns the smallest interval index ℓ such that a flow
// released at time r may be scheduled inside interval ℓ: r <= τ_ℓ (the paper
// moves every release time to the end of the interval containing it, which
// loses at most a 1+ε factor).
func (g *Grid) RoundUpRelease(r float64) int {
	if r <= 0 {
		return 0
	}
	idx := g.IndexOf(r)
	// The flow may run in the interval after the one containing its release
	// (release moved to τ_{idx+1} which is the lower bound of interval
	// idx+1), unless the release coincides exactly with an interval start.
	if r <= g.bounds[idx]+1e-15 {
		return idx
	}
	if idx+1 >= g.NumIntervals() {
		return g.NumIntervals() - 1
	}
	return idx + 1
}

// Bounds returns a copy of the τ sequence (length NumIntervals()+1).
func (g *Grid) Bounds() []float64 {
	out := make([]float64, len(g.bounds))
	copy(out, g.bounds)
	return out
}
