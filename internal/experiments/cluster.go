package experiments

import (
	"fmt"
	"strconv"
	"time"

	"coflowsched/internal/cluster"
	"coflowsched/internal/online"
	"coflowsched/internal/server"
	"coflowsched/internal/stats"
)

// ClusterConfig controls the shard-count scaling sweep: the same workload is
// pushed through an in-process gateway fronting 1, 2, 4, ... coflowd shards,
// and each point records admission throughput, drain wall time and the
// merged scheduling objectives. The paper analyzes one fabric; this sweep
// measures what the gateway layer adds when N independent fabrics share the
// front door.
type ClusterConfig struct {
	// ShardCounts are the cluster sizes swept (default 1, 2, 4, 8).
	ShardCounts []int
	// Coflows, Width, MeanSize and Rate shape the replayed workload; Seed
	// fixes the draw so every cluster size sees the identical coflow
	// sequence. Rate is the wall-clock send rate — the default (100000) is
	// effectively unpaced, so the admit columns measure gateway + shard
	// throughput rather than the arrival schedule.
	Coflows  int
	Width    int
	MeanSize float64
	Rate     float64
	Seed     int64
	// Placement is the gateway placement policy name (default "hash").
	Placement string
	// EpochLength and FatK configure every shard (defaults 2, k=4).
	EpochLength float64
	FatK        int
}

// DefaultClusterConfig is the configuration `coflowbench -experiment
// cluster` runs.
func DefaultClusterConfig() ClusterConfig {
	return ClusterConfig{
		ShardCounts: []int{1, 2, 4, 8},
		Coflows:     160,
		Width:       3,
		MeanSize:    4,
		Rate:        100000,
		Seed:        1,
		Placement:   "hash",
		EpochLength: 2,
		FatK:        4,
	}
}

func (c ClusterConfig) withDefaults() ClusterConfig {
	d := DefaultClusterConfig()
	if len(c.ShardCounts) == 0 {
		c.ShardCounts = d.ShardCounts
	}
	if c.Coflows <= 0 {
		c.Coflows = d.Coflows
	}
	if c.Width <= 0 {
		c.Width = d.Width
	}
	if c.MeanSize <= 0 {
		c.MeanSize = d.MeanSize
	}
	if c.Rate <= 0 {
		c.Rate = d.Rate
	}
	if c.Seed == 0 {
		c.Seed = d.Seed
	}
	if c.Placement == "" {
		c.Placement = d.Placement
	}
	if c.EpochLength <= 0 {
		c.EpochLength = d.EpochLength
	}
	if c.FatK <= 0 {
		c.FatK = d.FatK
	}
	return c
}

// ClusterRow is one cluster size's measurements.
type ClusterRow struct {
	Shards  int `json:"shards"`
	Coflows int `json:"coflows"`
	// AdmitWallMS is the wall-clock time to push every coflow through the
	// gateway (placement + batched HTTP admission); AdmitRPS the resulting
	// throughput.
	AdmitWallMS float64 `json:"admit_wall_ms"`
	AdmitRPS    float64 `json:"admit_rps"`
	// DrainWallMS is the wall-clock time for all shards to run their
	// admitted coflows to completion, in parallel.
	DrainWallMS float64 `json:"drain_wall_ms"`
	// Completed, WeightedCCT, WeightedResponse and the slowdown percentiles
	// come from the merged (online.MergeEngineStats) shard statistics.
	Completed        int     `json:"completed"`
	WeightedCCT      float64 `json:"weighted_cct"`
	WeightedResponse float64 `json:"weighted_response"`
	SlowdownP50      float64 `json:"slowdown_p50"`
	SlowdownP95      float64 `json:"slowdown_p95"`
}

// ClusterResult bundles the sweep: the scaling table plus per-row detail.
type ClusterResult struct {
	Table *stats.Table `json:"-"`
	Rows  []ClusterRow `json:"rows"`
}

// String renders the scaling table.
func (r *ClusterResult) String() string { return r.Table.String() }

// ClusterSweep replays the identical workload through in-process clusters of
// growing shard count. Sharding does not change any coflow's schedule
// quality on its own fabric — each shard runs the same per-fabric policy the
// paper analyzes — so the merged objectives stay comparable while the
// wall-clock columns show the horizontal win.
func ClusterSweep(cfg ClusterConfig) (*ClusterResult, error) {
	cfg = cfg.withDefaults()
	placement, err := cluster.ParsePlacement(cfg.Placement)
	if err != nil {
		return nil, err
	}

	res := &ClusterResult{}
	for _, n := range cfg.ShardCounts {
		if n <= 0 {
			return nil, fmt.Errorf("experiments: invalid shard count %d", n)
		}
		row, err := clusterPoint(cfg, placement, n)
		if err != nil {
			return nil, fmt.Errorf("experiments: %d-shard point: %w", n, err)
		}
		res.Rows = append(res.Rows, row)
	}

	labels := make([]string, len(res.Rows))
	admitRPS := make([]float64, len(res.Rows))
	drainMS := make([]float64, len(res.Rows))
	response := make([]float64, len(res.Rows))
	p95 := make([]float64, len(res.Rows))
	for i, r := range res.Rows {
		labels[i] = strconv.Itoa(r.Shards)
		admitRPS[i] = r.AdmitRPS
		drainMS[i] = r.DrainWallMS
		response[i] = r.WeightedResponse
		p95[i] = r.SlowdownP95
	}
	table := stats.NewTable(
		fmt.Sprintf("ClusterSweep: %d coflows via coflowgate (%s placement)", cfg.Coflows, cfg.Placement),
		"shards", labels)
	for _, s := range []struct {
		name string
		vals []float64
	}{
		{"admit_rps", admitRPS},
		{"drain_ms", drainMS},
		{"weighted_resp", response},
		{"slowdown_p95", p95},
	} {
		if err := table.AddSeries(s.name, s.vals); err != nil {
			return nil, err
		}
	}
	res.Table = table
	return res, nil
}

// clusterPoint measures one shard count.
func clusterPoint(cfg ClusterConfig, placement cluster.Placement, shards int) (ClusterRow, error) {
	l, err := cluster.NewLocal(cluster.LocalConfig{
		Shards:      shards,
		Policy:      online.SEBFOnline{},
		EpochLength: cfg.EpochLength,
		FatK:        cfg.FatK,
		Gateway: cluster.Config{
			Placement: placement,
			// The sweep is short-lived; probe fast so a wedged shard fails the
			// point instead of hanging it.
			HealthInterval: 200 * time.Millisecond,
		},
	})
	if err != nil {
		return ClusterRow{}, err
	}
	defer l.Close()

	c := l.Client()
	t0 := time.Now()
	report, err := server.RunLoad(c, server.LoadConfig{
		Coflows:     cfg.Coflows,
		Width:       cfg.Width,
		MeanSize:    cfg.MeanSize,
		Rate:        cfg.Rate,
		SpeedUp:     1,
		Concurrency: 8,
		Seed:        cfg.Seed,
	})
	if err != nil {
		return ClusterRow{}, err
	}
	if report.Failures > 0 {
		return ClusterRow{}, fmt.Errorf("%d of %d admissions failed (first: %s)",
			report.Failures, report.Requests, report.FirstError)
	}
	admitWall := time.Since(t0)

	t1 := time.Now()
	merged, err := l.DrainAll()
	if err != nil {
		return ClusterRow{}, err
	}
	drainWall := time.Since(t1)
	if merged.Completed != cfg.Coflows {
		return ClusterRow{}, fmt.Errorf("merged stats report %d completions, want %d", merged.Completed, cfg.Coflows)
	}

	return ClusterRow{
		Shards:           shards,
		Coflows:          cfg.Coflows,
		AdmitWallMS:      admitWall.Seconds() * 1e3,
		AdmitRPS:         float64(cfg.Coflows) / admitWall.Seconds(),
		DrainWallMS:      drainWall.Seconds() * 1e3,
		Completed:        merged.Completed,
		WeightedCCT:      merged.WeightedCCT,
		WeightedResponse: merged.WeightedResponse,
		SlowdownP50:      stats.PercentileOr(merged.Slowdowns, 50, 0),
		SlowdownP95:      stats.PercentileOr(merged.Slowdowns, 95, 0),
	}, nil
}
