package experiments

import (
	"testing"

	"coflowsched/internal/online"
)

// TestOnlineSweep runs the arrival-rate sweep at test scale and checks the
// acceptance property: the reordering policies (SEBFOnline, LPEpoch) beat
// FIFOOnline on mean weighted CCT at moderate load.
func TestOnlineSweep(t *testing.T) {
	cfg := DefaultOnlineConfig()
	cfg.Trials = 2
	cfg.ArrivalRates = []float64{2.0}
	cfg.Validate = true
	res, err := OnlineSweep(cfg)
	if err != nil {
		t.Fatalf("online sweep: %v", err)
	}

	byName := map[string]float64{}
	for _, s := range res.Absolute.SeriesSet {
		if len(s.Values) != 1 {
			t.Fatalf("series %s has %d values, want 1", s.Name, len(s.Values))
		}
		byName[s.Name] = s.Values[0]
	}
	fifo := byName[online.FIFOOnline{}.Name()]
	if fifo <= 0 {
		t.Fatalf("FIFO weighted CCT missing or non-positive: %v", byName)
	}
	if sebf := byName[online.SEBFOnline{}.Name()]; sebf >= fifo {
		t.Errorf("SEBFOnline mean weighted CCT %v not better than FIFOOnline %v", sebf, fifo)
	}
	if lp := byName[online.LPEpoch{}.Name()]; lp >= fifo {
		t.Errorf("LPEpoch mean weighted CCT %v not better than FIFOOnline %v", lp, fifo)
	}

	// The ratio panel normalizes FIFO to 1.
	for _, s := range res.Ratio.SeriesSet {
		if s.Name == (online.FIFOOnline{}).Name() {
			if s.Values[0] != 1 {
				t.Errorf("FIFO ratio %v, want 1", s.Values[0])
			}
		}
	}

	// The LP policy must have reported solve latencies.
	if res.MeanSolveLatency[online.LPEpoch{}.Name()] <= 0 {
		t.Errorf("LPEpoch reported no solve latency")
	}
}
