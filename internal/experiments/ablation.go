package experiments

import (
	"fmt"
	"math/rand"

	"coflowsched/internal/coflow"
	"coflowsched/internal/core"
	"coflowsched/internal/graph"
	"coflowsched/internal/stats"
	"coflowsched/internal/workload"
)

// AblationResult reports the design-choice studies listed in DESIGN.md:
//
//	(a) interval granularity ε (LP tightness vs size),
//	(b) candidate-path budget (1 = shortest-path routing only vs 4),
//	(c) practical start-ASAP mode vs the theoretical interval placement,
//	(d) LP-derived ordering vs the same paths with a size-based ordering.
type AblationResult struct {
	Epsilon        *stats.Table
	CandidatePaths *stats.Table
	Rounding       *stats.Table
}

// String renders all three panels.
func (a *AblationResult) String() string {
	return a.Epsilon.String() + "\n" + a.CandidatePaths.String() + "\n" + a.Rounding.String()
}

// AblationConfig sizes the ablation workload.
type AblationConfig struct {
	Trials     int
	Seed       int64
	NumCoflows int
	Width      int
}

// DefaultAblationConfig keeps the LPs small.
func DefaultAblationConfig() AblationConfig {
	return AblationConfig{Trials: 2, Seed: 11, NumCoflows: 4, Width: 4}
}

// Ablation runs all three studies on a 16-server fat-tree.
func Ablation(cfg AblationConfig) (*AblationResult, error) {
	if cfg.Trials <= 0 {
		cfg.Trials = 1
	}
	g := graph.FatTree(4, 1)

	instance := func(trial int) (*rand.Rand, *coflow.Instance, error) {
		rng := rand.New(rand.NewSource(cfg.Seed + int64(trial)*101))
		inst, err := workload.Generate(g, workload.Config{
			NumCoflows: cfg.NumCoflows, Width: cfg.Width, MeanSize: 3, MeanRelease: 1, MeanWeight: 1,
		}, rng)
		if err != nil {
			return nil, nil, err
		}
		return rng, inst, nil
	}

	// (a) ε sweep: objective and LP lower bound as ε shrinks.
	epsValues := []float64{2, 1, 0.5}
	epsLabels := make([]string, len(epsValues))
	for i, e := range epsValues {
		epsLabels[i] = fmt.Sprintf("eps=%g", e)
	}
	objByEps := make([]float64, len(epsValues))
	lbByEps := make([]float64, len(epsValues))
	for ei, eps := range epsValues {
		var objs, lbs []float64
		for trial := 0; trial < cfg.Trials; trial++ {
			rng, wi, err := instance(trial)
			if err != nil {
				return nil, err
			}
			res, err := (core.CircuitFreePaths{Opts: core.Options{Epsilon: eps, CandidatePaths: 2}}).ScheduleASAP(wi, rng)
			if err != nil {
				return nil, err
			}
			objs = append(objs, res.Objective(wi))
			lbs = append(lbs, core.CombinedLowerBound(wi, res))
		}
		objByEps[ei] = stats.Mean(objs)
		lbByEps[ei] = stats.Mean(lbs)
	}
	epsTable := stats.NewTable("Ablation (a): interval granularity", "epsilon", epsLabels)
	if err := epsTable.AddSeries("LP-Based objective", objByEps); err != nil {
		return nil, err
	}
	if err := epsTable.AddSeries("certified lower bound", lbByEps); err != nil {
		return nil, err
	}

	// (b) candidate-path budget.
	budgets := []int{1, 2, 4}
	budgetLabels := make([]string, len(budgets))
	for i, b := range budgets {
		budgetLabels[i] = fmt.Sprintf("K=%d", b)
	}
	objByK := make([]float64, len(budgets))
	for bi, k := range budgets {
		var objs []float64
		for trial := 0; trial < cfg.Trials; trial++ {
			rng, wi, err := instance(trial)
			if err != nil {
				return nil, err
			}
			res, err := (core.CircuitFreePaths{Opts: core.Options{CandidatePaths: k}}).ScheduleASAP(wi, rng)
			if err != nil {
				return nil, err
			}
			objs = append(objs, res.Objective(wi))
		}
		objByK[bi] = stats.Mean(objs)
	}
	kTable := stats.NewTable("Ablation (b): candidate-path budget", "paths", budgetLabels)
	if err := kTable.AddSeries("LP-Based objective", objByK); err != nil {
		return nil, err
	}

	// (c) rounding mode: ASAP vs theoretical interval placement.
	modeLabels := []string{"ASAP (practical)", "interval placement"}
	asapVals := make([]float64, cfg.Trials)
	provVals := make([]float64, cfg.Trials)
	for trial := 0; trial < cfg.Trials; trial++ {
		rng, wi, err := instance(trial)
		if err != nil {
			return nil, err
		}
		sched := core.CircuitFreePaths{Opts: core.Options{CandidatePaths: 2}}
		asap, err := sched.ScheduleASAP(wi, rng)
		if err != nil {
			return nil, err
		}
		prov, err := sched.ScheduleProvable(wi, rng)
		if err != nil {
			return nil, err
		}
		asapVals[trial] = asap.Objective(wi)
		provVals[trial] = prov.Objective(wi)
	}
	roundTable := stats.NewTable("Ablation (c): rounding mode (mean objective)", "mode", modeLabels)
	if err := roundTable.AddSeries("objective", []float64{stats.Mean(asapVals), stats.Mean(provVals)}); err != nil {
		return nil, err
	}

	return &AblationResult{Epsilon: epsTable, CandidatePaths: kTable, Rounding: roundTable}, nil
}
