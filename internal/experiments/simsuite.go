package experiments

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"coflowsched/internal/graph"
	"coflowsched/internal/sim"
	"coflowsched/internal/workload"
)

// SimSuiteConfig parameterizes the simulator micro-suite: the hot-path
// benchmark behind every experiment and the coflowd daemon (see the
// Performance section of EXPERIMENTS.md).
type SimSuiteConfig struct {
	// Seed drives the random workloads.
	Seed int64
	// Trials is the number of timed runs per scale (the minimum is reported,
	// the usual noise-robust statistic for micro-benchmarks).
	Trials int
	// Scales lists the (coflows, width) workload sizes to sweep.
	Scales []SimScale
	// FatK is the fat-tree arity of the simulated network.
	FatK int
	// Reference also times the retained naive allocator (sim.Reference) on
	// the same instances and reports the speedup. Disable for quick runs at
	// large scales, where the naive allocator dominates wall time.
	Reference bool
	// Partitions selects the incremental simulator's partition class count:
	// 0 = auto (the topology's pod count capped at GOMAXPROCS), 1 = the
	// sequential core, N>1 = the pods coalesced into N classes. Any count
	// produces bit-identical schedules; only wall time differs.
	Partitions int
}

// SimScale is one workload size of the sweep.
type SimScale struct {
	Coflows int
	Width   int
}

// DefaultSimSuiteConfig exercises the priority hot path up to 2000 flows,
// with the naive reference timed alongside for the speedup column.
func DefaultSimSuiteConfig() SimSuiteConfig {
	return SimSuiteConfig{
		Seed:      42,
		Trials:    3,
		FatK:      4,
		Reference: true,
		Scales: []SimScale{
			{Coflows: 32, Width: 4},
			{Coflows: 125, Width: 4},
			{Coflows: 250, Width: 8},
		},
	}
}

// SimSuiteRow is one scale's measurement.
type SimSuiteRow struct {
	Flows int
	// IncrementalNs and ReferenceNs are the minimum wall time of one full
	// priority-policy Run, in nanoseconds (ReferenceNs 0 when the reference
	// is disabled).
	IncrementalNs int64
	ReferenceNs   int64
	// Speedup is ReferenceNs / IncrementalNs (0 when the reference is
	// disabled).
	Speedup float64
	// Objective is the total weighted completion time both allocators
	// produced; the suite fails if they disagree, so a recorded row is also
	// an equivalence witness.
	Objective float64
}

// SimSuiteResult is the micro-suite's outcome.
type SimSuiteResult struct {
	Rows []SimSuiteRow
}

// String renders the suite as a table.
func (r *SimSuiteResult) String() string {
	s := fmt.Sprintf("%-8s %-16s %-16s %-9s %s\n", "flows", "incremental", "reference", "speedup", "objective")
	for _, row := range r.Rows {
		ref, speed := "-", "-"
		if row.ReferenceNs > 0 {
			ref = time.Duration(row.ReferenceNs).String()
			speed = fmt.Sprintf("%.2fx", row.Speedup)
		}
		s += fmt.Sprintf("%-8d %-16s %-16s %-9s %.2f\n",
			row.Flows, time.Duration(row.IncrementalNs).String(), ref, speed, row.Objective)
	}
	return s
}

// SimSuite times the flow-level simulator's priority hot path across the
// configured scales, optionally against the retained naive reference
// allocator, asserting that both produce the same objective (completion
// times to 1e-9 are covered by internal/sim's differential tests; the
// objective check here keeps recorded trajectories self-verifying).
func SimSuite(cfg SimSuiteConfig) (*SimSuiteResult, error) {
	if cfg.Trials <= 0 {
		cfg.Trials = 1
	}
	if cfg.FatK == 0 {
		cfg.FatK = 4
	}
	g := graph.FatTree(cfg.FatK, 1)
	res := &SimSuiteResult{}
	for _, sc := range cfg.Scales {
		rng := rand.New(rand.NewSource(cfg.Seed))
		inst, err := workload.GenerateWithPaths(g, workload.Config{
			NumCoflows: sc.Coflows, Width: sc.Width, MeanSize: 4, MeanRelease: 25,
		}, rng)
		if err != nil {
			return nil, err
		}
		simCfg := sim.Config{Order: inst.FlowRefs(), Policy: sim.Priority}
		parts := cfg.Partitions
		if parts == 0 {
			parts = g.AutoPartitions()
		}
		if parts > 1 {
			simCfg.Partition = g.PodPartition().Coalesce(parts)
		}

		var incBest, refBest int64 = math.MaxInt64, math.MaxInt64
		var objective, refObjective float64
		for t := 0; t < cfg.Trials; t++ {
			t0 := time.Now()
			cs, err := sim.Run(inst, simCfg)
			d := time.Since(t0).Nanoseconds()
			if err != nil {
				return nil, fmt.Errorf("sim suite: incremental run: %w", err)
			}
			if d < incBest {
				incBest = d
			}
			objective = cs.Objective(inst)
		}
		if cfg.Reference {
			for t := 0; t < cfg.Trials; t++ {
				t0 := time.Now()
				cs, err := sim.RunReference(inst, simCfg)
				d := time.Since(t0).Nanoseconds()
				if err != nil {
					return nil, fmt.Errorf("sim suite: reference run: %w", err)
				}
				if d < refBest {
					refBest = d
				}
				refObjective = cs.Objective(inst)
			}
			if math.Abs(objective-refObjective) > 1e-6*math.Max(1, refObjective) {
				return nil, fmt.Errorf("sim suite: allocators diverge at %d flows: incremental objective %v, reference %v",
					inst.NumFlows(), objective, refObjective)
			}
		}
		row := SimSuiteRow{
			Flows:         inst.NumFlows(),
			IncrementalNs: incBest,
			Objective:     objective,
		}
		if cfg.Reference {
			row.ReferenceNs = refBest
			row.Speedup = float64(refBest) / float64(incBest)
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}
