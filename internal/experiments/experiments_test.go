package experiments

import (
	"strings"
	"testing"

	"coflowsched/internal/stats"
)

// tinyConfig keeps the LPs small so the whole experiment suite runs in a few
// seconds under `go test`.
func tinyConfig() Config {
	c := DefaultConfig()
	c.Trials = 1
	c.NumCoflows = 3
	c.Widths = []int{2, 3}
	c.Width = 2
	c.CoflowCounts = []int{2, 4}
	c.CandidatePaths = 4
	c.Validate = true
	return c
}

func TestFigure1MatchesPaperOrdering(t *testing.T) {
	res, err := Figure1()
	if err != nil {
		t.Fatalf("Figure1: %v", err)
	}
	// Paper's narrative: fair sharing (10) > strict priority (8) > LP-based
	// (optimal). With the caption's flow sizes the optimal is 5.
	if res.FairSharing != 10 {
		t.Errorf("fair sharing total = %v, want 10", res.FairSharing)
	}
	if res.Priority != 8 {
		t.Errorf("priority total = %v, want 8", res.Priority)
	}
	if !(res.LPBased < res.Priority && res.Priority < res.FairSharing) {
		t.Errorf("expected LP < priority < fair sharing, got %v", res)
	}
	if res.LPBased < res.LowerBound-1e-9 {
		t.Errorf("LP-based objective below certified lower bound")
	}
	if !strings.Contains(res.String(), "LP-based") {
		t.Errorf("String() output incomplete")
	}
}

func TestFigure3SmallSweep(t *testing.T) {
	cfg := tinyConfig()
	res, err := Figure3(cfg)
	if err != nil {
		t.Fatalf("Figure3: %v", err)
	}
	if len(res.Absolute.SeriesSet) != 4 {
		t.Fatalf("expected 4 schedulers, got %d", len(res.Absolute.SeriesSet))
	}
	// On this deliberately tiny sweep we only require the broad shape: the
	// LP-Based scheduler never loses badly to any heuristic at any point and
	// beats the Baseline on average (the full headline claim is asserted at
	// default scale in TestFigure3DefaultScaleHeadline).
	lp := res.Absolute.SeriesSet[0]
	if lp.Name != "LP-Based" {
		t.Fatalf("first series = %q, want LP-Based", lp.Name)
	}
	for si := 1; si < len(res.Absolute.SeriesSet); si++ {
		other := res.Absolute.SeriesSet[si]
		for p := range lp.Values {
			if lp.Values[p] > 1.25*other.Values[p] {
				t.Errorf("LP-Based (%v) much worse than %s (%v) at point %d",
					lp.Values[p], other.Name, other.Values[p], p)
			}
		}
	}
	// Ratio panel: baseline column is identically 1.
	for _, s := range res.Ratio.SeriesSet {
		if s.Name != "Baseline" {
			continue
		}
		for _, v := range s.Values {
			if v != 1 {
				t.Errorf("baseline ratio = %v, want 1", v)
			}
		}
	}
	// Improvement summary has all three competitors; the Baseline must be
	// beaten on average even at this tiny scale.
	for _, name := range []string{"Route-only", "Schedule-only", "Baseline"} {
		if _, ok := res.Improvements[name]; !ok {
			t.Errorf("missing improvement entry for %s", name)
		}
	}
	if res.Improvements["Baseline"] <= 0 {
		t.Errorf("LP-Based should beat the Baseline on average, improvement = %v%%", res.Improvements["Baseline"])
	}
	if !strings.Contains(res.String(), "Average improvement") {
		t.Errorf("String() output incomplete")
	}
}

func TestFigure4SmallSweep(t *testing.T) {
	cfg := tinyConfig()
	res, err := Figure4(cfg)
	if err != nil {
		t.Fatalf("Figure4: %v", err)
	}
	lp := res.Absolute.SeriesSet[0]
	base := res.Absolute.SeriesSet[len(res.Absolute.SeriesSet)-1]
	if base.Name != "Baseline" {
		t.Fatalf("last series = %q, want Baseline", base.Name)
	}
	// Averaged over the sweep, LP-Based beats the Baseline; the objective
	// grows with the number of coflows.
	lpMean, baseMean := 0.0, 0.0
	for p := range lp.Values {
		lpMean += lp.Values[p]
		baseMean += base.Values[p]
	}
	if lpMean >= baseMean {
		t.Errorf("LP-Based mean (%v) should beat Baseline mean (%v)", lpMean, baseMean)
	}
	if !(lp.Values[len(lp.Values)-1] > lp.Values[0]) {
		t.Errorf("objective should grow with more coflows: %v", lp.Values)
	}
}

func TestTable1RatiosWithinProvenBounds(t *testing.T) {
	cfg := DefaultTable1Config()
	cfg.Trials = 2
	res, err := Table1(cfg)
	if err != nil {
		t.Fatalf("Table1: %v", err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("expected 4 rows, got %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.MeanRatio < 1-1e-9 {
			t.Errorf("%s/%s: mean ratio %v below 1 (lower bound violated)", row.Model, row.Paths, row.MeanRatio)
		}
		if row.MaxRatio < row.MeanRatio-1e-9 {
			t.Errorf("%s/%s: max ratio %v below mean %v", row.Model, row.Paths, row.MaxRatio, row.MeanRatio)
		}
		// The paper's remark: worst-case factors do not appear in practice.
		// All our instances stay well below 17.6 (circuit) and the packet
		// constants; use 17.6 as the common sanity ceiling.
		if row.MaxRatio > 17.6 {
			t.Errorf("%s/%s: empirical ratio %v exceeds the proven constant", row.Model, row.Paths, row.MaxRatio)
		}
	}
	out := res.String()
	for _, want := range []string{"Packet-based", "Circuit-based", "given", "not given", "APX-hard"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table1 output missing %q", want)
		}
	}
}

func TestAblationRuns(t *testing.T) {
	cfg := DefaultAblationConfig()
	cfg.Trials = 1
	cfg.NumCoflows = 3
	cfg.Width = 3
	res, err := Ablation(cfg)
	if err != nil {
		t.Fatalf("Ablation: %v", err)
	}
	// (a) tightening epsilon cannot loosen the certified lower bound series
	// by much; we only require positive values and a rendered table.
	for _, tab := range []*stats.Table{res.Epsilon, res.CandidatePaths, res.Rounding} {
		for _, s := range tab.SeriesSet {
			for _, v := range s.Values {
				if v <= 0 {
					t.Errorf("ablation value %v in %q should be positive", v, tab.Title)
				}
			}
		}
	}
	// (c) ASAP should not be worse than the theoretical interval placement.
	round := res.Rounding.SeriesSet[0].Values
	if round[0] > round[1]+1e-6 {
		t.Errorf("ASAP mode (%v) worse than interval placement (%v)", round[0], round[1])
	}
	if !strings.Contains(res.String(), "Ablation") {
		t.Errorf("String() output incomplete")
	}
}

// TestFigure3DefaultScaleHeadline asserts the paper's §4.3 headline at the
// repository's default experiment scale: LP-Based beats Route-only,
// Schedule-only and Baseline on average (the paper reports improvements of
// at least 22%, 96% and 126% on a 128-server fat-tree; at this reduced scale
// the ordering is preserved with smaller margins). The test takes ~10-15s, so
// it is skipped under -short.
func TestFigure3DefaultScaleHeadline(t *testing.T) {
	if testing.Short() {
		t.Skip("default-scale sweep skipped in -short mode")
	}
	cfg := DefaultConfig()
	res, err := Figure3(cfg)
	if err != nil {
		t.Fatalf("Figure3: %v", err)
	}
	for _, name := range []string{"Route-only", "Schedule-only", "Baseline"} {
		v, ok := res.Improvements[name]
		if !ok {
			t.Fatalf("missing improvement entry for %s", name)
		}
		if v <= 0 {
			t.Errorf("LP-Based should beat %s on average, improvement = %.1f%%", name, v)
		}
	}
	if res.Improvements["Baseline"] < 20 {
		t.Errorf("improvement over Baseline = %.1f%%, expected at least 20%% at default scale",
			res.Improvements["Baseline"])
	}
	// Pointwise, LP-Based never loses to the Baseline at default scale.
	lp := res.Absolute.SeriesSet[0]
	base := res.Absolute.SeriesSet[3]
	for p := range lp.Values {
		if lp.Values[p] > base.Values[p] {
			t.Errorf("LP-Based (%v) worse than Baseline (%v) at point %d", lp.Values[p], base.Values[p], p)
		}
	}
}

// TestSimSuite runs the simulator micro-suite at a tiny scale and checks it
// reports sane timings, the equivalence check passes, and the speedup column
// is populated when the reference is enabled.
func TestSimSuite(t *testing.T) {
	cfg := SimSuiteConfig{
		Seed:      3,
		Trials:    1,
		FatK:      4,
		Reference: true,
		Scales:    []SimScale{{Coflows: 4, Width: 3}, {Coflows: 8, Width: 3}},
	}
	res, err := SimSuite(cfg)
	if err != nil {
		t.Fatalf("SimSuite: %v", err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("got %d rows, want 2", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.Flows <= 0 || row.IncrementalNs <= 0 || row.ReferenceNs <= 0 {
			t.Errorf("row not populated: %+v", row)
		}
		if row.Speedup <= 0 {
			t.Errorf("speedup missing: %+v", row)
		}
		if row.Objective <= 0 {
			t.Errorf("objective missing: %+v", row)
		}
	}
	if res.String() == "" {
		t.Error("empty rendering")
	}
	// Reference disabled: timing columns stay zero, no equivalence check.
	cfg.Reference = false
	res, err = SimSuite(cfg)
	if err != nil {
		t.Fatalf("SimSuite (noref): %v", err)
	}
	for _, row := range res.Rows {
		if row.ReferenceNs != 0 || row.Speedup != 0 {
			t.Errorf("reference columns populated in noref mode: %+v", row)
		}
	}
}
