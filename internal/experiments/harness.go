// Package experiments regenerates the paper's evaluation: Figure 1 (the
// triangle example), Table 1 (approximation ratios, reported empirically
// against certified lower bounds), Figure 3 (total weighted completion time
// versus coflow width) and Figure 4 (versus number of coflows), plus the
// ablations called out in DESIGN.md.
//
// The paper's experiments run on a 128-server (k=8) fat-tree with CPLEX
// solving the LPs. The pure-Go simplex in this repository is slower, so the
// default configuration uses a 16-server (k=4) fat-tree and smaller sweeps;
// every parameter can be raised to paper scale through Config (see
// cmd/coflowbench flags). The quantities reported — absolute totals, ratios
// versus the Baseline heuristic, and average improvement percentages — match
// the figures' panels.
package experiments

import (
	"fmt"
	"math/rand"

	"coflowsched/internal/baselines"
	"coflowsched/internal/coflow"
	"coflowsched/internal/core"
	"coflowsched/internal/graph"
	"coflowsched/internal/stats"
	"coflowsched/internal/workload"
)

// Scheduler is the common interface of every scheme compared in the figures:
// the LP-based algorithms of internal/core and the heuristics of
// internal/baselines all satisfy it.
type Scheduler interface {
	Name() string
	Schedule(inst *coflow.Instance, rng *rand.Rand) (*coflow.CircuitSchedule, error)
}

// Config controls the workload sweeps.
type Config struct {
	// FatK is the fat-tree arity (k); k=8 is the paper's 128-server network,
	// k=4 (default) is the scaled-down 16-server network.
	FatK int
	// Trials is the number of random instances averaged per data point
	// (paper: 10; default here: 3).
	Trials int
	// Seed makes runs reproducible.
	Seed int64
	// NumCoflows is the number of coflows for the width sweep (Figure 3).
	NumCoflows int
	// Widths are the x-axis of Figure 3.
	Widths []int
	// Width is the fixed coflow width for the coflow-count sweep (Figure 4).
	Width int
	// CoflowCounts are the x-axis of Figure 4.
	CoflowCounts []int
	// MeanSize, MeanRelease and MeanWeight parameterize the Poisson workload.
	MeanSize    float64
	MeanRelease float64
	MeanWeight  float64
	// CandidatePaths bounds the LP's routing choices (core.Options).
	CandidatePaths int
	// Validate re-checks every produced schedule for feasibility (slower;
	// always on in tests).
	Validate bool
}

// DefaultConfig returns the scaled-down configuration used by the benchmarks
// and examples.
func DefaultConfig() Config {
	return Config{
		FatK:           4,
		Trials:         3,
		Seed:           1,
		NumCoflows:     5,
		Widths:         []int{2, 4, 6, 8},
		Width:          4,
		CoflowCounts:   []int{4, 6, 8, 10},
		MeanSize:       4,
		MeanRelease:    2,
		MeanWeight:     1,
		CandidatePaths: 4,
		Validate:       false,
	}
}

// PaperConfig returns the paper's own experiment scale (128 servers, 10
// trials, widths up to 32, up to 30 coflows). Running it with the pure-Go
// simplex takes hours; it is provided for completeness.
func PaperConfig() Config {
	c := DefaultConfig()
	c.FatK = 8
	c.Trials = 10
	c.NumCoflows = 10
	c.Widths = []int{4, 8, 16, 32}
	c.Width = 16
	c.CoflowCounts = []int{10, 15, 20, 25, 30}
	c.CandidatePaths = 4
	return c
}

// Schedulers returns the four schemes of the paper's §4.3 comparison, in the
// order the figures list them: LP-Based, Route-only, Schedule-only, Baseline.
func (c Config) Schedulers() []Scheduler {
	lp := core.CircuitFreePaths{Opts: core.Options{CandidatePaths: c.CandidatePaths}}
	return []Scheduler{lp, baselines.RouteOnly{}, baselines.ScheduleOnly{}, baselines.Baseline{}}
}

// network builds the experiment topology.
func (c Config) network() *graph.Graph {
	k := c.FatK
	if k <= 0 {
		k = 4
	}
	return graph.FatTree(k, 1)
}

// SweepPoint measures every scheduler on `trials` random instances drawn with
// the given workload shape and returns the mean total weighted completion
// time per scheduler (in the order of Schedulers()).
func (c Config) SweepPoint(g *graph.Graph, numCoflows, width int, schedulers []Scheduler) ([]float64, error) {
	trials := c.Trials
	if trials <= 0 {
		trials = 1
	}
	sums := make([][]float64, len(schedulers))
	for i := range sums {
		sums[i] = make([]float64, 0, trials)
	}
	for trial := 0; trial < trials; trial++ {
		// One instance per trial, shared by every scheduler (paired design,
		// as in the paper).
		seed := c.Seed + int64(trial)*7919 + int64(numCoflows)*31 + int64(width)*17
		rng := rand.New(rand.NewSource(seed))
		inst, err := workload.Generate(g, workload.Config{
			NumCoflows:  numCoflows,
			Width:       width,
			MeanSize:    c.MeanSize,
			MeanRelease: c.MeanRelease,
			MeanWeight:  c.MeanWeight,
		}, rng)
		if err != nil {
			return nil, err
		}
		for si, s := range schedulers {
			srng := rand.New(rand.NewSource(seed + int64(si) + 1))
			cs, err := s.Schedule(inst, srng)
			if err != nil {
				return nil, fmt.Errorf("experiments: %s on trial %d: %w", s.Name(), trial, err)
			}
			if c.Validate {
				if err := cs.Validate(inst); err != nil {
					return nil, fmt.Errorf("experiments: %s produced an infeasible schedule: %w", s.Name(), err)
				}
			}
			sums[si] = append(sums[si], cs.Objective(inst))
		}
	}
	out := make([]float64, len(schedulers))
	for i := range schedulers {
		out[i] = stats.Mean(sums[i])
	}
	return out, nil
}

// ImprovementSummary computes, for each competing scheduler, the average
// percentage by which its completion time exceeds the first scheduler's
// (the paper's "%22 or more improvement on average" numbers). values is
// indexed [scheduler][point].
func ImprovementSummary(names []string, values [][]float64) map[string]float64 {
	out := map[string]float64{}
	if len(values) == 0 {
		return out
	}
	for si := 1; si < len(values); si++ {
		var imps []float64
		for p := range values[si] {
			imps = append(imps, stats.ImprovementPercent(values[0][p], values[si][p]))
		}
		out[names[si]] = stats.Mean(imps)
	}
	return out
}
