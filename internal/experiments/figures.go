package experiments

import (
	"fmt"

	"coflowsched/internal/coflow"
	"coflowsched/internal/core"
	"coflowsched/internal/graph"
	"coflowsched/internal/stats"
)

// FigureResult bundles the absolute-value table, the ratio-to-baseline table
// (the two panels of Figures 3 and 4) and the average improvement of
// LP-Based over each competitor.
type FigureResult struct {
	Absolute     *stats.Table
	Ratio        *stats.Table
	Improvements map[string]float64
}

// String renders both panels plus the improvement summary.
func (fr *FigureResult) String() string {
	s := fr.Absolute.String() + "\n" + fr.Ratio.String() + "\nAverage improvement of LP-Based:\n"
	for _, name := range []string{"Route-only", "Schedule-only", "Baseline"} {
		if v, ok := fr.Improvements[name]; ok {
			s += fmt.Sprintf("  over %-14s %6.1f%%\n", name, v)
		}
	}
	return s
}

// Figure3 reproduces the coflow-width sweep: the number of coflows is fixed
// and the width (flows per coflow) varies; both panels of the figure are
// returned.
func Figure3(cfg Config) (*FigureResult, error) {
	g := cfg.network()
	schedulers := cfg.Schedulers()
	labels := make([]string, len(cfg.Widths))
	for i, w := range cfg.Widths {
		labels[i] = fmt.Sprintf("%d flows", w)
	}
	title := fmt.Sprintf("Figure 3: %d-server fat-tree, %d coflows, varying coflow width",
		len(g.Hosts()), cfg.NumCoflows)
	return sweep(cfg, g, schedulers, title, "width", labels, func(i int) (int, int) {
		return cfg.NumCoflows, cfg.Widths[i]
	}, len(cfg.Widths))
}

// Figure4 reproduces the coflow-count sweep: the width is fixed and the
// number of coflows varies.
func Figure4(cfg Config) (*FigureResult, error) {
	g := cfg.network()
	schedulers := cfg.Schedulers()
	labels := make([]string, len(cfg.CoflowCounts))
	for i, n := range cfg.CoflowCounts {
		labels[i] = fmt.Sprintf("%d coflows", n)
	}
	title := fmt.Sprintf("Figure 4: %d-server fat-tree, coflow width %d, varying number of coflows",
		len(g.Hosts()), cfg.Width)
	return sweep(cfg, g, schedulers, title, "coflows", labels, func(i int) (int, int) {
		return cfg.CoflowCounts[i], cfg.Width
	}, len(cfg.CoflowCounts))
}

// sweep runs the shared sweep machinery of Figures 3 and 4.
func sweep(cfg Config, g *graph.Graph, schedulers []Scheduler, title, xlabel string, labels []string,
	point func(i int) (numCoflows, width int), n int) (*FigureResult, error) {

	values := make([][]float64, len(schedulers))
	for i := range values {
		values[i] = make([]float64, n)
	}
	for p := 0; p < n; p++ {
		nc, w := point(p)
		means, err := cfg.SweepPoint(g, nc, w, schedulers)
		if err != nil {
			return nil, err
		}
		for si := range schedulers {
			values[si][p] = means[si]
		}
	}
	names := make([]string, len(schedulers))
	for i, s := range schedulers {
		names[i] = s.Name()
	}

	abs := stats.NewTable(title, xlabel, labels)
	for si, s := range schedulers {
		if err := abs.AddSeries(s.Name(), values[si]); err != nil {
			return nil, err
		}
	}
	ratio, err := abs.NormalizeTo("Baseline")
	if err != nil {
		return nil, err
	}
	return &FigureResult{
		Absolute:     abs,
		Ratio:        ratio,
		Improvements: ImprovementSummary(names, values),
	}, nil
}

// Figure1Result reports the paper's motivating triangle example: the total
// completion time of fair sharing (s1), strict coflow priority (s2), and the
// LP-based schedule, together with the certified lower bound.
type Figure1Result struct {
	FairSharing float64
	Priority    float64
	LPBased     float64
	LowerBound  float64
}

// String renders the comparison.
func (r Figure1Result) String() string {
	return fmt.Sprintf(
		"Figure 1 (triangle, coflows A{2,1}, B{1}, C{2}):\n"+
			"  (s1) fair sharing        : %5.2f\n"+
			"  (s2) coflow priority     : %5.2f\n"+
			"  (s3) LP-based            : %5.2f\n"+
			"  certified lower bound    : %5.2f\n",
		r.FairSharing, r.Priority, r.LPBased, r.LowerBound)
}

// Figure1Instance builds the triangle instance of the paper's Figure 1 with
// shortest (direct) paths assigned: coflow A has flows A1 (x->y, size 2) and
// A2 (y->z, size 1); coflows B (y->z, size 1) and C (x->z, size 2) have one
// flow each; unit edge capacities, unit weights.
func Figure1Instance() (*coflow.Instance, error) {
	g := graph.Triangle()
	x, _ := g.FindNode("x")
	y, _ := g.FindNode("y")
	z, _ := g.FindNode("z")
	inst := &coflow.Instance{
		Network: g,
		Coflows: []coflow.Coflow{
			{Name: "A", Weight: 1, Flows: []coflow.Flow{
				{Source: x, Dest: y, Size: 2},
				{Source: y, Dest: z, Size: 1},
			}},
			{Name: "B", Weight: 1, Flows: []coflow.Flow{{Source: y, Dest: z, Size: 1}}},
			{Name: "C", Weight: 1, Flows: []coflow.Flow{{Source: x, Dest: z, Size: 2}}},
		},
	}
	if err := inst.AssignShortestPaths(); err != nil {
		return nil, err
	}
	return inst, nil
}

// Figure1 builds the triangle instance of the paper's Figure 1 and evaluates
// the three scheduling strategies it illustrates: (s1) every flow gets half
// the link bandwidth, (s2) strict coflow priority A > B > C, (s3) the
// LP-based schedule. The paper's totals are 10, 8 and 7; with the flow sizes
// spelled out in the figure's caption our LP-based schedule reaches the true
// optimum 5 (= the certified lower bound), preserving the figure's ordering
// s1 > s2 > s3.
func Figure1() (*Figure1Result, error) {
	inst, err := Figure1Instance()
	if err != nil {
		return nil, err
	}
	a1 := coflow.FlowRef{Coflow: 0, Index: 0}
	a2 := coflow.FlowRef{Coflow: 0, Index: 1}
	b := coflow.FlowRef{Coflow: 1, Index: 0}
	cc := coflow.FlowRef{Coflow: 2, Index: 0}
	path := func(r coflow.FlowRef) graph.Path { return inst.Flow(r).Path }

	// (s1) every flow at rate 1/2 from time 0.
	s1 := coflow.NewCircuitSchedule()
	s1.Set(a1, &coflow.FlowSchedule{Path: path(a1), Segments: []coflow.BandwidthSegment{{Start: 0, End: 4, Rate: 0.5}}})
	s1.Set(a2, &coflow.FlowSchedule{Path: path(a2), Segments: []coflow.BandwidthSegment{{Start: 0, End: 2, Rate: 0.5}}})
	s1.Set(b, &coflow.FlowSchedule{Path: path(b), Segments: []coflow.BandwidthSegment{{Start: 0, End: 2, Rate: 0.5}}})
	s1.Set(cc, &coflow.FlowSchedule{Path: path(cc), Segments: []coflow.BandwidthSegment{{Start: 0, End: 4, Rate: 0.5}}})
	if err := s1.Validate(inst); err != nil {
		return nil, fmt.Errorf("experiments: figure 1 s1 infeasible: %w", err)
	}

	// (s2) strict coflow priority A, then B, then C — C waits even though its
	// link is idle, exactly as drawn in the figure.
	s2 := coflow.NewCircuitSchedule()
	s2.Set(a1, &coflow.FlowSchedule{Path: path(a1), Segments: []coflow.BandwidthSegment{{Start: 0, End: 2, Rate: 1}}})
	s2.Set(a2, &coflow.FlowSchedule{Path: path(a2), Segments: []coflow.BandwidthSegment{{Start: 0, End: 1, Rate: 1}}})
	s2.Set(b, &coflow.FlowSchedule{Path: path(b), Segments: []coflow.BandwidthSegment{{Start: 1, End: 2, Rate: 1}}})
	s2.Set(cc, &coflow.FlowSchedule{Path: path(cc), Segments: []coflow.BandwidthSegment{{Start: 2, End: 4, Rate: 1}}})
	if err := s2.Validate(inst); err != nil {
		return nil, fmt.Errorf("experiments: figure 1 s2 infeasible: %w", err)
	}

	// (s3) the LP-based schedule.
	lpRes, err := (core.CircuitGivenPaths{}).ScheduleASAP(inst)
	if err != nil {
		return nil, err
	}
	if err := lpRes.Schedule.Validate(inst); err != nil {
		return nil, fmt.Errorf("experiments: figure 1 LP schedule infeasible: %w", err)
	}
	return &Figure1Result{
		FairSharing: s1.Objective(inst),
		Priority:    s2.Objective(inst),
		LPBased:     lpRes.Objective(inst),
		LowerBound:  core.CombinedLowerBound(inst, lpRes),
	}, nil
}
