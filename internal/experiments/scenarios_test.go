package experiments

import (
	"testing"

	"coflowsched/internal/workload"
)

func TestScenarioSweepSingle(t *testing.T) {
	cfg := DefaultScenarioConfig()
	cfg.Scenarios = []string{"incast"}
	cfg.Validate = true
	res, err := ScenarioSweep(cfg)
	if err != nil {
		t.Fatalf("ScenarioSweep: %v", err)
	}
	if len(res.Results) != len(ScenarioPolicies()) {
		t.Fatalf("got %d results, want one per policy (%d)", len(res.Results), len(ScenarioPolicies()))
	}
	for _, r := range res.Results {
		if r.WeightedCCT <= 0 || r.Makespan <= 0 {
			t.Errorf("%s/%s: degenerate objectives %+v", r.Scenario, r.Policy, r)
		}
		if r.SlowdownP95 < 1-1e-9 {
			t.Errorf("%s/%s: slowdown p95 %v below 1 (faster than isolated run?)", r.Scenario, r.Policy, r.SlowdownP95)
		}
	}
}

func TestScenarioSweepUnknownName(t *testing.T) {
	cfg := DefaultScenarioConfig()
	cfg.Scenarios = []string{"definitely-not-registered"}
	if _, err := ScenarioSweep(cfg); err == nil {
		t.Fatalf("unknown scenario name should error")
	}
}

// TestScenarioSweepAll covers every registered scenario end to end — the
// acceptance path behind `coflowbench -scenario all`. Short mode runs a
// cheap subset; the full sweep still runs in CI.
func TestScenarioSweepAll(t *testing.T) {
	cfg := DefaultScenarioConfig()
	if testing.Short() {
		cfg.Scenarios = []string{"uniform", "fb-trace"}
	}
	res, err := ScenarioSweep(cfg)
	if err != nil {
		t.Fatalf("ScenarioSweep: %v", err)
	}
	wantScenarios := len(cfg.Scenarios)
	if wantScenarios == 0 {
		wantScenarios = len(workload.ScenarioNames())
	}
	if got := len(res.Results); got != wantScenarios*len(ScenarioPolicies()) {
		t.Fatalf("got %d results, want %d scenarios x %d policies", got, wantScenarios, len(ScenarioPolicies()))
	}
	if res.Absolute == nil || res.Ratio == nil {
		t.Fatalf("missing tables")
	}
}
