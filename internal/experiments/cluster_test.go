package experiments

import "testing"

// TestClusterSweepSmall runs a tiny 1-vs-2-shard sweep end to end: every
// coflow must complete and the table must carry one row per shard count.
func TestClusterSweepSmall(t *testing.T) {
	res, err := ClusterSweep(ClusterConfig{
		ShardCounts: []int{1, 2},
		Coflows:     24,
		Width:       2,
	})
	if err != nil {
		t.Fatalf("cluster sweep: %v", err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("%d rows, want 2", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.Completed != 24 {
			t.Errorf("%d shards: completed %d of 24", row.Shards, row.Completed)
		}
		if row.AdmitRPS <= 0 || row.WeightedResponse <= 0 {
			t.Errorf("%d shards: degenerate measurements %+v", row.Shards, row)
		}
		if row.SlowdownP50 < 1-1e-9 {
			t.Errorf("%d shards: slowdown p50 %v < 1", row.Shards, row.SlowdownP50)
		}
	}
	if res.Table == nil || len(res.Table.SeriesSet) != 4 {
		t.Fatalf("scaling table malformed: %+v", res.Table)
	}

	// Unknown placement fails fast.
	if _, err := ClusterSweep(ClusterConfig{Placement: "bogus"}); err == nil {
		t.Error("bogus placement accepted")
	}
}
