package experiments

import (
	"fmt"
	"math/rand"

	"coflowsched/internal/coflow"
	"coflowsched/internal/core"
	"coflowsched/internal/graph"
	"coflowsched/internal/stats"
	"coflowsched/internal/workload"
)

// Table1Row is one line of the Table 1 reproduction: for each model (packet /
// circuit, paths given / not given) it reports the proven approximation
// guarantee of the paper and the empirical ratio ALG / lower-bound measured
// on random instances. The empirical ratio must never exceed the proven
// bound for the schedules this repository produces (and is far below it in
// practice, matching the paper's remark that the worst case "does not happen
// in practice").
type Table1Row struct {
	Model          string
	Paths          string
	ProvenBound    string
	MeanRatio      float64
	MaxRatio       float64
	Hardness       string
	TrialsMeasured int
}

// Table1Result is the reproduced table.
type Table1Result struct {
	Rows []Table1Row
}

// String renders the table in the layout of the paper's Table 1, extended
// with the measured columns.
func (t *Table1Result) String() string {
	s := fmt.Sprintf("%-14s %-10s %-22s %-12s %-12s %s\n",
		"Model", "Paths", "Approx. (proven)", "mean ratio", "max ratio", "Hardness")
	for _, r := range t.Rows {
		s += fmt.Sprintf("%-14s %-10s %-22s %-12.2f %-12.2f %s\n",
			r.Model, r.Paths, r.ProvenBound, r.MeanRatio, r.MaxRatio, r.Hardness)
	}
	return s
}

// Table1Config controls the size of the random instances used to measure
// empirical ratios.
type Table1Config struct {
	Trials     int
	Seed       int64
	NumCoflows int
	Width      int
}

// DefaultTable1Config keeps the instances small enough for the exact
// arc-flow LP.
func DefaultTable1Config() Table1Config {
	return Table1Config{Trials: 3, Seed: 7, NumCoflows: 3, Width: 3}
}

// Table1 measures empirical approximation ratios for all four problem
// variants of the paper on random instances, against the certified lower
// bound max(LP/(1+ε), combinatorial bound).
func Table1(cfg Table1Config) (*Table1Result, error) {
	if cfg.Trials <= 0 {
		cfg.Trials = 1
	}
	res := &Table1Result{}

	type measured struct{ mean, max float64 }
	measure := func(f func(trial int) (float64, error)) (measured, error) {
		var ratios []float64
		for trial := 0; trial < cfg.Trials; trial++ {
			r, err := f(trial)
			if err != nil {
				return measured{}, err
			}
			ratios = append(ratios, r)
		}
		max := 0.0
		for _, r := range ratios {
			if r > max {
				max = r
			}
		}
		return measured{mean: stats.Mean(ratios), max: max}, nil
	}

	// Packet-based, paths given (ring topology, fixed shortest paths).
	pktGiven, err := measure(func(trial int) (float64, error) {
		rng := rand.New(rand.NewSource(cfg.Seed + int64(trial)))
		inst, err := workload.Generate(graph.Ring(6, 1), workload.Config{
			NumCoflows: cfg.NumCoflows, Width: cfg.Width, PacketModel: true, MeanRelease: 1,
		}, rng)
		if err != nil {
			return 0, err
		}
		if err := inst.AssignShortestPaths(); err != nil {
			return 0, err
		}
		r, err := (core.PacketGivenPaths{}).Schedule(inst)
		if err != nil {
			return 0, err
		}
		return ratioAgainstBound(inst, r.Objective(inst), r.LowerBound), nil
	})
	if err != nil {
		return nil, err
	}
	res.Rows = append(res.Rows, Table1Row{
		Model: "Packet-based", Paths: "given", ProvenBound: "O(1)",
		MeanRatio: pktGiven.mean, MaxRatio: pktGiven.max, Hardness: "APX-hard",
		TrialsMeasured: cfg.Trials,
	})

	// Packet-based, paths not given (grid topology).
	pktFree, err := measure(func(trial int) (float64, error) {
		rng := rand.New(rand.NewSource(cfg.Seed + 100 + int64(trial)))
		inst, err := workload.Generate(graph.Grid(3, 3, 1), workload.Config{
			NumCoflows: cfg.NumCoflows, Width: cfg.Width, PacketModel: true, MeanRelease: 1,
		}, rng)
		if err != nil {
			return 0, err
		}
		r, err := (core.PacketFreePaths{}).ScheduleASAP(inst, rng)
		if err != nil {
			return 0, err
		}
		return ratioAgainstBound(inst, r.Objective(inst), r.LowerBound), nil
	})
	if err != nil {
		return nil, err
	}
	res.Rows = append(res.Rows, Table1Row{
		Model: "Packet-based", Paths: "not given", ProvenBound: "O(1)",
		MeanRatio: pktFree.mean, MaxRatio: pktFree.max, Hardness: "APX-hard",
		TrialsMeasured: cfg.Trials,
	})

	// Circuit-based, paths given (small fat-tree, shortest paths).
	circGiven, err := measure(func(trial int) (float64, error) {
		rng := rand.New(rand.NewSource(cfg.Seed + 200 + int64(trial)))
		inst, err := workload.GenerateWithPaths(graph.FatTree(4, 1), workload.Config{
			NumCoflows: cfg.NumCoflows, Width: cfg.Width, MeanSize: 3, MeanRelease: 1,
		}, rng)
		if err != nil {
			return 0, err
		}
		r, err := (core.CircuitGivenPaths{}).ScheduleASAP(inst)
		if err != nil {
			return 0, err
		}
		return ratioAgainstBound(inst, r.Objective(inst), core.CombinedLowerBound(inst, r)), nil
	})
	if err != nil {
		return nil, err
	}
	res.Rows = append(res.Rows, Table1Row{
		Model: "Circuit-based", Paths: "given", ProvenBound: "O(1) (17.6)",
		MeanRatio: circGiven.mean, MaxRatio: circGiven.max, Hardness: "NP-hard",
		TrialsMeasured: cfg.Trials,
	})

	// Circuit-based, paths not given (triangle, exact arc-flow LP).
	circFree, err := measure(func(trial int) (float64, error) {
		rng := rand.New(rand.NewSource(cfg.Seed + 300 + int64(trial)))
		inst, err := workload.Generate(graph.Triangle(), workload.Config{
			NumCoflows: cfg.NumCoflows, Width: 2, MeanSize: 3, MeanRelease: 1,
		}, rng)
		if err != nil {
			return 0, err
		}
		r, err := (core.CircuitFreePathsExact{}).ScheduleASAP(inst, rng)
		if err != nil {
			return 0, err
		}
		return ratioAgainstBound(inst, r.Objective(inst), core.CombinedLowerBound(inst, r)), nil
	})
	if err != nil {
		return nil, err
	}
	res.Rows = append(res.Rows, Table1Row{
		Model: "Circuit-based", Paths: "not given", ProvenBound: "O(log|E|/loglog|E|)",
		MeanRatio: circFree.mean, MaxRatio: circFree.max, Hardness: "Omega(log|E|/loglog|E|)",
		TrialsMeasured: cfg.Trials,
	})
	return res, nil
}

// ratioAgainstBound guards against degenerate lower bounds.
func ratioAgainstBound(inst *coflow.Instance, objective, lb float64) float64 {
	trivial := core.TrivialLowerBound(inst)
	if trivial > lb {
		lb = trivial
	}
	if lb <= 0 {
		return 1
	}
	return objective / lb
}
