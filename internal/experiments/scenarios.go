package experiments

import (
	"fmt"

	"coflowsched/internal/online"
	"coflowsched/internal/stats"
	"coflowsched/internal/workload"
)

// ScenarioConfig controls the scenario x policy sweep: every named workload
// scenario (internal/workload's registry — trace replay, heavy-tail, incast,
// fan-in/out, diurnal) is streamed through each online policy and scored.
// Unlike OnlineSweep, which varies load on one synthetic shape, this sweep
// varies the shape itself — the "as many scenarios as you can imagine" axis.
type ScenarioConfig struct {
	// Scenarios names the registry entries to run (empty = all, sorted).
	Scenarios []string
	// EpochLength is the online engine's re-decision period (default 2).
	EpochLength float64
	// Workers sizes the shared solver pool for pipelined policies (default 2).
	Workers int
	// Validate re-checks every transcript for feasibility (slower).
	Validate bool
}

// DefaultScenarioConfig runs every registered scenario.
func DefaultScenarioConfig() ScenarioConfig {
	return ScenarioConfig{EpochLength: 2, Workers: 2}
}

func (c ScenarioConfig) withDefaults() ScenarioConfig {
	if c.EpochLength <= 0 {
		c.EpochLength = 2
	}
	if c.Workers <= 0 {
		c.Workers = 2
	}
	return c
}

// ScenarioPolicies returns the policies compared on every scenario. The
// hindsight Oracle is deliberately absent: scenario instances are fixed (one
// seed each), so its lower bound adds solve time without averaging value;
// the golden regression harness pins the online policies' outputs instead.
func ScenarioPolicies() []online.Policy {
	return []online.Policy{
		online.LPEpoch{},
		online.SEBFOnline{},
		online.FIFOOnline{},
	}
}

// ScenarioResult is one (scenario, policy) cell of the sweep.
type ScenarioResult struct {
	Scenario string `json:"scenario"`
	Policy   string `json:"policy"`
	Coflows  int    `json:"coflows"`
	Flows    int    `json:"flows"`
	// WeightedCCT and WeightedResponse are the run's objectives; Makespan the
	// last completion.
	WeightedCCT      float64 `json:"weighted_cct"`
	WeightedResponse float64 `json:"weighted_response"`
	Makespan         float64 `json:"makespan"`
	// SlowdownP50/P95 summarize per-coflow response over isolated bottleneck
	// time.
	SlowdownP50 float64 `json:"slowdown_p50"`
	SlowdownP95 float64 `json:"slowdown_p95"`
}

// ScenarioSweepResult bundles the sweep: one row per scenario in the tables
// (absolute weighted CCT and the ratio to FIFO), plus the full per-cell
// detail for machine consumers.
type ScenarioSweepResult struct {
	Absolute *stats.Table
	Ratio    *stats.Table
	Results  []ScenarioResult
}

// String renders both panels.
func (r *ScenarioSweepResult) String() string {
	return r.Absolute.String() + "\n" + r.Ratio.String()
}

// ScenarioSweep replays each scenario through every policy. All policies see
// the identical instance per scenario (scenarios are seeded), so differences
// are pure policy effects.
func ScenarioSweep(cfg ScenarioConfig) (*ScenarioSweepResult, error) {
	cfg = cfg.withDefaults()
	names := cfg.Scenarios
	if len(names) == 0 {
		names = workload.ScenarioNames()
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("experiments: no scenarios registered")
	}
	pols := ScenarioPolicies()
	pool := online.NewPool(cfg.Workers)
	defer pool.Close()

	values := make([][]float64, len(pols))
	for i := range values {
		values[i] = make([]float64, len(names))
	}
	res := &ScenarioSweepResult{}
	for si, name := range names {
		sc, ok := workload.LookupScenario(name)
		if !ok {
			return nil, fmt.Errorf("experiments: unknown scenario %q (have %v)", name, workload.ScenarioNames())
		}
		inst, _, err := sc.Build()
		if err != nil {
			return nil, err
		}
		for pi, p := range pols {
			r, err := online.Run(inst, p, online.Config{
				EpochLength: cfg.EpochLength,
				Pool:        pool,
				Seed:        sc.Seed,
			})
			if err != nil {
				return nil, fmt.Errorf("experiments: scenario %s policy %s: %w", name, p.Name(), err)
			}
			if cfg.Validate {
				if err := r.Schedule.Validate(inst); err != nil {
					return nil, fmt.Errorf("experiments: scenario %s policy %s infeasible: %w", name, p.Name(), err)
				}
			}
			values[pi][si] = r.WeightedCCT
			res.Results = append(res.Results, ScenarioResult{
				Scenario:         name,
				Policy:           p.Name(),
				Coflows:          len(inst.Coflows),
				Flows:            inst.NumFlows(),
				WeightedCCT:      r.WeightedCCT,
				WeightedResponse: r.WeightedResponse,
				Makespan:         r.Makespan,
				SlowdownP50:      stats.PercentileOr(r.Slowdown, 50, 0),
				SlowdownP95:      stats.PercentileOr(r.Slowdown, 95, 0),
			})
		}
	}

	abs := stats.NewTable("ScenarioSweep: weighted CCT per scenario", "scenario", names)
	for pi, p := range pols {
		if err := abs.AddSeries(p.Name(), values[pi]); err != nil {
			return nil, err
		}
	}
	ratio, err := abs.NormalizeTo(online.FIFOOnline{}.Name())
	if err != nil {
		return nil, err
	}
	res.Absolute, res.Ratio = abs, ratio
	return res, nil
}
