package experiments

import (
	"fmt"
	"math/rand"

	"coflowsched/internal/baselines"
	"coflowsched/internal/graph"
	"coflowsched/internal/online"
	"coflowsched/internal/stats"
	"coflowsched/internal/workload"
)

// OnlineConfig controls the arrival-rate × policy sweep of the online
// scheduler. It is the online counterpart of Config: instead of varying the
// instance shape, it varies the coflow arrival rate from light load to
// overload and compares the epoch policies of internal/online.
type OnlineConfig struct {
	// FatK is the fat-tree arity (k=4 default: 16 servers).
	FatK int
	// Trials is the number of random arrival processes averaged per rate.
	Trials int
	// Seed makes runs reproducible.
	Seed int64
	// NumCoflows is the number of coflows streamed per trial.
	NumCoflows int
	// Width is the number of flows per coflow.
	Width int
	// MeanSize and MeanWeight parameterize the per-coflow shape.
	MeanSize   float64
	MeanWeight float64
	// ArrivalRates is the x-axis: mean coflow arrivals per time unit.
	ArrivalRates []float64
	// EpochLength is the online engine's re-decision period.
	EpochLength float64
	// Workers sizes the solver pool for pipelined policies.
	Workers int
	// Validate re-checks every transcript for feasibility (slower).
	Validate bool
}

// DefaultOnlineConfig returns a configuration small enough for tests and CI:
// three arrival rates spanning light load to overload on a 16-server
// fat-tree.
func DefaultOnlineConfig() OnlineConfig {
	return OnlineConfig{
		FatK:         4,
		Trials:       3,
		Seed:         1,
		NumCoflows:   8,
		Width:        3,
		MeanSize:     4,
		MeanWeight:   1,
		ArrivalRates: []float64{0.5, 2.0, 8.0},
		EpochLength:  2,
		Workers:      2,
	}
}

// PaperOnlineConfig scales the sweep to the paper's 128-server (k=8)
// fat-tree with longer arrival streams. The per-epoch LP re-solves take
// multiple seconds each with the pure-Go simplex, so — like PaperConfig —
// this is provided for completeness rather than routine use.
func PaperOnlineConfig() OnlineConfig {
	c := DefaultOnlineConfig()
	c.FatK = 8
	c.Trials = 5
	c.NumCoflows = 20
	c.Width = 8
	c.ArrivalRates = []float64{0.25, 1, 4, 16}
	return c
}

// OnlinePolicies returns the policies compared by the sweep, in display
// order: the hindsight Oracle first (lower-bound reference), then the two
// reordering policies, then the FIFO strawman.
func (c OnlineConfig) OnlinePolicies() []online.Policy {
	return []online.Policy{
		online.NewOracle(baselines.SEBF{}),
		online.LPEpoch{},
		online.SEBFOnline{},
		online.FIFOOnline{},
	}
}

// OnlineSweepResult bundles the two panels of the online comparison: mean
// weighted CCT per (rate, policy), and the same normalized to FIFOOnline.
type OnlineSweepResult struct {
	Absolute *stats.Table
	Ratio    *stats.Table
	// MeanSolveLatency aggregates, per policy, the mean epoch solve latency
	// in seconds across all rates and trials.
	MeanSolveLatency map[string]float64
}

// String renders both panels plus the solve-latency summary.
func (r *OnlineSweepResult) String() string {
	s := r.Absolute.String() + "\n" + r.Ratio.String() + "\nMean epoch solve latency:\n"
	for _, series := range r.Absolute.SeriesSet {
		if v, ok := r.MeanSolveLatency[series.Name]; ok {
			s += fmt.Sprintf("  %-20s %8.3f ms\n", series.Name, v*1e3)
		}
	}
	return s
}

// OnlineSweep streams Poisson coflow arrivals through every online policy at
// each configured arrival rate and tabulates mean weighted CCT. All policies
// share the same instances per trial (paired design, as in the offline
// figures).
func OnlineSweep(cfg OnlineConfig) (*OnlineSweepResult, error) {
	if cfg.FatK <= 0 {
		cfg.FatK = 4
	}
	if cfg.Trials <= 0 {
		cfg.Trials = 1
	}
	g := graph.FatTree(cfg.FatK, 1)
	pols := cfg.OnlinePolicies()

	// One solver pool shared by every run in the sweep bounds total LP
	// parallelism in this process.
	sharedPool := online.NewPool(cfg.Workers)
	defer sharedPool.Close()

	values := make([][]float64, len(pols))
	for i := range values {
		values[i] = make([]float64, len(cfg.ArrivalRates))
	}
	latencies := make(map[string][]float64)

	for ri, rate := range cfg.ArrivalRates {
		sums := make([][]float64, len(pols))
		for trial := 0; trial < cfg.Trials; trial++ {
			seed := cfg.Seed + int64(trial)*7919 + int64(ri)*104729
			rng := rand.New(rand.NewSource(seed))
			inst, _, err := workload.GenerateArrivals(g, workload.ArrivalConfig{
				Config: workload.Config{
					NumCoflows: cfg.NumCoflows,
					Width:      cfg.Width,
					MeanSize:   cfg.MeanSize,
					MeanWeight: cfg.MeanWeight,
				},
				Rate: rate,
			}, rng)
			if err != nil {
				return nil, err
			}
			for pi, p := range pols {
				res, err := online.Run(inst, p, online.Config{
					EpochLength: cfg.EpochLength,
					Pool:        sharedPool,
					Seed:        seed,
				})
				if err != nil {
					return nil, fmt.Errorf("experiments: %s at rate %v trial %d: %w", p.Name(), rate, trial, err)
				}
				if cfg.Validate {
					if err := res.Schedule.Validate(inst); err != nil {
						return nil, fmt.Errorf("experiments: %s produced an infeasible online schedule: %w", p.Name(), err)
					}
				}
				sums[pi] = append(sums[pi], res.WeightedCCT)
				latencies[p.Name()] = append(latencies[p.Name()], res.SolveLatencies()...)
			}
		}
		for pi := range pols {
			values[pi][ri] = stats.Mean(sums[pi])
		}
	}

	labels := make([]string, len(cfg.ArrivalRates))
	for i, r := range cfg.ArrivalRates {
		labels[i] = fmt.Sprintf("rate %.2g", r)
	}
	title := fmt.Sprintf("OnlineSweep: %d-server fat-tree, %d coflows x %d flows, epoch %v",
		len(g.Hosts()), cfg.NumCoflows, cfg.Width, cfg.EpochLength)
	abs := stats.NewTable(title, "arrival rate", labels)
	for pi, p := range pols {
		if err := abs.AddSeries(p.Name(), values[pi]); err != nil {
			return nil, err
		}
	}
	ratio, err := abs.NormalizeTo(online.FIFOOnline{}.Name())
	if err != nil {
		return nil, err
	}
	meanLat := make(map[string]float64, len(latencies))
	for name, ls := range latencies {
		meanLat[name] = stats.Mean(ls)
	}
	return &OnlineSweepResult{Absolute: abs, Ratio: ratio, MeanSolveLatency: meanLat}, nil
}
