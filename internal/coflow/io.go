package coflow

import (
	"encoding/json"
	"fmt"
	"io"

	"coflowsched/internal/graph"
)

// jsonNode and jsonEdge mirror graph.Node/graph.Edge for serialization.
type jsonNode struct {
	Name string `json:"name"`
	Kind int    `json:"kind"`
}

type jsonEdge struct {
	From     int     `json:"from"`
	To       int     `json:"to"`
	Capacity float64 `json:"capacity"`
}

type jsonInstance struct {
	Nodes   []jsonNode `json:"nodes"`
	Edges   []jsonEdge `json:"edges"`
	Coflows []Coflow   `json:"coflows"`
}

// WriteJSON serializes the instance (network and coflows) as JSON.
func (inst *Instance) WriteJSON(w io.Writer) error {
	ji := jsonInstance{Coflows: inst.Coflows}
	for _, n := range inst.Network.Nodes() {
		ji.Nodes = append(ji.Nodes, jsonNode{Name: n.Name, Kind: int(n.Kind)})
	}
	for _, e := range inst.Network.Edges() {
		ji.Edges = append(ji.Edges, jsonEdge{From: int(e.From), To: int(e.To), Capacity: e.Capacity})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(ji)
}

// ReadJSON parses an instance previously written by WriteJSON.
func ReadJSON(r io.Reader) (*Instance, error) {
	var ji jsonInstance
	dec := json.NewDecoder(r)
	if err := dec.Decode(&ji); err != nil {
		return nil, fmt.Errorf("coflow: decoding instance: %w", err)
	}
	g := graph.New()
	for _, n := range ji.Nodes {
		g.AddNode(n.Name, graph.NodeKind(n.Kind))
	}
	for i, e := range ji.Edges {
		if e.From < 0 || e.From >= len(ji.Nodes) || e.To < 0 || e.To >= len(ji.Nodes) {
			return nil, fmt.Errorf("coflow: edge %d references unknown node", i)
		}
		if e.Capacity <= 0 {
			return nil, fmt.Errorf("coflow: edge %d has non-positive capacity %v", i, e.Capacity)
		}
		g.AddEdge(graph.NodeID(e.From), graph.NodeID(e.To), e.Capacity)
	}
	inst := &Instance{Network: g, Coflows: ji.Coflows}
	return inst, nil
}
