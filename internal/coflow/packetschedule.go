package coflow

import (
	"fmt"

	"coflowsched/internal/graph"
)

// PacketMove records that a packet crosses Edge during discrete time step
// Time (it occupies the edge for the whole step and arrives at the edge's
// head at Time+1).
type PacketMove struct {
	Time int          `json:"time"`
	Edge graph.EdgeID `json:"edge"`
}

// PacketFlowSchedule is the schedule of a single packet: the ordered list of
// edge traversals. Steps between consecutive moves are spent queued at the
// intermediate node.
type PacketFlowSchedule struct {
	Moves []PacketMove `json:"moves"`
}

// CompletionTime returns the discrete time at which the packet reaches its
// destination: one step after its last move. An empty schedule returns 0.
func (ps *PacketFlowSchedule) CompletionTime() float64 {
	if len(ps.Moves) == 0 {
		return 0
	}
	return float64(ps.Moves[len(ps.Moves)-1].Time + 1)
}

// Path returns the sequence of edges traversed.
func (ps *PacketFlowSchedule) Path() graph.Path {
	p := make(graph.Path, len(ps.Moves))
	for i, m := range ps.Moves {
		p[i] = m.Edge
	}
	return p
}

// PacketSchedule is a complete schedule for a packet-based coflow instance.
type PacketSchedule struct {
	Flows map[FlowRef]*PacketFlowSchedule
}

// NewPacketSchedule returns an empty packet schedule.
func NewPacketSchedule() *PacketSchedule {
	return &PacketSchedule{Flows: make(map[FlowRef]*PacketFlowSchedule)}
}

// Set records the schedule of one packet.
func (ps *PacketSchedule) Set(r FlowRef, s *PacketFlowSchedule) { ps.Flows[r] = s }

// Get returns the schedule of one packet, or nil.
func (ps *PacketSchedule) Get(r FlowRef) *PacketFlowSchedule { return ps.Flows[r] }

// CompletionTimes returns the completion time of every packet.
func (ps *PacketSchedule) CompletionTimes() map[FlowRef]float64 {
	out := make(map[FlowRef]float64, len(ps.Flows))
	for r, s := range ps.Flows {
		out[r] = s.CompletionTime()
	}
	return out
}

// Objective returns the total weighted coflow completion time.
func (ps *PacketSchedule) Objective(inst *Instance) float64 {
	return inst.ObjectiveFromCompletionTimes(ps.CompletionTimes())
}

// Makespan returns the completion time of the last packet.
func (ps *PacketSchedule) Makespan() float64 {
	m := 0.0
	for _, s := range ps.Flows {
		if c := s.CompletionTime(); c > m {
			m = c
		}
	}
	return m
}

// Validate checks feasibility of the packet schedule:
//
//   - every packet has a schedule whose edge sequence forms a walk from its
//     source to its destination,
//   - the first move happens no earlier than the packet's release time and
//     moves are strictly increasing in time (a packet crosses at most one
//     edge per step),
//   - consecutive moves are contiguous in space (the packet waits in a queue
//     between them),
//   - no two packets cross the same directed edge during the same step
//     (unit edge capacities), and
//   - if a packet's flow has a pre-assigned Path, the schedule follows it.
func (ps *PacketSchedule) Validate(inst *Instance) error {
	type slot struct {
		t int
		e graph.EdgeID
	}
	occupied := make(map[slot]FlowRef)
	for _, ref := range inst.FlowRefs() {
		f := inst.Flow(ref)
		s := ps.Flows[ref]
		if s == nil {
			return fmt.Errorf("packet schedule: packet %s has no schedule", ref)
		}
		if len(s.Moves) == 0 {
			return fmt.Errorf("packet schedule: packet %s never moves (source != dest)", ref)
		}
		if float64(s.Moves[0].Time) < f.Release {
			return fmt.Errorf("packet schedule: packet %s moves at %d before release %v", ref, s.Moves[0].Time, f.Release)
		}
		path := s.Path()
		if err := path.Validate(inst.Network, f.Source, f.Dest); err != nil {
			return fmt.Errorf("packet schedule: packet %s: %v", ref, err)
		}
		if f.Path != nil {
			if len(f.Path) != len(path) {
				return fmt.Errorf("packet schedule: packet %s does not follow its assigned path", ref)
			}
			for i := range path {
				if f.Path[i] != path[i] {
					return fmt.Errorf("packet schedule: packet %s deviates from its assigned path at hop %d", ref, i)
				}
			}
		}
		prev := -1
		for i, m := range s.Moves {
			if m.Time <= prev {
				return fmt.Errorf("packet schedule: packet %s move %d not after previous move", ref, i)
			}
			prev = m.Time
			key := slot{t: m.Time, e: m.Edge}
			if other, ok := occupied[key]; ok {
				return fmt.Errorf("packet schedule: edge %d used by both %s and %s at step %d", m.Edge, other, ref, m.Time)
			}
			occupied[key] = ref
		}
	}
	return nil
}

// MaxQueueLength returns the maximum number of packets simultaneously queued
// at any node (excluding sources before release). The constant-factor packet
// scheduling results (Leighton-Maggs-Rao, Srinivasan-Teo) guarantee bounded
// queues; this accessor lets tests and experiments verify that.
func (ps *PacketSchedule) MaxQueueLength(inst *Instance) int {
	// A packet occupies the queue of node v from the moment it arrives at v
	// until the step it leaves v.
	type nodeStep struct {
		v graph.NodeID
		t int
	}
	count := map[nodeStep]int{}
	maxQ := 0
	for ref, s := range ps.Flows {
		f := inst.Flow(ref)
		_ = f
		for i := 0; i+1 < len(s.Moves); i++ {
			arrive := s.Moves[i].Time + 1
			depart := s.Moves[i+1].Time
			v := inst.Network.Edge(s.Moves[i].Edge).To
			for t := arrive; t < depart; t++ {
				key := nodeStep{v, t}
				count[key]++
				if count[key] > maxQ {
					maxQ = count[key]
				}
			}
		}
	}
	return maxQ
}
