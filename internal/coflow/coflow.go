// Package coflow defines the problem model shared by every scheduler in this
// repository: networks of flows grouped into coflows, the two schedule
// representations (circuit bandwidth schedules and packet move schedules),
// the total weighted coflow completion time objective, and feasibility
// validation.
//
// Terminology follows the paper: a flow is a single data transfer (circuit
// model) or packet (packet model) with a source, destination, size and
// release time; a coflow is a weighted set of flows that completes when its
// last flow completes.
package coflow

import (
	"fmt"
	"math"

	"coflowsched/internal/graph"
)

// Flow is a single connection request (circuit model) or packet (packet
// model, Size == 1).
type Flow struct {
	// Source and Dest are host nodes of the instance network.
	Source graph.NodeID `json:"source"`
	Dest   graph.NodeID `json:"dest"`
	// Size is the data volume to transfer. In the packet model it must be 1.
	Size float64 `json:"size"`
	// Release is the earliest time at which the flow may start. The paper
	// supports per-flow release times (more general than per-coflow).
	Release float64 `json:"release"`
	// Path, when non-nil, fixes the route of the flow ("paths given"
	// variants). When nil the scheduler must pick a path.
	Path graph.Path `json:"path,omitempty"`
}

// Coflow is a weighted collection of flows sharing a completion semantics:
// the coflow completes when all of its flows complete.
type Coflow struct {
	Name   string  `json:"name"`
	Weight float64 `json:"weight"`
	Flows  []Flow  `json:"flows"`
}

// Instance is a complete coflow scheduling problem: a capacitated network
// plus a set of coflows.
type Instance struct {
	Network *graph.Graph
	Coflows []Coflow
}

// FlowRef identifies a flow within an instance by coflow index and position.
type FlowRef struct {
	Coflow int
	Index  int
}

// String formats a flow reference as "c<i>.f<j>".
func (r FlowRef) String() string { return fmt.Sprintf("c%d.f%d", r.Coflow, r.Index) }

// Flow returns the referenced flow.
func (inst *Instance) Flow(r FlowRef) *Flow {
	return &inst.Coflows[r.Coflow].Flows[r.Index]
}

// NumFlows returns the total number of flows across all coflows.
func (inst *Instance) NumFlows() int {
	n := 0
	for _, cf := range inst.Coflows {
		n += len(cf.Flows)
	}
	return n
}

// FlowRefs returns references to every flow, in coflow order.
func (inst *Instance) FlowRefs() []FlowRef {
	refs := make([]FlowRef, 0, inst.NumFlows())
	for i, cf := range inst.Coflows {
		for j := range cf.Flows {
			refs = append(refs, FlowRef{Coflow: i, Index: j})
		}
	}
	return refs
}

// MaxRelease returns the latest release time of any flow (0 for an empty
// instance).
func (inst *Instance) MaxRelease() float64 {
	max := 0.0
	for _, cf := range inst.Coflows {
		for _, f := range cf.Flows {
			if f.Release > max {
				max = f.Release
			}
		}
	}
	return max
}

// TotalSize returns the sum of all flow sizes.
func (inst *Instance) TotalSize() float64 {
	s := 0.0
	for _, cf := range inst.Coflows {
		for _, f := range cf.Flows {
			s += f.Size
		}
	}
	return s
}

// TotalWeight returns the sum of coflow weights.
func (inst *Instance) TotalWeight() float64 {
	s := 0.0
	for _, cf := range inst.Coflows {
		s += cf.Weight
	}
	return s
}

// HasPaths reports whether every flow carries a pre-assigned path.
func (inst *Instance) HasPaths() bool {
	for _, cf := range inst.Coflows {
		for _, f := range cf.Flows {
			if f.Path == nil {
				return false
			}
		}
	}
	return true
}

// TimeHorizon returns a crude upper bound on the completion time of any
// reasonable schedule: the latest release plus the time to ship every byte
// sequentially over the slowest link. It is used to size interval-indexed
// LPs.
func (inst *Instance) TimeHorizon() float64 {
	minCap := inst.Network.MinCapacity()
	if minCap <= 0 {
		minCap = 1
	}
	return inst.MaxRelease() + inst.TotalSize()/minCap + 1
}

// Validate checks structural sanity of the instance: the network exists,
// every flow endpoint is a valid node, sizes are positive, weights and
// release times nonnegative, pre-assigned paths (if any) connect the right
// endpoints, and the packet model restriction Size == 1 when packet is true.
func (inst *Instance) Validate(packet bool) error {
	if inst.Network == nil {
		return fmt.Errorf("coflow: instance has no network")
	}
	if len(inst.Coflows) == 0 {
		return fmt.Errorf("coflow: instance has no coflows")
	}
	n := inst.Network.NumNodes()
	for i, cf := range inst.Coflows {
		if cf.Weight < 0 || math.IsNaN(cf.Weight) {
			return fmt.Errorf("coflow: coflow %d has invalid weight %v", i, cf.Weight)
		}
		if len(cf.Flows) == 0 {
			return fmt.Errorf("coflow: coflow %d has no flows", i)
		}
		for j, f := range cf.Flows {
			ref := FlowRef{i, j}
			if int(f.Source) < 0 || int(f.Source) >= n || int(f.Dest) < 0 || int(f.Dest) >= n {
				return fmt.Errorf("coflow: %s has endpoints outside the network", ref)
			}
			if f.Source == f.Dest {
				return fmt.Errorf("coflow: %s has identical source and destination", ref)
			}
			if f.Size <= 0 || math.IsNaN(f.Size) || math.IsInf(f.Size, 0) {
				return fmt.Errorf("coflow: %s has invalid size %v", ref, f.Size)
			}
			if packet && f.Size != 1 {
				return fmt.Errorf("coflow: %s has size %v but packet flows must have size 1", ref, f.Size)
			}
			if f.Release < 0 || math.IsNaN(f.Release) {
				return fmt.Errorf("coflow: %s has invalid release time %v", ref, f.Release)
			}
			if f.Path != nil {
				if err := f.Path.Validate(inst.Network, f.Source, f.Dest); err != nil {
					return fmt.Errorf("coflow: %s pre-assigned path invalid: %v", ref, err)
				}
			}
			if !inst.Network.Reachable(f.Source, f.Dest) {
				return fmt.Errorf("coflow: %s destination unreachable from source", ref)
			}
		}
	}
	return nil
}

// AssignShortestPaths fills in Path for every flow that lacks one, using a
// minimum-hop route. It converts a "paths not given" instance into a "paths
// given" instance, which is how tree-like and switch topologies (with unique
// routes) are modelled.
func (inst *Instance) AssignShortestPaths() error {
	for i := range inst.Coflows {
		for j := range inst.Coflows[i].Flows {
			f := &inst.Coflows[i].Flows[j]
			if f.Path != nil {
				continue
			}
			p := inst.Network.ShortestPath(f.Source, f.Dest)
			if p == nil {
				return fmt.Errorf("coflow: no path from %d to %d", f.Source, f.Dest)
			}
			f.Path = p
		}
	}
	return nil
}

// Clone returns a deep copy of the instance sharing the (immutable) network.
func (inst *Instance) Clone() *Instance {
	out := &Instance{Network: inst.Network, Coflows: make([]Coflow, len(inst.Coflows))}
	for i, cf := range inst.Coflows {
		nc := Coflow{Name: cf.Name, Weight: cf.Weight, Flows: make([]Flow, len(cf.Flows))}
		copy(nc.Flows, cf.Flows)
		for j := range nc.Flows {
			if cf.Flows[j].Path != nil {
				nc.Flows[j].Path = append(graph.Path(nil), cf.Flows[j].Path...)
			}
		}
		out.Coflows[i] = nc
	}
	return out
}

// ObjectiveFromCompletionTimes computes the total weighted coflow completion
// time given per-flow completion times indexed by FlowRef. A coflow's
// completion time is the maximum over its flows.
func (inst *Instance) ObjectiveFromCompletionTimes(completion map[FlowRef]float64) float64 {
	total := 0.0
	for i, cf := range inst.Coflows {
		cmax := 0.0
		for j := range cf.Flows {
			c := completion[FlowRef{i, j}]
			if c > cmax {
				cmax = c
			}
		}
		total += cf.Weight * cmax
	}
	return total
}

// CoflowCompletionTimes aggregates per-flow completion times into per-coflow
// completion times (max over flows).
func (inst *Instance) CoflowCompletionTimes(completion map[FlowRef]float64) []float64 {
	out := make([]float64, len(inst.Coflows))
	for i, cf := range inst.Coflows {
		for j := range cf.Flows {
			if c := completion[FlowRef{i, j}]; c > out[i] {
				out[i] = c
			}
		}
	}
	return out
}
