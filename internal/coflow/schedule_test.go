package coflow

import (
	"bytes"
	"math"
	"testing"

	"coflowsched/internal/graph"
)

// figure1Schedules builds the three candidate schedules of the paper's
// Figure 1 on the triangle network and returns the instance and the three
// schedules (s1 fair sharing, s2 strict coflow priority, s3 optimal).
func figure1Instance(t *testing.T) *Instance {
	t.Helper()
	g := graph.Triangle()
	x, _ := g.FindNode("x")
	y, _ := g.FindNode("y")
	z, _ := g.FindNode("z")
	// Flow placement per Figure 1: A1 (size 2) and C (size 2? no, size 2 is
	// A1; C has size... the figure labels sigma(C)=2 on edge x-z but the text
	// says each of B and C has one flow of size 1; we follow the text and the
	// completion-time arithmetic (4+2+1=7), which corresponds to A1 size 2 on
	// edge x-y, A2 size 1 on edge y-z, B size 1 on edge y-z, C size 1 on edge
	// x-z sharing no edge with A1.
	inst := &Instance{
		Network: g,
		Coflows: []Coflow{
			{Name: "A", Weight: 1, Flows: []Flow{
				{Source: x, Dest: y, Size: 2},
				{Source: y, Dest: z, Size: 1},
			}},
			{Name: "B", Weight: 1, Flows: []Flow{{Source: y, Dest: z, Size: 1}}},
			{Name: "C", Weight: 1, Flows: []Flow{{Source: x, Dest: z, Size: 2}}},
		},
	}
	if err := inst.Validate(false); err != nil {
		t.Fatalf("figure 1 instance invalid: %v", err)
	}
	if err := inst.AssignShortestPaths(); err != nil {
		t.Fatalf("paths: %v", err)
	}
	return inst
}

func directPath(inst *Instance, ref FlowRef) graph.Path {
	return inst.Flow(ref).Path
}

func TestFigure1FairSharingSchedule(t *testing.T) {
	// (s1): every flow gets bandwidth 1/2. Completion times: A1 at 4, A2 at
	// 2, B at 2, C at 4. Total (unit weights) = 4 + 2 + 4 = 10.
	inst := figure1Instance(t)
	cs := NewCircuitSchedule()
	set := func(ref FlowRef, rate, until float64) {
		cs.Set(ref, &FlowSchedule{Path: directPath(inst, ref), Segments: []BandwidthSegment{{Start: 0, End: until, Rate: rate}}})
	}
	set(FlowRef{0, 0}, 0.5, 4) // A1 size 2
	set(FlowRef{0, 1}, 0.5, 2) // A2 size 1
	set(FlowRef{1, 0}, 0.5, 2) // B size 1
	set(FlowRef{2, 0}, 0.5, 4) // C size 2
	if err := cs.Validate(inst); err != nil {
		t.Fatalf("s1 should be feasible: %v", err)
	}
	if got := cs.Objective(inst); math.Abs(got-10) > 1e-9 {
		t.Errorf("s1 objective = %v, want 10", got)
	}
	if got := cs.Makespan(); math.Abs(got-4) > 1e-9 {
		t.Errorf("s1 makespan = %v, want 4", got)
	}
}

func TestFigure1PriorityAndOptimalSchedules(t *testing.T) {
	inst := figure1Instance(t)
	// (s2): coflow A first at full rate, then B, then C.
	s2 := NewCircuitSchedule()
	s2.Set(FlowRef{0, 0}, &FlowSchedule{Path: directPath(inst, FlowRef{0, 0}), Segments: []BandwidthSegment{{0, 2, 1}}})
	s2.Set(FlowRef{0, 1}, &FlowSchedule{Path: directPath(inst, FlowRef{0, 1}), Segments: []BandwidthSegment{{0, 1, 1}}})
	s2.Set(FlowRef{1, 0}, &FlowSchedule{Path: directPath(inst, FlowRef{1, 0}), Segments: []BandwidthSegment{{1, 2, 1}}})
	s2.Set(FlowRef{2, 0}, &FlowSchedule{Path: directPath(inst, FlowRef{2, 0}), Segments: []BandwidthSegment{{2, 4, 1}}})
	if err := s2.Validate(inst); err != nil {
		t.Fatalf("s2 should be feasible: %v", err)
	}
	if got := s2.Objective(inst); math.Abs(got-8) > 1e-9 {
		t.Errorf("s2 objective = %v, want 8 (2 + 2 + 4)", got)
	}

	// (s3): optimal — C runs in parallel with A (disjoint edges), B after A2.
	s3 := NewCircuitSchedule()
	s3.Set(FlowRef{0, 0}, &FlowSchedule{Path: directPath(inst, FlowRef{0, 0}), Segments: []BandwidthSegment{{0, 2, 1}}})
	s3.Set(FlowRef{0, 1}, &FlowSchedule{Path: directPath(inst, FlowRef{0, 1}), Segments: []BandwidthSegment{{0, 1, 1}}})
	s3.Set(FlowRef{1, 0}, &FlowSchedule{Path: directPath(inst, FlowRef{1, 0}), Segments: []BandwidthSegment{{1, 2, 1}}})
	s3.Set(FlowRef{2, 0}, &FlowSchedule{Path: directPath(inst, FlowRef{2, 0}), Segments: []BandwidthSegment{{0, 2, 1}}})
	if err := s3.Validate(inst); err != nil {
		t.Fatalf("s3 should be feasible: %v", err)
	}
	if got := s3.Objective(inst); math.Abs(got-6) > 1e-9 {
		// A completes at 2, B at 2, C at 2: 6 with our flow sizes. The paper's
		// figure uses a size-2 flow C finishing at 1?  (its arithmetic is
		// 4+2+1=7 with different sizes); the invariant we care about is that
		// s3 beats s2 beats s1, checked below.
		t.Logf("s3 objective = %v", got)
	}
	if !(s3.Objective(inst) < s2.Objective(inst)) {
		t.Errorf("optimal-style schedule should beat priority schedule: %v vs %v", s3.Objective(inst), s2.Objective(inst))
	}
}

func TestCircuitScheduleValidateCatchesViolations(t *testing.T) {
	inst := twoCoflowInstance(t)
	_ = inst.AssignShortestPaths()

	base := func() *CircuitSchedule {
		cs := NewCircuitSchedule()
		for _, ref := range inst.FlowRefs() {
			f := inst.Flow(ref)
			start := f.Release
			cs.Set(ref, &FlowSchedule{
				Path:     f.Path,
				Segments: []BandwidthSegment{{Start: start, End: start + f.Size, Rate: 1}},
			})
		}
		return cs
	}
	if err := base().Validate(inst); err != nil {
		t.Fatalf("base schedule should be valid: %v", err)
	}

	t.Run("missing flow", func(t *testing.T) {
		cs := base()
		delete(cs.Flows, FlowRef{0, 0})
		if cs.Validate(inst) == nil {
			t.Error("expected error")
		}
	})
	t.Run("wrong path", func(t *testing.T) {
		cs := base()
		cs.Get(FlowRef{0, 0}).Path = inst.Flow(FlowRef{0, 1}).Path
		if cs.Validate(inst) == nil {
			t.Error("expected error")
		}
	})
	t.Run("under delivery", func(t *testing.T) {
		cs := base()
		cs.Get(FlowRef{0, 0}).Segments = []BandwidthSegment{{0, 1, 1}} // size is 2
		if cs.Validate(inst) == nil {
			t.Error("expected error")
		}
	})
	t.Run("before release", func(t *testing.T) {
		cs := base()
		cs.Get(FlowRef{1, 0}).Segments = []BandwidthSegment{{0, 1, 1}} // release is 0.5
		if cs.Validate(inst) == nil {
			t.Error("expected error")
		}
	})
	t.Run("negative rate", func(t *testing.T) {
		cs := base()
		cs.Get(FlowRef{0, 0}).Segments = append(cs.Get(FlowRef{0, 0}).Segments, BandwidthSegment{3, 4, -1})
		if cs.Validate(inst) == nil {
			t.Error("expected error")
		}
	})
	t.Run("over capacity", func(t *testing.T) {
		cs := base()
		// Put two unit-rate flows on the same unit-capacity edge at the same
		// time: reroute flow (0,1) onto flow (0,0)'s path and overlap them.
		f0 := inst.Flow(FlowRef{0, 0})
		cs.Get(FlowRef{0, 1}).Path = f0.Path
		cs.Get(FlowRef{0, 1}).Segments = []BandwidthSegment{{0, 1, 1}}
		// It is no longer a valid path for flow (0,1) either, so force paths
		// to be checked second by making the path valid: use a schedule where
		// both flows share the x->y edge legitimately. Simplest: put flow
		// (1,0) (x->z) onto a two-hop path x->y->z overlapping A1 on x->y.
		cs2 := base()
		xy := f0.Path[0]
		yz := inst.Flow(FlowRef{0, 1}).Path[0]
		cs2.Get(FlowRef{1, 0}).Path = graph.Path{xy, yz}
		cs2.Get(FlowRef{1, 0}).Segments = []BandwidthSegment{{0.5, 1.5, 1}}
		if cs2.Validate(inst) == nil {
			t.Error("expected capacity violation error")
		}
	})
}

func TestScaleTimeAndUtilization(t *testing.T) {
	inst := twoCoflowInstance(t)
	_ = inst.AssignShortestPaths()
	cs := NewCircuitSchedule()
	for _, ref := range inst.FlowRefs() {
		f := inst.Flow(ref)
		cs.Set(ref, &FlowSchedule{Path: f.Path, Segments: []BandwidthSegment{{f.Release, f.Release + f.Size, 1}}})
	}
	util := cs.MaxEdgeUtilization(inst)
	if util > 1+1e-9 {
		t.Fatalf("utilization = %v, want <= 1", util)
	}
	before := cs.Objective(inst)
	cs.ScaleTime(2)
	if err := cs.Validate(inst); err != nil {
		t.Errorf("scaled schedule invalid: %v", err)
	}
	after := cs.Objective(inst)
	if math.Abs(after-2*before) > 1e-9 {
		t.Errorf("objective after 2x scale = %v, want %v", after, 2*before)
	}
	if cs.MaxEdgeUtilization(inst) > util/2+1e-9 {
		t.Errorf("utilization should halve after ScaleTime(2)")
	}
	defer func() {
		if recover() == nil {
			t.Error("ScaleTime(<1) should panic")
		}
	}()
	cs.ScaleTime(0.5)
}

func TestTrimCompleted(t *testing.T) {
	inst := twoCoflowInstance(t)
	_ = inst.AssignShortestPaths()
	cs := NewCircuitSchedule()
	for _, ref := range inst.FlowRefs() {
		f := inst.Flow(ref)
		// Over-provision: schedule twice the needed time.
		cs.Set(ref, &FlowSchedule{Path: f.Path, Segments: []BandwidthSegment{{f.Release, f.Release + 2*f.Size, 1}}})
	}
	beforeObj := cs.Objective(inst)
	cs.TrimCompleted(inst)
	if err := cs.Validate(inst); err != nil {
		t.Fatalf("trimmed schedule invalid: %v", err)
	}
	if !(cs.Objective(inst) < beforeObj) {
		t.Errorf("trimming should reduce the objective: %v vs %v", cs.Objective(inst), beforeObj)
	}
	for _, ref := range inst.FlowRefs() {
		f := inst.Flow(ref)
		d := cs.Get(ref).Delivered()
		if math.Abs(d-f.Size) > 1e-9 {
			t.Errorf("flow %s delivers %v after trim, want %v", ref, d, f.Size)
		}
	}
}

func TestFlowScheduleAccessors(t *testing.T) {
	fs := &FlowSchedule{Segments: []BandwidthSegment{{0, 2, 1}, {3, 4, 0.5}}}
	if fs.CompletionTime() != 4 {
		t.Errorf("CompletionTime = %v, want 4", fs.CompletionTime())
	}
	if fs.Delivered() != 2.5 {
		t.Errorf("Delivered = %v, want 2.5", fs.Delivered())
	}
	empty := &FlowSchedule{}
	if empty.CompletionTime() != 0 || empty.Delivered() != 0 {
		t.Errorf("empty schedule accessors wrong")
	}
	if (BandwidthSegment{1, 3, 2}).Volume() != 4 {
		t.Errorf("Volume wrong")
	}
}

func TestInstanceJSONRoundTrip(t *testing.T) {
	inst := twoCoflowInstance(t)
	_ = inst.AssignShortestPaths()
	var buf bytes.Buffer
	if err := inst.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	back, err := ReadJSON(&buf)
	if err != nil {
		t.Fatalf("ReadJSON: %v", err)
	}
	if back.NumFlows() != inst.NumFlows() || len(back.Coflows) != len(inst.Coflows) {
		t.Errorf("round trip lost coflows/flows")
	}
	if back.Network.NumNodes() != inst.Network.NumNodes() || back.Network.NumEdges() != inst.Network.NumEdges() {
		t.Errorf("round trip lost network structure")
	}
	if err := back.Validate(false); err != nil {
		t.Errorf("round-tripped instance invalid: %v", err)
	}
	if back.Coflows[1].Flows[0].Release != 0.5 {
		t.Errorf("release time lost in round trip")
	}
}

func TestReadJSONErrors(t *testing.T) {
	if _, err := ReadJSON(bytes.NewBufferString("{not json")); err == nil {
		t.Error("expected decode error")
	}
	if _, err := ReadJSON(bytes.NewBufferString(`{"nodes":[{"name":"a","kind":0}],"edges":[{"from":0,"to":5,"capacity":1}],"coflows":[]}`)); err == nil {
		t.Error("expected bad-edge error")
	}
	if _, err := ReadJSON(bytes.NewBufferString(`{"nodes":[{"name":"a","kind":0},{"name":"b","kind":0}],"edges":[{"from":0,"to":1,"capacity":0}],"coflows":[]}`)); err == nil {
		t.Error("expected bad-capacity error")
	}
}
