package coflow

import (
	"bytes"
	"math/rand"
	"testing"

	"coflowsched/internal/graph"
)

// TestJSONRoundTrip checks that WriteJSON → ReadJSON preserves the network
// (nodes, edges, capacities) and the coflows (weights, flows, sizes, release
// times) exactly.
func TestJSONRoundTrip(t *testing.T) {
	g := graph.FatTree(4, 1)
	hosts := g.Hosts()
	rng := rand.New(rand.NewSource(5))
	inst := &Instance{Network: g}
	for i := 0; i < 3; i++ {
		cf := Coflow{Name: "cf", Weight: float64(i + 1)}
		for j := 0; j < 4; j++ {
			src := hosts[rng.Intn(len(hosts))]
			dst := hosts[rng.Intn(len(hosts))]
			for dst == src {
				dst = hosts[rng.Intn(len(hosts))]
			}
			cf.Flows = append(cf.Flows, Flow{
				Source:  src,
				Dest:    dst,
				Size:    float64(rng.Intn(9) + 1),
				Release: float64(rng.Intn(5)),
			})
		}
		inst.Coflows = append(inst.Coflows, cf)
	}

	var buf bytes.Buffer
	if err := inst.WriteJSON(&buf); err != nil {
		t.Fatalf("write: %v", err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatalf("read: %v", err)
	}

	// Network round-trips.
	if got.Network.NumNodes() != g.NumNodes() {
		t.Fatalf("nodes: got %d, want %d", got.Network.NumNodes(), g.NumNodes())
	}
	if got.Network.NumEdges() != g.NumEdges() {
		t.Fatalf("edges: got %d, want %d", got.Network.NumEdges(), g.NumEdges())
	}
	wantNodes, gotNodes := g.Nodes(), got.Network.Nodes()
	for i := range wantNodes {
		if wantNodes[i].Name != gotNodes[i].Name || wantNodes[i].Kind != gotNodes[i].Kind {
			t.Errorf("node %d: got %+v, want %+v", i, gotNodes[i], wantNodes[i])
		}
	}
	wantEdges, gotEdges := g.Edges(), got.Network.Edges()
	for i := range wantEdges {
		if wantEdges[i].From != gotEdges[i].From || wantEdges[i].To != gotEdges[i].To ||
			wantEdges[i].Capacity != gotEdges[i].Capacity {
			t.Errorf("edge %d: got %+v, want %+v", i, gotEdges[i], wantEdges[i])
		}
	}

	// Coflows round-trip.
	if len(got.Coflows) != len(inst.Coflows) {
		t.Fatalf("coflows: got %d, want %d", len(got.Coflows), len(inst.Coflows))
	}
	for i, cf := range inst.Coflows {
		gcf := got.Coflows[i]
		if gcf.Name != cf.Name || gcf.Weight != cf.Weight || len(gcf.Flows) != len(cf.Flows) {
			t.Fatalf("coflow %d header: got %+v, want %+v", i, gcf, cf)
		}
		for j, f := range cf.Flows {
			gf := gcf.Flows[j]
			if gf.Source != f.Source || gf.Dest != f.Dest || gf.Size != f.Size || gf.Release != f.Release {
				t.Errorf("coflow %d flow %d: got %+v, want %+v", i, j, gf, f)
			}
		}
	}

	// The round-tripped instance is still valid and usable.
	if err := got.Validate(false); err != nil {
		t.Fatalf("round-tripped instance invalid: %v", err)
	}
}

// TestReadJSONRejectsCorruptInput covers the decoder's error paths.
func TestReadJSONRejectsCorruptInput(t *testing.T) {
	cases := map[string]string{
		"not json":      "{nope",
		"bad edge node": `{"nodes":[{"name":"a","kind":0}],"edges":[{"from":0,"to":5,"capacity":1}],"coflows":[]}`,
		"zero capacity": `{"nodes":[{"name":"a","kind":0},{"name":"b","kind":0}],"edges":[{"from":0,"to":1,"capacity":0}],"coflows":[]}`,
	}
	for name, in := range cases {
		if _, err := ReadJSON(bytes.NewReader([]byte(in))); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}
