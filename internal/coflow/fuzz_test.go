package coflow

import (
	"bytes"
	"testing"
)

// validInstanceJSON is a well-formed fixture (what WriteJSON emits) so the
// fuzzer starts from the interesting part of the input space.
const validInstanceJSON = `{
  "nodes": [
    {"name": "a", "kind": 0},
    {"name": "b", "kind": 0},
    {"name": "sw", "kind": 3}
  ],
  "edges": [
    {"from": 0, "to": 2, "capacity": 1},
    {"from": 2, "to": 0, "capacity": 1},
    {"from": 1, "to": 2, "capacity": 1},
    {"from": 2, "to": 1, "capacity": 2.5}
  ],
  "coflows": [
    {"name": "c0", "weight": 2, "flows": [
      {"source": 0, "dest": 1, "size": 3, "release": 0.5}
    ]}
  ]
}`

// FuzzCoflowJSON hammers the instance decoder with arbitrary bytes: it must
// error or succeed without panicking, and anything it accepts must survive a
// write/read round trip unchanged in shape.
func FuzzCoflowJSON(f *testing.F) {
	f.Add([]byte(validInstanceJSON))
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"nodes":[],"edges":[],"coflows":[]}`))
	f.Add([]byte(`{"nodes":[{"name":"x","kind":0}],"edges":[{"from":0,"to":5,"capacity":1}]}`))
	f.Add([]byte(`{"coflows":[{"flows":[{"source":-1,"dest":9,"size":-3}]}]}`))
	f.Add([]byte(`not json at all`))
	f.Fuzz(func(t *testing.T, data []byte) {
		inst, err := ReadJSON(bytes.NewReader(data))
		if err != nil {
			return // rejected input: fine, as long as we did not panic
		}
		var buf bytes.Buffer
		if err := inst.WriteJSON(&buf); err != nil {
			t.Fatalf("accepted instance failed to serialize: %v", err)
		}
		back, err := ReadJSON(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("round trip failed to parse: %v", err)
		}
		if len(back.Coflows) != len(inst.Coflows) {
			t.Fatalf("round trip changed coflow count: %d != %d", len(back.Coflows), len(inst.Coflows))
		}
		if back.Network.NumNodes() != inst.Network.NumNodes() || back.Network.NumEdges() != inst.Network.NumEdges() {
			t.Fatalf("round trip changed the network shape")
		}
		for i := range inst.Coflows {
			if len(back.Coflows[i].Flows) != len(inst.Coflows[i].Flows) {
				t.Fatalf("round trip changed coflow %d flow count", i)
			}
		}
	})
}
