package coflow

import (
	"fmt"
	"math"
	"sort"

	"coflowsched/internal/graph"
)

// BandwidthSegment is one piece of a piece-wise constant bandwidth function:
// the flow transmits at Rate during [Start, End).
type BandwidthSegment struct {
	Start float64 `json:"start"`
	End   float64 `json:"end"`
	Rate  float64 `json:"rate"`
}

// Volume returns the amount of data transferred during the segment.
func (s BandwidthSegment) Volume() float64 { return (s.End - s.Start) * s.Rate }

// FlowSchedule is the schedule of a single circuit flow: the path it uses and
// its piece-wise constant bandwidth function. Lemma 1 of the paper shows that
// piece-wise constant bandwidths lose no generality.
type FlowSchedule struct {
	Path     graph.Path         `json:"path"`
	Segments []BandwidthSegment `json:"segments"`
}

// CompletionTime returns the end of the last segment with positive rate, or
// 0 for an empty schedule.
func (fs *FlowSchedule) CompletionTime() float64 {
	c := 0.0
	for _, s := range fs.Segments {
		if s.Rate > 0 && s.End > c {
			c = s.End
		}
	}
	return c
}

// Delivered returns the total volume transferred by the schedule.
func (fs *FlowSchedule) Delivered() float64 {
	v := 0.0
	for _, s := range fs.Segments {
		v += s.Volume()
	}
	return v
}

// CircuitSchedule is a complete schedule for a circuit-based coflow instance:
// one FlowSchedule per flow, indexed parallel to Instance.Coflows.
type CircuitSchedule struct {
	Flows map[FlowRef]*FlowSchedule
}

// NewCircuitSchedule returns an empty schedule.
func NewCircuitSchedule() *CircuitSchedule {
	return &CircuitSchedule{Flows: make(map[FlowRef]*FlowSchedule)}
}

// Set records the schedule of one flow.
func (cs *CircuitSchedule) Set(r FlowRef, fs *FlowSchedule) { cs.Flows[r] = fs }

// Get returns the schedule of one flow, or nil.
func (cs *CircuitSchedule) Get(r FlowRef) *FlowSchedule { return cs.Flows[r] }

// CompletionTimes returns the completion time of every flow.
func (cs *CircuitSchedule) CompletionTimes() map[FlowRef]float64 {
	out := make(map[FlowRef]float64, len(cs.Flows))
	for r, fs := range cs.Flows {
		out[r] = fs.CompletionTime()
	}
	return out
}

// Objective returns the total weighted coflow completion time of the schedule
// on the given instance.
func (cs *CircuitSchedule) Objective(inst *Instance) float64 {
	return inst.ObjectiveFromCompletionTimes(cs.CompletionTimes())
}

// Makespan returns the completion time of the last flow.
func (cs *CircuitSchedule) Makespan() float64 {
	m := 0.0
	for _, fs := range cs.Flows {
		if c := fs.CompletionTime(); c > m {
			m = c
		}
	}
	return m
}

// validationTol is the relative tolerance used when checking schedules
// produced from LP solutions.
const validationTol = 1e-6

// Validate checks that the schedule is feasible for the instance:
//
//   - every flow has a schedule whose path connects its endpoints,
//   - no segment starts before the flow's release time,
//   - every flow delivers its full size,
//   - at every point in time, the total bandwidth reserved on each edge does
//     not exceed the edge capacity.
//
// The capacity check evaluates every maximal interval between segment
// breakpoints, which is exact for piece-wise constant bandwidth functions.
func (cs *CircuitSchedule) Validate(inst *Instance) error {
	// Per-flow checks.
	for _, ref := range inst.FlowRefs() {
		f := inst.Flow(ref)
		fs := cs.Flows[ref]
		if fs == nil {
			return fmt.Errorf("schedule: flow %s has no schedule", ref)
		}
		if err := fs.Path.Validate(inst.Network, f.Source, f.Dest); err != nil {
			return fmt.Errorf("schedule: flow %s path: %v", ref, err)
		}
		delivered := 0.0
		for _, seg := range fs.Segments {
			if seg.End < seg.Start {
				return fmt.Errorf("schedule: flow %s has segment ending before it starts: %+v", ref, seg)
			}
			if seg.Rate < -validationTol {
				return fmt.Errorf("schedule: flow %s has negative rate %v", ref, seg.Rate)
			}
			if seg.Rate > 0 && seg.Start < f.Release-validationTol {
				return fmt.Errorf("schedule: flow %s transmits at %v before release %v", ref, seg.Start, f.Release)
			}
			delivered += seg.Volume()
		}
		if delivered < f.Size*(1-validationTol)-validationTol {
			return fmt.Errorf("schedule: flow %s delivers %v of %v", ref, delivered, f.Size)
		}
	}

	// Capacity checks: gather all breakpoints, then for each elementary
	// interval sum the per-edge usage.
	type usage struct {
		ref  FlowRef
		seg  BandwidthSegment
		path graph.Path
	}
	var usages []usage
	breakSet := map[float64]struct{}{}
	for ref, fs := range cs.Flows {
		for _, seg := range fs.Segments {
			if seg.Rate <= 0 || seg.End <= seg.Start {
				continue
			}
			usages = append(usages, usage{ref: ref, seg: seg, path: fs.Path})
			breakSet[seg.Start] = struct{}{}
			breakSet[seg.End] = struct{}{}
		}
	}
	breaks := make([]float64, 0, len(breakSet))
	for t := range breakSet {
		breaks = append(breaks, t)
	}
	sort.Float64s(breaks)

	for i := 0; i+1 < len(breaks); i++ {
		lo, hi := breaks[i], breaks[i+1]
		if hi-lo <= 1e-12 {
			continue
		}
		mid := (lo + hi) / 2
		load := make(map[graph.EdgeID]float64)
		for _, u := range usages {
			if u.seg.Start <= mid && mid < u.seg.End {
				for _, e := range u.path {
					load[e] += u.seg.Rate
				}
			}
		}
		for e, l := range load {
			c := inst.Network.Capacity(e)
			if l > c*(1+validationTol)+validationTol {
				return fmt.Errorf("schedule: edge %d over capacity during [%v,%v): load %v > %v", e, lo, hi, l, c)
			}
		}
	}
	return nil
}

// ScaleTime stretches the whole schedule in time by factor >= 1 while scaling
// bandwidths down by the same factor; the delivered volumes are unchanged and
// edge loads can only decrease. Used by the randomized-rounding step, which
// may need to scale down bandwidth by the congestion overflow factor.
func (cs *CircuitSchedule) ScaleTime(factor float64) {
	if factor < 1 {
		panic(fmt.Sprintf("schedule: ScaleTime factor %v < 1", factor))
	}
	for _, fs := range cs.Flows {
		for i := range fs.Segments {
			fs.Segments[i].Start *= factor
			fs.Segments[i].End *= factor
			fs.Segments[i].Rate /= factor
		}
	}
}

// MaxEdgeUtilization returns the maximum, over edges and elementary time
// intervals, of load divided by capacity. A feasible schedule has value <= 1
// (up to tolerance). Useful for tests and for the congestion analysis of the
// randomized rounding step.
func (cs *CircuitSchedule) MaxEdgeUtilization(inst *Instance) float64 {
	breakSet := map[float64]struct{}{}
	for _, fs := range cs.Flows {
		for _, seg := range fs.Segments {
			if seg.Rate > 0 {
				breakSet[seg.Start] = struct{}{}
				breakSet[seg.End] = struct{}{}
			}
		}
	}
	breaks := make([]float64, 0, len(breakSet))
	for t := range breakSet {
		breaks = append(breaks, t)
	}
	sort.Float64s(breaks)
	maxUtil := 0.0
	for i := 0; i+1 < len(breaks); i++ {
		mid := (breaks[i] + breaks[i+1]) / 2
		load := make(map[graph.EdgeID]float64)
		for _, fs := range cs.Flows {
			for _, seg := range fs.Segments {
				if seg.Rate > 0 && seg.Start <= mid && mid < seg.End {
					for _, e := range fs.Path {
						load[e] += seg.Rate
					}
				}
			}
		}
		for e, l := range load {
			if u := l / inst.Network.Capacity(e); u > maxUtil {
				maxUtil = u
			}
		}
	}
	return maxUtil
}

// TrimCompleted truncates each flow's segments once its full size has been
// delivered, tightening completion times without affecting feasibility.
func (cs *CircuitSchedule) TrimCompleted(inst *Instance) {
	for _, ref := range inst.FlowRefs() {
		fs := cs.Flows[ref]
		if fs == nil {
			continue
		}
		size := inst.Flow(ref).Size
		sort.Slice(fs.Segments, func(i, j int) bool { return fs.Segments[i].Start < fs.Segments[j].Start })
		remaining := size
		var trimmed []BandwidthSegment
		for _, seg := range fs.Segments {
			if remaining <= 1e-12 {
				break
			}
			vol := seg.Volume()
			if vol >= remaining && seg.Rate > 0 {
				end := seg.Start + remaining/seg.Rate
				trimmed = append(trimmed, BandwidthSegment{Start: seg.Start, End: end, Rate: seg.Rate})
				remaining = 0
				break
			}
			trimmed = append(trimmed, seg)
			remaining -= vol
		}
		fs.Segments = trimmed
	}
}

// totalWeightedCompletion is a helper for testing: the objective recomputed
// from scratch with an explicit max.
func totalWeightedCompletion(inst *Instance, completion map[FlowRef]float64) float64 {
	total := 0.0
	for i, cf := range inst.Coflows {
		cmax := math.Inf(-1)
		for j := range cf.Flows {
			if c := completion[FlowRef{i, j}]; c > cmax {
				cmax = c
			}
		}
		if math.IsInf(cmax, -1) {
			cmax = 0
		}
		total += cf.Weight * cmax
	}
	return total
}
