package coflow

import (
	"math"
	"testing"

	"coflowsched/internal/graph"
)

// twoCoflowInstance builds a small instance on the triangle network used by
// several tests: coflow A with two flows, coflow B with one.
func twoCoflowInstance(t *testing.T) *Instance {
	t.Helper()
	g := graph.Triangle()
	x, _ := g.FindNode("x")
	y, _ := g.FindNode("y")
	z, _ := g.FindNode("z")
	inst := &Instance{
		Network: g,
		Coflows: []Coflow{
			{Name: "A", Weight: 1, Flows: []Flow{
				{Source: x, Dest: y, Size: 2},
				{Source: y, Dest: z, Size: 1},
			}},
			{Name: "B", Weight: 2, Flows: []Flow{
				{Source: x, Dest: z, Size: 1, Release: 0.5},
			}},
		},
	}
	if err := inst.Validate(false); err != nil {
		t.Fatalf("instance invalid: %v", err)
	}
	return inst
}

func TestInstanceAccessors(t *testing.T) {
	inst := twoCoflowInstance(t)
	if inst.NumFlows() != 3 {
		t.Errorf("NumFlows = %d, want 3", inst.NumFlows())
	}
	refs := inst.FlowRefs()
	if len(refs) != 3 || refs[0] != (FlowRef{0, 0}) || refs[2] != (FlowRef{1, 0}) {
		t.Errorf("FlowRefs = %v", refs)
	}
	if inst.MaxRelease() != 0.5 {
		t.Errorf("MaxRelease = %v, want 0.5", inst.MaxRelease())
	}
	if inst.TotalSize() != 4 {
		t.Errorf("TotalSize = %v, want 4", inst.TotalSize())
	}
	if inst.TotalWeight() != 3 {
		t.Errorf("TotalWeight = %v, want 3", inst.TotalWeight())
	}
	if inst.HasPaths() {
		t.Errorf("HasPaths should be false before assignment")
	}
	if inst.TimeHorizon() < 4.5 {
		t.Errorf("TimeHorizon = %v, want >= 4.5", inst.TimeHorizon())
	}
	if got := inst.Flow(FlowRef{0, 1}).Size; got != 1 {
		t.Errorf("Flow(0,1).Size = %v, want 1", got)
	}
	if (FlowRef{1, 0}).String() != "c1.f0" {
		t.Errorf("FlowRef.String = %q", FlowRef{1, 0}.String())
	}
}

func TestAssignShortestPaths(t *testing.T) {
	inst := twoCoflowInstance(t)
	if err := inst.AssignShortestPaths(); err != nil {
		t.Fatalf("AssignShortestPaths: %v", err)
	}
	if !inst.HasPaths() {
		t.Errorf("HasPaths should be true after assignment")
	}
	for _, ref := range inst.FlowRefs() {
		f := inst.Flow(ref)
		if err := f.Path.Validate(inst.Network, f.Source, f.Dest); err != nil {
			t.Errorf("flow %s path invalid: %v", ref, err)
		}
		if len(f.Path) != 1 {
			t.Errorf("triangle paths should be direct, got %d hops", len(f.Path))
		}
	}
}

func TestCloneIsDeep(t *testing.T) {
	inst := twoCoflowInstance(t)
	_ = inst.AssignShortestPaths()
	clone := inst.Clone()
	clone.Coflows[0].Flows[0].Size = 99
	clone.Coflows[0].Flows[0].Path[0] = graph.EdgeID(5)
	if inst.Coflows[0].Flows[0].Size == 99 {
		t.Errorf("Clone shares flow slices")
	}
	if inst.Coflows[0].Flows[0].Path[0] == graph.EdgeID(5) {
		t.Errorf("Clone shares path slices")
	}
}

func TestValidateRejectsBadInstances(t *testing.T) {
	g := graph.Triangle()
	x, _ := g.FindNode("x")
	y, _ := g.FindNode("y")
	valid := func() *Instance {
		return &Instance{Network: g, Coflows: []Coflow{{Weight: 1, Flows: []Flow{{Source: x, Dest: y, Size: 1}}}}}
	}
	cases := map[string]func() *Instance{
		"no network": func() *Instance { i := valid(); i.Network = nil; return i },
		"no coflows": func() *Instance { i := valid(); i.Coflows = nil; return i },
		"no flows":   func() *Instance { i := valid(); i.Coflows[0].Flows = nil; return i },
		"neg weight": func() *Instance { i := valid(); i.Coflows[0].Weight = -1; return i },
		"bad source": func() *Instance {
			i := valid()
			i.Coflows[0].Flows[0].Source = 99
			return i
		},
		"src==dst": func() *Instance {
			i := valid()
			i.Coflows[0].Flows[0].Dest = x
			return i
		},
		"zero size": func() *Instance { i := valid(); i.Coflows[0].Flows[0].Size = 0; return i },
		"nan size":  func() *Instance { i := valid(); i.Coflows[0].Flows[0].Size = math.NaN(); return i },
		"neg release": func() *Instance {
			i := valid()
			i.Coflows[0].Flows[0].Release = -1
			return i
		},
		"bad path": func() *Instance {
			i := valid()
			i.Coflows[0].Flows[0].Path = graph.Path{graph.EdgeID(3)} // wrong edge
			return i
		},
	}
	for name, build := range cases {
		t.Run(name, func(t *testing.T) {
			if err := build().Validate(false); err == nil {
				t.Errorf("Validate accepted a bad instance (%s)", name)
			}
		})
	}
	if err := valid().Validate(false); err != nil {
		t.Errorf("Validate rejected a good instance: %v", err)
	}
}

func TestValidatePacketModel(t *testing.T) {
	g := graph.Triangle()
	x, _ := g.FindNode("x")
	y, _ := g.FindNode("y")
	inst := &Instance{Network: g, Coflows: []Coflow{{Weight: 1, Flows: []Flow{{Source: x, Dest: y, Size: 2}}}}}
	if err := inst.Validate(true); err == nil {
		t.Errorf("packet validation should reject size != 1")
	}
	inst.Coflows[0].Flows[0].Size = 1
	if err := inst.Validate(true); err != nil {
		t.Errorf("packet validation rejected size-1 flow: %v", err)
	}
}

func TestValidateUnreachable(t *testing.T) {
	g := graph.New()
	a := g.AddNode("a", graph.KindHost)
	b := g.AddNode("b", graph.KindHost)
	c := g.AddNode("c", graph.KindHost)
	g.AddEdge(a, b, 1)
	inst := &Instance{Network: g, Coflows: []Coflow{{Weight: 1, Flows: []Flow{{Source: a, Dest: c, Size: 1}}}}}
	if err := inst.Validate(false); err == nil {
		t.Errorf("Validate should reject unreachable destination")
	}
}

func TestObjectiveFromCompletionTimes(t *testing.T) {
	inst := twoCoflowInstance(t)
	completion := map[FlowRef]float64{
		{0, 0}: 2, {0, 1}: 4, // coflow A completes at 4
		{1, 0}: 3, // coflow B completes at 3
	}
	// objective = 1*4 + 2*3 = 10.
	if got := inst.ObjectiveFromCompletionTimes(completion); got != 10 {
		t.Errorf("objective = %v, want 10", got)
	}
	cct := inst.CoflowCompletionTimes(completion)
	if cct[0] != 4 || cct[1] != 3 {
		t.Errorf("coflow completion times = %v, want [4 3]", cct)
	}
	if got := totalWeightedCompletion(inst, completion); got != 10 {
		t.Errorf("helper objective = %v, want 10", got)
	}
}
