package coflow

import (
	"testing"

	"coflowsched/internal/graph"
)

// packetInstance builds a small packet-based instance on a 4-node line:
// two packets from h0 to h2 (coflow P) and one from h1 to h3 (coflow Q).
func packetInstance(t *testing.T) *Instance {
	t.Helper()
	g := graph.Line(4, 1)
	h := g.Hosts()
	inst := &Instance{
		Network: g,
		Coflows: []Coflow{
			{Name: "P", Weight: 1, Flows: []Flow{
				{Source: h[0], Dest: h[2], Size: 1},
				{Source: h[0], Dest: h[2], Size: 1},
			}},
			{Name: "Q", Weight: 3, Flows: []Flow{
				{Source: h[1], Dest: h[3], Size: 1, Release: 1},
			}},
		},
	}
	if err := inst.Validate(true); err != nil {
		t.Fatalf("packet instance invalid: %v", err)
	}
	return inst
}

// edgeBetween finds the directed edge from a to b.
func edgeBetween(t *testing.T, g *graph.Graph, a, b graph.NodeID) graph.EdgeID {
	t.Helper()
	for _, eid := range g.Out(a) {
		if g.Edge(eid).To == b {
			return eid
		}
	}
	t.Fatalf("no edge %d->%d", a, b)
	return -1
}

func TestPacketScheduleValidAndObjective(t *testing.T) {
	inst := packetInstance(t)
	g := inst.Network
	h := g.Hosts()
	e01 := edgeBetween(t, g, h[0], h[1])
	e12 := edgeBetween(t, g, h[1], h[2])
	e23 := edgeBetween(t, g, h[2], h[3])

	ps := NewPacketSchedule()
	// Packet (0,0): moves at steps 0 and 1.
	ps.Set(FlowRef{0, 0}, &PacketFlowSchedule{Moves: []PacketMove{{0, e01}, {1, e12}}})
	// Packet (0,1): must wait one step at h0 because e01 is busy at step 0.
	ps.Set(FlowRef{0, 1}, &PacketFlowSchedule{Moves: []PacketMove{{1, e01}, {2, e12}}})
	// Packet (1,0): released at 1, uses e12 at step 3 (after (0,1) clears it) and e23 at 4.
	ps.Set(FlowRef{1, 0}, &PacketFlowSchedule{Moves: []PacketMove{{3, e12}, {4, e23}}})

	if err := ps.Validate(inst); err != nil {
		t.Fatalf("schedule should be valid: %v", err)
	}
	// Completion: coflow P = max(2, 3) = 3; coflow Q = 5. Objective = 1*3 + 3*5 = 18.
	if got := ps.Objective(inst); got != 18 {
		t.Errorf("objective = %v, want 18", got)
	}
	if ps.Makespan() != 5 {
		t.Errorf("makespan = %v, want 5", ps.Makespan())
	}
	if q := ps.MaxQueueLength(inst); q < 0 || q > 2 {
		t.Errorf("queue length = %d out of expected range", q)
	}
	if ps.Get(FlowRef{0, 0}).CompletionTime() != 2 {
		t.Errorf("packet completion = %v, want 2", ps.Get(FlowRef{0, 0}).CompletionTime())
	}
}

func TestPacketScheduleValidateCatchesViolations(t *testing.T) {
	inst := packetInstance(t)
	g := inst.Network
	h := g.Hosts()
	e01 := edgeBetween(t, g, h[0], h[1])
	e12 := edgeBetween(t, g, h[1], h[2])
	e23 := edgeBetween(t, g, h[2], h[3])

	valid := func() *PacketSchedule {
		ps := NewPacketSchedule()
		ps.Set(FlowRef{0, 0}, &PacketFlowSchedule{Moves: []PacketMove{{0, e01}, {1, e12}}})
		ps.Set(FlowRef{0, 1}, &PacketFlowSchedule{Moves: []PacketMove{{1, e01}, {2, e12}}})
		ps.Set(FlowRef{1, 0}, &PacketFlowSchedule{Moves: []PacketMove{{3, e12}, {4, e23}}})
		return ps
	}
	if err := valid().Validate(inst); err != nil {
		t.Fatalf("baseline invalid: %v", err)
	}

	t.Run("missing packet", func(t *testing.T) {
		ps := valid()
		delete(ps.Flows, FlowRef{0, 1})
		if ps.Validate(inst) == nil {
			t.Error("expected error")
		}
	})
	t.Run("empty moves", func(t *testing.T) {
		ps := valid()
		ps.Set(FlowRef{0, 1}, &PacketFlowSchedule{})
		if ps.Validate(inst) == nil {
			t.Error("expected error")
		}
	})
	t.Run("before release", func(t *testing.T) {
		ps := valid()
		ps.Set(FlowRef{1, 0}, &PacketFlowSchedule{Moves: []PacketMove{{0, e12}, {4, e23}}})
		if ps.Validate(inst) == nil {
			t.Error("expected error")
		}
	})
	t.Run("edge collision", func(t *testing.T) {
		ps := valid()
		ps.Set(FlowRef{0, 1}, &PacketFlowSchedule{Moves: []PacketMove{{0, e01}, {2, e12}}})
		if ps.Validate(inst) == nil {
			t.Error("expected error")
		}
	})
	t.Run("non-increasing times", func(t *testing.T) {
		ps := valid()
		ps.Set(FlowRef{0, 1}, &PacketFlowSchedule{Moves: []PacketMove{{1, e01}, {1, e12}}})
		if ps.Validate(inst) == nil {
			t.Error("expected error")
		}
	})
	t.Run("wrong destination", func(t *testing.T) {
		ps := valid()
		ps.Set(FlowRef{0, 1}, &PacketFlowSchedule{Moves: []PacketMove{{1, e01}}})
		if ps.Validate(inst) == nil {
			t.Error("expected error")
		}
	})
	t.Run("assigned path violated", func(t *testing.T) {
		inst2 := packetInstance(t)
		// Pin packet (0,0) to the 2-hop path and schedule it on a different
		// (here impossible, so reuse same edges but longer) walk.
		inst2.Coflows[0].Flows[0].Path = graph.Path{e01, e12}
		ps := valid()
		e10 := edgeBetween(t, g, h[1], h[0])
		ps.Set(FlowRef{0, 0}, &PacketFlowSchedule{Moves: []PacketMove{{0, e01}, {1, e10}, {2, e01}, {3, e12}}})
		if ps.Validate(inst2) == nil {
			t.Error("expected error for deviating from the assigned path")
		}
	})
}
