package packet

import (
	"math/rand"
	"testing"

	"coflowsched/internal/coflow"
	"coflowsched/internal/graph"
	"coflowsched/internal/workload"
)

// linePacketInstance: several packets from h0 to h3 on a 4-node line plus one
// from h1 to h2, all in separate coflows.
func linePacketInstance(t *testing.T, n int) *coflow.Instance {
	t.Helper()
	g := graph.Line(4, 1)
	h := g.Hosts()
	inst := &coflow.Instance{Network: g}
	for i := 0; i < n; i++ {
		inst.Coflows = append(inst.Coflows, coflow.Coflow{
			Name: "p", Weight: 1,
			Flows: []coflow.Flow{{Source: h[0], Dest: h[3], Size: 1}},
		})
	}
	inst.Coflows = append(inst.Coflows, coflow.Coflow{
		Name: "q", Weight: 1,
		Flows: []coflow.Flow{{Source: h[1], Dest: h[2], Size: 1}},
	})
	if err := inst.Validate(true); err != nil {
		t.Fatal(err)
	}
	return inst
}

func shortestPaths(t *testing.T, inst *coflow.Instance) map[coflow.FlowRef]graph.Path {
	t.Helper()
	paths := make(map[coflow.FlowRef]graph.Path)
	for _, ref := range inst.FlowRefs() {
		f := inst.Flow(ref)
		p := inst.Network.ShortestPath(f.Source, f.Dest)
		if p == nil {
			t.Fatalf("no path for %s", ref)
		}
		paths[ref] = p
	}
	return paths
}

func TestCongestionAndDilation(t *testing.T) {
	inst := linePacketInstance(t, 3)
	paths := shortestPaths(t, inst)
	// Three packets share every edge of the h0->h3 path; the middle edge also
	// carries the h1->h2 packet: congestion 4.
	if c := Congestion(inst.Network, paths); c != 4 {
		t.Errorf("congestion = %d, want 4", c)
	}
	if d := Dilation(paths); d != 3 {
		t.Errorf("dilation = %d, want 3", d)
	}
}

func TestListScheduleFeasibleAndBounded(t *testing.T) {
	inst := linePacketInstance(t, 3)
	paths := shortestPaths(t, inst)
	order := inst.FlowRefs()
	ps, err := ListSchedule(inst, paths, order, 0)
	if err != nil {
		t.Fatalf("ListSchedule: %v", err)
	}
	if err := ps.Validate(inst); err != nil {
		t.Fatalf("schedule invalid: %v", err)
	}
	c := Congestion(inst.Network, paths)
	d := Dilation(paths)
	if int(ps.Makespan()) > c+d+1 {
		t.Errorf("makespan %v exceeds congestion+dilation bound %d", ps.Makespan(), c+d+1)
	}
	// First packet in the order is never delayed.
	first := ps.Get(order[0])
	if first.CompletionTime() != 3 {
		t.Errorf("highest-priority packet completes at %v, want 3", first.CompletionTime())
	}
}

func TestListScheduleRespectsStartAtAndRelease(t *testing.T) {
	inst := linePacketInstance(t, 1)
	inst.Coflows[0].Flows[0].Release = 2.5 // rounds up to step 3
	paths := shortestPaths(t, inst)
	ps, err := ListSchedule(inst, paths, inst.FlowRefs(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := ps.Validate(inst); err != nil {
		t.Fatal(err)
	}
	ref := coflow.FlowRef{Coflow: 0, Index: 0}
	if ps.Get(ref).Moves[0].Time != 3 {
		t.Errorf("first move at %d, want 3 (release rounded up)", ps.Get(ref).Moves[0].Time)
	}
	// startAt pushes everything later.
	ps2, err := ListSchedule(inst, paths, inst.FlowRefs(), 10)
	if err != nil {
		t.Fatal(err)
	}
	if ps2.Get(ref).Moves[0].Time != 10 {
		t.Errorf("startAt ignored: first move at %d, want 10", ps2.Get(ref).Moves[0].Time)
	}
}

func TestListScheduleErrors(t *testing.T) {
	inst := linePacketInstance(t, 2)
	paths := shortestPaths(t, inst)
	order := inst.FlowRefs()
	t.Run("missing path", func(t *testing.T) {
		bad := map[coflow.FlowRef]graph.Path{}
		if _, err := ListSchedule(inst, bad, order, 0); err == nil {
			t.Error("expected error")
		}
	})
	t.Run("duplicate order", func(t *testing.T) {
		dup := append([]coflow.FlowRef{}, order...)
		dup[1] = dup[0]
		if _, err := ListSchedule(inst, paths, dup, 0); err == nil {
			t.Error("expected error")
		}
	})
	t.Run("wrong path endpoints", func(t *testing.T) {
		bad := make(map[coflow.FlowRef]graph.Path)
		for k, v := range paths {
			bad[k] = v
		}
		bad[order[0]] = paths[order[len(order)-1]]
		if _, err := ListSchedule(inst, bad, order, 0); err == nil {
			t.Error("expected error")
		}
	})
}

func TestEarliestArrivalScheduleRoutesAndSchedules(t *testing.T) {
	inst := linePacketInstance(t, 3)
	ps, err := EarliestArrivalSchedule(inst, inst.FlowRefs(), 0)
	if err != nil {
		t.Fatalf("EarliestArrivalSchedule: %v", err)
	}
	if err := ps.Validate(inst); err != nil {
		t.Fatalf("schedule invalid: %v", err)
	}
	// On the line there is only one route, so packets serialize: completion
	// times 3, 4, 5 for the three h0->h3 packets.
	times := []float64{}
	for i := 0; i < 3; i++ {
		times = append(times, ps.Get(coflow.FlowRef{Coflow: i, Index: 0}).CompletionTime())
	}
	if !(times[0] <= times[1] && times[1] <= times[2]) {
		t.Errorf("priority order not respected: %v", times)
	}
	if times[0] != 3 || times[2] != 5 {
		t.Errorf("completion times = %v, want [3 4 5]", times)
	}
}

func TestEarliestArrivalScheduleUsesAlternateRoutes(t *testing.T) {
	// On a grid, several packets between the same endpoints can fan out over
	// distinct shortest routes instead of queueing.
	g := graph.Grid(3, 3, 1)
	inst := &coflow.Instance{Network: g}
	src := graph.NodeID(0)
	dst := graph.NodeID(8)
	for i := 0; i < 3; i++ {
		inst.Coflows = append(inst.Coflows, coflow.Coflow{
			Name: "p", Weight: 1,
			Flows: []coflow.Flow{{Source: src, Dest: dst, Size: 1}},
		})
	}
	if err := inst.Validate(true); err != nil {
		t.Fatal(err)
	}
	ps, err := EarliestArrivalSchedule(inst, inst.FlowRefs(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := ps.Validate(inst); err != nil {
		t.Fatal(err)
	}
	// The first packet arrives at distance 4; with alternate routes the last
	// should arrive no later than 6 (it would be 6+ if all serialized on one
	// path, but the very first edge out of the source is shared by at most 2
	// shortest routes, so some queueing is expected).
	if m := ps.Makespan(); m > 7 {
		t.Errorf("makespan = %v, want <= 7 with route diversity", m)
	}
}

func TestEarliestArrivalScheduleHonorsPinnedPaths(t *testing.T) {
	inst := linePacketInstance(t, 1)
	ref := coflow.FlowRef{Coflow: 0, Index: 0}
	f := inst.Flow(ref)
	f.Path = inst.Network.ShortestPath(f.Source, f.Dest)
	ps, err := EarliestArrivalSchedule(inst, inst.FlowRefs(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := ps.Validate(inst); err != nil {
		t.Fatal(err) // Validate checks pinned-path compliance
	}
}

func TestEarliestArrivalScheduleDuplicateOrder(t *testing.T) {
	inst := linePacketInstance(t, 2)
	order := inst.FlowRefs()
	order[1] = order[0]
	if _, err := EarliestArrivalSchedule(inst, order, 0); err == nil {
		t.Error("expected error")
	}
}

func TestSchedulersOnRandomPacketWorkload(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	inst, err := workload.Generate(graph.Grid(3, 4, 1), workload.Config{
		NumCoflows: 5, Width: 4, PacketModel: true, MeanRelease: 2,
	}, rng)
	if err != nil {
		t.Fatal(err)
	}
	paths := shortestPaths(t, inst)
	order := inst.FlowRefs()

	ls, err := ListSchedule(inst, paths, order, 0)
	if err != nil {
		t.Fatalf("ListSchedule: %v", err)
	}
	if err := ls.Validate(inst); err != nil {
		t.Fatalf("list schedule invalid: %v", err)
	}
	ea, err := EarliestArrivalSchedule(inst, order, 0)
	if err != nil {
		t.Fatalf("EarliestArrivalSchedule: %v", err)
	}
	if err := ea.Validate(inst); err != nil {
		t.Fatalf("earliest-arrival schedule invalid: %v", err)
	}
	// Free routing should not be worse than fixed shortest-path routing by
	// more than a small factor (it usually wins).
	if ea.Objective(inst) > 1.5*ls.Objective(inst)+5 {
		t.Errorf("earliest-arrival objective %v much worse than list scheduling %v",
			ea.Objective(inst), ls.Objective(inst))
	}
}
