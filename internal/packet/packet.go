// Package packet provides the packet-routing and packet-scheduling substrate
// used by the packet-based coflow algorithms (§3 of the paper):
//
//   - ListSchedule: greedy unit-time job-shop list scheduling of packets with
//     fixed paths (the machinery behind the §3.1 reduction) — at every step
//     each directed edge carries at most one packet and packets advance in a
//     caller-supplied priority order.
//   - EarliestArrivalSchedule: per-packet earliest-arrival routing over the
//     time-expanded graph, reserving (edge, step) slots as it goes — the
//     routing + scheduling primitive applied interval by interval in §3.2.
//   - Congestion and Dilation: the C and D of the classical O(C + D) packet
//     scheduling results, used to bound schedule quality in tests.
package packet

import (
	"fmt"

	"coflowsched/internal/coflow"
	"coflowsched/internal/graph"
	"coflowsched/internal/timeexp"
)

// Congestion returns the maximum, over directed edges, of the number of
// packets whose path uses that edge.
func Congestion(g *graph.Graph, paths map[coflow.FlowRef]graph.Path) int {
	count := make([]int, g.NumEdges())
	max := 0
	for _, p := range paths {
		for _, e := range p {
			count[e]++
			if count[e] > max {
				max = count[e]
			}
		}
	}
	return max
}

// Dilation returns the maximum path length.
func Dilation(paths map[coflow.FlowRef]graph.Path) int {
	max := 0
	for _, p := range paths {
		if len(p) > max {
			max = len(p)
		}
	}
	return max
}

// ListSchedule schedules packets over fixed paths with greedy list
// scheduling: time advances in unit steps; at each step packets are
// considered in the given priority order and a packet crosses its next edge
// if it has been released, has arrived at that edge's tail, and no
// higher-priority packet grabbed the edge this step. The resulting makespan
// is O(congestion + dilation) for each priority class, in the spirit of
// Leighton–Maggs–Rao.
//
// startAt delays the entire batch: no packet moves before that step (used by
// the interval-by-interval rounding of §3.2). The order must contain every
// key of paths exactly once.
func ListSchedule(inst *coflow.Instance, paths map[coflow.FlowRef]graph.Path, order []coflow.FlowRef, startAt int) (*coflow.PacketSchedule, error) {
	type state struct {
		ref   coflow.FlowRef
		path  graph.Path
		pos   int // next edge index
		ready int // step at which the packet may next move
	}
	states := make([]*state, 0, len(order))
	seen := make(map[coflow.FlowRef]bool, len(order))
	for _, ref := range order {
		p, ok := paths[ref]
		if !ok {
			return nil, fmt.Errorf("packet: flow %s missing from paths", ref)
		}
		if seen[ref] {
			return nil, fmt.Errorf("packet: flow %s appears twice in the order", ref)
		}
		seen[ref] = true
		f := inst.Flow(ref)
		if err := p.Validate(inst.Network, f.Source, f.Dest); err != nil {
			return nil, fmt.Errorf("packet: flow %s: %v", ref, err)
		}
		ready := int(f.Release)
		if f.Release > float64(ready) {
			ready++ // round fractional releases up to the next step
		}
		if ready < startAt {
			ready = startAt
		}
		states = append(states, &state{ref: ref, path: p, pos: 0, ready: ready})
	}
	if len(states) != len(paths) {
		return nil, fmt.Errorf("packet: order has %d flows, paths has %d", len(states), len(paths))
	}

	ps := coflow.NewPacketSchedule()
	for _, st := range states {
		ps.Set(st.ref, &coflow.PacketFlowSchedule{})
	}

	remaining := len(states)
	// A trivial upper bound on the makespan: every packet waits for every
	// other packet on every hop.
	limit := startAt + Dilation(paths) + len(states)*Congestion(inst.Network, paths) + int(inst.MaxRelease()) + 2
	for t := startAt; remaining > 0; t++ {
		if t > limit {
			return nil, fmt.Errorf("packet: list scheduling exceeded its makespan bound %d", limit)
		}
		used := make(map[graph.EdgeID]bool)
		for _, st := range states {
			if st.pos >= len(st.path) || st.ready > t {
				continue
			}
			e := st.path[st.pos]
			if used[e] {
				continue
			}
			used[e] = true
			sched := ps.Get(st.ref)
			sched.Moves = append(sched.Moves, coflow.PacketMove{Time: t, Edge: e})
			st.pos++
			st.ready = t + 1
			if st.pos >= len(st.path) {
				remaining--
			}
		}
	}
	return ps, nil
}

// EarliestArrivalSchedule routes and schedules packets one at a time in the
// given priority order: each packet takes the earliest-arrival route through
// the time-expanded graph given the slots already reserved by earlier
// packets. Unlike ListSchedule it chooses paths itself (the "paths not
// given" setting); pinned packets (with f.Path != nil) still follow their
// path but are timed by the same reservation mechanism.
func EarliestArrivalSchedule(inst *coflow.Instance, order []coflow.FlowRef, startAt int) (*coflow.PacketSchedule, error) {
	// Horizon: every packet can always be scheduled within
	// (#packets + startAt + maxRelease) * diameter-ish steps; use a generous
	// bound based on edges and packets.
	horizon := startAt + int(inst.MaxRelease()) + (inst.NumFlows()+1)*(inst.Network.NumNodes()+2)
	te := timeexp.New(inst.Network, horizon)

	type slot struct {
		e graph.EdgeID
		t int
	}
	reserved := make(map[slot]bool)
	occupied := func(e graph.EdgeID, t int) bool { return reserved[slot{e, t}] }

	ps := coflow.NewPacketSchedule()
	seen := make(map[coflow.FlowRef]bool, len(order))
	for _, ref := range order {
		if seen[ref] {
			return nil, fmt.Errorf("packet: flow %s appears twice in the order", ref)
		}
		seen[ref] = true
		f := inst.Flow(ref)
		release := int(f.Release)
		if f.Release > float64(release) {
			release++
		}
		if release < startAt {
			release = startAt
		}
		var moves []timeexp.Move
		if f.Path != nil {
			moves = scheduleAlongPath(f.Path, release, occupied, horizon)
		} else {
			moves = te.EarliestArrival(f.Source, f.Dest, release, occupied)
		}
		if moves == nil {
			return nil, fmt.Errorf("packet: could not schedule flow %s within horizon %d", ref, horizon)
		}
		sched := &coflow.PacketFlowSchedule{}
		for _, m := range moves {
			reserved[slot{m.Edge, m.Time}] = true
			sched.Moves = append(sched.Moves, coflow.PacketMove{Time: m.Time, Edge: m.Edge})
		}
		ps.Set(ref, sched)
	}
	return ps, nil
}

// scheduleAlongPath times a packet along a fixed path, crossing each edge at
// the first free step after arriving at its tail.
func scheduleAlongPath(path graph.Path, release int, occupied func(graph.EdgeID, int) bool, horizon int) []timeexp.Move {
	t := release
	moves := make([]timeexp.Move, 0, len(path))
	for _, e := range path {
		for t < horizon && occupied(e, t) {
			t++
		}
		if t >= horizon {
			return nil
		}
		moves = append(moves, timeexp.Move{Time: t, Edge: e})
		t++
	}
	return moves
}
