// Package timeexp implements time-expanded graphs (Ford–Fulkerson), the
// substrate behind the paper's packet-routing algorithm for coflows without
// given paths (§3.2, Figure 2).
//
// Given a directed graph G and a horizon T, the time-expanded graph G^T has a
// node (v, t) for every node v of G and every 0 <= t <= T. Movement edges
// connect (u, t) to (v, t+1) for every edge (u, v) of G; queue edges connect
// (v, t) to (v, t+1) and model a packet waiting one step at v.
package timeexp

import (
	"container/heap"
	"fmt"

	"coflowsched/internal/graph"
)

// Move records a packet crossing Edge of the base graph during step Time.
type Move struct {
	Time int
	Edge graph.EdgeID
}

// Graph is a time-expanded view of a base graph over T steps. It stores no
// explicit edge list: movement and queue edges are enumerated on demand,
// keeping the structure O(|V|·T) in memory.
type Graph struct {
	base *graph.Graph
	t    int
}

// New builds the time-expanded graph of base over horizon T (T >= 1).
func New(base *graph.Graph, T int) *Graph {
	if T < 1 {
		panic(fmt.Sprintf("timeexp: horizon must be >= 1, got %d", T))
	}
	return &Graph{base: base, t: T}
}

// Base returns the underlying graph.
func (g *Graph) Base() *graph.Graph { return g.base }

// Horizon returns T.
func (g *Graph) Horizon() int { return g.t }

// NumNodes returns |V| * (T+1), the number of (node, time) pairs.
func (g *Graph) NumNodes() int { return g.base.NumNodes() * (g.t + 1) }

// NumEdges returns the number of edges of G^T: movement edges |E|*T plus
// queue edges |V|*T.
func (g *Graph) NumEdges() int { return (g.base.NumEdges() + g.base.NumNodes()) * g.t }

// NodeIndex maps (v, t) to a dense index in [0, NumNodes()).
func (g *Graph) NodeIndex(v graph.NodeID, t int) int {
	if t < 0 || t > g.t {
		panic(fmt.Sprintf("timeexp: time %d outside [0,%d]", t, g.t))
	}
	return t*g.base.NumNodes() + int(v)
}

// NodeAt is the inverse of NodeIndex.
func (g *Graph) NodeAt(idx int) (graph.NodeID, int) {
	n := g.base.NumNodes()
	return graph.NodeID(idx % n), idx / n
}

// Successors enumerates the time-expanded successors of (v, t): the queue
// edge to (v, t+1) and a movement edge per outgoing base edge. It calls fn
// with the base edge id (or -1 for the queue edge) and the successor node.
// Enumeration stops early if fn returns false.
func (g *Graph) Successors(v graph.NodeID, t int, fn func(edge graph.EdgeID, to graph.NodeID) bool) {
	if t >= g.t {
		return
	}
	if !fn(graph.EdgeID(-1), v) {
		return
	}
	for _, eid := range g.base.Out(v) {
		if !fn(eid, g.base.Edge(eid).To) {
			return
		}
	}
}

// arrivalItem is a priority-queue entry for EarliestArrival.
type arrivalItem struct {
	node graph.NodeID
	time int
}

type arrivalPQ []arrivalItem

func (q arrivalPQ) Len() int           { return len(q) }
func (q arrivalPQ) Less(i, j int) bool { return q[i].time < q[j].time }
func (q arrivalPQ) Swap(i, j int)      { q[i], q[j] = q[j], q[i] }
func (q *arrivalPQ) Push(x any)        { *q = append(*q, x.(arrivalItem)) }
func (q *arrivalPQ) Pop() any {
	old := *q
	n := len(old)
	it := old[n-1]
	*q = old[:n-1]
	return it
}

// EarliestArrival finds a schedule of moves that brings a packet from src
// (available at time start) to dst as early as possible, never using an
// (edge, time) slot for which occupied returns true. Waiting at intermediate
// nodes (queue edges of G^T) is free and unlimited. It returns nil if dst
// cannot be reached within the horizon, and an empty slice when src == dst.
//
// Because waiting is always allowed, the earliest arrival time at each node
// dominates any later arrival, so a Dijkstra-style search over (node,
// earliest arrival) is exact. The packet routing + scheduling step of the
// paper's §3.2 algorithm applies this packet by packet in LP priority order;
// the queue edges are what "simulate packets waiting for one or more rounds
// at a node" (Figure 2).
func (g *Graph) EarliestArrival(src, dst graph.NodeID, start int, occupied func(e graph.EdgeID, t int) bool) []Move {
	if src == dst {
		return []Move{}
	}
	if start < 0 {
		start = 0
	}
	if start > g.t {
		return nil
	}
	n := g.base.NumNodes()
	arrive := make([]int, n)
	visited := make([]bool, n)
	prevMove := make([]Move, n)
	prevNode := make([]graph.NodeID, n)
	for i := range arrive {
		arrive[i] = -1
		prevNode[i] = -1
	}
	arrive[src] = start

	pq := &arrivalPQ{{node: src, time: start}}
	for pq.Len() > 0 {
		it := heap.Pop(pq).(arrivalItem)
		v := it.node
		if visited[v] {
			continue
		}
		visited[v] = true
		if v == dst {
			break
		}
		for _, eid := range g.base.Out(v) {
			to := g.base.Edge(eid).To
			if visited[to] {
				continue
			}
			// Depart on the first non-occupied step at or after arrival.
			dep := it.time
			for dep < g.t && occupied != nil && occupied(eid, dep) {
				dep++
			}
			if dep >= g.t {
				continue
			}
			arr := dep + 1
			if arrive[to] < 0 || arr < arrive[to] {
				arrive[to] = arr
				prevMove[to] = Move{Time: dep, Edge: eid}
				prevNode[to] = v
				heap.Push(pq, arrivalItem{node: to, time: arr})
			}
		}
	}
	if arrive[dst] < 0 {
		return nil
	}
	var rev []Move
	cur := dst
	for cur != src {
		rev = append(rev, prevMove[cur])
		cur = prevNode[cur]
		if cur < 0 {
			return nil
		}
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// CollapseMoves converts time-expanded moves back to a plain path in the base
// graph (Figure 2's "collapse" step), dropping queue waits.
func CollapseMoves(moves []Move) graph.Path {
	p := make(graph.Path, 0, len(moves))
	for _, m := range moves {
		p = append(p, m.Edge)
	}
	return p
}
