package timeexp

import (
	"testing"

	"coflowsched/internal/graph"
)

func lineGraph(t *testing.T) (*graph.Graph, []graph.NodeID) {
	t.Helper()
	g := graph.Line(4, 1)
	return g, g.Hosts()
}

func TestSizesAndIndexing(t *testing.T) {
	g, _ := lineGraph(t)
	te := New(g, 3)
	if te.Horizon() != 3 || te.Base() != g {
		t.Errorf("accessors wrong")
	}
	// Figure 2 structure: |V|*(T+1) nodes, (|E|+|V|)*T edges.
	if te.NumNodes() != g.NumNodes()*4 {
		t.Errorf("NumNodes = %d, want %d", te.NumNodes(), g.NumNodes()*4)
	}
	if te.NumEdges() != (g.NumEdges()+g.NumNodes())*3 {
		t.Errorf("NumEdges = %d, want %d", te.NumEdges(), (g.NumEdges()+g.NumNodes())*3)
	}
	idx := te.NodeIndex(graph.NodeID(2), 3)
	v, tt := te.NodeAt(idx)
	if v != 2 || tt != 3 {
		t.Errorf("NodeAt(NodeIndex) = (%d,%d), want (2,3)", v, tt)
	}
	defer func() {
		if recover() == nil {
			t.Error("NodeIndex with bad time should panic")
		}
	}()
	te.NodeIndex(0, 99)
}

func TestNewPanicsOnBadHorizon(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	New(graph.Triangle(), 0)
}

func TestSuccessorsEnumeratesQueueAndMovementEdges(t *testing.T) {
	g, h := lineGraph(t)
	te := New(g, 2)
	var queueEdges, moveEdges int
	te.Successors(h[1], 0, func(e graph.EdgeID, to graph.NodeID) bool {
		if e == graph.EdgeID(-1) {
			queueEdges++
			if to != h[1] {
				t.Errorf("queue edge should stay at the same node")
			}
		} else {
			moveEdges++
		}
		return true
	})
	if queueEdges != 1 || moveEdges != len(g.Out(h[1])) {
		t.Errorf("successors: %d queue, %d movement; want 1, %d", queueEdges, moveEdges, len(g.Out(h[1])))
	}
	// At the horizon there are no successors.
	count := 0
	te.Successors(h[1], 2, func(graph.EdgeID, graph.NodeID) bool { count++; return true })
	if count != 0 {
		t.Errorf("successors at horizon = %d, want 0", count)
	}
	// Early termination.
	count = 0
	te.Successors(h[1], 0, func(graph.EdgeID, graph.NodeID) bool { count++; return false })
	if count != 1 {
		t.Errorf("early-terminated enumeration visited %d, want 1", count)
	}
}

func TestEarliestArrivalUnobstructed(t *testing.T) {
	g, h := lineGraph(t)
	te := New(g, 10)
	moves := te.EarliestArrival(h[0], h[3], 0, nil)
	if len(moves) != 3 {
		t.Fatalf("moves = %v, want 3 hops", moves)
	}
	for i, m := range moves {
		if m.Time != i {
			t.Errorf("move %d at time %d, want %d", i, m.Time, i)
		}
	}
	p := CollapseMoves(moves)
	if err := p.Validate(g, h[0], h[3]); err != nil {
		t.Errorf("collapsed path invalid: %v", err)
	}
	// Start offset shifts everything.
	moves = te.EarliestArrival(h[0], h[3], 4, nil)
	if len(moves) != 3 || moves[0].Time != 4 {
		t.Errorf("delayed start moves = %v", moves)
	}
	// src == dst gives an empty schedule.
	if got := te.EarliestArrival(h[0], h[0], 0, nil); got == nil || len(got) != 0 {
		t.Errorf("self arrival = %v, want empty", got)
	}
}

func TestEarliestArrivalWaitsForOccupiedSlots(t *testing.T) {
	g, h := lineGraph(t)
	te := New(g, 10)
	var firstEdge graph.EdgeID = -1
	for _, e := range g.Out(h[0]) {
		if g.Edge(e).To == h[1] {
			firstEdge = e
		}
	}
	// The first edge is busy at steps 0 and 1: the packet must wait at its
	// source and arrive two steps later than unobstructed.
	occupied := func(e graph.EdgeID, t int) bool { return e == firstEdge && t < 2 }
	moves := te.EarliestArrival(h[0], h[3], 0, occupied)
	if len(moves) != 3 {
		t.Fatalf("moves = %v", moves)
	}
	if moves[0].Time != 2 || moves[2].Time != 4 {
		t.Errorf("expected departure at 2 and arrival after step 4, got %v", moves)
	}
}

func TestEarliestArrivalRoutesAroundCongestion(t *testing.T) {
	// Triangle: direct edge x->z blocked forever; the packet must go via y.
	g := graph.Triangle()
	x, _ := g.FindNode("x")
	y, _ := g.FindNode("y")
	z, _ := g.FindNode("z")
	var direct graph.EdgeID = -1
	for _, e := range g.Out(x) {
		if g.Edge(e).To == z {
			direct = e
		}
	}
	te := New(g, 10)
	moves := te.EarliestArrival(x, z, 0, func(e graph.EdgeID, t int) bool { return e == direct })
	if len(moves) != 2 {
		t.Fatalf("moves = %v, want 2-hop detour", moves)
	}
	path := CollapseMoves(moves)
	nodes := path.Nodes(g)
	if nodes[1] != y {
		t.Errorf("detour should pass through y, got %v", nodes)
	}
}

func TestEarliestArrivalUnreachable(t *testing.T) {
	g := graph.New()
	a := g.AddNode("a", graph.KindHost)
	b := g.AddNode("b", graph.KindHost)
	c := g.AddNode("c", graph.KindHost)
	g.AddEdge(a, b, 1)
	te := New(g, 5)
	if moves := te.EarliestArrival(a, c, 0, nil); moves != nil {
		t.Errorf("unreachable destination should return nil, got %v", moves)
	}
	// Horizon too small: a 1-hop move cannot happen if start is at the horizon.
	if moves := te.EarliestArrival(a, b, 5, nil); moves != nil {
		t.Errorf("start at horizon should return nil, got %v", moves)
	}
	// Everything occupied: unreachable.
	if moves := te.EarliestArrival(a, b, 0, func(graph.EdgeID, int) bool { return true }); moves != nil {
		t.Errorf("fully occupied network should return nil, got %v", moves)
	}
}
