package graph

import (
	"testing"
)

func TestShortestPathBasics(t *testing.T) {
	g := Ring(6, 1)
	h := g.Hosts()
	p := g.ShortestPath(h[0], h[2])
	if p == nil || len(p) != 2 {
		t.Fatalf("shortest path h0->h2 on ring(6) = %v, want 2 hops", p)
	}
	if err := p.Validate(g, h[0], h[2]); err != nil {
		t.Errorf("Validate: %v", err)
	}
	// Same node: empty path.
	if p := g.ShortestPath(h[0], h[0]); len(p) != 0 || p == nil {
		t.Errorf("self path = %v, want empty non-nil", p)
	}
}

func TestShortestPathUnreachable(t *testing.T) {
	g := New()
	a := g.AddNode("a", KindHost)
	b := g.AddNode("b", KindHost)
	c := g.AddNode("c", KindHost)
	g.AddEdge(a, b, 1)
	if p := g.ShortestPath(a, c); p != nil {
		t.Errorf("path to unreachable node = %v, want nil", p)
	}
}

func TestShortestPathWeighted(t *testing.T) {
	// Two routes a->c: direct with weight 10, via b with weight 2+2.
	g := New()
	a := g.AddNode("a", KindHost)
	b := g.AddNode("b", KindHost)
	c := g.AddNode("c", KindHost)
	direct := g.AddEdge(a, c, 1)
	ab := g.AddEdge(a, b, 1)
	bc := g.AddEdge(b, c, 1)
	weights := map[EdgeID]float64{direct: 10, ab: 2, bc: 2}
	p := g.ShortestPathWeighted(a, c, func(e EdgeID) float64 { return weights[e] })
	if len(p) != 2 || p[0] != ab || p[1] != bc {
		t.Errorf("weighted path = %v, want via b", p)
	}
	// With uniform weights the direct edge wins.
	p2 := g.ShortestPath(a, c)
	if len(p2) != 1 || p2[0] != direct {
		t.Errorf("hop-count path = %v, want direct", p2)
	}
}

func TestWidestPath(t *testing.T) {
	// a->c direct capacity 1; a->b->c capacity 5 each. Widest picks the
	// two-hop route.
	g := New()
	a := g.AddNode("a", KindHost)
	b := g.AddNode("b", KindHost)
	c := g.AddNode("c", KindHost)
	direct := g.AddEdge(a, c, 1)
	ab := g.AddEdge(a, b, 5)
	bc := g.AddEdge(b, c, 5)
	p := g.WidestPath(a, c, g.Capacity)
	if len(p) != 2 || p[0] != ab || p[1] != bc {
		t.Errorf("widest path = %v, want [%d %d]", p, ab, bc)
	}
	// When widths tie, the fewer-hop path wins.
	weights := map[EdgeID]float64{direct: 5, ab: 5, bc: 5}
	p2 := g.WidestPath(a, c, func(e EdgeID) float64 { return weights[e] })
	if len(p2) != 1 || p2[0] != direct {
		t.Errorf("tie-break path = %v, want direct", p2)
	}
	// Zero-width edges are unusable.
	p3 := g.WidestPath(a, c, func(e EdgeID) float64 { return 0 })
	if p3 != nil {
		t.Errorf("widest path over zero widths = %v, want nil", p3)
	}
	// Self path.
	if p := g.WidestPath(a, a, g.Capacity); p == nil || len(p) != 0 {
		t.Errorf("self widest path = %v, want empty", p)
	}
}

func TestKShortestPaths(t *testing.T) {
	// Fat-tree has multiple equal-cost paths between cross-pod hosts.
	g := FatTree(4, 1)
	h := g.Hosts()
	src, dst := h[0], h[len(h)-1]
	paths := g.KShortestPaths(src, dst, 4)
	if len(paths) < 2 {
		t.Fatalf("expected at least 2 paths in fat-tree, got %d", len(paths))
	}
	for i, p := range paths {
		if err := p.Validate(g, src, dst); err != nil {
			t.Errorf("path %d invalid: %v", i, err)
		}
	}
	// Paths must be distinct.
	for i := 0; i < len(paths); i++ {
		for j := i + 1; j < len(paths); j++ {
			same := len(paths[i]) == len(paths[j])
			if same {
				for k := range paths[i] {
					if paths[i][k] != paths[j][k] {
						same = false
						break
					}
				}
			}
			if same {
				t.Errorf("paths %d and %d identical", i, j)
			}
		}
	}
	if got := g.KShortestPaths(src, dst, 0); got != nil {
		t.Errorf("k=0 should return nil")
	}
	// Unreachable destination.
	iso := g.AddNode("isolated", KindHost)
	if got := g.KShortestPaths(src, iso, 3); got != nil {
		t.Errorf("unreachable should return nil, got %v", got)
	}
}

func TestKShortestPathsLineOnlyOnePath(t *testing.T) {
	g := Line(4, 1)
	h := g.Hosts()
	paths := g.KShortestPaths(h[0], h[3], 5)
	if len(paths) != 1 {
		t.Errorf("line graph has exactly one simple path, got %d", len(paths))
	}
}
