// Package graph provides the network substrate for coflow scheduling: a
// directed capacitated multigraph, datacenter and synthetic topology
// generators, shortest/widest path search, max-flow, and the flow
// decomposition used by the paper's rounding step (§2.2).
package graph

import (
	"fmt"
	"sort"
	"sync"
)

// NodeID identifies a node of a Graph.
type NodeID int

// EdgeID identifies a directed edge of a Graph.
type EdgeID int

// Edge is a directed capacitated edge.
type Edge struct {
	ID       EdgeID
	From     NodeID
	To       NodeID
	Capacity float64
}

// Node is a vertex of the network. Kind distinguishes hosts from switches in
// datacenter topologies; synthetic topologies use KindHost for every node.
type Node struct {
	ID   NodeID
	Name string
	Kind NodeKind
}

// NodeKind classifies nodes in datacenter topologies.
type NodeKind int

const (
	// KindHost is an end host (server); flows originate and terminate here.
	KindHost NodeKind = iota
	// KindEdgeSwitch is a top-of-rack/edge switch.
	KindEdgeSwitch
	// KindAggSwitch is an aggregation switch.
	KindAggSwitch
	// KindCoreSwitch is a core switch.
	KindCoreSwitch
)

// String returns a short label for the node kind.
func (k NodeKind) String() string {
	switch k {
	case KindHost:
		return "host"
	case KindEdgeSwitch:
		return "edge"
	case KindAggSwitch:
		return "agg"
	case KindCoreSwitch:
		return "core"
	}
	return "unknown"
}

// Graph is a directed capacitated multigraph. The zero value is an empty
// graph ready for use.
type Graph struct {
	nodes []Node
	edges []Edge
	out   [][]EdgeID // outgoing edge ids per node
	in    [][]EdgeID // incoming edge ids per node

	// Derived-state caches, shared by every consumer of the topology and
	// dropped on mutation. Graphs are handled by pointer throughout, so the
	// synchronization state is never copied.
	kspMu   sync.RWMutex
	kspMemo map[kspKey][]Path // see pathcache.go
	btPool  sync.Pool         // *btScratch, see load.go
}

// New returns an empty graph.
func New() *Graph { return &Graph{} }

// AddNode adds a node with the given name and kind and returns its id.
func (g *Graph) AddNode(name string, kind NodeKind) NodeID {
	id := NodeID(len(g.nodes))
	g.nodes = append(g.nodes, Node{ID: id, Name: name, Kind: kind})
	g.out = append(g.out, nil)
	g.in = append(g.in, nil)
	g.invalidateCaches()
	return id
}

// AddEdge adds a directed edge from -> to with the given capacity and returns
// its id. Capacity must be positive.
func (g *Graph) AddEdge(from, to NodeID, capacity float64) EdgeID {
	if capacity <= 0 {
		panic(fmt.Sprintf("graph: non-positive capacity %v on edge %d->%d", capacity, from, to))
	}
	if int(from) >= len(g.nodes) || int(to) >= len(g.nodes) || from < 0 || to < 0 {
		panic(fmt.Sprintf("graph: edge endpoints %d->%d out of range", from, to))
	}
	id := EdgeID(len(g.edges))
	g.edges = append(g.edges, Edge{ID: id, From: from, To: to, Capacity: capacity})
	g.out[from] = append(g.out[from], id)
	g.in[to] = append(g.in[to], id)
	g.invalidateCaches()
	return id
}

// btGet checks a scratch arena out of the pool, (re)allocating when the pool
// is empty or the graph grew since the arena was built.
func (g *Graph) btGet() *btScratch {
	s, _ := g.btPool.Get().(*btScratch)
	if s == nil || len(s.vals) < len(g.edges) {
		s = &btScratch{
			vals:  make([]float64, len(g.edges)),
			stamp: make([]uint32, len(g.edges)),
		}
	}
	s.cur++
	if s.cur == 0 { // generation counter wrapped: stale stamps could collide
		clear(s.stamp)
		s.cur = 1
	}
	return s
}

// AddBidirectional adds a pair of opposite directed edges with the same
// capacity (a full-duplex link) and returns both ids.
func (g *Graph) AddBidirectional(a, b NodeID, capacity float64) (EdgeID, EdgeID) {
	return g.AddEdge(a, b, capacity), g.AddEdge(b, a, capacity)
}

// NumNodes returns the number of nodes.
func (g *Graph) NumNodes() int { return len(g.nodes) }

// NumEdges returns the number of directed edges.
func (g *Graph) NumEdges() int { return len(g.edges) }

// Node returns the node record for id.
func (g *Graph) Node(id NodeID) Node { return g.nodes[id] }

// Edge returns the edge record for id.
func (g *Graph) Edge(id EdgeID) Edge { return g.edges[id] }

// Capacity returns the capacity of edge id.
func (g *Graph) Capacity(id EdgeID) float64 { return g.edges[id].Capacity }

// Out returns the ids of edges leaving node v. The returned slice must not be
// modified.
func (g *Graph) Out(v NodeID) []EdgeID { return g.out[v] }

// In returns the ids of edges entering node v. The returned slice must not be
// modified.
func (g *Graph) In(v NodeID) []EdgeID { return g.in[v] }

// Nodes returns a copy of all node records.
func (g *Graph) Nodes() []Node {
	out := make([]Node, len(g.nodes))
	copy(out, g.nodes)
	return out
}

// Edges returns a copy of all edge records.
func (g *Graph) Edges() []Edge {
	out := make([]Edge, len(g.edges))
	copy(out, g.edges)
	return out
}

// Hosts returns the ids of all nodes with KindHost, in id order.
func (g *Graph) Hosts() []NodeID {
	var hosts []NodeID
	for _, n := range g.nodes {
		if n.Kind == KindHost {
			hosts = append(hosts, n.ID)
		}
	}
	return hosts
}

// MinCapacity returns the smallest edge capacity in the graph, or 0 for an
// edgeless graph.
func (g *Graph) MinCapacity() float64 {
	if len(g.edges) == 0 {
		return 0
	}
	min := g.edges[0].Capacity
	for _, e := range g.edges[1:] {
		if e.Capacity < min {
			min = e.Capacity
		}
	}
	return min
}

// FindNode returns the id of the first node with the given name.
func (g *Graph) FindNode(name string) (NodeID, bool) {
	for _, n := range g.nodes {
		if n.Name == name {
			return n.ID, true
		}
	}
	return -1, false
}

// Path is a sequence of edge ids forming a walk in the graph. An empty path
// is valid only when source equals destination.
type Path []EdgeID

// Nodes returns the node sequence visited by the path, starting at the source
// of its first edge. It returns nil for an empty path.
func (p Path) Nodes(g *Graph) []NodeID {
	if len(p) == 0 {
		return nil
	}
	nodes := make([]NodeID, 0, len(p)+1)
	nodes = append(nodes, g.Edge(p[0]).From)
	for _, e := range p {
		nodes = append(nodes, g.Edge(e).To)
	}
	return nodes
}

// MinCapacity returns the bottleneck capacity of the path, or +Inf-like large
// value (0) semantics: for an empty path it returns 0.
func (p Path) MinCapacity(g *Graph) float64 {
	if len(p) == 0 {
		return 0
	}
	min := g.Capacity(p[0])
	for _, e := range p[1:] {
		if c := g.Capacity(e); c < min {
			min = c
		}
	}
	return min
}

// Validate checks that the path is a contiguous walk from src to dst using
// edges of g.
func (p Path) Validate(g *Graph, src, dst NodeID) error {
	if len(p) == 0 {
		if src == dst {
			return nil
		}
		return fmt.Errorf("graph: empty path but src %d != dst %d", src, dst)
	}
	cur := src
	for i, eid := range p {
		if int(eid) < 0 || int(eid) >= g.NumEdges() {
			return fmt.Errorf("graph: path edge %d (%d) out of range", i, eid)
		}
		e := g.Edge(eid)
		if e.From != cur {
			return fmt.Errorf("graph: path edge %d starts at %d, want %d", i, e.From, cur)
		}
		cur = e.To
	}
	if cur != dst {
		return fmt.Errorf("graph: path ends at %d, want %d", cur, dst)
	}
	return nil
}

// Reachable reports whether dst is reachable from src following directed
// edges.
func (g *Graph) Reachable(src, dst NodeID) bool {
	if src == dst {
		return true
	}
	seen := make([]bool, g.NumNodes())
	queue := []NodeID{src}
	seen[src] = true
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, eid := range g.out[v] {
			to := g.edges[eid].To
			if seen[to] {
				continue
			}
			if to == dst {
				return true
			}
			seen[to] = true
			queue = append(queue, to)
		}
	}
	return false
}

// StronglyConnectedHosts reports whether every ordered pair of hosts is
// connected by a directed path.
func (g *Graph) StronglyConnectedHosts() bool {
	hosts := g.Hosts()
	for _, a := range hosts {
		for _, b := range hosts {
			if a == b {
				continue
			}
			if !g.Reachable(a, b) {
				return false
			}
		}
	}
	return true
}

// String summarizes the graph.
func (g *Graph) String() string {
	kinds := map[NodeKind]int{}
	for _, n := range g.nodes {
		kinds[n.Kind]++
	}
	keys := make([]int, 0, len(kinds))
	for k := range kinds {
		keys = append(keys, int(k))
	}
	sort.Ints(keys)
	s := fmt.Sprintf("graph{%d nodes, %d edges", len(g.nodes), len(g.edges))
	for _, k := range keys {
		s += fmt.Sprintf(", %d %s", kinds[NodeKind(k)], NodeKind(k))
	}
	return s + "}"
}
