package graph

import (
	"fmt"
	"math/rand"
)

// Triangle builds the 3-node triangle network of the paper's Figure 1: nodes
// x, y, z with unit-capacity bidirectional links between every pair.
func Triangle() *Graph {
	g := New()
	x := g.AddNode("x", KindHost)
	y := g.AddNode("y", KindHost)
	z := g.AddNode("z", KindHost)
	g.AddBidirectional(x, y, 1)
	g.AddBidirectional(y, z, 1)
	g.AddBidirectional(x, z, 1)
	return g
}

// Line builds a directed path topology h0 -> h1 -> ... -> h(n-1) with the
// given link capacity, plus the reverse edges so traffic can flow both ways.
func Line(n int, capacity float64) *Graph {
	if n < 2 {
		panic("graph: Line requires at least 2 nodes")
	}
	g := New()
	ids := make([]NodeID, n)
	for i := 0; i < n; i++ {
		ids[i] = g.AddNode(fmt.Sprintf("h%d", i), KindHost)
	}
	for i := 0; i+1 < n; i++ {
		g.AddBidirectional(ids[i], ids[i+1], capacity)
	}
	return g
}

// Ring builds a bidirectional ring of n hosts with the given link capacity.
func Ring(n int, capacity float64) *Graph {
	if n < 3 {
		panic("graph: Ring requires at least 3 nodes")
	}
	g := New()
	ids := make([]NodeID, n)
	for i := 0; i < n; i++ {
		ids[i] = g.AddNode(fmt.Sprintf("h%d", i), KindHost)
	}
	for i := 0; i < n; i++ {
		g.AddBidirectional(ids[i], ids[(i+1)%n], capacity)
	}
	return g
}

// Star builds a star of n hosts around a central switch; every host-switch
// link has the given capacity. This models a single non-blocking switch with
// per-port capacities, the topology assumed by earlier coflow work
// (Varys/Aalo and the big-switch model).
func Star(n int, capacity float64) *Graph {
	if n < 2 {
		panic("graph: Star requires at least 2 hosts")
	}
	g := New()
	sw := g.AddNode("switch", KindCoreSwitch)
	for i := 0; i < n; i++ {
		h := g.AddNode(fmt.Sprintf("h%d", i), KindHost)
		g.AddBidirectional(h, sw, capacity)
	}
	return g
}

// Grid builds an r x c bidirectional grid (mesh) of hosts with uniform link
// capacity. Used by the packet-based coflow examples and tests.
func Grid(rows, cols int, capacity float64) *Graph {
	if rows < 1 || cols < 1 || rows*cols < 2 {
		panic("graph: Grid requires at least 2 nodes")
	}
	g := New()
	id := func(r, c int) NodeID { return NodeID(r*cols + c) }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			g.AddNode(fmt.Sprintf("g%d_%d", r, c), KindHost)
		}
	}
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				g.AddBidirectional(id(r, c), id(r, c+1), capacity)
			}
			if r+1 < rows {
				g.AddBidirectional(id(r, c), id(r+1, c), capacity)
			}
		}
	}
	return g
}

// FatTree builds a k-ary fat-tree datacenter topology (Al-Fares et al.):
// k pods, each with k/2 edge and k/2 aggregation switches, (k/2)^2 core
// switches and k^3/4 hosts. Every link is bidirectional with the given
// capacity. k must be even and >= 2.
//
// The paper's evaluation uses a 128-server fat-tree (k=8) with 1 Gb/s links;
// FatTree(8, 1.0) reproduces that topology.
func FatTree(k int, capacity float64) *Graph {
	if k < 2 || k%2 != 0 {
		panic(fmt.Sprintf("graph: FatTree requires even k >= 2, got %d", k))
	}
	g := New()
	half := k / 2
	numCore := half * half

	core := make([]NodeID, numCore)
	for i := 0; i < numCore; i++ {
		core[i] = g.AddNode(fmt.Sprintf("core%d", i), KindCoreSwitch)
	}
	for pod := 0; pod < k; pod++ {
		aggs := make([]NodeID, half)
		edges := make([]NodeID, half)
		for i := 0; i < half; i++ {
			aggs[i] = g.AddNode(fmt.Sprintf("agg%d_%d", pod, i), KindAggSwitch)
		}
		for i := 0; i < half; i++ {
			edges[i] = g.AddNode(fmt.Sprintf("edge%d_%d", pod, i), KindEdgeSwitch)
		}
		// Hosts under each edge switch.
		for i := 0; i < half; i++ {
			for h := 0; h < half; h++ {
				host := g.AddNode(fmt.Sprintf("h%d_%d_%d", pod, i, h), KindHost)
				g.AddBidirectional(host, edges[i], capacity)
			}
		}
		// Edge <-> aggregation full bipartite within the pod.
		for i := 0; i < half; i++ {
			for j := 0; j < half; j++ {
				g.AddBidirectional(edges[i], aggs[j], capacity)
			}
		}
		// Aggregation <-> core: agg j connects to core group j.
		for j := 0; j < half; j++ {
			for c := 0; c < half; c++ {
				g.AddBidirectional(aggs[j], core[j*half+c], capacity)
			}
		}
	}
	return g
}

// NumFatTreeHosts returns the number of hosts in a k-ary fat-tree.
func NumFatTreeHosts(k int) int { return k * k * k / 4 }

// RandomRegular builds a random d-out-regular directed graph over n hosts:
// each node gets d outgoing edges to distinct random targets, with the given
// capacity. The construction retries until the graph is strongly connected
// over hosts (or gives up after a bounded number of attempts and adds a
// Hamiltonian cycle to guarantee connectivity).
func RandomRegular(n, d int, capacity float64, rng *rand.Rand) *Graph {
	if n < 2 || d < 1 {
		panic("graph: RandomRegular requires n >= 2, d >= 1")
	}
	if d >= n {
		d = n - 1
	}
	for attempt := 0; attempt < 20; attempt++ {
		g := New()
		ids := make([]NodeID, n)
		for i := 0; i < n; i++ {
			ids[i] = g.AddNode(fmt.Sprintf("h%d", i), KindHost)
		}
		for i := 0; i < n; i++ {
			perm := rng.Perm(n)
			added := 0
			for _, j := range perm {
				if j == i {
					continue
				}
				g.AddEdge(ids[i], ids[j], capacity)
				added++
				if added == d {
					break
				}
			}
		}
		if g.StronglyConnectedHosts() {
			return g
		}
	}
	// Fallback: ring plus random chords is always strongly connected.
	g := Ring(n, capacity)
	for i := 0; i < n*(d-1); i++ {
		a := NodeID(rng.Intn(n))
		b := NodeID(rng.Intn(n))
		if a != b {
			g.AddEdge(a, b, capacity)
		}
	}
	return g
}
