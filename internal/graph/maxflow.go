package graph

import (
	"math"
)

// MaxFlow computes a maximum flow from src to dst in g using Dinic's
// algorithm on the edge capacities. It returns the flow value and the
// per-edge flow (indexed by EdgeID). MaxFlow does not modify g.
func (g *Graph) MaxFlow(src, dst NodeID) (float64, []float64) {
	caps := make([]float64, g.NumEdges())
	for i := range caps {
		caps[i] = g.Capacity(EdgeID(i))
	}
	return g.MaxFlowWithCapacities(src, dst, caps)
}

// MaxFlowWithCapacities computes a maximum flow from src to dst using the
// supplied per-edge capacities (indexed by EdgeID) instead of the graph's own
// capacities. Capacities that are zero or negative disable the edge.
func (g *Graph) MaxFlowWithCapacities(src, dst NodeID, caps []float64) (float64, []float64) {
	d := newDinic(g, caps)
	value := d.run(src, dst)
	return value, d.flowPerEdge()
}

// dinic is the working state of Dinic's algorithm over a residual graph with
// paired forward/backward arcs.
type dinic struct {
	g        *Graph
	numNodes int
	// Residual arcs: arc 2i is the forward copy of edge i, arc 2i+1 its
	// reverse.
	cap   []float64
	level []int
	iter  []int
	adj   [][]int // residual arc ids per node
}

func newDinic(g *Graph, caps []float64) *dinic {
	n := g.NumNodes()
	d := &dinic{
		g:        g,
		numNodes: n,
		cap:      make([]float64, 2*g.NumEdges()),
		level:    make([]int, n),
		iter:     make([]int, n),
		adj:      make([][]int, n),
	}
	for i := 0; i < g.NumEdges(); i++ {
		e := g.Edge(EdgeID(i))
		c := caps[i]
		if c < 0 {
			c = 0
		}
		d.cap[2*i] = c
		d.cap[2*i+1] = 0
		d.adj[e.From] = append(d.adj[e.From], 2*i)
		d.adj[e.To] = append(d.adj[e.To], 2*i+1)
	}
	return d
}

func (d *dinic) arcTarget(arc int) NodeID {
	e := d.g.Edge(EdgeID(arc / 2))
	if arc%2 == 0 {
		return e.To
	}
	return e.From
}

func (d *dinic) bfs(src, dst NodeID) bool {
	for i := range d.level {
		d.level[i] = -1
	}
	d.level[src] = 0
	queue := []NodeID{src}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, arc := range d.adj[v] {
			if d.cap[arc] <= 1e-12 {
				continue
			}
			to := d.arcTarget(arc)
			if d.level[to] >= 0 {
				continue
			}
			d.level[to] = d.level[v] + 1
			queue = append(queue, to)
		}
	}
	return d.level[dst] >= 0
}

func (d *dinic) dfs(v, dst NodeID, f float64) float64 {
	if v == dst {
		return f
	}
	for ; d.iter[v] < len(d.adj[v]); d.iter[v]++ {
		arc := d.adj[v][d.iter[v]]
		if d.cap[arc] <= 1e-12 {
			continue
		}
		to := d.arcTarget(arc)
		if d.level[to] != d.level[v]+1 {
			continue
		}
		pushed := d.dfs(to, dst, math.Min(f, d.cap[arc]))
		if pushed > 0 {
			d.cap[arc] -= pushed
			d.cap[arc^1] += pushed
			return pushed
		}
	}
	return 0
}

func (d *dinic) run(src, dst NodeID) float64 {
	if src == dst {
		return 0
	}
	total := 0.0
	for d.bfs(src, dst) {
		for i := range d.iter {
			d.iter[i] = 0
		}
		for {
			f := d.dfs(src, dst, math.Inf(1))
			if f <= 0 {
				break
			}
			total += f
		}
	}
	return total
}

// flowPerEdge returns the net flow routed over each original edge.
func (d *dinic) flowPerEdge() []float64 {
	out := make([]float64, d.g.NumEdges())
	for i := 0; i < d.g.NumEdges(); i++ {
		// Flow on edge i equals the residual capacity accumulated on its
		// reverse arc.
		out[i] = d.cap[2*i+1]
	}
	return out
}

// MinCut returns the value of a minimum src-dst cut and the set of edges
// crossing it (from the src side to the dst side). By max-flow/min-cut
// duality the value equals MaxFlow.
func (g *Graph) MinCut(src, dst NodeID) (float64, []EdgeID) {
	caps := make([]float64, g.NumEdges())
	for i := range caps {
		caps[i] = g.Capacity(EdgeID(i))
	}
	d := newDinic(g, caps)
	value := d.run(src, dst)

	// Nodes reachable from src in the residual graph form the src side.
	reach := make([]bool, g.NumNodes())
	reach[src] = true
	queue := []NodeID{src}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, arc := range d.adj[v] {
			if d.cap[arc] <= 1e-12 {
				continue
			}
			to := d.arcTarget(arc)
			if !reach[to] {
				reach[to] = true
				queue = append(queue, to)
			}
		}
	}
	var cut []EdgeID
	for i := 0; i < g.NumEdges(); i++ {
		e := g.Edge(EdgeID(i))
		if reach[e.From] && !reach[e.To] {
			cut = append(cut, e.ID)
		}
	}
	return value, cut
}
