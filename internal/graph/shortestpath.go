package graph

import (
	"container/heap"
	"math"
)

// nodeItem is a priority queue entry used by the Dijkstra variants.
type nodeItem struct {
	node NodeID
	prio float64
	idx  int
}

type nodePQ struct {
	items []*nodeItem
	less  func(a, b float64) bool
}

func (pq *nodePQ) Len() int           { return len(pq.items) }
func (pq *nodePQ) Less(i, j int) bool { return pq.less(pq.items[i].prio, pq.items[j].prio) }
func (pq *nodePQ) Swap(i, j int) {
	pq.items[i], pq.items[j] = pq.items[j], pq.items[i]
	pq.items[i].idx = i
	pq.items[j].idx = j
}
func (pq *nodePQ) Push(x any) {
	it := x.(*nodeItem)
	it.idx = len(pq.items)
	pq.items = append(pq.items, it)
}
func (pq *nodePQ) Pop() any {
	old := pq.items
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	pq.items = old[:n-1]
	return it
}

// ShortestPath returns a minimum-hop path from src to dst, or nil if dst is
// unreachable. Every edge counts as one hop regardless of capacity.
func (g *Graph) ShortestPath(src, dst NodeID) Path {
	return g.shortestPathWeighted(src, dst, func(EdgeID) float64 { return 1 })
}

// ShortestPathWeighted returns a minimum-total-weight path from src to dst
// under the given per-edge weight function (weights must be nonnegative), or
// nil if unreachable.
func (g *Graph) ShortestPathWeighted(src, dst NodeID, weight func(EdgeID) float64) Path {
	return g.shortestPathWeighted(src, dst, weight)
}

func (g *Graph) shortestPathWeighted(src, dst NodeID, weight func(EdgeID) float64) Path {
	if src == dst {
		return Path{}
	}
	n := g.NumNodes()
	dist := make([]float64, n)
	prevEdge := make([]EdgeID, n)
	visited := make([]bool, n)
	for i := range dist {
		dist[i] = math.Inf(1)
		prevEdge[i] = -1
	}
	dist[src] = 0

	pq := &nodePQ{less: func(a, b float64) bool { return a < b }}
	heap.Push(pq, &nodeItem{node: src, prio: 0})
	for pq.Len() > 0 {
		it := heap.Pop(pq).(*nodeItem)
		v := it.node
		if visited[v] {
			continue
		}
		visited[v] = true
		if v == dst {
			break
		}
		for _, eid := range g.Out(v) {
			e := g.Edge(eid)
			w := weight(eid)
			if w < 0 {
				w = 0
			}
			nd := dist[v] + w
			if nd < dist[e.To] {
				dist[e.To] = nd
				prevEdge[e.To] = eid
				heap.Push(pq, &nodeItem{node: e.To, prio: nd})
			}
		}
	}
	if math.IsInf(dist[dst], 1) {
		return nil
	}
	return g.tracePath(src, dst, prevEdge)
}

// WidestPath returns a path from src to dst maximizing the bottleneck value
// of width(edge); ties are broken toward fewer hops. It returns nil if dst is
// unreachable or every path has zero (or negative) bottleneck width. This is
// the "thickest path" routine used by flow decomposition (§4.2 of the paper).
func (g *Graph) WidestPath(src, dst NodeID, width func(EdgeID) float64) Path {
	if src == dst {
		return Path{}
	}
	n := g.NumNodes()
	best := make([]float64, n)
	hops := make([]int, n)
	prevEdge := make([]EdgeID, n)
	visited := make([]bool, n)
	for i := range best {
		best[i] = math.Inf(-1)
		prevEdge[i] = -1
		hops[i] = math.MaxInt32
	}
	best[src] = math.Inf(1)
	hops[src] = 0

	pq := &nodePQ{less: func(a, b float64) bool { return a > b }} // max-heap on bottleneck
	heap.Push(pq, &nodeItem{node: src, prio: best[src]})
	for pq.Len() > 0 {
		it := heap.Pop(pq).(*nodeItem)
		v := it.node
		if visited[v] {
			continue
		}
		visited[v] = true
		for _, eid := range g.Out(v) {
			e := g.Edge(eid)
			w := width(eid)
			if w <= 0 {
				continue
			}
			bottleneck := math.Min(best[v], w)
			if bottleneck > best[e.To]+1e-15 ||
				(bottleneck > best[e.To]-1e-15 && hops[v]+1 < hops[e.To]) {
				best[e.To] = bottleneck
				hops[e.To] = hops[v] + 1
				prevEdge[e.To] = eid
				heap.Push(pq, &nodeItem{node: e.To, prio: bottleneck})
			}
		}
	}
	if math.IsInf(best[dst], -1) || best[dst] <= 0 {
		return nil
	}
	return g.tracePath(src, dst, prevEdge)
}

// KShortestPaths returns up to k loop-free minimum-hop paths from src to dst
// using a simple Yen-like expansion on the hop metric. It is used by the
// Route-only baseline to pick among candidate paths for load balancing.
func (g *Graph) KShortestPaths(src, dst NodeID, k int) []Path {
	if k <= 0 {
		return nil
	}
	first := g.ShortestPath(src, dst)
	if first == nil {
		return nil
	}
	paths := []Path{first}
	candidates := []Path{}
	for len(paths) < k {
		last := paths[len(paths)-1]
		lastNodes := last.Nodes(g)
		for spur := 0; spur < len(last); spur++ {
			// Block the edges used at this spur position by previously found
			// paths sharing the same prefix, then reroute.
			blocked := map[EdgeID]bool{}
			for _, p := range paths {
				if len(p) > spur && samePrefix(g, p, last, spur) {
					blocked[p[spur]] = true
				}
			}
			// Also block revisiting root-path nodes to keep paths simple.
			blockedNodes := map[NodeID]bool{}
			for i := 0; i < spur; i++ {
				blockedNodes[lastNodes[i]] = true
			}
			spurNode := lastNodes[spur]
			detour := g.shortestPathWeighted(spurNode, dst, func(eid EdgeID) float64 {
				e := g.Edge(eid)
				if blocked[eid] || blockedNodes[e.To] {
					return math.Inf(1)
				}
				return 1
			})
			if detour == nil || pathUsesInfEdge(g, detour, blocked, blockedNodes) {
				continue
			}
			full := append(append(Path{}, last[:spur]...), detour...)
			if !containsPath(paths, full) && !containsPath(candidates, full) {
				candidates = append(candidates, full)
			}
		}
		if len(candidates) == 0 {
			break
		}
		// Pick the shortest candidate.
		bestIdx := 0
		for i := range candidates {
			if len(candidates[i]) < len(candidates[bestIdx]) {
				bestIdx = i
			}
		}
		paths = append(paths, candidates[bestIdx])
		candidates = append(candidates[:bestIdx], candidates[bestIdx+1:]...)
	}
	return paths
}

func pathUsesInfEdge(g *Graph, p Path, blocked map[EdgeID]bool, blockedNodes map[NodeID]bool) bool {
	for _, eid := range p {
		if blocked[eid] || blockedNodes[g.Edge(eid).To] {
			return true
		}
	}
	return false
}

func samePrefix(g *Graph, a, b Path, n int) bool {
	if len(a) < n || len(b) < n {
		return false
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func containsPath(paths []Path, p Path) bool {
	for _, q := range paths {
		if len(q) != len(p) {
			continue
		}
		same := true
		for i := range q {
			if q[i] != p[i] {
				same = false
				break
			}
		}
		if same {
			return true
		}
	}
	return false
}

// tracePath reconstructs a path from prevEdge pointers.
func (g *Graph) tracePath(src, dst NodeID, prevEdge []EdgeID) Path {
	var rev Path
	cur := dst
	for cur != src {
		eid := prevEdge[cur]
		if eid < 0 {
			return nil
		}
		rev = append(rev, eid)
		cur = g.Edge(eid).From
	}
	// Reverse.
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}
