package graph

// PathLoad pairs a path with the data volume routed over it.
type PathLoad struct {
	Path   Path
	Volume float64
}

// BottleneckTime returns the completion-time lower bound of a set of flows
// given the whole network to themselves: the maximum over edges of the total
// volume crossing the edge divided by its capacity. This is the coflow
// "length" Γ of Varys-style SEBF ordering, shared by the offline SEBF
// baseline, the online residual SEBF policy and the online slowdown metric.
func (g *Graph) BottleneckTime(loads []PathLoad) float64 {
	// Dense accumulation: edge ids are small consecutive integers, so a flat
	// slice beats a hash map on this hot path (one call per coflow per epoch
	// in the online SEBF policy).
	load := make([]float64, len(g.edges))
	max := 0.0
	for _, pl := range loads {
		for _, e := range pl.Path {
			load[e] += pl.Volume / g.edges[e].Capacity
			if load[e] > max {
				max = load[e]
			}
		}
	}
	return max
}
