package graph

// PathLoad pairs a path with the data volume routed over it.
type PathLoad struct {
	Path   Path
	Volume float64
}

// BottleneckTime returns the completion-time lower bound of a set of flows
// given the whole network to themselves: the maximum over edges of the total
// volume crossing the edge divided by its capacity. This is the coflow
// "length" Γ of Varys-style SEBF ordering, shared by the offline SEBF
// baseline, the online residual SEBF policy and the online slowdown metric.
func (g *Graph) BottleneckTime(loads []PathLoad) float64 {
	// Dense accumulation: edge ids are small consecutive integers, so a flat
	// slice beats a hash map on this hot path (one call per coflow per epoch
	// in the online SEBF policy). The slice is a pooled, generation-stamped
	// arena — the policy calls this once per coflow per epoch, and a fresh
	// O(edges) allocation per call dominated the decide profile. Stamps make
	// acquisition O(1): an entry counts only if written this generation.
	s := g.btGet()
	max := 0.0
	for _, pl := range loads {
		for _, e := range pl.Path {
			v := pl.Volume / g.edges[e].Capacity
			if s.stamp[e] == s.cur {
				v += s.vals[e]
			} else {
				s.stamp[e] = s.cur
			}
			s.vals[e] = v
			if v > max {
				max = v
			}
		}
	}
	g.btPool.Put(s)
	return max
}
