package graph

import (
	"testing"
)

// edgeSet indexes directed (from, to) -> capacity for symmetry checks.
func edgeSet(g *Graph) map[[2]NodeID]float64 {
	out := make(map[[2]NodeID]float64, g.NumEdges())
	for _, e := range g.Edges() {
		out[[2]NodeID{e.From, e.To}] = e.Capacity
	}
	return out
}

// checkSymmetric asserts every directed edge has a reverse twin with the
// same capacity — all generated datacenter topologies are bidirectional.
func checkSymmetric(t *testing.T, g *Graph) {
	t.Helper()
	es := edgeSet(g)
	for pair, cap := range es {
		rev, ok := es[[2]NodeID{pair[1], pair[0]}]
		if !ok {
			t.Errorf("edge %d->%d has no reverse edge", pair[0], pair[1])
			continue
		}
		if rev != cap {
			t.Errorf("edge %d->%d capacity %v, reverse %v", pair[0], pair[1], cap, rev)
		}
	}
}

func TestFatTreeInvariants(t *testing.T) {
	cases := []struct {
		k        int
		capacity float64
	}{
		{2, 1}, {4, 1}, {4, 2.5}, {6, 1}, {8, 1},
	}
	for _, c := range cases {
		g := FatTree(c.k, c.capacity)
		half := c.k / 2

		// Node census: k^3/4 hosts, k^2/4 core, k*k/2 edge and agg switches.
		wantHosts := c.k * c.k * c.k / 4
		if got := len(g.Hosts()); got != wantHosts {
			t.Errorf("k=%d: %d hosts, want %d", c.k, got, wantHosts)
		}
		if wantHosts != NumFatTreeHosts(c.k) {
			t.Errorf("k=%d: NumFatTreeHosts = %d, want %d", c.k, NumFatTreeHosts(c.k), wantHosts)
		}
		kinds := map[NodeKind]int{}
		for _, n := range g.Nodes() {
			kinds[n.Kind]++
		}
		if kinds[KindCoreSwitch] != half*half {
			t.Errorf("k=%d: %d core switches, want %d", c.k, kinds[KindCoreSwitch], half*half)
		}
		if kinds[KindAggSwitch] != c.k*half || kinds[KindEdgeSwitch] != c.k*half {
			t.Errorf("k=%d: agg/edge = %d/%d, want %d each", c.k, kinds[KindAggSwitch], kinds[KindEdgeSwitch], c.k*half)
		}

		// Link census: hosts + edge-agg bipartite per pod + agg-core uplinks,
		// each bidirectional.
		wantDirected := 2 * (wantHosts + c.k*half*half + c.k*half*half)
		if g.NumEdges() != wantDirected {
			t.Errorf("k=%d: %d directed edges, want %d", c.k, g.NumEdges(), wantDirected)
		}
		for _, e := range g.Edges() {
			if e.Capacity != c.capacity {
				t.Errorf("k=%d: edge %d->%d capacity %v, want %v", c.k, e.From, e.To, e.Capacity, c.capacity)
			}
			// No host-to-host shortcuts: at least one endpoint is a switch,
			// and core switches never touch hosts directly.
			fk, tk := g.Node(e.From).Kind, g.Node(e.To).Kind
			if fk == KindHost && tk == KindHost {
				t.Errorf("k=%d: host-host edge %d->%d", c.k, e.From, e.To)
			}
			if (fk == KindCoreSwitch && tk == KindHost) || (fk == KindHost && tk == KindCoreSwitch) {
				t.Errorf("k=%d: core-host edge %d->%d", c.k, e.From, e.To)
			}
		}
		checkSymmetric(t, g)

		if !g.StronglyConnectedHosts() {
			t.Errorf("k=%d: hosts not strongly connected", c.k)
		}
	}
}

func TestFatTreePanicsOnBadArity(t *testing.T) {
	for _, k := range []int{0, 1, 3, -2} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("FatTree(%d) did not panic", k)
				}
			}()
			FatTree(k, 1)
		}()
	}
}

func TestLineInvariants(t *testing.T) {
	for _, n := range []int{2, 3, 7} {
		g := Line(n, 2.5)
		if g.NumNodes() != n || len(g.Hosts()) != n {
			t.Errorf("n=%d: %d nodes / %d hosts, want %d hosts", n, g.NumNodes(), len(g.Hosts()), n)
		}
		// A path of n nodes has n-1 bidirectional links.
		if g.NumEdges() != 2*(n-1) {
			t.Errorf("n=%d: %d directed edges, want %d", n, g.NumEdges(), 2*(n-1))
		}
		for _, e := range g.Edges() {
			if e.Capacity != 2.5 {
				t.Errorf("n=%d: capacity %v, want 2.5", n, e.Capacity)
			}
			d := int(e.To) - int(e.From)
			if d != 1 && d != -1 {
				t.Errorf("n=%d: non-adjacent edge %d->%d", n, e.From, e.To)
			}
		}
		checkSymmetric(t, g)
		if !g.StronglyConnectedHosts() {
			t.Errorf("n=%d: hosts not strongly connected", n)
		}
		// The end-to-end shortest path traverses every link once.
		if p := g.ShortestPath(0, NodeID(n-1)); len(p) != n-1 {
			t.Errorf("n=%d: end-to-end path has %d hops, want %d", n, len(p), n-1)
		}
	}
}

func TestLinePanicsOnBadSize(t *testing.T) {
	for _, n := range []int{0, 1, -3} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Line(%d) did not panic", n)
				}
			}()
			Line(n, 1)
		}()
	}
}
